// Extension: buffer architecture ablation. The paper's testbed switches
// (Pronto 3295) are shared-memory devices; this bench quantifies how the
// buffer model interacts with incast and with the load balancer: static
// per-port carving vs one Dynamic Threshold pool of the same total size.

#include <cstdint>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Extension: static per-port buffers vs shared Dynamic Threshold pool",
      "same total memory; DT absorbs synchronized incast bursts that overflow a "
      "static carving, cutting timeouts and small-flow p99");

  for (int fanin : {16, 32, 64}) {
    std::printf("[%d-to-1 incast of 256KB responses + web-search background]\n", fanin);
    stats::Table t({"buffers", "incast p99", "timeouts", "bg overall avg"});
    for (bool shared : {false, true}) {
      harness::ScenarioConfig cfg;
      cfg.topo.num_leaves = 4;
      cfg.topo.num_spines = 4;
      cfg.topo.hosts_per_leaf = 16;
      if (shared) {
        const auto per_port = cfg.topo.queue_bytes_for(10e9);
        cfg.topo.shared_buffer_bytes =
            static_cast<std::uint64_t>(16 + 4) * per_port;  // same total as static
        cfg.topo.dt_alpha = 1.0;
      }
      cfg.scheme = Scheme::kHermes;
      harness::Scenario s{cfg};

      // Background load.
      workload::TrafficConfig tc{.load = 0.3,
                                 .num_flows = bench::scaled(200, scale),
                                 .seed = 1};
      s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                     workload::SizeDist::web_search(), tc));
      // Synchronized fan-in to host 0 at t = 2ms.
      std::vector<std::uint64_t> incast_ids;
      for (int i = 0; i < fanin; ++i) {
        incast_ids.push_back(
            s.add_flow(16 + i % 48, 0, 256 * 1024, sim::msec(2)));
      }
      auto fct = s.run();

      std::vector<double> incast_fcts;
      double bg_sum = 0;
      int bg_n = 0;
      for (const auto& r : fct.records()) {
        const bool is_incast =
            std::find(incast_ids.begin(), incast_ids.end(), r.id) != incast_ids.end();
        if (is_incast) {
          incast_fcts.push_back(r.fct().to_usec());
        } else if (r.finished) {
          bg_sum += r.fct().to_usec();
          ++bg_n;
        }
      }
      t.add_row({shared ? "shared DT pool" : "static per-port",
                 stats::Table::usec(stats::percentile(incast_fcts, 99)),
                 std::to_string(fct.total_timeouts()),
                 stats::Table::usec(bg_n ? bg_sum / bg_n : 0)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
