// Figure 1 (Example 1): flowlet switching cannot timely react to
// congestion under a stable traffic pattern.
//
// Two 20MB flows (A, B) occupy path P1; two large DCTCP flows (C, D)
// arrive while P1 is busy and are therefore placed together on P2. When
// A and B finish, P1 goes idle — but DCTCP's smooth, ACK-clocked window
// leaves no inactivity gaps, so flowlet-based schemes (CONGA with
// 150us or even 50us timeouts, LetFlow) can never move C or D off the
// shared path. Ideal rerouting would almost halve their FCT.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  (void)bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 1 (Example 1): flowlet passivity under stable traffic",
      "flowlet schemes keep the two large flows collided on P2 even after P1 "
      "empties (DCTCP creates no flowlet gaps); ideal rerouting nearly halves "
      "their FCT");

  constexpr std::uint64_t kBgSize = 20'000'000;     // A, B on P1
  constexpr std::uint64_t kLargeSize = 60'000'000;  // C, D collided on P2
  constexpr std::uint64_t kIdA = 1, kIdB = 2, kIdC = 3, kIdD = 4;

  struct Variant {
    std::string label;
    Scheme scheme;
    int flowlet_us;  // 0 = scheme default
  };
  const Variant variants[] = {
      {"CONGA (150us flowlet)", Scheme::kConga, 150},
      {"CONGA (50us flowlet)", Scheme::kConga, 50},
      {"LetFlow (150us)", Scheme::kLetFlow, 150},
      {"Hermes", Scheme::kHermes, 0},
  };

  stats::Table t({"scheme", "large flows avg FCT", "large-flow path changes"});
  for (const auto& v : variants) {
    harness::ScenarioConfig cfg;
    cfg.topo.num_leaves = 2;
    cfg.topo.num_spines = 2;
    cfg.topo.hosts_per_leaf = 4;
    cfg.scheme = v.scheme;
    if (v.flowlet_us) {
      cfg.conga.flowlet_timeout = sim::usec(v.flowlet_us);
      cfg.letflow.flowlet_timeout = sim::usec(v.flowlet_us);
    }
    cfg.max_sim_time = sim::sec(5);
    // Pin every flow's initial placement exactly as in the figure; the
    // scheme under test decides whether anyone may ever LEAVE.
    cfg.wrap_balancer = [&](sim::Simulator&, net::Topology&,
                            std::unique_ptr<lb::LoadBalancer> inner) {
      return std::make_unique<bench::PinnedFirstLb>(
          std::move(inner),
          std::map<std::uint64_t, int>{{kIdA, 0}, {kIdB, 0}, {kIdC, 1}, {kIdD, 1}});
    };
    harness::Scenario s{cfg};
    s.add_flows({transport::FlowSpec{kIdA, 0, 4, kBgSize, sim::usec(0)},
                 transport::FlowSpec{kIdB, 1, 5, kBgSize, sim::usec(5)},
                 transport::FlowSpec{kIdC, 2, 6, kLargeSize, sim::usec(10)},
                 transport::FlowSpec{kIdD, 3, 7, kLargeSize, sim::usec(15)}});
    auto fct = s.run();
    double large_sum = 0;
    std::uint32_t reroutes = 0;
    for (const auto& r : fct.records()) {
      if (r.size == kLargeSize) {
        large_sum += r.fct().to_usec();
        reroutes += r.reroutes;
      }
    }
    t.add_row({v.label, stats::Table::usec(large_sum / 2), std::to_string(reroutes)});
  }
  // Analytic reference points at 10G (ignoring ramp-up):
  //  - stay collided: both large flows share P2 for their whole lifetime;
  //  - ideal: one of them moves to P1 as soon as A and B finish.
  const double collided_us = 2.0 * kLargeSize * 8 / 10e9 * 1e6;
  const double bg_done_us = 2.0 * kBgSize * 8 / 10e9 * 1e6;
  const double moved = bg_done_us + (kLargeSize - bg_done_us / 2 * 10e9 / 8 / 1e6 / 2) * 0;
  (void)moved;
  // Until bg_done both larges share P2 (each has sent bg_done/2 * C/8);
  // afterwards they run at full rate on separate paths.
  const double sent_each = bg_done_us * 1e-6 * 10e9 / 8 / 2;  // bytes
  const double ideal_us = bg_done_us + (kLargeSize - sent_each) * 8 / 10e9 * 1e6;
  stats::Table t2({"reference", "large flows avg FCT"});
  t2.add_row({"analytic: stay collided", stats::Table::usec(collided_us)});
  t2.add_row({"analytic: ideal reroute after P1 empties", stats::Table::usec(ideal_us)});
  t.print();
  t2.print();
  std::printf(
      "\nNote: with the recommended gates (R=30%% of link rate) Hermes also declines to\n"
      "move a flow already sending at 50%% of line rate - the gain appears once more\n"
      "flows collide (see Figures 12b/14, data-mining) or paths are asymmetric.\n");
  return 0;
}
