// Figure 18: [Simulation] Hermes deep dive on the data-mining workload:
// (a) incremental benefit of active probing and of rerouting —
//     probing ~20% and rerouting ~10% improvement of overall avg FCT;
// (b) impact of the probe interval — 500us probing buys 11-15% over no
//     probing; shortening to 100us adds only another 1-3%.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 18a: Hermes ablation (data-mining): probing and rerouting",
      "probing ~20% improvement, rerouting ~10%; 'without both' is worst");

  const auto topo = bench::dm_asym_sim_topology();
  const int flows = bench::scaled(400, scale);
  const int warmup = bench::scaled(100, scale);
  const double load = 0.7;
  const auto dm = bench::dm_dist();

  struct Variant {
    const char* name;
    bool probing;
    bool rerouting;
  };
  const Variant variants[] = {
      {"Hermes", true, true},
      {"w/o probing", false, true},
      {"w/o rerouting", true, false},
      {"w/o both", false, false},
  };

  {
    stats::Table t({"variant", "overall avg", "small avg", "large avg", "vs full Hermes"});
    double full = 0;
    struct Cell {
      double overall, small, large;
    };
    std::vector<Cell> cells;
    for (const auto& v : variants) {
      harness::ScenarioConfig cfg;
      cfg.topo = topo;
      cfg.scheme = harness::Scheme::kHermes;
      cfg.hermes.probing_enabled = v.probing;
      cfg.hermes.rerouting_enabled = v.rerouting;
      cfg.max_sim_time = sim::sec(30);
      auto fct = bench::skip_warmup(bench::run_cell(cfg, dm, load, flows, 1),
                                    static_cast<std::uint64_t>(warmup));
      cells.push_back({fct.overall_with_unfinished().mean_us, fct.small_flows().mean_us,
                       fct.large_flows().mean_us});
      if (full == 0) full = cells.back().overall;
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      t.add_row({variants[i].name, stats::Table::usec(cells[i].overall),
                 stats::Table::usec(cells[i].small), stats::Table::usec(cells[i].large),
                 stats::Table::pct((cells[i].overall - full) / full)});
    }
    t.print();
  }

  bench::print_header("Figure 18b: probe interval impact (data-mining)",
                      "500us interval ~11-15% better than no probing; 100us adds 1-3% more");
  {
    stats::Table t({"probe interval", "overall avg", "vs no probing"});
    double none = 0;
    struct Cell {
      std::string label;
      double mean;
    };
    std::vector<Cell> cells;
    const int intervals_us[] = {0, 500, 100};
    for (int us : intervals_us) {
      harness::ScenarioConfig cfg;
      cfg.topo = topo;
      cfg.scheme = harness::Scheme::kHermes;
      cfg.hermes.probing_enabled = us > 0;
      if (us > 0) cfg.hermes.probe_interval = sim::usec(us);
      cfg.max_sim_time = sim::sec(30);
      auto fct = bench::skip_warmup(bench::run_cell(cfg, dm, load, flows, 1),
                                    static_cast<std::uint64_t>(warmup));
      cells.push_back({us == 0 ? "no probing" : std::to_string(us) + "us",
                       fct.overall_with_unfinished().mean_us});
      if (us == 0) none = cells.back().mean;
    }
    for (const auto& c : cells) {
      t.add_row({c.label, stats::Table::usec(c.mean),
                 stats::Table::pct((none - c.mean) / none)});
    }
    t.print();
  }
  return 0;
}
