// Figure 12: [Simulation] overall average FCT on the baseline symmetric
// leaf-spine fabric.
//
// Paper claims: web-search — Hermes up to 55% better than ECMP and
// within 17% of CONGA at all loads; data-mining — Hermes 29% better than
// ECMP at high load and slightly (<=4%) better than CONGA thanks to
// timely rerouting of colliding large flows.
//
// Web-search runs on the paper's 8x8/128-host fabric. Data-mining runs
// on the 4x4 variant with the distribution scaled 0.5x so steady state
// is reachable in a tractable run (see bench_util.hpp).
//
// The (setup, load, scheme) grid is a pure map — every cell owns its
// Scenario/EventQueue/RNG — so cells run concurrently on a
// ParallelRunner and the tables are assembled from the index-ordered
// results: output is byte-identical to a serial run.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hermes/harness/parallel_runner.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 12: simulation baseline (symmetric), overall avg FCT",
      "web-search: ECMP worst, Hermes within ~17% of CONGA; "
      "data-mining: Hermes matches or slightly beats CONGA (timely rerouting)");

  const Scheme schemes[] = {Scheme::kEcmp, Scheme::kConga, Scheme::kHermes};
  const double loads[] = {0.4, 0.6, 0.8, 0.9};

  struct Setup {
    workload::SizeDist dist;
    net::TopologyConfig topo;
    int flows;
    int warmup;
  };
  const Setup setups[] = {
      {workload::SizeDist::web_search(), bench::sim_topology(), bench::scaled(1200, scale),
       bench::scaled(300, scale)},
      {bench::dm_dist(), bench::dm_sim_topology(), bench::scaled(400, scale),
       bench::scaled(100, scale)},
  };

  struct Cell {
    const Setup* setup;
    double load;
    Scheme scheme;
  };
  std::vector<Cell> cells;
  for (const auto& setup : setups)
    for (double load : loads)
      for (Scheme scheme : schemes) cells.push_back({&setup, load, scheme});

  const harness::ParallelRunner runner;
  const auto means = runner.map<double>(cells.size(), [&](std::size_t i) {
    const Cell& c = cells[i];
    harness::ScenarioConfig cfg;
    cfg.topo = c.setup->topo;
    cfg.scheme = c.scheme;
    cfg.max_sim_time = sim::sec(30);
    const auto fct =
        bench::skip_warmup(bench::run_cell(cfg, c.setup->dist, c.load, c.setup->flows, 1),
                           static_cast<std::uint64_t>(c.setup->warmup));
    return fct.overall_with_unfinished().mean_us;
  });

  std::size_t cell = 0;
  for (const auto& setup : setups) {
    std::printf("[%s workload, %d flows/point (%d warmup excluded)]\n",
                setup.dist.name().c_str(), setup.flows, setup.warmup);
    stats::Table t({"load", "ECMP", "CONGA", "Hermes", "Hermes vs ECMP", "Hermes vs CONGA"});
    for (double load : loads) {
      std::vector<std::string> row{stats::Table::num(load, 1)};
      double ecmp = 0, conga = 0, hermes = 0;
      for (Scheme scheme : schemes) {
        const double mean = means[cell++];
        row.push_back(stats::Table::usec(mean));
        if (scheme == Scheme::kEcmp) ecmp = mean;
        if (scheme == Scheme::kConga) conga = mean;
        if (scheme == Scheme::kHermes) hermes = mean;
      }
      row.push_back(stats::Table::pct((ecmp - hermes) / ecmp));
      row.push_back(stats::Table::pct((conga - hermes) / conga));
      t.add_row(row);
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
