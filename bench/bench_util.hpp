#pragma once

// Shared plumbing for the benchmark binaries that regenerate the paper's
// tables and figures. Every bench accepts --scale=<float> (or env
// HERMES_BENCH_SCALE) to multiply the number of flows per data point:
// the defaults are sized to finish in minutes while preserving each
// result's shape; larger scales tighten the statistics.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "hermes/harness/scenario.hpp"
#include "hermes/stats/fct.hpp"
#include "hermes/stats/table.hpp"
#include "hermes/workload/flow_gen.hpp"
#include "hermes/workload/size_dist.hpp"

namespace hermes::bench {

inline double parse_scale(int argc, char** argv, double def = 1.0) {
  double scale = def;
  if (const char* env = std::getenv("HERMES_BENCH_SCALE")) scale = std::atof(env);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = std::atof(argv[i] + 8);
  }
  if (scale <= 0) scale = def;
  return scale;
}

inline int scaled(int base, double scale) {
  const int v = static_cast<int>(base * scale);
  return v < 1 ? 1 : v;
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper: %s\n\n", paper_claim);
}

/// The paper's testbed fabric (§5.2): 2 leaves x 2 spines, 2 parallel
/// links per pair, 6 hosts per leaf, everything 1G, ECN mark at 30KB.
inline net::TopologyConfig testbed_topology() {
  net::TopologyConfig c;
  c.num_leaves = 2;
  c.num_spines = 2;
  c.hosts_per_leaf = 6;
  c.links_per_pair = 2;
  c.host_rate_bps = 1e9;
  c.fabric_rate_bps = 1e9;
  c.ecn_threshold_bytes = 30'000;
  // The testbed's Pronto 3295 has megabytes of shared buffer; give each
  // 1G port a realistic share instead of the rate-scaled default.
  c.queue_capacity_bytes = 400 * 1024;
  return c;
}

/// The paper's large-scale simulation fabric (§5.3): 8x8 leaf-spine,
/// 128 hosts at 10G, 2:1 oversubscription at the leaf.
inline net::TopologyConfig sim_topology() {
  net::TopologyConfig c;  // defaults are exactly this fabric
  return c;
}

/// 20% of leaf-spine links degraded from 10G to 2G (§5.3.2), chosen by a
/// fixed seed so every scheme sees the identical asymmetry.
inline net::TopologyConfig asym_sim_topology(std::uint64_t seed = 99) {
  auto c = sim_topology();
  sim::Rng rng{seed};
  for (int l = 0; l < c.num_leaves; ++l)
    for (int s = 0; s < c.num_spines; ++s)
      if (rng.chance(0.2)) c.fabric_overrides[{l, s, 0}] = 2e9;
  return c;
}

/// Setup used for the data-mining cells. Data-mining's mean flow is
/// ~12.6MB with a 1GB tail, so steady state on the full 8x8/640G fabric
/// needs thousands of in-flight gigabytes — far beyond a tractable
/// single-core run. We preserve the *shape* (same CDF skew, same paths-
/// per-pair contention physics) on a 4x4 fabric with the distribution
/// scaled by 0.5; EXPERIMENTS.md documents this substitution.
inline net::TopologyConfig dm_sim_topology() {
  net::TopologyConfig c;
  c.num_leaves = 4;
  c.num_spines = 4;
  c.hosts_per_leaf = 8;
  return c;
}

inline net::TopologyConfig dm_asym_sim_topology(std::uint64_t seed = 99) {
  auto c = dm_sim_topology();
  sim::Rng rng{seed};
  for (int l = 0; l < c.num_leaves; ++l)
    for (int s = 0; s < c.num_spines; ++s)
      if (rng.chance(0.2)) c.fabric_overrides[{l, s, 0}] = 2e9;
  return c;
}

inline workload::SizeDist dm_dist() { return workload::SizeDist::data_mining().scaled(0.5); }

/// Drop the first `warmup` flows (by arrival order / id) from the
/// statistics so ramp-up arrivals into an empty fabric do not dilute the
/// steady-state comparison.
inline stats::FctCollector skip_warmup(const stats::FctCollector& in, std::uint64_t warmup) {
  stats::FctCollector out;
  for (const auto& r : in.records()) {
    if (r.id == 0 || r.id > warmup) out.add(r);
  }
  return out;
}

/// Run one (scheme, workload, load) cell. `prepare` can install failures
/// or traces on the built scenario before traffic starts; `finish` runs
/// after the simulation so callers can harvest scenario-side state
/// (e.g. per-reason drop counters) that dies with the Scenario.
inline stats::FctCollector run_cell(harness::ScenarioConfig cfg, const workload::SizeDist& dist,
                                    double load, int num_flows, std::uint64_t seed,
                                    const std::function<void(harness::Scenario&)>& prepare = {},
                                    const std::function<void(harness::Scenario&)>& finish = {}) {
  cfg.seed = seed;
  harness::Scenario s{std::move(cfg)};
  if (prepare) prepare(s);
  workload::TrafficConfig tc;
  tc.load = load;
  tc.num_flows = num_flows;
  tc.seed = seed;
  s.add_flows(workload::generate_poisson_traffic(s.topology(), dist, tc));
  auto fct = s.run();
  if (finish) finish(s);
  return fct;
}

inline const char* short_name(harness::Scheme s) { return harness::to_string(s); }

/// Where a figure bench writes its machine-readable output
/// (--json=<path>, like bench_core_micro).
inline std::string parse_json_path(int argc, char** argv, const char* def) {
  std::string path = def;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) path = argv[i] + 7;
  }
  return path;
}

/// Accumulates one JSON object per (scheme, load) cell — each embedding
/// the scenario's MetricsRegistry snapshot (sorted-name order, so the
/// file is byte-stable at a fixed seed) — and writes the figure bench's
/// machine-readable companion to the stdout table.
class MetricsJson {
 public:
  explicit MetricsJson(std::string bench) : bench_{std::move(bench)} {}

  void add_cell(const char* scheme, double load, const std::string& metrics_json) {
    if (!cells_.empty()) cells_ += ",\n";
    char head[128];
    std::snprintf(head, sizeof head, "    {\"scheme\": \"%s\", \"load\": %.2f, \"metrics\": ",
                  scheme, load);
    cells_ += head;
    cells_ += metrics_json;
    cells_ += '}';
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"cells\": [\n%s\n  ]\n}\n", bench_.c_str(),
                 cells_.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string bench_;
  std::string cells_;
};

/// Wrapper that pins each flow's FIRST path choice (reproducing the
/// paper's microbenchmark setups, e.g. Fig. 1 places two large flows on
/// one path) and delegates every later decision to the wrapped scheme —
/// so whether the flow can ever LEAVE that path is decided by the scheme
/// under test.
class PinnedFirstLb final : public lb::LoadBalancer {
 public:
  PinnedFirstLb(std::unique_ptr<lb::LoadBalancer> inner, std::map<std::uint64_t, int> pins)
      : inner_{std::move(inner)}, pins_{std::move(pins)} {}

  int select_path(lb::FlowCtx& flow, const net::Packet& pkt) override {
    if (!flow.has_sent) {
      auto it = pins_.find(flow.flow_id);
      if (it != pins_.end()) return it->second;
    }
    return inner_->select_path(flow, pkt);
  }
  void on_ack(lb::FlowCtx& f, const net::Packet& a) override { inner_->on_ack(f, a); }
  void on_data_arrival(const net::Packet& d) override { inner_->on_data_arrival(d); }
  void decorate_ack(const net::Packet& d, net::Packet& a) override {
    inner_->decorate_ack(d, a);
  }
  void on_timeout(lb::FlowCtx& f) override { inner_->on_timeout(f); }
  void on_retransmit(lb::FlowCtx& f, int p) override { inner_->on_retransmit(f, p); }
  void on_flow_complete(lb::FlowCtx& f) override { inner_->on_flow_complete(f); }
  [[nodiscard]] std::string_view name() const override { return inner_->name(); }

 private:
  std::unique_ptr<lb::LoadBalancer> inner_;
  std::map<std::uint64_t, int> pins_;
};

}  // namespace hermes::bench
