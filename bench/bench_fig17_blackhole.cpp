// Figure 17: [Simulation] performance under a packet blackhole: one spine
// deterministically drops packets of half the source-destination pairs
// from rack 1 to rack 8 (indices 0 and 7 here), web-search workload.
//
// Paper claims: Hermes detects the blackhole after 3 timeouts, so every
// flow finishes and Hermes is >=1.6x better than all others; ECMP
// strands the flows hashed onto the failed switch (unfinished flows blow
// its average up 9-22x); CONGA shifts MORE flows into the blackhole (it
// looks uncongested); Presto* finishes everything (round robin touches
// all paths) but is slowed; LetFlow escapes eventually via flowlets.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hermes/lb/flow_ctx.hpp"

namespace {

// Where the Hermes cell's flight-recorder dump goes (--trace=<path>).
// `hermestrace <path> --summary` then lists the blackhole latches —
// flow, path, and leaf pair — that explain the table's "bh drops" column.
std::string parse_trace_path(int argc, char** argv) {
  std::string path = "TRACE_fig17_hermes.htrc";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) path = argv[i] + 8;
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 17: packet blackhole (half of rack0->rack7 pairs at one spine), web-search",
      "Hermes: all flows finish, >=1.6x better; ECMP ~unfinished flows, 9-22x worse; "
      "CONGA worse than ECMP (shifts flows INTO the blackhole)");

  const Scheme schemes[] = {Scheme::kEcmp, Scheme::kConga, Scheme::kLetFlow,
                            Scheme::kPrestoStar, Scheme::kHermes};
  const double loads[] = {0.3, 0.5, 0.7};
  const int flows = bench::scaled(1000, scale);
  const int warmup = bench::scaled(200, scale);
  const auto ws = workload::SizeDist::web_search();
  const int failed_spine = 2;

  bench::MetricsJson mj{"bench_fig17_blackhole"};
  const std::string trace_path = parse_trace_path(argc, argv);

  for (double load : loads) {
    std::printf("[load %.1f, %d flows, blackhole at spine %d]\n", load, flows, failed_spine);
    stats::Table t({"scheme", "avg FCT (incl. unfinished)", "unfinished", "affected-pair avg",
                    "bh drops", "norm. to Hermes"});
    double hermes = 1;
    struct Cell {
      double mean, unfinished, affected;
      std::uint64_t bh_drops;
    };
    std::vector<Cell> cells;
    for (Scheme scheme : schemes) {
      harness::ScenarioConfig cfg;
      cfg.topo = bench::sim_topology();
      cfg.scheme = scheme;
      cfg.max_sim_time = sim::sec(5);
      if (scheme == Scheme::kHermes) {
        // Record Hermes's Algorithm-2 decisions (not per-packet events —
        // the ring would wrap long before the blackhole latches land).
        cfg.obs.enabled = true;
        cfg.obs.trace_packets = false;
      }
      auto install = [&](harness::Scenario& s) {
        s.topology().spine(failed_spine).set_failure(
            {.blackhole =
                 [&topo = s.topology()](const net::Packet& p) {
                   if (p.type != net::PacketType::kData) return false;
                   if (topo.leaf_of(p.src) != 0 || topo.leaf_of(p.dst) != 7) return false;
                   // "half of the source-destination IP pairs"
                   return lb::mix64(static_cast<std::uint64_t>(p.src) * 4096 +
                                    static_cast<std::uint64_t>(p.dst)) %
                              2 ==
                          0;
                 },
             .random_drop_rate = 0.0});
      };
      // Fewer blackhole drops = the scheme stopped feeding the dead
      // paths (Hermes latches after 3 timeouts; CONGA keeps feeding).
      std::uint64_t bh_drops = 0;
      auto harvest = [&](harness::Scenario& s) {
        bh_drops = s.topology().spine(failed_spine).blackhole_drops();
        mj.add_cell(bench::short_name(scheme), load, s.metrics().snapshot_json());
        // Each Hermes cell overwrites the dump, so the file ends up with
        // the highest load — the cell where blackhole latches actually
        // fire (at 0.3 the affected pairs rarely re-hit the dead path
        // three times, so the detector never has to latch).
        if (scheme == Scheme::kHermes && s.dump_trace(trace_path)) {
          std::printf("wrote %s (load %.1f)\n", trace_path.c_str(), load);
        }
      };
      auto fct = bench::skip_warmup(bench::run_cell(cfg, ws, load, flows, 1, install, harvest),
                                    static_cast<std::uint64_t>(warmup));
      // Affected-pair breakdown: the collector has no src/dst, so
      // approximate the affected set by the slowest 2% of flows
      // (dominated by blackholed pairs).
      double affected_sum = 0;
      int affected_n = 0;
      std::vector<double> fcts;
      for (const auto& r : fct.records()) fcts.push_back(r.fct().to_usec());
      const double p98 = stats::percentile(fcts, 98);
      for (double v : fcts)
        if (v >= p98) {
          affected_sum += v;
          ++affected_n;
        }
      Cell c{fct.overall_with_unfinished().mean_us, fct.unfinished_fraction(),
             affected_n ? affected_sum / affected_n : 0, bh_drops};
      cells.push_back(c);
      if (scheme == Scheme::kHermes) hermes = c.mean;
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      t.add_row({bench::short_name(schemes[i]), stats::Table::usec(cells[i].mean),
                 stats::Table::pct(cells[i].unfinished, 2), stats::Table::usec(cells[i].affected),
                 std::to_string(cells[i].bh_drops), stats::Table::num(cells[i].mean / hermes, 2)});
    }
    t.print();
    std::printf("\n");
  }
  mj.write(bench::parse_json_path(argc, argv, "BENCH_fig17.json"));
  return 0;
}
