// Figure 11: [Testbed] web-search workload FCT breakdown in the
// asymmetric case: small-flow (<100KB) average, small-flow 99th
// percentile, and large-flow (>10MB) average (normalized to Hermes).
//
// Paper claims: Hermes 12-30% better than CLOVE-ECN across flow size
// groups; Presto* suffers most on large flows under high load.

#include <array>
#include <cstddef>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 11: testbed, asymmetric, web-search FCT breakdown",
      "Hermes ahead of CLOVE-ECN in every size group; large flows hit Presto* hardest");

  auto topo = bench::testbed_topology();
  topo.fabric_overrides[{0, 1, 1}] = 0;

  const Scheme schemes[] = {Scheme::kEcmp, Scheme::kCloveEcn, Scheme::kPrestoStar,
                            Scheme::kHermes};
  const double loads_symmetric[] = {0.45, 0.6};
  const int flows = bench::scaled(600, scale);
  const auto ws = workload::SizeDist::web_search();

  for (double load_sym : loads_symmetric) {
    std::printf("[load %.2f of symmetric capacity, %d flows]\n", load_sym, flows);
    stats::Table t({"scheme", "small avg", "small p99", "large avg",
                    "large avg (norm. to Hermes)"});
    double hermes_large = 0;
    std::vector<std::array<double, 3>> cells;
    for (Scheme scheme : schemes) {
      harness::ScenarioConfig cfg;
      cfg.topo = topo;
      cfg.scheme = scheme;
      cfg.clove.flowlet_timeout = sim::usec(800);
      auto fct = bench::run_cell(cfg, ws, load_sym / 0.75, flows, 1);
      const auto small = fct.small_flows();
      const auto large = fct.large_flows();
      cells.push_back({small.mean_us, small.p99_us, large.mean_us});
      if (scheme == Scheme::kHermes) hermes_large = large.mean_us;
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      t.add_row({bench::short_name(schemes[i]), stats::Table::usec(cells[i][0]),
                 stats::Table::usec(cells[i][1]), stats::Table::usec(cells[i][2]),
                 stats::Table::num(hermes_large > 0 ? cells[i][2] / hermes_large : 0, 2)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
