// Extension: resilience scorecard under a *transient* blackhole.
//
// The paper's failure experiments (Figs. 16/17) hold the fault for the
// whole run. Production faults heal — a flapping transceiver or a TCAM
// rewrite lasts well under a second (§2.1) — so what matters is the
// whole arc: how fast a scheme detects the fault, whether it strands
// flows while the fault is live, and whether it releases the path once
// the fault clears (Hermes's failure latch expires without fresh
// evidence; §3.1.2).
//
// Scorecard, per scheme, around a blackhole active on [t1, t2):
//   - avg FCT (incl. unfinished) and its degradation vs a no-fault run
//   - stalled flows at t2 (no ACK progress over the last 10ms of outage)
//   - unfinished flows at the end of the run
//   - detection latency after onset and un-latch latency after recovery
//     (Hermes only: per-pair blackhole latch introspection)
//   - per-reason injected-drop counters and the invariant verdict
//
// Expectation: Hermes latches within 3 timeouts (RTO backoff 10+20+40ms
// worst case), un-latches after recovery, and finishes every flow; ECMP
// has >0 stalled flows during the outage (its hash never escapes the
// failed spine); CONGA also strands flows (the blackholed path looks
// idle).

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "hermes/faults/fault_plan.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  using sim::msec;
  const double scale = bench::parse_scale(argc, argv);

  const auto topo = bench::sim_topology();
  const int src_leaf = 0;
  const int dst_leaf = topo.num_leaves - 1;
  const int failed_spine = 2;
  const sim::SimTime t1 = msec(20);
  const sim::SimTime t2 = msec(120);

  bench::print_header(
      "Resilience scorecard: transient blackhole (one spine, rack0->rack7, 20ms-120ms)",
      "Hermes latches within 3 timeouts, un-latches after recovery, finishes all flows; "
      "ECMP/CONGA strand flows while the fault is live");

  const Scheme schemes[] = {Scheme::kHermes, Scheme::kEcmp, Scheme::kConga};
  const int bg_flows = bench::scaled(300, scale);

  struct Row {
    double base_mean = 0, fault_mean = 0;
    std::size_t stalled_t2 = 0, unfinished = 0;
    double detect_ms = -1, unlatch_ms = -1;
    std::uint64_t bh_drops = 0;
    bool inv_ok = false;
    std::uint64_t checks = 0;
  };
  std::vector<Row> rows;
  bool all_invariants_ok = true;

  for (Scheme scheme : schemes) {
    Row row;
    for (bool faulted : {false, true}) {
      harness::ScenarioConfig cfg;
      cfg.topo = topo;
      cfg.scheme = scheme;
      cfg.seed = 1;
      cfg.max_sim_time = sim::sec(2);
      if (faulted) {
        cfg.fault_plan.transient_blackhole(
            t1, t2, failed_spine,
            faults::rack_pair_blackhole(topo.hosts_per_leaf, src_leaf, dst_leaf));
        cfg.check_invariants = true;
      }
      harness::Scenario s{cfg};

      // The affected pair: one 100MB flow per rack0 host to its rack7
      // peer, all starting exactly at onset. That is the worst case for
      // detection: a fresh flow has no history, and the blackholed path
      // drops data but not probes, so it looks *idle* and attracts
      // placements — only the blackhole latch (3 consecutive timeouts,
      // §3.1.2) can rescue the flows that land on it. (Flows started
      // before onset escape via a different signal: the late ACKs of
      // their pre-onset in-flight tail mark the path congested, which
      // never demonstrates the latch.) At 2:1 leaf oversubscription each
      // flow gets ~5G, so they span the whole [t1, t2) fault window.
      std::vector<std::pair<std::int32_t, std::int32_t>> pairs;
      for (int h = 0; h < topo.hosts_per_leaf; ++h) {
        const std::int32_t src = s.topology().first_host_of_leaf(src_leaf) + h;
        const std::int32_t dst = s.topology().first_host_of_leaf(dst_leaf) + h;
        s.add_flow(src, dst, 100'000'000, t1);
        pairs.emplace_back(src, dst);
      }
      // Plus fabric-wide web-search background.
      workload::TrafficConfig tc;
      tc.load = 0.3;
      tc.num_flows = bg_flows;
      tc.seed = 1;
      s.add_flows(workload::generate_poisson_traffic(
          s.topology(), workload::SizeDist::web_search(), tc));

      if (faulted) {
        // The blackholed path's local index for the affected leaf pair.
        int failed_local = -1;
        for (const auto& p : s.topology().paths_between_leaves(src_leaf, dst_leaf)) {
          if (p.spine == failed_spine) failed_local = p.local_index;
        }

        // Stalled flows at outage end: snapshot ACK progress 10ms before
        // t2 and count flows that made none by t2.
        auto una_of = [&s](std::uint64_t id, std::int32_t src) -> std::int64_t {
          if (transport::TcpSender* snd = s.stack(src).sender(id))
            return static_cast<std::int64_t>(snd->snd_una());
          return -1;
        };
        // Ordered maps: the t2 sweep below iterates them, and the stall
        // count must not depend on hash order if it ever turns into a
        // per-flow report.
        std::map<std::uint64_t, std::int64_t> una0;
        std::map<std::uint64_t, std::int32_t> srcs;
        s.simulator().at(t2 - msec(10), [&] {
          for (const std::uint64_t id : s.sorted_active_ids()) {
            const transport::FlowSpec& spec = s.active_flows().at(id);
            una0[id] = una_of(id, spec.src);
            srcs[id] = spec.src;
          }
        });
        s.simulator().at(t2, [&] {
          for (const auto& [id, prev] : una0) {
            if (prev < 0) continue;
            const auto it = s.active_flows().find(id);
            if (it == s.active_flows().end()) continue;  // finished: not stalled
            if (una_of(id, srcs[id]) == prev) ++row.stalled_t2;
          }
        });

        // Hermes latch introspection: poll every 500us for onset
        // detection and for release after recovery.
        if (s.hermes() && failed_local >= 0) {
          auto any_latched = [&, failed_local] {
            for (const auto& [src, dst] : pairs)
              if (s.hermes()->blackholed(src, dst, failed_local)) return true;
            return false;
          };
          for (sim::SimTime at = t1; at < sim::sec(1); at += sim::usec(500)) {
            s.simulator().at(at, [&, at] {
              const bool latched = any_latched();
              if (row.detect_ms < 0 && latched) row.detect_ms = (at - t1).to_usec() / 1000.0;
              if (at >= t2 && row.detect_ms >= 0 && row.unlatch_ms < 0 && !latched)
                row.unlatch_ms = (at - t2).to_usec() / 1000.0;
            });
          }
        }
      }

      const auto fct = s.run();
      const double mean = fct.overall_with_unfinished().mean_us;
      if (!faulted) {
        row.base_mean = mean;
      } else {
        row.fault_mean = mean;
        row.unfinished = fct.unfinished_flows();
        for (int sp = 0; sp < topo.num_spines; ++sp)
          row.bh_drops += s.topology().spine(sp).blackhole_drops();
        if (s.invariants() != nullptr) {
          s.invariants()->check_now("end of bench");
          row.inv_ok = s.invariants()->ok();
          row.checks = s.invariants()->checks_run();
          if (!row.inv_ok) {
            all_invariants_ok = false;
            std::printf("  INVARIANT VIOLATION (%s): %s\n", bench::short_name(scheme),
                        s.invariants()->violations().front().what.c_str());
          }
        }
      }
    }
    rows.push_back(row);
  }

  stats::Table t({"scheme", "avg FCT (fault)", "vs no-fault", "stalled@t2", "unfinished",
                  "detect (ms)", "un-latch (ms)", "bh drops", "invariants"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    t.add_row({bench::short_name(schemes[i]), stats::Table::usec(r.fault_mean),
               stats::Table::num(r.fault_mean / r.base_mean, 2) + "x",
               std::to_string(r.stalled_t2), std::to_string(r.unfinished),
               r.detect_ms >= 0 ? stats::Table::num(r.detect_ms, 1) : "-",
               r.unlatch_ms >= 0 ? stats::Table::num(r.unlatch_ms, 1) : "-",
               std::to_string(r.bh_drops),
               r.checks ? (r.inv_ok ? "PASS" : "FAIL") : "-"});
  }
  t.print();

  // Acceptance verdicts. The detection bound is 3 RTO-backoff windows
  // (10+20+40ms) plus polling slack; un-latch is the 100ms latch expiry
  // after the last confirming timeout, so anything finite counts.
  const Row& hermes = rows[0];
  const Row& ecmp = rows[1];
  const auto verdict = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    return ok;
  };
  bool ok = true;
  ok &= verdict(hermes.detect_ms >= 0 && hermes.detect_ms <= 80.0,
                "Hermes latches the blackholed path within 3 timeouts (<=80ms)");
  ok &= verdict(hermes.unlatch_ms >= 0, "Hermes un-latches the path after recovery");
  ok &= verdict(hermes.unfinished == 0, "Hermes finishes every flow");
  ok &= verdict(ecmp.stalled_t2 > 0, "ECMP has stalled flows during the outage");
  ok &= verdict(all_invariants_ok, "byte conservation + queue bounds hold on every run");
  std::printf("\nresilience scorecard: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
