// Table 2: average number of concurrent flows observed on parallel paths
// between ToR-to-ToR vs host-to-host pairs.
//
// Paper numbers (8x8 fabric, 10G): switch pair 1.7-5.9 flows per path,
// host pair 0.007-0.022 — i.e. a ToR aggregates ~(hosts/leaf)^2 = 256x
// the visibility of an end host pair, which is why piggybacking-only
// edge schemes are nearly blind and Hermes needs active probing.

#include <map>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Table 2: concurrent flows observed on parallel paths (switch pair vs host pair)",
      "switch pair ~1.7-5.9; host pair ~0.007-0.022 (ratio = hosts_per_leaf^2 = 256)");

  struct Cell {
    const char* workload;
    double load;
    workload::SizeDist dist;
  };
  const Cell cells[] = {
      {"data-mining", 0.6, workload::SizeDist::data_mining()},
      {"data-mining", 0.8, workload::SizeDist::data_mining()},
      {"web-search", 0.6, workload::SizeDist::web_search()},
      {"web-search", 0.8, workload::SizeDist::web_search()},
  };

  stats::Table t({"workload", "load", "switch pair", "host pair", "ratio"});
  for (const auto& cell : cells) {
    harness::ScenarioConfig cfg;
    cfg.topo = bench::sim_topology();
    cfg.scheme = harness::Scheme::kEcmp;
    cfg.max_sim_time = sim::sec(30);
    harness::Scenario s{cfg};
    const int flows = bench::scaled(cell.workload[0] == 'd' ? 400 : 2000, scale);
    workload::TrafficConfig tc{.load = cell.load, .num_flows = flows, .seed = 1};
    const auto specs = workload::generate_poisson_traffic(s.topology(), cell.dist, tc);
    s.add_flows(specs);

    const int L = cfg.topo.num_leaves;
    const int H = cfg.topo.hosts_per_leaf;
    const int n_paths = cfg.topo.num_spines;
    double switch_vis = 0, host_vis = 0;
    int samples = 0;
    // Sample only while the arrival process is live (the paper measures
    // a continuously offered load); afterwards the fabric just drains.
    const auto span = specs.back().start;
    for (int i = 1; i <= 200; ++i) {
      s.simulator().at(span / 5 + (span * 4 / 5) * i / 200, [&] {
        double active = static_cast<double>(s.active_flows().size());
        // Every active flow sits between exactly one ordered leaf pair
        // and one host pair; visibility = flows per pair per path.
        switch_vis += active / (L * (L - 1)) / n_paths;
        host_vis += active / (static_cast<double>(L * H) * (L - 1) * H) / n_paths;
        ++samples;
      });
    }
    auto fct = s.run();
    (void)fct;
    switch_vis /= samples;
    host_vis /= samples;
    t.add_row({cell.workload, stats::Table::num(cell.load, 1),
               stats::Table::num(switch_vis, 3), stats::Table::num(host_vis, 4),
               stats::Table::num(host_vis > 0 ? switch_vis / host_vis : 0, 0)});
  }
  t.print();
  std::printf("\nNote: absolute values depend on how long flows stay in the system\n"
              "(our FCTs differ from the testbed's); the switch/host ratio of 256x is\n"
              "the structural result that motivates Hermes's active probing.\n");
  return 0;
}
