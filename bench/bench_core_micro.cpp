// Microbenchmarks of the simulator substrate (google-benchmark): event
// queue throughput, DRE updates, route construction, and the end-to-end
// packet pipeline rate. These bound how much simulated traffic the
// experiment harness can push per wall-clock second.

#include <benchmark/benchmark.h>

#include "hermes/net/dre.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/harness/scenario.hpp"

namespace {

using namespace hermes;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) q.post_at(sim::usec(i % 100), [] {});
    q.run();
    benchmark::DoNotOptimize(q.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_DreAddAndRead(benchmark::State& state) {
  net::Dre dre{sim::usec(50), 0.1};
  sim::SimTime t{};
  for (auto _ : state) {
    dre.add(1500, t);
    benchmark::DoNotOptimize(dre.rate_bps(t));
    t += sim::nsec(1200);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DreAddAndRead);

void BM_RouteConstruction(benchmark::State& state) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, net::TopologyConfig{}};
  int path = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.forward_route(0, 100, path));
    path = (path + 1) % topo.paths_between_leaves(0, 6).size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteConstruction);

void BM_PacketPipeline10MB(benchmark::State& state) {
  for (auto _ : state) {
    harness::ScenarioConfig cfg;
    cfg.topo.num_leaves = 2;
    cfg.topo.num_spines = 2;
    cfg.topo.hosts_per_leaf = 1;
    cfg.scheme = harness::Scheme::kHermes;
    harness::Scenario s{cfg};
    s.add_flow(0, 1, 10'000'000, sim::SimTime::zero());
    auto fct = s.run();
    benchmark::DoNotOptimize(fct.overall().mean_us);
  }
  // ~6850 data packets + ACKs per iteration.
  state.SetItemsProcessed(state.iterations() * 13700);
}
BENCHMARK(BM_PacketPipeline10MB);

}  // namespace

BENCHMARK_MAIN();
