// Microbenchmarks of the simulator substrate: event-queue throughput
// with packet-hop-sized callback captures, cancellable-timer churn, DRE
// updates, route construction, and the end-to-end packet pipeline rate.
// These bound how much simulated traffic the experiment harness can push
// per wall-clock second.
//
// Unlike the figure benches this binary is self-timed (no
// google-benchmark): it overrides global operator new/delete to count
// heap allocations — the point of the inline-storage event path is
// "zero allocations per event", and that is asserted here as a number,
// not inferred from a profiler. Results go to stdout and to a
// machine-readable JSON file (--json=<path>, default BENCH_core.json).
//
// Usage: bench_core_micro [--smoke] [--json=<path>]
//   --smoke: tiny iteration counts — a CI liveness check, not a
//   measurement.

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "hermes/engine/config.hpp"
#include "hermes/engine/decision.hpp"
#include "hermes/engine/engine.hpp"
#include "hermes/engine/time.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/net/dre.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/records.hpp"
#include "hermes/sim/simulator.hpp"

// ---------------------------------------------------------------------------
// Heap accounting: every operator new in the process bumps a counter.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace hermes;
// hermeslint:allow(determinism.clock) the microbench reports real wall-clock throughput (events/s, pkts/s); sim results never read this clock
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Heap bytes currently in use (allocator's view), or 0 when the libc
/// cannot report it. mallinfo2 is glibc >= 2.33; the older mallinfo
/// truncates to int and is not worth a wrong number. uordblks covers
/// arena allocations, hblkhd the large mmap'd blocks (big vectors).
std::size_t heap_in_use_bytes() {
#if defined(__GLIBC__) && (__GLIBC__ > 2 || (__GLIBC__ == 2 && __GLIBC_MINOR__ >= 33))
  const auto mi = mallinfo2();
  return static_cast<std::size_t>(mi.uordblks) + static_cast<std::size_t>(mi.hblkhd);
#else
  return 0;
#endif
}

struct Metric {
  std::string bench;
  std::string name;
  double value;
};
std::vector<Metric>& metrics() {
  static std::vector<Metric> m;
  return m;
}
void record(const char* bench, const char* name, double value) {
  metrics().push_back({bench, name, value});
}

/// Stand-in for a packet-hop capture: the deliver/finish lambdas on the
/// port hot path capture a handful of pointers/ints (bulky state lives
/// in the owning object — kInlineCallbackBytes is a deliberately tight
/// global budget). Sized to fill the budget so the bench measures the
/// worst admissible capture.
struct HopPayload {
  std::uint64_t words[(sim::EventQueue::kInlineCallbackBytes - sizeof(void*)) /
                      sizeof(std::uint64_t)] = {};
};
static_assert(sizeof(HopPayload) + sizeof(void*) <= sim::EventQueue::kInlineCallbackBytes);

std::uint64_t g_sink = 0;

/// Event-queue throughput with hop-sized captures: schedule `n` events
/// at pseudo-random times in a ~2ms window (spanning level-0 buckets)
/// and drain. This is the simulator's innermost loop.
void bench_event_queue_hot(int reps, int n) {
  sim::EventQueue q;
  std::uint64_t lcg = 12345;
  std::uint64_t allocs0 = 0;
  double heap_per_event = 0;
  double dt = 0;
  std::uint64_t events = 0;
  // Rep 0 warms bucket/due capacity and is excluded from the counters:
  // the claim under test is the *steady-state* cost.
  for (int rep = 0; rep < reps + 1; ++rep) {
    const bool timed = rep > 0;
    if (rep == 1) allocs0 = g_alloc_count.load(std::memory_order_relaxed);
    const std::size_t heap0 = rep == 0 ? heap_in_use_bytes() : 0;
    const auto t0 = Clock::now();
    const sim::SimTime base = q.now();
    for (int i = 0; i < n; ++i) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      HopPayload payload;
      payload.words[0] = lcg;
      q.post_at(base + sim::nsec(static_cast<std::int64_t>(lcg % 2'000'000)),
                [payload] { g_sink += payload.words[0]; });
    }
    if (rep == 0) {
      heap_per_event = static_cast<double>(heap_in_use_bytes() - heap0) / n;
    }
    q.run();
    if (timed) {
      dt += seconds_since(t0);
      events += static_cast<std::uint64_t>(n);
    }
  }
  const auto allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  const auto ev = static_cast<double>(events);
  record("event_queue_hot", "events_per_sec", ev / dt);
  record("event_queue_hot", "ns_per_event", dt * 1e9 / ev);
  record("event_queue_hot", "allocs_per_event_steady", static_cast<double>(allocs) / ev);
  record("event_queue_hot", "heap_bytes_per_stored_event", heap_per_event);
  std::printf("event_queue_hot       %10.0f events/s  %6.1f ns/event  %.4f allocs/event (steady)\n",
              ev / dt, dt * 1e9 / ev, static_cast<double>(allocs) / ev);
}

/// Cancellable-timer churn: the retransmission-timer pattern — schedule,
/// then cancel half before they fire. Steady state must not allocate:
/// timer records come from the pooled free-list.
void bench_timer_churn(int reps, int n) {
  std::vector<sim::EventQueue::Handle> handles(static_cast<std::size_t>(n));
  // One rep outside the timer: warm the slot pool and bucket capacity.
  sim::EventQueue q;
  std::uint64_t allocs0 = 0;
  double dt = 0;
  std::uint64_t fired = 0;
  for (int rep = 0; rep < reps + 1; ++rep) {
    const bool timed = rep > 0;
    if (timed && rep == 1) {
      allocs0 = g_alloc_count.load(std::memory_order_relaxed);
    }
    const auto t0 = Clock::now();
    const sim::SimTime base = q.now();
    for (int i = 0; i < n; ++i) {
      handles[static_cast<std::size_t>(i)] =
          q.schedule_at(base + sim::usec(1 + i % 100), [] { ++g_sink; });
    }
    for (int i = 0; i < n; i += 2) handles[static_cast<std::size_t>(i)].cancel();
    q.run();
    if (timed) {
      dt += seconds_since(t0);
      fired += static_cast<std::uint64_t>(n);
    }
  }
  const auto allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  const double events = static_cast<double>(fired);
  record("timer_churn", "timers_per_sec", events / dt);
  record("timer_churn", "ns_per_timer", dt * 1e9 / events);
  record("timer_churn", "allocs_per_timer_steady", static_cast<double>(allocs) / events);
  std::printf("timer_churn           %10.0f timers/s  %6.1f ns/timer  %.4f allocs/timer (steady)\n",
              events / dt, dt * 1e9 / events, static_cast<double>(allocs) / events);
}

/// End-to-end packet pipeline: one 10MB Hermes flow across a 2x2 fabric,
/// ~13700 packet events (data + ACKs) per rep.
void bench_packet_pipeline(int reps) {
  constexpr double kPacketsPerRep = 13700;
  const auto allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  std::uint64_t events = 0;
  for (int rep = 0; rep < reps; ++rep) {
    harness::ScenarioConfig cfg;
    cfg.topo.num_leaves = 2;
    cfg.topo.num_spines = 2;
    cfg.topo.hosts_per_leaf = 1;
    cfg.scheme = harness::Scheme::kHermes;
    harness::Scenario s{cfg};
    s.add_flow(0, 1, 10'000'000, sim::SimTime::zero());
    const auto fct = s.run();
    g_sink += static_cast<std::uint64_t>(fct.overall().mean_us);
    events += s.simulator().events().events_processed();
  }
  const double dt = seconds_since(t0);
  const auto allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  const double pkts = kPacketsPerRep * reps;
  record("packet_pipeline_10mb", "packets_per_sec", pkts / dt);
  record("packet_pipeline_10mb", "ns_per_packet", dt * 1e9 / pkts);
  record("packet_pipeline_10mb", "allocs_per_packet", static_cast<double>(allocs) / pkts);
  record("packet_pipeline_10mb", "events_per_packet", static_cast<double>(events) / pkts);
  std::printf("packet_pipeline_10mb  %10.0f pkts/s    %6.1f ns/pkt    %.4f allocs/pkt\n",
              pkts / dt, dt * 1e9 / pkts, static_cast<double>(allocs) / pkts);
}

/// Warmed steady-state pipeline: one scenario constructed once, a warm
/// flow run to size every arena chunk, SoA ring and event bucket, then
/// `reps` measured flows reuse that capacity. This phase carries the
/// zero-alloc claim for the packet path as a hard assertion: with the
/// packet arena, index-ring queues and inline callbacks in place, the
/// only remaining allocations are per-flow endpoint setup (one TcpSender/
/// TcpReceiver pair and their map nodes per rep) — bounded at 0.01 per
/// packet, and a regression on the per-packet path blows well past that.
bool bench_packet_pipeline_steady(int reps) {
  constexpr double kPacketsPerRep = 13700;
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 2;
  cfg.topo.hosts_per_leaf = 1;
  cfg.scheme = harness::Scheme::kHermes;
  cfg.max_sim_time = sim::sec(100);  // absolute cap; reps accumulate sim time
  harness::Scenario s{cfg};
  s.add_flow(0, 1, 10'000'000, sim::SimTime::zero());
  s.run();  // warm: grows rings, buckets and arena chunks exactly once
  const auto allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    s.add_flow(0, 1, 10'000'000, s.simulator().now());
    const auto fct = s.run();
    g_sink += static_cast<std::uint64_t>(fct.overall().mean_us);
  }
  const double dt = seconds_since(t0);
  const auto allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  const double pkts = kPacketsPerRep * reps;
  const double allocs_per_pkt = static_cast<double>(allocs) / pkts;
  record("packet_pipeline_steady", "packets_per_sec", pkts / dt);
  record("packet_pipeline_steady", "ns_per_packet", dt * 1e9 / pkts);
  record("packet_pipeline_steady", "allocs_per_packet", allocs_per_pkt);
  std::printf("packet_pipeline_steady%10.0f pkts/s    %6.1f ns/pkt    %.4f allocs/pkt (max 0.01)\n",
              pkts / dt, dt * 1e9 / pkts, allocs_per_pkt);
  if (allocs_per_pkt > 0.01) {
    std::fprintf(stderr, "FAIL: steady-state packet pipeline allocated %.4f times per packet "
                         "(budget 0.01) — the zero-alloc packet path is regressing\n",
                 allocs_per_pkt);
    return false;
  }
  return true;
}

/// Flight-recorder append: the claim is *literal zero* heap allocations
/// per record once the ring exists — append is a 64-byte struct copy
/// into preallocated power-of-two storage. Like the event-queue claim,
/// this is asserted as a number, not inferred: a nonzero count fails the
/// bench binary.
bool bench_recorder_append(int n) {
  obs::FlightRecorder rec{1u << 16};
  const auto name = rec.intern("leaf0.up0");
  const auto allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  for (int i = 0; i < n; ++i) {
    auto r = obs::make_record(obs::RecordKind::kPacket,
                              static_cast<std::uint64_t>(i) * 800, name,
                              static_cast<std::uint64_t>(i) & 7);
    r.u.packet.packet_id = static_cast<std::uint64_t>(i);
    r.u.packet.size = 1500;
    rec.append(r);
  }
  const double dt = seconds_since(t0);
  const auto allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  g_sink += rec.total_appended();
  record("flight_recorder_append", "ns_per_record", dt * 1e9 / n);
  record("flight_recorder_append", "allocs_total", static_cast<double>(allocs));
  std::printf("flight_recorder_append%38.1f ns/record  %" PRIu64 " allocs (must be 0)\n",
              dt * 1e9 / n, allocs);
  if (allocs != 0) {
    std::fprintf(stderr, "FAIL: flight-recorder append heap-allocated %" PRIu64
                         " time(s) over %d records\n",
                 allocs, n);
    return false;
  }
  return true;
}

/// Zero-overhead-when-disabled proof, measured in the full packet
/// pipeline rather than a microloop: identical 10MB-flow scenarios run
/// with observability off and on. Off must allocate *exactly* the same
/// deterministic count run to run (each instrumented site is one
/// predicted-not-taken null check); on may add only the O(1) setup cost
/// (ring + name table) — never allocations proportional to the ~13700
/// packets per rep.
bool bench_obs_pipeline() {
  constexpr double kPacketsPerRep = 13700;
  const auto run_once = [&](bool obs_on) -> std::uint64_t {
    const auto a0 = g_alloc_count.load(std::memory_order_relaxed);
    harness::ScenarioConfig cfg;
    cfg.topo.num_leaves = 2;
    cfg.topo.num_spines = 2;
    cfg.topo.hosts_per_leaf = 1;
    cfg.scheme = harness::Scheme::kHermes;
    cfg.obs.enabled = obs_on;
    harness::Scenario s{cfg};
    s.add_flow(0, 1, 10'000'000, sim::SimTime::zero());
    const auto fct = s.run();
    g_sink += static_cast<std::uint64_t>(fct.overall().mean_us);
    return g_alloc_count.load(std::memory_order_relaxed) - a0;
  };
  run_once(false);  // warm malloc arenas and static tables
  const std::uint64_t off_a = run_once(false);
  const std::uint64_t off_b = run_once(false);
  const std::uint64_t on = run_once(true);
  const std::uint64_t setup = on > off_b ? on - off_b : 0;
  record("obs_pipeline", "allocs_per_rep_obs_off", static_cast<double>(off_b));
  record("obs_pipeline", "allocs_per_rep_obs_on", static_cast<double>(on));
  record("obs_pipeline", "extra_allocs_per_packet_obs_on", setup / kPacketsPerRep);
  std::printf("obs_pipeline          obs-off %" PRIu64 " allocs/rep, obs-on +%" PRIu64
              " (setup only; %.4f/pkt)\n",
              off_b, setup, setup / kPacketsPerRep);
  bool ok = true;
  if (off_a != off_b) {
    std::fprintf(stderr, "FAIL: disabled-observability pipeline allocation count is not "
                         "deterministic (%" PRIu64 " vs %" PRIu64 ")\n",
                 off_a, off_b);
    ok = false;
  }
  // Setup cost: the ring (one vector) + interned names + bookkeeping.
  // Anything bigger means a per-packet site is allocating.
  if (setup > 64) {
    std::fprintf(stderr, "FAIL: enabling observability added %" PRIu64
                         " allocations per rep — instrumentation is allocating "
                         "per packet, not per scenario\n",
                 setup);
    ok = false;
  }
  return ok;
}

/// The extracted decision engine's hot path: Algorithm 2 per-packet
/// decisions over an 8-path group pair with mixed sensed conditions
/// (good / gray / congested) and a 64-flow working set alternating
/// established forwarding with fresh placements. decide() is tagged
/// HERMES_HOT and must be *literally* allocation-free in steady state —
/// the PathSet is sized by the embedder up front, candidate scans are
/// in-place, and the tie-break RNG draws from preallocated state. Like
/// the recorder-append claim this is asserted as a number.
bool bench_engine_decide(int n) {
  engine::Config cfg;
  cfg.t_rtt_low = engine::usec(60);
  cfg.t_rtt_high = engine::usec(180);
  cfg.delta_rtt = engine::usec(80);
  cfg.reroute_rate_limit_bps = 1e12;  // rate gate open: scans always run
  engine::Engine eng{cfg, 2, /*rng_seed=*/42};
  eng.path_set(0, 1).ensure(8);
  // Sensed mix: paths 0-3 good, 4-5 unsampled gray, 6-7 congested.
  for (int rep = 0; rep < 200; ++rep) {
    for (int li = 0; li < 4; ++li) eng.on_ack(0, 1, li, 1, 2, true, engine::usec(35 + li), false);
    for (int li = 6; li < 8; ++li) eng.on_ack(0, 1, li, 1, 2, true, engine::usec(250), true);
  }

  engine::FlowView flows[64];
  for (int i = 0; i < 64; ++i) {
    flows[i].flow_id = static_cast<std::uint64_t>(i + 1);
    flows[i].src = 1;
    flows[i].dst = 2;
    flows[i].src_group = 0;
    flows[i].dst_group = 1;
    flows[i].bytes_sent = 1 << 20;  // past S: the reroute gates engage
  }
  engine::TimeNs t = 0;
  const auto step = [&](int i) {
    engine::FlowView& f = flows[i & 63];
    t += 120;
    if ((i & 1023) == 0) f.has_sent = false;  // periodic fresh placement
    const int chosen = eng.decide(f, 1500, t);
    f.cur_local = chosen;
    f.has_sent = true;
    g_sink += static_cast<std::uint64_t>(chosen);
  };
  for (int i = 0; i < n / 10; ++i) step(i);  // warm every branch once

  const auto allocs0 = g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  for (int i = 0; i < n; ++i) step(i);
  const double dt = seconds_since(t0);
  const auto allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs0;

  record("engine_decide", "decisions_per_sec", n / dt);
  record("engine_decide", "ns_per_decision", dt * 1e9 / n);
  record("engine_decide", "allocs_per_decision_steady",
         static_cast<double>(allocs) / n);
  std::printf("engine_decide      %12.0f decisions/s  %6.1f ns/decision  %" PRIu64
              " allocs (must be 0)\n",
              n / dt, dt * 1e9 / n, allocs);
  if (allocs != 0) {
    std::fprintf(stderr, "FAIL: engine decide() heap-allocated %" PRIu64
                         " time(s) over %d decisions — the HERMES_HOT "
                         "allocation-free contract regressed\n",
                 allocs, n);
    return false;
  }
  return true;
}

void bench_dre(int n) {
  net::Dre dre{sim::usec(50), 0.1};
  sim::SimTime t{};
  const auto t0 = Clock::now();
  for (int i = 0; i < n; ++i) {
    dre.add(1500, t);
    g_sink += static_cast<std::uint64_t>(dre.rate_bps(t));
    t += sim::nsec(1200);
  }
  const double dt = seconds_since(t0);
  record("dre_add_read", "ns_per_op", dt * 1e9 / n);
  std::printf("dre_add_read          %38.1f ns/op\n", dt * 1e9 / n);
}

void bench_route(int n) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, net::TopologyConfig{}};
  // Host 100 sits under leaf 6; forward_route wants *global* path ids,
  // so cycle through the (0,6) pair's FabricPath::id values (indices
  // 0..n-1 would address another pair's paths).
  const auto& paths = topo.paths_between_leaves(0, 6);
  const int num_paths = static_cast<int>(paths.size());
  int path = 0;
  const auto t0 = Clock::now();
  for (int i = 0; i < n; ++i) {
    g_sink += topo.forward_route(0, 100, paths[static_cast<std::size_t>(path)].id).len;
    path = (path + 1) % num_paths;
  }
  const double dt = seconds_since(t0);
  record("route_construction", "ns_per_op", dt * 1e9 / n);
  std::printf("route_construction    %38.1f ns/op\n", dt * 1e9 / n);
}

void write_json(const std::string& path, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_core_micro\",\n");
#ifdef NDEBUG
  std::fprintf(f, "  \"build\": \"optimized\",\n");
#else
  std::fprintf(f, "  \"build\": \"debug\",\n");
#endif
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"heap_in_use_bytes_end\": %zu,\n", heap_in_use_bytes());
  std::fprintf(f, "  \"total_heap_allocs\": %" PRIu64 ",\n",
               g_alloc_count.load(std::memory_order_relaxed));
  std::fprintf(f, "  \"total_heap_bytes\": %" PRIu64 ",\n",
               g_alloc_bytes.load(std::memory_order_relaxed));
  std::fprintf(f, "  \"metrics\": {\n");
  std::string last_bench;
  for (std::size_t i = 0; i < metrics().size(); ++i) {
    const Metric& m = metrics()[i];
    if (m.bench != last_bench) {
      if (!last_bench.empty()) std::fprintf(f, "\n    },\n");
      std::fprintf(f, "    \"%s\": {\n", m.bench.c_str());
      last_bench = m.bench;
    } else {
      std::fprintf(f, ",\n");
    }
    std::fprintf(f, "      \"%s\": %.6g", m.name.c_str(), m.value);
  }
  if (!last_bench.empty()) std::fprintf(f, "\n    }\n");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
#ifndef NDEBUG
  std::printf("note: unoptimized build — numbers are not comparable\n");
#endif
  // Iteration counts: sized for stable numbers in a Release build
  // (~10s total); --smoke only proves the paths run.
  bench_event_queue_hot(smoke ? 1 : 40, smoke ? 2000 : 100'000);
  bench_timer_churn(smoke ? 1 : 40, smoke ? 2000 : 100'000);
  bench_packet_pipeline(smoke ? 1 : 30);
  bool ok = bench_packet_pipeline_steady(smoke ? 2 : 30);
  ok = bench_recorder_append(smoke ? 10'000 : 5'000'000) && ok;
  ok = bench_obs_pipeline() && ok;
  ok = bench_engine_decide(smoke ? 20'000 : 5'000'000) && ok;
  bench_dre(smoke ? 10'000 : 20'000'000);
  bench_route(smoke ? 10'000 : 10'000'000);
  write_json(json_path, smoke);
  // Defeat whole-program DCE of the measured work.
  if (g_sink == 0xdeadbeef) std::printf("sink %llu\n", static_cast<unsigned long long>(g_sink));
  return ok ? 0 : 1;
}
