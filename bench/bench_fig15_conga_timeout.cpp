// Figure 15: [Simulation] CONGA with different flowlet timeout values on
// the asymmetric fabric, web-search at 80% load, reordering masked.
//
// Paper claims: reducing the timeout from 500us to 150us improves FCT by
// ~6% (more rerouting opportunities), but reducing further to 50us
// degrades it by ~30% — vigorous path changing causes congestion
// mismatch even for a congestion-aware scheme.

#include <cstdint>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 15: CONGA flowlet-timeout sweep (web-search @80%, asymmetric, reordering masked)",
      "500us -> 150us improves ~6%; 150us -> 50us degrades ~30% (congestion mismatch)");

  const auto topo = bench::asym_sim_topology();
  const int flows = bench::scaled(1000, scale);
  const int warmup = bench::scaled(250, scale);
  const auto ws = workload::SizeDist::web_search();

  stats::Table t({"flowlet timeout", "overall avg FCT", "vs 150us"});
  double base150 = 0;
  const int timeouts_us[] = {500, 150, 50};
  struct Row {
    int us;
    double mean;
  };
  std::vector<Row> rows;
  for (int us : timeouts_us) {
    harness::ScenarioConfig cfg;
    cfg.topo = topo;
    cfg.scheme = harness::Scheme::kConga;
    cfg.conga.flowlet_timeout = sim::usec(us);
    // Mask reordering so the effect isolated is congestion mismatch.
    cfg.tcp.reorder_buffer = true;
    auto fct = bench::skip_warmup(bench::run_cell(cfg, ws, 0.8, flows, 1),
                                  static_cast<std::uint64_t>(warmup));
    rows.push_back({us, fct.overall_with_unfinished().mean_us});
    if (us == 150) base150 = rows.back().mean;
  }
  for (const auto& r : rows) {
    t.add_row({std::to_string(r.us) + "us", stats::Table::usec(r.mean),
               stats::Table::pct((r.mean - base150) / base150)});
  }
  t.print();
  return 0;
}
