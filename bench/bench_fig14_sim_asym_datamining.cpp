// Figure 14: [Simulation] FCT statistics for the data-mining workload on
// the asymmetric fabric (normalized to Hermes).
//
// Paper claims: Hermes beats CONGA by 5-10% and CLOVE-ECN/LetFlow by
// 13-20% — data-mining is much less bursty, so flowlet gaps are rare and
// only Hermes's timely (non-flowlet) rerouting can resolve collisions of
// large flows on the degraded 2G links.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 14: simulation, asymmetric fabric, data-mining FCT (normalized to Hermes)",
      "Hermes 5-10% better than CONGA, 13-20% better than CLOVE-ECN/LetFlow "
      "(few flowlet gaps in this steady workload)");

  const auto topo = bench::dm_asym_sim_topology();
  const Scheme schemes[] = {Scheme::kConga, Scheme::kLetFlow, Scheme::kCloveEcn,
                            Scheme::kHermes};
  const double loads[] = {0.6, 0.8};
  const int flows = bench::scaled(400, scale);
  const int warmup = bench::scaled(100, scale);
  const auto dm = bench::dm_dist();

  for (double load : loads) {
    std::printf("[load %.1f, %d flows (%d warmup excluded)]\n", load, flows, warmup);
    stats::Table t({"scheme", "overall avg", "large avg", "overall (norm. to Hermes)"});
    double h_overall = 1;
    std::vector<std::pair<double, double>> cells;
    for (Scheme scheme : schemes) {
      harness::ScenarioConfig cfg;
      cfg.topo = topo;
      cfg.scheme = scheme;
      cfg.max_sim_time = sim::sec(30);  // data-mining's giant flows need time
      auto fct = bench::skip_warmup(bench::run_cell(cfg, dm, load, flows, 1),
                                    static_cast<std::uint64_t>(warmup));
      cells.emplace_back(fct.overall_with_unfinished().mean_us, fct.large_flows().mean_us);
      if (scheme == Scheme::kHermes) h_overall = cells.back().first;
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      t.add_row({bench::short_name(schemes[i]), stats::Table::usec(cells[i].first),
                 stats::Table::usec(cells[i].second),
                 stats::Table::num(cells[i].first / h_overall, 2)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
