// Figure 10: [Testbed] overall average FCT, asymmetric topology (one of
// the 8 leaf-spine links cut, bisection reduced to 75%).
//
// Paper claims: Hermes 12-30% better than CLOVE-ECN at 30-65% load;
// Presto* (even with topology-dependent weights) collapses past 60% load
// due to congestion mismatch; ECMP deteriorates beyond 40-50%.

#include <string>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 10: testbed, asymmetric topology (one uplink cut), overall avg FCT",
      "Hermes 12-30% over CLOVE-ECN at 30-65%; Presto* collapses past ~60% load; "
      "ECMP deteriorates past 40-50%");

  auto topo = bench::testbed_topology();
  topo.fabric_overrides[{0, 1, 1}] = 0;  // cut one leaf0-spine1 link

  const Scheme schemes[] = {Scheme::kEcmp, Scheme::kCloveEcn, Scheme::kPrestoStar,
                            Scheme::kHermes};
  // Loads relative to the *symmetric* bisection, capped at 70% (§5.2);
  // our generator keys off the asymmetric bisection (75% of symmetric),
  // so rescale: load_sym = load_asym * 0.75.
  const double loads_symmetric[] = {0.3, 0.45, 0.6, 0.7};

  struct Workload {
    workload::SizeDist dist;
    int flows;
  };
  const Workload workloads[] = {
      {workload::SizeDist::web_search(), bench::scaled(400, scale)},
      {workload::SizeDist::data_mining(), bench::scaled(120, scale)},
  };

  for (const auto& w : workloads) {
    std::printf("[%s workload, %d flows/point, loads relative to symmetric capacity]\n",
                w.dist.name().c_str(), w.flows);
    stats::Table t(
        {"load", "ECMP", "CLOVE-ECN", "Presto*", "Hermes", "Hermes vs CLOVE"});
    for (double load_sym : loads_symmetric) {
      const double load = load_sym / 0.75;
      std::vector<std::string> row{stats::Table::num(load_sym, 2)};
      double clove = 0, hermes = 0;
      for (Scheme scheme : schemes) {
        harness::ScenarioConfig cfg;
        cfg.topo = topo;
        cfg.scheme = scheme;
        cfg.clove.flowlet_timeout = sim::usec(800);
        cfg.presto_weighted = true;  // topology-dependent static weights
        auto fct = bench::run_cell(cfg, w.dist, load, w.flows, 1);
        const double mean = fct.overall_with_unfinished().mean_us;
        row.push_back(stats::Table::usec(mean));
        if (scheme == Scheme::kCloveEcn) clove = mean;
        if (scheme == Scheme::kHermes) hermes = mean;
      }
      row.push_back(stats::Table::pct((clove - hermes) / clove));
      t.add_row(row);
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
