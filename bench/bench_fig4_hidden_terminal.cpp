// Figure 4 (Example 4): the hidden-terminal scenario — suboptimal
// rerouting from stale congestion information.
//
// Flow B runs steadily L1 -> L2. Flow A sends bursts from L0 -> L2 with
// 3ms pauses between them (each pause exceeds the flowlet timeout, so
// every burst is a fresh routing decision). CONGA's source leaf only
// has fresh feedback for the path A itself just used (high metric); the
// alternative path's metric ages out to "assumed empty" after 10ms — so
// A deterministically flips to the other spine on every burst, and every
// other burst lands on B's spine and spikes its queue. Hermes does not
// suffer the stale-alternation pathology: choices among equally-sensed
// paths are randomized and collision evidence (ECN'd probes) steers
// bursts away while it is fresh.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "bench_util.hpp"

#include "hermes/harness/trace.hpp"
#include "hermes/transport/flow.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  (void)bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 4 (Example 4): hidden terminal — flapping from stale information",
      "CONGA flips flow A's spine on (nearly) every burst with stale metrics; "
      "queue spikes whenever A lands on B's spine");

  constexpr int kBursts = 20;
  constexpr std::uint64_t kBurstBytes = 12'500'000;  // ~10ms at 10G
  const auto kPause = sim::msec(3);

  stats::Table t({"scheme", "A spine flips (of 19)", "bursts on B's spine",
                  "B-spine queue max", "B-spine queue mean"});
  for (Scheme scheme : {Scheme::kConga, Scheme::kHermes}) {
    harness::ScenarioConfig cfg;
    cfg.topo.num_leaves = 3;
    cfg.topo.num_spines = 2;
    cfg.topo.hosts_per_leaf = 2;
    cfg.scheme = scheme;
    cfg.max_sim_time = sim::sec(5);
    harness::Scenario s{cfg};

    // Flow B: long-running, from L1 (host 2) to L2 (host 4).
    const auto b_id = s.add_flow(2, 4, 2'000'000'000, sim::usec(0));
    s.run_for(sim::msec(1));
    const int b_path = s.stack(2).sender(b_id)->ctx().current_path;
    const int b_spine = s.topology().path(b_path).spine;

    harness::QueueTrace trace{s.simulator(), s.topology().spine_downlink(b_spine, 2),
                              sim::usec(50)};
    trace.start(sim::msec(400));

    // Flow A: a serialized burst train L0 (host 0) -> L2 (host 5); the
    // next burst starts 3ms after the previous one completes.
    std::vector<int> burst_spines;
    int bursts_done = 0;
    std::function<void()> start_burst = [&] {
      transport::FlowSpec spec;
      spec.id = 100 + static_cast<std::uint64_t>(bursts_done);
      spec.src = 0;
      spec.dst = 5;
      spec.size = kBurstBytes;
      spec.start = s.simulator().now();
      auto& sender = s.stack(0).start_flow(spec, [&](const transport::FlowRecord&) {
        if (++bursts_done < kBursts) s.simulator().after(kPause, [&] { start_burst(); });
      });
      burst_spines.push_back(s.topology().path(sender.ctx().current_path).spine);
    };
    start_burst();
    s.run_for(sim::msec(800));

    int flips = 0, on_b_spine = 0;
    for (std::size_t i = 0; i < burst_spines.size(); ++i) {
      if (burst_spines[i] == b_spine) ++on_b_spine;
      if (i > 0 && burst_spines[i] != burst_spines[i - 1]) ++flips;
    }
    t.add_row({bench::short_name(scheme), std::to_string(flips), std::to_string(on_b_spine),
               stats::Table::num(trace.max_backlog() / 1e3, 1) + " KB",
               stats::Table::num(trace.mean_backlog() / 1e3, 1) + " KB"});
  }
  t.print();
  std::printf("\n(B alone queues only at its NIC; the spikes appear exactly when a burst "
              "of A shares B's spine downlink)\n");
  return 0;
}
