// Figure 13: [Simulation] FCT statistics for the web-search workload on
// the asymmetric fabric (20% of leaf-spine links degraded 10G -> 2G),
// normalized to Hermes.
//
// Paper claims: CONGA ~10% best overall (web-search's burstiness creates
// flowlets, and CONGA's switch visibility helps small flows); Hermes,
// CLOVE-ECN and LetFlow comparable overall; but flowlet-based schemes'
// SMALL-flow average and 99th percentile blow up at high load (Hermes
// 1.5-3.3x better at 90%) because cautious rerouting protects small
// flows from reordering and congestion mismatch.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 13: simulation, asymmetric fabric, web-search FCT (normalized to Hermes)",
      "overall: CONGA modestly best; small-flow avg & p99: Hermes 1.5-3.3x better "
      "than flowlet schemes at 90% load");

  const auto topo = bench::asym_sim_topology();
  const Scheme schemes[] = {Scheme::kConga, Scheme::kLetFlow, Scheme::kCloveEcn,
                            Scheme::kPrestoStar, Scheme::kHermes};
  const double loads[] = {0.5, 0.7, 0.9};
  const int flows = bench::scaled(1000, scale);
  const int warmup = bench::scaled(250, scale);
  const auto ws = workload::SizeDist::web_search();

  for (double load : loads) {
    std::printf("[load %.1f, %d flows]\n", load, flows);
    stats::Table t({"scheme", "overall avg", "small avg", "small p99", "large avg",
                    "overall (norm)", "small p99 (norm)"});
    double h_overall = 1, h_p99 = 1;
    struct Cell {
      double overall, small_avg, small_p99, large_avg;
    };
    std::vector<Cell> cells;
    for (Scheme scheme : schemes) {
      harness::ScenarioConfig cfg;
      cfg.topo = topo;
      cfg.scheme = scheme;
      auto fct = bench::skip_warmup(bench::run_cell(cfg, ws, load, flows, 1),
                                    static_cast<std::uint64_t>(warmup));
      Cell c{fct.overall_with_unfinished().mean_us, fct.small_flows().mean_us,
             fct.small_flows().p99_us, fct.large_flows().mean_us};
      cells.push_back(c);
      if (scheme == Scheme::kHermes) {
        h_overall = c.overall;
        h_p99 = c.small_p99;
      }
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      t.add_row({bench::short_name(schemes[i]), stats::Table::usec(cells[i].overall),
                 stats::Table::usec(cells[i].small_avg), stats::Table::usec(cells[i].small_p99),
                 stats::Table::usec(cells[i].large_avg),
                 stats::Table::num(cells[i].overall / h_overall, 2),
                 stats::Table::num(cells[i].small_p99 / h_p99, 2)});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
