// Figure 19: [Simulation] sensitivity of Hermes to T_RTT_high and
// Delta_RTT on the asymmetric fabric.
//
// Paper claims: performance is stable around the recommended settings
// (T_RTT_high 140-280us, Delta_RTT near one-hop delay). The two
// workloads trend oppositely: bursty web-search prefers conservative
// (higher) thresholds that prune excess reroutings; steady data-mining
// prefers aggressive (lower) ones that reroute sooner.

#include <cstdint>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 19: sensitivity to T_RTT_high and Delta_RTT (asymmetric fabric)",
      "stable near recommended values; web-search prefers conservative, data-mining "
      "aggressive settings");

  struct Workload {
    workload::SizeDist dist;
    net::TopologyConfig topo;
    int flows;
    int warmup;
  };
  const Workload workloads[] = {
      {workload::SizeDist::web_search(), bench::asym_sim_topology(), bench::scaled(800, scale),
       bench::scaled(200, scale)},
      {bench::dm_dist(), bench::dm_asym_sim_topology(), bench::scaled(350, scale),
       bench::scaled(90, scale)},
  };
  const double load = 0.7;

  for (const auto& w : workloads) {
    std::printf("[%s, %d flows, load %.1f]\n", w.dist.name().c_str(), w.flows, load);

    stats::Table t1({"T_RTT_high (us)", "overall avg FCT"});
    for (int us : {140, 180, 230, 280}) {
      harness::ScenarioConfig cfg;
      cfg.topo = w.topo;
      cfg.scheme = harness::Scheme::kHermes;
      cfg.hermes.t_rtt_high = sim::usec(us);
      cfg.max_sim_time = sim::sec(30);
      auto fct = bench::skip_warmup(bench::run_cell(cfg, w.dist, load, w.flows, 1),
                                    static_cast<std::uint64_t>(w.warmup));
      t1.add_row({std::to_string(us), stats::Table::usec(fct.overall_with_unfinished().mean_us)});
    }
    t1.print();

    stats::Table t2({"Delta_RTT (us)", "overall avg FCT"});
    for (int us : {40, 80, 120, 160}) {
      harness::ScenarioConfig cfg;
      cfg.topo = w.topo;
      cfg.scheme = harness::Scheme::kHermes;
      cfg.hermes.delta_rtt = sim::usec(us);
      cfg.max_sim_time = sim::sec(30);
      auto fct = bench::skip_warmup(bench::run_cell(cfg, w.dist, load, w.flows, 1),
                                    static_cast<std::uint64_t>(w.warmup));
      t2.add_row({std::to_string(us), stats::Table::usec(fct.overall_with_unfinished().mean_us)});
    }
    t2.print();
    std::printf("\n");
  }
  return 0;
}
