// Figure 9: [Testbed] overall average FCT, symmetric topology.
//
// Paper claims: Hermes beats ECMP by 10-38% (growing with load), beats
// CLOVE-ECN by 9-15% at 30-70% load, and performs close to Presto*
// (which is near-optimal under symmetry).

#include <string>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 9: testbed, symmetric topology, overall avg FCT",
      "Hermes 10-38% better than ECMP, up to 15% better than CLOVE-ECN, ~Presto*");

  const Scheme schemes[] = {Scheme::kEcmp, Scheme::kCloveEcn, Scheme::kPrestoStar,
                            Scheme::kHermes};
  const double loads[] = {0.3, 0.5, 0.7, 0.9};

  struct Workload {
    workload::SizeDist dist;
    int flows;
  };
  const Workload workloads[] = {
      {workload::SizeDist::web_search(), bench::scaled(400, scale)},
      {workload::SizeDist::data_mining(), bench::scaled(120, scale)},
  };

  for (const auto& w : workloads) {
    std::printf("[%s workload, %d flows/point]\n", w.dist.name().c_str(), w.flows);
    stats::Table t({"load", "ECMP", "CLOVE-ECN", "Presto*", "Hermes", "Hermes vs ECMP",
                    "Hermes vs CLOVE"});
    for (double load : loads) {
      std::vector<std::string> row{stats::Table::num(load, 1)};
      double ecmp = 0, clove = 0, hermes = 0;
      for (Scheme scheme : schemes) {
        harness::ScenarioConfig cfg;
        cfg.topo = bench::testbed_topology();
        cfg.scheme = scheme;
        // CLOVE-ECN testbed flowlet timeout: the paper picked 800us on 1G.
        cfg.clove.flowlet_timeout = sim::usec(800);
        auto fct = bench::run_cell(cfg, w.dist, load, w.flows, 1);
        const double mean = fct.overall_with_unfinished().mean_us;
        row.push_back(stats::Table::usec(mean));
        if (scheme == Scheme::kEcmp) ecmp = mean;
        if (scheme == Scheme::kCloveEcn) clove = mean;
        if (scheme == Scheme::kHermes) hermes = mean;
      }
      row.push_back(stats::Table::pct((ecmp - hermes) / ecmp));
      row.push_back(stats::Table::pct((clove - hermes) / clove));
      t.add_row(row);
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
