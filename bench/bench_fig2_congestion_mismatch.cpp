// Figure 2 (Example 2): congestion mismatch under asymmetry with
// congestion-oblivious spraying (Presto).
//
// 3x2 leaf-spine with the L0-S1 link broken. Flow B is a 9Gbps UDP
// stream L0 -> L2 (it can only use S0), so the S0 -> L2 link has ~1Gbps
// to spare. Flow A is a DCTCP flow L1 -> L2 sprayed over both spines.
// ECN marks earned on the congested S0 subpath throttle A's single
// congestion window, so the idle S1 path is starved too: A ends up
// around 1-2Gbps instead of ~11Gbps of available capacity, and the
// S0 -> L2 queue oscillates. A congestion-aware single-path choice
// (Hermes) gets A ~10Gbps on S1.

#include "bench_util.hpp"

#include "hermes/harness/trace.hpp"
#include "hermes/transport/udp_source.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  (void)bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 2 (Example 2): congestion mismatch (Presto spraying, broken link)",
      "flow A achieves only ~1-2Gbps despite ~11Gbps being reachable; the S0->L2 "
      "queue oscillates; Hermes gets ~10Gbps with a stable queue");

  const auto horizon = sim::msec(60);

  stats::Table t({"scheme", "flow A goodput", "S0->L2 queue mean", "S0->L2 queue max"});
  for (Scheme scheme : {Scheme::kPrestoStar, Scheme::kHermes}) {
    harness::ScenarioConfig cfg;
    cfg.topo.num_leaves = 3;
    cfg.topo.num_spines = 2;
    cfg.topo.hosts_per_leaf = 2;
    cfg.topo.fabric_overrides[{0, 1, 0}] = 0;  // break L0-S1
    cfg.scheme = scheme;
    cfg.presto_weighted = false;         // the example uses equal weights
    cfg.presto_cell_bytes = 64 * 1024;   // original Presto flowcells
    cfg.max_sim_time = sim::sec(1);
    harness::Scenario s{cfg};

    // Flow B: 9G UDP from L0 (host 0) to L2 (host 4).
    transport::UdpSource udp{s.simulator(),
                             s.topology(),
                             s.balancer(),
                             9999,
                             0,
                             4,
                             9e9,
                             1460,
                             [&s](net::Packet p) { s.stack(0).send_raw(std::move(p)); }};
    udp.start();

    // Flow A: long DCTCP flow from L1 (host 2) to L2 (host 5).
    const auto flow_id = s.add_flow(2, 5, 1'000'000'000, sim::usec(100));

    harness::QueueTrace trace{s.simulator(), s.topology().spine_downlink(0, 2), sim::usec(20)};
    trace.start(horizon);
    s.run_for(horizon);
    udp.stop();

    auto* recv = s.stack(5).receiver(flow_id);
    const double goodput_gbps =
        recv ? static_cast<double>(recv->rcv_nxt()) * 8 / horizon.to_seconds() / 1e9 : 0.0;
    t.add_row({bench::short_name(scheme), stats::Table::num(goodput_gbps, 2) + " Gbps",
               stats::Table::num(trace.mean_backlog() / 1e3, 1) + " KB",
               stats::Table::num(trace.max_backlog() / 1e3, 1) + " KB"});
  }
  t.print();
  return 0;
}
