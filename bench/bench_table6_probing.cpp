// Table 6: comparison of probing schemes — visibility (paths with fresh
// state per destination) and probing overhead (probe rate over edge link
// capacity).
//
// Paper numbers, 100x100 fabric with 10^5 hosts, 64B probes at 500us:
//   piggyback: <0.01 visibility, no overhead
//   brute force (probe all paths from every host): 100 visibility, 100x
//   power-of-two-choices per host: >3 visibility, 3x
//   Hermes (po2c + per-rack agents): >3 visibility, ~3% overhead
//
// The analytic part reproduces the paper's arithmetic exactly; the
// measured part runs Hermes on the 8x8 fabric and reports real probe
// counts and per-rack-agent overhead.

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header("Table 6: probing schemes — visibility vs overhead",
                      "piggyback <0.01 | brute force 100 vis @100x | po2c >3 @3x | "
                      "Hermes >3 @~3%");

  // --- analytic reproduction of the paper's 100x100 example ------------
  {
    const double paths = 100;  // parallel paths per ToR pair
    // The paper's "x" unit normalizes to one probe per destination ToR
    // per interval: probing all 100 paths is 100x; power-of-two-choices
    // probes 3 of them (2 random + previous best) = 3x; Hermes lets one
    // agent probe on behalf of the whole rack, "reducing the overhead by
    // 100x" (§3.1.3) = 3%.
    const double brute = paths;
    const double po2c = 3;
    const double hermes = po2c / 100.0;

    stats::Table t({"scheme", "visibility (paths seen)", "probing overhead (normalized)"});
    t.add_row({"piggyback [CLOVE/FlowBender]", "<0.01", "~0"});
    t.add_row({"brute force", "100", stats::Table::num(brute, 0) + "x"});
    t.add_row({"power-of-two-choices", ">3", stats::Table::num(po2c, 0) + "x"});
    t.add_row({"Hermes (po2c + rack agent)", ">3", stats::Table::pct(hermes, 1)});
    t.print();
  }

  // --- measured on the 8x8 simulation fabric ---------------------------
  {
    harness::ScenarioConfig cfg;
    cfg.topo = bench::sim_topology();
    cfg.scheme = harness::Scheme::kHermes;
    harness::Scenario s{cfg};
    const auto horizon = sim::msec(bench::scaled(50, scale));
    s.run_for(horizon);
    const auto& ps = s.hermes()->probe_stats();
    const double per_agent_bps =
        static_cast<double>(ps.probe_bytes) * 8 / horizon.to_seconds() / cfg.topo.num_leaves;

    int vis_min = 1 << 30;
    for (int b = 1; b < cfg.topo.num_leaves; ++b)
      vis_min = std::min(vis_min, s.hermes()->sampled_paths(0, b));

    std::printf("\nmeasured on 8x8 fabric over %s:\n", horizon.to_string().c_str());
    std::printf("  probes sent: %llu, replies: %llu (loss-free fabric)\n",
                static_cast<unsigned long long>(ps.probes_sent),
                static_cast<unsigned long long>(ps.replies_received));
    std::printf("  min paths with fresh state per rack pair: %d (paper: >3)\n", vis_min);
    std::printf("  probe overhead per rack agent: %.3f%% of a 10G edge link (paper: ~3%% at "
                "100x100 scale)\n",
                100.0 * per_agent_bps / 10e9);
  }
  return 0;
}
