// §5.4 "Different transport protocols": Hermes with plain TCP (NewReno,
// no ECN) on the 8x8 fabric, sensing with RTT only and thresholds 1.5x
// larger. The paper reports (figures omitted there for space):
//   * web-search: Hermes within 10-25% of CONGA at all loads, baseline
//     and asymmetric topologies;
//   * data-mining: Hermes performs almost identically to CONGA;
//   * trends mirror DCTCP except CONGA gains slightly, because bursty
//     TCP creates more flowlet gaps.

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Section 5.4: plain TCP transport (RTT-only sensing, 1.5x thresholds)",
      "Hermes within 10-25% of CONGA (web-search) and ~identical on data-mining; "
      "TCP's burstiness helps flowlet schemes");

  struct Workload {
    workload::SizeDist dist;
    bool dm;
    int flows;
    int warmup;
  };
  const Workload workloads[] = {
      {workload::SizeDist::web_search(), false, bench::scaled(700, scale),
       bench::scaled(150, scale)},
      {bench::dm_dist(), true, bench::scaled(300, scale), bench::scaled(75, scale)},
  };
  const double loads[] = {0.5, 0.7};

  for (bool asym : {false, true}) {
    std::printf("[%s topology]\n", asym ? "asymmetric (20%% links at 2G)" : "baseline");
    for (const auto& w : workloads) {
      const auto topo = w.dm ? (asym ? bench::dm_asym_sim_topology() : bench::dm_sim_topology())
                             : (asym ? bench::asym_sim_topology() : bench::sim_topology());
      stats::Table t({"load", "ECMP", "CONGA (500us flowlet)", "Hermes (RTT-only)",
                      "Hermes vs CONGA"});
      for (double load : loads) {
        double conga = 0, hermes = 0;
        std::vector<std::string> row{stats::Table::num(load, 1)};
        for (Scheme scheme : {Scheme::kEcmp, Scheme::kConga, Scheme::kHermes}) {
          harness::ScenarioConfig cfg;
          cfg.topo = topo;
          cfg.scheme = scheme;
          cfg.tcp.dctcp = false;  // plain TCP; ECN disabled fabric-wide
          cfg.max_sim_time = sim::sec(30);
          // TCP is burstier: the paper uses a 500us flowlet timeout for
          // CONGA and 1.5x RTT thresholds for Hermes.
          cfg.conga.flowlet_timeout = sim::usec(500);
          cfg.hermes.use_ecn = false;
          {
            // Derive defaults, then scale T_RTT_high and Delta_RTT by 1.5.
            sim::Simulator probe{1};
            net::Topology tp{probe, cfg.topo};
            auto d = lb::HermesConfig::defaults_for(tp);
            cfg.hermes.t_rtt_low = d.t_rtt_low;
            cfg.hermes.t_rtt_high =
                sim::SimTime::nanoseconds(d.t_rtt_high.ns() * 3 / 2);
            cfg.hermes.delta_rtt = sim::SimTime::nanoseconds(d.delta_rtt.ns() * 3 / 2);
          }
          auto fct = bench::skip_warmup(bench::run_cell(cfg, w.dist, load, w.flows, 1),
                                        static_cast<std::uint64_t>(w.warmup));
          const double mean = fct.overall_with_unfinished().mean_us;
          row.push_back(stats::Table::usec(mean));
          if (scheme == Scheme::kConga) conga = mean;
          if (scheme == Scheme::kHermes) hermes = mean;
        }
        row.push_back(stats::Table::pct((conga - hermes) / conga));
        t.add_row(row);
      }
      std::printf("%s:\n", w.dist.name().c_str());
      t.print();
    }
    std::printf("\n");
  }
  return 0;
}
