// Figure 16: [Simulation] performance under silent random packet drops:
// one randomly chosen spine drops 2% of transiting packets, web-search
// workload, loads up to 70% (7 of 8 spines healthy).
//
// Paper claims: Hermes detects the failure (retransmission-rate epoch
// detector) and avoids the switch, beating every other scheme by >32%;
// ECMP is 1.7-2.3x worse than Hermes; CONGA is paradoxically as bad as
// ECMP because the lossy paths *look* underutilized; LetFlow is second
// best (drops create flowlets) but still ~1.5x worse.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 16: silent random packet drops (2% at one spine), web-search",
      "Hermes >32% better than all; CONGA ~ECMP (paradox: lossy paths look idle); "
      "LetFlow second best but ~1.5x worse than Hermes");

  const Scheme schemes[] = {Scheme::kEcmp, Scheme::kConga, Scheme::kLetFlow,
                            Scheme::kPrestoStar, Scheme::kHermes};
  const double loads[] = {0.3, 0.5, 0.7};
  const int flows = bench::scaled(800, scale);
  const int warmup = bench::scaled(150, scale);
  const auto ws = workload::SizeDist::web_search();
  const int failed_spine = 3;  // "randomly selected"; fixed for reproducibility

  auto install_failure = [&](harness::Scenario& s) {
    s.topology().spine(failed_spine).set_failure(
        {.blackhole = nullptr, .random_drop_rate = 0.02});
  };

  bench::MetricsJson mj{"bench_fig16_random_drop"};

  for (double load : loads) {
    std::printf("[load %.1f, %d flows, spine %d drops 2%%]\n", load, flows, failed_spine);
    stats::Table t({"scheme", "overall avg", "large avg", "rand drops", "norm. to Hermes"});
    double hermes = 1;
    struct Cell {
      double overall, large;
      std::uint64_t rand_drops;
    };
    std::vector<Cell> cells;
    for (Scheme scheme : schemes) {
      harness::ScenarioConfig cfg;
      cfg.topo = bench::sim_topology();
      cfg.scheme = scheme;
      // Fewer injected drops = less traffic routed through the lossy
      // spine, i.e. the scheme detected and avoided it.
      std::uint64_t rand_drops = 0;
      auto harvest = [&](harness::Scenario& s) {
        rand_drops = s.topology().spine(failed_spine).random_drops();
        mj.add_cell(bench::short_name(scheme), load, s.metrics().snapshot_json());
      };
      auto fct =
          bench::skip_warmup(bench::run_cell(cfg, ws, load, flows, 1, install_failure, harvest),
                             static_cast<std::uint64_t>(warmup));
      cells.push_back({fct.overall_with_unfinished().mean_us,
                       fct.summarize(stats::FctCollector::kLargeLimit, UINT64_MAX, true).mean_us,
                       rand_drops});
      if (scheme == Scheme::kHermes) hermes = cells.back().overall;
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      t.add_row({bench::short_name(schemes[i]), stats::Table::usec(cells[i].overall),
                 stats::Table::usec(cells[i].large), std::to_string(cells[i].rand_drops),
                 stats::Table::num(cells[i].overall / hermes, 2)});
    }
    t.print();
    std::printf("\n");
  }
  mj.write(bench::parse_json_path(argc, argv, "BENCH_fig16.json"));
  return 0;
}
