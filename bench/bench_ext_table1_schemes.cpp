// Extension: the remaining Table 1 baselines under symmetric and
// asymmetric fabrics — FlowBender (the paper implemented it but omitted
// results, remarking it performed "close to ECMP" with default
// parameters) and DRILL (per-packet switch-local; the paper's §7 argues
// it suffers congestion mismatch under asymmetry).

#include <string>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header(
      "Extension: Table 1 stragglers (FlowBender, DRILL) vs ECMP and Hermes",
      "FlowBender ~ECMP (blind rehashing); DRILL strong when symmetric, hurt by "
      "asymmetry (local-only visibility)");

  const Scheme schemes[] = {Scheme::kEcmp, Scheme::kFlowBender, Scheme::kDrill,
                            Scheme::kHermes};
  const int flows = bench::scaled(600, scale);
  const auto ws = workload::SizeDist::web_search();

  for (bool asym : {false, true}) {
    const auto topo = asym ? bench::asym_sim_topology() : bench::sim_topology();
    std::printf("[%s fabric, web-search, %d flows]\n",
                asym ? "asymmetric (20% links at 2G)" : "symmetric", flows);
    stats::Table t({"load", "ECMP", "FlowBender", "DRILL", "Hermes"});
    for (double load : {0.5, 0.7}) {
      std::vector<std::string> row{stats::Table::num(load, 1)};
      for (Scheme scheme : schemes) {
        harness::ScenarioConfig cfg;
        cfg.topo = topo;
        cfg.scheme = scheme;
        auto fct = bench::run_cell(cfg, ws, load, flows, 1);
        row.push_back(stats::Table::usec(fct.overall_with_unfinished().mean_us));
      }
      t.add_row(row);
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
