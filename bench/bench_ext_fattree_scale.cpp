// Extension: sharded parallel execution at fat-tree scale.
//
// The paper's simulations stop at an 8x8 leaf-spine (64 ports). This
// bench drives the sharded executor on 3-tier fat-trees — k=8 (128
// hosts) and k=16 (1024 hosts) — running web-search traffic under
// Hermes and ECMP, once with 1 worker thread and once with
// min(4, hardware) threads over the per-pod shards. Reported per
// configuration: completed/unfinished flows, events processed, wall
// time and events/s for both thread counts, the multi-thread speedup,
// and FCT stats (which must not depend on the thread count at all —
// the sharded determinism contract; tests/sharded_test.cpp pins it).
//
// --smoke runs a k=4 fabric and doubles as a determinism self-check:
// the T=1 and T=2 runs must produce byte-identical FCT CSV, and the
// process exits nonzero if they do not. scripts/tier1.sh runs this as
// its sharded smoke stage; scripts/check_bench_regress.py gates the
// JSON (completion always; events/s floor against the committed
// baseline; the >=1.5x speedup claim only when the machine running the
// check has >=2 cores — see EXPERIMENTS.md for the single-core
// fallback methodology).
//
// Usage: bench_ext_fattree_scale [--smoke] [--scale=F] [--json=<path>]

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "hermes/harness/sharded_scenario.hpp"
#include "hermes/stats/csv.hpp"

namespace {

using namespace hermes;

// hermeslint:allow(determinism.clock) wall-clock throughput is the bench's product; sim results never read this clock
using Clock = std::chrono::steady_clock;

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct RunResult {
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t rounds = 0;
  unsigned threads_used = 0;
  std::size_t flows = 0;
  std::size_t unfinished = 0;
  stats::FctSummary fct;
  std::uint64_t csv_hash = 0;
};

struct Config {
  int k = 4;
  harness::Scheme scheme = harness::Scheme::kEcmp;
  int num_flows = 100;
  double load = 0.3;
  sim::SimTime max_sim_time = sim::msec(500);
};

RunResult run_once(const Config& c, unsigned threads) {
  harness::ShardedScenarioConfig cfg;
  cfg.fabric.k = c.k;
  cfg.scheme = c.scheme;
  cfg.seed = 1;
  cfg.max_sim_time = c.max_sim_time;
  cfg.num_shards = c.k;  // one shard per pod
  cfg.threads = threads;

  harness::ShardedScenario s{cfg};
  workload::TrafficConfig tc;
  tc.load = c.load;
  tc.num_flows = c.num_flows;
  tc.seed = 1;
  s.add_flows(workload::generate_poisson_traffic(
      s.fabric(), workload::SizeDist::web_search().scaled(0.1), tc));

  const Clock::time_point t0 = Clock::now();
  const stats::FctCollector fct = s.run();
  RunResult r;
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  r.events = s.events_processed();
  r.rounds = s.executor_stats().rounds;
  r.threads_used = s.threads_used();
  r.flows = fct.total_flows();
  r.unfinished = fct.unfinished_flows();
  r.fct = fct.overall_with_unfinished();
  r.csv_hash = fnv1a64(stats::to_csv(fct));
  return r;
}

struct Entry {
  std::string key;
  int k = 0;
  RunResult t1;
  RunResult tn;
  bool deterministic = false;
};

void write_json(const std::string& path, bool smoke, const std::vector<Entry>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_ext_fattree_scale: cannot write %s\n", path.c_str());
    return;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n  \"bench\": \"bench_ext_fattree_scale\",\n");
  std::fprintf(f, "  \"build\": \"%s\",\n",
#ifdef NDEBUG
               "optimized"
#else
               "debug"
#endif
  );
  std::fprintf(f, "  \"smoke\": %s,\n  \"cores\": %u,\n  \"metrics\": {\n",
               smoke ? "true" : "false", cores);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    const double eps1 = e.t1.wall_s > 0 ? static_cast<double>(e.t1.events) / e.t1.wall_s : 0;
    const double epsn = e.tn.wall_s > 0 ? static_cast<double>(e.tn.events) / e.tn.wall_s : 0;
    std::fprintf(f,
                 "    \"%s\": {\n"
                 "      \"k\": %d,\n"
                 "      \"hosts\": %d,\n"
                 "      \"shards\": %d,\n"
                 "      \"flows\": %zu,\n"
                 "      \"unfinished_flows\": %zu,\n"
                 "      \"events\": %llu,\n"
                 "      \"rounds\": %llu,\n"
                 "      \"wall_s_t1\": %.3f,\n"
                 "      \"events_per_sec_t1\": %.0f,\n"
                 "      \"threads_n\": %u,\n"
                 "      \"wall_s_tn\": %.3f,\n"
                 "      \"events_per_sec_tn\": %.0f,\n"
                 "      \"speedup\": %.3f,\n"
                 "      \"fct_mean_us\": %.1f,\n"
                 "      \"fct_p99_us\": %.1f,\n"
                 "      \"deterministic\": %d\n"
                 "    }%s\n",
                 e.key.c_str(), e.k, e.k * e.k * e.k / 4, e.k, e.t1.flows, e.t1.unfinished,
                 static_cast<unsigned long long>(e.t1.events),
                 static_cast<unsigned long long>(e.t1.rounds), e.t1.wall_s, eps1,
                 e.tn.threads_used, e.tn.wall_s, epsn, eps1 > 0 ? epsn / eps1 : 0,
                 e.t1.fct.mean_us, e.t1.fct.p99_us, e.deterministic ? 1 : 0,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("json: %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_fattree.json";
  const double scale = bench::parse_scale(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned tn = smoke ? 2 : (hw < 2 ? 2 : (hw > 4 ? 4 : hw));

  bench::print_header(
      "Fat-tree scaling: sharded parallel execution (per-pod shards, conservative lookahead)",
      "one scenario scales to 1024 hosts (k=16); for a fixed shard count the thread count "
      "is invisible in the results");

  std::vector<Config> configs;
  if (smoke) {
    configs.push_back({4, harness::Scheme::kEcmp, bench::scaled(60, scale), 0.3, sim::msec(500)});
    configs.push_back({4, harness::Scheme::kHermes, bench::scaled(60, scale), 0.3, sim::msec(500)});
  } else {
    configs.push_back({8, harness::Scheme::kEcmp, bench::scaled(400, scale), 0.3, sim::msec(500)});
    configs.push_back({8, harness::Scheme::kHermes, bench::scaled(400, scale), 0.3, sim::msec(500)});
    configs.push_back({16, harness::Scheme::kEcmp, bench::scaled(1000, scale), 0.25, sim::msec(200)});
    configs.push_back({16, harness::Scheme::kHermes, bench::scaled(1000, scale), 0.25, sim::msec(200)});
  }

  std::vector<Entry> entries;
  bool all_deterministic = true;
  for (const Config& c : configs) {
    Entry e;
    e.k = c.k;
    e.key = std::string(smoke ? "fattree_smoke_k" : "fattree_k") + std::to_string(c.k) + "_" +
            (c.scheme == harness::Scheme::kHermes ? "hermes" : "ecmp");
    std::printf("[%s] %d hosts, %d shards, %d flows...\n", e.key.c_str(), c.k * c.k * c.k / 4,
                c.k, c.num_flows);
    e.t1 = run_once(c, 1);
    e.tn = run_once(c, tn);
    e.deterministic = e.t1.csv_hash == e.tn.csv_hash;
    all_deterministic = all_deterministic && e.deterministic;
    const double eps1 = e.t1.wall_s > 0 ? static_cast<double>(e.t1.events) / e.t1.wall_s : 0;
    const double epsn = e.tn.wall_s > 0 ? static_cast<double>(e.tn.events) / e.tn.wall_s : 0;
    std::printf(
        "  T=1: %.2fs  %.0f ev/s | T=%u: %.2fs  %.0f ev/s | speedup %.2fx | "
        "flows %zu (%zu unfinished) | FCT mean %.0fus p99 %.0fus | %s\n",
        e.t1.wall_s, eps1, e.tn.threads_used, e.tn.wall_s, epsn, eps1 > 0 ? epsn / eps1 : 0,
        e.t1.flows, e.t1.unfinished, e.t1.fct.mean_us, e.t1.fct.p99_us,
        e.deterministic ? "deterministic" : "HASH MISMATCH");
    entries.push_back(e);
  }

  write_json(json_path, smoke, entries);

  if (!all_deterministic) {
    std::fprintf(stderr,
                 "bench_ext_fattree_scale: FCT output depends on the thread count — "
                 "sharded determinism contract broken\n");
    return 1;
  }
  return 0;
}
