// Figure 7: traffic distributions used for evaluation.
//
// Prints the CDFs of the web-search and data-mining flow-size
// distributions and checks the headline skew statistics the paper quotes
// (data-mining: ~95% of bytes in the ~3.6% of flows larger than 35MB).

#include <cstddef>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "hermes/harness/parallel_runner.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/stats/table.hpp"
#include "hermes/workload/size_dist.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  const double scale = bench::parse_scale(argc, argv);

  bench::print_header("Figure 7: workload flow-size CDFs",
                      "web-search and data-mining are both heavy-tailed; data-mining is far "
                      "more skewed (95% of bytes in ~3.6% of flows that are >35MB)");

  const auto ws = workload::SizeDist::web_search();
  const auto dm = workload::SizeDist::data_mining();

  stats::Table t({"size", "web-search CDF", "data-mining CDF"});
  for (double b : {1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}) {
    char label[32];
    if (b >= 1e6) {
      std::snprintf(label, sizeof label, "%.0fMB", b / 1e6);
    } else {
      std::snprintf(label, sizeof label, "%.0fKB", b / 1e3);
    }
    t.add_row({label, stats::Table::num(ws.cdf(b), 3), stats::Table::num(dm.cdf(b), 3)});
  }
  t.print();

  std::printf("\nmean flow size: web-search=%.2fMB data-mining=%.2fMB\n", ws.mean_bytes() / 1e6,
              dm.mean_bytes() / 1e6);

  // Empirical skew check by sampling, fanned out over a ParallelRunner.
  // The chunk count is fixed (not the thread count) and every chunk
  // draws from its own forked RNG stream, so the sampled numbers are
  // identical however many threads execute; partials are combined in
  // chunk order so the floating-point sums are too.
  const int n = bench::scaled(200000, scale);
  constexpr int kChunks = 64;
  struct Partial {
    double total = 0, big_bytes = 0;
    int big_flows = 0, samples = 0;
  };
  const harness::ParallelRunner runner;
  const auto partials = runner.map<Partial>(kChunks, [&](std::size_t chunk) {
    const int begin = static_cast<int>(chunk) * n / kChunks;
    const int end = (static_cast<int>(chunk) + 1) * n / kChunks;
    sim::Rng rng = sim::Rng{1}.fork(chunk);
    Partial p;
    for (int i = begin; i < end; ++i) {
      const auto s = static_cast<double>(dm.sample(rng));
      p.total += s;
      ++p.samples;
      if (s > 35e6) {
        p.big_bytes += s;
        ++p.big_flows;
      }
    }
    return p;
  });
  double total = 0, big_bytes = 0;
  int big_flows = 0;
  for (const Partial& p : partials) {
    total += p.total;
    big_bytes += p.big_bytes;
    big_flows += p.big_flows;
  }
  std::printf("data-mining sampled skew: %.1f%% of flows are >35MB and carry %.1f%% of bytes\n",
              100.0 * big_flows / n, 100.0 * big_bytes / total);
  std::printf("(paper: ~3.6%% of flows carry ~95%% of bytes)\n");
  return 0;
}
