// Figure 3 (Example 3): congestion mismatch persists even with
// capacity-proportional weights on heterogeneous paths.
//
// Two paths between a host pair: one 1Gbps, one 10Gbps. Presto* sprays
// packets 1:10 to match capacities and "expects both paths to be fully
// utilized" — but the bursts sent while the window grew on the 10G path
// swamp the 1G path, ECN-marked ACKs from the 1G path then cut the
// window that the 10G path needed, and the flow ends up around half of
// the 11Gbps aggregate. Hermes simply rides the 10G path at ~10Gbps.

#include "bench_util.hpp"

#include "hermes/harness/trace.hpp"

int main(int argc, char** argv) {
  using namespace hermes;
  using harness::Scheme;
  (void)bench::parse_scale(argc, argv);

  bench::print_header(
      "Figure 3 (Example 3): heterogeneous paths (1G + 10G), weighted spraying",
      "Presto* with 1:10 weights reaches only ~5Gbps of the 11Gbps aggregate; "
      "the 1G bottleneck queue oscillates");

  const auto horizon = sim::msec(60);

  stats::Table t({"scheme", "flow A goodput", "1G-path queue mean", "1G-path queue max"});
  for (Scheme scheme : {Scheme::kPrestoStar, Scheme::kHermes}) {
    harness::ScenarioConfig cfg;
    cfg.topo.num_leaves = 2;
    cfg.topo.num_spines = 2;
    cfg.topo.hosts_per_leaf = 1;
    // The spine-0 path is 1G on its destination leg (as in Fig. 3a the
    // bottleneck sits at the spine's output toward the receiver).
    cfg.topo.fabric_overrides[{1, 0, 0}] = 1e9;
    cfg.scheme = scheme;
    cfg.presto_weighted = true;          // 1:10 capacity weights
    cfg.presto_cell_bytes = 64 * 1024;   // the example sprays flowcells
    cfg.max_sim_time = sim::sec(1);
    harness::Scenario s{cfg};

    const auto flow_id = s.add_flow(0, 1, 1'000'000'000, sim::usec(0));

    harness::QueueTrace trace{s.simulator(), s.topology().spine_downlink(0, 1), sim::usec(20)};
    trace.start(horizon);
    s.run_for(horizon);

    auto* recv = s.stack(1).receiver(flow_id);
    const double goodput_gbps =
        recv ? static_cast<double>(recv->rcv_nxt()) * 8 / horizon.to_seconds() / 1e9 : 0.0;
    t.add_row({bench::short_name(scheme), stats::Table::num(goodput_gbps, 2) + " Gbps",
               stats::Table::num(trace.mean_backlog() / 1e3, 1) + " KB",
               stats::Table::num(trace.max_backlog() / 1e3, 1) + " KB"});
  }
  t.print();
  std::printf("\n(available aggregate capacity: 11 Gbps; host NIC limits a single path "
              "to 10 Gbps)\n");
  return 0;
}
