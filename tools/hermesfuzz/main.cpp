// hermesfuzz: seeded scenario-fuzzing driver (DESIGN.md section 10).
//
// Expands each seed into a random scenario (topology x workload x fault
// plan), runs it with invariant checking on, and reports seeds whose run
// broke an invariant or stranded flows. Every failing seed auto-dumps
// its flight-recorder ring to FUZZ_<seed>.htrc with a repro command, so
// a nightly finding replays locally with a single flag.
//
//   hermesfuzz --seeds=1000                  # seeds 0..999, Hermes
//   hermesfuzz --seeds=500 --seed-base=1000  # seeds 1000..1499
//   hermesfuzz --seed=1693 --scheme=CONGA    # replay one finding
//   hermesfuzz --seed=1693 --describe        # print the scenario, no run
//
// Exit status: 0 all seeds clean, 1 at least one failing seed (each with
// a dumped trace + repro line), 2 usage error.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "hermes/faults/scenario_fuzzer.hpp"
#include "hermes/harness/fuzz_runner.hpp"
#include "hermes/harness/parallel_runner.hpp"
#include "hermes/harness/scenario.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds=N] [--seed-base=B] [--seed=S] [--scheme=NAME]\n"
               "          [--threads=N] [--out=DIR] [--no-triage] [--describe] [--sharded]\n"
               "  --seeds=N      run seeds [seed-base, seed-base+N) (default 100)\n"
               "  --seed-base=B  first seed of the range (default 0)\n"
               "  --seed=S       run exactly one seed (overrides --seeds/--seed-base)\n"
               "  --scheme=NAME  load balancer under test (default Hermes)\n"
               "  --threads=N    worker threads (default HERMES_THREADS or hw)\n"
               "  --out=DIR      directory for FUZZ_<seed>.htrc triage dumps\n"
               "  --no-triage    skip flight recording and trace dumps (faster)\n"
               "  --describe     print each seed's generated scenario and exit\n"
               "  --sharded      determinism fuzz: per-seed sharded fat-tree with a fault\n"
               "                 flap train, run at 1 and 2 threads; FAIL on hash mismatch\n",
               argv0);
  return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

/// "--name=value" / "--name value" matcher; advances i for the two-token
/// form. Returns nullptr when argv[i] is not this option.
const char* opt_value(char** argv, int argc, int& i, const char* name) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(argv[i], name, n) != 0) return nullptr;
  if (argv[i][n] == '=') return argv[i] + n + 1;
  if (argv[i][n] == '\0' && i + 1 < argc) return argv[++i];
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hermes;

  std::uint64_t num_seeds = 100;
  std::uint64_t seed_base = 0;
  std::optional<std::uint64_t> single_seed;
  harness::Scheme scheme = harness::Scheme::kHermes;
  std::uint64_t threads = 0;
  std::string out_dir;
  bool triage = true;
  bool describe = false;
  bool sharded = false;

  for (int i = 1; i < argc; ++i) {
    if (const char* v = opt_value(argv, argc, i, "--seeds")) {
      if (!parse_u64(v, num_seeds)) return usage(argv[0]);
    } else if (const char* v2 = opt_value(argv, argc, i, "--seed-base")) {
      if (!parse_u64(v2, seed_base)) return usage(argv[0]);
    } else if (const char* v3 = opt_value(argv, argc, i, "--seed")) {
      std::uint64_t s = 0;
      if (!parse_u64(v3, s)) return usage(argv[0]);
      single_seed = s;
    } else if (const char* v4 = opt_value(argv, argc, i, "--scheme")) {
      const std::optional<harness::Scheme> parsed = harness::parse_scheme(v4);
      if (!parsed) {
        std::fprintf(stderr, "hermesfuzz: unknown scheme '%s'\n", v4);
        return 2;
      }
      scheme = *parsed;
    } else if (const char* v5 = opt_value(argv, argc, i, "--threads")) {
      if (!parse_u64(v5, threads)) return usage(argv[0]);
    } else if (const char* v6 = opt_value(argv, argc, i, "--out")) {
      out_dir = v6;
    } else if (std::strcmp(argv[i], "--no-triage") == 0) {
      triage = false;
    } else if (std::strcmp(argv[i], "--describe") == 0) {
      describe = true;
    } else if (std::strcmp(argv[i], "--sharded") == 0) {
      sharded = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<std::uint64_t> seeds;
  if (single_seed) {
    seeds.push_back(*single_seed);
  } else {
    seeds.reserve(num_seeds);
    for (std::uint64_t s = 0; s < num_seeds; ++s) seeds.push_back(seed_base + s);
  }

  const faults::fuzz::RandomScenarioGenerator gen;

  if (describe) {
    for (const std::uint64_t s : seeds) {
      std::fputs(gen.generate(s).describe().c_str(), stdout);
    }
    return 0;
  }

  const harness::ParallelRunner runner{static_cast<unsigned>(threads)};

  if (sharded) {
    // Each seed already runs its scenario twice (1 and 2 executor
    // threads), so map seeds serially and let the executor own the
    // parallelism.
    std::size_t mismatches = 0;
    for (const std::uint64_t s : seeds) {
      const harness::ShardedFuzzOutcome o = harness::run_sharded_fuzz_seed(s, scheme);
      if (o.deterministic()) continue;
      ++mismatches;
      std::printf("FAIL seed=%llu shards=%d hash_t1=%016llx hash_t2=%016llx\n",
                  static_cast<unsigned long long>(o.seed), o.num_shards,
                  static_cast<unsigned long long>(o.hash_t1),
                  static_cast<unsigned long long>(o.hash_t2));
      if (!o.repro.empty()) std::printf("  repro: %s\n", o.repro.c_str());
    }
    std::printf("hermesfuzz: sharded scheme=%s seeds=%zu mismatching=%zu\n",
                harness::to_string(scheme), seeds.size(), mismatches);
    return mismatches == 0 ? 0 : 1;
  }

  const std::vector<harness::FuzzOutcome> outcomes =
      runner.map<harness::FuzzOutcome>(seeds.size(), [&](std::size_t i) {
        return harness::run_fuzz_scenario(gen.generate(seeds[i]), scheme, triage, out_dir);
      });

  std::size_t failing = 0;
  for (const harness::FuzzOutcome& o : outcomes) {
    if (o.clean()) continue;
    ++failing;
    std::printf("FAIL seed=%llu violations=%zu unfinished=%zu%s%s\n",
                static_cast<unsigned long long>(o.seed), o.violations, o.unfinished_flows,
                o.first_violation.empty() ? "" : " first: ", o.first_violation.c_str());
    if (!o.trace_path.empty()) std::printf("  trace: %s\n", o.trace_path.c_str());
    if (!o.repro.empty()) std::printf("  repro: %s\n", o.repro.c_str());
  }
  std::printf("hermesfuzz: scheme=%s seeds=%zu failing=%zu\n", harness::to_string(scheme),
              outcomes.size(), failing);
  return failing == 0 ? 0 : 1;
}
