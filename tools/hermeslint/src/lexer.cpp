#include "hermes/lint/lexer.hpp"

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hermes::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::vector<Line> Lexer::scan(std::string_view src) {
  std::vector<Line> lines;
  lines.emplace_back();

  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of an active raw string

  std::size_t i = 0;
  const std::size_t n = src.size();
  {  // Raw text is a straight newline split, independent of lexer state.
    std::size_t start = 0;
    std::size_t idx = 0;
    for (std::size_t p = 0; p <= n; ++p) {
      if (p == n || src[p] == '\n') {
        if (idx >= lines.size()) lines.emplace_back();
        lines[idx].raw = std::string(src.substr(start, p - start));
        start = p + 1;
        ++idx;
      }
    }
  }
  std::size_t li = 0;
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++li;
      ++i;
      continue;
    }
    Line& line = lines[li];
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
          // Line comment: runs to end of line; capture its text.
          std::size_t end = src.find('\n', i);
          if (end == std::string_view::npos) end = n;
          line.comment.append(src.substr(i + 2, end - i - 2));
          line.code.append(end - i, ' ');
          i = end;
        } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
          state = State::kBlockComment;
          line.code.append(2, ' ');
          i += 2;
        } else if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
                   (line.code.empty() || !is_ident_char(line.code.back()))) {
          // Raw string R"delim( ... )delim"
          std::size_t p = i + 2;
          std::string delim;
          while (p < n && src[p] != '(' && src[p] != '\n') delim.push_back(src[p++]);
          if (p < n && src[p] == '(') {
            raw_delim = ")" + delim + "\"";
            line.code.append("R\"");
            line.code.append(delim.size() + 1, ' ');
            i = p + 1;
            state = State::kRawString;
          } else {
            line.code.push_back(c);
            ++i;
          }
        } else if (c == '"') {
          state = State::kString;
          line.code.push_back('"');
          ++i;
        } else if (c == '\'' && !line.code.empty() &&
                   (is_ident_char(line.code.back()))) {
          // Digit separator in a numeric literal (1'000) or suffix
          // context: not a char literal.
          line.code.push_back(c);
          ++i;
        } else if (c == '\'') {
          state = State::kChar;
          line.code.push_back('\'');
          ++i;
        } else {
          line.code.push_back(c);
          ++i;
        }
        break;
      }
      case State::kBlockComment: {
        if (c == '*' && i + 1 < n && src[i + 1] == '/') {
          state = State::kCode;
          line.code.append(2, ' ');
          i += 2;
        } else {
          line.comment.push_back(c);
          line.code.push_back(' ');
          ++i;
        }
        break;
      }
      case State::kString: {
        if (c == '\\' && i + 1 < n && src[i + 1] != '\n') {
          line.code.append(2, ' ');
          i += 2;
        } else if (c == '"') {
          state = State::kCode;
          line.code.push_back('"');
          ++i;
        } else {
          line.code.push_back(' ');
          ++i;
        }
        break;
      }
      case State::kChar: {
        if (c == '\\' && i + 1 < n && src[i + 1] != '\n') {
          line.code.append(2, ' ');
          i += 2;
        } else if (c == '\'') {
          state = State::kCode;
          line.code.push_back('\'');
          ++i;
        } else {
          line.code.push_back(' ');
          ++i;
        }
        break;
      }
      case State::kRawString: {
        if (c == ')' && src.substr(i, raw_delim.size()) == raw_delim) {
          line.code.append(raw_delim.size(), ' ');
          line.code.back() = '"';
          i += raw_delim.size();
          state = State::kCode;
        } else {
          line.code.push_back(' ');
          ++i;
        }
        break;
      }
    }
  }
  return lines;
}

bool matches_identifier_at(std::string_view text, std::size_t pos, std::string_view ident) {
  if (pos + ident.size() > text.size()) return false;
  if (text.substr(pos, ident.size()) != ident) return false;
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + ident.size();
  if (end < text.size() && is_ident_char(text[end])) return false;
  return true;
}

std::size_t find_identifier(std::string_view text, std::string_view ident, std::size_t from) {
  for (std::size_t pos = text.find(ident, from); pos != std::string_view::npos;
       pos = text.find(ident, pos + 1)) {
    if (matches_identifier_at(text, pos, ident)) return pos;
  }
  return std::string_view::npos;
}

}  // namespace hermes::lint
