#include "hermes/lint/dataflow.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hermes::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_ci(std::string_view hay, std::string_view needle) {
  if (needle.empty() || hay.size() < needle.size()) return false;
  const auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  for (std::size_t i = 0; i + needle.size() <= hay.size(); ++i) {
    bool hit = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(hay[i + j]) != lower(needle[j])) {
        hit = false;
        break;
      }
    }
    if (hit) return true;
  }
  return false;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0)
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0)
    s.remove_suffix(1);
  return s;
}

/// All identifiers in a text fragment, in order.
std::vector<std::string> idents_in(std::string_view text) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < text.size();) {
    if (is_ident_char(text[i]) && std::isdigit(static_cast<unsigned char>(text[i])) == 0) {
      std::size_t e = i;
      while (e < text.size() && is_ident_char(text[e])) ++e;
      out.emplace_back(text.substr(i, e - i));
      i = e;
    } else {
      ++i;
    }
  }
  return out;
}

bool is_cxx_noise(std::string_view id) {
  static constexpr std::string_view kNoise[] = {
      "static_cast", "const_cast", "reinterpret_cast", "std",   "size_t", "uint32_t",
      "uint64_t",    "int32_t",    "int64_t",          "int",   "auto",   "const",
      "unsigned",    "size_type",  "ptrdiff_t",        "this",  "true",   "false",
      "nullptr",     "if",         "for",              "while", "return", "sizeof",
  };
  return std::find(std::begin(kNoise), std::end(kNoise), id) != std::end(kNoise);
}

// ---------------------------------------------------------------- extraction

/// Decides whether a '{' after `text` opens a statement block (function,
/// control construct, class, namespace) or a brace-initializer that must
/// stay part of the statement (`arena_{arena}`, `Mail{...}`, `= {1, 2}`).
bool brace_opens_block(std::string_view text) {
  text = trim(text);
  if (text.empty()) return true;  // bare scope / body after a flushed header
  const char prev = text.back();
  if (prev == ')' || prev == ']') return true;  // `f(...) {`, lambda `[&] {`
  if (prev == '}') return true;  // ctor body after a consumed `member_{init}` list
  if (prev == ':') return true;  // `case X: {`, `default: {`
  if (is_ident_char(prev)) {
    const std::vector<std::string> toks = idents_in(text);
    static constexpr std::string_view kBlockFirst[] = {"class", "struct", "enum", "union",
                                                       "namespace"};
    for (const std::string_view k : kBlockFirst) {
      if (toks.front() == k) return true;
    }
    if (toks.front() == "template") {
      for (const std::string& t : toks) {
        if (t == "class" || t == "struct") return true;
      }
    }
    // Trailing specifiers that precede a body brace directly.
    static constexpr std::string_view kBlockTail[] = {"else",  "do",    "try",    "override",
                                                      "final", "const", "noexcept", "mutable"};
    for (const std::string_view k : kBlockTail) {
      if (toks.back() == k) return true;
    }
    return false;  // `Type{...}` / `member_{...}` brace-init
  }
  return false;  // `= {`, `, {`, `& {` ... initializer contexts
}

struct Parser {
  const std::vector<Line>& lines;
  std::size_t li = 0;   ///< current line
  std::size_t ci = 0;   ///< current column in lines[li].code

  explicit Parser(const std::vector<Line>& l) : lines{l} {}

  bool eof() const { return li >= lines.size(); }

  char peek() const { return lines[li].code[ci]; }

  void advance() {
    ++ci;
    while (li < lines.size() && ci >= lines[li].code.size()) {
      ++li;
      ci = 0;
    }
  }

  void normalize() {
    while (li < lines.size() && ci >= lines[li].code.size()) {
      ++li;
      ci = 0;
    }
  }

  /// Appends a balanced {...} group (cursor at '{') verbatim to `text`:
  /// brace-initializers are statement text, not nested blocks, and the
  /// semicolons inside them must not split the statement.
  void consume_braced(std::string& text) {
    int depth = 0;
    while (!eof()) {
      const char c = peek();
      text.push_back(c == '\t' ? ' ' : c);
      if (c == '{') ++depth;
      if (c == '}' && --depth == 0) {
        advance();
        return;
      }
      advance();
    }
  }

  /// Parses the statements of a brace block, cursor just past '{'.
  std::vector<Stmt> parse_block() {
    std::vector<Stmt> out;
    std::string text;
    int text_line = -1;
    int paren = 0;
    auto flush_plain = [&] {
      const std::string_view t = trim(text);
      if (!t.empty()) out.push_back(Stmt{text_line < 0 ? static_cast<int>(li) : text_line,
                                         std::string(t), false, {}});
      text.clear();
      text_line = -1;
    };
    normalize();
    while (!eof()) {
      const char c = peek();
      if (paren == 0 && c == '{') {
        if (!brace_opens_block(text)) {
          if (text_line < 0) text_line = static_cast<int>(li);
          consume_braced(text);
          continue;
        }
        const int head_line = text_line < 0 ? static_cast<int>(li) : text_line;
        const std::string head{trim(text)};
        text.clear();
        text_line = -1;
        advance();
        std::vector<Stmt> kids = parse_block();
        out.push_back(Stmt{head_line, head, true, std::move(kids)});
        continue;
      }
      if (paren == 0 && c == '}') {
        flush_plain();
        advance();
        return out;
      }
      if (c == '(') ++paren;
      if (c == ')' && paren > 0) --paren;
      if (paren == 0 && c == ';') {
        text.push_back(';');
        if (text_line < 0) text_line = static_cast<int>(li);
        flush_plain();
        advance();
        continue;
      }
      if (text_line < 0 && !std::isspace(static_cast<unsigned char>(c))) {
        text_line = static_cast<int>(li);
      }
      text.push_back(c == '\t' ? ' ' : c);
      advance();
    }
    flush_plain();
    return out;
  }
};

/// True when the block header reads like a function declarator rather
/// than a control construct, class, namespace, or initializer list.
bool header_is_function(std::string_view head, std::string* name, std::string* params) {
  head = trim(head);
  if (head.empty()) return false;
  // Strip a constructor's member-init list: a top-level ':' (not '::')
  // after the parameter list ends the declarator proper.
  {
    int paren = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
      const char c = head[i];
      if (c == '(') ++paren;
      if (c == ')' && paren > 0) --paren;
      if (c == ':' && paren == 0) {
        const bool scope = (i + 1 < head.size() && head[i + 1] == ':') || (i > 0 && head[i - 1] == ':');
        if (!scope) {
          head = trim(head.substr(0, i));
          break;
        }
        if (i + 1 < head.size() && head[i + 1] == ':') ++i;  // skip '::'
      }
    }
  }
  if (head.empty()) return false;
  // Reject headers whose *first* token is a non-function keyword.
  const std::vector<std::string> toks = idents_in(head);
  if (toks.empty()) return false;
  static constexpr std::string_view kNotFn[] = {
      "if", "else", "for", "while", "switch", "do", "try", "catch", "namespace",
      "class", "struct", "enum", "union",
  };
  for (const std::string_view k : kNotFn) {
    if (toks.front() == k) return false;
  }
  // `= {` initializers and `return {...}` are not functions.
  if (head.back() == '=' || head.back() == ',' || head.back() == '(') return false;
  // Find the last balanced (...) group; the identifier before it is the name.
  if (head.back() != ')') {
    // Allow trailing specifiers: `) const`, `) noexcept`, `) override`, `) -> T`.
    const std::size_t close = head.rfind(')');
    if (close == std::string_view::npos) return false;
    const std::string_view tail = trim(head.substr(close + 1));
    for (const std::string& t : idents_in(tail)) {
      if (t != "const" && t != "noexcept" && t != "override" && t != "final" && t != "try") {
        // Trailing return types `-> T` are fine; anything else is not a fn.
        if (tail.find("->") == std::string_view::npos) return false;
        break;
      }
    }
    head = head.substr(0, close + 1);
  }
  int depth = 0;
  std::size_t open = std::string_view::npos;
  for (std::size_t p = head.size(); p > 0;) {
    --p;
    if (head[p] == ')') ++depth;
    if (head[p] == '(') {
      if (--depth == 0) {
        open = p;
        break;
      }
    }
  }
  if (open == std::string_view::npos || open == 0) return false;
  std::size_t e = open;
  while (e > 0 && std::isspace(static_cast<unsigned char>(head[e - 1])) != 0) --e;
  std::size_t b = e;
  while (b > 0 && is_ident_char(head[b - 1])) --b;
  if (b == e) {
    // Lambdas: `[...](params)`; treat as a function named "<lambda>".
    if (e > 0 && head[e - 1] == ']') {
      *name = "<lambda>";
      *params = std::string(head.substr(open + 1, head.size() - open - 2));
      return true;
    }
    return false;
  }
  const std::string_view id = head.substr(b, e - b);
  static constexpr std::string_view kNotName[] = {"return", "co_return", "co_await", "sizeof",
                                                  "alignof", "decltype", "delete", "new"};
  for (const std::string_view k : kNotName) {
    if (id == k) return false;
  }
  // `Type name(args)` needs something before the name (return type) OR a
  // qualified name (Class::name) OR ctor/dtor-ish shapes; a bare
  // `name(...)` with nothing before it is a call used as a statement.
  const std::string_view before = trim(head.substr(0, b));
  if (before.empty()) return false;
  if (before.back() == '.' || before.back() == ',' || before.back() == '(' ||
      before.back() == '=' || before.back() == '+' || before.back() == '-' ||
      before.back() == '<' || before.back() == '!') {
    return false;
  }
  *name = std::string(id);
  *params = std::string(head.substr(open + 1, head.size() - open - 2));
  return true;
}

void harvest_functions(const std::vector<Stmt>& block, std::vector<Function>& out) {
  for (const Stmt& s : block) {
    if (!s.is_block) continue;
    std::string name;
    std::string params;
    if (header_is_function(s.text, &name, &params)) {
      Function fn;
      fn.name = std::move(name);
      fn.params = std::move(params);
      fn.open_line0 = s.line0;
      int last = s.line0;
      // The close line is approximated by the deepest child line.
      std::vector<const Stmt*> stack{&s};
      while (!stack.empty()) {
        const Stmt* t = stack.back();
        stack.pop_back();
        last = std::max(last, t->line0);
        for (const Stmt& k : t->children) stack.push_back(&k);
      }
      fn.close_line0 = last;
      fn.body = s.children;
      out.push_back(std::move(fn));
    } else {
      harvest_functions(s.children, out);  // classes, namespaces, control blocks
    }
  }
}

/// Visits every statement of a tree in order (block headers included).
template <typename F>
void walk(const std::vector<Stmt>& block, F&& f) {
  for (const Stmt& s : block) {
    f(s);
    if (s.is_block) walk(s.children, f);
  }
}

/// Splits `for (init; cond; step)` headers; returns true + pieces.
bool split_for_header(std::string_view head, std::string_view* init, std::string_view* cond) {
  head = trim(head);
  if (head.rfind("for", 0) != 0) return false;
  const std::size_t open = head.find('(');
  if (open == std::string_view::npos || head.back() != ')') return false;
  const std::string_view inner = head.substr(open + 1, head.size() - open - 2);
  const std::size_t semi1 = inner.find(';');
  if (semi1 == std::string_view::npos) return false;  // range-for
  const std::size_t semi2 = inner.find(';', semi1 + 1);
  *init = inner.substr(0, semi1);
  *cond = semi2 == std::string_view::npos ? inner.substr(semi1 + 1)
                                          : inner.substr(semi1 + 1, semi2 - semi1 - 1);
  return true;
}

/// The assignment in `text`, if any: writes LHS identifier and RHS text.
/// Matches `X = rhs` and `type X = rhs` but not ==, <=, >=, !=, +=, etc.
bool split_assignment(std::string_view text, std::string* lhs, std::string* rhs) {
  int paren = 0;
  int angle = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c != '=' || paren != 0) continue;
    if (i + 1 < text.size() && text[i + 1] == '=') return false;
    if (i > 0 && (text[i - 1] == '=' || text[i - 1] == '!' || text[i - 1] == '<' ||
                  text[i - 1] == '>' || text[i - 1] == '+' || text[i - 1] == '-' ||
                  text[i - 1] == '*' || text[i - 1] == '/' || text[i - 1] == '|' ||
                  text[i - 1] == '&' || text[i - 1] == '^')) {
      return false;
    }
    std::size_t e = i;
    while (e > 0 && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) --e;
    std::size_t b = e;
    while (b > 0 && is_ident_char(text[b - 1])) --b;
    if (b == e) return false;
    *lhs = std::string(text.substr(b, e - b));
    *rhs = std::string(trim(text.substr(i + 1)));
    return true;
  }
  return false;
}

std::map<std::string, std::string> collect_defs(const Function& fn) {
  std::map<std::string, std::string> defs;
  walk(fn.body, [&](const Stmt& s) {
    std::string_view init;
    std::string_view cond;
    if (s.is_block && split_for_header(s.text, &init, &cond)) {
      std::string lhs;
      std::string rhs;
      if (split_assignment(init, &lhs, &rhs)) {
        defs[lhs] += rhs;
        defs[lhs] += ' ';
        // The induction variable is bounded by the loop condition: its
        // reachable values derive from the bound expression.
        defs[lhs] += cond;
        defs[lhs] += ' ';
      }
      return;
    }
    std::string lhs;
    std::string rhs;
    if (split_assignment(s.text, &lhs, &rhs)) {
      defs[lhs] += rhs;
      defs[lhs] += ' ';
    }
  });
  return defs;
}

/// Declared floating-point locals (`double x`, `float y`) incl. params.
std::set<std::string> float_vars(const Function& fn) {
  std::set<std::string> out;
  const auto scan = [&](std::string_view text) {
    for (const std::string_view ty : {std::string_view{"double"}, std::string_view{"float"}}) {
      for (std::size_t pos = text.find(ty); pos != std::string_view::npos;
           pos = text.find(ty, pos + 1)) {
        if (pos > 0 && is_ident_char(text[pos - 1])) continue;
        std::size_t p = pos + ty.size();
        if (p < text.size() && is_ident_char(text[p])) continue;
        while (p < text.size() && (std::isspace(static_cast<unsigned char>(text[p])) != 0 ||
                                   text[p] == '&' || text[p] == '*')) {
          ++p;
        }
        std::size_t e = p;
        while (e < text.size() && is_ident_char(text[e])) ++e;
        if (e > p) out.emplace(text.substr(p, e - p));
      }
    }
  };
  scan(fn.params);
  walk(fn.body, [&](const Stmt& s) { scan(s.text); });
  return out;
}

bool stmt_terminates(const Stmt& s) {
  const std::string_view t = trim(s.text);
  return t.rfind("return", 0) == 0 || t.rfind("break", 0) == 0 || t.rfind("continue", 0) == 0 ||
         t.rfind("throw", 0) == 0 || t.rfind("co_return", 0) == 0;
}

bool block_terminates(const std::vector<Stmt>& block) {
  for (auto it = block.rbegin(); it != block.rend(); ++it) {
    if (!it->is_block) return stmt_terminates(*it);
    return false;
  }
  return false;
}

std::size_t find_word(std::string_view text, std::string_view word, std::size_t from = 0) {
  for (std::size_t pos = text.find(word, from); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    const bool lb = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool rb = end >= text.size() || !is_ident_char(text[end]);
    if (lb && rb) return pos;
  }
  return std::string_view::npos;
}

}  // namespace

std::vector<Function> extract_functions(const std::vector<Line>& lines) {
  // Preprocessor directives carry no ';' terminator and would bleed into
  // neighbouring statements; blank them (and their backslash
  // continuations) before parsing. Indices are preserved so line numbers
  // stay accurate.
  std::vector<Line> filtered = lines;
  bool continuation = false;
  for (Line& l : filtered) {
    const std::string_view t = trim(l.code);
    if (continuation || (!t.empty() && t.front() == '#')) {
      continuation = !t.empty() && t.back() == '\\';
      l.code.clear();
    } else {
      continuation = false;
    }
  }
  Parser p{filtered};
  std::vector<Stmt> top = p.parse_block();  // treats the file as one block
  std::vector<Function> out;
  harvest_functions(top, out);
  return out;
}

std::string defs_of(const Function& fn, const std::string& ident) {
  const auto defs = collect_defs(fn);
  const auto it = defs.find(ident);
  return it == defs.end() ? std::string{} : it->second;
}

// Whole-word occurrences of `self` are blanked before the substring
// check: a variable named `shard` must not certify its own definition
// (`shard = 0`) just by appearing in the def text.
bool def_text_has_shard(std::string text, const std::string& self) {
  for (std::size_t pos = find_word(text, self); pos != std::string_view::npos;
       pos = find_word(text, self, pos + 1)) {
    for (std::size_t k = 0; k < self.size(); ++k) text[pos + k] = ' ';
  }
  return contains_ci(text, "shard");
}

bool has_shard_provenance(const Function& fn, const std::string& ident, int depth) {
  const auto defs = collect_defs(fn);
  const auto it = defs.find(ident);
  if (it == defs.end()) {
    // No local def: a parameter or member. A shard-named parameter is the
    // caller's routing decision — accepted; anything else is opaque.
    return contains_ci(ident, "shard");
  }
  // The ident IS locally defined, so its name alone proves nothing; the
  // definition must derive from shard arithmetic (shard_of_* call,
  // num_shards-bounded loop, or a chain of such defs).
  if (depth <= 0) return false;
  if (def_text_has_shard(it->second, ident)) return true;
  for (const std::string& id : idents_in(it->second)) {
    if (id == ident || is_cxx_noise(id)) continue;
    if (has_shard_provenance(fn, id, depth - 1)) return true;
  }
  return false;
}

void check_shard_indexing(const Function& fn, const std::vector<std::string>& owned,
                          const DataflowSink& sink) {
  if (owned.empty()) return;
  walk(fn.body, [&](const Stmt& s) {
    for (const std::string& name : owned) {
      for (std::size_t pos = find_word(s.text, name); pos != std::string_view::npos;
           pos = find_word(s.text, name, pos + 1)) {
        std::size_t p = pos + name.size();
        while (p < s.text.size() && std::isspace(static_cast<unsigned char>(s.text[p])) != 0) ++p;
        if (p >= s.text.size() || s.text[p] != '[') continue;
        // Extract the balanced [...] index expression.
        int depth = 0;
        std::size_t close = std::string_view::npos;
        for (std::size_t q = p; q < s.text.size(); ++q) {
          if (s.text[q] == '[') ++depth;
          if (s.text[q] == ']' && --depth == 0) {
            close = q;
            break;
          }
        }
        if (close == std::string_view::npos) continue;
        const std::string_view idx = trim(std::string_view{s.text}.substr(p + 1, close - p - 1));
        // Inline shard_of_*(...) calls and shard-named members/params are
        // granted through the per-identifier provenance walk below; raw
        // text is never trusted (a local named `shard` defined as `0`
        // must still be caught).
        bool proven = false;
        for (const std::string& id : idents_in(idx)) {
          if (is_cxx_noise(id)) continue;
          if (has_shard_provenance(fn, id)) {
            proven = true;
            break;
          }
        }
        if (!proven) {
          sink(s.line0,
               "'" + name + "[" + std::string(idx) + "]' indexes HERMES_SHARD_OWNED state " +
                   "with an index that does not derive from shard ownership " +
                   "(shard_of_* / fault_owner_shard / num_shards-bounded loop); a wrong " +
                   "index here writes another shard's state outside its event stream");
        }
      }
    }
  });
}

void check_shard_ptr_escape(const Function& fn, const std::vector<char>& sharded_mask,
                            const std::vector<std::string>& ptr_names, const DataflowSink& sink) {
  // Escape tracking: the file-wide Port*/Host* names plus every local
  // alias transitively assigned from one.
  std::set<std::string> tracked(ptr_names.begin(), ptr_names.end());
  bool grew = true;
  while (grew) {
    grew = false;
    walk(fn.body, [&](const Stmt& s) {
      std::string lhs;
      std::string rhs;
      if (!split_assignment(s.text, &lhs, &rhs)) return;
      if (tracked.count(lhs) != 0) return;
      for (const std::string& id : idents_in(rhs)) {
        if (tracked.count(id) != 0) {
          tracked.insert(lhs);
          grew = true;
          return;
        }
      }
    });
  }
  walk(fn.body, [&](const Stmt& s) {
    if (s.line0 >= static_cast<int>(sharded_mask.size()) || sharded_mask[s.line0] == 0) return;
    for (const std::string& name : tracked) {
      for (std::size_t pos = find_word(s.text, name); pos != std::string_view::npos;
           pos = find_word(s.text, name, pos + 1)) {
        std::size_t after = pos + name.size();
        while (after < s.text.size() &&
               std::isspace(static_cast<unsigned char>(s.text[after])) != 0) {
          ++after;
        }
        const bool arrow =
            after + 1 < s.text.size() && s.text[after] == '-' && s.text[after + 1] == '>';
        std::size_t before = pos;
        while (before > 0 && std::isspace(static_cast<unsigned char>(s.text[before - 1])) != 0)
          --before;
        bool star = false;
        if (before > 0 && s.text[before - 1] == '*') {
          std::size_t q = before - 1;
          while (q > 0 && std::isspace(static_cast<unsigned char>(s.text[q - 1])) != 0) --q;
          star = q == 0 || !is_ident_char(s.text[q - 1]);
        }
        if (arrow || star) {
          sink(s.line0,
               "dereference of Port/Host pointer '" + name +
                   "' (directly or through an escaped alias) in a HERMES_SHARDED region; "
                   "cross-shard state moves through the mailbox API only (Outbox::push at "
                   "emit time, inbox delivery inside the owning shard)");
        }
      }
    }
  });
}

void check_arena_lifetime(const Function& fn, const std::vector<char>& sharded_mask,
                          const DataflowSink& sink) {
  // -------- gather tracked handles and aliases (flow-insensitive ids).
  std::set<std::string> handles;
  std::map<std::string, std::string> alias_of;  ///< packet ref/ptr -> handle
  const auto scan_decl = [&](std::string_view text) {
    for (const std::string_view ty :
         {std::string_view{"PacketHandle"}, std::string_view{"ArenaHandle"}}) {
      for (std::size_t pos = find_word(text, ty); pos != std::string_view::npos;
           pos = find_word(text, ty, pos + 1)) {
        std::size_t p = pos + ty.size();
        while (p < text.size() && (std::isspace(static_cast<unsigned char>(text[p])) != 0 ||
                                   text[p] == '&' || text[p] == '*')) {
          ++p;
        }
        std::size_t e = p;
        while (e < text.size() && is_ident_char(text[e])) ++e;
        if (e > p) handles.emplace(text.substr(p, e - p));
      }
    }
  };
  scan_decl(fn.params);
  walk(fn.body, [&](const Stmt& s) { scan_decl(s.text); });
  // Aliases: `Packet& p = arena[h]` / `Packet* p = arena.get(h)` /
  // `auto& p = arena_[h]`. By-value `Packet p = ...` copies the payload
  // out of the slot and is deliberately not tracked.
  walk(fn.body, [&](const Stmt& s) {
    std::string lhs;
    std::string rhs;
    if (!split_assignment(s.text, &lhs, &rhs)) return;
    const std::string_view text{s.text};
    const std::size_t lhs_at = find_word(text, lhs);
    if (lhs_at == std::string_view::npos) return;
    const std::string_view before = trim(text.substr(0, lhs_at));
    const bool ref_decl =
        !before.empty() && (before.back() == '&' || before.back() == '*');
    if (!ref_decl) return;
    if (!contains_ci(rhs, "arena")) return;
    for (const std::string& id : idents_in(rhs)) {
      if (handles.count(id) != 0) {
        alias_of[lhs] = id;
        return;
      }
    }
  });

  // -------- branch-aware may-analysis over the statement tree.
  struct Engine {
    const std::set<std::string>& handles;
    const std::map<std::string, std::string>& alias_of;
    const std::vector<char>& sharded_mask;
    const DataflowSink& sink;
    std::map<std::string, int> poisoned;  ///< var -> line of the kill

    void poison_handle(const std::string& h, int line0) {
      poisoned[h] = line0;
      for (const auto& [alias, handle] : alias_of) {
        if (handle == h) poisoned[alias] = line0;
      }
    }

    void check_uses(const Stmt& s, const std::string& skip_lhs) {
      for (const auto& [var, killed_at] : poisoned) {
        for (std::size_t pos = find_word(s.text, var); pos != std::string_view::npos;
             pos = find_word(s.text, var, pos + 1)) {
          if (var == skip_lhs) break;  // re-definition, not a use
          sink(s.line0, "'" + var + "' is used after the arena freed its slot (free/reset at " +
                            "line " + std::to_string(killed_at + 1) +
                            "); a recycled slot means another packet's bytes — re-fetch the "
                            "handle or restructure so the free is the last touch");
          break;  // one finding per statement per var
        }
      }
    }

    /// Processes one block; returns the poison set additions that fall
    /// through to the statement after the block.
    std::map<std::string, int> run(const std::vector<Stmt>& block) {
      const std::map<std::string, int> entry = poisoned;
      for (const Stmt& s : block) {
        std::string lhs;
        std::string rhs;
        const bool assign = split_assignment(s.text, &lhs, &rhs);
        check_uses(s, assign ? lhs : std::string{});
        if (s.is_block) {
          const std::map<std::string, int> before = poisoned;
          std::map<std::string, int> inner = run(s.children);
          // A branch that cannot fall through (return/continue/break at
          // its tail) does not leak its kills past the join point.
          poisoned = before;
          if (!block_terminates(s.children)) {
            for (const auto& kv : inner) poisoned.insert(kv);
          }
          continue;
        }
        // Kills: arena.free(h) / arena.reset() / arena.clear().
        const std::string_view text{s.text};
        for (const std::string_view kill :
             {std::string_view{".free"}, std::string_view{"->free"}}) {
          for (std::size_t pos = text.find(kill); pos != std::string_view::npos;
               pos = text.find(kill, pos + 1)) {
            // Receiver must be arena-ish: identifier chain before the dot.
            std::size_t b = pos;
            while (b > 0 && (is_ident_char(text[b - 1]) || text[b - 1] == '_')) --b;
            const std::string_view recv = text.substr(b, pos - b);
            if (!contains_ci(recv, "arena")) continue;
            const std::size_t open = text.find('(', pos);
            if (open == std::string_view::npos) continue;
            const std::size_t close = text.find(')', open);
            const std::string_view arg =
                close == std::string_view::npos ? text.substr(open + 1)
                                                : text.substr(open + 1, close - open - 1);
            for (const std::string& id : idents_in(arg)) {
              if (handles.count(id) != 0) poison_handle(id, s.line0);
            }
          }
        }
        for (const std::string_view kill :
             {std::string_view{".reset("}, std::string_view{".clear("},
              std::string_view{"->reset("}, std::string_view{"->clear("}}) {
          for (std::size_t pos = text.find(kill); pos != std::string_view::npos;
               pos = text.find(kill, pos + 1)) {
            std::size_t b = pos;
            while (b > 0 && is_ident_char(text[b - 1])) --b;
            const std::string_view recv = text.substr(b, pos - b);
            if (!contains_ci(recv, "arena")) continue;
            for (const std::string& h : handles) poison_handle(h, s.line0);
            for (const auto& [alias, handle] : alias_of) poisoned[alias] = s.line0;
          }
        }
        // Re-definition heals the handle (fresh slot); aliases stay dead.
        if (assign && handles.count(lhs) != 0) poisoned.erase(lhs);
        // Barrier caching: a live handle stored into a member inside
        // HERMES_SHARDED barrier code outlives the round.
        const bool in_sharded = s.line0 < static_cast<int>(sharded_mask.size()) &&
                                sharded_mask[s.line0] != 0;
        if (in_sharded) {
          auto names_live_handle = [&](std::string_view expr) -> std::string {
            for (const std::string& id : idents_in(expr)) {
              if (handles.count(id) != 0 || alias_of.count(id) != 0) return id;
            }
            return {};
          };
          if (assign && !lhs.empty() && lhs.back() == '_' && handles.count(lhs) == 0) {
            const std::string h = names_live_handle(rhs);
            if (!h.empty()) {
              sink(s.line0, "'" + h + "' (an arena handle) is cached into member '" + lhs +
                                "' inside a HERMES_SHARDED region; slots are recycled every "
                                "barrier round — move the Packet by value through the mailbox "
                                "instead of keeping the handle");
            }
          } else if (!assign) {
            // member_.push_back(h) / member_.push(h) style caching.
            for (const std::string_view call :
                 {std::string_view{".push_back("}, std::string_view{".push("},
                  std::string_view{".emplace_back("}, std::string_view{".insert("}}) {
              const std::size_t pos = text.find(call);
              if (pos == std::string_view::npos) continue;
              std::size_t b = pos;
              while (b > 0 && is_ident_char(text[b - 1])) --b;
              const std::string_view recv = text.substr(b, pos - b);
              if (recv.empty() || recv.back() != '_') continue;
              const std::string h = names_live_handle(text.substr(pos + call.size()));
              if (!h.empty()) {
                sink(s.line0, "'" + h + "' (an arena handle) is cached into member '" +
                                  std::string(recv) +
                                  "' inside a HERMES_SHARDED region; slots are recycled every "
                                  "barrier round — move the Packet by value through the "
                                  "mailbox instead of keeping the handle");
              }
            }
          }
        }
      }
      // Report only the additions relative to entry.
      std::map<std::string, int> out;
      for (const auto& kv : poisoned) {
        if (entry.find(kv.first) == entry.end()) out.insert(kv);
      }
      return out;
    }
  };

  Engine engine{handles, alias_of, sharded_mask, sink, {}};
  engine.run(fn.body);
}

void check_float_order(const Function& fn, const std::vector<std::string>& unordered,
                       const DataflowSink& sink) {
  if (unordered.empty()) return;
  const std::set<std::string> floats = float_vars(fn);

  auto loop_over_unordered = [&](std::string_view head) -> std::string {
    head = trim(head);
    if (head.rfind("for", 0) != 0) return {};
    for (const std::string& name : unordered) {
      if (find_word(head, name) != std::string_view::npos) return name;
    }
    return {};
  };

  // Accumulation statements inside loops over unordered containers.
  std::function<void(const Stmt&, const std::string&)> scan_block =
      [&](const Stmt& blk, const std::string& container) {
        for (const Stmt& s : blk.children) {
          if (s.is_block) {
            const std::string inner = loop_over_unordered(s.text);
            scan_block(s, inner.empty() ? container : inner);
            continue;
          }
          if (container.empty()) continue;
          for (const std::string& v : floats) {
            for (const std::string_view op :
                 {std::string_view{"+="}, std::string_view{"-="}, std::string_view{"*="}}) {
              const std::size_t pos = s.text.find(std::string(v) + " " + std::string(op));
              const std::size_t pos2 = s.text.find(std::string(v) + std::string(op));
              if (pos != std::string::npos || pos2 != std::string::npos) {
                sink(s.line0,
                     "floating-point accumulation into '" + v + "' iterating unordered "
                     "container '" + container + "': float addition is not associative, so "
                     "hash order changes the sum; iterate a sorted view or accumulate into "
                     "integers");
              }
            }
          }
        }
      };
  Stmt root;
  root.is_block = true;
  root.children = fn.body;
  scan_block(root, loop_over_unordered(""));

  // std::accumulate / std::reduce with a floating seed over unordered
  // iterators leak hash order even without an explicit loop.
  walk(fn.body, [&](const Stmt& s) {
    for (const std::string_view call : {std::string_view{"accumulate"}, std::string_view{"reduce"}}) {
      const std::size_t pos = find_word(s.text, call);
      if (pos == std::string_view::npos) continue;
      for (const std::string& name : unordered) {
        if (s.text.find(name + ".begin") == std::string::npos &&
            s.text.find(name + " .begin") == std::string::npos) {
          continue;
        }
        bool floaty = s.text.find("0.0") != std::string::npos ||
                      s.text.find("0.f") != std::string::npos ||
                      s.text.find("0.F") != std::string::npos;
        for (const std::string& v : floats) {
          if (find_word(s.text, v) != std::string_view::npos) floaty = true;
        }
        if (floaty) {
          sink(s.line0,
               "std::" + std::string(call) + " with a floating seed over unordered container '" +
                   name + "' sums in hash order; copy to a sorted view first");
        }
      }
    }
  });
}

}  // namespace hermes::lint
