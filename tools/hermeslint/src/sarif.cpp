#include "hermes/lint/sarif.hpp"

#include <cstddef>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hermes::lint {

namespace {

std::string esc(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Result paths are repo-relative; strip any leading "./".
std::string_view rel(std::string_view path) {
  while (path.rfind("./", 0) == 0) path.remove_prefix(2);
  return path;
}

void append_location(std::string& out, std::string_view file, int line) {
  out += R"("locations": [{"physicalLocation": {"artifactLocation": {"uri": ")";
  out += esc(rel(file));
  out += R"(", "uriBaseId": "SRCROOT"}, "region": {"startLine": )";
  out += std::to_string(line > 0 ? line : 1);
  out += "}}}]";
}

}  // namespace

std::string to_sarif(const LintResult& result) {
  // Rule index: catalogue order, which is also the order of the SARIF
  // rules array — ruleIndex in each result points back into it.
  std::map<std::string, int, std::less<>> rule_index;
  const std::vector<RuleInfo>& catalogue = rule_catalogue();
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    rule_index.emplace(std::string(catalogue[i].id), static_cast<int>(i));
  }

  std::string out;
  out.reserve(4096);
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
      "sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\n"
      "      \"name\": \"hermeslint\",\n"
      "      \"version\": \"2.0.0\",\n"
      "      \"informationUri\": \"https://example.invalid/hermes/DESIGN.md\",\n"
      "      \"rules\": [\n";
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    out += R"(        {"id": ")";
    out += esc(catalogue[i].id);
    out += R"(", "shortDescription": {"text": ")";
    out += esc(catalogue[i].summary);
    out += R"("}, "defaultConfiguration": {"level": "error"}})";
    out += i + 1 < catalogue.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }},\n"
      "    \"originalUriBaseIds\": {\"SRCROOT\": {\"uri\": \"file:///./\"}},\n"
      "    \"results\": [\n";

  bool first = true;
  const auto emit = [&](std::string_view file, int line, std::string_view rule,
                        std::string_view message, bool suppressed, std::string_view reason) {
    if (!first) out += ",\n";
    first = false;
    out += R"(      {"ruleId": ")";
    out += esc(rule);
    const auto it = rule_index.find(rule);
    if (it != rule_index.end()) {
      out += R"(", "ruleIndex": )";
      out += std::to_string(it->second);
      out += R"(, "level": "error", "message": {"text": ")";
    } else {
      out += R"(", "level": "error", "message": {"text": ")";
    }
    out += esc(message);
    out += R"("}, )";
    append_location(out, file, line);
    if (suppressed) {
      out += R"(, "suppressions": [{"kind": "inSource", "justification": ")";
      out += esc(reason);
      out += R"("}])";
    }
    out += "}";
  };

  for (const Finding& f : result.findings) {
    emit(f.file, f.line, f.rule, f.message, /*suppressed=*/false, {});
  }
  for (const Suppression& s : result.suppressed) {
    emit(s.file, s.line, s.rule, "suppressed in source: " + s.reason, /*suppressed=*/true,
         s.reason);
  }

  out +=
      "\n    ]\n"
      "  }]\n"
      "}\n";
  return out;
}

}  // namespace hermes::lint
