#include "hermes/lint/cache.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hermes::lint {

namespace {

constexpr std::string_view kMagic = "hermeslint-cache v2";

/// The cache is line-oriented; embedded newlines, backslashes and the
/// '|' field separator are escaped so every record stays one line.
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '|': out += "\\p"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool unescape(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out->push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '\\': out->push_back('\\'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 'p': out->push_back('|'); break;
      default: return false;
    }
  }
  return true;
}

std::vector<std::string_view> split_fields(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\') {
      ++i;  // escaped char; never a separator
      continue;
    }
    if (s[i] == '|') {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(s.substr(start));
  return out;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    std::uint64_t d = 0;
    if (c >= '0' && c <= '9') d = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<std::uint64_t>(c - 'a') + 10;
    else return false;
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool parse_int(std::string_view s, int* out) {
  if (s.empty()) return false;
  int v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

Cache load_cache(const std::string& path) {
  Cache cache;
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return {};
  CachedFile* cur = nullptr;
  std::string cur_path;
  const auto abort = [&] {
    return Cache{};
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t sp = line.find(' ');
    const std::string_view key = std::string_view{line}.substr(0, sp);
    const std::string_view rest =
        sp == std::string::npos ? std::string_view{} : std::string_view{line}.substr(sp + 1);
    if (key == "global") {
      if (!parse_u64(rest, &cache.global_hash)) return abort();
    } else if (key == "rules") {
      if (!parse_u64(rest, &cache.rules_version)) return abort();
    } else if (key == "file") {
      std::string p;
      if (!unescape(rest, &p) || p.empty()) return abort();
      cur_path = p;
      cur = &cache.files[p];
      cur->summary.path = p;
    } else if (cur == nullptr) {
      return abort();
    } else if (key == "hash") {
      if (!parse_u64(rest, &cur->content_hash)) return abort();
    } else if (key == "module") {
      if (!unescape(rest, &cur->summary.module)) return abort();
    } else if (key == "header") {
      cur->summary.is_header = rest == "1";
    } else if (key == "include") {
      std::string v;
      if (!unescape(rest, &v)) return abort();
      cur->summary.includes.push_back(std::move(v));
    } else if (key == "unordered") {
      std::string v;
      if (!unescape(rest, &v)) return abort();
      cur->summary.unordered_names.push_back(std::move(v));
    } else if (key == "shardowned") {
      std::string v;
      if (!unescape(rest, &v)) return abort();
      cur->summary.shard_owned.push_back(std::move(v));
    } else if (key == "symbol") {
      const std::vector<std::string_view> f = split_fields(rest);
      if (f.size() != 2) return abort();
      SymbolDef def;
      if (!unescape(f[0], &def.ns) || !unescape(f[1], &def.name)) return abort();
      cur->summary.symbols.push_back(std::move(def));
    } else if (key == "finding") {
      const std::vector<std::string_view> f = split_fields(rest);
      if (f.size() != 4) return abort();
      Finding fd;
      fd.file = cur_path;
      if (!parse_int(f[0], &fd.line)) return abort();
      if (!unescape(f[1], &fd.rule) || !unescape(f[2], &fd.message) ||
          !unescape(f[3], &fd.snippet)) {
        return abort();
      }
      cur->findings.push_back(std::move(fd));
    } else if (key == "suppression") {
      const std::vector<std::string_view> f = split_fields(rest);
      if (f.size() != 4) return abort();
      Suppression sp2;
      sp2.file = cur_path;
      if (!parse_int(f[0], &sp2.line)) return abort();
      if (!unescape(f[1], &sp2.rule) || !unescape(f[2], &sp2.reason) ||
          !unescape(f[3], &sp2.expires)) {
        return abort();
      }
      cur->suppressions.push_back(std::move(sp2));
    } else {
      return abort();  // unknown record: stale format, start cold
    }
  }
  return cache;
}

bool save_cache(const std::string& path, const Cache& cache) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << kMagic << '\n';
    out << "global " << hex(cache.global_hash) << '\n';
    out << "rules " << hex(cache.rules_version) << '\n';
    for (const auto& [p, f] : cache.files) {
      out << "file " << escape(p) << '\n';
      out << "hash " << hex(f.content_hash) << '\n';
      out << "module " << escape(f.summary.module) << '\n';
      out << "header " << (f.summary.is_header ? '1' : '0') << '\n';
      for (const std::string& inc : f.summary.includes) out << "include " << escape(inc) << '\n';
      for (const std::string& u : f.summary.unordered_names)
        out << "unordered " << escape(u) << '\n';
      for (const std::string& s : f.summary.shard_owned) out << "shardowned " << escape(s) << '\n';
      for (const SymbolDef& s : f.summary.symbols)
        out << "symbol " << escape(s.ns) << '|' << escape(s.name) << '\n';
      for (const Finding& fd : f.findings) {
        out << "finding " << fd.line << '|' << escape(fd.rule) << '|' << escape(fd.message) << '|'
            << escape(fd.snippet) << '\n';
      }
      for (const Suppression& sp : f.suppressions) {
        out << "suppression " << sp.line << '|' << escape(sp.rule) << '|' << escape(sp.reason)
            << '|' << escape(sp.expires) << '\n';
      }
    }
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace hermes::lint
