#include "hermes/lint/summary.hpp"

#include <cstdint>
#include <string>
#include <string_view>

namespace hermes::lint {

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t GlobalContext::hash() const {
  std::uint64_t h = fnv1a("hermeslint-global-v2");
  for (const std::string& n : unordered_names) {
    h = fnv1a(n, h);
    h = fnv1a("\x1f", h);
  }
  h = fnv1a("\x1e", h);
  for (const std::string& n : shard_owned) {
    h = fnv1a(n, h);
    h = fnv1a("\x1f", h);
  }
  h = fnv1a("\x1e", h);
  for (const auto& [sym, header] : symbol_headers) {
    h = fnv1a(sym, h);
    h = fnv1a("\x1f", h);
    h = fnv1a(header, h);
    h = fnv1a("\x1f", h);
  }
  h = fnv1a("\x1e", h);
  h = fnv1a(today, h);
  return h;
}

}  // namespace hermes::lint
