#include "hermes/lint/linter.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hermes/lint/dataflow.hpp"
#include "hermes/lint/graph.hpp"
#include "hermes/lint/summary.hpp"

namespace hermes::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0)
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0)
    s.remove_suffix(1);
  return s;
}

bool is_blank(std::string_view s) { return trim(s).empty(); }

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

// ---------------------------------------------------------------------------
// Rule ids. Keep in sync with DESIGN.md's rule catalogue.
constexpr std::string_view kDetRand = "determinism.rand";
constexpr std::string_view kDetClock = "determinism.clock";
constexpr std::string_view kDetUnorderedIter = "determinism.unordered-iter";
constexpr std::string_view kHotAlloc = "hotpath.alloc";
constexpr std::string_view kHotGrowth = "hotpath.container-growth";
constexpr std::string_view kHotFileMember = "hotpath.hot-file-member";
constexpr std::string_view kHdrPragmaOnce = "header.pragma-once";
constexpr std::string_view kHdrUsingNamespace = "header.using-namespace";
constexpr std::string_view kHdrDirectInclude = "header.direct-include";
constexpr std::string_view kObsPodRecord = "obs.pod-record";
constexpr std::string_view kSimShardRace = "sim.shard-race";
constexpr std::string_view kCoreArenaLifetime = "core.arena-lifetime";
constexpr std::string_view kSimFloatOrder = "sim.float-order";
constexpr std::string_view kArchLayering = "arch.layering";
constexpr std::string_view kMetaSuppression = "meta.suppression";

const std::vector<RuleInfo> kCatalogue = {
    {kDetRand,
     "rand()/srand()/random_device and friends banned; use hermes::sim::Rng streams"},
    {kDetClock,
     "wall clocks (system/steady/high_resolution_clock, time()) banned; use "
     "sim::Simulator::now() / SimTime"},
    {kDetUnorderedIter,
     "range-for over a std::unordered_* container feeds hash order into results; "
     "iterate a sorted view instead"},
    {kHotAlloc,
     "HERMES_HOT regions must not heap-allocate (new, make_shared/make_unique, "
     "std::function)"},
    {kHotGrowth,
     "container growth in a HERMES_HOT region needs a hermeslint:reserve-audited(<why>) "
     "annotation"},
    {kHotFileMember,
     "files containing HERMES_HOT regions must not declare std::deque or std::function "
     "members; use PacketRing / SoA rings and sim::InlineCallable (or annotate cold-path "
     "state with hermeslint:allow and a reason)"},
    {kHdrPragmaOnce, "headers must open with #pragma once"},
    {kHdrUsingNamespace, "headers must not contain using-namespace directives"},
    {kHdrDirectInclude,
     "curated std:: symbols and indexed hermes namespace symbols require a direct "
     "#include, not a transitive one"},
    {kObsPodRecord,
     "HERMES_POD_RECORD structs are memcpy'd into the flight-recorder ring and dumped "
     "raw; heap-owning members (std::string, containers, smart pointers) are banned"},
    {kSimShardRace,
     "HERMES_SHARDED barrier code must not touch another shard's state: Port/Host "
     "pointer dereferences (including escaped aliases) and subscripts of "
     "HERMES_SHARD_OWNED state without shard provenance race the owning shard's event "
     "stream"},
    {kCoreArenaLifetime,
     "an ArenaHandle (and any Packet reference derived from it) is dead once the arena "
     "frees the slot or resets; later uses read recycled bytes, and handles cached "
     "across a barrier round outlive their slot"},
    {kSimFloatOrder,
     "floating-point accumulation over unordered-container iteration sums in hash "
     "order; iterate a sorted view or accumulate integers"},
    {kArchLayering,
     "module includes must respect the layering DAG (sim/obs at the bottom, then net, "
     "lb, core/transport/faults, stats/workload, harness, bench/tools); every edge "
     "points strictly down-rank"},
    {kMetaSuppression,
     "allow directives must name known rules (once each per line), carry a written "
     "reason, and any expires(YYYY-MM-DD) clause must be well-formed and in the future"},
};

/// Wall-entropy free functions (determinism.rand).
constexpr std::string_view kRandCalls[] = {"rand", "srand", "rand_r", "drand48", "lrand48"};

/// Wall-clock type names, any qualification (determinism.clock).
constexpr std::string_view kClockIdents[] = {"system_clock", "steady_clock",
                                             "high_resolution_clock"};

/// Wall-clock free functions (determinism.clock).
constexpr std::string_view kClockCalls[] = {"time", "clock", "gettimeofday"};

/// Unordered container type names whose variables get tracked.
constexpr std::string_view kUnorderedTypes[] = {"unordered_map", "unordered_multimap",
                                                "unordered_set", "unordered_multiset"};

/// Container-growth methods that can allocate (hotpath.container-growth).
constexpr std::string_view kGrowthCalls[] = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace",   "insert",       "resize",     "push",
};

/// Curated symbol -> required direct #include (header.direct-include).
/// Deliberately small: the containers, smart pointers, std::function and
/// fixed-width ints whose transitive availability varies across libstdc++
/// versions. Matched as `std::<symbol>` with identifier boundaries.
struct SymbolHeader {
  std::string_view symbol;
  std::string_view header;
};
constexpr SymbolHeader kSymbolHeaders[] = {
    {"vector", "vector"},
    {"deque", "deque"},
    {"map", "map"},
    {"multimap", "map"},
    {"set", "set"},
    {"multiset", "set"},
    {"unordered_map", "unordered_map"},
    {"unordered_multimap", "unordered_map"},
    {"unordered_set", "unordered_set"},
    {"unordered_multiset", "unordered_set"},
    {"array", "array"},
    {"optional", "optional"},
    {"variant", "variant"},
    {"span", "span"},
    {"string", "string"},
    {"string_view", "string_view"},
    {"function", "functional"},
    {"unique_ptr", "memory"},
    {"shared_ptr", "memory"},
    {"weak_ptr", "memory"},
    {"make_unique", "memory"},
    {"make_shared", "memory"},
    {"uint8_t", "cstdint"},
    {"uint16_t", "cstdint"},
    {"uint32_t", "cstdint"},
    {"uint64_t", "cstdint"},
    {"int8_t", "cstdint"},
    {"int16_t", "cstdint"},
    {"int32_t", "cstdint"},
    {"int64_t", "cstdint"},
    {"size_t", "cstddef"},
    {"byte", "cstddef"},
};

/// Namespaces whose exported symbols are collected into the computed
/// cross-TU symbol index (header.direct-include). The `parent` is the
/// enclosing namespace a fully-qualified use spells before the tail
/// (`hermes::obs::X`, `faults::fuzz::Y`): any other scope with the same
/// tail name is not ours.
struct NsScope {
  std::string_view tail;
  std::string_view parent;
};
constexpr NsScope kIndexedNs[] = {
    {"obs", "hermes"},
    {"fuzz", "faults"},
    {"lint", "hermes"},
};

/// Member types banned inside HERMES_POD_RECORD structs (obs.pod-record):
/// anything that owns heap memory or is not trivially copyable. Records
/// are written to the ring with operator= on a raw 64-byte struct and
/// fwrite'n to disk, so a heap-owning member is silent corruption.
constexpr std::string_view kHeapOwningTypes[] = {
    "string",        "vector",        "deque",         "list",
    "forward_list",  "map",           "multimap",      "set",
    "multiset",      "unordered_map", "unordered_multimap",
    "unordered_set", "unordered_multiset",
    "function",      "unique_ptr",    "shared_ptr",    "weak_ptr",
    "any",
};

/// Keywords after which `ident(` is a call, not a declaration `Type ident(...)`.
bool is_call_context_keyword(std::string_view tok) {
  return tok == "return" || tok == "if" || tok == "while" || tok == "for" || tok == "do" ||
         tok == "else" || tok == "switch" || tok == "case" || tok == "co_return" ||
         tok == "co_await" || tok == "co_yield";
}

/// Reads the identifier ending at text[end) going backwards; empty if none.
std::string_view ident_before(std::string_view text, std::size_t end) {
  std::size_t b = end;
  while (b > 0 && is_ident_char(text[b - 1])) --b;
  return text.substr(b, end - b);
}

/// Classifies the token context immediately before position `pos`, skipping
/// whitespace. Used to decide whether `ident(` at pos is a *free* call.
enum class Qualifier { kNone, kStd, kOtherScope, kMember, kDeclaration };

Qualifier qualifier_before(std::string_view code, std::size_t pos) {
  std::size_t p = pos;
  while (p > 0 && std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) --p;
  if (p == 0) return Qualifier::kNone;
  const char prev = code[p - 1];
  if (prev == '.') return Qualifier::kMember;
  if (prev == '>' && p >= 2 && code[p - 2] == '-') return Qualifier::kMember;
  if (prev == ':' && p >= 2 && code[p - 2] == ':') {
    const std::string_view scope = ident_before(code, p - 2);
    return scope == "std" ? Qualifier::kStd : Qualifier::kOtherScope;
  }
  if (is_ident_char(prev)) {
    const std::string_view tok = ident_before(code, p);
    return is_call_context_keyword(tok) ? Qualifier::kNone : Qualifier::kDeclaration;
  }
  return Qualifier::kNone;
}

/// True if, skipping whitespace, code[pos..] starts with `(`.
bool followed_by_call(std::string_view code, std::size_t pos) {
  while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos])) != 0) ++pos;
  return pos < code.size() && code[pos] == '(';
}

/// True if `code[pos..]` (the text right after a template type name) reads
/// like a member/alias *declaration*: a balanced `<...>` argument list,
/// optional `*`/`&`/`const`, then either an identifier terminated by `;`,
/// `=`, or `{`, or directly `;` (the target of a using-alias). Function
/// parameters (`std::function<...> cb)`) and plain uses fall through.
bool member_style_decl_after(std::string_view code, std::size_t pos) {
  auto skip_ws = [&](std::size_t p) {
    while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p])) != 0) ++p;
    return p;
  };
  std::size_t p = skip_ws(pos);
  if (p >= code.size() || code[p] != '<') return false;
  int depth = 0;
  for (; p < code.size(); ++p) {
    if (code[p] == '<') ++depth;
    if (code[p] == '>' && --depth == 0) break;
  }
  if (depth != 0) return false;  // template args continue on the next line
  p = skip_ws(p + 1);
  while (p < code.size() && (code[p] == '*' || code[p] == '&')) p = skip_ws(p + 1);
  if (p < code.size() && code[p] == ';') return true;  // using X = std::function<...>;
  const std::size_t ident_begin = p;
  while (p < code.size() && is_ident_char(code[p])) ++p;
  if (p == ident_begin) return false;
  p = skip_ws(p);
  return p < code.size() && (code[p] == ';' || code[p] == '=' || code[p] == '{');
}

// ---------------------------------------------------------------------------
// Suppression / annotation directives parsed out of comments.
struct Directives {
  std::map<std::size_t, std::set<std::string, std::less<>>> allow;  ///< line -> rules
  std::map<std::size_t, std::string> allow_reason;                  ///< line -> reason
  std::map<std::size_t, std::string> allow_expires;                 ///< line -> ISO date
  std::set<std::size_t> reserve_audited;                            ///< audited lines
};

/// A directive written on its own comment line shields the next line that
/// carries code; one written beside code shields that same line.
std::size_t directive_target(const std::vector<Line>& lines, std::size_t i) {
  if (!is_blank(lines[i].code)) return i;
  for (std::size_t j = i + 1; j < lines.size(); ++j) {
    if (!is_blank(lines[j].code)) return j;
  }
  return i;
}

/// True when `date` is a well-formed YYYY-MM-DD.
bool is_iso_date(std::string_view date) {
  if (date.size() != 10 || date[4] != '-' || date[7] != '-') return false;
  for (const std::size_t i : {0U, 1U, 2U, 3U, 5U, 6U, 8U, 9U}) {
    if (std::isdigit(static_cast<unsigned char>(date[i])) == 0) return false;
  }
  return true;
}

Directives parse_directives(const std::string& path, const std::vector<Line>& lines,
                            std::string_view today, std::vector<Finding>& meta) {
  Directives d;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& c = lines[i].comment;
    for (std::size_t at = c.find("hermeslint:"); at != std::string::npos;
         at = c.find("hermeslint:", at + 1)) {
      const std::string_view rest = std::string_view{c}.substr(at + 11);
      // Prose may mention the tool name followed by a colon; only an
      // identifier glued to the colon reads as a directive.
      if (rest.empty() || !is_ident_char(rest.front())) continue;
      const int line_no = static_cast<int>(i + 1);
      if (rest.rfind("allow(", 0) == 0) {
        const std::size_t close = rest.find(')');
        if (close == std::string_view::npos) {
          meta.push_back({path, line_no, std::string(kMetaSuppression),
                          "malformed allow directive: missing ')'", std::string(trim(c))});
          continue;
        }
        std::string_view list = rest.substr(6, close - 6);
        const std::string reason{trim(rest.substr(close + 1))};
        const std::size_t target = directive_target(lines, i);
        bool any = false;
        bool reported = false;
        while (!list.empty()) {
          const std::size_t comma = list.find(',');
          const std::string_view rule =
              trim(comma == std::string_view::npos ? list : list.substr(0, comma));
          list = comma == std::string_view::npos ? std::string_view{} : list.substr(comma + 1);
          if (rule.empty()) continue;
          if (!is_known_rule(rule)) {
            meta.push_back({path, line_no, std::string(kMetaSuppression),
                            "allow names unknown rule '" + std::string(rule) + "'",
                            std::string(trim(c))});
            reported = true;
            continue;
          }
          if (!d.allow[target].insert(std::string(rule)).second) {
            meta.push_back({path, line_no, std::string(kMetaSuppression),
                            "duplicate allow of rule '" + std::string(rule) +
                                "' for the same line; one directive per rule per line",
                            std::string(trim(c))});
            reported = true;
            continue;
          }
          any = true;
        }
        if (!any) {
          if (!reported) {
            meta.push_back({path, line_no, std::string(kMetaSuppression),
                            "allow directive names no known rule", std::string(trim(c))});
          }
        } else if (reason.empty()) {
          meta.push_back({path, line_no, std::string(kMetaSuppression),
                          "suppression requires a written reason after the ')'",
                          std::string(trim(c))});
        } else {
          d.allow_reason[target] = reason;
          // Optional expiry clause inside the reason: expires(YYYY-MM-DD).
          const std::size_t exp = reason.find("expires(");
          if (exp != std::string::npos) {
            const std::size_t eclose = reason.find(')', exp);
            const std::string_view date =
                eclose == std::string::npos
                    ? std::string_view{}
                    : trim(std::string_view{reason}.substr(exp + 8, eclose - exp - 8));
            if (!is_iso_date(date)) {
              meta.push_back({path, line_no, std::string(kMetaSuppression),
                              "malformed expires clause: want expires(YYYY-MM-DD)",
                              std::string(trim(c))});
            } else {
              d.allow_expires[target] = std::string(date);
              if (!today.empty() && today > date) {
                meta.push_back({path, line_no, std::string(kMetaSuppression),
                                "suppression expired on " + std::string(date) +
                                    "; re-audit the site and renew or fix it",
                                std::string(trim(c))});
              }
            }
          }
        }
      } else if (rest.rfind("reserve-audited(", 0) == 0) {
        const std::size_t close = rest.find(')');
        if (close == std::string_view::npos || is_blank(rest.substr(16, close - 16))) {
          meta.push_back({path, line_no, std::string(kMetaSuppression),
                          "reserve-audited needs a capacity argument: "
                          "hermeslint:reserve-audited(<why growth cannot recur>)",
                          std::string(trim(c))});
          continue;
        }
        d.reserve_audited.insert(directive_target(lines, i));
      } else {
        meta.push_back({path, line_no, std::string(kMetaSuppression),
                        "unrecognized hermeslint directive (want allow(...) or "
                        "reserve-audited(...))",
                        std::string(trim(c))});
      }
    }
  }
  return d;
}

/// Marks the lines covered by `// <tag>` comments: a tag before any code
/// covers the whole file (when `file_scope` is allowed); a tag elsewhere
/// covers the next brace block (i.e. the function or struct that follows
/// it). Only a comment that *starts* with the tag counts — prose that
/// merely mentions the marker is not a tag.
std::vector<char> tag_mask(const std::vector<Line>& lines, std::string_view tag,
                           bool file_scope) {
  std::vector<char> hot(lines.size(), 0);
  bool code_seen = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view ctext = trim(lines[i].comment);
    const bool tagged = ctext.rfind(tag, 0) == 0 &&
                        (ctext.size() == tag.size() || !is_ident_char(ctext[tag.size()]));
    if (tagged && file_scope && !code_seen && is_blank(lines[i].code)) {
      std::fill(hot.begin(), hot.end(), 1);
      return hot;
    }
    if (tagged) {
      // Cover from the tag to the close of the next brace block.
      int depth = 0;
      bool opened = false;
      for (std::size_t j = i; j < lines.size(); ++j) {
        hot[j] = 1;
        for (const char ch : lines[j].code) {
          if (ch == '{') {
            ++depth;
            opened = true;
          } else if (ch == '}') {
            --depth;
          }
        }
        if (opened && depth <= 0) break;
      }
    }
    if (!is_blank(lines[i].code)) code_seen = true;
  }
  return hot;
}

/// Joins up to `max_lines` of code starting at line i (newline -> space) so
/// declarations and for-headers that wrap can be matched as one string.
std::string joined_code(const std::vector<Line>& lines, std::size_t i, std::size_t max_lines) {
  std::string s;
  for (std::size_t j = i; j < lines.size() && j < i + max_lines; ++j) {
    s += lines[j].code;
    s += ' ';
  }
  return s;
}

/// Advances past a balanced <...> starting with the '<' at `open`; returns
/// the index one past the matching '>', or npos on imbalance.
std::size_t skip_angles(std::string_view s, std::size_t open) {
  int depth = 0;
  for (std::size_t p = open; p < s.size(); ++p) {
    const char ch = s[p];
    if (ch == '<') {
      ++depth;
    } else if (ch == '>') {
      if (p > 0 && s[p - 1] == '-') continue;  // ->
      if (--depth == 0) return p + 1;
    }
  }
  return std::string_view::npos;
}

/// Extracts the identifier a range-for iterates over: the last identifier of
/// the range expression, with one trailing (...) call and [...] index
/// stripped (`stacks_[i]->senders_`, `active_flows()`, `*m` all resolve).
std::string range_expr_name(std::string_view expr) {
  std::string_view e = trim(expr);
  // Strip one trailing balanced () or [] group.
  while (!e.empty() && (e.back() == ')' || e.back() == ']')) {
    const char close = e.back();
    const char open = close == ')' ? '(' : '[';
    int depth = 0;
    std::size_t p = e.size();
    while (p > 0) {
      --p;
      if (e[p] == close) ++depth;
      if (e[p] == open && --depth == 0) break;
    }
    if (depth != 0) break;
    e = trim(e.substr(0, p));
  }
  if (e.empty()) return {};
  std::size_t end = e.size();
  while (end > 0 && !is_ident_char(e[end - 1])) --end;
  std::size_t b = end;
  while (b > 0 && is_ident_char(e[b - 1])) --b;
  return std::string(e.substr(b, end - b));
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Names of variables lexically declared as `Port*` / `Host*` (any
/// qualification; `net::Port* p`, `Port *p`, `Port* const p`) anywhere in
/// the file. sim.shard-race flags dereferences of these names (and their
/// escaped aliases) inside HERMES_SHARDED regions: barrier-time code must
/// not reach into another shard's switches or hosts directly.
std::vector<std::string> boundary_pointer_names(const std::vector<Line>& lines) {
  std::vector<std::string> names;
  for (const Line& line : lines) {
    const std::string& code = line.code;
    for (const std::string_view type : {std::string_view{"Port"}, std::string_view{"Host"}}) {
      for (std::size_t pos = find_identifier(code, type); pos != std::string_view::npos;
           pos = find_identifier(code, type, pos + 1)) {
        std::size_t p = pos + type.size();
        while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p])) != 0) ++p;
        if (p >= code.size() || code[p] != '*') continue;
        ++p;
        while (p < code.size() && (std::isspace(static_cast<unsigned char>(code[p])) != 0 ||
                                   code[p] == '*')) {
          ++p;
        }
        if (matches_identifier_at(code, p, "const")) {
          p += 5;
          while (p < code.size() && std::isspace(static_cast<unsigned char>(code[p])) != 0) ++p;
        }
        std::size_t end = p;
        while (end < code.size() && is_ident_char(code[end])) ++end;
        if (end > p) names.emplace_back(code.substr(p, end - p));
      }
    }
  }
  return names;
}

/// The direct #include targets of a file with the 0-based line of each.
/// Parsed from the raw line: the lexer strips string literals out of
/// `code`, which would erase the path of quoted ("hermes/...") includes.
std::vector<std::pair<std::string, std::size_t>> include_targets(const std::vector<Line>& lines) {
  std::vector<std::pair<std::string, std::size_t>> out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view code = trim(lines[i].raw);
    if (code.rfind("#", 0) != 0) continue;
    std::string_view rest = trim(code.substr(1));
    if (rest.rfind("include", 0) != 0) continue;
    rest = trim(rest.substr(7));
    if (rest.size() < 2) continue;
    const char close = rest.front() == '<' ? '>' : (rest.front() == '"' ? '"' : '\0');
    if (close == '\0') continue;
    const std::size_t end = rest.find(close, 1);
    if (end != std::string_view::npos) out.emplace_back(std::string(rest.substr(1, end - 1)), i);
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalogue() { return kCatalogue; }

bool is_known_rule(std::string_view id) {
  return std::any_of(kCatalogue.begin(), kCatalogue.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

std::uint64_t rules_version() {
  std::uint64_t h = fnv1a("hermeslint-rules");
  for (const RuleInfo& r : kCatalogue) {
    h = fnv1a(r.id, h);
    h = fnv1a("\x1f", h);
    h = fnv1a(r.summary, h);
    h = fnv1a("\x1e", h);
  }
  return h;
}

void Linter::add_file(std::string path, std::string source) {
  File f;
  f.path = std::move(path);
  f.lines = Lexer::scan(source);
  f.summary = summarize(f.path, f.lines);
  files_.push_back(std::move(f));
}

void Linter::set_today(std::string iso_date) { today_ = std::move(iso_date); }

FileSummary Linter::summarize(const std::string& path, const std::vector<Line>& lines) {
  FileSummary s;
  s.path = path;
  s.module = module_of_path(path);
  s.is_header = ends_with(path, ".hpp") || ends_with(path, ".h");
  for (const auto& inc : include_targets(lines)) s.includes.push_back(inc.first);

  // Unordered-container variable names (cross-file: iteration over them is
  // flagged wherever it happens, not just in the declaring file).
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const std::string_view type : kUnorderedTypes) {
      for (std::size_t pos = find_identifier(lines[i].code, type); pos != std::string_view::npos;
           pos = find_identifier(lines[i].code, type, pos + 1)) {
        // Join ahead so multi-line template argument lists still parse.
        const std::string decl = joined_code(lines, i, 6);
        const std::size_t at = find_identifier(decl, type);
        if (at == std::string_view::npos) continue;
        std::size_t open = at + type.size();
        while (open < decl.size() && std::isspace(static_cast<unsigned char>(decl[open])) != 0)
          ++open;
        if (open >= decl.size() || decl[open] != '<') continue;
        std::size_t after = skip_angles(decl, open);
        if (after == std::string_view::npos) continue;
        // Skip refs/pointers/cv noise between the type and the name.
        while (after < decl.size()) {
          const char ch = decl[after];
          if (std::isspace(static_cast<unsigned char>(ch)) != 0 || ch == '&' || ch == '*') {
            ++after;
          } else if (matches_identifier_at(decl, after, "const")) {
            after += 5;
          } else {
            break;
          }
        }
        std::size_t end = after;
        while (end < decl.size() && is_ident_char(decl[end])) ++end;
        if (end > after) {
          s.unordered_names.emplace_back(decl.substr(after, end - after));
        }
        break;  // one declaration per matched type occurrence is enough
      }
    }
  }

  // HERMES_SHARD_OWNED annotations: the tagged member declaration names a
  // per-shard container whose subscripts need shard provenance.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view ctext = trim(lines[i].comment);
    constexpr std::string_view kTag = "HERMES_SHARD_OWNED";
    const bool tagged = ctext.rfind(kTag, 0) == 0 &&
                        (ctext.size() == kTag.size() || !is_ident_char(ctext[kTag.size()]));
    if (!tagged) continue;
    const std::size_t target = directive_target(lines, i);
    const std::string decl = joined_code(lines, target, 4);
    const std::size_t semi = decl.find(';');
    if (semi == std::string::npos) continue;
    std::size_t e = semi;
    while (e > 0 && !is_ident_char(decl[e - 1])) --e;
    const std::string_view name = ident_before(decl, e);
    if (!name.empty() && std::isdigit(static_cast<unsigned char>(name.front())) == 0) {
      s.shard_owned.emplace_back(name);
    }
  }

  s.symbols = exported_symbols(path, lines);
  return s;
}

GlobalContext Linter::build_context(const std::vector<const FileSummary*>& summaries,
                                    std::string today) {
  GlobalContext ctx;
  ctx.today = std::move(today);
  // Deterministic regardless of discovery order: fold by sorted path.
  std::vector<const FileSummary*> sorted = summaries;
  std::sort(sorted.begin(), sorted.end(),
            [](const FileSummary* a, const FileSummary* b) { return a->path < b->path; });
  std::set<std::string> unordered;
  std::set<std::string> owned;
  for (const FileSummary* s : sorted) {
    unordered.insert(s->unordered_names.begin(), s->unordered_names.end());
    owned.insert(s->shard_owned.begin(), s->shard_owned.end());
    if (s->symbols.empty()) continue;
    const std::string header = include_path_of(s->path);
    if (header.empty()) continue;
    for (const SymbolDef& d : s->symbols) {
      // First writer (lexicographically smallest path) wins on conflicts.
      ctx.symbol_headers.emplace(d.ns + "::" + d.name, header);
    }
  }
  ctx.unordered_names.assign(unordered.begin(), unordered.end());
  ctx.shard_owned.assign(owned.begin(), owned.end());
  return ctx;
}

LintResult Linter::run() const {
  std::vector<const FileSummary*> sums;
  sums.reserve(files_.size());
  for (const File& f : files_) sums.push_back(&f.summary);
  const GlobalContext ctx = build_context(sums, today_);
  LintResult out;
  out.files_scanned = static_cast<int>(files_.size());
  for (const File& f : files_) {
    lint_file(f.path, f.lines, f.summary, ctx, out);
  }
  sort_result(out);
  return out;
}

void sort_result(LintResult& out) {
  std::sort(out.findings.begin(), out.findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  std::sort(out.suppressed.begin(), out.suppressed.end(),
            [](const Suppression& a, const Suppression& b) {
              return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
            });
}

void Linter::lint_file(const std::string& path, const std::vector<Line>& lines,
                       const FileSummary& summary, const GlobalContext& ctx, LintResult& out) {
  std::vector<Finding> meta;
  const Directives dir = parse_directives(path, lines, ctx.today, meta);
  for (Finding& m : meta) out.findings.push_back(std::move(m));
  const std::vector<char> hot = tag_mask(lines, "HERMES_HOT", /*file_scope=*/true);
  const std::vector<char> pod = tag_mask(lines, "HERMES_POD_RECORD", /*file_scope=*/false);
  const std::vector<char> sharded = tag_mask(lines, "HERMES_SHARDED", /*file_scope=*/true);
  const bool hot_file = std::any_of(hot.begin(), hot.end(), [](char h) { return h != 0; });
  const bool sharded_any =
      std::any_of(sharded.begin(), sharded.end(), [](char s) { return s != 0; });
  const std::vector<std::string> shard_ptrs =
      sharded_any ? boundary_pointer_names(lines) : std::vector<std::string>{};

  // Routes a raw finding through the suppression table.
  auto emit = [&](std::string_view rule, std::size_t line0, std::string message) {
    const auto it = dir.allow.find(line0);
    if (it != dir.allow.end() && it->second.find(rule) != it->second.end()) {
      const auto reason = dir.allow_reason.find(line0);
      const auto expires = dir.allow_expires.find(line0);
      out.suppressed.push_back({path, static_cast<int>(line0 + 1), std::string(rule),
                                reason != dir.allow_reason.end() ? reason->second : "",
                                expires != dir.allow_expires.end() ? expires->second : ""});
      return;
    }
    out.findings.push_back({path, static_cast<int>(line0 + 1), std::string(rule),
                            std::move(message),
                            line0 < lines.size() ? std::string(trim(lines[line0].raw)) : ""});
  };

  const std::vector<std::pair<std::string, std::size_t>> includes_at = include_targets(lines);
  std::set<std::string, std::less<>> includes;
  for (const auto& [inc, line0] : includes_at) includes.insert(inc);

  // ---- arch.layering ----
  // Cross-TU: the file's module may only include hermes headers of
  // strictly lower rank (or its own module). Computed from the include
  // graph, not a hand-curated map.
  const int my_rank = layer_rank(summary.module);
  if (!summary.module.empty() && my_rank >= 0) {
    for (const auto& [inc, line0] : includes_at) {
      const std::string target = module_of_include(inc);
      if (target.empty() || target == summary.module) continue;
      const int target_rank = layer_rank(target);
      if (target_rank < 0 || target_rank < my_rank) continue;
      std::string msg = "layering violation: module '" + summary.module + "' (rank " +
                        std::to_string(my_rank) + ") must not include \"" + inc +
                        "\" (module '" + target + "', rank " + std::to_string(target_rank) +
                        "); edges point strictly down-rank";
      const std::vector<std::string> legal = legal_path(target, summary.module);
      if (!legal.empty()) {
        msg += " — the legal direction is ";
        for (std::size_t k = 0; k < legal.size(); ++k) {
          if (k > 0) msg += " -> ";
          msg += legal[k];
        }
        msg += "; invert the dependency or move the shared piece below rank " +
               std::to_string(my_rank);
      } else {
        msg += " — same-rank modules are siblings; factor the shared piece into a lower "
               "layer instead of coupling them";
      }
      emit(kArchLayering, line0, std::move(msg));
    }
  }

  std::set<std::string, std::less<>> reported_symbols;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (is_blank(code)) continue;

    // ---- determinism.rand ----
    for (const std::string_view fn : kRandCalls) {
      for (std::size_t pos = find_identifier(code, fn); pos != std::string_view::npos;
           pos = find_identifier(code, fn, pos + 1)) {
        const Qualifier q = qualifier_before(code, pos);
        if ((q == Qualifier::kNone || q == Qualifier::kStd) && followed_by_call(code, pos + fn.size())) {
          emit(kDetRand, i,
               std::string(fn) + "() draws from global wall entropy; use a "
               "hermes::sim::Rng stream (sim::Simulator::rng_stream)");
        }
      }
    }
    if (find_identifier(code, "random_device") != std::string_view::npos) {
      emit(kDetRand, i,
           "std::random_device is nondeterministic; seed a hermes::sim::Rng stream instead");
    }

    // ---- determinism.clock ----
    for (const std::string_view id : kClockIdents) {
      if (find_identifier(code, id) != std::string_view::npos) {
        emit(kDetClock, i,
             "std::chrono::" + std::string(id) + " reads the wall clock; simulation "
             "code must use sim::Simulator::now() / SimTime");
      }
    }
    for (const std::string_view fn : kClockCalls) {
      for (std::size_t pos = find_identifier(code, fn); pos != std::string_view::npos;
           pos = find_identifier(code, fn, pos + 1)) {
        const Qualifier q = qualifier_before(code, pos);
        if ((q == Qualifier::kNone || q == Qualifier::kStd) && followed_by_call(code, pos + fn.size())) {
          emit(kDetClock, i,
               std::string(fn) + "() reads the wall clock; simulation code must use "
               "sim::Simulator::now() / SimTime");
        }
      }
    }

    // ---- determinism.unordered-iter ----
    for (std::size_t pos = find_identifier(code, "for"); pos != std::string_view::npos;
         pos = find_identifier(code, "for", pos + 1)) {
      std::size_t open = pos + 3;
      while (open < code.size() && std::isspace(static_cast<unsigned char>(code[open])) != 0)
        ++open;
      if (open >= code.size() || code[open] != '(') continue;
      // Join forward so wrapped for-headers parse; find the matching ')'.
      const std::string head = joined_code(lines, i, 8);
      const std::size_t fpos = head.find(code.substr(pos, open - pos + 1));
      if (fpos == std::string::npos) continue;
      const std::size_t hopen = head.find('(', fpos);
      int depth = 0;
      std::size_t hclose = std::string::npos;
      std::size_t colon = std::string::npos;
      bool classic = false;
      for (std::size_t p = hopen; p < head.size(); ++p) {
        const char ch = head[p];
        if (ch == '(' || ch == '[' || ch == '{') ++depth;
        if (ch == ')' || ch == ']' || ch == '}') {
          if (--depth == 0 && ch == ')') {
            hclose = p;
            break;
          }
        }
        if (depth == 1 && ch == ';') classic = true;
        if (depth == 1 && ch == ':' && colon == std::string::npos &&
            (p + 1 >= head.size() || head[p + 1] != ':') && (p == 0 || head[p - 1] != ':')) {
          colon = p;
        }
      }
      if (classic || colon == std::string::npos || hclose == std::string::npos) continue;
      const std::string name = range_expr_name(std::string_view(head).substr(colon + 1, hclose - colon - 1));
      if (!name.empty() &&
          std::find(ctx.unordered_names.begin(), ctx.unordered_names.end(), name) !=
              ctx.unordered_names.end()) {
        emit(kDetUnorderedIter, i,
             "range-for over unordered container '" + name +
                 "' leaks hash order; iterate sorted keys (or a sorted snapshot) "
                 "before feeding results");
      }
    }

    // ---- hotpath rules ----
    if (hot[i] != 0) {
      for (std::size_t pos = find_identifier(code, "new"); pos != std::string_view::npos;
           pos = find_identifier(code, "new", pos + 1)) {
        emit(kHotAlloc, i, "operator new in a HERMES_HOT region; use pooled or inline storage");
      }
      for (const std::string_view fn : {std::string_view{"make_shared"}, std::string_view{"make_unique"}}) {
        if (find_identifier(code, fn) != std::string_view::npos) {
          emit(kHotAlloc, i,
               "std::" + std::string(fn) + " allocates; HERMES_HOT code must use pooled or "
               "inline storage");
        }
      }
      for (std::size_t pos = find_identifier(code, "function"); pos != std::string_view::npos;
           pos = find_identifier(code, "function", pos + 1)) {
        if (qualifier_before(code, pos) == Qualifier::kStd) {
          emit(kHotAlloc, i,
               "std::function may heap-allocate its callable; use sim::InlineFunction "
               "in HERMES_HOT code");
        }
      }
      for (const std::string_view fn : kGrowthCalls) {
        for (std::size_t pos = find_identifier(code, fn); pos != std::string_view::npos;
             pos = find_identifier(code, fn, pos + 1)) {
          if (qualifier_before(code, pos) != Qualifier::kMember ||
              !followed_by_call(code, pos + fn.size())) {
            continue;
          }
          if (dir.reserve_audited.find(i) != dir.reserve_audited.end()) continue;
          emit(kHotGrowth, i,
               "." + std::string(fn) + "() may grow its container on the hot path; "
               "annotate the audited capacity with hermeslint:reserve-audited(<why>)");
        }
      }
    }

    // ---- hotpath.hot-file-member ----
    // A file with HERMES_HOT regions keeps its queues and hooks on the
    // fast path even when the declaration itself sits in cold code; flag
    // member/alias declarations of the two heap-backed types the arena
    // refactor banished. std::function on an already-hot line is
    // kHotAlloc's finding, not ours.
    if (hot_file) {
      for (const std::string_view type :
           {std::string_view{"deque"}, std::string_view{"function"}}) {
        if (type == "function" && hot[i] != 0) continue;
        for (std::size_t pos = find_identifier(code, type); pos != std::string_view::npos;
             pos = find_identifier(code, type, pos + 1)) {
          if (qualifier_before(code, pos) != Qualifier::kStd) continue;
          if (!member_style_decl_after(code, pos + type.size())) continue;
          emit(kHotFileMember, i,
               "std::" + std::string(type) + " member in a HERMES_HOT file; use " +
                   (type == "deque" ? "a PacketRing/SoA ring (contiguous, index-based)"
                                    : "sim::InlineCallable (fixed inline storage)") +
                   " or annotate genuinely cold state with hermeslint:allow(<rule>) <why>");
        }
      }
    }

    // ---- header.using-namespace ----
    if (summary.is_header) {
      for (std::size_t pos = find_identifier(code, "using"); pos != std::string_view::npos;
           pos = find_identifier(code, "using", pos + 1)) {
        std::size_t next = pos + 5;
        while (next < code.size() && std::isspace(static_cast<unsigned char>(code[next])) != 0)
          ++next;
        if (matches_identifier_at(code, next, "namespace")) {
          emit(kHdrUsingNamespace, i,
               "using-namespace in a header injects names into every includer");
        }
      }
    }

    // ---- obs.pod-record ----
    if (pod[i] != 0) {
      for (std::size_t pos = code.find("std::"); pos != std::string::npos;
           pos = code.find("std::", pos + 1)) {
        if (pos > 0 && (is_ident_char(code[pos - 1]) || code[pos - 1] == ':')) continue;
        for (const std::string_view banned : kHeapOwningTypes) {
          if (!matches_identifier_at(code, pos + 5, banned)) continue;
          emit(kObsPodRecord, i,
               "std::" + std::string(banned) + " in a HERMES_POD_RECORD struct owns heap "
               "memory; trace records are memcpy'd and dumped raw, so members must be "
               "fixed-size trivially-copyable scalars (intern strings via obs::StringTable)");
        }
      }
    }

    // ---- header.direct-include (std:: symbols) ----
    for (std::size_t pos = code.find("std::"); pos != std::string::npos;
         pos = code.find("std::", pos + 1)) {
      if (pos > 0 && (is_ident_char(code[pos - 1]) || code[pos - 1] == ':')) continue;
      for (const SymbolHeader& sh : kSymbolHeaders) {
        if (!matches_identifier_at(code, pos + 5, sh.symbol)) continue;
        if (includes.find(sh.header) != includes.end()) continue;
        const std::string key = std::string(sh.symbol);
        if (!reported_symbols.insert(key).second) continue;
        emit(kHdrDirectInclude, i,
             "std::" + key + " needs a direct #include <" + std::string(sh.header) +
                 "> (transitive includes are not guaranteed)");
      }
    }

    // ---- header.direct-include (indexed hermes namespaces) ----
    // The symbol index is computed from the lexed tree (exported_symbols
    // over every header), not hand-curated: any namespace-scope symbol of
    // an indexed namespace resolves to the header that defines it.
    for (const NsScope& ns : kIndexedNs) {
      const std::string pat = std::string(ns.tail) + "::";
      for (std::size_t pos = code.find(pat); pos != std::string::npos;
           pos = code.find(pat, pos + 1)) {
        if (pos > 0) {
          const char prev = code[pos - 1];
          if (is_ident_char(prev)) continue;
          if (prev == ':') {
            // Accept only <parent>::<tail>:: — some_other_ns::obs:: is not ours.
            if (pos < 2 || code[pos - 2] != ':' || ident_before(code, pos - 2) != ns.parent) {
              continue;
            }
          }
        }
        std::size_t b = pos + pat.size();
        std::size_t e = b;
        while (e < code.size() && is_ident_char(code[e])) ++e;
        if (e == b) continue;
        const std::string sym = code.substr(b, e - b);
        const auto it = ctx.symbol_headers.find(std::string(ns.tail) + "::" + sym);
        if (it == ctx.symbol_headers.end()) continue;
        if (includes.find(it->second) != includes.end()) continue;
        if (include_path_of(path) == it->second) continue;  // the defining header itself
        if (!reported_symbols.insert(std::string(ns.tail) + "::" + sym).second) continue;
        emit(kHdrDirectInclude, i,
             std::string(ns.tail) + "::" + sym + " needs a direct #include \"" + it->second +
                 "\" (transitive includes are not guaranteed)");
      }
    }
  }

  // ---- header.pragma-once ----
  if (summary.is_header) {
    std::size_t first = lines.size();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!is_blank(lines[i].code)) {
        first = i;
        break;
      }
    }
    const std::string_view head = first < lines.size() ? trim(lines[first].code) : std::string_view{};
    if (head.rfind("#pragma", 0) != 0 || head.find("once") == std::string_view::npos) {
      emit(kHdrPragmaOnce, first < lines.size() ? first : 0,
           "header must start with #pragma once");
    }
  }

  // ---- dataflow rules: sim.shard-race / core.arena-lifetime /
  // ---- sim.float-order ----
  // One per-function token CFG serves all three analyses.
  const std::vector<Function> functions = extract_functions(lines);
  for (const Function& fn : functions) {
    check_arena_lifetime(fn, sharded, [&](int line0, const std::string& msg) {
      emit(kCoreArenaLifetime, static_cast<std::size_t>(line0), msg);
    });
    check_shard_indexing(fn, ctx.shard_owned, [&](int line0, const std::string& msg) {
      emit(kSimShardRace, static_cast<std::size_t>(line0), msg);
    });
    if (sharded_any) {
      check_shard_ptr_escape(fn, sharded, shard_ptrs, [&](int line0, const std::string& msg) {
        emit(kSimShardRace, static_cast<std::size_t>(line0), msg);
      });
    }
    check_float_order(fn, ctx.unordered_names, [&](int line0, const std::string& msg) {
      emit(kSimFloatOrder, static_cast<std::size_t>(line0), msg);
    });
  }
}

std::string to_json(const LintResult& r, const LintTiming* timing) {
  std::string s = "{\n  \"tool\": \"hermeslint\",\n  \"schema_version\": 2,\n";
  s += "  \"files_scanned\": " + std::to_string(r.files_scanned) + ",\n";
  s += "  \"clean\": " + std::string(r.findings.empty() ? "true" : "false") + ",\n";
  if (timing != nullptr) {
    s += "  \"timing\": {\"wall_ms\": " + std::to_string(timing->wall_ms) +
         ", \"files_reused\": " + std::to_string(timing->files_reused) +
         ", \"files_linted\": " + std::to_string(timing->files_linted) + "},\n";
  }
  s += "  \"findings\": [";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    s += i == 0 ? "\n" : ",\n";
    s += "    {\"file\": \"" + json_escape(f.file) + "\", \"line\": " + std::to_string(f.line) +
         ", \"rule\": \"" + json_escape(f.rule) + "\", \"message\": \"" + json_escape(f.message) +
         "\", \"snippet\": \"" + json_escape(f.snippet) + "\"}";
  }
  s += r.findings.empty() ? "],\n" : "\n  ],\n";
  s += "  \"suppressed\": [";
  for (std::size_t i = 0; i < r.suppressed.size(); ++i) {
    const Suppression& sp = r.suppressed[i];
    s += i == 0 ? "\n" : ",\n";
    s += "    {\"file\": \"" + json_escape(sp.file) + "\", \"line\": " + std::to_string(sp.line) +
         ", \"rule\": \"" + json_escape(sp.rule) + "\", \"reason\": \"" + json_escape(sp.reason) +
         "\", \"expires\": \"" + json_escape(sp.expires) + "\"}";
  }
  s += r.suppressed.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return s;
}

}  // namespace hermes::lint
