// hermeslint — project-specific static analysis for the Hermes tree.
//
// Enforces the invariants the compiler cannot see (DESIGN.md "Static
// analysis & invariants"): fixed-seed determinism, HERMES_HOT allocation
// freedom, header hygiene, the layering DAG, shard-race and
// arena-lifetime dataflow. Token/AST-lite pass; no libclang.
//
//   hermeslint [--root=DIR] [--json[=FILE]] [--sarif=FILE] [--cache=FILE]
//              [--threads=N] [--today=YYYY-MM-DD] [--list-rules]
//              [--suppressions] [paths...]
//
// Paths default to src bench tests examples tools; directories are walked
// recursively for .hpp/.h/.cpp/.cc files. Exit status: 0 clean, 1
// findings, 2 usage/IO.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "hermes/lint/driver.hpp"
#include "hermes/lint/linter.hpp"
#include "hermes/lint/sarif.hpp"

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  out << body;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  hermes::lint::DriveOptions opts;
  std::string json_path;
  std::string sarif_path;
  bool want_json = false;
  bool want_sarif = false;
  bool want_suppressions = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--root=", 0) == 0) {
      opts.root = a.substr(7);
    } else if (a == "--json") {
      want_json = true;
    } else if (a.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = a.substr(7);
    } else if (a.rfind("--sarif=", 0) == 0) {
      want_sarif = true;
      sarif_path = a.substr(8);
    } else if (a.rfind("--cache=", 0) == 0) {
      opts.cache_path = a.substr(8);
    } else if (a.rfind("--threads=", 0) == 0) {
      opts.threads = std::atoi(a.c_str() + 10);
      if (opts.threads < 1) opts.threads = 1;
    } else if (a.rfind("--today=", 0) == 0) {
      opts.today = a.substr(8);
    } else if (a == "--suppressions") {
      want_suppressions = true;
    } else if (a == "--list-rules") {
      for (const auto& r : hermes::lint::rule_catalogue()) {
        std::printf("%-28s %s\n", std::string(r.id).c_str(), std::string(r.summary).c_str());
      }
      return 0;
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: hermeslint [--root=DIR] [--json[=FILE]] [--sarif=FILE] [--cache=FILE]\n"
          "                  [--threads=N] [--today=YYYY-MM-DD] [--list-rules]\n"
          "                  [--suppressions] [paths...]\n");
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hermeslint: unknown option '%s'\n", a.c_str());
      return 2;
    } else {
      opts.paths.push_back(a);
    }
  }
  if (opts.paths.empty()) opts.paths = {"src", "bench", "tests", "examples", "tools"};

  const hermes::lint::DriveResult drive = hermes::lint::drive(opts);
  if (drive.io_error) {
    std::fprintf(stderr, "hermeslint: could not read one or more input files\n");
    return 2;
  }
  if (drive.result.files_scanned == 0) {
    std::fprintf(stderr, "hermeslint: no lintable files under the given paths\n");
    return 2;
  }
  const hermes::lint::LintResult& result = drive.result;

  // With --json (no =FILE) the JSON owns stdout; the report moves to
  // stderr so `hermeslint --json | jq` just works.
  std::FILE* report = want_json && json_path.empty() ? stderr : stdout;
  for (const auto& f : result.findings) {
    std::fprintf(report, "%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                 f.message.c_str());
    if (!f.snippet.empty()) std::fprintf(report, "    %s\n", f.snippet.c_str());
  }
  if (want_suppressions) {
    for (const auto& s : result.suppressed) {
      const std::string tail = s.expires.empty() ? "" : " (expires " + s.expires + ")";
      std::fprintf(report, "%s:%d: [suppressed %s] %s%s\n", s.file.c_str(), s.line,
                   s.rule.c_str(), s.reason.c_str(), tail.c_str());
    }
  }
  std::fprintf(report,
               "hermeslint: %zu finding(s), %zu suppression(s), %d file(s) scanned "
               "(%d linted, %d from cache, %.1f ms)\n",
               result.findings.size(), result.suppressed.size(), result.files_scanned,
               drive.timing.files_linted, drive.timing.files_reused, drive.timing.wall_ms);

  if (want_json) {
    const std::string json = hermes::lint::to_json(result, &drive.timing);
    if (json_path.empty()) {
      std::fputs(json.c_str(), stdout);
    } else if (!write_file(json_path, json)) {
      std::fprintf(stderr, "hermeslint: cannot write %s\n", json_path.c_str());
      return 2;
    }
  }
  if (want_sarif && !write_file(sarif_path, hermes::lint::to_sarif(result))) {
    std::fprintf(stderr, "hermeslint: cannot write %s\n", sarif_path.c_str());
    return 2;
  }
  return result.findings.empty() ? 0 : 1;
}
