// hermeslint — project-specific static analysis for the Hermes tree.
//
// Enforces the invariants the compiler cannot see (DESIGN.md "Static
// analysis & invariants"): fixed-seed determinism, HERMES_HOT allocation
// freedom, and header hygiene. Token/AST-lite pass; no libclang.
//
//   hermeslint [--root=DIR] [--json[=FILE]] [--list-rules] [paths...]
//
// Paths default to src bench tests; directories are walked recursively for
// .hpp/.h/.cpp/.cc files. Exit status: 0 clean, 1 findings, 2 usage/IO.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hermes/lint/linter.hpp"

namespace fs = std::filesystem;

namespace {

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.empty() || name.front() == '.' || name.rfind("build", 0) == 0 ||
         name == "fixtures";
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

void collect(const fs::path& root, const fs::path& arg, std::vector<fs::path>& out) {
  const fs::path full = arg.is_absolute() ? arg : root / arg;
  if (fs::is_regular_file(full)) {
    out.push_back(full);
    return;
  }
  if (!fs::is_directory(full)) return;
  for (auto it = fs::recursive_directory_iterator(full); it != fs::recursive_directory_iterator();
       ++it) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path())) out.push_back(it->path());
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  bool want_json = false;
  std::vector<std::string> args;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--root=", 0) == 0) {
      root = a.substr(7);
    } else if (a == "--json") {
      want_json = true;
    } else if (a.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = a.substr(7);
    } else if (a == "--list-rules") {
      for (const auto& r : hermes::lint::rule_catalogue()) {
        std::printf("%-28s %s\n", std::string(r.id).c_str(), std::string(r.summary).c_str());
      }
      return 0;
    } else if (a == "--help" || a == "-h") {
      std::printf("usage: hermeslint [--root=DIR] [--json[=FILE]] [--list-rules] [paths...]\n");
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hermeslint: unknown option '%s'\n", a.c_str());
      return 2;
    } else {
      args.push_back(a);
    }
  }
  if (args.empty()) args = {"src", "bench", "tests"};

  std::vector<fs::path> files;
  for (const std::string& a : args) collect(root, a, files);
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "hermeslint: no lintable files under the given paths\n");
    return 2;
  }

  hermes::lint::Linter linter;
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "hermeslint: cannot read %s\n", p.string().c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    linter.add_file(fs::relative(p, root).generic_string(), std::move(ss).str());
  }

  const hermes::lint::LintResult result = linter.run();

  // With --json (no =FILE) the JSON owns stdout; the report moves to
  // stderr so `hermeslint --json | jq` just works.
  std::FILE* report = want_json && json_path.empty() ? stderr : stdout;
  for (const auto& f : result.findings) {
    std::fprintf(report, "%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                 f.message.c_str());
    if (!f.snippet.empty()) std::fprintf(report, "    %s\n", f.snippet.c_str());
  }
  std::fprintf(report, "hermeslint: %zu finding(s), %zu suppression(s), %d file(s) scanned\n",
               result.findings.size(), result.suppressed.size(), result.files_scanned);

  if (want_json) {
    const std::string json = hermes::lint::to_json(result);
    if (json_path.empty()) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(json_path, std::ios::binary);
      out << json;
      if (!out) {
        std::fprintf(stderr, "hermeslint: cannot write %s\n", json_path.c_str());
        return 2;
      }
    }
  }
  return result.findings.empty() ? 0 : 1;
}
