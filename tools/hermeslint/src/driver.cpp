#include "hermes/lint/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hermes/lint/cache.hpp"
#include "hermes/lint/summary.hpp"

namespace hermes::lint {

namespace fs = std::filesystem;

namespace {

// hermeslint:allow(determinism.clock) the lint driver times its own wall clock for the --json timing report; tool code, not simulation code
using Clock = std::chrono::steady_clock;

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name.empty() || name.front() == '.' || name.rfind("build", 0) == 0 ||
         name == "fixtures";
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

void collect(const fs::path& root, const fs::path& arg, std::vector<fs::path>& out) {
  const fs::path full = arg.is_absolute() ? arg : root / arg;
  if (fs::is_regular_file(full)) {
    out.push_back(full);
    return;
  }
  if (!fs::is_directory(full)) return;
  for (auto it = fs::recursive_directory_iterator(full);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path())) out.push_back(it->path());
  }
}

/// Per-file pipeline state. `lines` is lazily populated: a file whose
/// summary AND findings both come from the cache is never lexed at all.
struct Work {
  std::string rel;       ///< repo-relative path (used in findings)
  std::string content;   ///< raw bytes
  std::uint64_t hash = 0;
  bool summary_reused = false;
  bool findings_reused = false;
  FileSummary summary;
  std::vector<Line> lines;
  bool lexed = false;
  LintResult local;  ///< findings/suppressions for this file only
};

/// Runs `fn(i)` for every i in [0, n) across up to `threads` workers.
void fan_out(std::size_t n, int threads, const std::function<void(std::size_t)>& fn) {
  const std::size_t workers =
      std::min<std::size_t>(std::max(threads, 1), n == 0 ? 1 : n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace

DriveResult drive(const DriveOptions& options) {
  const Clock::time_point t0 = Clock::now();
  DriveResult out;

  const fs::path root = options.root.empty() ? fs::path(".") : fs::path(options.root);
  std::vector<fs::path> files;
  for (const std::string& a : options.paths) collect(root, a, files);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Cache cache;
  if (!options.cache_path.empty()) cache = load_cache(options.cache_path);
  const std::uint64_t rules = rules_version();
  // A rule-set change invalidates everything: summaries and findings are
  // both products of this binary's pass logic.
  if (cache.rules_version != rules) cache = Cache{};

  std::vector<Work> work(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    Work& w = work[i];
    w.rel = fs::relative(files[i], root).generic_string();
    std::ifstream in(files[i], std::ios::binary);
    if (!in) {
      out.io_error = true;
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    w.content = std::move(ss).str();
    w.hash = fnv1a(w.content);
    const auto it = cache.files.find(w.rel);
    if (it != cache.files.end() && it->second.content_hash == w.hash) {
      w.summary = it->second.summary;
      w.summary_reused = true;
    }
  }

  // Phase 1 (parallel): lex + summarize files the cache cannot cover.
  fan_out(work.size(), options.threads, [&](std::size_t i) {
    Work& w = work[i];
    if (w.summary_reused) return;
    w.lines = Lexer::scan(w.content);
    w.lexed = true;
    w.summary = Linter::summarize(w.rel, w.lines);
  });

  // Phase 2: fold summaries into the whole-tree context.
  std::vector<const FileSummary*> sums;
  sums.reserve(work.size());
  for (const Work& w : work) sums.push_back(&w.summary);
  const GlobalContext ctx = Linter::build_context(sums, options.today);
  const std::uint64_t global = ctx.hash();

  // Findings are reusable only when the file, the whole-tree context, and
  // the rule set all match what the cache recorded.
  const bool context_matches = cache.global_hash == global && cache.rules_version == rules;
  for (Work& w : work) {
    if (!w.summary_reused || !context_matches) continue;
    const auto it = cache.files.find(w.rel);
    if (it == cache.files.end()) continue;
    w.local.findings = it->second.findings;
    w.local.suppressed = it->second.suppressions;
    w.findings_reused = true;
  }

  // Phase 3 (parallel): lint everything not served from the cache.
  fan_out(work.size(), options.threads, [&](std::size_t i) {
    Work& w = work[i];
    if (w.findings_reused) return;
    if (!w.lexed) {
      w.lines = Lexer::scan(w.content);
      w.lexed = true;
    }
    Linter::lint_file(w.rel, w.lines, w.summary, ctx, w.local);
  });

  // Deterministic merge in sorted-path order, then canonical sort.
  out.result.files_scanned = static_cast<int>(work.size());
  for (Work& w : work) {
    std::move(w.local.findings.begin(), w.local.findings.end(),
              std::back_inserter(out.result.findings));
    std::move(w.local.suppressed.begin(), w.local.suppressed.end(),
              std::back_inserter(out.result.suppressed));
    out.timing.files_reused += w.findings_reused ? 1 : 0;
    out.timing.files_linted += w.findings_reused ? 0 : 1;
  }
  sort_result(out.result);

  if (!options.cache_path.empty()) {
    Cache fresh;
    fresh.global_hash = global;
    fresh.rules_version = rules;
    for (Work& w : work) {
      fresh.files.emplace(w.rel, CachedFile{w.hash, std::move(w.summary), {}, {}});
    }
    // Per-file results were moved into the merged result above; route each
    // finding back to its file's cache slot from there.
    for (const Finding& f : out.result.findings) {
      const auto it = fresh.files.find(f.file);
      if (it != fresh.files.end()) it->second.findings.push_back(f);
    }
    for (const Suppression& s : out.result.suppressed) {
      const auto it = fresh.files.find(s.file);
      if (it != fresh.files.end()) it->second.suppressions.push_back(s);
    }
    save_cache(options.cache_path, fresh);
  }

  out.timing.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return out;
}

}  // namespace hermes::lint
