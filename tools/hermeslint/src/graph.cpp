#include "hermes/lint/graph.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hermes::lint {

namespace {

struct ModuleRank {
  std::string_view module;
  int rank;
};

constexpr ModuleRank kRanks[] = {
    {"engine", 0},   {"sim", 0},      {"obs", 0},    {"lint", 0},   {"net", 1},
    {"lb", 2},       {"transport", 3}, {"faults", 3},
    {"stats", 4},    {"workload", 4}, {"harness", 5},
    {"bench", 6},    {"tests", 6},    {"examples", 6},  {"tools", 6},
};

/// Namespaces whose symbols are indexed for header.direct-include. The
/// short tail is how uses qualify them (`obs::X`); the full path is what
/// the namespace stack must spell.
struct IndexedNamespace {
  std::string_view tail;
  std::vector<std::string_view> full;
};

const std::vector<IndexedNamespace>& indexed_namespaces() {
  static const std::vector<IndexedNamespace> kNs = {
      {"engine", {"hermes", "engine"}},
      {"obs", {"hermes", "obs"}},
      {"fuzz", {"hermes", "faults", "fuzz"}},
      {"lint", {"hermes", "lint"}},
  };
  return kNs;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view skip_ws(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0)
    s.remove_prefix(1);
  return s;
}

std::string_view take_ident(std::string_view& s) {
  s = skip_ws(s);
  std::size_t n = 0;
  while (n < s.size() && is_ident_char(s[n])) ++n;
  const std::string_view id = s.substr(0, n);
  s.remove_prefix(n);
  return id;
}

bool is_keyword(std::string_view id) {
  static constexpr std::string_view kKeywords[] = {
      "if",      "else",    "for",     "while",   "do",       "switch",  "case",
      "return",  "break",   "continue", "sizeof",  "alignof",  "static",  "inline",
      "constexpr", "const", "virtual", "explicit", "typename", "template", "operator",
      "new",     "delete",  "class",   "struct",  "enum",     "union",   "namespace",
      "using",   "typedef", "friend",  "public",  "private",  "protected", "noexcept",
      "static_assert", "decltype", "auto", "void",
  };
  return std::find(std::begin(kKeywords), std::end(kKeywords), id) != std::end(kKeywords);
}

}  // namespace

int layer_rank(std::string_view module) {
  for (const ModuleRank& m : kRanks) {
    if (m.module == module) return m.rank;
  }
  return -1;
}

std::string module_of_path(std::string_view path) {
  // Normalize a leading "./".
  if (path.rfind("./", 0) == 0) path.remove_prefix(2);
  if (path.rfind("src/", 0) == 0) {
    std::string_view rest = path.substr(4);
    const std::size_t slash = rest.find('/');
    if (slash != std::string_view::npos) return std::string(rest.substr(0, slash));
    return {};
  }
  if (path.rfind("tools/hermeslint/", 0) == 0) return "lint";
  for (const std::string_view top : {std::string_view{"bench"}, std::string_view{"tests"},
                                     std::string_view{"examples"}, std::string_view{"tools"}}) {
    if (path.rfind(top, 0) == 0 && path.size() > top.size() && path[top.size()] == '/') {
      return std::string(top);
    }
  }
  return {};
}

std::string module_of_include(std::string_view include) {
  if (include.rfind("hermes/", 0) != 0) return {};
  std::string_view rest = include.substr(7);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(rest.substr(0, slash));
}

std::vector<std::string> legal_path(std::string_view from, std::string_view to) {
  const int rf = layer_rank(from);
  const int rt = layer_rank(to);
  if (rf < 0 || rt < 0 || rt >= rf) return {};
  // Every strictly-descending hop is a legal edge, so the shortest chain
  // is always the direct one.
  return {std::string(from), std::string(to)};
}

std::string include_path_of(std::string_view path) {
  const std::size_t at = path.rfind("include/");
  if (at == std::string_view::npos) return {};
  return std::string(path.substr(at + 8));
}

std::vector<SymbolDef> exported_symbols(const std::string& path, const std::vector<Line>& lines) {
  std::vector<SymbolDef> out;
  if (include_path_of(path).empty()) return out;

  // One scope entry per open '{': a namespace (with its name) or any
  // other block (class body, function body, initializer).
  struct Scope {
    bool is_namespace = false;
    std::vector<std::string> names;  ///< may hold several for `namespace a::b`
  };
  std::vector<Scope> stack;

  auto current_tail = [&]() -> std::string_view {
    // The innermost scope must itself be a namespace (symbols inside a
    // class body or function are not exported), and the flattened
    // namespace path must match one of the indexed namespaces.
    std::vector<std::string_view> flat;
    for (const Scope& s : stack) {
      if (!s.is_namespace) return {};
      for (const std::string& n : s.names) flat.push_back(n);
    }
    for (const IndexedNamespace& ns : indexed_namespaces()) {
      if (flat.size() == ns.full.size() && std::equal(flat.begin(), flat.end(), ns.full.begin())) {
        return ns.tail;
      }
    }
    return {};
  };

  auto add = [&](std::string_view name) {
    const std::string_view tail = current_tail();
    if (tail.empty() || name.empty() || is_keyword(name)) return;
    const SymbolDef def{std::string(tail), std::string(name)};
    const bool dup = std::any_of(out.begin(), out.end(), [&](const SymbolDef& d) {
      return d.ns == def.ns && d.name == def.name;
    });
    if (!dup) out.push_back(def);
  };

  // Statement text accumulated since the last ';', '{' or '}', so
  // declarations that wrap across lines are classified as one unit.
  std::string stmt;

  auto classify = [&](std::string_view s, bool opens_brace) {
    s = skip_ws(s);
    if (s.empty() || s.front() == '#') return;
    // Strip leading attributes and specifiers that precede declarations.
    for (;;) {
      s = skip_ws(s);
      if (s.rfind("[[", 0) == 0) {
        const std::size_t close = s.find("]]");
        if (close == std::string_view::npos) return;
        s.remove_prefix(close + 2);
        continue;
      }
      std::string_view probe = s;
      const std::string_view id = take_ident(probe);
      if (id == "inline" || id == "static" || id == "constexpr" || id == "extern" ||
          id == "friend") {
        s = probe;
        continue;
      }
      break;
    }
    std::string_view rest = s;
    const std::string_view head = take_ident(rest);
    if (head == "namespace") return;  // handled by the scope tracker
    if (head == "class" || head == "struct" || head == "enum") {
      if (head == "enum") {
        std::string_view probe = rest;
        const std::string_view cls = take_ident(probe);
        if (cls == "class" || cls == "struct") rest = probe;
      }
      const std::string_view name = take_ident(rest);
      rest = skip_ws(rest);
      // `class X;` is a forward declaration, not the exporting site.
      if (!opens_brace && (rest.empty() || rest.front() == ';')) return;
      add(name);
      return;
    }
    if (head == "using") {
      std::string_view probe = rest;
      const std::string_view name = take_ident(probe);
      probe = skip_ws(probe);
      if (!probe.empty() && probe.front() == '=') add(name);  // not using-directives
      return;
    }
    if (head == "template" || head == "typedef") return;
    if (head.empty()) return;
    // Remaining shapes: `Type name(...)` free functions and
    // `Type name = ...` constants. Find the identifier that precedes the
    // first top-level '(' or '='.
    int angle = 0;
    std::string_view last_ident;
    for (std::size_t i = 0; i < s.size();) {
      const char c = s[i];
      if (c == '<') ++angle;
      if (c == '>' && angle > 0) --angle;
      if (angle == 0 && (c == '(' || c == '=')) {
        if (c == '=' && i + 1 < s.size() && s[i + 1] == '=') return;
        if (!last_ident.empty() && !is_keyword(last_ident)) add(last_ident);
        return;
      }
      if (is_ident_char(c)) {
        std::size_t e = i;
        while (e < s.size() && is_ident_char(s[e])) ++e;
        last_ident = s.substr(i, e - i);
        i = e;
      } else {
        ++i;
      }
    }
  };

  for (const Line& line : lines) {
    const std::string& code = line.code;
    // Preprocessor lines don't end in ';' and would otherwise pollute the
    // pending statement; they declare nothing, so drop them whole.
    if (skip_ws(code).rfind('#', 0) == 0) {
      stmt.clear();
      continue;
    }
    for (std::size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '{') {
        // Does the pending statement open a namespace?
        std::string_view s = skip_ws(stmt);
        std::string_view probe = s;
        const std::string_view head = take_ident(probe);
        Scope scope;
        if (head == "namespace") {
          scope.is_namespace = true;
          for (;;) {
            const std::string_view part = take_ident(probe);
            if (part.empty()) break;
            scope.names.emplace_back(part);
            probe = skip_ws(probe);
            if (probe.rfind("::", 0) != 0) break;
            probe.remove_prefix(2);
          }
        } else {
          classify(stmt, /*opens_brace=*/true);
        }
        stack.push_back(std::move(scope));
        stmt.clear();
      } else if (c == '}') {
        if (!stack.empty()) stack.pop_back();
        stmt.clear();
      } else if (c == ';') {
        classify(stmt, /*opens_brace=*/false);
        stmt.clear();
      } else {
        stmt.push_back(c);
      }
    }
    stmt.push_back(' ');
  }
  return out;
}

}  // namespace hermes::lint
