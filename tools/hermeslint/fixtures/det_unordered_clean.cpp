// Fixture: unordered containers used safely — no range-for over them.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

struct Holder {
  std::unordered_map<std::uint64_t, int> scores_;
};

int lookup(const Holder& h, std::uint64_t id) {
  const auto it = h.scores_.find(id);  // keyed lookup: order-free
  return it == h.scores_.end() ? 0 : it->second;
}

std::vector<int> sorted_emission(const Holder& h, const std::vector<std::uint64_t>& ids) {
  std::vector<int> out;
  for (std::uint64_t id : ids) {  // iteration over a vector is fine
    out.push_back(lookup(h, id));
  }
  std::map<int, int> ordered;
  for (const auto& [k, v] : ordered) {  // std::map iterates in key order
    out.push_back(k + v);
  }
  return out;
}
