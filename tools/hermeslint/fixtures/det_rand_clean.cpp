// Fixture: deterministic randomness idioms that must NOT be flagged.
#include <cstdint>

struct Rng {
  std::uint64_t next();
  double chance(double p);
};

struct Thing {
  Rng rng_;
  // A *member* named rand is not ::rand(); strings and comments that say
  // rand() or "std::random_device" are not code.
  std::uint64_t rand() { return rng_.next(); }
  std::uint64_t draw() { return rng_.rand(); }
};

const char* doc() { return "call rand() and std::random_device at your peril"; }
