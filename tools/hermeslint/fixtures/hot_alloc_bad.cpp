// Fixture: hotpath.alloc triggers inside HERMES_HOT regions. Never compiled.
#include <functional>
#include <memory>

struct Packet {
  int size = 0;
};

// HERMES_HOT
void forward(Packet* p) {
  auto* copy = new Packet(*p);          // heap per packet
  auto shared = std::make_shared<Packet>(*p);
  auto owned = std::make_unique<Packet>(*p);
  std::function<void()> cb = [copy] { delete copy; };
  cb();
  (void)shared;
  (void)owned;
}

// Untagged code may allocate freely: this function must NOT be flagged.
Packet* cold_setup() { return new Packet(); }
