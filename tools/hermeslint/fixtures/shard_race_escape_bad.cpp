// Fixture: sim.shard-race triggers on Port/Host pointer dereference
// inside HERMES_SHARDED regions. Never compiled.
struct Port {
  int depth = 0;
  void enqueue(int b);
};
struct Host {
  int id = 0;
  void deliver(int b);
};

// HERMES_SHARDED
void exchange(Port* remote_port, Host* remote_host) {
  remote_port->enqueue(1);     // reaches into the destination shard's switch
  (*remote_host).deliver(2);   // same, spelled as an explicit dereference
  const int d = remote_port->depth;
  (void)d;
}

// Untagged code touches its own shard's ports freely: not flagged.
void local_touch(Port* p) { p->enqueue(3); }
