// Fixture: hotpath.hot-file-member clean twin. Never compiled. A file
// WITHOUT any HERMES_HOT region may declare deque/function members
// freely, and a hot file may keep an annotated cold-path member.
#include <deque>
#include <functional>

struct Packet {
  int size = 0;
};

struct ColdCollector {
  std::deque<Packet> history_;
  std::function<void()> on_flush_;
};
