// Fixture: sim.float-order — floating-point accumulation over unordered
// iteration sums in hash order. Never compiled.
#include <numeric>
#include <unordered_map>

struct Flows {
  std::unordered_map<int, double> rtt_;

  double mean_bad() {
    double sum = 0.0;
    for (const auto& kv : rtt_) {
      sum += kv.second;  // hash-order float addition
    }
    return sum;
  }

  double total_bad() {
    return std::accumulate(rtt_.begin(), rtt_.end(), 0.0);  // same, via algorithm
  }
};
