// Fixture: obs.pod-record flags heap-owning members in a tagged trace-record
// struct. Never compiled.
#include <memory>
#include <string>
#include <vector>

// HERMES_POD_RECORD
struct BadRecord {
  unsigned long long time_ns;
  std::string port_name;          // owns heap: must be an interned id
  std::vector<int> samples;       // owns heap
  std::unique_ptr<int> owner;     // not trivially copyable
};

// Untagged structs may own whatever they like: must NOT be flagged.
struct ColdConfig {
  std::string label;
  std::vector<int> weights;
};
