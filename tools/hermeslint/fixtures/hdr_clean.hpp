#pragma once

// Fixture: a hygienic header — no findings.
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace fixture {

struct Registry {
  std::map<int, std::uint64_t> ordered;
  std::vector<int> values;
  std::unique_ptr<int> owner;
};

}  // namespace fixture
