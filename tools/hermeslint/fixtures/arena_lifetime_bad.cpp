// Fixture: core.arena-lifetime — a handle (or a Packet reference derived
// from it) is dead after the arena frees the slot or resets, and a live
// handle must not be cached into a member inside a HERMES_SHARDED
// region. Never compiled.
#include <vector>

struct Packet {
  int flow = 0;
  long bytes = 0;
};

struct PacketArena {
  Packet& operator[](int h);
  int alloc();
  void free(int h);
  void reset();
};

using PacketHandle = int;

struct Device {
  PacketArena arena_;

  long use_after_free() {
    PacketHandle h = arena_.alloc();
    Packet& p = arena_[h];
    arena_.free(h);
    return p.bytes;  // the alias outlives the slot
  }

  int handle_after_reset() {
    PacketHandle h = arena_.alloc();
    arena_.reset();
    return h;  // wholesale reset killed every handle
  }
};

// HERMES_SHARDED
struct Portal {
  PacketArena arena_;
  std::vector<int> held_;
  int cached_ = 0;

  void stage() {
    PacketHandle h = arena_.alloc();
    held_.push_back(h);  // handle cached across the barrier round
    cached_ = h;         // same, via member assignment
  }
};
