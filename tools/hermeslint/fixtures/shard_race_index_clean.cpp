// Fixture: clean twin of shard_race_index_bad.cpp — every subscript of
// the HERMES_SHARD_OWNED container derives from shard ownership. Never
// compiled.
#include <vector>

struct State {
  int pending = 0;
};

int shard_of_flow(int flow_id);

struct Runner {
  // HERMES_SHARD_OWNED per-shard run state
  std::vector<State> states_;
  int num_shards_ = 8;

  void absorb(int flow_id) {
    const int shard = shard_of_flow(flow_id);
    states_[shard].pending++;  // derived via shard_of_flow
  }

  void inline_call(int flow_id) {
    states_[shard_of_flow(flow_id)].pending++;  // shard_of_* inline
  }

  void drain() {
    for (int s = 0; s < num_shards_; ++s) {
      states_[s].pending = 0;  // num_shards-bounded induction
    }
  }
};
