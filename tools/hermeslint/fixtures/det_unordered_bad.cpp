// Fixture: determinism.unordered-iter triggers. Never compiled.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Holder {
  std::unordered_map<std::uint64_t, int> scores_;
  std::unordered_set<int> members_;
};

std::vector<int> leak_hash_order(const Holder& h) {
  std::vector<int> out;
  for (const auto& [id, score] : h.scores_) {  // hash order escapes
    out.push_back(score + static_cast<int>(id));
  }
  for (int m : h.members_) {  // ditto for sets
    out.push_back(m);
  }
  return out;
}
