// Fixture: every determinism.clock trigger. Never compiled.
#include <chrono>
#include <ctime>

long wall_readings() {
  auto a = std::chrono::system_clock::now();
  auto b = std::chrono::steady_clock::now();
  auto c = std::chrono::high_resolution_clock::now();
  long t = time(nullptr);
  t += std::time(nullptr);
  return t + a.time_since_epoch().count() + b.time_since_epoch().count() +
         c.time_since_epoch().count();
}
