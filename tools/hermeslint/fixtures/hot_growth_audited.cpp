// Fixture: audited growth in a HERMES_HOT region — no findings.
#include <cstddef>
#include <vector>

struct Packet {
  int size = 0;
};

struct Queue {
  std::vector<Packet> q_;
  void reserve(int n) { q_.reserve(static_cast<std::size_t>(n)); }

  // HERMES_HOT
  void enqueue(Packet p) {
    // hermeslint:reserve-audited(capacity reserved up front in reserve(); steady state never grows)
    q_.push_back(p);
  }
};
