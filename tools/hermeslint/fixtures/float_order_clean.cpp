// Fixture: clean twin of float_order_bad.cpp — accumulate over a sorted
// snapshot, or accumulate integers; both are order-independent. Never
// compiled.
#include <cstdint>
#include <map>
#include <numeric>
#include <unordered_map>

struct Flows {
  std::unordered_map<int, double> rtt_;

  double mean_sorted() {
    const std::map<int, double> sorted(rtt_.begin(), rtt_.end());
    double sum = 0.0;
    for (const auto& kv : sorted) {
      sum += kv.second;  // ordered iteration: deterministic sum
    }
    return sum;
  }

  double total_sorted() {
    const std::map<int, double> sorted(rtt_.begin(), rtt_.end());
    return std::accumulate(sorted.begin(), sorted.end(), 0.0,
                           [](double acc, const auto& kv) { return acc + kv.second; });
  }
};
