// Fixture: real violations silenced by well-formed suppressions — zero
// findings, three recorded suppressions with reasons.
#include <chrono>
#include <cstdlib>

long measured_wall_time() {
  // hermeslint:allow(determinism.clock) bench harness measures real elapsed time
  auto t0 = std::chrono::steady_clock::now();
  long x = std::rand();  // hermeslint:allow(determinism.rand) exercising the legacy PRNG under test
  // hermeslint:allow(determinism.clock) wall duration is the quantity being reported
  auto t1 = std::chrono::steady_clock::now();
  return x + (t1 - t0).count();
}
