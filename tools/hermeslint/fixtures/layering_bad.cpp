// Fixture: arch.layering — the test adds this file under a synthetic
// src/net/ path; net (rank 1) must not include harness (rank 5) or its
// same-rank siblings. Never compiled.
#include "hermes/harness/scenario.hpp"
#include "hermes/sim/simulator.hpp"

int touch() { return 1; }
