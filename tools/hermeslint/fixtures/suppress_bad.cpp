// Fixture: malformed suppressions must each yield a meta.suppression
// finding, and a reasonless allow must not silence its target.
#include <cstdlib>

int bad_directives() {
  // hermeslint:allow(determinism.rand)
  int a = rand();  // reasonless allow: suppresses, but is itself a finding
  // hermeslint:allow(no.such.rule) misspelled rule ids must be rejected
  int b = rand();  // not suppressed: the directive above named no real rule
  // hermeslint:frobnicate(x) unknown directive verb
  return a + b;
}
