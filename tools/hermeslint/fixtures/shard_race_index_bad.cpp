// Fixture: sim.shard-race (indexing half) — subscripts of a
// HERMES_SHARD_OWNED container must carry shard provenance. A flow id
// and a literal loop bound do not. Never compiled.
#include <vector>

struct State {
  int pending = 0;
};

struct Runner {
  // HERMES_SHARD_OWNED per-shard run state
  std::vector<State> states_;
  int num_shards_ = 8;

  void absorb(int flow_id) {
    states_[flow_id].pending++;  // a flow id is not a shard id
  }

  void bad_loop() {
    for (int i = 0; i < 4; ++i) {
      states_[i].pending = 0;  // literal bound: no shard provenance
    }
  }

  void good(int shard) {
    states_[shard].pending++;  // caller's routing decision: fine
  }

  void good_loop() {
    for (int s = 0; s < num_shards_; ++s) {
      states_[s].pending = 0;  // num_shards-bounded induction: fine
    }
  }
};
