// Fixture: every determinism.rand trigger. Never compiled.
#include <cstdlib>
#include <random>

int entropy_soup() {
  int x = rand();              // free call
  x += std::rand();            // std-qualified call
  srand(42);                   // seeding the global stream is just as bad
  std::random_device rd;       // hardware entropy
  return x + static_cast<int>(rd());
}
