// Fixture: clean twin of layering_bad.cpp — the test adds this file
// under a synthetic src/net/ path; sim and obs sit below net, and the
// module's own headers are always fine. Never compiled.
#include "hermes/net/fattree.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/sim/simulator.hpp"

int touch() { return 1; }
