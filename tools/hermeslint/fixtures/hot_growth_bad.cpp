// Fixture: hotpath.container-growth trigger. Never compiled.
#include <vector>

struct Packet {
  int size = 0;
};

struct Queue {
  std::vector<Packet> q_;

  // HERMES_HOT
  void enqueue(Packet p) {
    q_.push_back(p);  // unaudited growth on the hot path
  }
};
