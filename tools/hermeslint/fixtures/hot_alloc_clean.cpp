// Fixture: HERMES_HOT code using inline/pooled storage — no findings.
#include <cstdint>

template <int N>
struct InlineFunction {
  char storage[N];
};

struct Packet {
  std::uint32_t size = 0;
};

// HERMES_HOT
std::uint64_t forward(Packet& p, std::uint64_t acc) {
  InlineFunction<64> cb{};  // inline storage, no heap
  (void)cb;
  acc += p.size;            // arithmetic only
  return acc;
}
