// Fixture: a well-formed trace record — fixed-size scalars only, names
// carried as interned StringTable ids. No findings. Never compiled.
#include <cstdint>

// HERMES_POD_RECORD
struct CleanRecord {
  std::uint64_t time_ns;
  std::uint64_t flow_id;
  std::uint32_t name;  // interned via obs::StringTable
  std::uint8_t kind;
  std::uint8_t pad[3];
  double rate_bps;
};
