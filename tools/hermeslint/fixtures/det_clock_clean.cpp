// Fixture: sim-time idioms that must NOT be flagged as wall clocks.
#include <cstdint>

struct SimTime {
  std::int64_t ns = 0;
};

struct Simulator {
  SimTime now() const { return t_; }
  SimTime t_;
};

struct Flow {
  SimTime start_time() const { return start_; }
  SimTime start_;
};

// `sim.time(...)`-style member calls, declarations `SimTime time(...)`, and
// identifiers that merely contain "time" are all fine.
SimTime time_of(const Flow& f) { return f.start_time(); }
SimTime make_time(std::int64_t ns) { return SimTime{ns}; }
