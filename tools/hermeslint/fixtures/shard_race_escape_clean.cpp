// Fixture: the mailbox-shaped twin of shard_race_escape_bad.cpp — barrier
// code that only stages and merges mail is quiet. Never compiled.
struct Port {
  int depth = 0;
};

struct Mail {
  long deliver_at = 0;
  int dst_sw = 0;
  int dst_port = 0;
};

struct Outbox {
  void push(Mail m);
  void clear();
};

// HERMES_SHARDED
long exchange(Outbox& box) {
  box.push(Mail{7, 1, 2});   // value-typed mail, no foreign pointers
  box.clear();
  return 1;
}

// A Port* declared and dereferenced outside any tagged region is fine.
int cold_depth(Port* p) { return p->depth; }
