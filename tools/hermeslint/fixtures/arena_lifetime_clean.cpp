// Fixture: clean twin of arena_lifetime_bad.cpp — uses precede frees, a
// free inside a terminating branch does not poison the fall-through, a
// re-allocated handle is healed, and barrier code ships Packets by value.
// Never compiled.
#include <vector>

struct Packet {
  int flow = 0;
  long bytes = 0;
};

struct PacketArena {
  Packet& operator[](int h);
  int alloc();
  void free(int h);
};

using PacketHandle = int;

struct Device {
  PacketArena arena_;

  long deliver() {
    PacketHandle h = arena_.alloc();
    Packet& p = arena_[h];
    const long bytes = p.bytes;  // use strictly before the free
    arena_.free(h);
    return bytes;
  }

  long branch_free(bool drop) {
    PacketHandle h = arena_.alloc();
    if (drop) {
      arena_.free(h);
      return 0;  // the kill cannot reach the fall-through path
    }
    Packet& q = arena_[h];
    const long b = q.bytes;
    arena_.free(h);
    return b;
  }

  int refresh() {
    PacketHandle h = arena_.alloc();
    arena_.free(h);
    h = arena_.alloc();  // re-definition heals: a fresh slot
    const int out = h;
    arena_.free(h);
    return out;
  }
};

// HERMES_SHARDED
struct Portal {
  PacketArena arena_;
  std::vector<Packet> mail_;

  void stage() {
    PacketHandle h = arena_.alloc();
    Packet copy = arena_[h];  // by value: payload leaves the slot
    arena_.free(h);
    mail_.push_back(copy);  // value mail, no handle survives the round
  }
};
