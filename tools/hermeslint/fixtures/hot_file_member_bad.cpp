// Fixture: hotpath.hot-file-member triggers. Never compiled. The file
// carries a HERMES_HOT region, so even cold-code declarations of the
// heap-backed queue/hook types are flagged.
#include <deque>
#include <functional>

struct Packet {
  int size = 0;
};

struct Port {
  using Hook = std::function<void(const Packet&)>;  // alias member

  // HERMES_HOT
  void enqueue(Packet p) { backlog_ += p.size; }

  std::deque<Packet> queue_;                 // member declaration
  std::function<void(const Packet&)> hook_;  // member declaration
  int backlog_ = 0;
};

// Uses that are NOT declarations must stay quiet:
void install(std::function<void(const Packet&)> cb);  // parameter
void call_site(Port& p) { install(p.hook_); }
