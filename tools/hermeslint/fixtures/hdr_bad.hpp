// Fixture: every header-hygiene trigger. Never compiled.
// (1) no #pragma once at the top — the guard below is not enough.
#ifndef HDR_BAD_HPP
#define HDR_BAD_HPP

#include <map>

// (2) namespace-scope using-namespace in a header.
using namespace std;

namespace fixture {

// (3) transitive-include reliance: std::vector and std::unique_ptr are
// used but <vector> and <memory> are never included directly.
struct Registry {
  std::map<int, int> ordered;
  std::vector<int> values;
  std::unique_ptr<int> owner;
};

}  // namespace fixture

#endif  // HDR_BAD_HPP
