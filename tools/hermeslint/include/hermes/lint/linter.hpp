#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hermes/lint/lexer.hpp"
#include "hermes/lint/summary.hpp"

namespace hermes::lint {

/// One rule violation. `line` is 1-based.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string snippet;
};

/// A finding silenced by an in-source allow directive (the syntax is
/// `allow(<rule>) <reason>` after the tool's own name and a colon); kept
/// so reports can audit every suppression, its reason, and its optional
/// `expires(YYYY-MM-DD)` deadline.
struct Suppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string reason;
  std::string expires;  ///< ISO date; empty when the allow never expires
};

struct LintResult {
  std::vector<Finding> findings;
  std::vector<Suppression> suppressed;
  int files_scanned = 0;
};

/// Wall-time and cache accounting for one lint drive; reported in the
/// JSON output so the warm/cold lint budgets are machine-checkable.
struct LintTiming {
  double wall_ms = 0.0;
  int files_reused = 0;  ///< findings served from the incremental cache
  int files_linted = 0;  ///< files lexed and rule-passed this run
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The rule catalogue (stable ids; these are what allow() refers to).
const std::vector<RuleInfo>& rule_catalogue();
bool is_known_rule(std::string_view id);

/// Fingerprint of the rule set (ids + summaries). Cached findings are
/// only reusable while this matches the cache's recorded value.
std::uint64_t rules_version();

/// Project-specific static analysis over a set of C++ sources.
///
/// v2 is two-phase so the incremental driver can cache each phase by
/// content hash: summarize() collects a file's cross-TU facts (includes,
/// unordered names, shard-owned members, exported symbols) from its
/// lexed lines; build_context() folds all summaries into the
/// GlobalContext; lint_file() runs every rule pass for one file under
/// that context. The Linter class wraps the phases for in-process use:
/// add_file() everything, then run().
class Linter {
 public:
  /// `path` is used verbatim in findings; `source` is the file contents.
  void add_file(std::string path, std::string source);

  /// ISO date (YYYY-MM-DD) used to judge `expires(...)` clauses on allow
  /// directives; unset (empty) disables expiry checking.
  void set_today(std::string iso_date);

  [[nodiscard]] LintResult run() const;

  static FileSummary summarize(const std::string& path, const std::vector<Line>& lines);
  static GlobalContext build_context(const std::vector<const FileSummary*>& summaries,
                                     std::string today);
  static void lint_file(const std::string& path, const std::vector<Line>& lines,
                        const FileSummary& summary, const GlobalContext& ctx, LintResult& out);

 private:
  struct File {
    std::string path;
    std::vector<Line> lines;
    FileSummary summary;
  };

  std::vector<File> files_;
  std::string today_;
};

/// Sorts findings/suppressions into the canonical (file, line, rule)
/// order every output format relies on.
void sort_result(LintResult& result);

/// Serialize a result as the machine-readable report (schema v2):
/// {"tool","schema_version":2,"findings":[{file,line,rule,message,snippet}],
///  "suppressed":[{file,line,rule,reason,expires}],"files_scanned","clean",
///  "timing":{wall_ms,files_reused,files_linted}} — timing only when given.
std::string to_json(const LintResult& result, const LintTiming* timing = nullptr);

}  // namespace hermes::lint
