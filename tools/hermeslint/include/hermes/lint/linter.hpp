#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "hermes/lint/lexer.hpp"

namespace hermes::lint {

/// One rule violation. `line` is 1-based.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string snippet;
};

/// A finding that was silenced by a `// hermeslint:allow(<rule>) <reason>`
/// directive; kept so reports can audit every suppression and its reason.
struct Suppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string reason;
};

struct LintResult {
  std::vector<Finding> findings;
  std::vector<Suppression> suppressed;
  int files_scanned = 0;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The rule catalogue (stable ids; these are what allow() refers to).
const std::vector<RuleInfo>& rule_catalogue();
bool is_known_rule(std::string_view id);

/// Project-specific static analysis over a set of C++ sources.
///
/// Usage: add_file() every file (a global pass records the names of all
/// unordered-container variables so iteration over them can be flagged
/// across file boundaries), then run() to execute the rule passes.
class Linter {
 public:
  /// `path` is used verbatim in findings; `source` is the file contents.
  void add_file(std::string path, std::string source);
  [[nodiscard]] LintResult run() const;

 private:
  struct File {
    std::string path;
    bool is_header = false;
    std::vector<Line> lines;
  };

  void collect_unordered_names(const File& f);
  void lint_file(const File& f, LintResult& out) const;

  std::vector<File> files_;
  std::vector<std::string> unordered_names_;
};

/// Serialize a result as the machine-readable report (schema v1):
/// {"tool","schema_version","findings":[{file,line,rule,message,snippet}],
///  "suppressed":[{file,line,rule,reason}],"files_scanned","clean"}
std::string to_json(const LintResult& result);

}  // namespace hermes::lint
