#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hermes/lint/linter.hpp"
#include "hermes/lint/summary.hpp"

namespace hermes::lint {

/// One file's cached state. The summary is valid whenever `content_hash`
/// matches the file on disk; the findings/suppressions are additionally
/// valid only while the whole-tree GlobalContext hash is unchanged
/// (cross-file rules — layering, symbol index, unordered names — can
/// change a file's findings without the file itself changing).
struct CachedFile {
  std::uint64_t content_hash = 0;
  FileSummary summary;
  std::vector<Finding> findings;
  std::vector<Suppression> suppressions;
};

/// The on-disk incremental cache: a version-stamped text file. Any parse
/// irregularity (truncation, unknown version, stray fields) discards the
/// whole cache — a cold lint is always correct, a half-read cache is not.
struct Cache {
  std::uint64_t global_hash = 0;        ///< GlobalContext::hash() at save time
  std::uint64_t rules_version = 0;      ///< linter rule-set fingerprint
  std::map<std::string, CachedFile> files;
};

/// Loads `path`; returns an empty cache when missing or malformed.
Cache load_cache(const std::string& path);

/// Atomically (write-then-rename) persists the cache. Returns false on IO
/// failure — callers treat that as "no cache next run", never an error.
bool save_cache(const std::string& path, const Cache& cache);

}  // namespace hermes::lint
