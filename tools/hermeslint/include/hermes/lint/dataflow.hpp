#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hermes/lint/lexer.hpp"

namespace hermes::lint {

/// One statement of a function body. Control constructs (if/else, loops,
/// switch, nested lambdas and blocks) are block statements: `text` holds
/// the header (`for (int s = 0; s < S; ++s)`) and `children` the body.
/// Plain statements hold the full statement text. `line0` is 0-based.
struct Stmt {
  int line0 = 0;
  std::string text;
  bool is_block = false;
  std::vector<Stmt> children;
};

/// A function (or member function / lambda-free body) extracted from the
/// lexed token stream: the intra-procedural unit the dataflow rules run
/// over. `defs` maps identifiers to the concatenated right-hand sides of
/// every assignment/initialization in the body, with for-loop induction
/// variables additionally defined by their loop bound — the def/use
/// backbone for provenance queries.
struct Function {
  std::string name;
  std::string params;  ///< raw parameter-list text
  int open_line0 = 0;
  int close_line0 = 0;
  std::vector<Stmt> body;
};

/// Every function in the file, nested blocks resolved. Token-level: no
/// template disambiguation, but robust to wrapped declarations, lambdas,
/// and class nesting.
std::vector<Function> extract_functions(const std::vector<Line>& lines);

/// A dataflow rule reports through this: 0-based line + message.
using DataflowSink = std::function<void(int line0, const std::string& message)>;

/// All right-hand sides ever assigned to `ident` in the function,
/// including for-loop bounds of induction variables ("" if never).
std::string defs_of(const Function& fn, const std::string& ident);

/// True when `ident`'s value provably derives from shard-ownership
/// arithmetic: a parameter whose name names the shard, or a def chain
/// (depth-limited) that reaches shard_of_* / num_shards / fault_owner_shard
/// -style expressions.
bool has_shard_provenance(const Function& fn, const std::string& ident, int depth = 4);

/// core.arena-lifetime: flags use of an ArenaHandle or of a Packet
/// reference/pointer derived from it after the owning arena freed the
/// slot (`arena.free(h)`) or reset wholesale (`arena.reset()/clear()`),
/// with branch-aware reachability: a free followed by return/continue/
/// break does not poison the fall-through path. `sharded_mask[line]`
/// additionally bans caching a live handle into a member (`..._`) inside
/// HERMES_SHARDED barrier code — handles do not survive a barrier round.
void check_arena_lifetime(const Function& fn, const std::vector<char>& sharded_mask,
                          const DataflowSink& sink);

/// sim.shard-race, indexing half: subscripts of HERMES_SHARD_OWNED
/// containers must use an index with shard provenance.
void check_shard_indexing(const Function& fn, const std::vector<std::string>& owned,
                          const DataflowSink& sink);

/// sim.shard-race, escape half: dereferences (direct or through a local
/// alias) of Port*/Host* values inside HERMES_SHARDED lines.
/// `ptr_names` are the file-wide declared Port*/Host* variables; alias
/// assignments inside the function extend the tracked set.
void check_shard_ptr_escape(const Function& fn, const std::vector<char>& sharded_mask,
                            const std::vector<std::string>& ptr_names, const DataflowSink& sink);

/// sim.float-order: floating-point accumulation whose result depends on
/// unordered-container iteration order — += / -= / *= on a float/double
/// inside a loop over an unordered container, or std::accumulate/reduce
/// with a floating seed over its iterators.
void check_float_order(const Function& fn, const std::vector<std::string>& unordered,
                       const DataflowSink& sink);

}  // namespace hermes::lint
