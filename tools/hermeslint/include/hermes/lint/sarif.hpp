#pragma once

#include <string>

#include "hermes/lint/linter.hpp"

namespace hermes::lint {

/// Serializes a lint result as a SARIF 2.1.0 log, the interchange format
/// GitHub code scanning ingests. One run, driver "hermeslint", the full
/// rule catalogue under tool.driver.rules (so code scanning can render
/// rule help even for rules with zero findings this run), one result per
/// finding with a physicalLocation region. Suppressed findings are
/// emitted with a SARIF `suppressions` entry (kind "inSource") so the
/// audit trail survives into the scanning UI instead of vanishing.
/// Paths in the result are repo-relative URIs.
std::string to_sarif(const LintResult& result);

}  // namespace hermes::lint
