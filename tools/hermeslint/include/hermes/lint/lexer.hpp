#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hermes::lint {

/// One physical source line after lexical classification.
///
/// `code` is the line with every comment and every string/char-literal
/// *body* blanked out by spaces (delimiters kept), so rule regexes can
/// match tokens without being fooled by `"rand()"` inside a string or a
/// mention of `new` in prose. Column positions are preserved: code[i]
/// lines up with raw[i].
///
/// `comment` is the concatenated text of all comments that appear on the
/// line (line comments and the portions of block comments), which is
/// where suppression directives and HERMES_HOT tags live.
struct Line {
  std::string raw;
  std::string code;
  std::string comment;
};

/// Lexical scan of a whole file. Handles //, /* */ (multi-line),
/// "strings" with escapes, 'chars', and R"delim(raw strings)delim".
/// Keeps preprocessor lines (#include, #pragma) in `code` verbatim.
class Lexer {
 public:
  static std::vector<Line> scan(std::string_view source);
};

/// True if `text[pos]` starts the identifier `ident` with word
/// boundaries on both sides.
bool matches_identifier_at(std::string_view text, std::size_t pos, std::string_view ident);

/// Find the next occurrence of `ident` as a whole identifier in `text`
/// at or after `from`; npos if none.
std::size_t find_identifier(std::string_view text, std::string_view ident,
                            std::size_t from = 0);

}  // namespace hermes::lint
