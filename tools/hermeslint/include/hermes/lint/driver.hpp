#pragma once

#include <string>
#include <vector>

#include "hermes/lint/linter.hpp"

namespace hermes::lint {

/// One lint drive: discover files under root, reuse what the incremental
/// cache proves unchanged, lex/summarize/lint the rest (fanned out over
/// `threads`), and persist the refreshed cache.
struct DriveOptions {
  std::string root = ".";           ///< tree root; result paths are relative to it
  std::vector<std::string> paths;   ///< files or directories, relative to root
  std::string cache_path;           ///< incremental cache file; empty = no cache
  int threads = 1;                  ///< worker threads for lex+lint fan-out
  std::string today;                ///< ISO date for expires() checks; empty = off
};

struct DriveResult {
  LintResult result;
  LintTiming timing;
  bool io_error = false;  ///< an input file could not be read
};

/// Runs the full pipeline. Summaries are reusable per content hash;
/// findings additionally require the whole-tree context hash and the
/// rule-set fingerprint to match the cache — cross-file rules can change
/// a file's findings without the file itself changing.
DriveResult drive(const DriveOptions& options);

}  // namespace hermes::lint
