#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "hermes/lint/lexer.hpp"
#include "hermes/lint/summary.hpp"

namespace hermes::lint {

/// The layering DAG, bottom-up. A file in module A may include a header
/// of module B only when A == B or rank(B) < rank(A); same-rank sibling
/// modules may not include each other. Derived from DESIGN.md §2/§13:
///
///   rank 0: sim, obs, lint          (foundations; no hermes deps)
///   rank 1: net                     (sim, obs)
///   rank 2: lb                      (net, sim)
///   rank 3: core, transport, faults (lb and below)
///   rank 4: stats, workload         (transport and below)
///   rank 5: harness                 (everything below)
///   rank 6: bench, tests, examples, tools (anything)
///
/// Returns -1 for modules outside the DAG (unknown paths are exempt).
int layer_rank(std::string_view module);

/// Layering module of a repo-relative path: "src/<m>/..." -> m,
/// "tools/hermeslint/..." -> "lint", "tools/..." -> "tools",
/// "bench|tests|examples/..." -> that name, anything else -> "".
std::string module_of_path(std::string_view path);

/// Layering module of an include target: "hermes/<m>/..." -> m (with
/// "hermes/lint/..." -> "lint"); system and third-party headers -> "".
std::string module_of_include(std::string_view include);

/// Shortest legal dependency chain from module `from` down to module
/// `to` (each hop strictly descends in rank). Empty when no legal chain
/// exists (same rank, unknown module, or `to` above `from`). Used to
/// phrase layering findings: an illegal edge A -> B is reported together
/// with legal_path(B, A), the direction the dependency must flow.
std::vector<std::string> legal_path(std::string_view from, std::string_view to);

/// Namespace-scope symbols exported by a lexed header. Tracks namespace
/// and brace nesting so class members are not collected; records classes,
/// structs, enums, using-aliases, constants, and free-function names
/// declared while the innermost open scope is one of the indexed
/// namespaces (obs, faults::fuzz, lint).
std::vector<SymbolDef> exported_symbols(const std::string& path, const std::vector<Line>& lines);

/// The include path other files must name to get `path`'s symbols:
/// ".../include/hermes/obs/metrics.hpp" -> "hermes/obs/metrics.hpp".
/// Empty when the path has no include/ segment.
std::string include_path_of(std::string_view path);

}  // namespace hermes::lint
