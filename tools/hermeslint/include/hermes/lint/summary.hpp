#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hermes::lint {

/// A symbol exported by a header at namespace scope: `ns` is the short
/// namespace tail the tree qualifies with (`obs`, `fuzz`, `lint`), `name`
/// the identifier. Collected by the graph pass from the lexed tree; the
/// pair keys the computed symbol index that replaced the hand-curated
/// direct-include maps.
struct SymbolDef {
  std::string ns;
  std::string name;
};

/// Everything a single file contributes to cross-translation-unit
/// analysis. Summaries are cheap, position-free, and cacheable by content
/// hash: the whole-tree context (unordered names, shard-owned state, the
/// symbol index, the include graph) is rebuilt from summaries alone.
struct FileSummary {
  std::string path;
  std::string module;  ///< layering module ("sim", "net", ..., "" unknown)
  bool is_header = false;
  std::vector<std::string> includes;         ///< direct #include targets
  std::vector<std::string> unordered_names;  ///< declared unordered containers
  std::vector<std::string> shard_owned;      ///< HERMES_SHARD_OWNED members
  std::vector<SymbolDef> symbols;            ///< exported namespace-scope symbols
};

/// Whole-tree facts shared by every per-file rule pass. `hash()` feeds
/// the incremental cache: per-file findings are only reusable while the
/// global context they were computed under is unchanged.
struct GlobalContext {
  std::vector<std::string> unordered_names;  ///< sorted, unique
  std::vector<std::string> shard_owned;      ///< sorted, unique
  /// "ns::name" -> include path of the defining header.
  std::map<std::string, std::string> symbol_headers;
  /// ISO date (YYYY-MM-DD) used to judge suppression expiry; empty
  /// disables the expiry check.
  std::string today;

  [[nodiscard]] std::uint64_t hash() const;
};

/// FNV-1a over a byte string; the cache's content hash.
std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace hermes::lint
