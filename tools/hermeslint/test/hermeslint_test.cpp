// Fixture-driven tests for hermeslint v2: each rule must catch its
// seeded violation, stay quiet on the clean twin, honor suppressions
// (including expiry), keep the incremental cache honest, and emit the
// documented JSON and SARIF shapes.
#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hermes/lint/cache.hpp"
#include "hermes/lint/dataflow.hpp"
#include "hermes/lint/driver.hpp"
#include "hermes/lint/graph.hpp"
#include "hermes/lint/lexer.hpp"
#include "hermes/lint/linter.hpp"
#include "hermes/lint/sarif.hpp"

namespace {

namespace fs = std::filesystem;

using hermes::lint::Lexer;
using hermes::lint::Line;
using hermes::lint::Linter;
using hermes::lint::LintResult;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

std::string read_fixture(const std::string& name) {
  return read_file(std::string(HERMESLINT_FIXTURE_DIR) + "/" + name);
}

/// Lints one fixture in isolation (fresh Linter, so unordered-container
/// names collected from other fixtures cannot leak in).
LintResult lint_fixture(const std::string& name) {
  Linter linter;
  linter.add_file(name, read_fixture(name));
  return linter.run();
}

int count_rule(const LintResult& r, const std::string& rule) {
  return static_cast<int>(std::count_if(r.findings.begin(), r.findings.end(),
                                        [&](const auto& f) { return f.rule == rule; }));
}

void write_file(const fs::path& path, const std::string& body) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

// ---------------------------------------------------------------------- lexer

TEST(LexerTest, StripsCommentsAndStringsButKeepsPositions) {
  const auto lines = Lexer::scan("int x = 1; // rand()\nconst char* s = \"new int\";\n");
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].code.substr(0, 10), "int x = 1;");
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].comment.find("rand()"), std::string::npos);
  EXPECT_EQ(lines[1].code.find("new"), std::string::npos);
  EXPECT_EQ(lines[1].raw, "const char* s = \"new int\";");
}

TEST(LexerTest, BlockCommentsSpanLines) {
  const auto lines = Lexer::scan("/* new\nrand()\n*/ int y;\n");
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0].code.find("new"), std::string::npos);
  EXPECT_EQ(lines[1].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[1].comment.find("rand()"), std::string::npos);
  EXPECT_NE(lines[2].code.find("int y;"), std::string::npos);
}

TEST(LexerTest, RawStringsAndCharLiterals) {
  const auto lines = Lexer::scan("auto r = R\"(new rand())\"; char c = 'n'; int z = 1'000;\n");
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int z = 1'000;"), std::string::npos);
}

// ------------------------------------------------------------- rule fixtures

TEST(HermeslintRules, DetRandCatchesSeededViolations) {
  const LintResult r = lint_fixture("det_rand_bad.cpp");
  EXPECT_GE(count_rule(r, "determinism.rand"), 4) << "rand, std::rand, srand, random_device";
  EXPECT_EQ(count_rule(r, "determinism.clock"), 0);
}

TEST(HermeslintRules, DetRandQuietOnCleanTwin) {
  const LintResult r = lint_fixture("det_rand_clean.cpp");
  EXPECT_EQ(count_rule(r, "determinism.rand"), 0) << to_json(r);
}

TEST(HermeslintRules, DetClockCatchesSeededViolations) {
  const LintResult r = lint_fixture("det_clock_bad.cpp");
  // system/steady/high_resolution_clock + free time() + std::time().
  EXPECT_GE(count_rule(r, "determinism.clock"), 5);
}

TEST(HermeslintRules, DetClockQuietOnCleanTwin) {
  const LintResult r = lint_fixture("det_clock_clean.cpp");
  EXPECT_EQ(count_rule(r, "determinism.clock"), 0) << to_json(r);
}

TEST(HermeslintRules, UnorderedIterCatchesSeededViolations) {
  const LintResult r = lint_fixture("det_unordered_bad.cpp");
  EXPECT_EQ(count_rule(r, "determinism.unordered-iter"), 2) << to_json(r);
}

TEST(HermeslintRules, UnorderedIterQuietOnCleanTwin) {
  const LintResult r = lint_fixture("det_unordered_clean.cpp");
  EXPECT_EQ(count_rule(r, "determinism.unordered-iter"), 0) << to_json(r);
}

TEST(HermeslintRules, UnorderedIterSeesDeclarationsAcrossFiles) {
  // The header declares the container; the .cpp iterates it. The pass is
  // global, mirroring scenario.cpp iterating a member declared in its .hpp.
  Linter linter;
  linter.add_file("holder.hpp",
                  "#pragma once\n#include <unordered_map>\n"
                  "struct H { std::unordered_map<int, int> cross_file_map_; };\n");
  linter.add_file("user.cpp",
                  "#include <vector>\n#include \"holder.hpp\"\n"
                  "int sum(const H& h) {\n  int s = 0;\n"
                  "  for (const auto& [k, v] : h.cross_file_map_) s += v;\n  return s;\n}\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "determinism.unordered-iter"), 1) << to_json(r);
  ASSERT_GE(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].file, "user.cpp");
}

TEST(HermeslintRules, HotAllocCatchesSeededViolations) {
  const LintResult r = lint_fixture("hot_alloc_bad.cpp");
  // new + make_shared + make_unique + std::function.
  EXPECT_GE(count_rule(r, "hotpath.alloc"), 4) << to_json(r);
  // The untagged cold_setup() `new` must NOT be flagged.
  const bool cold_flagged =
      std::any_of(r.findings.begin(), r.findings.end(), [](const auto& f) {
        return f.snippet.find("cold_setup") != std::string::npos;
      });
  EXPECT_FALSE(cold_flagged);
}

TEST(HermeslintRules, HotAllocQuietOnCleanTwin) {
  const LintResult r = lint_fixture("hot_alloc_clean.cpp");
  EXPECT_EQ(count_rule(r, "hotpath.alloc"), 0) << to_json(r);
  EXPECT_EQ(count_rule(r, "hotpath.container-growth"), 0) << to_json(r);
}

TEST(HermeslintRules, HotGrowthNeedsAudit) {
  const LintResult bad = lint_fixture("hot_growth_bad.cpp");
  EXPECT_EQ(count_rule(bad, "hotpath.container-growth"), 1) << to_json(bad);
  const LintResult audited = lint_fixture("hot_growth_audited.cpp");
  EXPECT_EQ(count_rule(audited, "hotpath.container-growth"), 0) << to_json(audited);
  EXPECT_TRUE(audited.findings.empty()) << to_json(audited);
}

TEST(HermeslintRules, HotFileMemberCatchesDequeAndFunctionDeclarations) {
  const LintResult r = lint_fixture("hot_file_member_bad.cpp");
  // Hook alias + queue_ member + hook_ member; the parameter and the
  // call-site use must not fire.
  EXPECT_EQ(count_rule(r, "hotpath.hot-file-member"), 3) << to_json(r);
  const bool param_flagged =
      std::any_of(r.findings.begin(), r.findings.end(), [](const auto& f) {
        return f.snippet.find("install") != std::string::npos;
      });
  EXPECT_FALSE(param_flagged) << to_json(r);
}

TEST(HermeslintRules, HotFileMemberQuietWithoutHotRegion) {
  const LintResult r = lint_fixture("hot_file_member_clean.cpp");
  EXPECT_EQ(count_rule(r, "hotpath.hot-file-member"), 0) << to_json(r);
}

TEST(HermeslintRules, HotFileMemberSuppressibleWithReason) {
  Linter linter;
  linter.add_file("hot_with_cold_member.cpp",
                  "#include <functional>\n"
                  "struct S {\n"
                  "  // HERMES_HOT\n"
                  "  void fast() {}\n"
                  "  // hermeslint:allow(hotpath.hot-file-member) pull-model stats, read "
                  "once per report\n"
                  "  std::function<int()> reader_;\n"
                  "};\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "hotpath.hot-file-member"), 0) << to_json(r);
  EXPECT_EQ(r.suppressed.size(), 1u) << to_json(r);
}

TEST(HermeslintRules, FileScopeHotTagCoversWholeFile) {
  Linter linter;
  linter.add_file("hot_file.cpp",
                  "// HERMES_HOT\n#include <memory>\n"
                  "int* a() { return new int(1); }\n"
                  "auto b() { return std::make_unique<int>(2); }\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "hotpath.alloc"), 2) << to_json(r);
}

TEST(HermeslintRules, HeaderHygieneCatchesSeededViolations) {
  const LintResult r = lint_fixture("hdr_bad.hpp");
  EXPECT_EQ(count_rule(r, "header.pragma-once"), 1) << to_json(r);
  EXPECT_EQ(count_rule(r, "header.using-namespace"), 1) << to_json(r);
  // std::vector and std::unique_ptr lack direct includes; std::map has one.
  EXPECT_EQ(count_rule(r, "header.direct-include"), 2) << to_json(r);
}

TEST(HermeslintRules, HeaderHygieneQuietOnCleanTwin) {
  const LintResult r = lint_fixture("hdr_clean.hpp");
  EXPECT_TRUE(r.findings.empty()) << to_json(r);
}

TEST(HermeslintRules, PodRecordCatchesHeapOwningMembers) {
  const LintResult r = lint_fixture("obs_record_bad.cpp");
  // std::string + std::vector + std::unique_ptr inside the tagged struct.
  EXPECT_EQ(count_rule(r, "obs.pod-record"), 3) << to_json(r);
  // The untagged ColdConfig struct must NOT be flagged.
  const bool cold_flagged =
      std::any_of(r.findings.begin(), r.findings.end(), [](const auto& f) {
        return f.rule == "obs.pod-record" && f.line > 14;
      });
  EXPECT_FALSE(cold_flagged) << to_json(r);
}

TEST(HermeslintRules, PodRecordQuietOnCleanTwin) {
  const LintResult r = lint_fixture("obs_record_clean.cpp");
  EXPECT_TRUE(r.findings.empty()) << to_json(r);
}

// ------------------------------------------------------------ sim.shard-race

TEST(HermeslintRules, ShardRaceEscapeCatchesPortHostDerefInTaggedRegion) {
  const LintResult r = lint_fixture("shard_race_escape_bad.cpp");
  // remote_port-> (x2), (*remote_host). — all inside the tagged region.
  EXPECT_EQ(count_rule(r, "sim.shard-race"), 3) << to_json(r);
  // The untagged local_touch() dereference must NOT be flagged.
  const bool cold_flagged =
      std::any_of(r.findings.begin(), r.findings.end(), [](const auto& f) {
        return f.rule == "sim.shard-race" && f.line > 18;
      });
  EXPECT_FALSE(cold_flagged) << to_json(r);
}

TEST(HermeslintRules, ShardRaceEscapeQuietOnMailboxTwin) {
  const LintResult r = lint_fixture("shard_race_escape_clean.cpp");
  EXPECT_EQ(count_rule(r, "sim.shard-race"), 0) << to_json(r);
}

TEST(HermeslintRules, ShardRaceIgnoresDeclarations) {
  Linter linter;
  linter.add_file("decl.cpp",
                  "struct Port { int d; };\n"
                  "// HERMES_SHARDED\n"
                  "void f() {\n"
                  "  Port* p = nullptr;\n"  // a declarator, not a dereference
                  "  (void)p;\n"
                  "}\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "sim.shard-race"), 0) << to_json(r);
}

TEST(HermeslintRules, ShardRaceIndexingNeedsProvenance) {
  const LintResult r = lint_fixture("shard_race_index_bad.cpp");
  // absorb(flow_id) + the literal-bound loop; the two provenanced
  // accesses stay quiet.
  EXPECT_EQ(count_rule(r, "sim.shard-race"), 2) << to_json(r);
  for (const auto& f : r.findings) {
    if (f.rule != "sim.shard-race") continue;
    EXPECT_NE(f.message.find("HERMES_SHARD_OWNED"), std::string::npos) << f.message;
  }
}

TEST(HermeslintRules, ShardRaceIndexingQuietOnProvenancedTwin) {
  const LintResult r = lint_fixture("shard_race_index_clean.cpp");
  EXPECT_EQ(count_rule(r, "sim.shard-race"), 0) << to_json(r);
}

// -------------------------------------------------------- core.arena-lifetime

TEST(HermeslintRules, ArenaLifetimeCatchesUseAfterFreeAndBarrierCaching) {
  const LintResult r = lint_fixture("arena_lifetime_bad.cpp");
  // alias-after-free + handle-after-reset + push_back cache + member
  // assignment cache.
  EXPECT_EQ(count_rule(r, "core.arena-lifetime"), 4) << to_json(r);
}

TEST(HermeslintRules, ArenaLifetimeQuietOnCleanTwin) {
  const LintResult r = lint_fixture("arena_lifetime_clean.cpp");
  EXPECT_EQ(count_rule(r, "core.arena-lifetime"), 0) << to_json(r);
}

// ------------------------------------------------------------ sim.float-order

TEST(HermeslintRules, FloatOrderCatchesHashOrderAccumulation) {
  const LintResult r = lint_fixture("float_order_bad.cpp");
  // += in the range-for + std::accumulate with a floating seed.
  EXPECT_EQ(count_rule(r, "sim.float-order"), 2) << to_json(r);
}

TEST(HermeslintRules, FloatOrderQuietOnSortedTwin) {
  const LintResult r = lint_fixture("float_order_clean.cpp");
  EXPECT_EQ(count_rule(r, "sim.float-order"), 0) << to_json(r);
}

// ------------------------------------------------------------- arch.layering

TEST(HermeslintRules, LayeringFlagsUpRankInclude) {
  Linter linter;
  linter.add_file("src/net/layering_bad.cpp", read_fixture("layering_bad.cpp"));
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "arch.layering"), 1) << to_json(r);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_NE(r.findings[0].message.find("'net'"), std::string::npos) << r.findings[0].message;
  EXPECT_NE(r.findings[0].message.find("'harness'"), std::string::npos)
      << r.findings[0].message;
}

TEST(HermeslintRules, LayeringQuietOnDownRankIncludes) {
  Linter linter;
  linter.add_file("src/net/layering_clean.cpp", read_fixture("layering_clean.cpp"));
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "arch.layering"), 0) << to_json(r);
}

TEST(HermeslintRules, LayeringNamesTheLegalDirection) {
  Linter linter;
  linter.add_file("src/net/bad_edge.cpp", "#include \"hermes/lb/letflow.hpp\"\nint x;\n");
  const LintResult r = linter.run();
  ASSERT_EQ(count_rule(r, "arch.layering"), 1) << to_json(r);
  // net (1) -> lb (2) is illegal; the legal direction is lb -> net.
  EXPECT_NE(r.findings[0].message.find("lb -> net"), std::string::npos)
      << r.findings[0].message;
}

// ------------------------------------------------------- computed symbol index

TEST(HermeslintRules, ObsSymbolsNeedDirectIncludes) {
  // The index is computed from the lexed headers added to the run, not a
  // hand-curated table: FlightRecorder and MetricsRegistry resolve to the
  // headers that define them.
  Linter linter;
  linter.add_file("src/obs/include/hermes/obs/flight_recorder.hpp",
                  "#pragma once\nnamespace hermes::obs {\nclass FlightRecorder {};\n}\n");
  linter.add_file("src/obs/include/hermes/obs/metrics.hpp",
                  "#pragma once\nnamespace hermes::obs {\nclass MetricsRegistry {};\n}\n");
  linter.add_file("user.hpp",
                  "#pragma once\n#include \"hermes/obs/flight_recorder.hpp\"\n"
                  "struct S {\n"
                  "  obs::FlightRecorder* rec = nullptr;\n"          // included: quiet
                  "  void wire(hermes::obs::MetricsRegistry& m);\n"  // missing metrics.hpp
                  "};\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "header.direct-include"), 1) << to_json(r);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_NE(r.findings[0].message.find("hermes/obs/metrics.hpp"), std::string::npos)
      << to_json(r);
}

TEST(HermeslintRules, DefiningHeaderDoesNotNeedItsOwnInclude) {
  Linter linter;
  linter.add_file("src/obs/include/hermes/obs/metrics.hpp",
                  "#pragma once\nnamespace hermes::obs {\nclass MetricsRegistry {};\n"
                  "inline obs::MetricsRegistry* self();\n}\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "header.direct-include"), 0) << to_json(r);
}

TEST(HermeslintRules, UsingNamespaceAllowedInSourceFiles) {
  Linter linter;
  linter.add_file("impl.cpp", "#include <vector>\nusing namespace std;\nvector<int> v;\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "header.using-namespace"), 0) << to_json(r);
}

// ----------------------------------------------------------------- graph unit

TEST(HermeslintGraph, ModuleOfPathAndRanks) {
  using hermes::lint::layer_rank;
  using hermes::lint::module_of_path;
  EXPECT_EQ(module_of_path("src/net/port.cpp"), "net");
  EXPECT_EQ(module_of_path("src/harness/include/hermes/harness/scenario.hpp"), "harness");
  EXPECT_EQ(module_of_path("tools/hermeslint/src/linter.cpp"), "lint");
  EXPECT_EQ(module_of_path("tools/hermesfuzz/main.cpp"), "tools");
  EXPECT_EQ(module_of_path("bench/bench_core_micro.cpp"), "bench");
  EXPECT_EQ(module_of_path("random/other.cpp"), "");
  EXPECT_LT(layer_rank("sim"), layer_rank("net"));
  EXPECT_LT(layer_rank("net"), layer_rank("lb"));
  EXPECT_LT(layer_rank("engine"), layer_rank("lb"));
  EXPECT_LT(layer_rank("lb"), layer_rank("stats"));
  EXPECT_LT(layer_rank("stats"), layer_rank("harness"));
  EXPECT_LT(layer_rank("harness"), layer_rank("bench"));
  EXPECT_EQ(layer_rank("nonexistent"), -1);
}

TEST(HermeslintGraph, LegalPathDescendsInRank) {
  using hermes::lint::legal_path;
  const auto p = legal_path("harness", "net");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], "harness");
  EXPECT_EQ(p[1], "net");
  EXPECT_TRUE(legal_path("net", "lb").empty());   // would ascend
  EXPECT_TRUE(legal_path("sim", "obs").empty());  // same rank
}

TEST(HermeslintGraph, ExportedSymbolsAndIncludePaths) {
  const auto lines = Lexer::scan(
      "#pragma once\n"
      "namespace hermes::obs {\n"
      "class FlightRecorder { public: void dump(); };\n"
      "struct TraceRecord { int id; };\n"
      "using RecordId = unsigned;\n"
      "}\n");
  const auto syms =
      hermes::lint::exported_symbols("src/obs/include/hermes/obs/flight_recorder.hpp", lines);
  std::set<std::string> names;
  for (const auto& s : syms) names.insert(s.ns + "::" + s.name);
  EXPECT_TRUE(names.count("obs::FlightRecorder")) << to_json(LintResult{});
  EXPECT_TRUE(names.count("obs::TraceRecord"));
  EXPECT_TRUE(names.count("obs::RecordId"));
  // Class members must not be exported.
  EXPECT_FALSE(names.count("obs::dump"));
  EXPECT_EQ(hermes::lint::include_path_of("src/obs/include/hermes/obs/flight_recorder.hpp"),
            "hermes/obs/flight_recorder.hpp");
  EXPECT_EQ(hermes::lint::include_path_of("src/obs/flight_recorder.cpp"), "");
}

// -------------------------------------------------------------- dataflow unit

TEST(HermeslintDataflow, ExtractFunctionsFindsBodiesAndMethods) {
  const auto lines = Lexer::scan(
      "int free_fn(int a) {\n  return a + 1;\n}\n"
      "struct S {\n"
      "  int method() { return 2; }\n"
      "};\n");
  const auto fns = hermes::lint::extract_functions(lines);
  std::set<std::string> names;
  for (const auto& f : fns) names.insert(f.name);
  EXPECT_TRUE(names.count("free_fn"));
  EXPECT_TRUE(names.count("method"));
}

TEST(HermeslintDataflow, ShardProvenanceFollowsDefChainNotNames) {
  const auto lines = Lexer::scan(
      "void f(int shard_in) {\n"
      "  int x = shard_in * 2;\n"
      "  int y = 7;\n"
      "  int shard = 0;\n"  // shard-named but locally defined as a constant
      "}\n");
  const auto fns = hermes::lint::extract_functions(lines);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_TRUE(hermes::lint::has_shard_provenance(fns[0], "x"));
  EXPECT_FALSE(hermes::lint::has_shard_provenance(fns[0], "y"));
  // A local def of `shard = 0` proves nothing, name notwithstanding.
  EXPECT_FALSE(hermes::lint::has_shard_provenance(fns[0], "shard"));
  // An undefined (parameter) name that names the shard is accepted.
  EXPECT_TRUE(hermes::lint::has_shard_provenance(fns[0], "shard_in"));
}

// -------------------------------------------------------------- suppressions

TEST(HermeslintSuppression, WellFormedAllowSilencesAndIsRecorded) {
  const LintResult r = lint_fixture("suppress_ok.cpp");
  EXPECT_TRUE(r.findings.empty()) << to_json(r);
  ASSERT_EQ(r.suppressed.size(), 3u);
  for (const auto& s : r.suppressed) {
    EXPECT_FALSE(s.reason.empty()) << s.file << ":" << s.line;
  }
  EXPECT_EQ(r.suppressed[0].rule, "determinism.clock");
}

TEST(HermeslintSuppression, MalformedDirectivesAreFindings) {
  const LintResult r = lint_fixture("suppress_bad.cpp");
  // reasonless allow + unknown rule + unknown verb.
  EXPECT_EQ(count_rule(r, "meta.suppression"), 3) << to_json(r);
  // The allow naming a nonexistent rule must not silence the real finding.
  EXPECT_EQ(count_rule(r, "determinism.rand"), 1) << to_json(r);
}

TEST(HermeslintSuppression, SameLineAndPrecedingLineBothWork) {
  Linter linter;
  linter.add_file(
      "s.cpp",
      "#include <cstdlib>\n"
      "// hermeslint:allow(determinism.rand) seeding the adversary model\n"
      "int a = rand();\n"
      "int b = rand();  // hermeslint:allow(determinism.rand) same-line form\n");
  const LintResult r = linter.run();
  EXPECT_TRUE(r.findings.empty()) << to_json(r);
  EXPECT_EQ(r.suppressed.size(), 2u);
}

TEST(HermeslintSuppression, ProseMentionOfToolNameIsNotADirective) {
  Linter linter;
  linter.add_file("p.cpp", "// notes for hermeslint: each rule has a fixture\nint x = 1;\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "meta.suppression"), 0) << to_json(r);
}

TEST(HermeslintSuppression, DuplicateAllowIsAFinding) {
  Linter linter;
  linter.add_file("d.cpp",
                  "#include <cstdlib>\n"
                  "// hermeslint:allow(determinism.rand) first reason\n"
                  "// hermeslint:allow(determinism.rand) second reason, same target\n"
                  "int a = rand();\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "meta.suppression"), 1) << to_json(r);
  EXPECT_EQ(count_rule(r, "determinism.rand"), 0) << to_json(r);
}

TEST(HermeslintSuppression, FutureExpiryIsRecordedOnTheSuppression) {
  Linter linter;
  linter.set_today("2026-08-09");
  linter.add_file("e.cpp",
                  "#include <cstdlib>\n"
                  "// hermeslint:allow(determinism.rand) legacy seed path, "
                  "expires(2099-01-01)\n"
                  "int a = rand();\n");
  const LintResult r = linter.run();
  EXPECT_TRUE(r.findings.empty()) << to_json(r);
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].expires, "2099-01-01");
}

TEST(HermeslintSuppression, ExpiredAllowIsAFinding) {
  Linter linter;
  linter.set_today("2026-08-09");
  linter.add_file("e.cpp",
                  "#include <cstdlib>\n"
                  "// hermeslint:allow(determinism.rand) temporary shim, expires(2024-01-01)\n"
                  "int a = rand();\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "meta.suppression"), 1) << to_json(r);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_NE(r.findings[0].message.find("expired"), std::string::npos) << to_json(r);
}

TEST(HermeslintSuppression, MalformedExpiryIsAFinding) {
  Linter linter;
  linter.set_today("2026-08-09");
  linter.add_file("e.cpp",
                  "#include <cstdlib>\n"
                  "// hermeslint:allow(determinism.rand) shim, expires(01/02/2026)\n"
                  "int a = rand();\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "meta.suppression"), 1) << to_json(r);
}

// ---------------------------------------------------------------------- JSON

TEST(HermeslintJson, SchemaFieldsPresent) {
  const LintResult r = lint_fixture("hdr_bad.hpp");
  const std::string j = to_json(r);
  for (const char* key :
       {"\"tool\": \"hermeslint\"", "\"schema_version\": 2", "\"files_scanned\": 1",
        "\"clean\": false", "\"findings\": [", "\"suppressed\": [", "\"file\": ", "\"line\": ",
        "\"rule\": ", "\"message\": ", "\"snippet\": "}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key << " in\n" << j;
  }
}

TEST(HermeslintJson, TimingBlockPresentWhenProvided) {
  const LintResult r = lint_fixture("hdr_clean.hpp");
  hermes::lint::LintTiming t;
  t.wall_ms = 12.5;
  t.files_reused = 3;
  t.files_linted = 4;
  const std::string j = to_json(r, &t);
  EXPECT_NE(j.find("\"timing\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"files_reused\": 3"), std::string::npos) << j;
  EXPECT_NE(j.find("\"files_linted\": 4"), std::string::npos) << j;
  EXPECT_EQ(to_json(r).find("\"timing\""), std::string::npos);
}

TEST(HermeslintJson, CleanResultSaysClean) {
  const LintResult r = lint_fixture("hdr_clean.hpp");
  const std::string j = to_json(r);
  EXPECT_NE(j.find("\"clean\": true"), std::string::npos) << j;
  EXPECT_NE(j.find("\"findings\": []"), std::string::npos) << j;
}

TEST(HermeslintJson, EscapesQuotesAndBackslashes) {
  LintResult r;
  r.findings.push_back({"a\"b.cpp", 1, "determinism.rand", "msg with \\ and \"quote\"", "x"});
  const std::string j = to_json(r);
  EXPECT_NE(j.find("a\\\"b.cpp"), std::string::npos) << j;
  EXPECT_NE(j.find("msg with \\\\ and \\\"quote\\\""), std::string::npos) << j;
}

// --------------------------------------------------------------------- SARIF

TEST(HermeslintSarif, ShapeMatchesCodeScanningExpectations) {
  LintResult r;
  r.findings.push_back({"src/net/port.cpp", 42, "sim.shard-race", "boom", "snippet"});
  r.files_scanned = 1;
  const std::string s = hermes::lint::to_sarif(r);
  for (const char* key :
       {"\"$schema\"", "sarif-schema-2.1.0.json", "\"version\": \"2.1.0\"", "\"runs\"",
        "\"driver\"", "\"name\": \"hermeslint\"", "\"rules\"", "\"ruleId\": \"sim.shard-race\"",
        "\"ruleIndex\"", "\"level\": \"error\"", "\"physicalLocation\"",
        "\"uri\": \"src/net/port.cpp\"", "\"startLine\": 42", "\"uriBaseId\": \"SRCROOT\""}) {
    EXPECT_NE(s.find(key), std::string::npos) << "missing " << key << " in\n" << s;
  }
  // Every catalogue rule is described, findings or not.
  for (const auto& rule : hermes::lint::rule_catalogue()) {
    EXPECT_NE(s.find("\"id\": \"" + std::string(rule.id) + "\""), std::string::npos)
        << rule.id;
  }
}

TEST(HermeslintSarif, SuppressionsCarryInSourceKind) {
  LintResult r;
  r.suppressed.push_back(
      {"bench/b.cpp", 7, "determinism.clock", "bench measures wall time", ""});
  const std::string s = hermes::lint::to_sarif(r);
  EXPECT_NE(s.find("\"suppressions\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"kind\": \"inSource\""), std::string::npos) << s;
  EXPECT_NE(s.find("bench measures wall time"), std::string::npos) << s;
}

// --------------------------------------------------------------- cache/driver

TEST(HermeslintCache, RoundTripsAndRejectsMalformed) {
  namespace hl = hermes::lint;
  const fs::path dir = fs::temp_directory_path() / "hermeslint_cache_test";
  fs::create_directories(dir);
  const std::string path = (dir / "cache.txt").string();

  hl::Cache c;
  c.global_hash = 0xabcdef0123456789ULL;
  c.rules_version = 42;
  hl::CachedFile f;
  f.content_hash = 7;
  f.summary.path = "a|b.cpp";  // exercises field escaping
  f.summary.module = "net";
  f.summary.is_header = false;
  f.summary.includes = {"vector"};
  f.summary.unordered_names = {"m_"};
  f.summary.shard_owned = {"states_"};
  f.summary.symbols = {{"obs", "FlightRecorder"}};
  f.findings.push_back({"a|b.cpp", 3, "determinism.rand", "msg\nline2", "snip"});
  f.suppressions.push_back({"a|b.cpp", 9, "determinism.clock", "why", "2099-01-01"});
  c.files["a|b.cpp"] = f;
  ASSERT_TRUE(hl::save_cache(path, c));

  const hl::Cache r = hl::load_cache(path);
  EXPECT_EQ(r.global_hash, c.global_hash);
  EXPECT_EQ(r.rules_version, c.rules_version);
  ASSERT_EQ(r.files.size(), 1u);
  const hl::CachedFile& g = r.files.at("a|b.cpp");
  EXPECT_EQ(g.content_hash, 7u);
  EXPECT_EQ(g.summary.module, "net");
  ASSERT_EQ(g.summary.symbols.size(), 1u);
  EXPECT_EQ(g.summary.symbols[0].name, "FlightRecorder");
  ASSERT_EQ(g.findings.size(), 1u);
  EXPECT_EQ(g.findings[0].message, "msg\nline2");
  ASSERT_EQ(g.suppressions.size(), 1u);
  EXPECT_EQ(g.suppressions[0].expires, "2099-01-01");

  // Any malformation discards the whole cache.
  std::ofstream(path, std::ios::app) << "garbage record here\n";
  EXPECT_TRUE(hl::load_cache(path).files.empty());
  EXPECT_TRUE(hl::load_cache((dir / "missing.txt").string()).files.empty());
}

TEST(HermeslintDriver, WarmRunReusesCacheAndInvalidatesOnEdit) {
  namespace hl = hermes::lint;
  const fs::path root = fs::temp_directory_path() / "hermeslint_drive_test";
  fs::remove_all(root);
  fs::create_directories(root);
  write_file(root / "a.cpp", "#include <cstdlib>\nint a = rand();\n");

  hl::DriveOptions o;
  o.root = root.string();
  o.paths = {"a.cpp"};
  o.cache_path = (root / "lint.cache").string();

  const hl::DriveResult r1 = hl::drive(o);
  EXPECT_EQ(r1.timing.files_linted, 1);
  EXPECT_EQ(r1.timing.files_reused, 0);
  EXPECT_EQ(count_rule(r1.result, "determinism.rand"), 1) << to_json(r1.result);

  const hl::DriveResult r2 = hl::drive(o);
  EXPECT_EQ(r2.timing.files_linted, 0);
  EXPECT_EQ(r2.timing.files_reused, 1);
  EXPECT_EQ(count_rule(r2.result, "determinism.rand"), 1) << to_json(r2.result);

  write_file(root / "a.cpp", "int a = 4;\n");
  const hl::DriveResult r3 = hl::drive(o);
  EXPECT_EQ(r3.timing.files_linted, 1);
  EXPECT_EQ(r3.timing.files_reused, 0);
  EXPECT_TRUE(r3.result.findings.empty()) << to_json(r3.result);
  fs::remove_all(root);
}

TEST(HermeslintDriver, CrossFileContextChangeInvalidatesUntouchedFiles) {
  namespace hl = hermes::lint;
  const fs::path root = fs::temp_directory_path() / "hermeslint_ctx_test";
  fs::remove_all(root);
  fs::create_directories(root);
  // a.cpp iterates a container whose declaration does not exist yet.
  write_file(root / "a.cpp",
             "struct H;\n"
             "int go(const H& h);\n"
             "template <typename H2>\n"
             "int sum(const H2& h) {\n"
             "  int s = 0;\n"
             "  for (const auto& kv : h.weird_) {\n"
             "    s += kv.second;\n"
             "  }\n"
             "  return s;\n"
             "}\n");

  hl::DriveOptions o;
  o.root = root.string();
  o.paths = {"."};
  o.cache_path = (root / "lint.cache").string();

  const hl::DriveResult r1 = hl::drive(o);
  EXPECT_EQ(count_rule(r1.result, "determinism.unordered-iter"), 0) << to_json(r1.result);

  // Introduce the declaration in a *different* file: a.cpp is untouched
  // but its cached findings are now stale (the global context changed).
  write_file(root / "b.hpp",
             "#pragma once\n#include <unordered_map>\n"
             "struct H { std::unordered_map<int, int> weird_; };\n");
  const hl::DriveResult r2 = hl::drive(o);
  EXPECT_EQ(count_rule(r2.result, "determinism.unordered-iter"), 1) << to_json(r2.result);
  EXPECT_EQ(r2.timing.files_reused, 0) << "context change must re-lint everything";
  fs::remove_all(root);
}

// ------------------------------------------------------------ guard mutations

namespace mutation {

std::string src_file(const std::string& rel) {
  return read_file(std::string(HERMESLINT_SOURCE_ROOT) + "/" + rel);
}

LintResult lint_real_shard_sources(const std::string& cpp_content) {
  Linter linter;
  linter.add_file("src/harness/include/hermes/harness/sharded_scenario.hpp",
                  src_file("src/harness/include/hermes/harness/sharded_scenario.hpp"));
  linter.add_file("src/net/include/hermes/net/fattree.hpp",
                  src_file("src/net/include/hermes/net/fattree.hpp"));
  linter.add_file("src/harness/sharded_scenario.cpp", cpp_content);
  return linter.run();
}

std::string replace_all(std::string text, const std::string& from, const std::string& to,
                        int* count) {
  *count = 0;
  for (std::size_t pos = text.find(from); pos != std::string::npos;
       pos = text.find(from, pos + to.size())) {
    text.replace(pos, from.size(), to);
    ++*count;
  }
  return text;
}

}  // namespace mutation

TEST(HermeslintGuardMutation, RealShardSourcesAreCleanAtBaseline) {
  const std::string cpp = mutation::src_file("src/harness/sharded_scenario.cpp");
  const LintResult r = mutation::lint_real_shard_sources(cpp);
  EXPECT_EQ(count_rule(r, "sim.shard-race"), 0) << to_json(r);
  EXPECT_EQ(count_rule(r, "core.arena-lifetime"), 0) << to_json(r);
}

TEST(HermeslintGuardMutation, DroppingShardOfHostRoutingIsCaught) {
  const std::string cpp = mutation::src_file("src/harness/sharded_scenario.cpp");
  int n = 0;
  const std::string mutated = mutation::replace_all(
      cpp, "const int shard = fabric_->shard_of_host(f.src);", "const int shard = 0;", &n);
  ASSERT_GE(n, 1) << "guard site moved; update the mutation";
  const LintResult r = mutation::lint_real_shard_sources(mutated);
  EXPECT_GE(count_rule(r, "sim.shard-race"), 1) << to_json(r);
}

TEST(HermeslintGuardMutation, ReplacingNumShardsBoundIsCaught) {
  const std::string cpp = mutation::src_file("src/harness/sharded_scenario.cpp");
  int n = 0;
  const std::string mutated = mutation::replace_all(cpp, "s < num_shards()", "s < 4", &n);
  ASSERT_GE(n, 1) << "guard site moved; update the mutation";
  const LintResult r = mutation::lint_real_shard_sources(mutated);
  EXPECT_GE(count_rule(r, "sim.shard-race"), 1) << to_json(r);
}

TEST(HermeslintGuardMutation, HardcodingShardStateIndexIsCaught) {
  const std::string cpp = mutation::src_file("src/harness/sharded_scenario.cpp");
  int n = 0;
  const std::string mutated = mutation::replace_all(
      cpp, "shard_states_[static_cast<std::size_t>(shard)]", "shard_states_[0]", &n);
  ASSERT_GE(n, 1) << "guard site moved; update the mutation";
  const LintResult r = mutation::lint_real_shard_sources(mutated);
  EXPECT_GE(count_rule(r, "sim.shard-race"), 1) << to_json(r);
}

// ------------------------------------------------------------------ catalogue

TEST(HermeslintCatalogue, KnownRulesRoundTrip) {
  for (const auto& rule : hermes::lint::rule_catalogue()) {
    EXPECT_TRUE(hermes::lint::is_known_rule(rule.id));
  }
  EXPECT_FALSE(hermes::lint::is_known_rule("no.such.rule"));
  EXPECT_FALSE(hermes::lint::is_known_rule(""));
  EXPECT_FALSE(hermes::lint::is_known_rule("sim.shard-boundary")) << "superseded in v2";
  EXPECT_TRUE(hermes::lint::is_known_rule("sim.shard-race"));
  EXPECT_TRUE(hermes::lint::is_known_rule("core.arena-lifetime"));
  EXPECT_TRUE(hermes::lint::is_known_rule("sim.float-order"));
  EXPECT_TRUE(hermes::lint::is_known_rule("arch.layering"));
  EXPECT_NE(hermes::lint::rules_version(), 0u);
}

}  // namespace
