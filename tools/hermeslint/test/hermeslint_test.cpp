// Fixture-driven tests for hermeslint: each rule must catch its seeded
// violation, stay quiet on the clean twin, honor suppressions, and emit
// the documented JSON schema.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hermes/lint/lexer.hpp"
#include "hermes/lint/linter.hpp"

namespace {

using hermes::lint::Lexer;
using hermes::lint::Line;
using hermes::lint::Linter;
using hermes::lint::LintResult;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(HERMESLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

/// Lints one fixture in isolation (fresh Linter, so unordered-container
/// names collected from other fixtures cannot leak in).
LintResult lint_fixture(const std::string& name) {
  Linter linter;
  linter.add_file(name, read_fixture(name));
  return linter.run();
}

int count_rule(const LintResult& r, const std::string& rule) {
  return static_cast<int>(std::count_if(r.findings.begin(), r.findings.end(),
                                        [&](const auto& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------------- lexer

TEST(LexerTest, StripsCommentsAndStringsButKeepsPositions) {
  const auto lines = Lexer::scan("int x = 1; // rand()\nconst char* s = \"new int\";\n");
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].code.substr(0, 10), "int x = 1;");
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].comment.find("rand()"), std::string::npos);
  EXPECT_EQ(lines[1].code.find("new"), std::string::npos);
  EXPECT_EQ(lines[1].raw, "const char* s = \"new int\";");
}

TEST(LexerTest, BlockCommentsSpanLines) {
  const auto lines = Lexer::scan("/* new\nrand()\n*/ int y;\n");
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0].code.find("new"), std::string::npos);
  EXPECT_EQ(lines[1].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[1].comment.find("rand()"), std::string::npos);
  EXPECT_NE(lines[2].code.find("int y;"), std::string::npos);
}

TEST(LexerTest, RawStringsAndCharLiterals) {
  const auto lines = Lexer::scan("auto r = R\"(new rand())\"; char c = 'n'; int z = 1'000;\n");
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int z = 1'000;"), std::string::npos);
}

// ------------------------------------------------------------- rule fixtures

TEST(HermeslintRules, DetRandCatchesSeededViolations) {
  const LintResult r = lint_fixture("det_rand_bad.cpp");
  EXPECT_GE(count_rule(r, "determinism.rand"), 4) << "rand, std::rand, srand, random_device";
  EXPECT_EQ(count_rule(r, "determinism.clock"), 0);
}

TEST(HermeslintRules, DetRandQuietOnCleanTwin) {
  const LintResult r = lint_fixture("det_rand_clean.cpp");
  EXPECT_EQ(count_rule(r, "determinism.rand"), 0) << to_json(r);
}

TEST(HermeslintRules, DetClockCatchesSeededViolations) {
  const LintResult r = lint_fixture("det_clock_bad.cpp");
  // system/steady/high_resolution_clock + free time() + std::time().
  EXPECT_GE(count_rule(r, "determinism.clock"), 5);
}

TEST(HermeslintRules, DetClockQuietOnCleanTwin) {
  const LintResult r = lint_fixture("det_clock_clean.cpp");
  EXPECT_EQ(count_rule(r, "determinism.clock"), 0) << to_json(r);
}

TEST(HermeslintRules, UnorderedIterCatchesSeededViolations) {
  const LintResult r = lint_fixture("det_unordered_bad.cpp");
  EXPECT_EQ(count_rule(r, "determinism.unordered-iter"), 2) << to_json(r);
}

TEST(HermeslintRules, UnorderedIterQuietOnCleanTwin) {
  const LintResult r = lint_fixture("det_unordered_clean.cpp");
  EXPECT_EQ(count_rule(r, "determinism.unordered-iter"), 0) << to_json(r);
}

TEST(HermeslintRules, UnorderedIterSeesDeclarationsAcrossFiles) {
  // The header declares the container; the .cpp iterates it. The pass is
  // global, mirroring scenario.cpp iterating a member declared in its .hpp.
  Linter linter;
  linter.add_file("holder.hpp",
                  "#pragma once\n#include <unordered_map>\n"
                  "struct H { std::unordered_map<int, int> cross_file_map_; };\n");
  linter.add_file("user.cpp",
                  "#include <vector>\n#include \"holder.hpp\"\n"
                  "int sum(const H& h) {\n  int s = 0;\n"
                  "  for (const auto& [k, v] : h.cross_file_map_) s += v;\n  return s;\n}\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "determinism.unordered-iter"), 1) << to_json(r);
  ASSERT_GE(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].file, "user.cpp");
}

TEST(HermeslintRules, HotAllocCatchesSeededViolations) {
  const LintResult r = lint_fixture("hot_alloc_bad.cpp");
  // new + make_shared + make_unique + std::function.
  EXPECT_GE(count_rule(r, "hotpath.alloc"), 4) << to_json(r);
  // The untagged cold_setup() `new` must NOT be flagged.
  const bool cold_flagged =
      std::any_of(r.findings.begin(), r.findings.end(), [](const auto& f) {
        return f.snippet.find("cold_setup") != std::string::npos;
      });
  EXPECT_FALSE(cold_flagged);
}

TEST(HermeslintRules, HotAllocQuietOnCleanTwin) {
  const LintResult r = lint_fixture("hot_alloc_clean.cpp");
  EXPECT_EQ(count_rule(r, "hotpath.alloc"), 0) << to_json(r);
  EXPECT_EQ(count_rule(r, "hotpath.container-growth"), 0) << to_json(r);
}

TEST(HermeslintRules, HotGrowthNeedsAudit) {
  const LintResult bad = lint_fixture("hot_growth_bad.cpp");
  EXPECT_EQ(count_rule(bad, "hotpath.container-growth"), 1) << to_json(bad);
  const LintResult audited = lint_fixture("hot_growth_audited.cpp");
  EXPECT_EQ(count_rule(audited, "hotpath.container-growth"), 0) << to_json(audited);
  EXPECT_TRUE(audited.findings.empty()) << to_json(audited);
}

TEST(HermeslintRules, HotFileMemberCatchesDequeAndFunctionDeclarations) {
  const LintResult r = lint_fixture("hot_file_member_bad.cpp");
  // Hook alias + queue_ member + hook_ member; the parameter and the
  // call-site use must not fire.
  EXPECT_EQ(count_rule(r, "hotpath.hot-file-member"), 3) << to_json(r);
  const bool param_flagged =
      std::any_of(r.findings.begin(), r.findings.end(), [](const auto& f) {
        return f.snippet.find("install") != std::string::npos;
      });
  EXPECT_FALSE(param_flagged) << to_json(r);
}

TEST(HermeslintRules, HotFileMemberQuietWithoutHotRegion) {
  const LintResult r = lint_fixture("hot_file_member_clean.cpp");
  EXPECT_EQ(count_rule(r, "hotpath.hot-file-member"), 0) << to_json(r);
}

TEST(HermeslintRules, HotFileMemberSuppressibleWithReason) {
  Linter linter;
  linter.add_file("hot_with_cold_member.cpp",
                  "#include <functional>\n"
                  "struct S {\n"
                  "  // HERMES_HOT\n"
                  "  void fast() {}\n"
                  "  // hermeslint:allow(hotpath.hot-file-member) pull-model stats, read "
                  "once per report\n"
                  "  std::function<int()> reader_;\n"
                  "};\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "hotpath.hot-file-member"), 0) << to_json(r);
  EXPECT_EQ(r.suppressed.size(), 1u) << to_json(r);
}

TEST(HermeslintRules, FileScopeHotTagCoversWholeFile) {
  Linter linter;
  linter.add_file("hot_file.cpp",
                  "// HERMES_HOT\n#include <memory>\n"
                  "int* a() { return new int(1); }\n"
                  "auto b() { return std::make_unique<int>(2); }\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "hotpath.alloc"), 2) << to_json(r);
}

TEST(HermeslintRules, HeaderHygieneCatchesSeededViolations) {
  const LintResult r = lint_fixture("hdr_bad.hpp");
  EXPECT_EQ(count_rule(r, "header.pragma-once"), 1) << to_json(r);
  EXPECT_EQ(count_rule(r, "header.using-namespace"), 1) << to_json(r);
  // std::vector and std::unique_ptr lack direct includes; std::map has one.
  EXPECT_EQ(count_rule(r, "header.direct-include"), 2) << to_json(r);
}

TEST(HermeslintRules, HeaderHygieneQuietOnCleanTwin) {
  const LintResult r = lint_fixture("hdr_clean.hpp");
  EXPECT_TRUE(r.findings.empty()) << to_json(r);
}

TEST(HermeslintRules, PodRecordCatchesHeapOwningMembers) {
  const LintResult r = lint_fixture("obs_record_bad.cpp");
  // std::string + std::vector + std::unique_ptr inside the tagged struct.
  EXPECT_EQ(count_rule(r, "obs.pod-record"), 3) << to_json(r);
  // The untagged ColdConfig struct must NOT be flagged.
  const bool cold_flagged =
      std::any_of(r.findings.begin(), r.findings.end(), [](const auto& f) {
        return f.rule == "obs.pod-record" && f.line > 14;
      });
  EXPECT_FALSE(cold_flagged) << to_json(r);
}

TEST(HermeslintRules, PodRecordQuietOnCleanTwin) {
  const LintResult r = lint_fixture("obs_record_clean.cpp");
  EXPECT_TRUE(r.findings.empty()) << to_json(r);
}

TEST(HermeslintRules, ShardBoundaryCatchesPortHostDerefInTaggedRegion) {
  const LintResult r = lint_fixture("shard_boundary_bad.cpp");
  // remote_port-> (x2), (*remote_host). — all inside the tagged region.
  EXPECT_EQ(count_rule(r, "sim.shard-boundary"), 3) << to_json(r);
  // The untagged local_touch() dereference must NOT be flagged.
  const bool cold_flagged =
      std::any_of(r.findings.begin(), r.findings.end(), [](const auto& f) {
        return f.rule == "sim.shard-boundary" && f.line > 18;
      });
  EXPECT_FALSE(cold_flagged) << to_json(r);
}

TEST(HermeslintRules, ShardBoundaryQuietOnMailboxTwin) {
  const LintResult r = lint_fixture("shard_boundary_clean.cpp");
  EXPECT_EQ(count_rule(r, "sim.shard-boundary"), 0) << to_json(r);
}

TEST(HermeslintRules, ShardBoundaryIgnoresDeclarations) {
  Linter linter;
  linter.add_file("decl.cpp",
                  "struct Port { int d; };\n"
                  "// HERMES_SHARDED\n"
                  "void f() {\n"
                  "  Port* p = nullptr;\n"  // a declarator, not a dereference
                  "  (void)p;\n"
                  "}\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "sim.shard-boundary"), 0) << to_json(r);
}

TEST(HermeslintRules, ObsSymbolsNeedDirectIncludes) {
  Linter linter;
  linter.add_file("user.hpp",
                  "#pragma once\n#include \"hermes/obs/flight_recorder.hpp\"\n"
                  "struct S {\n"
                  "  obs::FlightRecorder* rec = nullptr;\n"        // included: quiet
                  "  void wire(hermes::obs::MetricsRegistry& m);\n"  // missing metrics.hpp
                  "};\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "header.direct-include"), 1) << to_json(r);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_NE(r.findings[0].message.find("hermes/obs/metrics.hpp"), std::string::npos)
      << to_json(r);
}

TEST(HermeslintRules, UsingNamespaceAllowedInSourceFiles) {
  Linter linter;
  linter.add_file("impl.cpp", "#include <vector>\nusing namespace std;\nvector<int> v;\n");
  const LintResult r = linter.run();
  EXPECT_EQ(count_rule(r, "header.using-namespace"), 0) << to_json(r);
}

// -------------------------------------------------------------- suppressions

TEST(HermeslintSuppression, WellFormedAllowSilencesAndIsRecorded) {
  const LintResult r = lint_fixture("suppress_ok.cpp");
  EXPECT_TRUE(r.findings.empty()) << to_json(r);
  ASSERT_EQ(r.suppressed.size(), 3u);
  for (const auto& s : r.suppressed) {
    EXPECT_FALSE(s.reason.empty()) << s.file << ":" << s.line;
  }
  EXPECT_EQ(r.suppressed[0].rule, "determinism.clock");
}

TEST(HermeslintSuppression, MalformedDirectivesAreFindings) {
  const LintResult r = lint_fixture("suppress_bad.cpp");
  // reasonless allow + unknown rule + unknown verb.
  EXPECT_EQ(count_rule(r, "meta.suppression"), 3) << to_json(r);
  // The allow naming a nonexistent rule must not silence the real finding.
  EXPECT_EQ(count_rule(r, "determinism.rand"), 1) << to_json(r);
}

TEST(HermeslintSuppression, SameLineAndPrecedingLineBothWork) {
  Linter linter;
  linter.add_file(
      "s.cpp",
      "#include <cstdlib>\n"
      "// hermeslint:allow(determinism.rand) seeding the adversary model\n"
      "int a = rand();\n"
      "int b = rand();  // hermeslint:allow(determinism.rand) same-line form\n");
  const LintResult r = linter.run();
  EXPECT_TRUE(r.findings.empty()) << to_json(r);
  EXPECT_EQ(r.suppressed.size(), 2u);
}

// ---------------------------------------------------------------------- JSON

TEST(HermeslintJson, SchemaFieldsPresent) {
  const LintResult r = lint_fixture("hdr_bad.hpp");
  const std::string j = to_json(r);
  for (const char* key :
       {"\"tool\": \"hermeslint\"", "\"schema_version\": 1", "\"files_scanned\": 1",
        "\"clean\": false", "\"findings\": [", "\"suppressed\": [", "\"file\": ", "\"line\": ",
        "\"rule\": ", "\"message\": ", "\"snippet\": "}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key << " in\n" << j;
  }
}

TEST(HermeslintJson, CleanResultSaysClean) {
  const LintResult r = lint_fixture("hdr_clean.hpp");
  const std::string j = to_json(r);
  EXPECT_NE(j.find("\"clean\": true"), std::string::npos) << j;
  EXPECT_NE(j.find("\"findings\": []"), std::string::npos) << j;
}

TEST(HermeslintJson, EscapesQuotesAndBackslashes) {
  LintResult r;
  r.findings.push_back({"a\"b.cpp", 1, "determinism.rand", "msg with \\ and \"quote\"", "x"});
  const std::string j = to_json(r);
  EXPECT_NE(j.find("a\\\"b.cpp"), std::string::npos) << j;
  EXPECT_NE(j.find("msg with \\\\ and \\\"quote\\\""), std::string::npos) << j;
}

// ------------------------------------------------------------------ catalogue

TEST(HermeslintCatalogue, KnownRulesRoundTrip) {
  for (const auto& rule : hermes::lint::rule_catalogue()) {
    EXPECT_TRUE(hermes::lint::is_known_rule(rule.id));
  }
  EXPECT_FALSE(hermes::lint::is_known_rule("no.such.rule"));
  EXPECT_FALSE(hermes::lint::is_known_rule(""));
}

}  // namespace
