// hermesd: a standalone Hermes decision daemon replaying a workload
// trace against hermes::engine::Engine in wall-clock time — the repo's
// proof that the extracted engine runs outside the simulator. The
// binary links hermes::engine and nothing else from the tree: no
// simulator clock, no fabric model, no harness. Signals (ACKs,
// timeouts, retransmissions, probes) and membership changes (health,
// weight) come from a text trace; decisions and latch transitions
// stream to stdout, metrics snapshots print on demand, and a final
// machine-readable summary goes to --json.
//
// Usage: hermesd <trace-file> [--speed=N] [--json=<path>] [--log-decisions]
//   --speed=N   replay pacing: N=1 real time (trace microseconds map to
//               wall microseconds), N=2 twice as fast, N=0 (default)
//               as-fast-as-possible (CI smoke).
//
// Trace grammar (one statement per line, '#' comments):
//   groups <n>                          locality-group count
//   thresholds <low_us> <high_us> <drtt_us>   sensing thresholds
//   paths <a> <b> <n>                   pair a->b gets n unit-weight paths
//   flow <id> <src> <dst> <a> <b>       declare a flow on pair a->b
//   @<t_us> decide <flow> <bytes>       route one packet of the flow
//   @<t_us> ack <flow> <rtt_us> <ecn>   ACK on the flow's current path
//   @<t_us> timeout <flow>              the flow's RTO fired
//   @<t_us> retx <flow>                 a segment was retransmitted
//   @<t_us> probe <a> <b> <idx> <rtt_us> <ecn>   probe reply sample
//   @<t_us> health <a> <b> <idx> <healthy|degraded|unhealthy>
//   @<t_us> weight <a> <b> <idx> <w>
//   @<t_us> snapshot                    print a live metrics snapshot
//   expect <counter> <==|>=|<=> <n>     post-run assertion (exit code)
//   end                                 optional terminator

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <chrono>
#include <thread>

#include "hermes/engine/config.hpp"
#include "hermes/engine/decision.hpp"
#include "hermes/engine/engine.hpp"
#include "hermes/engine/host_set.hpp"
#include "hermes/engine/path_state.hpp"
#include "hermes/engine/rate.hpp"
#include "hermes/engine/time.hpp"

namespace {

using namespace hermes::engine;

/// Daemon-side flow bookkeeping: the engine holds no per-flow state, so
/// hermesd owns the FlowView plus a DRE tracking the flow's send rate
/// (the R gate of Algorithm 2).
struct FlowState {
  FlowView view;
  Dre rate{msec(1), 0.1};
};

/// Streams decisions to stdout and tallies them for the summary.
struct StdoutSink final : DecisionSink {
  bool log = false;
  std::uint64_t by_kind[6] = {};
  void on_decision(const DecisionEvent& ev) override {
    ++by_kind[static_cast<int>(ev.kind)];
    if (!log) return;
    std::printf("  t=%8.1fus  %-19s flow=%llu path %d -> %d\n",
                static_cast<double>(ev.time_ns) / 1000.0, to_string(ev.kind),
                static_cast<unsigned long long>(ev.flow_id), ev.from_path, ev.to_path);
  }
};

struct TraceEvent {
  TimeNs t = 0;
  std::vector<std::string> tok;
  int line_no = 0;
};

struct Expect {
  std::string counter;
  std::string op;
  std::uint64_t value = 0;
  int line_no = 0;
};

[[noreturn]] void die(int line_no, const std::string& msg) {
  std::fprintf(stderr, "hermesd: trace line %d: %s\n", line_no, msg.c_str());
  std::exit(2);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tok;
  std::istringstream in{line};
  std::string t;
  while (in >> t) {
    if (t[0] == '#') break;
    tok.push_back(t);
  }
  return tok;
}

Health parse_health(const std::string& s, int line_no) {
  if (s == "healthy") return Health::kHealthy;
  if (s == "degraded") return Health::kDegraded;
  if (s == "unhealthy") return Health::kUnhealthy;
  die(line_no, "unknown health state '" + s + "'");
}

double flow_rate_fn(const void* ctx, TimeNs now) {
  return static_cast<const Dre*>(ctx)->rate_bps(now);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string json_path;
  double speed = 0.0;
  bool log_decisions = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--speed=", 8) == 0) {
      speed = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--log-decisions") == 0) {
      log_decisions = true;
    } else if (argv[i][0] != '-') {
      trace_path = argv[i];
    } else {
      std::fprintf(stderr, "hermesd: unknown option %s\n", argv[i]);
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: hermesd <trace> [--speed=N] [--json=<path>] [--log-decisions]\n");
    return 2;
  }

  // ---- load phase: setup statements execute, events queue --------------
  std::ifstream in{trace_path};
  if (!in) {
    std::fprintf(stderr, "hermesd: cannot open %s\n", trace_path.c_str());
    return 2;
  }

  Config cfg;
  cfg.t_rtt_low = usec(60);
  cfg.t_rtt_high = usec(180);
  cfg.delta_rtt = usec(80);
  int num_groups = 2;
  std::vector<TraceEvent> events;
  std::vector<Expect> expects;
  // Deferred pair/flow setup (must apply after the engine exists).
  std::vector<std::vector<std::string>> setup;

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    if (tok[0] == "end") break;
    if (tok[0] == "groups") {
      num_groups = std::atoi(tok.at(1).c_str());
    } else if (tok[0] == "thresholds") {
      cfg.t_rtt_low = usec(std::atoll(tok.at(1).c_str()));
      cfg.t_rtt_high = usec(std::atoll(tok.at(2).c_str()));
      cfg.delta_rtt = usec(std::atoll(tok.at(3).c_str()));
    } else if (tok[0] == "paths" || tok[0] == "flow") {
      setup.push_back(tok);
    } else if (tok[0] == "expect") {
      if (tok.size() != 4) die(line_no, "expect <counter> <op> <n>");
      expects.push_back({tok[1], tok[2],
                         static_cast<std::uint64_t>(std::atoll(tok[3].c_str())), line_no});
    } else if (tok[0][0] == '@') {
      TraceEvent ev;
      ev.t = usec(std::atoll(tok[0].c_str() + 1));
      ev.line_no = line_no;
      ev.tok.assign(tok.begin() + 1, tok.end());
      if (ev.tok.empty()) die(line_no, "timestamp without an event");
      events.push_back(std::move(ev));
    } else {
      die(line_no, "unknown statement '" + tok[0] + "'");
    }
  }

  Engine engine{cfg, num_groups, /*rng_seed=*/0x4E14E5};
  StdoutSink sink;
  sink.log = log_decisions;
  engine.set_sink(&sink);

  std::map<int, HostSet> members;  // pair key a*groups+b -> declared hosts
  std::map<std::uint64_t, FlowState> flows;
  const auto pair_key = [&](int a, int b) { return a * num_groups + b; };

  for (const auto& tok : setup) {
    if (tok[0] == "paths") {
      const int a = std::atoi(tok.at(1).c_str());
      const int b = std::atoi(tok.at(2).c_str());
      const int n = std::atoi(tok.at(3).c_str());
      HostSet& hs = members[pair_key(a, b)];
      for (int i = 0; i < n; ++i) hs.add(i);
      engine.sync_pair(a, b, hs);
    } else {  // flow <id> <src> <dst> <a> <b>
      FlowState fs;
      fs.view.flow_id = static_cast<std::uint64_t>(std::atoll(tok.at(1).c_str()));
      fs.view.src = std::atoi(tok.at(2).c_str());
      fs.view.dst = std::atoi(tok.at(3).c_str());
      fs.view.src_group = std::atoi(tok.at(4).c_str());
      fs.view.dst_group = std::atoi(tok.at(5).c_str());
      flows[fs.view.flow_id] = fs;
    }
  }
  for (auto& [id, fs] : flows) {
    fs.view.rate_ctx = &fs.rate;
    fs.view.rate_fn = &flow_rate_fn;
  }

  std::printf("hermesd: %s — %d groups, %zu pairs, %zu flows, %zu events, speed %s\n",
              trace_path.c_str(), num_groups, members.size(), flows.size(), events.size(),
              speed > 0 ? std::to_string(speed).c_str() : "max");

  // ---- replay phase ----------------------------------------------------
  // hermesd:s whole point is wall-clock operation; the sim's determinism
  // rules do not apply to this embedder.
  // hermeslint:allow(determinism.clock) hermesd replays traces in real time by design; engine results depend only on trace content, never on this clock
  using WallClock = std::chrono::steady_clock;
  const auto wall0 = WallClock::now();
  std::uint64_t decisions = 0;

  const auto snapshot = [&](TimeNs t) {
    const DecisionStats& st = engine.stats();
    std::printf("snapshot t=%.1fus decisions=%llu initial=%llu timeout=%llu failure=%llu "
                "reroutes=%llu latches=%llu expiries=%llu\n",
                static_cast<double>(t) / 1000.0, static_cast<unsigned long long>(decisions),
                static_cast<unsigned long long>(st.initial_placements),
                static_cast<unsigned long long>(st.timeout_escapes),
                static_cast<unsigned long long>(st.failure_escapes),
                static_cast<unsigned long long>(st.congestion_reroutes),
                static_cast<unsigned long long>(st.blackhole_latches),
                static_cast<unsigned long long>(st.latch_expiries));
    for (const auto& [key, hs] : members) {
      const int a = key / num_groups;
      const int b = key % num_groups;
      std::printf("  pair %d->%d:", a, b);
      for (std::size_t i = 0; i < hs.size(); ++i)
        std::printf(" %s", to_string(engine.path_type(a, b, static_cast<int>(i))));
      std::printf("\n");
    }
  };

  for (const TraceEvent& ev : events) {
    if (speed > 0) {
      const auto target =
          wall0 + std::chrono::nanoseconds(static_cast<std::int64_t>(
                      static_cast<double>(ev.t) / speed));
      std::this_thread::sleep_until(target);
    }
    const std::string& what = ev.tok[0];
    const auto flow_of = [&](std::size_t i) -> FlowState& {
      const auto id = static_cast<std::uint64_t>(std::atoll(ev.tok.at(i).c_str()));
      const auto it = flows.find(id);
      if (it == flows.end()) die(ev.line_no, "unknown flow " + ev.tok.at(i));
      return it->second;
    };
    if (what == "decide") {
      FlowState& f = flow_of(1);
      const auto bytes = static_cast<std::uint32_t>(std::atoll(ev.tok.at(2).c_str()));
      const int chosen = engine.decide(f.view, bytes, ev.t);
      ++decisions;
      if (chosen >= 0) {
        f.view.cur_local = chosen;
        f.view.has_sent = true;
        f.view.bytes_sent += bytes;
        f.rate.add(bytes, ev.t);
      }
    } else if (what == "ack") {
      FlowState& f = flow_of(1);
      if (f.view.cur_local >= 0) {
        engine.on_ack(f.view.src_group, f.view.dst_group, f.view.cur_local, f.view.src,
                      f.view.dst, true, usec(std::atoll(ev.tok.at(2).c_str())),
                      std::atoi(ev.tok.at(3).c_str()) != 0);
      }
    } else if (what == "timeout") {
      FlowState& f = flow_of(1);
      f.view.timeout_pending = true;
      engine.on_timeout(f.view, ev.t);
    } else if (what == "retx") {
      FlowState& f = flow_of(1);
      if (f.view.cur_local >= 0)
        engine.on_retransmit(f.view.src_group, f.view.dst_group, f.view.cur_local, ev.t);
    } else if (what == "probe") {
      engine.feed_probe_sample(std::atoi(ev.tok.at(1).c_str()), std::atoi(ev.tok.at(2).c_str()),
                               std::atoi(ev.tok.at(3).c_str()),
                               usec(std::atoll(ev.tok.at(4).c_str())),
                               std::atoi(ev.tok.at(5).c_str()) != 0);
    } else if (what == "health" || what == "weight") {
      const int a = std::atoi(ev.tok.at(1).c_str());
      const int b = std::atoi(ev.tok.at(2).c_str());
      const auto idx = static_cast<std::int64_t>(std::atoll(ev.tok.at(3).c_str()));
      const auto it = members.find(pair_key(a, b));
      if (it == members.end()) die(ev.line_no, "pair has no declared paths");
      if (what == "health") {
        it->second.set_health(idx, parse_health(ev.tok.at(4), ev.line_no));
      } else {
        it->second.set_weight(idx, static_cast<std::uint32_t>(std::atoll(ev.tok.at(4).c_str())));
      }
      engine.sync_pair(a, b, it->second);
    } else if (what == "snapshot") {
      snapshot(ev.t);
    } else {
      die(ev.line_no, "unknown event '" + what + "'");
    }
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(WallClock::now() - wall0).count();

  // ---- summary + expectations -----------------------------------------
  const DecisionStats& st = engine.stats();
  const std::map<std::string, std::uint64_t> counters = {
      {"decisions", decisions},
      {"initial_placements", st.initial_placements},
      {"timeout_escapes", st.timeout_escapes},
      {"failure_escapes", st.failure_escapes},
      {"congestion_reroutes", st.congestion_reroutes},
      {"blackhole_latches", st.blackhole_latches},
      {"latch_expiries", st.latch_expiries},
  };
  std::printf("hermesd: replayed %zu events (%llu decisions) in %.1fms wall\n", events.size(),
              static_cast<unsigned long long>(decisions), wall_ms);

  int failures = 0;
  for (const Expect& e : expects) {
    const auto it = counters.find(e.counter);
    if (it == counters.end()) die(e.line_no, "unknown counter '" + e.counter + "'");
    const std::uint64_t got = it->second;
    const bool ok = e.op == "==" ? got == e.value
                    : e.op == ">=" ? got >= e.value
                    : e.op == "<=" ? got <= e.value
                                   : (die(e.line_no, "unknown operator '" + e.op + "'"), false);
    if (!ok) {
      std::fprintf(stderr, "hermesd: EXPECT FAILED (line %d): %s = %llu, wanted %s %llu\n",
                   e.line_no, e.counter.c_str(), static_cast<unsigned long long>(got),
                   e.op.c_str(), static_cast<unsigned long long>(e.value));
      ++failures;
    }
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "hermesd: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n  \"trace\": \"%s\",\n  \"events\": %zu,\n  \"wall_ms\": %.3f,\n",
                 trace_path.c_str(), events.size(), wall_ms);
    std::fprintf(f, "  \"expect_failures\": %d,\n  \"counters\": {\n", failures);
    std::size_t i = 0;
    for (const auto& [name, value] : counters) {
      std::fprintf(f, "    \"%s\": %llu%s\n", name.c_str(),
                   static_cast<unsigned long long>(value),
                   ++i < counters.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("hermesd: wrote %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
