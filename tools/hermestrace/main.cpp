// hermestrace — offline analysis of Hermes flight-recorder traces.
//
// Loads a schema-v1 trace dumped by harness::Scenario::dump_trace() and
// answers the questions trace-driven debugging needs (EXPERIMENTS.md):
//
//   hermestrace FILE --summary            what happened, at a glance
//   hermestrace FILE --flow=N             one flow's full event timeline
//                                         (flow-index lookup: O(log n))
//   hermestrace FILE --decisions          every Algorithm 2 decision record
//   hermestrace A --diff B                align Algorithm-2 decisions by
//                                         flow id, report first divergence
//   hermestrace FILE ... --json           machine-readable output
//   hermestrace FILE --chrome=OUT.json    Chrome trace-event timeline
//                                         (load in chrome://tracing / Perfetto)
//
// Exit status: 0 ok, 1 bad query (unknown flow) or divergent --diff,
// 2 usage/IO error. Truncated or corrupt trace input always exits 2
// with a one-line reason — never partial output.

#include <cinttypes>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hermes/obs/records.hpp"
#include "hermes/obs/trace_diff.hpp"
#include "hermes/obs/trace_io.hpp"

namespace {

using hermes::obs::DecisionKind;
using hermes::obs::LoadedTrace;
using hermes::obs::PacketEvent;
using hermes::obs::RecordKind;
using hermes::obs::TraceRecord;

double usec(std::uint64_t time_ns) { return static_cast<double>(time_ns) * 1e-3; }

const char* packet_event_name(std::uint8_t e) {
  return hermes::obs::to_string(static_cast<PacketEvent>(e));
}

const char* decision_kind_name(std::uint8_t k) {
  return hermes::obs::to_string(static_cast<DecisionKind>(k));
}

/// One text line per record, shared by --flow and --decisions.
std::string render(const LoadedTrace& t, const TraceRecord& r) {
  char buf[256];
  switch (r.kind) {
    case RecordKind::kPacket:
      std::snprintf(buf, sizeof buf,
                    "%12.3fus %-4s %-14s pkt=%" PRIu64 " flow=%" PRIu64 " seq=%" PRIu64
                    " size=%u%s",
                    usec(r.time_ns), packet_event_name(r.u.packet.event),
                    t.name(r.name).c_str(), r.u.packet.packet_id, r.flow_id, r.u.packet.seq,
                    r.u.packet.size, r.u.packet.ce != 0 ? " CE" : "");
      break;
    case RecordKind::kQueue:
      std::snprintf(buf, sizeof buf, "%12.3fus QUEUE %-14s backlog=%uB (%u pkts)",
                    usec(r.time_ns), t.name(r.name).c_str(), r.u.queue.backlog_bytes,
                    r.u.queue.backlog_packets);
      break;
    case RecordKind::kFault:
      std::snprintf(buf, sizeof buf, "%12.3fus FAULT %s action=%u leaf=%d spine=%d switch=%d",
                    usec(r.time_ns), r.u.fault.onset != 0 ? "onset" : "recovery",
                    r.u.fault.action, r.u.fault.leaf, r.u.fault.spine, r.u.fault.switch_id);
      break;
    case RecordKind::kDecision: {
      const auto& d = r.u.decision;
      std::snprintf(buf, sizeof buf,
                    "%12.3fus DECIDE flow=%" PRIu64 " %-18s path %d(%s) -> %d(%s)"
                    " dRTT=%.1fus dECN=%.3f S=%" PRIu64 "B R=%.2fGbps [%d->%d]",
                    usec(r.time_ns), r.flow_id, decision_kind_name(d.kind), d.from_path,
                    hermes::obs::path_condition_name(d.from_cond), d.to_path,
                    hermes::obs::path_condition_name(d.to_cond),
                    static_cast<double>(d.delta_rtt_ns) * 1e-3,
                    static_cast<double>(d.delta_ecn), d.sent_bytes, d.rate_bps * 1e-9,
                    d.src_leaf, d.dst_leaf);
      break;
    }
    default:
      std::snprintf(buf, sizeof buf, "%12.3fus ?kind=%u", usec(r.time_ns),
                    static_cast<unsigned>(r.kind));
      break;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c >= 0x20) {
      out += c;
    }
  }
  return out;
}

/// One JSON object per record, shared by --flow/--decisions under --json.
std::string render_json(const LoadedTrace& t, const TraceRecord& r) {
  char buf[384];
  switch (r.kind) {
    case RecordKind::kPacket:
      std::snprintf(buf, sizeof buf,
                    "{\"t_us\":%.3f,\"kind\":\"packet\",\"event\":\"%s\",\"port\":\"%s\","
                    "\"packet_id\":%" PRIu64 ",\"flow\":%" PRIu64 ",\"seq\":%" PRIu64
                    ",\"size\":%u,\"ce\":%s}",
                    usec(r.time_ns), packet_event_name(r.u.packet.event),
                    json_escape(t.name(r.name)).c_str(), r.u.packet.packet_id, r.flow_id,
                    r.u.packet.seq, r.u.packet.size, r.u.packet.ce != 0 ? "true" : "false");
      break;
    case RecordKind::kQueue:
      std::snprintf(buf, sizeof buf,
                    "{\"t_us\":%.3f,\"kind\":\"queue\",\"port\":\"%s\",\"backlog_bytes\":%u,"
                    "\"backlog_packets\":%u}",
                    usec(r.time_ns), json_escape(t.name(r.name)).c_str(),
                    r.u.queue.backlog_bytes, r.u.queue.backlog_packets);
      break;
    case RecordKind::kFault:
      std::snprintf(buf, sizeof buf,
                    "{\"t_us\":%.3f,\"kind\":\"fault\",\"onset\":%s,\"action\":%u,\"leaf\":%d,"
                    "\"spine\":%d,\"switch\":%d}",
                    usec(r.time_ns), r.u.fault.onset != 0 ? "true" : "false", r.u.fault.action,
                    r.u.fault.leaf, r.u.fault.spine, r.u.fault.switch_id);
      break;
    case RecordKind::kDecision: {
      const auto& d = r.u.decision;
      std::snprintf(buf, sizeof buf,
                    "{\"t_us\":%.3f,\"kind\":\"decision\",\"decision\":\"%s\",\"flow\":%" PRIu64
                    ",\"from_path\":%d,\"from_cond\":\"%s\",\"to_path\":%d,\"to_cond\":\"%s\","
                    "\"delta_rtt_us\":%.3f,\"delta_ecn\":%.4f,\"sent_bytes\":%" PRIu64
                    ",\"rate_bps\":%.0f,\"src_leaf\":%d,\"dst_leaf\":%d}",
                    usec(r.time_ns), decision_kind_name(d.kind), r.flow_id, d.from_path,
                    hermes::obs::path_condition_name(d.from_cond), d.to_path,
                    hermes::obs::path_condition_name(d.to_cond),
                    static_cast<double>(d.delta_rtt_ns) * 1e-3, static_cast<double>(d.delta_ecn),
                    d.sent_bytes, d.rate_bps, d.src_leaf, d.dst_leaf);
      break;
    }
    default:
      std::snprintf(buf, sizeof buf, "{\"t_us\":%.3f,\"kind\":%u}", usec(r.time_ns),
                    static_cast<unsigned>(r.kind));
      break;
  }
  return buf;
}

int cmd_summary(const LoadedTrace& t, bool json) {
  std::uint64_t packets = 0;
  std::uint64_t packet_by_event[3] = {};
  std::uint64_t queue_samples = 0;
  std::uint64_t fault_onsets = 0;
  std::uint64_t fault_recoveries = 0;
  std::map<std::uint8_t, std::uint64_t> decisions_by_kind;
  // flow -> decision-record count, plus the records the blackhole
  // post-mortem starts from: latches, and the timeout/failure escapes of
  // the flows that fled a dead path (fig17's affected flows usually
  // escape after one timeout, before the 3-timeout latch can fire).
  std::map<std::uint64_t, std::uint64_t> decision_flows;
  std::vector<const TraceRecord*> latches;
  std::vector<const TraceRecord*> escapes;

  // Sharded traces: pad[0] is the originating shard id and the merged
  // file's canonical order is (time_ns, shard). A record running earlier
  // than its predecessor means the merge (or a writer) broke that
  // contract — flag it rather than silently summarizing garbage.
  std::map<std::uint8_t, std::uint64_t> records_by_shard;
  std::uint64_t order_violations = 0;
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    const TraceRecord& r = t.records[i];
    ++records_by_shard[r.pad[0]];
    if (i > 0) {
      const TraceRecord& p = t.records[i - 1];
      if (r.time_ns < p.time_ns || (r.time_ns == p.time_ns && r.pad[0] < p.pad[0])) {
        ++order_violations;
      }
    }
  }

  for (const TraceRecord& r : t.records) {
    switch (r.kind) {
      case RecordKind::kPacket:
        ++packets;
        if (r.u.packet.event < 3) ++packet_by_event[r.u.packet.event];
        break;
      case RecordKind::kQueue: ++queue_samples; break;
      case RecordKind::kFault:
        ++(r.u.fault.onset != 0 ? fault_onsets : fault_recoveries);
        break;
      case RecordKind::kDecision:
        ++decisions_by_kind[r.u.decision.kind];
        ++decision_flows[r.flow_id];
        switch (static_cast<DecisionKind>(r.u.decision.kind)) {
          case DecisionKind::kBlackholeLatch: latches.push_back(&r); break;
          case DecisionKind::kTimeoutEscape:
          case DecisionKind::kFailureEscape: escapes.push_back(&r); break;
          default: break;
        }
        break;
      default: break;
    }
  }
  const std::uint64_t decisions =
      [&] {
        std::uint64_t n = 0;
        for (const auto& [k, c] : decisions_by_kind) n += c;
        return n;
      }();
  const double t0 = t.records.empty() ? 0.0 : usec(t.records.front().time_ns);
  const double t1 = t.records.empty() ? 0.0 : usec(t.records.back().time_ns);

  if (json) {
    std::printf("{\"records\":%zu,\"overwritten\":%" PRIu64 ",\"names\":%zu,"
                "\"span_us\":[%.3f,%.3f],\"packets\":{\"total\":%" PRIu64 ",\"enqueue\":%" PRIu64
                ",\"transmit\":%" PRIu64 ",\"drop\":%" PRIu64 "},\"queue_samples\":%" PRIu64
                ",\"faults\":{\"onsets\":%" PRIu64 ",\"recoveries\":%" PRIu64 "},",
                t.records.size(), t.overwritten, t.names.size(), t0, t1, packets,
                packet_by_event[0], packet_by_event[1], packet_by_event[2], queue_samples,
                fault_onsets, fault_recoveries);
    bool first = true;
    std::printf("\"shards\":{");
    for (const auto& [sh, c] : records_by_shard) {
      std::printf("%s\"%u\":%" PRIu64, first ? "" : ",", static_cast<unsigned>(sh), c);
      first = false;
    }
    std::printf("},\"order_violations\":%" PRIu64 ",\"decisions\":{", order_violations);
    first = true;
    for (const auto& [k, c] : decisions_by_kind) {
      std::printf("%s\"%s\":%" PRIu64, first ? "" : ",", decision_kind_name(k), c);
      first = false;
    }
    std::printf("},\"blackhole_latches\":[");
    first = true;
    for (const TraceRecord* r : latches) {
      std::printf("%s{\"t_us\":%.3f,\"flow\":%" PRIu64 ",\"path\":%d,\"src_leaf\":%d,"
                  "\"dst_leaf\":%d}",
                  first ? "" : ",", usec(r->time_ns), r->flow_id, r->u.decision.from_path,
                  r->u.decision.src_leaf, r->u.decision.dst_leaf);
      first = false;
    }
    std::printf("],\"escapes\":[");
    first = true;
    for (const TraceRecord* r : escapes) {
      std::printf("%s{\"t_us\":%.3f,\"flow\":%" PRIu64 ",\"decision\":\"%s\",\"from_path\":%d,"
                  "\"from_cond\":\"%s\",\"to_path\":%d,\"src_leaf\":%d,\"dst_leaf\":%d}",
                  first ? "" : ",", usec(r->time_ns), r->flow_id,
                  decision_kind_name(r->u.decision.kind), r->u.decision.from_path,
                  hermes::obs::path_condition_name(r->u.decision.from_cond),
                  r->u.decision.to_path, r->u.decision.src_leaf, r->u.decision.dst_leaf);
      first = false;
    }
    std::printf("]}\n");
    return 0;
  }

  std::printf("trace: %zu records (%" PRIu64 " overwritten before dump), %zu names\n",
              t.records.size(), t.overwritten, t.names.size());
  std::printf("span:  %.3fus .. %.3fus\n", t0, t1);
  if (records_by_shard.size() > 1 || order_violations != 0) {
    std::printf("shards:");
    for (const auto& [sh, c] : records_by_shard) {
      std::printf(" %u=%" PRIu64, static_cast<unsigned>(sh), c);
    }
    std::printf("\n");
    if (order_violations != 0) {
      std::printf("WARNING: %" PRIu64 " cross-shard time-order violation(s) — merged trace "
                  "is not sorted by (time, shard); the merge or a writer is broken\n",
                  order_violations);
    } else {
      std::printf("cross-shard time order: OK\n");
    }
  }
  std::printf("packets: %" PRIu64 " (ENQ %" PRIu64 " / TX %" PRIu64 " / DROP %" PRIu64 ")\n",
              packets, packet_by_event[0], packet_by_event[1], packet_by_event[2]);
  std::printf("queue samples: %" PRIu64 "\n", queue_samples);
  std::printf("faults: %" PRIu64 " onset(s), %" PRIu64 " recovery(ies)\n", fault_onsets,
              fault_recoveries);
  std::printf("decisions: %" PRIu64 " across %zu flow(s)\n", decisions, decision_flows.size());
  for (const auto& [k, c] : decisions_by_kind) {
    std::printf("  %-20s %" PRIu64 "\n", decision_kind_name(k), c);
  }
  if (!latches.empty()) {
    std::printf("blackhole latches:\n");
    for (const TraceRecord* r : latches) {
      std::printf("  %12.3fus flow=%" PRIu64 " path=%d (leaf%d->leaf%d)\n", usec(r->time_ns),
                  r->flow_id, r->u.decision.from_path, r->u.decision.src_leaf,
                  r->u.decision.dst_leaf);
    }
  }
  if (!escapes.empty()) {
    std::printf("escape decisions (flows fleeing a timed-out/failed path):\n");
    constexpr std::size_t kMaxShown = 20;
    for (std::size_t i = 0; i < escapes.size(); ++i) {
      if (i == kMaxShown) {
        std::printf("  ... and %zu more (use --decisions for all)\n", escapes.size() - i);
        break;
      }
      const TraceRecord* r = escapes[i];
      std::printf("  %12.3fus flow=%" PRIu64 " %-15s path %d(%s) -> %d (leaf%d->leaf%d)\n",
                  usec(r->time_ns), r->flow_id, decision_kind_name(r->u.decision.kind),
                  r->u.decision.from_path,
                  hermes::obs::path_condition_name(r->u.decision.from_cond),
                  r->u.decision.to_path, r->u.decision.src_leaf, r->u.decision.dst_leaf);
    }
  }
  return 0;
}

int print_filtered(const LoadedTrace& t, bool json,
                   const std::function<bool(const TraceRecord&)>& keep) {
  std::uint64_t n = 0;
  if (json) std::printf("[");
  for (const TraceRecord& r : t.records) {
    if (!keep(r)) continue;
    if (json) {
      std::printf("%s%s", n != 0 ? ",\n " : "", render_json(t, r).c_str());
    } else {
      std::printf("%s\n", render(t, r).c_str());
    }
    ++n;
  }
  if (json) std::printf("]\n");
  if (n == 0 && !json) {
    std::fprintf(stderr, "hermestrace: no matching records\n");
    return 1;
  }
  return 0;
}

/// --flow=N: the flow index resolves the flow's records in O(log n)
/// instead of scanning the whole trace; output order stays chronological
/// because the index preserves append order within a flow.
int cmd_flow(const LoadedTrace& t, std::uint64_t flow_id, bool json) {
  std::uint64_t n = 0;
  if (json) std::printf("[");
  for (const std::uint32_t idx : t.flow_records(flow_id)) {
    const TraceRecord& r = t.records[idx];
    if (r.kind != RecordKind::kPacket && r.kind != RecordKind::kDecision) continue;
    if (json) {
      std::printf("%s%s", n != 0 ? ",\n " : "", render_json(t, r).c_str());
    } else {
      std::printf("%s\n", render(t, r).c_str());
    }
    ++n;
  }
  if (json) std::printf("]\n");
  if (n == 0 && !json) {
    std::fprintf(stderr, "hermestrace: no matching records\n");
    return 1;
  }
  return 0;
}

/// One side of a divergence ("-" when that run has no such decision).
std::string diff_side(const LoadedTrace& t, std::int64_t index) {
  if (index < 0) return "(no decision)";
  return render(t, t.records[static_cast<std::size_t>(index)]);
}

/// --diff: align Algorithm-2 decision records by flow id and pinpoint the
/// first divergence — the debugging primitive for "same seed, different
/// binary" regressions. Exit 0 identical, 1 divergent.
int cmd_diff(const LoadedTrace& a, const LoadedTrace& b, const std::string& name_a,
             const std::string& name_b, bool json) {
  const hermes::obs::DiffResult res = hermes::obs::diff_decisions(a, b);
  if (json) {
    std::printf("{\"a\":\"%s\",\"b\":\"%s\",\"decisions_a\":%" PRIu64 ",\"decisions_b\":%" PRIu64
                ",\"flows_compared\":%" PRIu64 ",\"divergent_flows\":%zu,\"divergences\":[",
                json_escape(name_a).c_str(), json_escape(name_b).c_str(), res.decisions_a,
                res.decisions_b, res.flows_compared, res.divergences.size());
    bool first = true;
    for (const hermes::obs::DecisionDiff& d : res.divergences) {
      std::printf("%s{\"flow\":%" PRIu64 ",\"ordinal\":%zu,\"field\":\"%s\",\"t_us\":%.3f,"
                  "\"a\":%s,\"b\":%s}",
                  first ? "" : ",\n ", d.flow_id, d.ordinal, d.field, usec(d.time_ns),
                  d.a_index >= 0
                      ? render_json(a, a.records[static_cast<std::size_t>(d.a_index)]).c_str()
                      : "null",
                  d.b_index >= 0
                      ? render_json(b, b.records[static_cast<std::size_t>(d.b_index)]).c_str()
                      : "null");
      first = false;
    }
    std::printf("]}\n");
    return res.identical() ? 0 : 1;
  }

  std::printf("diff: %s vs %s\n", name_a.c_str(), name_b.c_str());
  std::printf("decisions: %" PRIu64 " vs %" PRIu64 ", flows compared: %" PRIu64
              ", divergent flows: %zu\n",
              res.decisions_a, res.decisions_b, res.flows_compared, res.divergences.size());
  if (res.identical()) {
    std::printf("decision streams are identical\n");
    return 0;
  }
  const hermes::obs::DecisionDiff* first = res.first();
  std::printf("first divergence: %12.3fus flow=%" PRIu64 " decision #%zu field=%s\n",
              usec(first->time_ns), first->flow_id, first->ordinal, first->field);
  std::printf("  A: %s\n", diff_side(a, first->a_index).c_str());
  std::printf("  B: %s\n", diff_side(b, first->b_index).c_str());
  constexpr std::size_t kMaxShown = 10;
  std::printf("per-flow first divergences:\n");
  for (std::size_t i = 0; i < res.divergences.size(); ++i) {
    if (i == kMaxShown) {
      std::printf("  ... and %zu more (use --json for all)\n", res.divergences.size() - i);
      break;
    }
    const hermes::obs::DecisionDiff& d = res.divergences[i];
    std::printf("  %12.3fus flow=%" PRIu64 " decision #%zu field=%s\n", usec(d.time_ns),
                d.flow_id, d.ordinal, d.field);
  }
  return 1;
}

/// Chrome trace-event format (chrome://tracing, Perfetto): instant events
/// on per-port/per-flow tracks, counter tracks for queue backlog.
int cmd_chrome(const LoadedTrace& t, const std::string& out_path) {
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "hermestrace: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  bool first = true;
  const auto sep = [&] {
    if (!first) std::fputs(",\n", f);
    first = false;
  };
  for (const TraceRecord& r : t.records) {
    switch (r.kind) {
      case RecordKind::kPacket:
        sep();
        std::fprintf(f,
                     "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,"
                     "\"tid\":\"%s\",\"args\":{\"flow\":%" PRIu64 ",\"seq\":%" PRIu64
                     ",\"size\":%u,\"ce\":%u}}",
                     packet_event_name(r.u.packet.event), usec(r.time_ns),
                     json_escape(t.name(r.name)).c_str(), r.flow_id, r.u.packet.seq,
                     r.u.packet.size, r.u.packet.ce);
        break;
      case RecordKind::kQueue:
        sep();
        std::fprintf(f,
                     "{\"name\":\"backlog %s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,"
                     "\"args\":{\"bytes\":%u}}",
                     json_escape(t.name(r.name)).c_str(), usec(r.time_ns),
                     r.u.queue.backlog_bytes);
        break;
      case RecordKind::kFault:
        sep();
        std::fprintf(f,
                     "{\"name\":\"fault %s\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":1,"
                     "\"tid\":\"faults\",\"args\":{\"action\":%u,\"leaf\":%d,\"spine\":%d}}",
                     r.u.fault.onset != 0 ? "onset" : "recovery", usec(r.time_ns),
                     r.u.fault.action, r.u.fault.leaf, r.u.fault.spine);
        break;
      case RecordKind::kDecision:
        sep();
        std::fprintf(f,
                     "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"p\",\"ts\":%.3f,\"pid\":1,"
                     "\"tid\":\"flow %" PRIu64 "\",\"args\":{\"from\":%d,\"to\":%d,"
                     "\"delta_rtt_us\":%.3f,\"delta_ecn\":%.4f}}",
                     decision_kind_name(r.u.decision.kind), usec(r.time_ns), r.flow_id,
                     r.u.decision.from_path, r.u.decision.to_path,
                     static_cast<double>(r.u.decision.delta_rtt_ns) * 1e-3,
                     static_cast<double>(r.u.decision.delta_ecn));
        break;
      default: break;
    }
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "hermestrace: write failed for %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

void usage(std::FILE* to) {
  std::fputs("usage: hermestrace FILE [--summary] [--flow=N] [--decisions]"
             " [--diff=OTHER.htrc] [--json] [--chrome=OUT.json]\n",
             to);
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  bool want_summary = false;
  bool want_decisions = false;
  bool want_json = false;
  bool have_flow = false;
  std::uint64_t flow_id = 0;
  std::string chrome_out;
  std::string diff_other;
  bool next_is_diff = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (next_is_diff) {
      diff_other = a;
      next_is_diff = false;
    } else if (a == "--summary") {
      want_summary = true;
    } else if (a == "--decisions") {
      want_decisions = true;
    } else if (a == "--json") {
      want_json = true;
    } else if (a.rfind("--flow=", 0) == 0) {
      have_flow = true;
      flow_id = std::strtoull(a.c_str() + 7, nullptr, 10);
    } else if (a.rfind("--chrome=", 0) == 0) {
      chrome_out = a.substr(9);
    } else if (a.rfind("--diff=", 0) == 0) {
      diff_other = a.substr(7);
    } else if (a == "--diff") {
      next_is_diff = true;  // allow `hermestrace A --diff B`
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hermestrace: unknown option '%s'\n", a.c_str());
      return 2;
    } else if (file.empty()) {
      file = a;
    } else {
      usage(stderr);
      return 2;
    }
  }
  if (file.empty() || next_is_diff) {
    usage(stderr);
    return 2;
  }

  LoadedTrace trace;
  std::string err;
  if (!hermes::obs::read_trace(file, trace, &err)) {
    std::fprintf(stderr, "hermestrace: %s: %s\n", file.c_str(), err.c_str());
    return 2;
  }

  if (!diff_other.empty()) {
    LoadedTrace other;
    if (!hermes::obs::read_trace(diff_other, other, &err)) {
      std::fprintf(stderr, "hermestrace: %s: %s\n", diff_other.c_str(), err.c_str());
      return 2;
    }
    return cmd_diff(trace, other, file, diff_other, want_json);
  }
  if (!chrome_out.empty()) return cmd_chrome(trace, chrome_out);
  if (have_flow) return cmd_flow(trace, flow_id, want_json);
  if (want_decisions) {
    return print_filtered(trace, want_json,
                          [](const TraceRecord& r) { return r.kind == RecordKind::kDecision; });
  }
  (void)want_summary;  // --summary is the default query
  return cmd_summary(trace, want_json);
}
