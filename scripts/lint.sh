#!/usr/bin/env bash
# Static-analysis gate: build and run hermeslint over the whole tree.
#
#   scripts/lint.sh            human-readable findings, exit 1 if any
#   scripts/lint.sh --json     findings as JSON on stdout (schema_version 1)
#
# hermeslint enforces the project invariants that generic linters can't:
# determinism (no rand()/wall clocks/unordered iteration feeding results),
# allocation-freedom in `// HERMES_HOT` regions, and header hygiene.
# See DESIGN.md "Static analysis & invariants" for the rule catalogue and
# the suppression syntax (`// hermeslint:allow(<rule>) <reason>`).
#
# clang-tidy (config in .clang-tidy) runs as a second stage when the
# binary exists; it is advisory and absent from most build containers.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${HERMES_LINT_JOBS:-$(nproc)}"
BUILD_DIR="${HERMES_LINT_BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target hermeslint >/dev/null

if [[ "${1:-}" == "--json" ]]; then
  "$BUILD_DIR"/tools/hermeslint/hermeslint --root=. --json src bench tests examples
else
  "$BUILD_DIR"/tools/hermeslint/hermeslint --root=. src bench tests examples
fi

if command -v clang-tidy >/dev/null 2>&1 && [[ -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "== clang-tidy (advisory) =="
  git ls-files 'src/**/*.cpp' | xargs -P "$JOBS" -n 4 clang-tidy -p "$BUILD_DIR" --quiet || true
fi
