#!/usr/bin/env bash
# Static-analysis gate: build and run hermeslint over the whole tree.
#
#   scripts/lint.sh                  human-readable findings, exit 1 if any
#   scripts/lint.sh --json           findings as JSON on stdout (schema_version 2,
#                                    includes a timing block: wall_ms + cache hits)
#   scripts/lint.sh --sarif=F.sarif  also write SARIF 2.1.0 to F.sarif (for
#                                    GitHub code scanning upload)
#
# hermeslint enforces the project invariants that generic linters can't:
# determinism (no rand()/wall clocks/unordered iteration feeding results),
# allocation-freedom in `// HERMES_HOT` regions, shard-boundary index
# provenance and pointer escapes (sim.shard-race), packet-arena handle
# lifetimes (core.arena-lifetime), float accumulation order
# (sim.float-order), the module layering DAG (arch.layering), and header
# hygiene backed by a cross-file symbol index. See DESIGN.md "Static
# analysis & invariants" for the rule catalogue and the suppression
# syntax (`// hermeslint:allow(<rule>) <reason>[, expires(YYYY-MM-DD)]`).
#
# Incremental: findings are cached per content hash in
# $BUILD_DIR/hermeslint.cache, so warm runs re-lint only edited files
# (plus everything, cheaply, when the cross-file context changes).
#
# clang-tidy (config in .clang-tidy) runs as a second stage when the
# binary exists; here it is advisory — the curated WarningsAsErrors
# subset is gated by tier1.sh stage [3/7] and the CI lint job instead.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${HERMES_LINT_JOBS:-$(nproc)}"
BUILD_DIR="${HERMES_LINT_BUILD_DIR:-build}"
PATHS=(src bench tests examples tools)

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target hermeslint >/dev/null

ARGS=(--root=. "--cache=$BUILD_DIR/hermeslint.cache" "--threads=$JOBS")
for arg in "$@"; do
  case "$arg" in
    --json) ARGS+=(--json) ;;
    --sarif=*) ARGS+=("$arg") ;;
    *)
      echo "usage: scripts/lint.sh [--json] [--sarif=FILE]" >&2
      exit 2
      ;;
  esac
done

"$BUILD_DIR"/tools/hermeslint/hermeslint "${ARGS[@]}" "${PATHS[@]}"

if command -v clang-tidy >/dev/null 2>&1 && [[ -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "== clang-tidy (advisory) =="
  git ls-files 'src/**/*.cpp' | xargs -P "$JOBS" -n 4 clang-tidy -p "$BUILD_DIR" --quiet || true
fi
