#!/usr/bin/env python3
"""Tier-1 perf-regression guard.

Compares a fresh bench_core_micro JSON against the committed baseline
(BENCH_core.json at the repo root) and hard-fails when the zero-alloc
packet pipeline regresses:

  * packet_pipeline_steady.allocs_per_packet must stay <= 0.01
    (the arena/ring pipeline's steady state allocates nothing per packet;
    bench_core_micro also asserts this internally — the check here catches
    a stale binary or a tampered JSON as well), and
  * packet_pipeline_10mb.packets_per_sec must not drop more than 50%
    below the committed baseline, judged on the better of the raw ratio
    and a machine-speed-normalized ratio.

The alloc budget is the hard invariant: allocation counts are
deterministic, so any nonzero drift there is a real regression. The
throughput gate is deliberately loose (50%): wall-clock on shared/
virtualized CI-class machines swings run to run (interleaved A/B runs
of identical binaries measured a 2x spread here), so a tight ratio
would flake. To keep the loose gate meaningful across machine states,
the current run is also scaled by the dre_add_read canary (a tiny
fixed-work loop whose ns/op tracks how fast the machine is *right
now*): normalized = pps * (cur_dre / base_dre). Passing either the raw
or the normalized ratio is enough; a genuine algorithmic regression —
the failure mode this guard exists for, which costs integer factors,
not percents — fails both.

Usage: check_bench_regress.py <baseline.json> <current.json>
"""

import json
import sys

ALLOC_BUDGET = 0.01
MAX_REGRESSION = 0.50


def metric(doc, bench, name):
    try:
        return float(doc["metrics"][bench][name])
    except (KeyError, TypeError, ValueError):
        return None


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        baseline = json.load(f)
    with open(argv[2]) as f:
        current = json.load(f)

    failures = []

    allocs = metric(current, "packet_pipeline_steady", "allocs_per_packet")
    if allocs is None:
        failures.append(
            "current run has no packet_pipeline_steady.allocs_per_packet "
            "metric — bench binary predates the arena pipeline?"
        )
    elif allocs > ALLOC_BUDGET:
        failures.append(
            f"steady-state pipeline allocates {allocs:.4f} per packet "
            f"(budget {ALLOC_BUDGET}) — the zero-alloc arena path regressed"
        )

    base_pps = metric(baseline, "packet_pipeline_10mb", "packets_per_sec")
    cur_pps = metric(current, "packet_pipeline_10mb", "packets_per_sec")
    if base_pps is None:
        failures.append(f"baseline {argv[1]} lacks packet_pipeline_10mb.packets_per_sec")
    elif cur_pps is None:
        failures.append("current run lacks packet_pipeline_10mb.packets_per_sec")
    else:
        raw = cur_pps / base_pps
        # Machine-speed normalization via the dre_add_read canary (see
        # module docstring); fall back to the raw ratio if either run
        # lacks the canary metric.
        base_dre = metric(baseline, "dre_add_read", "ns_per_op")
        cur_dre = metric(current, "dre_add_read", "ns_per_op")
        normalized = (
            raw * (cur_dre / base_dre) if base_dre and cur_dre else raw
        )
        best = max(raw, normalized)
        if best < 1.0 - MAX_REGRESSION:
            failures.append(
                f"packet_pipeline_10mb throughput {cur_pps:,.0f} pkts/s is "
                f"{100 * (1 - raw):.1f}% below the committed baseline "
                f"{base_pps:,.0f} pkts/s even after machine-speed "
                f"normalization ({100 * (1 - normalized):.1f}% below; "
                f"max allowed {100 * MAX_REGRESSION:.0f}%)"
            )
        else:
            print(
                f"perf guard: {cur_pps:,.0f} pkts/s vs baseline {base_pps:,.0f} "
                f"(raw {100 * (raw - 1):+.1f}%, normalized {100 * (normalized - 1):+.1f}%), "
                f"steady allocs/pkt {allocs if allocs is not None else float('nan'):.4f}"
            )

    if failures:
        for msg in failures:
            print(f"perf guard FAIL: {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
