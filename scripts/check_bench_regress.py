#!/usr/bin/env python3
"""Tier-1 perf-regression guard.

Compares a fresh bench_core_micro JSON against the committed baseline
(BENCH_core.json at the repo root) and hard-fails when the zero-alloc
packet pipeline regresses:

  * packet_pipeline_steady.allocs_per_packet must stay <= 0.01
    (the arena/ring pipeline's steady state allocates nothing per packet;
    bench_core_micro also asserts this internally — the check here catches
    a stale binary or a tampered JSON as well), and
  * engine_decide.allocs_per_decision_steady must stay <= 0.01 (the
    extracted decision engine's HERMES_HOT decide() path is
    allocation-free; the binary asserts literal zero internally), and
  * packet_pipeline_10mb.packets_per_sec and engine_decide.decisions_per_sec
    must not drop more than 50% below the committed baseline, judged on
    the better of the raw ratio and a machine-speed-normalized ratio.

The alloc budget is the hard invariant: allocation counts are
deterministic, so any nonzero drift there is a real regression. The
throughput gate is deliberately loose (50%): wall-clock on shared/
virtualized CI-class machines swings run to run (interleaved A/B runs
of identical binaries measured a 2x spread here), so a tight ratio
would flake. To keep the loose gate meaningful across machine states,
the current run is also scaled by the dre_add_read canary (a tiny
fixed-work loop whose ns/op tracks how fast the machine is *right
now*): normalized = pps * (cur_dre / base_dre). Passing either the raw
or the normalized ratio is enough; a genuine algorithmic regression —
the failure mode this guard exists for, which costs integer factors,
not percents — fails both.

When the current JSON is a hermeslint --json report (its "tool" field
says so), the guard only *reports* lint wall time against the committed
metrics.lint baseline and always exits 0 — lint latency is tracked, not
gated (the hard lint gate is hermeslint's own exit code in tier1.sh).

When the current JSON comes from bench_ext_fattree_scale (its "bench"
field says so), the fat-tree gates apply instead:

  * every fattree_* entry must report deterministic == 1 (the T=1 and
    T=N runs hashed byte-identical FCT output) and 0 unfinished flows,
  * events_per_sec_t1 must not drop more than 50% below the committed
    baseline entry of the same key (skipped for keys the baseline does
    not carry, e.g. smoke-only configurations), and
  * speedup >= 1.5 for the k=16 entries — asserted only when the
    *current* run had >= 2 cores; on single-core machines the claim is
    untestable and EXPERIMENTS.md documents the fallback methodology.

Usage: check_bench_regress.py <baseline.json> <current.json>
"""

import json
import sys

ALLOC_BUDGET = 0.01
MAX_REGRESSION = 0.50
MIN_SPEEDUP = 1.5


def metric(doc, bench, name):
    try:
        return float(doc["metrics"][bench][name])
    except (KeyError, TypeError, ValueError):
        return None


def check_fattree(baseline, current, failures):
    cores = int(current.get("cores") or 0)
    entries = {
        k: v for k, v in (current.get("metrics") or {}).items() if k.startswith("fattree")
    }
    if not entries:
        failures.append("current run reports no fattree_* metrics")
        return
    for key, m in sorted(entries.items()):
        if int(m.get("deterministic", 0)) != 1:
            failures.append(
                f"{key}: T=1 and T=N produced different FCT output — the "
                "sharded determinism contract is broken"
            )
        if int(m.get("unfinished_flows", 0)) != 0:
            failures.append(
                f"{key}: {m['unfinished_flows']} flows stranded at the time "
                "cap in a fault-free run — scenario no longer completes"
            )
        base_eps = metric(baseline, key, "events_per_sec_t1")
        cur_eps = metric(current, key, "events_per_sec_t1")
        if base_eps and cur_eps:
            if cur_eps / base_eps < 1.0 - MAX_REGRESSION:
                failures.append(
                    f"{key}: serial throughput {cur_eps:,.0f} ev/s is "
                    f"{100 * (1 - cur_eps / base_eps):.1f}% below the baseline "
                    f"{base_eps:,.0f} ev/s (max allowed {100 * MAX_REGRESSION:.0f}%)"
                )
            else:
                print(
                    f"perf guard: {key} {cur_eps:,.0f} ev/s vs baseline "
                    f"{base_eps:,.0f} ({100 * (cur_eps / base_eps - 1):+.1f}%)"
                )
        if key.startswith("fattree_k16") and cores >= 2:
            speedup = float(m.get("speedup") or 0)
            if speedup < MIN_SPEEDUP:
                failures.append(
                    f"{key}: multi-thread speedup {speedup:.2f}x below the "
                    f"{MIN_SPEEDUP}x floor on a {cores}-core machine"
                )
    if cores < 2:
        print(
            "perf guard: speedup gate skipped (single-core machine; "
            "see EXPERIMENTS.md fat-tree scaling methodology)"
        )


def report_lint(baseline, current):
    """Informational only: compare lint wall time to the committed baseline."""
    timing = current.get("timing") or {}
    wall = timing.get("wall_ms")
    if wall is None:
        print("lint report: no timing block in the hermeslint JSON (old binary?)")
        return
    reused = int(timing.get("files_reused") or 0)
    mode = "warm" if reused > 0 else "cold"
    base = metric(baseline, "lint", f"{mode}_wall_ms")
    vs = f" vs committed {mode} baseline {base:,.1f} ms" if base else ""
    print(
        f"lint report ({mode}): {wall:,.1f} ms for "
        f"{int(current.get('files_scanned') or 0)} files "
        f"({reused} from cache, {int(timing.get('files_linted') or 0)} linted){vs}"
    )


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        baseline = json.load(f)
    with open(argv[2]) as f:
        current = json.load(f)

    failures = []

    if current.get("tool") == "hermeslint":
        report_lint(baseline, current)
        return 0

    if current.get("bench") == "bench_ext_fattree_scale":
        check_fattree(baseline, current, failures)
        if failures:
            for msg in failures:
                print(f"perf guard FAIL: {msg}", file=sys.stderr)
            return 1
        return 0

    allocs = metric(current, "packet_pipeline_steady", "allocs_per_packet")
    if allocs is None:
        failures.append(
            "current run has no packet_pipeline_steady.allocs_per_packet "
            "metric — bench binary predates the arena pipeline?"
        )
    elif allocs > ALLOC_BUDGET:
        failures.append(
            f"steady-state pipeline allocates {allocs:.4f} per packet "
            f"(budget {ALLOC_BUDGET}) — the zero-alloc arena path regressed"
        )

    eng_allocs = metric(current, "engine_decide", "allocs_per_decision_steady")
    if eng_allocs is None:
        failures.append(
            "current run has no engine_decide.allocs_per_decision_steady "
            "metric — bench binary predates the engine extraction?"
        )
    elif eng_allocs > ALLOC_BUDGET:
        failures.append(
            f"engine decide() allocates {eng_allocs:.4f} per decision "
            f"(budget {ALLOC_BUDGET}) — the HERMES_HOT allocation-free "
            "decision path regressed"
        )

    base_dps = metric(baseline, "engine_decide", "decisions_per_sec")
    cur_dps = metric(current, "engine_decide", "decisions_per_sec")
    if base_dps and cur_dps:
        raw_d = cur_dps / base_dps
        base_dre_c = metric(baseline, "dre_add_read", "ns_per_op")
        cur_dre_c = metric(current, "dre_add_read", "ns_per_op")
        norm_d = raw_d * (cur_dre_c / base_dre_c) if base_dre_c and cur_dre_c else raw_d
        if max(raw_d, norm_d) < 1.0 - MAX_REGRESSION:
            failures.append(
                f"engine_decide throughput {cur_dps:,.0f} decisions/s is "
                f"{100 * (1 - raw_d):.1f}% below the committed baseline "
                f"{base_dps:,.0f} even after machine-speed normalization "
                f"({100 * (1 - norm_d):.1f}% below; max allowed "
                f"{100 * MAX_REGRESSION:.0f}%)"
            )
        else:
            print(
                f"perf guard: engine_decide {cur_dps:,.0f} decisions/s vs "
                f"baseline {base_dps:,.0f} (raw {100 * (raw_d - 1):+.1f}%), "
                f"steady allocs/decision "
                f"{eng_allocs if eng_allocs is not None else float('nan'):.4f}"
            )

    base_pps = metric(baseline, "packet_pipeline_10mb", "packets_per_sec")
    cur_pps = metric(current, "packet_pipeline_10mb", "packets_per_sec")
    if base_pps is None:
        failures.append(f"baseline {argv[1]} lacks packet_pipeline_10mb.packets_per_sec")
    elif cur_pps is None:
        failures.append("current run lacks packet_pipeline_10mb.packets_per_sec")
    else:
        raw = cur_pps / base_pps
        # Machine-speed normalization via the dre_add_read canary (see
        # module docstring); fall back to the raw ratio if either run
        # lacks the canary metric.
        base_dre = metric(baseline, "dre_add_read", "ns_per_op")
        cur_dre = metric(current, "dre_add_read", "ns_per_op")
        normalized = (
            raw * (cur_dre / base_dre) if base_dre and cur_dre else raw
        )
        best = max(raw, normalized)
        if best < 1.0 - MAX_REGRESSION:
            failures.append(
                f"packet_pipeline_10mb throughput {cur_pps:,.0f} pkts/s is "
                f"{100 * (1 - raw):.1f}% below the committed baseline "
                f"{base_pps:,.0f} pkts/s even after machine-speed "
                f"normalization ({100 * (1 - normalized):.1f}% below; "
                f"max allowed {100 * MAX_REGRESSION:.0f}%)"
            )
        else:
            print(
                f"perf guard: {cur_pps:,.0f} pkts/s vs baseline {base_pps:,.0f} "
                f"(raw {100 * (raw - 1):+.1f}%, normalized {100 * (normalized - 1):+.1f}%), "
                f"steady allocs/pkt {allocs if allocs is not None else float('nan'):.4f}"
            )

    if failures:
        for msg in failures:
            print(f"perf guard FAIL: {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
