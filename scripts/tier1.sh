#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before it lands.
#
#   1. Default (RelWithDebInfo) build with -Werror + full ctest suite
#      (includes the hermeslint fixture tests and the tree-clean check).
#   2. hermeslint over the whole tree — zero findings required; see
#      DESIGN.md "Static analysis & invariants" for the rules. The run
#      is incremental (content-hash cache in build/hermeslint.cache),
#      writes SARIF to build/hermeslint.sarif, and its wall time is
#      reported (informationally) against the metrics.lint entry in
#      BENCH_core.json by check_bench_regress.py.
#   3. clang-tidy gated subset: the WarningsAsErrors checks curated in
#      .clang-tidy (seeded-rand CERT rules, use-after-move, cheap
#      modernize/performance wins) over src/ — any of them failing
#      fails the gate. Auto-skipped when the clang-tidy binary is
#      absent (most build containers; CI's lint job always has it);
#      opt out explicitly with HERMES_TIER1_TIDY=0.
#   4. Release (-O2, NDEBUG) build + `bench_core_micro --smoke`, proving
#      the perf-measurement path itself stays alive, followed by the
#      perf-regression guard: steady-state allocs/packet and engine
#      allocs/decision must stay <= 0.01, and packet_pipeline_10mb /
#      engine_decide throughput within 50% of the committed
#      BENCH_core.json baseline (full numbers live there; see
#      EXPERIMENTS.md).
#   5. Sharded smoke: bench_ext_fattree_scale --smoke runs a k=4
#      fat-tree under the sharded executor at 1 and 2 threads, asserts
#      byte-identical FCT output internally, and the regression guard
#      re-checks determinism/completion from the emitted JSON.
#   6. Fuzz smoke: 25 seeds through hermesfuzz. The nightly workflow
#      (fuzz.yml) runs thousands; this is the per-change canary that the
#      fuzz loop itself still works and the first seeds stay clean.
#   7. hermesd smoke: the standalone decision daemon (links only
#      hermes::engine) replays both shipped traces end-to-end — the
#      fig17 blackhole trace additionally paced at 10x wall-clock —
#      with every `expect` assertion holding.
#   8. TSan build (HERMES_SANITIZE=thread) running the parallel-runner,
#      determinism, sharded-executor, and engine conformance/determinism
#      tests — every threaded path must be race-free. Skip with
#      HERMES_TIER1_TSAN=0 (e.g. on machines without TSan).
#
# Usage: scripts/tier1.sh  (from the repo root; build dirs are reused)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${HERMES_TIER1_JOBS:-$(nproc)}"

echo "== [1/8] build (-Werror) + ctest (RelWithDebInfo) =="
cmake -B build -S . -DHERMES_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== [2/8] hermeslint (incremental, SARIF) =="
./build/tools/hermeslint/hermeslint --root=. \
  --cache=build/hermeslint.cache --threads="$JOBS" \
  --json=build/hermeslint.json --sarif=build/hermeslint.sarif \
  src bench tests examples tools
python3 scripts/check_bench_regress.py BENCH_core.json build/hermeslint.json

if [[ "${HERMES_TIER1_TIDY:-1}" != "1" ]]; then
  echo "== [3/8] clang-tidy gated subset skipped (HERMES_TIER1_TIDY=0) =="
elif ! command -v clang-tidy >/dev/null 2>&1; then
  echo "== [3/8] clang-tidy gated subset skipped (binary not installed) =="
else
  echo "== [3/8] clang-tidy gated subset (WarningsAsErrors from .clang-tidy) =="
  git ls-files 'src/**/*.cpp' | xargs -P "$JOBS" -n 4 clang-tidy -p build --quiet
fi

echo "== [4/8] Release build + bench_core_micro --smoke =="
cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-rel -j "$JOBS" --target bench_core_micro
(cd build-rel && ./bench/bench_core_micro --smoke --json=BENCH_core_smoke.json)
python3 scripts/check_bench_regress.py BENCH_core.json build-rel/BENCH_core_smoke.json

echo "== [5/8] sharded smoke (k=4 fat-tree, 1 vs 2 threads) =="
cmake --build build-rel -j "$JOBS" --target bench_ext_fattree_scale
(cd build-rel && ./bench/bench_ext_fattree_scale --smoke --json=BENCH_fattree_smoke.json)
python3 scripts/check_bench_regress.py BENCH_core.json build-rel/BENCH_fattree_smoke.json

echo "== [6/8] fuzz smoke (25 seeds) =="
FUZZ_OUT="$(mktemp -d)"
./build/tools/hermesfuzz/hermesfuzz --seeds=25 --out="$FUZZ_OUT"
rm -rf "$FUZZ_OUT"

echo "== [7/8] hermesd trace replay smoke =="
./build/tools/hermesd/hermesd tools/hermesd/traces/smoke.trace --speed=0
./build/tools/hermesd/hermesd tools/hermesd/traces/fig17_blackhole.trace --speed=10 \
  --json=build/hermesd_fig17.json

if [[ "${HERMES_TIER1_TSAN:-1}" == "1" ]]; then
  echo "== [8/8] TSan build + parallel/sharded/engine tests =="
  cmake -B build-tsan -S . -DHERMES_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" --target hermes_tests
  ./build-tsan/tests/hermes_tests \
    --gtest_filter='ParallelRunner.*:Determinism.ParallelSweepIsByteIdenticalToSerial:Sharded.ThreadCountIsInvisible_Ecmp:Sharded.FaultTrainIsThreadCountInvisible:EngineConformance.*:EngineDeterminism.*'
else
  echo "== [8/8] TSan stage skipped (HERMES_TIER1_TSAN=0) =="
fi

echo "tier-1: OK"
