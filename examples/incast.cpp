// Incast: N synchronized senders answer one aggregator host at once —
// the classic partition/aggregate pattern that motivates DCTCP. Shows
// the transport substrate (ECN keeping the fan-in queue near the
// marking threshold) and why last-hop congestion is path-independent:
// no load balancer can route around the receiver's own link.
//
//   $ ./incast

#include <cstdint>
#include <cstdio>

#include "hermes/harness/scenario.hpp"
#include "hermes/harness/trace.hpp"
#include "hermes/stats/table.hpp"

int main() {
  using namespace hermes;

  stats::Table t({"senders", "response", "max fan-in queue", "p99 FCT", "timeouts"});
  for (int senders : {4, 8, 16, 32}) {
    harness::ScenarioConfig cfg;
    cfg.topo.num_leaves = 4;
    cfg.topo.num_spines = 4;
    cfg.topo.hosts_per_leaf = 12;
    cfg.scheme = harness::Scheme::kHermes;
    harness::Scenario s{cfg};

    // The aggregator is host 0; responders are spread over other racks.
    constexpr std::uint64_t kResponse = 256 * 1024;
    for (int i = 0; i < senders; ++i) {
      const int responder = 12 + i;  // racks 1..3
      s.add_flow(responder, 0, kResponse, sim::usec(0));
    }

    // The fan-in point: leaf0's port toward host 0.
    harness::QueueTrace trace{s.simulator(), s.topology().leaf(0).port(0), sim::usec(10)};
    trace.start(sim::msec(20));

    auto fct = s.run();
    t.add_row({std::to_string(senders), "256KB",
               stats::Table::num(trace.max_backlog() / 1e3, 1) + " KB",
               stats::Table::usec(fct.overall().p99_us),
               std::to_string(fct.total_timeouts())});
  }
  t.print();
  std::printf("\nThe synchronized initial windows (senders x IW x MSS) spike the fan-in\n"
              "queue; DCTCP's marking then drags it back toward the 97.5KB threshold,\n"
              "so p99 grows linearly with the fan-in rather than collapsing into RTOs.\n");
  return 0;
}
