// Quickstart: build a small leaf-spine fabric, run a handful of DCTCP
// flows under Hermes, and print their completion times.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API: TopologyConfig ->
// ScenarioConfig -> Scenario -> add_flow/run.

#include <cstdio>

#include "hermes/harness/scenario.hpp"

int main() {
  using namespace hermes;

  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 4;
  cfg.topo.num_spines = 4;
  cfg.topo.hosts_per_leaf = 4;
  cfg.topo.host_rate_bps = 10e9;
  cfg.topo.fabric_rate_bps = 10e9;
  cfg.scheme = harness::Scheme::kHermes;
  cfg.seed = 42;

  harness::Scenario scenario{cfg};

  // A few flows between hosts under different leaves.
  scenario.add_flow(/*src=*/0, /*dst=*/5, /*size=*/1'000'000, sim::usec(0));
  scenario.add_flow(/*src=*/1, /*dst=*/9, /*size=*/200'000, sim::usec(50));
  scenario.add_flow(/*src=*/2, /*dst=*/13, /*size=*/50'000, sim::usec(100));
  scenario.add_flow(/*src=*/6, /*dst=*/14, /*size=*/5'000'000, sim::usec(0));

  auto fct = scenario.run();

  std::printf("Hermes quickstart: %zu flows completed\n", fct.total_flows());
  for (const auto& r : fct.records()) {
    std::printf("  flow %llu: %8llu bytes  fct=%s  reroutes=%u timeouts=%u\n",
                static_cast<unsigned long long>(r.id),
                static_cast<unsigned long long>(r.size), r.fct().to_string().c_str(),
                r.reroutes, r.timeouts);
  }
  const auto s = fct.overall();
  std::printf("overall: mean=%.1fus p99=%.1fus\n", s.mean_us, s.p99_us);
  return 0;
}
