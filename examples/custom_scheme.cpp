// Extending the library: implement a custom load balancer against the
// lb::LoadBalancer interface and race it against the built-in schemes.
//
//   $ ./custom_scheme
//
// The toy scheme below ("least-queued") reads the source leaf's uplink
// backlogs directly — something a deployable edge scheme could not do,
// but a minimal example of the extension point: implement select_path(),
// optionally tap the signal hooks, and install the instance through
// ScenarioConfig::wrap_balancer.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string_view>

#include "hermes/harness/experiment.hpp"
#include "hermes/stats/table.hpp"

namespace {

using namespace hermes;

/// Chooses, per packet, the path whose source-leaf uplink has the
/// smallest backlog. Omniscient about local queues, oblivious to the
/// rest of the path (compare DRILL's switch-local policy).
class LeastQueuedLb final : public lb::LoadBalancer {
 public:
  explicit LeastQueuedLb(net::Topology& topo) : topo_{topo} {}

  int select_path(lb::FlowCtx& flow, const net::Packet&) override {
    if (flow.intra_rack()) return -1;
    const auto& paths = topo_.paths_between_leaves(flow.src_leaf, flow.dst_leaf);
    const net::FabricPath* best = &paths.front();
    std::uint32_t best_backlog = ~0u;
    for (const auto& p : paths) {
      const auto backlog =
          topo_.leaf_uplink(flow.src_leaf, p.spine, p.link_idx).backlog_bytes();
      if (backlog < best_backlog) {
        best_backlog = backlog;
        best = &p;
      }
    }
    return best->id;
  }

  [[nodiscard]] std::string_view name() const override { return "least-queued"; }

 private:
  net::Topology& topo_;
};

}  // namespace

int main() {
  using harness::Scheme;

  harness::ScenarioConfig base;
  base.topo.num_leaves = 4;
  base.topo.num_spines = 4;
  base.topo.hosts_per_leaf = 8;
  const auto dist = workload::SizeDist::web_search();

  std::printf("custom scheme demo: per-packet least-queued-uplink vs built-ins\n\n");
  stats::Table t({"scheme", "overall avg FCT", "small p99"});

  for (Scheme scheme : {Scheme::kEcmp, Scheme::kHermes}) {
    auto cfg = base;
    cfg.scheme = scheme;
    auto fct = harness::run_workload_experiment(cfg, dist, 0.6, 500, 3);
    t.add_row({harness::to_string(scheme), stats::Table::usec(fct.overall().mean_us),
               stats::Table::usec(fct.small_flows().p99_us)});
  }

  {
    auto cfg = base;
    cfg.scheme = Scheme::kDrb;          // replaced entirely by the wrapper
    cfg.tcp.reorder_buffer = true;      // per-packet spraying needs the mask
    cfg.wrap_balancer = [](sim::Simulator&, net::Topology& topo,
                           std::unique_ptr<lb::LoadBalancer>) {
      return std::make_unique<LeastQueuedLb>(topo);
    };
    auto fct = harness::run_workload_experiment(cfg, dist, 0.6, 500, 3);
    t.add_row({"least-queued (custom)", stats::Table::usec(fct.overall().mean_us),
               stats::Table::usec(fct.small_flows().p99_us)});
  }

  t.print();
  std::printf("\nEvery scheme saw byte-identical flow arrivals (same seed).\n");
  return 0;
}
