// Failure-detection walkthrough: inject a packet blackhole and a silent
// random-drop switch into an 8x8 fabric, run traffic under Hermes, and
// watch the sensing module identify the failed paths (§3.1.2).
//
//   $ ./failure_detection
//
// Demonstrates: SwitchFailureConfig injection, HermesLb introspection
// (path_state / path_type / blackholed), and the FCT consequences.

#include <cstdio>

#include "hermes/core/path_state.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/lb/flow_ctx.hpp"
#include "hermes/workload/flow_gen.hpp"

int main() {
  using namespace hermes;

  harness::ScenarioConfig cfg;
  cfg.scheme = harness::Scheme::kHermes;
  cfg.max_sim_time = sim::sec(5);
  harness::Scenario s{cfg};

  // Spine 1: drops packets of host pairs (rack0 -> rack7, even mix) like
  // a TCAM-corrupted switch. Spine 5: silently drops 2% of everything.
  s.topology().spine(1).set_failure(
      {.blackhole =
           [&topo = s.topology()](const net::Packet& p) {
             return p.type == net::PacketType::kData && topo.leaf_of(p.src) == 0 &&
                    topo.leaf_of(p.dst) == 7 &&
                    lb::mix64(static_cast<std::uint64_t>(p.src) * 4096 +
                              static_cast<std::uint64_t>(p.dst)) %
                            2 ==
                        0;
           },
       .random_drop_rate = 0.0});
  s.topology().spine(5).set_failure({.blackhole = nullptr, .random_drop_rate = 0.02});

  workload::TrafficConfig tc{.load = 0.5, .num_flows = 1500, .seed = 7};
  s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                 workload::SizeDist::web_search(), tc));

  // A chatty host pair crossing the blackhole: host 0 (rack0) repeatedly
  // talks to host 112 (rack7). Blackhole detection is per host pair, so
  // the pair's accumulated timeouts on the poisoned path latch it.
  for (int i = 0; i < 30; ++i) s.add_flow(0, 112, 80'000, sim::msec(5 + 10 * i));

  // Periodically report what Hermes believes about rack0 -> rack7 paths.
  for (int ms : {5, 20, 80, 200}) {
    s.simulator().at(sim::msec(ms), [&s, ms] {
      std::printf("t=%3dms  rack0->rack7 path types:", ms);
      const auto& paths = s.topology().paths_between_leaves(0, 7);
      for (const auto& p : paths) {
        std::printf(" s%d:%s", p.spine,
                    to_string(s.hermes()->path_type(0, 7, p.local_index)));
      }
      std::printf("\n");
    });
  }

  auto fct = s.run();

  std::printf("\nflows: %zu total, %zu unfinished (Hermes routes around both failures)\n",
              fct.total_flows(), fct.unfinished_flows());
  std::printf("overall mean FCT: %.0fus, timeouts: %llu\n", fct.overall().mean_us,
              static_cast<unsigned long long>(fct.total_timeouts()));

  int drop_latched = 0, hole_pairs = 0;
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      if (a == b) continue;
      const auto& paths = s.topology().paths_between_leaves(a, b);
      for (const auto& p : paths) {
        if (p.spine == 5 && s.hermes()->path_state(a, b, p.local_index).failed())
          ++drop_latched;
      }
    }
  }
  for (int src = 0; src < 16; ++src)
    for (int dst = 112; dst < 128; ++dst)
      for (int i = 0; i < 8; ++i)
        if (s.hermes()->blackholed(src, dst, i)) ++hole_pairs;

  std::printf("random-drop detector: %d rack-pair paths through spine 5 latched failed\n",
              drop_latched);
  std::printf("blackhole detector: %d (host pair, path) entries latched\n", hole_pairs);
  std::printf("switch drop counters: spine1=%llu (blackhole), spine5=%llu (random)\n",
              static_cast<unsigned long long>(s.topology().spine(1).failure_drops()),
              static_cast<unsigned long long>(s.topology().spine(5).failure_drops()));
  return 0;
}
