// Failure-detection walkthrough: inject a packet blackhole and a silent
// random-drop switch into an 8x8 fabric *mid-run* via a timed FaultPlan,
// run traffic under Hermes, watch the sensing module identify the failed
// paths (§3.1.2) — and then watch it RELEASE them after the faults heal
// (the failure latch expires without fresh evidence).
//
//   $ ./failure_detection
//
// Demonstrates: FaultPlan with onset + recovery, FaultScheduler
// introspection (log / active_faults), HermesLb introspection
// (path_state / path_type / blackholed), per-reason switch drop
// counters, and the FCT consequences.

#include <cstdio>

#include "hermes/engine/path_state.hpp"
#include "hermes/faults/fault_plan.hpp"
#include "hermes/faults/fault_scheduler.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/workload/flow_gen.hpp"

int main() {
  using namespace hermes;
  using sim::msec;

  harness::ScenarioConfig cfg;
  cfg.scheme = harness::Scheme::kHermes;
  cfg.max_sim_time = sim::sec(5);

  // Both faults onset at 5ms and heal at 250ms:
  //   spine 1 blackholes half the rack0 -> rack7 host pairs, like a
  //   TCAM-corrupted switch; spine 5 silently drops 2% of everything.
  const sim::SimTime onset = msec(5);
  const sim::SimTime heal = msec(250);
  cfg.fault_plan
      .transient_blackhole(onset, heal, /*switch_id=*/1,
                           faults::rack_pair_blackhole(cfg.topo.hosts_per_leaf, 0, 7,
                                                       /*half_pairs=*/true))
      .transient_random_drop(onset, heal, /*switch_id=*/5, 0.02);
  cfg.check_invariants = true;

  harness::Scenario s{cfg};

  workload::TrafficConfig tc{.load = 0.5, .num_flows = 1500, .seed = 7};
  s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                 workload::SizeDist::web_search(), tc));

  // A chatty host pair crossing the blackhole: host 0 (rack0) repeatedly
  // talks to host 112 (rack7). Blackhole detection is per host pair, so
  // the pair's accumulated timeouts on the poisoned path latch it — and
  // the same pair's continued chatter past t=250ms gives the healed path
  // fresh samples, so we can watch the latch expire.
  for (int i = 0; i < 60; ++i) s.add_flow(0, 112, 80'000, msec(5 + 10 * i));

  // Periodically report what Hermes believes about rack0 -> rack7 paths:
  // detection while the faults are live, release after they heal.
  for (int ms : {5, 20, 80, 200, 300, 450}) {
    s.simulator().at(msec(ms), [&s, ms] {
      std::printf("t=%3dms  [%d fault(s) active]  rack0->rack7 path types:", ms,
                  s.fault_scheduler()->active_faults());
      const auto& paths = s.topology().paths_between_leaves(0, 7);
      for (const auto& p : paths) {
        std::printf(" s%d:%s", p.spine,
                    to_string(s.hermes()->path_type(0, 7, p.local_index)));
      }
      std::printf("\n");
    });
  }

  auto fct = s.run();

  std::printf("\nfault timeline as executed:\n");
  for (const auto& e : s.fault_scheduler()->log())
    std::printf("  t=%3lldms  %s\n",
                static_cast<long long>(e.at.to_usec() / 1000), e.what.c_str());

  std::printf("\nflows: %zu total, %zu unfinished (Hermes routes around both failures)\n",
              fct.total_flows(), fct.unfinished_flows());
  std::printf("overall mean FCT: %.0fus, timeouts: %llu\n", fct.overall().mean_us,
              static_cast<unsigned long long>(fct.total_timeouts()));

  // Post-run introspection. Both faults healed at 250ms and the latches
  // expire without fresh timeout evidence, so these counts are 0 again.
  int drop_latched = 0, hole_pairs = 0;
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      if (a == b) continue;
      const auto& paths = s.topology().paths_between_leaves(a, b);
      for (const auto& p : paths) {
        // failed_active applies the latch expiry (the raw failed() flag
        // can linger on pairs that saw no traffic after the heal).
        if (p.spine == 5 && s.hermes()
                                ->path_state(a, b, p.local_index)
                                .failed_active(s.simulator().now().ns(),
                                               s.hermes()->engine().config()))
          ++drop_latched;
      }
    }
  }
  for (int src = 0; src < 16; ++src)
    for (int dst = 112; dst < 128; ++dst)
      for (int i = 0; i < 8; ++i)
        if (s.hermes()->blackholed(src, dst, i)) ++hole_pairs;

  std::printf("still latched after recovery: %d random-drop paths, %d blackhole entries\n",
              drop_latched, hole_pairs);
  std::printf("switch drop counters: spine1=%llu (blackhole), spine5=%llu (random)\n",
              static_cast<unsigned long long>(s.topology().spine(1).blackhole_drops()),
              static_cast<unsigned long long>(s.topology().spine(5).random_drops()));
  std::printf("invariants: %s after %llu checks\n",
              s.invariants()->ok() ? "PASS" : "FAIL",
              static_cast<unsigned long long>(s.invariants()->checks_run()));
  return s.invariants()->ok() ? 0 : 1;
}
