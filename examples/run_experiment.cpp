// Command-line experiment runner: compose a fabric, scheme and workload
// from flags and print the FCT breakdown. The "swiss-army knife" entry
// point for ad-hoc studies without writing code.
//
//   $ ./run_experiment --scheme=hermes --load=0.7 --flows=500
//   $ ./run_experiment --scheme=conga --workload=datamining --leaves=4
//         --spines=4 --hosts=8 --degrade=0,1,2e9 --drop=3,0.02 --seed=7

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hermes/harness/experiment.hpp"
#include "hermes/stats/csv.hpp"
#include "hermes/stats/table.hpp"

namespace {

using namespace hermes;

const char* arg_value(int argc, char** argv, const char* key) {
  const std::size_t n = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, n) == 0 && argv[i][n] == '=') return argv[i] + n + 1;
  }
  return nullptr;
}

double arg_double(int argc, char** argv, const char* key, double def) {
  const char* v = arg_value(argc, argv, key);
  return v ? std::atof(v) : def;
}
int arg_int(int argc, char** argv, const char* key, int def) {
  const char* v = arg_value(argc, argv, key);
  return v ? std::atoi(v) : def;
}

harness::Scheme parse_scheme(const char* s) {
  using harness::Scheme;
  const std::string v = s ? s : "hermes";
  if (v == "ecmp") return Scheme::kEcmp;
  if (v == "drb") return Scheme::kDrb;
  if (v == "presto") return Scheme::kPrestoStar;
  if (v == "letflow") return Scheme::kLetFlow;
  if (v == "conga") return Scheme::kConga;
  if (v == "clove") return Scheme::kCloveEcn;
  if (v == "flowbender") return Scheme::kFlowBender;
  if (v == "drill") return Scheme::kDrill;
  if (v == "wcmp") return Scheme::kWcmp;
  return Scheme::kHermes;
}

}  // namespace

int main(int argc, char** argv) {
  if (arg_value(argc, argv, "--help") || (argc > 1 && std::strcmp(argv[1], "--help") == 0)) {
    std::printf(
        "usage: run_experiment [--scheme=ecmp|wcmp|drb|presto|letflow|conga|clove|"
        "flowbender|drill|hermes]\n"
        "  [--workload=websearch|datamining] [--load=0.6] [--flows=500] [--seed=1]\n"
        "  [--leaves=8] [--spines=8] [--hosts=16] [--gbps=10]\n"
        "  [--degrade=leaf,spine,rate_bps]  (repeatable)\n"
        "  [--cut=leaf,spine]               (repeatable)\n"
        "  [--drop=spine,rate]              (silent random drops)\n"
        "  [--csv=path.csv]                 (per-flow records)\n");
    return 0;
  }

  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = arg_int(argc, argv, "--leaves", 8);
  cfg.topo.num_spines = arg_int(argc, argv, "--spines", 8);
  cfg.topo.hosts_per_leaf = arg_int(argc, argv, "--hosts", 16);
  cfg.topo.host_rate_bps = cfg.topo.fabric_rate_bps =
      arg_double(argc, argv, "--gbps", 10) * 1e9;
  cfg.scheme = parse_scheme(arg_value(argc, argv, "--scheme"));
  cfg.seed = static_cast<std::uint64_t>(arg_int(argc, argv, "--seed", 1));

  for (int i = 1; i < argc; ++i) {
    int leaf, spine;
    double rate;
    if (std::sscanf(argv[i], "--degrade=%d,%d,%lf", &leaf, &spine, &rate) == 3) {
      cfg.topo.fabric_overrides[{leaf, spine, 0}] = rate;
    } else if (std::sscanf(argv[i], "--cut=%d,%d", &leaf, &spine) == 2) {
      cfg.topo.fabric_overrides[{leaf, spine, 0}] = 0;
    }
  }

  harness::Scenario s{cfg};

  for (int i = 1; i < argc; ++i) {
    int spine;
    double rate;
    if (std::sscanf(argv[i], "--drop=%d,%lf", &spine, &rate) == 2) {
      s.topology().spine(spine).set_failure({.blackhole = nullptr, .random_drop_rate = rate});
    }
  }

  const char* wl = arg_value(argc, argv, "--workload");
  const auto dist = (wl && std::string(wl) == "datamining") ? workload::SizeDist::data_mining()
                                                            : workload::SizeDist::web_search();
  workload::TrafficConfig tc;
  tc.load = arg_double(argc, argv, "--load", 0.6);
  tc.num_flows = arg_int(argc, argv, "--flows", 500);
  tc.seed = cfg.seed;
  s.add_flows(workload::generate_poisson_traffic(s.topology(), dist, tc));

  std::printf("scheme=%s workload=%s load=%.2f flows=%d fabric=%dx%dx%d\n",
              harness::to_string(cfg.scheme), dist.name().c_str(), tc.load, tc.num_flows,
              cfg.topo.num_leaves, cfg.topo.num_spines, cfg.topo.hosts_per_leaf);

  auto fct = s.run();
  const auto o = fct.overall();
  const auto sm = fct.small_flows();
  const auto lg = fct.large_flows();
  stats::Table t({"bin", "count", "mean", "p50", "p99"});
  auto row = [&](const char* name, const stats::FctSummary& x) {
    t.add_row({name, std::to_string(x.count), stats::Table::usec(x.mean_us),
               stats::Table::usec(x.p50_us), stats::Table::usec(x.p99_us)});
  };
  row("all", o);
  row("small (<100KB)", sm);
  row("large (>10MB)", lg);
  t.print();
  std::printf("unfinished: %zu (%.2f%%), timeouts: %llu, reroutes: %llu\n",
              fct.unfinished_flows(), 100 * fct.unfinished_fraction(),
              static_cast<unsigned long long>(fct.total_timeouts()),
              static_cast<unsigned long long>(fct.total_reroutes()));
  if (const char* csv = arg_value(argc, argv, "--csv")) {
    if (stats::write_file(csv, stats::to_csv(fct))) {
      std::printf("per-flow records written to %s\n", csv);
    } else {
      std::fprintf(stderr, "failed to write %s\n", csv);
      return 1;
    }
  }
  return 0;
}
