// Asymmetric-fabric comparison: degrade a fifth of the leaf-spine links
// to 2G and run the SAME trace under ECMP, CONGA, CLOVE-ECN and Hermes.
//
//   $ ./asymmetric_fabric
//
// Demonstrates: topology overrides, running several schemes on identical
// arrivals, and the FCT breakdowns the paper reports.

#include <cstdio>

#include "hermes/harness/experiment.hpp"
#include "hermes/stats/table.hpp"

int main() {
  using namespace hermes;
  using harness::Scheme;

  harness::ScenarioConfig base;
  base.topo.num_leaves = 4;
  base.topo.num_spines = 4;
  base.topo.hosts_per_leaf = 8;
  // Degrade three uplinks from 10G to 2G.
  base.topo.fabric_overrides[{0, 1, 0}] = 2e9;
  base.topo.fabric_overrides[{2, 3, 0}] = 2e9;
  base.topo.fabric_overrides[{3, 0, 0}] = 2e9;

  const auto dist = workload::SizeDist::web_search();
  std::printf("asymmetric 4x4 fabric (three 2G uplinks), web-search @60%% load\n\n");

  stats::Table t({"scheme", "overall avg", "small avg", "small p99", "large avg"});
  for (Scheme scheme : {Scheme::kEcmp, Scheme::kConga, Scheme::kCloveEcn, Scheme::kHermes}) {
    auto cfg = base;
    cfg.scheme = scheme;
    auto fct = harness::run_workload_experiment(cfg, dist, /*load=*/0.6, /*num_flows=*/600,
                                                /*seed=*/3);
    t.add_row({harness::to_string(scheme), stats::Table::usec(fct.overall().mean_us),
               stats::Table::usec(fct.small_flows().mean_us),
               stats::Table::usec(fct.small_flows().p99_us),
               stats::Table::usec(fct.large_flows().mean_us)});
  }
  t.print();
  std::printf("\nEvery scheme saw byte-identical flow arrivals (same seed).\n");
  return 0;
}
