// Tests for the optional substrate features: RED-style ECN marking and
// DCTCP delayed ACKs with the CE-change flush rule.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <vector>

#include "hermes/harness/scenario.hpp"
#include "hermes/net/port.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes {
namespace {

using sim::msec;
using sim::usec;

class Sink : public net::Device {
 public:
  explicit Sink(net::PacketArena& arena) : arena_{arena} {}
  void receive(net::PacketHandle h, int) override {
    packets.push_back(std::move(arena_[h]));
    arena_.free(h);
  }
  std::vector<net::Packet> packets;

 private:
  net::PacketArena& arena_;
};

net::Packet ect_packet(std::uint32_t size = 1500) {
  net::Packet p;
  p.size = size;
  p.ect = true;
  return p;
}

TEST(RedMarking, NoMarksBelowMinThreshold) {
  sim::Simulator simulator{1};
  net::PortConfig c;
  c.rate_bps = 1e9;
  c.ecn_threshold_bytes = 10'000;
  c.ecn_mode = net::EcnMode::kRed;
  c.queue_capacity_bytes = 100'000;
  net::PacketArena arena;
  Sink sink{arena};
  net::Port port{simulator, arena, "red", c, &sink, 0};
  for (int i = 0; i < 6; ++i) port.send(ect_packet());  // max backlog < 10KB
  simulator.run();
  EXPECT_EQ(port.stats().ecn_marks, 0u);
}

TEST(RedMarking, AlwaysMarksAboveMaxThreshold) {
  sim::Simulator simulator{1};
  net::PortConfig c;
  c.rate_bps = 1e9;
  c.ecn_threshold_bytes = 3'000;
  c.red_max_bytes = 9'000;
  c.ecn_mode = net::EcnMode::kRed;
  c.queue_capacity_bytes = 1'000'000;
  net::PacketArena arena;
  Sink sink{arena};
  net::Port port{simulator, arena, "red", c, &sink, 0};
  for (int i = 0; i < 100; ++i) port.send(ect_packet());
  simulator.run();
  // Once the backlog passed 9KB every further enqueue marks; packets
  // enqueued beyond ~the 7th must all carry CE.
  int marked = 0;
  for (std::size_t i = 10; i < sink.packets.size(); ++i) marked += sink.packets[i].ce;
  EXPECT_EQ(marked, static_cast<int>(sink.packets.size()) - 10);
}

TEST(RedMarking, RampIsProbabilistic) {
  sim::Simulator simulator{1};
  net::PortConfig c;
  c.rate_bps = 1e8;  // slow: queue builds
  c.ecn_threshold_bytes = 10'000;
  c.red_max_bytes = 200'000;
  c.ecn_mode = net::EcnMode::kRed;
  c.queue_capacity_bytes = 300'000;
  net::PacketArena arena;
  Sink sink{arena};
  net::Port port{simulator, arena, "red", c, &sink, 0};
  for (int i = 0; i < 100; ++i) port.send(ect_packet());
  simulator.run();
  int marked = 0;
  for (const auto& p : sink.packets) marked += p.ce;
  // Mid-ramp: some but not all marked.
  EXPECT_GT(marked, 0);
  EXPECT_LT(marked, static_cast<int>(sink.packets.size()));
}

TEST(RedMarking, StepModeUnchangedByRedFields) {
  sim::Simulator simulator{1};
  net::PortConfig c;
  c.rate_bps = 1e9;
  c.ecn_threshold_bytes = 4'000;
  c.ecn_mode = net::EcnMode::kStep;
  c.red_pmax = 0.0;  // would suppress RED marks; step must ignore it
  c.queue_capacity_bytes = 1'000'000;
  net::PacketArena arena;
  Sink sink{arena};
  net::Port port{simulator, arena, "step", c, &sink, 0};
  for (int i = 0; i < 10; ++i) port.send(ect_packet());
  simulator.run();
  EXPECT_GT(port.stats().ecn_marks, 0u);
}

// --- delayed ACKs ---------------------------------------------------------

harness::ScenarioConfig delack_config() {
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 1;
  cfg.topo.hosts_per_leaf = 1;
  cfg.tcp.delayed_ack = true;
  return cfg;
}

TEST(DelayedAck, FlowCompletesWithCoalescedAcks) {
  harness::Scenario s{delack_config()};
  s.add_flow(0, 1, 10'000'000, usec(0));
  auto fct = s.run();
  EXPECT_TRUE(fct.records().front().finished);
  // 10MB at 10G still takes ~8-10ms; delack must not stall the flow.
  EXPECT_LT(fct.overall().mean_us, 11'000.0);
}

TEST(DelayedAck, HalvesAckCount) {
  auto run_acks = [](bool delayed) {
    auto cfg = delack_config();
    cfg.tcp.delayed_ack = delayed;
    harness::Scenario s{cfg};
    s.add_flow(0, 1, 5'000'000, usec(0));
    s.run();
    // ACKs traverse host1's NIC back toward the fabric.
    return s.topology().host(1).nic().stats().tx_packets;
  };
  const auto with = run_acks(true);
  const auto without = run_acks(false);
  EXPECT_LT(with, without * 6 / 10);  // roughly halved
}

TEST(DelayedAck, TimerFlushesTail) {
  // An odd final segment is only acknowledged via the delack timer; the
  // flow must still complete promptly (well under an RTO).
  harness::Scenario s{delack_config()};
  s.add_flow(0, 1, 1460, usec(0));  // single segment
  auto fct = s.run();
  EXPECT_TRUE(fct.records().front().finished);
  EXPECT_LT(fct.overall().mean_us, 1000.0);  // ~delack_timeout, not RTO
}

TEST(DelayedAck, DctcpStillConvergesUnderCongestion) {
  auto cfg = delack_config();
  cfg.topo.hosts_per_leaf = 2;
  harness::Scenario s{cfg};
  transport::FlowSpec spec;
  spec.id = 42;
  spec.src = 0;
  spec.dst = 2;
  spec.size = 30'000'000;
  auto& snd = s.stack(0).start_flow(spec, nullptr);
  s.add_flow(1, 3, 30'000'000, usec(0));
  s.run_for(msec(10));
  // CE-change flushes keep the ECN fraction accurate enough for alpha to
  // move off zero and stay sane.
  EXPECT_GT(snd.dctcp_alpha(), 0.005);
  EXPECT_LE(snd.dctcp_alpha(), 1.0);
}

TEST(DelayedAck, LossRecoveryStillWorks) {
  auto cfg = delack_config();
  harness::Scenario s{cfg};
  s.topology().spine(0).set_failure({.blackhole = nullptr, .random_drop_rate = 0.01});
  s.add_flow(0, 1, 5'000'000, usec(0));
  auto fct = s.run();
  EXPECT_TRUE(fct.records().front().finished);
  EXPECT_GT(fct.records().front().packets_retransmitted, 0u);
}

}  // namespace
}  // namespace hermes
