// Tests for the fault-injection framework: FaultPlan building, the
// FaultScheduler's execution of timed onset/recovery against a live
// fabric, the seeded RandomFaultGenerator, the runtime InvariantChecker,
// and the determinism regression (same seed + same fault plan => byte
// identical FCT statistics).

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include <map>

#include "hermes/faults/fault_plan.hpp"
#include "hermes/faults/fault_scheduler.hpp"
#include "hermes/faults/invariant_checker.hpp"
#include "hermes/faults/random_faults.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/workload/flow_gen.hpp"

namespace hermes::faults {
namespace {

using sim::msec;
using sim::usec;

net::TopologyConfig small_topo() {
  net::TopologyConfig c;
  c.num_leaves = 2;
  c.num_spines = 2;
  c.hosts_per_leaf = 2;
  return c;
}

// --- FaultPlan ----------------------------------------------------------

TEST(FaultPlan, TransientHelpersEmitOnsetAndRecovery) {
  FaultPlan plan;
  plan.transient_random_drop(msec(10), msec(20), /*switch_id=*/1, 0.02);
  plan.transient_blackhole(msec(5), msec(15), 0, rack_pair_blackhole(2, 0, 1));
  ASSERT_EQ(plan.size(), 4u);
  const auto ev = plan.sorted();
  EXPECT_EQ(ev[0].action, FaultAction::kBlackholeOn);
  EXPECT_EQ(ev[0].at, msec(5));
  EXPECT_EQ(ev[1].action, FaultAction::kRandomDropSet);
  EXPECT_DOUBLE_EQ(ev[1].rate, 0.02);
  EXPECT_EQ(ev[2].action, FaultAction::kBlackholeOff);
  EXPECT_EQ(ev[3].action, FaultAction::kRandomDropSet);
  EXPECT_DOUBLE_EQ(ev[3].rate, 0.0);  // recovery clears the rate
}

TEST(FaultPlan, SortIsStableOnTies) {
  FaultPlan plan;
  plan.link_down(msec(1), 0, 0).link_up(msec(1), 0, 1).random_drop(msec(1), 0, 0.5);
  const auto ev = plan.sorted();
  EXPECT_EQ(ev[0].action, FaultAction::kLinkDown);
  EXPECT_EQ(ev[1].action, FaultAction::kLinkUp);
  EXPECT_EQ(ev[2].action, FaultAction::kRandomDropSet);
}

TEST(FaultPlan, FlapTrainAlternates) {
  FaultPlan plan;
  plan.flap_random_drop(msec(0), 0, 0.1, msec(10), /*count=*/3, /*duty=*/0.5);
  ASSERT_EQ(plan.size(), 6u);
  const auto ev = plan.sorted();
  for (int cycle = 0; cycle < 3; ++cycle) {
    EXPECT_EQ(ev[2 * cycle].at, msec(10) * cycle);
    EXPECT_DOUBLE_EQ(ev[2 * cycle].rate, 0.1);
    EXPECT_EQ(ev[2 * cycle + 1].at, msec(10) * cycle + msec(5));
    EXPECT_DOUBLE_EQ(ev[2 * cycle + 1].rate, 0.0);
  }
}

TEST(FaultPlan, MergeComposesPlans) {
  FaultPlan a;
  a.link_down(msec(2), 0, 0);
  FaultPlan b;
  b.link_up(msec(1), 0, 0);
  a.merge(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.sorted()[0].action, FaultAction::kLinkUp);  // merged event sorts first
}

TEST(RackPairBlackhole, MatchesOnlyTargetPairData) {
  const auto pred = rack_pair_blackhole(/*hosts_per_leaf=*/2, /*src_leaf=*/0, /*dst_leaf=*/1);
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = 0;
  p.dst = 2;  // leaf 0 -> leaf 1
  EXPECT_TRUE(pred(p));
  p.dst = 1;  // intra-rack
  EXPECT_FALSE(pred(p));
  p.src = 2;
  p.dst = 0;  // reverse direction not matched
  EXPECT_FALSE(pred(p));
  p.src = 0;
  p.dst = 2;
  p.type = net::PacketType::kAck;  // only data packets blackholed
  EXPECT_FALSE(pred(p));
}

TEST(RackPairBlackhole, HalfPairsIsDeterministicSubset) {
  const auto all = rack_pair_blackhole(8, 0, 1, /*half_pairs=*/false);
  const auto half = rack_pair_blackhole(8, 0, 1, /*half_pairs=*/true);
  int matched_all = 0;
  int matched_half = 0;
  for (int s = 0; s < 8; ++s) {
    for (int d = 8; d < 16; ++d) {
      net::Packet p;
      p.type = net::PacketType::kData;
      p.src = s;
      p.dst = d;
      matched_all += all(p) ? 1 : 0;
      matched_half += half(p) ? 1 : 0;
      // Deterministic: the same header always gets the same verdict.
      EXPECT_EQ(half(p), half(p));
    }
  }
  EXPECT_EQ(matched_all, 64);
  EXPECT_GT(matched_half, 0);
  EXPECT_LT(matched_half, 64);
}

// --- FaultScheduler -----------------------------------------------------

TEST(FaultScheduler, AppliesTransientSwitchFaults) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, small_topo()};
  FaultScheduler sched{simulator, topo};

  FaultPlan plan;
  plan.transient_random_drop(msec(1), msec(3), /*switch_id=*/0, 0.05);
  plan.transient_blackhole(msec(2), msec(4), /*switch_id=*/1,
                           rack_pair_blackhole(2, 0, 1));
  sched.install(plan);
  EXPECT_EQ(sched.pending(), 4u);

  simulator.run_until(msec(1) + usec(1));
  EXPECT_DOUBLE_EQ(topo.spine(0).failure().random_drop_rate, 0.05);
  EXPECT_EQ(sched.active_faults(), 1);

  simulator.run_until(msec(2) + usec(1));
  EXPECT_TRUE(static_cast<bool>(topo.spine(1).failure().blackhole));
  EXPECT_EQ(sched.active_faults(), 2);

  simulator.run_until(msec(5));
  EXPECT_DOUBLE_EQ(topo.spine(0).failure().random_drop_rate, 0.0);
  EXPECT_FALSE(static_cast<bool>(topo.spine(1).failure().blackhole));
  EXPECT_EQ(sched.active_faults(), 0);
  EXPECT_EQ(sched.applied(), 4u);
  EXPECT_EQ(sched.pending(), 0u);
  ASSERT_EQ(sched.log().size(), 4u);
  EXPECT_EQ(sched.log()[0].at, msec(1));
}

TEST(FaultScheduler, CutsAndRestoresLinks) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, small_topo()};
  FaultScheduler sched{simulator, topo};

  FaultPlan plan;
  plan.link_down(msec(1), /*leaf=*/0, /*spine=*/1);
  plan.link_up(msec(2), 0, 1);
  plan.link_rate(msec(1), 1, 0, 2e9, /*k=*/0, "degrade");
  sched.install(plan);

  simulator.run_until(msec(1) + usec(1));
  EXPECT_FALSE(topo.leaf_uplink(0, 1).link_up());
  EXPECT_FALSE(topo.spine_downlink(1, 0).link_up());
  EXPECT_EQ(sched.active_faults(), 2);  // cut + degrade

  simulator.run_until(msec(2) + usec(1));
  EXPECT_TRUE(topo.leaf_uplink(0, 1).link_up());
  EXPECT_TRUE(topo.spine_downlink(1, 0).link_up());
  EXPECT_EQ(sched.active_faults(), 1);  // degrade still active

  // Restoring the configured rate clears the degrade.
  FaultPlan heal;
  heal.link_rate(msec(3), 1, 0, topo.configured_link_rate(1, 0));
  sched.install(heal);
  simulator.run_until(msec(4));
  EXPECT_EQ(sched.active_faults(), 0);
}

TEST(FaultScheduler, TransitionCallbackFires) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, small_topo()};
  FaultScheduler sched{simulator, topo};
  std::vector<FaultAction> seen;
  sched.on_transition = [&](const FaultEvent& e) { seen.push_back(e.action); };
  FaultPlan plan;
  plan.transient_random_drop(msec(1), msec(2), 0, 0.1);
  sched.install(plan);
  simulator.run_until(msec(3));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], FaultAction::kRandomDropSet);
}

// --- FaultScheduler edge cases ------------------------------------------
// The fuzzer's adversarial patterns lean on these semantics: re-breaking
// an already-broken thing is not a new fault, healing a healthy thing is
// not a negative one, and ties execute in plan insertion order.

TEST(FaultSchedulerEdge, OverlappingSameLinkCutsCountOnce) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, small_topo()};
  FaultScheduler sched{simulator, topo};

  FaultPlan plan;
  plan.link_down(msec(1), 0, 0).link_down(msec(2), 0, 0).link_up(msec(3), 0, 0);
  sched.install(plan);

  simulator.run_until(msec(2) + usec(1));
  EXPECT_FALSE(topo.leaf_uplink(0, 0).link_up());
  EXPECT_EQ(sched.active_faults(), 1);  // second cut of a dead link is not a new fault

  simulator.run_until(msec(4));
  EXPECT_TRUE(topo.leaf_uplink(0, 0).link_up());
  EXPECT_EQ(sched.active_faults(), 0);  // one heal undoes both cuts
  EXPECT_EQ(sched.applied(), 3u);
}

TEST(FaultSchedulerEdge, RecoveryBeforeOnsetIsANoOp) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, small_topo()};
  FaultScheduler sched{simulator, topo};

  FaultPlan plan;
  plan.link_up(msec(1), 0, 1);  // heals a link that was never cut
  plan.link_down(msec(2), 0, 1);
  plan.link_up(msec(3), 0, 1);
  sched.install(plan);

  simulator.run_until(msec(1) + usec(1));
  EXPECT_TRUE(topo.leaf_uplink(0, 1).link_up());
  EXPECT_EQ(sched.active_faults(), 0);  // not -1

  simulator.run_until(msec(4));
  EXPECT_TRUE(topo.leaf_uplink(0, 1).link_up());
  EXPECT_EQ(sched.active_faults(), 0);
}

TEST(FaultSchedulerEdge, RecoveryTiedWithOnsetRunsInInsertionOrder) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, small_topo()};
  FaultScheduler sched{simulator, topo};

  // Same timestamp: the stable sort keeps insertion order, so the heal
  // (inserted first) applies to the still-healthy link, then the cut
  // lands — the link ends the tick down.
  FaultPlan plan;
  plan.link_up(msec(1), 1, 1).link_down(msec(1), 1, 1);
  sched.install(plan);
  simulator.run_until(msec(2));
  EXPECT_FALSE(topo.leaf_uplink(1, 1).link_up());
  EXPECT_EQ(sched.active_faults(), 1);
  ASSERT_EQ(sched.log().size(), 2u);
  EXPECT_EQ(sched.log()[0].action, FaultAction::kLinkUp);
  EXPECT_EQ(sched.log()[1].action, FaultAction::kLinkDown);
}

TEST(FaultSchedulerEdge, ZeroDurationFaultHealsWithinTheTick) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, small_topo()};
  FaultScheduler sched{simulator, topo};

  FaultPlan plan;
  plan.random_drop(msec(1), 0, 0.5).random_drop(msec(1), 0, 0.0);
  plan.link_down(msec(1), 0, 0).link_up(msec(1), 0, 0);
  sched.install(plan);
  simulator.run_until(msec(2));
  EXPECT_DOUBLE_EQ(topo.spine(0).failure().random_drop_rate, 0.0);
  EXPECT_TRUE(topo.leaf_uplink(0, 0).link_up());
  EXPECT_EQ(sched.active_faults(), 0);
  EXPECT_EQ(sched.applied(), 4u);
}

// --- RandomFaultGenerator -----------------------------------------------

TEST(RandomFaultGenerator, SameSeedSamePlan) {
  const auto topo = small_topo();
  RandomFaultConfig cfg;
  cfg.horizon = sim::sec(2);
  cfg.mtbf = msec(50);
  auto gen = [&](std::uint64_t seed) {
    return RandomFaultGenerator{topo, cfg, sim::Rng{seed}}.generate().sorted();
  };
  const auto a = gen(7);
  const auto b = gen(7);
  const auto c = gen(8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].action, b[i].action);
    EXPECT_EQ(a[i].switch_id, b[i].switch_id);
    EXPECT_DOUBLE_EQ(a[i].rate, b[i].rate);
  }
  // A different seed produces a different timeline (overwhelmingly).
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) differs = a[i].at != c[i].at;
  EXPECT_TRUE(differs);
}

TEST(RandomFaultGenerator, EveryOnsetHasRecovery) {
  RandomFaultConfig cfg;
  cfg.horizon = sim::sec(2);
  cfg.mtbf = msec(40);
  const auto plan = RandomFaultGenerator{small_topo(), cfg, sim::Rng{3}}.generate();
  EXPECT_FALSE(plan.empty());
  std::map<FaultAction, int> count;
  for (const auto& e : plan.events()) ++count[e.action];
  EXPECT_EQ(count[FaultAction::kBlackholeOn], count[FaultAction::kBlackholeOff]);
  EXPECT_EQ(count[FaultAction::kLinkDown], count[FaultAction::kLinkUp]);
  // Drop-rate and link-rate faults heal by setting the value back.
  EXPECT_EQ(count[FaultAction::kRandomDropSet] % 2, 0);
  EXPECT_EQ(count[FaultAction::kLinkRate] % 2, 0);
  for (const auto& e : plan.events()) EXPECT_GE(e.at, cfg.start);
}

TEST(RandomFaultGenerator, GeneratedPlanRunsCleanly) {
  RandomFaultConfig fcfg;
  fcfg.horizon = msec(50);
  fcfg.mtbf = msec(10);
  fcfg.mttr = msec(5);

  harness::ScenarioConfig cfg;
  cfg.topo = small_topo();
  cfg.scheme = harness::Scheme::kHermes;
  cfg.fault_plan = RandomFaultGenerator{cfg.topo, fcfg, sim::Rng{cfg.seed}}.generate();
  cfg.check_invariants = true;
  cfg.max_sim_time = sim::sec(5);
  harness::Scenario s{cfg};
  // Flows sized to still be running across the whole fault window
  // (~50MB at 10G is ~40ms; faults land in [10ms, 60ms)).
  s.add_flow(0, 2, 50'000'000, usec(0));
  s.add_flow(1, 3, 50'000'000, usec(5));
  const auto fct = s.run();
  EXPECT_EQ(fct.unfinished_flows(), 0u);
  ASSERT_NE(s.invariants(), nullptr);
  EXPECT_TRUE(s.invariants()->ok()) << s.invariants()->violations().front().what;
  EXPECT_GT(s.fault_scheduler()->applied(), 0u);
}

// --- InvariantChecker ---------------------------------------------------

TEST(InvariantChecker, ByteConservationHoldsOnCleanRun) {
  harness::ScenarioConfig cfg;
  cfg.topo = small_topo();
  cfg.scheme = harness::Scheme::kEcmp;
  cfg.check_invariants = true;
  harness::Scenario s{cfg};
  s.add_flow(0, 2, 1'000'000, usec(0));
  s.run();
  auto* inv = s.invariants();
  ASSERT_NE(inv, nullptr);
  inv->check_now("end of test");
  EXPECT_TRUE(inv->ok());
  EXPECT_GT(inv->checks_run(), 0u);
  EXPECT_GE(inv->injected_bytes(), 1'000'000u);
  EXPECT_EQ(inv->injected_bytes(),
            inv->delivered_bytes() + inv->dropped_bytes() + inv->in_flight_bytes());
}

TEST(InvariantChecker, ConservationHoldsUnderEveryFaultKind) {
  harness::ScenarioConfig cfg;
  cfg.topo = small_topo();
  cfg.scheme = harness::Scheme::kHermes;
  cfg.check_invariants = true;
  cfg.max_sim_time = sim::sec(5);
  cfg.fault_plan.transient_blackhole(msec(1), msec(30), 0,
                                     rack_pair_blackhole(2, 0, 1));
  cfg.fault_plan.transient_random_drop(msec(2), msec(25), 1, 0.05);
  cfg.fault_plan.link_down(msec(3), 0, 1);
  cfg.fault_plan.link_up(msec(20), 0, 1);
  cfg.fault_plan.link_rate(msec(4), 1, 0, 1e9);
  harness::Scenario s{cfg};
  // Large enough to be in flight when the first fault lands at 1ms.
  s.add_flow(0, 2, 20'000'000, usec(0));
  s.add_flow(3, 1, 20'000'000, usec(0));
  const auto fct = s.run();
  auto* inv = s.invariants();
  ASSERT_NE(inv, nullptr);
  inv->check_now("end of test");
  EXPECT_TRUE(inv->ok()) << inv->violations().front().what;
  EXPECT_EQ(fct.unfinished_flows(), 0u);  // faults were transient
  // The blackhole + random drops must appear in the drop accounting.
  EXPECT_GT(inv->dropped_bytes(), 0u);
}

TEST(InvariantChecker, WatchdogCountsStuckFlowsUnderPermanentBlackhole) {
  harness::ScenarioConfig cfg;
  cfg.topo = small_topo();
  cfg.scheme = harness::Scheme::kEcmp;  // cannot escape the blackhole
  cfg.check_invariants = true;
  cfg.invariant_config.stuck_after = msec(20);
  cfg.max_sim_time = msec(200);
  // Permanent: both spines blackhole the pair, onset only.
  cfg.fault_plan.blackhole_on(msec(1), 0, rack_pair_blackhole(2, 0, 1));
  cfg.fault_plan.blackhole_on(msec(1), 1, rack_pair_blackhole(2, 0, 1));
  harness::Scenario s{cfg};
  s.add_flow(0, 2, 5'000'000, usec(0));
  const auto fct = s.run();
  EXPECT_EQ(fct.unfinished_flows(), 1u);
  ASSERT_NE(s.invariants(), nullptr);
  EXPECT_GT(s.invariants()->max_stuck_flows(), 0u);
  EXPECT_TRUE(s.invariants()->ok());  // stuck flows are a metric, not a violation
}

TEST(InvariantChecker, RegistersPerInvariantCounters) {
  harness::ScenarioConfig cfg;
  cfg.topo = small_topo();
  cfg.scheme = harness::Scheme::kEcmp;
  cfg.check_invariants = true;
  harness::Scenario s{cfg};
  s.add_flow(0, 2, 100'000, usec(0));
  s.run();
  const std::string snap = s.metrics().snapshot_text();
  EXPECT_NE(snap.find("invariants.checks_run"), std::string::npos);
  EXPECT_NE(snap.find("invariants.violations.byte_conservation 0"), std::string::npos);
  EXPECT_NE(snap.find("invariants.violations.queue_bound 0"), std::string::npos);
  EXPECT_NE(snap.find("invariants.violations.shared_buffer 0"), std::string::npos);
  EXPECT_EQ(s.invariants()->violation_count(Invariant::kByteConservation), 0u);
  EXPECT_STREQ(to_string(Invariant::kQueueBound), "queue-bound");
}

// --- determinism regression ---------------------------------------------

TEST(FaultDeterminism, SameSeedSamePlanSameFctStats) {
  const auto run_once = [] {
    harness::ScenarioConfig cfg;
    cfg.topo = small_topo();
    cfg.scheme = harness::Scheme::kHermes;
    cfg.seed = 42;
    cfg.check_invariants = true;
    cfg.max_sim_time = sim::sec(5);
    cfg.fault_plan.transient_blackhole(msec(1), msec(20), 0,
                                       rack_pair_blackhole(2, 0, 1));
    cfg.fault_plan.transient_random_drop(msec(5), msec(15), 1, 0.02);
    harness::Scenario s{cfg};
    workload::TrafficConfig tc;
    tc.load = 0.3;
    tc.num_flows = 60;
    tc.seed = 42;
    s.add_flows(workload::generate_poisson_traffic(
        s.topology(), workload::SizeDist::web_search(), tc));
    return s.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i].start, b.records()[i].start);
    EXPECT_EQ(a.records()[i].end, b.records()[i].end);
    EXPECT_EQ(a.records()[i].finished, b.records()[i].finished);
    EXPECT_EQ(a.records()[i].packets_retransmitted, b.records()[i].packets_retransmitted);
  }
  EXPECT_EQ(a.total_timeouts(), b.total_timeouts());
}

}  // namespace
}  // namespace hermes::faults
