// Unit tests for the baseline load balancers: ECMP hashing, DRB/Presto*
// spraying (weighted and unweighted), and LetFlow flowlet switching.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include <map>
#include <set>

#include "hermes/lb/ecmp.hpp"
#include "hermes/lb/letflow.hpp"
#include "hermes/lb/spray.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::lb {
namespace {

using sim::usec;

net::TopologyConfig topo4() {
  net::TopologyConfig c;
  c.num_leaves = 2;
  c.num_spines = 4;
  c.hosts_per_leaf = 2;
  return c;
}

FlowCtx make_flow(const net::Topology& topo, std::uint64_t id, int src, int dst) {
  FlowCtx f;
  f.flow_id = id;
  f.src = src;
  f.dst = dst;
  f.src_leaf = topo.leaf_of(src);
  f.dst_leaf = topo.leaf_of(dst);
  return f;
}

net::Packet data_packet() {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.payload = 1460;
  p.size = 1500;
  return p;
}

TEST(Ecmp, StablePerFlow) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  EcmpLb lb{topo};
  auto f = make_flow(topo, 7, 0, 2);
  const int first = lb.select_path(f, data_packet());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(lb.select_path(f, data_packet()), first);
}

TEST(Ecmp, SpreadsFlowsAcrossPaths) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  EcmpLb lb{topo};
  std::set<int> used;
  for (std::uint64_t id = 0; id < 64; ++id) {
    auto f = make_flow(topo, id, 0, 2);
    used.insert(lb.select_path(f, data_packet()));
  }
  EXPECT_EQ(used.size(), 4u);  // all paths hit with 64 flows
}

TEST(Ecmp, IntraRackReturnsMinusOne) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  EcmpLb lb{topo};
  auto f = make_flow(topo, 1, 0, 1);
  EXPECT_EQ(lb.select_path(f, data_packet()), -1);
}

TEST(Ecmp, SaltChangesMapping) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  EcmpLb a{topo, 1}, b{topo, 2};
  int diff = 0;
  for (std::uint64_t id = 0; id < 64; ++id) {
    auto f = make_flow(topo, id, 0, 2);
    auto g = make_flow(topo, id, 0, 2);
    if (a.select_path(f, data_packet()) != b.select_path(g, data_packet())) ++diff;
  }
  EXPECT_GT(diff, 16);
}

TEST(Spray, PerPacketRoundRobinCyclesAllPaths) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  SprayLb lb{topo, SprayConfig{.cell_bytes = 0, .weighted = false}, "drb"};
  auto f = make_flow(topo, 5, 0, 2);
  std::map<int, int> counts;
  for (int i = 0; i < 40; ++i) ++counts[lb.select_path(f, data_packet())];
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [path, n] : counts) EXPECT_EQ(n, 10);
}

TEST(Spray, ConsecutivePacketsUseDifferentPaths) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  SprayLb lb{topo, SprayConfig{.cell_bytes = 0, .weighted = false}, "drb"};
  auto f = make_flow(topo, 5, 0, 2);
  const int a = lb.select_path(f, data_packet());
  const int b = lb.select_path(f, data_packet());
  EXPECT_NE(a, b);
}

TEST(Spray, FlowcellGranularityHoldsPathFor64KB) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  SprayLb lb{topo, SprayConfig{.cell_bytes = 64 * 1024, .weighted = false}, "presto"};
  auto f = make_flow(topo, 5, 0, 2);
  std::vector<int> seq;
  for (int i = 0; i < 100; ++i) seq.push_back(lb.select_path(f, data_packet()));
  // 64KB / 1460B = ~45 packets per cell.
  int changes = 0;
  for (std::size_t i = 1; i < seq.size(); ++i) changes += seq[i] != seq[i - 1];
  EXPECT_LE(changes, 3);
  EXPECT_GE(changes, 1);
}

TEST(Spray, WeightsFollowCapacityRatio) {
  auto cfg = topo4();
  // Make spine 0's links 2G: weight 1 against 5 for the 10G paths.
  cfg.fabric_overrides[{0, 0, 0}] = 2e9;
  cfg.fabric_overrides[{1, 0, 0}] = 2e9;
  sim::Simulator simulator{1};
  net::Topology topo{simulator, cfg};
  SprayLb lb{topo, SprayConfig{.cell_bytes = 0, .weighted = true}, "presto*"};
  auto f = make_flow(topo, 5, 0, 2);
  std::map<int, int> counts;
  for (int i = 0; i < 16 * 100; ++i) ++counts[lb.select_path(f, data_packet())];
  const auto& paths = topo.paths_between_leaves(0, 1);
  for (const auto& p : paths) {
    const double frac = counts[p.id] / 1600.0;
    if (p.spine == 0) {
      EXPECT_NEAR(frac, 1.0 / 16.0, 0.01);
    } else {
      EXPECT_NEAR(frac, 5.0 / 16.0, 0.01);
    }
  }
}

TEST(Spray, WeightedAllocationIsConsecutive) {
  // The paper's Example 3: weights are served as consecutive bursts,
  // which is exactly what produces congestion mismatch.
  auto cfg = topo4();
  cfg.num_spines = 2;
  cfg.fabric_overrides[{0, 0, 0}] = 1e9;
  cfg.fabric_overrides[{1, 0, 0}] = 1e9;
  sim::Simulator simulator{1};
  net::Topology topo{simulator, cfg};
  SprayLb lb{topo, SprayConfig{.cell_bytes = 0, .weighted = true}, "presto*"};
  auto f = make_flow(topo, 5, 0, 2);
  std::vector<int> seq;
  for (int i = 0; i < 44; ++i) seq.push_back(lb.select_path(f, data_packet()));
  // Pattern must be runs of 10 on the fast path and 1 on the slow one.
  int max_run = 1, run = 1;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    run = seq[i] == seq[i - 1] ? run + 1 : 1;
    max_run = std::max(max_run, run);
  }
  EXPECT_EQ(max_run, 10);
}

TEST(Spray, StateReleasedOnFlowCompletion) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  SprayLb lb{topo, SprayConfig{}, "drb"};
  auto f = make_flow(topo, 5, 0, 2);
  (void)lb.select_path(f, data_packet());
  lb.on_flow_complete(f);  // must not crash; frees per-flow cursor
  (void)lb.select_path(f, data_packet());
}

TEST(LetFlow, KeepsPathWithinFlowlet) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  LetFlowLb lb{simulator, topo, {.flowlet_timeout = usec(150)}};
  auto f = make_flow(topo, 5, 0, 2);
  const int first = lb.select_path(f, data_packet());
  f.current_path = first;
  f.has_sent = true;
  f.last_send = simulator.now();
  // Packets 10us apart: same flowlet, same path.
  for (int i = 0; i < 20; ++i) {
    simulator.run_until(simulator.now() + usec(10));
    EXPECT_EQ(lb.select_path(f, data_packet()), first);
    f.last_send = simulator.now();
  }
}

TEST(LetFlow, GapBeyondTimeoutMaySwitchPath) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  LetFlowLb lb{simulator, topo, {.flowlet_timeout = usec(150)}};
  auto f = make_flow(topo, 5, 0, 2);
  f.current_path = lb.select_path(f, data_packet());
  f.has_sent = true;
  f.last_send = simulator.now();
  std::set<int> seen;
  for (int i = 0; i < 64; ++i) {
    simulator.run_until(simulator.now() + usec(200));  // exceed timeout
    seen.insert(lb.select_path(f, data_packet()));
    f.last_send = simulator.now();
  }
  EXPECT_EQ(seen.size(), 4u);  // random choice explores all paths
}

TEST(LetFlow, ChoiceIsUniformish) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  LetFlowLb lb{simulator, topo, {.flowlet_timeout = usec(1)}};
  std::map<int, int> counts;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    auto f = make_flow(topo, static_cast<std::uint64_t>(i), 0, 2);
    ++counts[lb.select_path(f, data_packet())];
  }
  for (const auto& [path, c] : counts) EXPECT_NEAR(c / static_cast<double>(n), 0.25, 0.05);
}

}  // namespace
}  // namespace hermes::lb
