// Tests for the observability subsystem (src/obs + harness wiring):
// string interning, the flight-recorder ring, trace dump/load round
// trips, metrics snapshots, and the Hermes decision records a fig17
// blackhole post-mortem is built from (see EXPERIMENTS.md).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hermes/faults/fault_plan.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/obs/records.hpp"
#include "hermes/obs/string_table.hpp"
#include "hermes/obs/trace_io.hpp"

namespace hermes {
namespace {

using obs::DecisionKind;
using obs::FlightRecorder;
using obs::RecordKind;
using obs::TraceRecord;

// --- StringTable --------------------------------------------------------

TEST(StringTable, InternsDedupedOneBasedIds) {
  obs::StringTable t;
  const auto a = t.intern("leaf0.up0");
  const auto b = t.intern("spine1.down3");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(t.intern("leaf0.up0"), a) << "re-interning must return the same id";
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.name(a), "leaf0.up0");
  EXPECT_EQ(t.name(0), "?");
  EXPECT_EQ(t.name(99), "?");
  EXPECT_EQ(t.find("spine1.down3"), b);
  EXPECT_EQ(t.find("absent"), 0u);
}

// --- FlightRecorder -----------------------------------------------------

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder r{100};
  EXPECT_EQ(r.capacity(), 128u);
  FlightRecorder tiny{1};
  EXPECT_EQ(tiny.capacity(), 64u) << "minimum capacity";
}

TEST(FlightRecorder, RingKeepsLastRecordsInOrder) {
  FlightRecorder r{64};
  const auto name = r.intern("port");
  for (std::uint64_t i = 0; i < 100; ++i) {
    r.append(obs::make_record(RecordKind::kQueue, /*time_ns=*/i, name, /*flow_id=*/0));
  }
  EXPECT_EQ(r.total_appended(), 100u);
  EXPECT_EQ(r.size(), 64u);
  EXPECT_EQ(r.overwritten(), 36u);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.size(), 64u);
  // Black-box semantics: the oldest surviving record is append #36,
  // and the snapshot is chronological.
  EXPECT_EQ(snap.front().time_ns, 36u);
  EXPECT_EQ(snap.back().time_ns, 99u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].time_ns, snap[i].time_ns);
  }
  r.clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.overwritten(), 0u);
}

TEST(Records, FixedSixtyFourByteLayout) {
  static_assert(sizeof(TraceRecord) == 64);
  const TraceRecord r =
      obs::make_record(RecordKind::kDecision, /*time_ns=*/42, /*name=*/7, /*flow_id=*/9);
  EXPECT_EQ(r.time_ns, 42u);
  EXPECT_EQ(r.flow_id, 9u);
  EXPECT_EQ(r.name, 7u);
  EXPECT_EQ(r.kind, RecordKind::kDecision);
  // make_record zeroes the payload (and padding) for reproducible dumps.
  EXPECT_EQ(r.u.decision.delta_rtt_ns, 0);
  EXPECT_EQ(r.u.decision.sent_bytes, 0u);
}

// --- trace_io -----------------------------------------------------------

TEST(TraceIo, DumpLoadRoundTrip) {
  FlightRecorder rec{64};
  const auto port = rec.intern("leaf0.host2");
  const auto lb = rec.intern("hermes");
  for (std::uint64_t i = 0; i < 80; ++i) {  // wraps: 16 overwritten
    auto r = obs::make_record(RecordKind::kPacket, i * 1000, port, /*flow_id=*/i % 3);
    r.u.packet.packet_id = i;
    r.u.packet.size = 1500;
    r.u.packet.event = static_cast<std::uint8_t>(obs::PacketEvent::kTransmit);
    rec.append(r);
  }
  auto d = obs::make_record(RecordKind::kDecision, 81'000, lb, /*flow_id=*/1);
  d.u.decision.kind = static_cast<std::uint8_t>(DecisionKind::kBlackholeLatch);
  d.u.decision.from_path = 3;
  rec.append(d);

  const std::string path = testing::TempDir() + "obs_roundtrip.htrc";
  ASSERT_TRUE(obs::write_trace(path, rec));

  obs::LoadedTrace t;
  std::string err;
  ASSERT_TRUE(obs::read_trace(path, t, &err)) << err;
  EXPECT_EQ(t.records.size(), rec.size());
  EXPECT_EQ(t.overwritten, rec.overwritten());
  ASSERT_EQ(t.names.size(), 2u);
  EXPECT_EQ(t.name(port), "leaf0.host2");
  EXPECT_EQ(t.name(lb), "hermes");
  const auto& last = t.records.back();
  EXPECT_EQ(last.kind, RecordKind::kDecision);
  EXPECT_EQ(last.flow_id, 1u);
  EXPECT_EQ(last.u.decision.from_path, 3);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsGarbageAndMissingFiles) {
  obs::LoadedTrace t;
  std::string err;
  EXPECT_FALSE(obs::read_trace("/nonexistent/trace.htrc", t, &err));
  EXPECT_EQ(err, "cannot open file");

  const std::string path = testing::TempDir() + "obs_garbage.htrc";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace at all", f);
  std::fclose(f);
  EXPECT_FALSE(obs::read_trace(path, t, &err));
  EXPECT_EQ(err, "not a hermes trace (bad magic)");
  std::remove(path.c_str());
}

// --- metrics ------------------------------------------------------------

TEST(Metrics, HistogramLogBuckets) {
  obs::Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(7);
  h.observe(8);
  h.observe(1'000'000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1'000'016u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1'000'000u);
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket_count(2), 1u);  // 4..7
  EXPECT_EQ(h.bucket_count(3), 1u);  // 8..15
  EXPECT_EQ(h.highest_bucket(), obs::Histogram::bucket_of(1'000'000));
  EXPECT_EQ(obs::Histogram::bucket_upper(2), 7u);
}

TEST(Metrics, SnapshotsSortedByNameAndStable) {
  obs::MetricsRegistry reg;
  std::uint64_t drops = 3;
  reg.counter_fn("net.drops", [&] { return drops; });
  reg.counter_fn("lb.reroutes", [] { return std::uint64_t{7}; });
  reg.gauge_fn("faults.active", [] { return 2.0; });
  reg.histogram("lb.latch_lifetime_us").observe(500);

  const std::string text = reg.snapshot_text();
  // Counters in sorted name order: lb.* before net.*.
  EXPECT_LT(text.find("lb.reroutes 7"), text.find("net.drops 3"));
  EXPECT_NE(text.find("faults.active 2"), std::string::npos);
  EXPECT_NE(text.find("lb.latch_lifetime_us count=1"), std::string::npos);
  EXPECT_EQ(text, reg.snapshot_text()) << "same state must snapshot byte-identically";

  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"net.drops\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[[511,1]]"), std::string::npos) << json;

  drops = 4;  // pull model: the closure reads live state
  EXPECT_NE(reg.snapshot_text().find("net.drops 4"), std::string::npos);
}

// --- Scenario wiring ----------------------------------------------------

harness::ScenarioConfig small_hermes_config() {
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 4;
  cfg.topo.hosts_per_leaf = 4;
  cfg.scheme = harness::Scheme::kHermes;
  cfg.seed = 5;
  return cfg;
}

TEST(ScenarioObs, DisabledMeansNoRecorder) {
  harness::Scenario s{small_hermes_config()};
  EXPECT_EQ(s.recorder(), nullptr);
  EXPECT_FALSE(s.dump_trace(testing::TempDir() + "never_written.htrc"));
  // The metrics registry is always on, recorder or not.
  EXPECT_NE(s.metrics().snapshot_text().find("sim.events_processed"), std::string::npos);
}

TEST(ScenarioObs, PacketRecordsFlowThroughPorts) {
  auto cfg = small_hermes_config();
  cfg.obs.enabled = true;
  harness::Scenario s{cfg};
  ASSERT_NE(s.recorder(), nullptr);
  s.add_flow(0, 4, 100'000, sim::SimTime::zero());
  (void)s.run();
  std::uint64_t packets = 0;
  bool named = true;
  for (const auto& r : s.recorder()->snapshot()) {
    if (r.kind != RecordKind::kPacket) continue;
    ++packets;
    named = named && r.name != 0;
  }
  EXPECT_GT(packets, 100u) << "a 100KB flow crosses the fabric in ~70 packets + ACKs";
  EXPECT_TRUE(named) << "every packet record carries an interned port name";
}

// The fig17 post-mortem scenario in miniature: every spine blackholes
// leaf0->leaf1 data, so the flow's path state degrades through exactly
// the Algorithm 2 decision sequence the flight recorder must capture —
// initial placement, >=3 timeouts on the path, a blackhole latch, then
// timeout/failure escapes to (equally dead) fresh paths.
TEST(ScenarioObs, BlackholeProducesDecisionRecords) {
  auto cfg = small_hermes_config();
  cfg.obs.enabled = true;
  cfg.obs.trace_packets = false;  // keep the ring for decision records
  cfg.max_sim_time = sim::sec(2);
  harness::Scenario s{cfg};
  for (int sp = 0; sp < 4; ++sp) {
    s.topology().spine(sp).set_failure(
        {.blackhole =
             [&topo = s.topology()](const net::Packet& p) {
               return p.type == net::PacketType::kData && topo.leaf_of(p.src) == 0 &&
                      topo.leaf_of(p.dst) == 1;
             },
         .random_drop_rate = 0.0});
  }
  const auto flow_id = s.add_flow(0, 4, 50'000, sim::SimTime::zero());
  (void)s.run();

  int initial = 0;
  int timeout_escapes = 0;
  int latches = 0;
  for (const auto& r : s.recorder()->snapshot()) {
    if (r.kind != RecordKind::kDecision || r.flow_id != flow_id) continue;
    switch (static_cast<DecisionKind>(r.u.decision.kind)) {
      case DecisionKind::kInitialPlacement: ++initial; break;
      case DecisionKind::kTimeoutEscape: ++timeout_escapes; break;
      case DecisionKind::kBlackholeLatch: ++latches; break;
      default: break;
    }
  }
  EXPECT_EQ(initial, 1);
  EXPECT_GE(timeout_escapes, 1) << "3 RTOs then a fresh pick";
  EXPECT_GE(latches, 1) << "the paper's 3-timeout blackhole detector must latch";

  // The same story through the metrics registry.
  ASSERT_NE(s.hermes(), nullptr);
  EXPECT_GE(s.hermes()->decision_stats().blackhole_latches, 1u);

  // And the trace survives a dump/load round trip for hermestrace.
  const std::string path = testing::TempDir() + "obs_blackhole.htrc";
  ASSERT_TRUE(s.dump_trace(path));
  obs::LoadedTrace t;
  std::string err;
  ASSERT_TRUE(obs::read_trace(path, t, &err)) << err;
  EXPECT_EQ(t.records.size(), s.recorder()->size());
  std::remove(path.c_str());
}

TEST(ScenarioObs, FaultTransitionsAreRecorded) {
  auto cfg = small_hermes_config();
  cfg.obs.enabled = true;
  cfg.obs.trace_packets = false;
  cfg.max_sim_time = sim::msec(100);
  cfg.fault_plan.transient_random_drop(sim::msec(10), sim::msec(40), /*switch_id=*/1, 0.05);
  harness::Scenario s{cfg};
  // Long enough (~40ms at 10G) that the run is still going when both
  // fault transitions fire; the run would otherwise end at flow finish.
  s.add_flow(0, 4, 50'000'000, sim::SimTime::zero());
  (void)s.run();

  int onsets = 0;
  int recoveries = 0;
  for (const auto& r : s.recorder()->snapshot()) {
    if (r.kind != RecordKind::kFault) continue;
    (r.u.fault.onset != 0 ? onsets : recoveries)++;
    EXPECT_EQ(r.u.fault.switch_id, 1);
  }
  EXPECT_EQ(onsets, 1);
  EXPECT_EQ(recoveries, 1);
  EXPECT_NE(s.metrics().snapshot_text().find("faults.applied 2"), std::string::npos);
}

// Fixed seed => byte-identical metrics snapshot, run to run. This is the
// determinism contract extended to telemetry (snapshots iterate sorted
// std::map keys; transport totals accumulate in completion order).
TEST(ScenarioObs, MetricsSnapshotIsByteStableAtFixedSeed) {
  const auto run_snapshot = [] {
    auto cfg = small_hermes_config();
    cfg.obs.enabled = true;
    harness::Scenario s{cfg};
    s.add_flow(0, 4, 200'000, sim::SimTime::zero());
    s.add_flow(1, 5, 200'000, sim::usec(10));
    (void)s.run();
    return s.metrics().snapshot_text();
  };
  const std::string a = run_snapshot();
  EXPECT_NE(a.find("transport.flows_completed 2"), std::string::npos) << a;
  EXPECT_NE(a.find("net.tx_packets"), std::string::npos);
  EXPECT_EQ(a, run_snapshot());
}

}  // namespace
}  // namespace hermes
