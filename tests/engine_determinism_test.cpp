// Determinism gate for the extracted decision engine, mirroring the
// simulator-level golden-hash tests at the engine boundary: a scripted
// synthetic event sequence (decides, ACKs, timeouts, retransmissions,
// probe samples — no simulator, no wall clock) must produce a
// byte-identical decision log on every run, whether script instances
// execute serially or on the ParallelRunner. The engine's only
// nondeterminism budget is its seeded RNG stream.
//
// The pinned hash ties the engine's decision sequence to this exact
// script; the simulator-level twins (determinism_test.cpp kGoldenHash,
// sharded_test.cpp kShardedGoldenHash) pin the same property through
// the full stack. If an intentional engine-behavior change shifts this
// hash, re-record it and say so in the commit message.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hermes/engine/engine.hpp"
#include "hermes/harness/parallel_runner.hpp"

namespace hermes::engine {
namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Serializes every decision event plus every decide() return value.
struct ScriptLog final : DecisionSink {
  std::string out;
  void on_decision(const DecisionEvent& ev) override {
    out += 'E';
    out += std::to_string(static_cast<int>(ev.kind));
    out += ':';
    out += std::to_string(ev.flow_id);
    out += ':';
    out += std::to_string(ev.from_path);
    out += '>';
    out += std::to_string(ev.to_path);
    out += '@';
    out += std::to_string(ev.time_ns);
    out += '\n';
  }
};

/// One deterministic "day in the life" of an engine: 4 locality groups,
/// 8 paths per ordered pair, 48 flows, 3000 interleaved events whose
/// parameters are pure functions of the step index.
std::string run_script(std::uint64_t seed) {
  Config cfg;
  cfg.t_rtt_low = usec(60);
  cfg.t_rtt_high = usec(180);
  cfg.delta_rtt = usec(80);
  cfg.reroute_rate_limit_bps = 3e9;

  Engine e{cfg, 4, seed};
  ScriptLog log;
  e.set_sink(&log);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) continue;
      HostSet h;
      for (int i = 0; i < 8; ++i) h.add(1000 * a + 10 * b + i);
      e.sync_pair(a, b, h);
    }
  }

  struct Flow {
    FlowView v;
    int cur = -1;
  };
  std::vector<Flow> flows(48);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    FlowView& v = flows[i].v;
    v.flow_id = i + 1;
    v.src_group = static_cast<int>(i % 4);
    v.dst_group = static_cast<int>((i + 1 + i / 12) % 4);
    if (v.dst_group == v.src_group) v.dst_group = (v.dst_group + 1) % 4;
    v.src = static_cast<std::int32_t>(8 * v.src_group + i % 8);
    v.dst = static_cast<std::int32_t>(8 * v.dst_group + (i + 3) % 8);
  }

  TimeNs t = 0;
  for (int step = 0; step < 3000; ++step) {
    t += usec(17);
    Flow& f = flows[static_cast<std::size_t>(step) % flows.size()];
    f.v.cur_local = f.cur;

    if (step % 97 == 11 && f.cur >= 0) {
      f.v.timeout_pending = true;
      e.on_timeout(f.v, t);
    }
    if (step % 53 == 5 && f.cur >= 0) {
      e.on_retransmit(f.v.src_group, f.v.dst_group, f.cur, t);
    }
    if (step % 31 == 2) {
      e.feed_probe_sample(f.v.src_group, f.v.dst_group, step % 8,
                          usec(25 + (step * 13) % 220), (step % 9) < 2);
    }

    const int chosen = e.decide(f.v, 1500, t);
    log.out += std::to_string(chosen);
    log.out += ',';
    if (chosen >= 0) {
      f.cur = chosen;
      f.v.has_sent = true;
      f.v.bytes_sent += 1500;
      // ACK with a step-derived RTT/ECN observation (dropped for a slice
      // of steps so the blackhole counters see un-ACKed stretches).
      if (step % 17 != 3) {
        e.on_ack(f.v.src_group, f.v.dst_group, chosen, f.v.src, f.v.dst, true,
                 usec(30 + (step * 7) % 260), (step % 11) < 3);
      }
    }
  }
  return log.out;
}

TEST(EngineDeterminism, SameSeedReproducesDecisionLogByteForByte) {
  EXPECT_EQ(run_script(7), run_script(7));
}

TEST(EngineDeterminism, SeedChangesTheDecisionSequence) {
  EXPECT_NE(run_script(7), run_script(8));
}

TEST(EngineDeterminism, ParallelRunnerMatchesSerialExecution) {
  // Engines are share-nothing: the same scripts run concurrently must
  // reproduce their serial logs exactly.
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 5, 7, 11, 13, 17};
  std::vector<std::string> serial;
  serial.reserve(seeds.size());
  for (const std::uint64_t s : seeds) serial.push_back(run_script(s));

  const harness::ParallelRunner runner{4};
  const auto parallel = runner.map<std::string>(
      seeds.size(), [&](std::size_t i) { return run_script(seeds[i]); });

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "seed " << seeds[i];
  }
}

// Recorded from the initial engine extraction; the engine's decision
// sequence for this script is part of the compatibility surface.
constexpr std::uint64_t kEngineGoldenHash = 0x2d0f8d52e3ca5439ull;  // 7696-byte log

TEST(EngineDeterminism, GoldenDecisionLogHashPinned) {
  const std::string log = run_script(7);
  EXPECT_EQ(fnv1a64(log), kEngineGoldenHash)
      << "engine decision log changed (" << log.size()
      << " bytes) — RNG-order regression, or an intentional behavior "
         "change that must re-record this hash";
}

}  // namespace
}  // namespace hermes::engine
