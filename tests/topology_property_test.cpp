// Property sweep over fabric shapes: for EVERY host pair and EVERY
// enumerated path, a packet stamped with the forward route must arrive
// at the destination host through the real switches, and the reverse
// route must bring the reply back to the source. This pins down the
// port-indexing arithmetic for all topology shapes at once.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include <string>
#include <tuple>

#include "hermes/net/topology.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {
namespace {

struct Shape {
  int leaves, spines, hosts, links;
};

class RouteSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(RouteSweep, EveryForwardAndReverseRouteDelivers) {
  const auto [leaves, spines, hosts, links] = GetParam();
  sim::Simulator simulator{1};
  TopologyConfig cfg;
  cfg.num_leaves = leaves;
  cfg.num_spines = spines;
  cfg.hosts_per_leaf = hosts;
  cfg.links_per_pair = links;
  Topology topo{simulator, cfg};

  // Arm every host with a recorder.
  std::vector<std::uint64_t> received(static_cast<std::size_t>(topo.num_hosts()), 0);
  for (int h = 0; h < topo.num_hosts(); ++h) {
    topo.host(h).on_receive = [&received, h](Packet p, int) { received[h] = p.id; };
  }

  std::uint64_t next_id = 1;
  for (int src = 0; src < topo.num_hosts(); ++src) {
    for (int dst = 0; dst < topo.num_hosts(); ++dst) {
      if (src == dst) continue;
      const auto& paths = topo.paths_between_hosts(src, dst);
      if (paths.empty()) {
        // Intra-rack: single implicit path.
        Packet p;
        p.id = next_id++;
        p.src = src;
        p.dst = dst;
        p.size = 64;
        p.route = topo.forward_route(src, dst, -1);
        topo.host(src).send(p);
        simulator.run();
        ASSERT_EQ(received[dst], p.id) << "intra " << src << "->" << dst;
        continue;
      }
      for (const auto& path : paths) {
        Packet fwd;
        fwd.id = next_id++;
        fwd.src = src;
        fwd.dst = dst;
        fwd.size = 64;
        fwd.route = topo.forward_route(src, dst, path.id);
        topo.host(src).send(fwd);
        simulator.run();
        ASSERT_EQ(received[dst], fwd.id)
            << src << "->" << dst << " via path " << path.id << " (spine " << path.spine
            << ", link " << path.link_idx << ")";

        Packet rev;
        rev.id = next_id++;
        rev.src = dst;
        rev.dst = src;
        rev.size = 64;
        rev.route = topo.reverse_route(src, dst, path.id);
        topo.host(dst).send(rev);
        simulator.run();
        ASSERT_EQ(received[src], rev.id)
            << "reverse " << src << "->" << dst << " via path " << path.id;
      }
    }
  }
}

std::string shape_name(const ::testing::TestParamInfo<Shape>& info) {
  const auto& s = info.param;
  return std::to_string(s.leaves) + "x" + std::to_string(s.spines) + "x" +
         std::to_string(s.hosts) + "x" + std::to_string(s.links);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RouteSweep,
                         ::testing::Values(Shape{2, 1, 1, 1}, Shape{2, 2, 2, 1},
                                           Shape{2, 2, 3, 2}, Shape{3, 2, 2, 1},
                                           Shape{4, 4, 2, 1}, Shape{2, 2, 6, 2},
                                           Shape{5, 3, 1, 3}),
                         shape_name);

class CutSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(CutSweep, RoutesSurviveOneCutPerLeaf) {
  const auto [leaves, spines, hosts, links] = GetParam();
  if (spines * links < 2) GTEST_SKIP() << "cutting would disconnect";
  sim::Simulator simulator{1};
  TopologyConfig cfg;
  cfg.num_leaves = leaves;
  cfg.num_spines = spines;
  cfg.hosts_per_leaf = hosts;
  cfg.links_per_pair = links;
  // Cut one spine-0 link per leaf (staggered over parallel links so the
  // remaining spines always connect every pair).
  for (int l = 0; l < leaves; ++l) {
    cfg.fabric_overrides[{l, 0, l % links}] = 0;
  }
  Topology topo{simulator, cfg};

  std::vector<std::uint64_t> received(static_cast<std::size_t>(topo.num_hosts()), 0);
  for (int h = 0; h < topo.num_hosts(); ++h)
    topo.host(h).on_receive = [&received, h](Packet p, int) { received[h] = p.id; };

  std::uint64_t next_id = 1;
  for (int a = 0; a < leaves; ++a) {
    for (int b = 0; b < leaves; ++b) {
      if (a == b) continue;
      const int src = topo.first_host_of_leaf(a);
      const int dst = topo.first_host_of_leaf(b);
      const auto& paths = topo.paths_between_leaves(a, b);
      ASSERT_FALSE(paths.empty());
      // No enumerated path may traverse a cut link, and all must deliver.
      for (const auto& path : paths) {
        EXPECT_GT(path.capacity_bps, 0.0);
        Packet p;
        p.id = next_id++;
        p.src = src;
        p.dst = dst;
        p.size = 64;
        p.route = topo.forward_route(src, dst, path.id);
        topo.host(src).send(p);
        simulator.run();
        ASSERT_EQ(received[dst], p.id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CutSweep,
                         ::testing::Values(Shape{2, 2, 2, 1}, Shape{2, 2, 2, 2},
                                           Shape{4, 4, 1, 1}, Shape{3, 2, 1, 2}),
                         shape_name);

}  // namespace
}  // namespace hermes::net
