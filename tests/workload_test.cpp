// Tests for the workload module: CDF validity, inverse-transform
// sampling statistics, and the Poisson open-loop flow generator.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <set>

#include <map>

#include "hermes/net/topology.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/workload/flow_gen.hpp"
#include "hermes/workload/size_dist.hpp"

namespace hermes::workload {
namespace {

TEST(SizeDist, RejectsMalformedCdf) {
  EXPECT_THROW(SizeDist("x", {{0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(SizeDist("x", {{0, 0.0}, {10, 0.9}}), std::invalid_argument);
  EXPECT_THROW(SizeDist("x", {{10, 0.0}, {5, 1.0}}), std::invalid_argument);
  EXPECT_THROW(SizeDist("x", {{0, 0.5}, {10, 0.2}, {20, 1.0}}), std::invalid_argument);
}

TEST(SizeDist, SampleMeanMatchesAnalyticMean) {
  const auto ws = SizeDist::web_search();
  sim::Rng rng{5};
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(ws.sample(rng));
  EXPECT_NEAR(sum / n / ws.mean_bytes(), 1.0, 0.03);
}

TEST(SizeDist, SamplesWithinSupport) {
  const auto dm = SizeDist::data_mining();
  sim::Rng rng{5};
  for (int i = 0; i < 10'000; ++i) {
    const auto s = dm.sample(rng);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 1'000'000'000u);
  }
}

TEST(SizeDist, SampleQuantilesMatchCdf) {
  const auto ws = SizeDist::web_search();
  sim::Rng rng{9};
  int below_100k = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) below_100k += ws.sample(rng) < 100'000 ? 1 : 0;
  EXPECT_NEAR(below_100k / static_cast<double>(n), ws.cdf(100e3), 0.01);
}

TEST(SizeDist, CdfMonotoneAndBounded) {
  const auto dm = SizeDist::data_mining();
  double prev = -1;
  for (double b = 0; b < 2e9; b = b * 1.7 + 100) {
    const double c = dm.cdf(b);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(dm.cdf(2e9), 1.0);
}

TEST(SizeDist, WebSearchMeanIsAbout1_7MB) {
  EXPECT_NEAR(SizeDist::web_search().mean_bytes() / 1e6, 1.7, 0.2);
}

TEST(SizeDist, DataMiningIsMoreSkewedThanWebSearch) {
  const auto ws = SizeDist::web_search();
  const auto dm = SizeDist::data_mining();
  // Data-mining: more tiny flows AND a heavier tail (Fig. 7).
  EXPECT_GT(dm.cdf(10e3), ws.cdf(10e3));
  EXPECT_GT(dm.mean_bytes(), ws.mean_bytes());
}

TEST(SizeDist, ScaledPreservesShape) {
  const auto ws = SizeDist::web_search();
  const auto half = ws.scaled(0.5);
  EXPECT_NEAR(half.mean_bytes(), ws.mean_bytes() / 2, 1.0);
  EXPECT_DOUBLE_EQ(half.cdf(50e3), ws.cdf(100e3));
}

class FlowGenTest : public ::testing::Test {
 protected:
  FlowGenTest() : simulator{1}, topo{simulator, config()} {}
  static net::TopologyConfig config() {
    net::TopologyConfig c;
    c.num_leaves = 4;
    c.num_spines = 4;
    c.hosts_per_leaf = 4;
    return c;
  }
  sim::Simulator simulator;
  net::Topology topo;
};

TEST_F(FlowGenTest, DeterministicForSeed) {
  TrafficConfig tc{.load = 0.5, .num_flows = 200, .seed = 7};
  const auto a = generate_poisson_traffic(topo, SizeDist::web_search(), tc);
  const auto b = generate_poisson_traffic(topo, SizeDist::web_search(), tc);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].size, b[i].size);
    EXPECT_EQ(a[i].start, b[i].start);
  }
}

TEST_F(FlowGenTest, ArrivalsAreOrderedAndIdsUnique) {
  TrafficConfig tc{.load = 0.5, .num_flows = 500, .seed = 3};
  const auto flows = generate_poisson_traffic(topo, SizeDist::web_search(), tc);
  std::set<std::uint64_t> ids;
  sim::SimTime prev{};
  for (const auto& f : flows) {
    EXPECT_GE(f.start, prev);
    prev = f.start;
    ids.insert(f.id);
  }
  EXPECT_EQ(ids.size(), flows.size());
}

TEST_F(FlowGenTest, InterRackOnly) {
  TrafficConfig tc{.load = 0.5, .num_flows = 500, .seed = 3};
  for (const auto& f : generate_poisson_traffic(topo, SizeDist::web_search(), tc)) {
    EXPECT_NE(topo.leaf_of(f.src), topo.leaf_of(f.dst));
  }
}

TEST_F(FlowGenTest, ArrivalRateMatchesLoad) {
  const auto dist = SizeDist::web_search();
  TrafficConfig tc{.load = 0.6, .num_flows = 4000, .seed = 11};
  const auto flows = generate_poisson_traffic(topo, dist, tc);
  const double duration = flows.back().start.to_seconds();
  double bytes = 0;
  for (const auto& f : flows) bytes += static_cast<double>(f.size);
  const double offered_bps = bytes * 8 / duration;
  EXPECT_NEAR(offered_bps / topo.bisection_bps(), 0.6, 0.1);
}

TEST_F(FlowGenTest, SourcesCoverAllHosts) {
  TrafficConfig tc{.load = 0.5, .num_flows = 2000, .seed = 5};
  std::map<int, int> srcs;
  for (const auto& f : generate_poisson_traffic(topo, SizeDist::web_search(), tc)) ++srcs[f.src];
  EXPECT_EQ(static_cast<int>(srcs.size()), topo.num_hosts());
}

TEST_F(FlowGenTest, RejectsBadConfig) {
  TrafficConfig tc{.load = 0.0, .num_flows = 10, .seed = 1};
  EXPECT_THROW(generate_poisson_traffic(topo, SizeDist::web_search(), tc),
               std::invalid_argument);
}

}  // namespace
}  // namespace hermes::workload
