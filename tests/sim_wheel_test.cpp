// Tests targeting the time-wheel internals of EventQueue through its
// public API: equal-time FIFO across bucket boundaries, cancellation
// surviving wheel rollover, far-future overflow handling, clock
// semantics of run_until across empty spans, and a randomized stress
// test against a sorted reference model.
//
// Wheel geometry (see event_queue.hpp): level-0 buckets are 256ns, the
// level-0 horizon is ~262us, the level-1 horizon is ~268ms, and
// anything beyond sits in the sorted overflow list. The times below are
// chosen to land in specific tiers.

#include <cstddef>
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "hermes/sim/event_queue.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::sim {
namespace {

constexpr SimTime kL0Span = nsec(1 << 8);            // one level-0 bucket
constexpr SimTime kL0Horizon = nsec(1024LL << 8);    // one level-1 bucket
constexpr SimTime kL1Horizon = nsec(1024LL << 18);   // ~268ms

TEST(TimeWheel, EqualTimeFifoWithinAndAcrossBuckets) {
  EventQueue q;
  std::vector<int> fired;
  // Same instant, interleaved with neighbours in the same and in other
  // buckets; equal-time events must pop in scheduling order.
  const SimTime t = usec(100);
  q.post_at(t, [&] { fired.push_back(0); });
  q.post_at(t + kL0Span * 3, [&] { fired.push_back(10); });
  q.post_at(t, [&] { fired.push_back(1); });
  q.post_at(t - usec(50), [&] { fired.push_back(-1); });
  q.post_at(t, [&] { fired.push_back(2); });
  q.post_at(t + kL0Span * 3, [&] { fired.push_back(11); });
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{-1, 0, 1, 2, 10, 11}));
}

TEST(TimeWheel, SameBucketIndexDifferentLap) {
  EventQueue q;
  std::vector<int> fired;
  // Two events whose level-0 bucket indices are equal mod the wheel
  // size but a full lap apart: the wheel must not fire the far one on
  // the near one's drain.
  const SimTime near = usec(10);
  const SimTime far = near + kL0Horizon;  // same masked index, next lap
  q.post_at(far, [&] { fired.push_back(2); });
  q.post_at(near, [&] { fired.push_back(1); });
  ASSERT_TRUE(q.run_one());
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(q.now(), near);
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), far);
}

TEST(TimeWheel, FarFutureOverflowOrdering) {
  EventQueue q;
  std::vector<int> fired;
  // All three are beyond the ~268ms level-1 horizon at insert time and
  // arrive out of order; one more sits in the wheel proper.
  q.post_at(sec(100), [&] { fired.push_back(3); });
  q.post_at(sec(5), [&] { fired.push_back(1); });
  q.post_at(sec(10), [&] { fired.push_back(2); });
  q.post_at(msec(1), [&] { fired.push_back(0); });
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.now(), sec(100));
  EXPECT_EQ(q.events_processed(), 4u);
}

TEST(TimeWheel, CancellationSurvivesRollover) {
  EventQueue q;
  int fired = 0;
  // One timer in the level-1 range, one beyond the horizon (overflow).
  auto h1 = q.schedule_at(msec(100), [&] { ++fired; });
  auto h2 = q.schedule_at(sec(6), [&] { ++fired; });
  auto keep = q.schedule_at(sec(7), [&] { ++fired; });
  h1.cancel();
  h2.cancel();
  EXPECT_FALSE(h1.pending());
  EXPECT_FALSE(h2.pending());
  EXPECT_TRUE(keep.pending());
  // Rolling far past both cancelled times must fire only the keeper,
  // even though the wheel cursor laps level 0 thousands of times and
  // level 1 more than once.
  q.run_until(sec(8));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(keep.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), sec(8));
}

TEST(TimeWheel, SlotReuseDoesNotMisfireStaleHandles) {
  EventQueue q;
  std::vector<int> fired;
  auto a = q.schedule_at(usec(10), [&] { fired.push_back(1); });
  a.cancel();
  // b reuses a's pooled slot (it is the only free one). The stale
  // handle must stay inert against the new generation.
  auto b = q.schedule_at(usec(20), [&] { fired.push_back(2); });
  a.cancel();  // no-op: must not kill b
  EXPECT_TRUE(b.pending());
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{2}));
  // Cancelling after firing is a no-op too.
  b.cancel();
  EXPECT_EQ(q.events_processed(), 1u);
}

TEST(TimeWheel, RunUntilAdvancesClockAcrossEmptySpans) {
  EventQueue q;
  // Nothing scheduled: the clock still advances to the target.
  q.run_until(msec(5));
  EXPECT_EQ(q.now(), msec(5));
  int fired = 0;
  q.post_at(sec(6), [&] { ++fired; });  // overflow-range event
  // Target short of the event: no firing, clock lands exactly on the
  // target even though the wheel has to skip many empty level-1 spans.
  q.run_until(sec(5));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.now(), sec(5));
  q.run_until(sec(7));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), sec(7));
}

TEST(TimeWheel, EmptyIsConstAndCountsCancellations) {
  EventQueue q;
  const EventQueue& cq = q;
  EXPECT_TRUE(cq.empty());  // const observer, no purge needed
  std::vector<EventQueue::Handle> hs;
  hs.reserve(10);
  for (int i = 0; i < 10; ++i)
    hs.push_back(q.schedule_at(usec(10 + i), [] {}));
  for (int i = 0; i < 4; ++i) hs[static_cast<std::size_t>(i)].cancel();
  EXPECT_FALSE(q.empty());
  // Wheel-bucket records are removed eagerly on cancel (the slot table
  // tracks each live timer's bucket position); these events sit in
  // level-0 buckets, so the storage shrinks immediately.
  EXPECT_EQ(q.stored_events(), 6u);
  q.purge_cancelled();  // no-op here: nothing cancelled remains stored
  EXPECT_EQ(q.stored_events(), 6u);
  q.run();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.events_processed(), 6u);
  EXPECT_EQ(q.stored_events(), 0u);
}

// Randomized stress: interleaved scheduling phases, cancellations and
// partial drains across all three storage tiers, validated against a
// stable-sorted reference model. The wheel must fire exactly the
// non-cancelled events in (time, scheduling-order) sequence.
TEST(TimeWheel, StressMatchesReferenceModel) {
  std::mt19937 rng{20240807};
  EventQueue q;
  struct Ref {
    std::int64_t time_ns;
    int id;
    bool cancelled = false;
  };
  std::vector<Ref> ref;
  std::vector<EventQueue::Handle> handles;
  std::vector<int> fired;
  int next_id = 0;
  for (int phase = 0; phase < 12; ++phase) {
    const std::int64_t now_ns = q.now().ns();
    std::uniform_int_distribution<std::int64_t> dt{0, 8'000'000'000};  // up to 8s ahead
    std::vector<std::size_t> this_phase;
    for (int i = 0; i < 400; ++i) {
      const int id = next_id++;
      const std::int64_t t = now_ns + dt(rng) % (i % 7 == 0 ? 2'000 : 8'000'000'000);
      ref.push_back({t, id});
      this_phase.push_back(ref.size() - 1);
      if (i % 3 == 0) {
        handles.push_back(q.schedule_at(nsec(t), [&fired, id] { fired.push_back(id); }));
        this_phase.back() |= std::size_t{1} << 63;  // mark cancellable
      } else {
        q.post_at(nsec(t), [&fired, id] { fired.push_back(id); });
      }
    }
    // Cancel ~half of this phase's cancellable timers (none have fired:
    // all were scheduled at or after the current clock).
    std::size_t h = handles.size();
    for (auto it = this_phase.rbegin(); it != this_phase.rend(); ++it) {
      if ((*it >> 63) == 0) continue;
      --h;
      if (rng() % 2 == 0) {
        handles[h].cancel();
        ref[*it & ~(std::size_t{1} << 63)].cancelled = true;
      }
    }
    // Drain partway into the phase's window, leaving a live backlog.
    q.run_until(nsec(now_ns + static_cast<std::int64_t>(rng() % 4'000'000'000)));
  }
  q.run();
  EXPECT_TRUE(q.empty());
  // Reference order: stable sort by time (stability = scheduling order,
  // since ids were appended in scheduling order).
  std::vector<int> expected;
  std::vector<Ref> sorted = ref;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Ref& a, const Ref& b) { return a.time_ns < b.time_ns; });
  for (const Ref& r : sorted)
    if (!r.cancelled) expected.push_back(r.id);
  ASSERT_EQ(fired.size(), expected.size());
  EXPECT_EQ(fired, expected);
}

}  // namespace
}  // namespace hermes::sim
