// Unit tests for the simulation core: time arithmetic, the event queue's
// ordering/cancellation semantics, and deterministic RNG streams.

#include <functional>
#include <gtest/gtest.h>

#include <vector>

#include "hermes/sim/event_queue.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::sim {
namespace {

TEST(SimTime, ConstructorsAgree) {
  EXPECT_EQ(usec(1).ns(), 1000);
  EXPECT_EQ(msec(1), usec(1000));
  EXPECT_EQ(sec(1), msec(1000));
  EXPECT_EQ(SimTime::from_seconds(1e-6), usec(1));
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ(usec(3) + usec(4), usec(7));
  EXPECT_EQ(usec(10) - usec(4), usec(6));
  EXPECT_EQ(usec(5) * 3, usec(15));
  EXPECT_EQ(usec(15) / 3, usec(5));
  EXPECT_DOUBLE_EQ(usec(10) / usec(4), 2.5);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(usec(1), usec(2));
  EXPECT_GE(msec(1), usec(1000));
  EXPECT_EQ(SimTime::zero(), nsec(0));
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ(msec(5).to_seconds(), 0.005);
  EXPECT_DOUBLE_EQ(usec(7).to_usec(), 7.0);
  EXPECT_DOUBLE_EQ(msec(3).to_msec(), 3.0);
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(nsec(500).to_string(), "500ns");
  EXPECT_EQ(usec(100).to_string(), "100us");
  EXPECT_EQ(msec(10).to_string(), "10ms");
  EXPECT_EQ(sec(2).to_string(), "2s");
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(usec(30), [&] { order.push_back(3); });
  q.schedule_at(usec(10), [&] { order.push_back(1); });
  q.schedule_at(usec(20), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), usec(30));
}

TEST(EventQueue, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule_at(usec(5), [&, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  auto h = q.schedule_at(usec(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  q.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  int count = 0;
  auto h = q.schedule_at(usec(10), [&] { ++count; });
  q.run();
  EXPECT_EQ(count, 1);
  h.cancel();  // must not crash or double-count
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, RunUntilAdvancesClockPastLastEvent) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(usec(10), [&] { ++fired; });
  q.schedule_at(usec(50), [&] { ++fired; });
  q.run_until(usec(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), usec(20));
  q.run_until(usec(100));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), usec(100));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(usec(1), recurse);
  };
  q.schedule_at(usec(0), recurse);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), usec(4));
}

TEST(EventQueue, StopHaltsRun) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(usec(1), [&] {
    ++fired;
    q.stop();
  });
  q.schedule_at(usec(2), [&] { ++fired; });
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, EmptyReflectsCancelledEvents) {
  EventQueue q;
  auto h = q.schedule_at(usec(1), [] {});
  EXPECT_FALSE(q.empty());
  h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ProcessedCounter) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(usec(i), [] {});
  q.run();
  EXPECT_EQ(q.events_processed(), 7u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(1000), b.next(1000));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next(1'000'000) == b.next(1'000'000)) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    EXPECT_LT(r.next(10), 10u);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r{11};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a{42}, b{42};
  Rng fa = a.fork(1), fb = b.fork(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.next(1000), fb.next(1000));
  Rng fc = Rng{42}.fork(2);
  int same = 0;
  Rng fd = Rng{42}.fork(1);
  for (int i = 0; i < 100; ++i)
    if (fc.next(1'000'000) == fd.next(1'000'000)) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, ChanceExtremes) {
  Rng r{3};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Simulator, SchedulingHelpers) {
  Simulator s{1};
  int fired = 0;
  s.after(usec(5), [&] { ++fired; });
  s.at(usec(10), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), usec(10));
}

TEST(Simulator, RngStreamsDeterministic) {
  Simulator a{5}, b{5};
  Rng ra = a.rng_stream(9), rb = b.rng_stream(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ra.next(100), rb.next(100));
}

}  // namespace
}  // namespace hermes::sim
