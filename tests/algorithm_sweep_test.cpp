// Parameterized sweeps over Hermes's decision algorithms: the full
// Table 5 truth table as a (RTT-level x ECN-level) grid, gate boundary
// behaviour for Algorithm 2, and DCTCP window arithmetic under swept
// marking patterns.

#include <cstdint>
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <tuple>

#include "hermes/engine/config.hpp"
#include "hermes/engine/path_state.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/lb/hermes.hpp"
#include "hermes/lb/ecmp.hpp"
#include "hermes/transport/tcp_sender.hpp"

namespace hermes::lb {
namespace {

using sim::usec;

engine::Config sweep_config() {
  engine::Config c;
  c.t_ecn = 0.40;
  c.t_rtt_low = engine::usec(60);
  c.t_rtt_high = engine::usec(180);
  return c;
}

enum class Level { kLow, kMid, kHigh };

sim::SimTime rtt_for(Level l) {
  switch (l) {
    case Level::kLow: return usec(30);
    case Level::kMid: return usec(120);
    case Level::kHigh: return usec(400);
  }
  return {};
}
double ecn_for(Level l) {
  switch (l) {
    case Level::kLow: return 0.05;
    case Level::kMid: return 0.40;  // not used for ECN (binary threshold)
    case Level::kHigh: return 0.95;
  }
  return 0;
}
const char* name_of(Level l) {
  switch (l) {
    case Level::kLow: return "Low";
    case Level::kMid: return "Mid";
    case Level::kHigh: return "High";
  }
  return "?";
}

/// Expected characterization per Table 5 / Algorithm 1.
engine::PathType expected(Level ecn, Level rtt) {
  if (ecn == Level::kLow && rtt == Level::kLow) return engine::PathType::kGood;
  if (ecn == Level::kHigh && rtt == Level::kHigh) return engine::PathType::kCongested;
  return engine::PathType::kGray;
}

class Table5Sweep : public ::testing::TestWithParam<std::tuple<Level, Level>> {};

TEST_P(Table5Sweep, CharacterizationMatchesTable5) {
  const auto [ecn, rtt] = GetParam();
  const auto cfg = sweep_config();
  engine::PathState st;
  int marked = 0;
  for (int i = 0; i < 500; ++i) {
    const bool mark = marked < ecn_for(ecn) * (i + 1);
    if (mark) ++marked;
    st.add_sample(rtt_for(rtt).ns(), mark, cfg);
  }
  EXPECT_EQ(st.characterize(cfg), expected(ecn, rtt))
      << "ecn=" << name_of(ecn) << " rtt=" << name_of(rtt);
}

std::string level_name(const ::testing::TestParamInfo<std::tuple<Level, Level>>& info) {
  return std::string("Ecn") + name_of(std::get<0>(info.param)) + "Rtt" +
         name_of(std::get<1>(info.param));
}

// ECN is a binary signal in Algorithm 1 (fraction above/below T_ECN), so
// the grid covers the two ECN levels against all three RTT levels —
// exactly Table 5's six rows.
INSTANTIATE_TEST_SUITE_P(
    Grid, Table5Sweep,
    ::testing::Combine(::testing::Values(Level::kLow, Level::kHigh),
                       ::testing::Values(Level::kLow, Level::kMid, Level::kHigh)),
    level_name);

// --- Algorithm 2 gate boundaries -----------------------------------------

class GateSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GateSweep, SentSizeGateIsStrict) {
  // Flows reroute only when s_sent strictly exceeds S.
  sim::Simulator simulator{1};
  net::TopologyConfig tc;
  tc.num_leaves = 2;
  tc.num_spines = 2;
  tc.hosts_per_leaf = 2;
  net::Topology topo{simulator, tc};
  auto cfg = HermesConfig::defaults_for(topo);
  cfg.probing_enabled = false;
  HermesLb h{simulator, topo, cfg};
  const auto ecfg = cfg.engine_config(topo.host_rate_bps());

  // Path 0 congested, path 1 notably-better good.
  auto drive = [&](int idx, sim::SimTime rtt, double frac) {
    auto& st = h.path_state(0, 1, idx);
    int marked = 0;
    for (int i = 0; i < 400; ++i) {
      const bool m = marked < frac * (i + 1);
      if (m) ++marked;
      st.add_sample(rtt.ns(), m, ecfg);
    }
  };
  drive(0, cfg.t_rtt_high + usec(200), 0.9);
  drive(1, usec(25), 0.0);

  FlowCtx f;
  f.flow_id = 1;
  f.src = 0;
  f.dst = 2;
  f.src_leaf = 0;
  f.dst_leaf = 1;
  f.current_path = topo.paths_between_leaves(0, 1)[0].id;
  f.has_sent = true;
  f.bytes_sent = GetParam();

  net::Packet pkt;
  pkt.size = 1500;
  const int chosen = h.select_path(f, pkt);
  const bool rerouted = chosen != f.current_path;
  EXPECT_EQ(rerouted, GetParam() > cfg.sent_threshold_bytes)
      << "bytes_sent=" << GetParam() << " S=" << cfg.sent_threshold_bytes;
}

INSTANTIATE_TEST_SUITE_P(AroundS, GateSweep,
                         ::testing::Values(0u, 1024u, 614'399u, 614'400u, 614'401u,
                                           10'000'000u));

}  // namespace
}  // namespace hermes::lb

// --- DCTCP window arithmetic sweep ---------------------------------------

namespace hermes::transport {
namespace {

/// Drives a TcpSender directly with a synthetic ACK stream whose marking
/// fraction is exactly F: DCTCP's alpha must converge to F (the EWMA
/// fixed point of the per-window marked fraction).
class MarkSweep : public ::testing::TestWithParam<double> {};

TEST_P(MarkSweep, AlphaConvergesToMarkingFraction) {
  const double frac = GetParam();
  sim::Simulator simulator{1};
  net::TopologyConfig tc;
  tc.num_leaves = 2;
  tc.num_spines = 1;
  tc.hosts_per_leaf = 1;
  net::Topology topo{simulator, tc};
  lb::EcmpLb ecmp{topo};

  std::deque<net::Packet> wire;
  FlowSpec spec;
  spec.id = 1;
  spec.src = 0;
  spec.dst = 1;
  spec.size = 1'000'000'000;
  TcpSender sender{simulator, topo,
                   ecmp,      TcpConfig{},
                   spec,      [&](net::Packet p) { wire.push_back(std::move(p)); },
                   nullptr};
  sender.start();

  int acked = 0;
  int marked = 0;
  for (int step = 0; step < 30'000 && !wire.empty(); ++step) {
    net::Packet data = wire.front();
    wire.pop_front();
    net::Packet ack;
    ack.type = net::PacketType::kAck;
    ack.flow_id = spec.id;
    ack.ack = data.seq + data.payload;
    ack.path_id = data.path_id;
    const bool mark = marked < frac * (acked + 1);
    if (mark) ++marked;
    ++acked;
    ack.ece = mark;
    sender.on_ack(ack);
  }
  ASSERT_GT(acked, 1000);
  EXPECT_NEAR(sender.dctcp_alpha(), frac, 0.15) << "F=" << frac;
}

INSTANTIATE_TEST_SUITE_P(Fracs, MarkSweep, ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace hermes::transport
