// Fine-grained TCP/DCTCP behaviour tests driving TcpSender with
// synthetic ACK streams: slow-start doubling, congestion-avoidance
// growth, fast-recovery arithmetic, and the receiver's reorder-hold
// timing boundary.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include <deque>

#include "hermes/harness/scenario.hpp"
#include "hermes/lb/ecmp.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/transport/tcp_receiver.hpp"
#include "hermes/transport/tcp_sender.hpp"

namespace hermes::transport {
namespace {

using sim::usec;

/// Harness around a bare TcpSender: captures transmissions, lets tests
/// acknowledge them selectively.
class SenderHarness {
 public:
  explicit SenderHarness(std::uint64_t flow_size, TcpConfig config = {})
      : topo_{simulator_, small()},
        ecmp_{topo_},
        sender_{simulator_, topo_,  ecmp_,
                config,     spec(flow_size), [this](net::Packet p) { wire_.push_back(std::move(p)); },
                nullptr} {
    sender_.start();
  }

  static net::TopologyConfig small() {
    net::TopologyConfig c;
    c.num_leaves = 2;
    c.num_spines = 1;
    c.hosts_per_leaf = 1;
    return c;
  }
  static FlowSpec spec(std::uint64_t size) {
    FlowSpec f;
    f.id = 1;
    f.src = 0;
    f.dst = 1;
    f.size = size;
    return f;
  }

  /// ACK cumulatively up to `upto` payload bytes.
  void ack_upto(std::uint64_t upto, bool ece = false) {
    net::Packet a;
    a.type = net::PacketType::kAck;
    a.flow_id = 1;
    a.ack = upto;
    a.ece = ece;
    sender_.on_ack(a);
  }
  /// Send one duplicate ACK at the current snd_una.
  void dup_ack() { ack_upto(sender_.snd_una()); }

  /// Pop everything currently on the "wire".
  std::vector<net::Packet> drain() {
    std::vector<net::Packet> out(wire_.begin(), wire_.end());
    wire_.clear();
    return out;
  }

  TcpSender& sender() { return sender_; }
  sim::Simulator& simulator() { return simulator_; }

 private:
  sim::Simulator simulator_{1};
  net::Topology topo_;
  lb::EcmpLb ecmp_;
  std::deque<net::Packet> wire_;
  TcpSender sender_;
};

TEST(TcpBehavior, InitialWindowIsTenSegments) {
  SenderHarness h{100'000'000};
  const auto burst = h.drain();
  ASSERT_EQ(burst.size(), 10u);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    EXPECT_EQ(burst[i].seq, i * 1460);
    EXPECT_EQ(burst[i].payload, 1460u);
    EXPECT_TRUE(burst[i].ect);
  }
}

TEST(TcpBehavior, SlowStartDoublesPerRound) {
  SenderHarness h{100'000'000};
  std::size_t window = h.drain().size();
  EXPECT_EQ(window, 10u);
  std::uint64_t acked = 0;
  for (int round = 0; round < 4; ++round) {
    acked += window * 1460;
    h.ack_upto(acked);  // one cumulative ACK per round
    const auto next = h.drain().size();
    // Cumulative ACK for W segments grows cwnd by W segments: doubling.
    EXPECT_EQ(next, 2 * window) << "round " << round;
    window = next;
  }
}

TEST(TcpBehavior, EcnCutShrinksWindowByAlphaHalf) {
  TcpConfig cfg;
  SenderHarness h{100'000'000, cfg};
  auto burst = h.drain();
  std::uint64_t acked = 0;
  // Grow a few rounds cleanly.
  for (int i = 0; i < 3; ++i) {
    acked += burst.size() * 1460;
    h.ack_upto(acked);
    burst = h.drain();
  }
  const double cwnd_before = h.sender().cwnd_bytes();
  // One fully-marked window: alpha jumps to g*1 and the window is cut.
  acked += burst.size() * 1460;
  h.ack_upto(acked, /*ece=*/true);
  EXPECT_GT(h.sender().dctcp_alpha(), 0.0);
  // Cut happens at the next window boundary; drive one more short round.
  const double alpha = h.sender().dctcp_alpha();
  EXPECT_LE(h.sender().cwnd_bytes(), cwnd_before * (1 - alpha / 2) + 2 * 1460 + cwnd_before);
}

TEST(TcpBehavior, ThreeDupAcksTriggerFastRetransmit) {
  SenderHarness h{100'000'000};
  h.drain();
  h.dup_ack();
  h.dup_ack();
  EXPECT_EQ(h.drain().size(), 0u);  // below threshold: nothing resent
  h.dup_ack();
  const auto rtx = h.drain();
  ASSERT_GE(rtx.size(), 1u);
  EXPECT_EQ(rtx[0].seq, 0u);  // the hole
  EXPECT_TRUE(rtx[0].retransmit);
  EXPECT_EQ(h.sender().record().fast_retransmits, 1u);
}

TEST(TcpBehavior, RecoveryExitRestoresSsthresh) {
  SenderHarness h{100'000'000};
  h.drain();
  const double cwnd_before = h.sender().cwnd_bytes();
  for (int i = 0; i < 3; ++i) h.dup_ack();
  h.drain();
  // Full ACK of everything outstanding exits recovery at ssthresh ~ half.
  h.ack_upto(10 * 1460);
  EXPECT_NEAR(h.sender().cwnd_bytes(), cwnd_before / 2, 1500.0);
}

TEST(TcpBehavior, NewRenoPartialAckRetransmitsNextHole) {
  SenderHarness h{100'000'000};
  h.drain();
  for (int i = 0; i < 3; ++i) h.dup_ack();
  (void)h.drain();  // first retransmission (seq 0)
  // Partial ACK: first hole filled, second hole at 2920 still missing.
  h.ack_upto(2920);
  const auto rtx = h.drain();
  bool resent_hole = false;
  for (const auto& p : rtx) resent_hole |= (p.seq == 2920 && p.retransmit);
  EXPECT_TRUE(resent_hole);
}

TEST(TcpBehavior, RtoResendsFromUnaAndResetsWindow) {
  SenderHarness h{100'000'000};
  h.drain();
  h.simulator().run_until(sim::msec(11));  // initial RTO = 10ms
  const auto rtx = h.drain();
  ASSERT_GE(rtx.size(), 1u);
  EXPECT_EQ(rtx[0].seq, 0u);
  EXPECT_NEAR(h.sender().cwnd_bytes(), 1460.0, 1.0);  // cwnd = 1 MSS
  EXPECT_EQ(h.sender().record().timeouts, 1u);
}

TEST(TcpBehavior, CongestionAvoidanceGrowsLinearly) {
  TcpConfig cfg;
  SenderHarness h{100'000'000, cfg};
  auto burst = h.drain();
  std::uint64_t acked = 0;
  // Force CA via an ECN cut first.
  for (int i = 0; i < 2; ++i) {
    acked += burst.size() * 1460;
    h.ack_upto(acked, true);
    burst = h.drain();
    if (burst.empty()) break;
  }
  const double cwnd0 = h.sender().cwnd_bytes();
  // One clean round: CA adds ~1 MSS per RTT.
  std::uint64_t outstanding = acked + static_cast<std::uint64_t>(cwnd0);
  h.ack_upto(outstanding);
  h.drain();
  EXPECT_LT(h.sender().cwnd_bytes(), cwnd0 + 2 * 1460);
}

// --- receiver reorder-hold boundary ----------------------------------------

TEST(ReorderHold, AckDeferredExactlyHoldTime) {
  sim::Simulator simulator{1};
  net::TopologyConfig tc;
  tc.num_leaves = 2;
  tc.num_spines = 1;
  tc.hosts_per_leaf = 1;
  net::Topology topo{simulator, tc};
  lb::EcmpLb ecmp{topo};
  TcpConfig cfg;
  cfg.reorder_buffer = true;
  cfg.reorder_hold = usec(300);

  std::vector<std::pair<sim::SimTime, net::Packet>> acks;
  TcpReceiver recv{simulator, topo,
                   ecmp,      cfg,
                   1,         0,
                   1,         [&](net::Packet p) { acks.emplace_back(simulator.now(), p); }};

  net::Packet ooo;
  ooo.flow_id = 1;
  ooo.src = 0;
  ooo.dst = 1;
  ooo.seq = 1460;  // hole at [0, 1460)
  ooo.payload = 1460;
  ooo.path_id = topo.paths_between_leaves(0, 1)[0].id;
  recv.on_data(ooo);
  EXPECT_TRUE(acks.empty());  // held, no immediate dupACK

  simulator.run_until(usec(1000));
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].first, usec(300));  // exactly the hold time
  EXPECT_EQ(acks[0].second.ack, 0u);    // still a duplicate ACK (hole open)
}

TEST(ReorderHold, GapFilledWithinHoldProducesCumulativeAck) {
  sim::Simulator simulator{1};
  net::TopologyConfig tc;
  tc.num_leaves = 2;
  tc.num_spines = 1;
  tc.hosts_per_leaf = 1;
  net::Topology topo{simulator, tc};
  lb::EcmpLb ecmp{topo};
  TcpConfig cfg;
  cfg.reorder_buffer = true;
  cfg.reorder_hold = usec(300);

  std::vector<net::Packet> acks;
  TcpReceiver recv{simulator, topo, ecmp, cfg, 1, 0, 1,
                   [&](net::Packet p) { acks.push_back(p); }};

  net::Packet ooo;
  ooo.flow_id = 1;
  ooo.seq = 1460;
  ooo.payload = 1460;
  ooo.src = 0;
  ooo.dst = 1;
  ooo.path_id = topo.paths_between_leaves(0, 1)[0].id;
  recv.on_data(ooo);

  simulator.run_until(usec(100));
  net::Packet fill = ooo;
  fill.seq = 0;
  recv.on_data(fill);  // gap filled before the hold expired
  simulator.run_until(usec(1000));
  ASSERT_GE(acks.size(), 2u);
  // The in-order arrival ACKs cumulatively; the deferred ACK is also
  // cumulative — no duplicate ACK was ever emitted.
  for (const auto& a : acks) EXPECT_EQ(a.ack, 2920u);
}

}  // namespace
}  // namespace hermes::transport
