// Property-based tests: invariants that must hold for EVERY scheme, seed
// and load — byte conservation, FCT lower bounds, determinism, in-order
// app-level delivery — swept with parameterized gtest.

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include <string>
#include <tuple>

#include "hermes/harness/scenario.hpp"
#include "hermes/workload/flow_gen.hpp"

namespace hermes {
namespace {

using harness::Scenario;
using harness::ScenarioConfig;
using harness::Scheme;

constexpr Scheme kAllSchemes[] = {
    Scheme::kEcmp,  Scheme::kDrb,      Scheme::kPrestoStar,
    Scheme::kLetFlow, Scheme::kConga,  Scheme::kCloveEcn,
    Scheme::kHermes, Scheme::kFlowBender, Scheme::kDrill,
    Scheme::kWcmp};

net::TopologyConfig tiny_fabric() {
  net::TopologyConfig c;
  c.num_leaves = 3;
  c.num_spines = 2;
  c.hosts_per_leaf = 2;
  return c;
}

struct RunResult {
  stats::FctCollector fct;
  std::uint64_t fabric_tx_bytes = 0;
  std::uint64_t fabric_drops = 0;
};

RunResult run_scheme(Scheme scheme, std::uint64_t seed, double load, int flows,
                     std::vector<transport::FlowSpec>* specs_out = nullptr,
                     Scenario** keep = nullptr) {
  ScenarioConfig cfg;
  cfg.topo = tiny_fabric();
  cfg.scheme = scheme;
  cfg.seed = seed;
  static std::unique_ptr<Scenario> holder;  // kept alive for inspection
  holder = std::make_unique<Scenario>(cfg);
  Scenario& s = *holder;
  if (keep) *keep = &s;
  workload::TrafficConfig tc{.load = load, .num_flows = flows, .seed = seed};
  auto specs =
      workload::generate_poisson_traffic(s.topology(), workload::SizeDist::web_search(), tc);
  if (specs_out) *specs_out = specs;
  s.add_flows(specs);
  RunResult r;
  r.fct = s.run();
  for (int l = 0; l < 3; ++l)
    for (int sp = 0; sp < 2; ++sp) {
      r.fabric_tx_bytes += s.topology().leaf_uplink(l, sp).stats().tx_bytes;
      r.fabric_drops += s.topology().leaf_uplink(l, sp).stats().drops;
    }
  return r;
}

class SchemeProperties : public ::testing::TestWithParam<std::tuple<Scheme, std::uint64_t>> {};

TEST_P(SchemeProperties, AllFlowsFinishOnHealthyFabric) {
  const auto [scheme, seed] = GetParam();
  auto r = run_scheme(scheme, seed, 0.5, 120);
  EXPECT_EQ(r.fct.unfinished_flows(), 0u);
  EXPECT_EQ(r.fct.total_flows(), 120u);
}

TEST_P(SchemeProperties, EveryByteDeliveredInOrder) {
  const auto [scheme, seed] = GetParam();
  std::vector<transport::FlowSpec> specs;
  Scenario* s = nullptr;
  auto r = run_scheme(scheme, seed, 0.5, 120, &specs, &s);
  ASSERT_NE(s, nullptr);
  for (const auto& f : specs) {
    auto* recv = s->stack(f.dst).receiver(f.id);
    if (f.size == 0) continue;
    ASSERT_NE(recv, nullptr) << "flow " << f.id;
    // The receiver's cumulative in-order point reached the flow size:
    // nothing was lost, duplicated into the gap, or reordered at the
    // application layer.
    EXPECT_EQ(recv->rcv_nxt(), f.size);
  }
}

TEST_P(SchemeProperties, FctRespectsPhysicalLowerBound) {
  const auto [scheme, seed] = GetParam();
  std::vector<transport::FlowSpec> specs;
  auto r = run_scheme(scheme, seed, 0.4, 120, &specs);
  for (const auto& rec : r.fct.records()) {
    if (!rec.finished) continue;
    // Serialization alone: size bytes at 10G (ignoring headers: a strict
    // under-estimate), plus nothing for RTT => safe lower bound.
    const double min_us = static_cast<double>(rec.size) * 8.0 / 10e9 * 1e6;
    EXPECT_GE(rec.fct().to_usec(), min_us) << "flow " << rec.id;
  }
}

TEST_P(SchemeProperties, DeterministicForSeed) {
  const auto [scheme, seed] = GetParam();
  auto a = run_scheme(scheme, seed, 0.5, 80);
  auto b = run_scheme(scheme, seed, 0.5, 80);
  ASSERT_EQ(a.fct.total_flows(), b.fct.total_flows());
  EXPECT_DOUBLE_EQ(a.fct.overall().mean_us, b.fct.overall().mean_us);
  EXPECT_EQ(a.fabric_tx_bytes, b.fabric_tx_bytes);
  EXPECT_EQ(a.fabric_drops, b.fabric_drops);
}

TEST_P(SchemeProperties, FabricCarriesAtLeastThePayload) {
  const auto [scheme, seed] = GetParam();
  std::vector<transport::FlowSpec> specs;
  auto r = run_scheme(scheme, seed, 0.5, 120, &specs);
  std::uint64_t payload = 0;
  for (const auto& f : specs) payload += f.size;
  // Every inter-rack byte crosses exactly one uplink, plus headers; the
  // fabric cannot have carried less than the payload it delivered.
  EXPECT_GE(r.fabric_tx_bytes, payload);
  // And overhead (headers + retransmits + ACK-free since ACKs go down
  // another leaf's uplink... they do cross uplinks too) stays sane: < 2x.
  EXPECT_LT(r.fabric_tx_bytes, payload * 2);
}

std::string param_name(const ::testing::TestParamInfo<std::tuple<Scheme, std::uint64_t>>& info) {
  std::string n = harness::to_string(std::get<0>(info.param));
  for (auto& c : n)
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  return n + "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeProperties,
                         ::testing::Combine(::testing::ValuesIn(kAllSchemes),
                                            ::testing::Values(1u, 42u)),
                         param_name);

// --- load sweep: the fabric stays stable across operating points --------

class LoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweep, HermesStableAcrossLoads) {
  const double load = GetParam();
  auto r = run_scheme(Scheme::kHermes, 7, load, 100);
  EXPECT_EQ(r.fct.unfinished_flows(), 0u);
  EXPECT_GT(r.fct.overall().mean_us, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadSweep, ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace hermes
