// Transport tests: DCTCP/NewReno sender behaviour (slow start, ECN
// window cut, fast retransmit, RTO), receiver ACK/reorder semantics, and
// flow completion accounting, exercised end-to-end through tiny fabrics.

#include <cstdint>
#include <gtest/gtest.h>

#include "hermes/harness/scenario.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/transport/tcp_receiver.hpp"
#include "hermes/transport/tcp_sender.hpp"

namespace hermes::transport {
namespace {

using harness::Scenario;
using harness::ScenarioConfig;
using harness::Scheme;
using sim::msec;
using sim::usec;

/// 2 leaves x 1 spine x 1 host each: a single deterministic path.
ScenarioConfig single_path_config() {
  ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 1;
  cfg.topo.hosts_per_leaf = 1;
  cfg.topo.host_rate_bps = 10e9;
  cfg.topo.fabric_rate_bps = 10e9;
  cfg.scheme = Scheme::kEcmp;
  return cfg;
}

TEST(TcpFlow, SingleFlowReachesLineRate) {
  Scenario s{single_path_config()};
  s.add_flow(0, 1, 10'000'000, sim::SimTime::zero());
  auto fct = s.run();
  ASSERT_EQ(fct.overall().count, 1u);
  // 10MB at 10G is 8ms of serialization; allow 25% for ramp-up/RTT.
  EXPECT_GT(fct.overall().mean_us, 8000.0);
  EXPECT_LT(fct.overall().mean_us, 10'000.0);
}

TEST(TcpFlow, TinyFlowFinishesInInitialWindow) {
  Scenario s{single_path_config()};
  s.add_flow(0, 1, 5'000, sim::SimTime::zero());  // 4 segments < IW=10
  auto fct = s.run();
  const auto& r = fct.records().front();
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.packets_retransmitted, 0u);
  // One RTT-ish: well under a millisecond on an idle 10G fabric.
  EXPECT_LT(r.fct().to_usec(), 100.0);
}

TEST(TcpFlow, FctGrowsWithSize) {
  Scenario s{single_path_config()};
  s.add_flow(0, 1, 100'000, usec(0));
  auto id2 = s.add_flow(1, 0, 10'000'000, usec(0));  // opposite direction
  auto fct = s.run();
  double small_fct = 0, big_fct = 0;
  for (const auto& r : fct.records()) {
    (r.id == id2 ? big_fct : small_fct) = r.fct().to_usec();
  }
  EXPECT_LT(small_fct, big_fct / 10);
}

TEST(TcpFlow, TwoFlowsShareBottleneckFairly) {
  auto cfg = single_path_config();
  cfg.topo.hosts_per_leaf = 2;
  Scenario s{cfg};
  // Both flows 0->2 direction share the single 10G uplink.
  s.add_flow(0, 2, 5'000'000, usec(0));
  s.add_flow(1, 3, 5'000'000, usec(0));
  auto fct = s.run();
  ASSERT_EQ(fct.overall().count, 2u);
  const double a = fct.records()[0].fct().to_usec();
  const double b = fct.records()[1].fct().to_usec();
  // Equal shares: both finish around 8ms (2x 4ms solo), within 30%.
  EXPECT_NEAR(a / b, 1.0, 0.3);
  EXPECT_GT(a, 6000.0);
  EXPECT_LT(a, 11'000.0);
}

TEST(TcpFlow, DctcpKeepsQueueNearThreshold) {
  auto cfg = single_path_config();
  Scenario s{cfg};
  s.add_flow(0, 1, 20'000'000, usec(0));
  // A single flow's first bottleneck is its own NIC (all links 10G);
  // sample that backlog during steady state.
  auto& port = s.topology().host(0).nic();
  std::uint32_t max_seen = 0;
  for (int i = 0; i < 100; ++i) {
    s.simulator().at(msec(2) + usec(50) * i,
                     [&] { max_seen = std::max(max_seen, port.backlog_bytes()); });
  }
  auto fct = s.run();
  EXPECT_EQ(fct.unfinished_flows(), 0u);
  // With step marking at K the backlog stays in the vicinity of K: far
  // below the 6x-K buffer, and it must have produced marks.
  EXPECT_LT(max_seen, 3 * cfg.topo.ecn_bytes_for(10e9));
  EXPECT_GT(port.stats().ecn_marks, 0u);
}

TEST(TcpFlow, DctcpAlphaRisesUnderPersistentCongestion) {
  auto cfg = single_path_config();
  cfg.topo.hosts_per_leaf = 2;
  Scenario s{cfg};
  transport::FlowSpec spec;
  spec.id = 77;
  spec.src = 0;
  spec.dst = 2;
  spec.size = 30'000'000;
  spec.start = sim::SimTime::zero();
  auto& sender = s.stack(0).start_flow(spec, nullptr);
  s.add_flow(1, 3, 30'000'000, usec(0));
  s.run_for(msec(10));
  EXPECT_GT(sender.dctcp_alpha(), 0.01);
  EXPECT_LT(sender.dctcp_alpha(), 1.0);
}

TEST(TcpFlow, RandomDropsTriggerFastRetransmitNotOnlyRto) {
  auto cfg = single_path_config();
  Scenario s{cfg};
  s.topology().spine(0).set_failure({.blackhole = nullptr, .random_drop_rate = 0.01});
  s.add_flow(0, 1, 5'000'000, usec(0));
  auto fct = s.run();
  const auto& r = fct.records().front();
  EXPECT_TRUE(r.finished);
  EXPECT_GT(r.fast_retransmits, 0u);
  EXPECT_GT(r.packets_retransmitted, 0u);
}

TEST(TcpFlow, BlackholeLeavesFlowUnfinishedUnderEcmp) {
  auto cfg = single_path_config();
  cfg.max_sim_time = msec(200);
  Scenario s{cfg};
  s.topology().spine(0).set_failure(
      {.blackhole = [](const net::Packet& p) { return p.type == net::PacketType::kData; },
       .random_drop_rate = 0.0});
  s.add_flow(0, 1, 100'000, usec(0));
  auto fct = s.run();
  EXPECT_EQ(fct.unfinished_flows(), 1u);
  EXPECT_GT(fct.records().front().timeouts, 2u);  // RTOs kept firing
}

TEST(TcpFlow, RtoBacksOffExponentially) {
  auto cfg = single_path_config();
  cfg.max_sim_time = msec(500);
  Scenario s{cfg};
  s.topology().spine(0).set_failure(
      {.blackhole = [](const net::Packet&) { return true; }, .random_drop_rate = 0.0});
  s.add_flow(0, 1, 100'000, usec(0));
  auto fct = s.run();
  const auto& r = fct.records().front();
  // 500ms with 10ms initial RTO and doubling: 10+20+40+80+160+320 caps
  // around 6-7 timeouts; without backoff it would be ~50.
  EXPECT_GE(r.timeouts, 5u);
  EXPECT_LE(r.timeouts, 10u);
}

TEST(TcpFlow, CompletionRecordFields) {
  Scenario s{single_path_config()};
  s.add_flow(0, 1, 1'000'000, usec(100));
  auto fct = s.run();
  const auto& r = fct.records().front();
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.size, 1'000'000u);
  EXPECT_EQ(r.start, usec(100));
  EXPECT_GT(r.end, r.start);
  EXPECT_GE(r.packets_sent, 1'000'000u / 1460u);
}

TEST(TcpFlow, ZeroByteFlowCompletesImmediately) {
  Scenario s{single_path_config()};
  s.add_flow(0, 1, 0, usec(5));
  auto fct = s.run();
  EXPECT_TRUE(fct.records().front().finished);
  EXPECT_EQ(fct.records().front().fct(), sim::SimTime::zero());
}

TEST(TcpFlow, IntraRackFlowNeedsNoFabric) {
  auto cfg = single_path_config();
  cfg.topo.hosts_per_leaf = 2;
  Scenario s{cfg};
  s.add_flow(0, 1, 1'000'000, usec(0));
  auto fct = s.run();
  EXPECT_TRUE(fct.records().front().finished);
  EXPECT_EQ(s.topology().leaf_uplink(0, 0).stats().tx_packets, 0u);
}

TEST(TcpFlow, PlainTcpModeIgnoresEcn) {
  auto cfg = single_path_config();
  cfg.tcp.dctcp = false;
  Scenario s{cfg};
  s.add_flow(0, 1, 10'000'000, usec(0));
  auto fct = s.run();
  EXPECT_TRUE(fct.records().front().finished);
  // ECN disabled fabric-wide in TCP mode: no marks anywhere.
  EXPECT_EQ(s.topology().leaf_uplink(0, 0).stats().ecn_marks, 0u);
}

TEST(TcpFlow, ByteConservationUnderLoss) {
  auto cfg = single_path_config();
  Scenario s{cfg};
  s.topology().spine(0).set_failure({.blackhole = nullptr, .random_drop_rate = 0.02});
  const auto id = s.add_flow(0, 1, 2'000'000, usec(0));
  auto fct = s.run();
  EXPECT_TRUE(fct.records().front().finished);
  auto* recv = s.stack(1).receiver(id);
  ASSERT_NE(recv, nullptr);
  EXPECT_EQ(recv->rcv_nxt(), 2'000'000u);
}

// --- reordering masking -------------------------------------------------

/// 2 spines so spraying actually reorders.
ScenarioConfig spray_config(bool reorder_buffer) {
  ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 2;
  cfg.topo.hosts_per_leaf = 1;
  cfg.scheme = Scheme::kDrb;  // per-packet round robin
  cfg.tcp.reorder_buffer = reorder_buffer;  // note: Scenario forces it on
  return cfg;
}

TEST(ReorderBuffer, SprayingWithMaskAvoidsSpuriousRetransmits) {
  Scenario s{spray_config(true)};
  s.add_flow(0, 1, 10'000'000, usec(0));
  auto fct = s.run();
  const auto& r = fct.records().front();
  EXPECT_TRUE(r.finished);
  // Equal-length parallel paths: reordering is mild and fully masked.
  EXPECT_EQ(r.fast_retransmits, 0u);
}

TEST(ReorderBuffer, LossStillRecoveredThroughMask) {
  auto cfg = spray_config(true);
  Scenario s{cfg};
  s.topology().spine(0).set_failure({.blackhole = nullptr, .random_drop_rate = 0.01});
  s.add_flow(0, 1, 5'000'000, usec(0));
  auto fct = s.run();
  const auto& r = fct.records().front();
  EXPECT_TRUE(r.finished);
  EXPECT_GT(r.packets_retransmitted, 0u);
}

TEST(ReorderBuffer, ReceiverMergesOutOfOrderSegments) {
  Scenario s{spray_config(true)};
  const auto id = s.add_flow(0, 1, 3'000'000, usec(0));
  auto fct = s.run();
  EXPECT_TRUE(fct.records().front().finished);
  EXPECT_EQ(s.stack(1).receiver(id)->rcv_nxt(), 3'000'000u);
}

}  // namespace
}  // namespace hermes::transport
