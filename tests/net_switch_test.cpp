// Unit tests for Switch: source-route forwarding, CONGA stamping on
// fabric ports, and the failure injectors (blackhole, silent random drop).

#include <cstdint>
#include <gtest/gtest.h>

#include <vector>

#include "hermes/net/switch.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {
namespace {

using sim::usec;

class Sink : public Device {
 public:
  explicit Sink(PacketArena& arena) : arena_{arena} {}
  void receive(PacketHandle h, int in_port) override {
    packets.push_back(std::move(arena_[h]));
    arena_.free(h);
    ports.push_back(in_port);
  }
  std::vector<Packet> packets;
  std::vector<int> ports;

 private:
  PacketArena& arena_;
};

PortConfig fast_port() {
  PortConfig c;
  c.rate_bps = 10e9;
  c.prop_delay = usec(1);
  c.queue_capacity_bytes = 1 << 20;
  c.ecn_threshold_bytes = 100'000;
  return c;
}

Packet routed_packet(std::initializer_list<std::uint8_t> hops) {
  static std::uint64_t id = 1;
  Packet p;
  p.id = id++;
  p.size = 1500;
  p.src = 0;
  p.dst = 1;
  for (auto h : hops) p.route.push(h);
  return p;
}

TEST(SwitchTest, ForwardsAlongSourceRoute) {
  sim::Simulator simulator{1};
  PacketArena arena;
  Switch sw{simulator, arena, 0, "sw"};
  Sink a{arena}, b{arena};
  sw.add_port(fast_port(), &a, 0);
  sw.add_port(fast_port(), &b, 0);

  sw.receive(routed_packet({1}), 0);
  sw.receive(routed_packet({0}), 0);
  simulator.run();
  EXPECT_EQ(a.packets.size(), 1u);
  EXPECT_EQ(b.packets.size(), 1u);
}

TEST(SwitchTest, AdvancesHopIndex) {
  sim::Simulator simulator{1};
  PacketArena arena;
  Switch sw{simulator, arena, 0, "sw"};
  Sink out{arena};
  sw.add_port(fast_port(), &out, 3);
  Packet p = routed_packet({0, 5});
  sw.receive(std::move(p), 1);
  simulator.run();
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].hop, 1);  // next switch reads route[1] == 5
}

TEST(SwitchTest, BlackholeDropsMatchingPacketsOnly) {
  sim::Simulator simulator{1};
  PacketArena arena;
  Switch sw{simulator, arena, 0, "sw"};
  Sink out{arena};
  sw.add_port(fast_port(), &out, 0);
  sw.set_failure({.blackhole = [](const Packet& p) { return p.src == 42; },
                  .random_drop_rate = 0.0});

  Packet doomed = routed_packet({0});
  doomed.src = 42;
  Packet fine = routed_packet({0});
  fine.src = 7;
  sw.receive(std::move(doomed), 0);
  sw.receive(std::move(fine), 0);
  simulator.run();
  EXPECT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].src, 7);
  EXPECT_EQ(sw.failure_drops(), 1u);
}

TEST(SwitchTest, BlackholeIsDeterministic) {
  sim::Simulator simulator{1};
  PacketArena arena;
  Switch sw{simulator, arena, 0, "sw"};
  Sink out{arena};
  sw.add_port(fast_port(), &out, 0);
  sw.set_failure({.blackhole = [](const Packet& p) { return p.src == 42; },
                  .random_drop_rate = 0.0});
  for (int i = 0; i < 100; ++i) {
    Packet p = routed_packet({0});
    p.src = 42;
    sw.receive(std::move(p), 0);
  }
  simulator.run();
  EXPECT_EQ(out.packets.size(), 0u);  // 100% drop, not probabilistic
  EXPECT_EQ(sw.failure_drops(), 100u);
}

TEST(SwitchTest, RandomDropMatchesConfiguredRate) {
  sim::Simulator simulator{1};
  PacketArena arena;
  Switch sw{simulator, arena, 0, "sw"};
  Sink out{arena};
  sw.add_port(fast_port(), &out, 0);
  sw.set_failure({.blackhole = nullptr, .random_drop_rate = 0.10});
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sw.receive(routed_packet({0}), 0);
  simulator.run();
  const double drop_frac = static_cast<double>(sw.failure_drops()) / n;
  EXPECT_NEAR(drop_frac, 0.10, 0.01);
}

TEST(SwitchTest, RandomDropDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator simulator{seed};
    PacketArena arena;
    Switch sw{simulator, arena, 0, "sw"};
    Sink out{arena};
    sw.add_port(fast_port(), &out, 0);
    sw.set_failure({.blackhole = nullptr, .random_drop_rate = 0.5});
    for (int i = 0; i < 100; ++i) sw.receive(routed_packet({0}), 0);
    simulator.run();
    return sw.failure_drops();
  };
  EXPECT_EQ(run(3), run(3));
}

TEST(SwitchTest, CongaStampsOnlyFabricPorts) {
  sim::Simulator simulator{1};
  PacketArena arena;
  Switch sw{simulator, arena, 0, "sw"};
  Sink host_side{arena}, fabric_side{arena};
  const int host_port = sw.add_port(fast_port(), &host_side, 0);
  const int fabric_port = sw.add_port(fast_port(), &fabric_side, 0);
  sw.port(fabric_port).is_fabric = true;
  (void)host_port;

  // Drive traffic through the fabric port to raise its DRE, then check
  // that a transiting packet picks up a nonzero metric there but not on
  // the host port.
  for (int i = 0; i < 2000; ++i) sw.receive(routed_packet({1}), 0);
  simulator.run();
  Packet probe1 = routed_packet({1});
  sw.receive(std::move(probe1), 0);
  Packet probe2 = routed_packet({0});
  sw.receive(std::move(probe2), 0);
  simulator.run();
  EXPECT_GT(fabric_side.packets.back().conga_ce, 0);
  EXPECT_EQ(host_side.packets.back().conga_ce, 0);
}

TEST(SwitchTest, CongaStampingKeepsMaxAlongPath) {
  sim::Simulator simulator{1};
  PacketArena arena;
  Switch sw{simulator, arena, 0, "sw"};
  Sink out{arena};
  const int p = sw.add_port(fast_port(), &out, 0);
  sw.port(p).is_fabric = true;
  Packet pre = routed_packet({0});
  pre.conga_ce = 6;  // a more congested hop upstream
  sw.receive(std::move(pre), 0);
  simulator.run();
  EXPECT_EQ(out.packets.back().conga_ce, 6);  // not overwritten by idle link
}

TEST(SwitchTest, StampingDisabledLeavesMetricUntouched) {
  sim::Simulator simulator{1};
  PacketArena arena;
  Switch sw{simulator, arena, 0, "sw"};
  Sink out{arena};
  const int p = sw.add_port(fast_port(), &out, 0);
  sw.port(p).is_fabric = true;
  sw.conga_stamping = false;
  for (int i = 0; i < 2000; ++i) sw.receive(routed_packet({0}), 0);
  simulator.run();
  for (const auto& pk : out.packets) EXPECT_EQ(pk.conga_ce, 0);
}

}  // namespace
}  // namespace hermes::net
