// Conformance suite for hermes::engine::Engine as a *load balancer*, in
// the style of Envoy/gRPC LB conformance tests: declared membership
// (HostSet weights + health + panic), churn under load, and the failure
// latch lifecycle — all driven through the public engine API with no
// simulator attached. These tests are also run under TSan in tier 1
// (two engines on concurrent threads must not share hidden state).

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hermes/engine/engine.hpp"

namespace hermes::engine {
namespace {

Config test_config() {
  Config c;
  c.t_ecn = 0.40;
  c.t_rtt_low = usec(60);
  c.t_rtt_high = usec(180);
  c.delta_rtt = usec(80);
  c.delta_ecn = 0.05;
  c.failure_expiry = msec(100);
  return c;
}

/// A flow view for one (src,dst) pair on group pair (0,1).
FlowView flow(std::uint64_t id, std::int32_t src = 1, std::int32_t dst = 2) {
  FlowView v;
  v.flow_id = id;
  v.src = src;
  v.dst = dst;
  v.src_group = 0;
  v.dst_group = 1;
  return v;
}

/// N anonymous unit-weight healthy hosts with ids base..base+n-1.
HostSet hosts(int n, std::int64_t base = 100) {
  HostSet h;
  for (int i = 0; i < n; ++i) h.add(base + i);
  return h;
}

/// Saturate one slot's sensing to a steady (rtt, ecn) point.
void drive(Engine& e, int li, TimeNs rtt, bool ecn, int n = 300) {
  for (int i = 0; i < n; ++i) e.on_ack(0, 1, li, 1, 2, true, rtt, ecn);
}

/// Collects the decision stream for assertions.
struct LogSink final : DecisionSink {
  std::vector<DecisionEvent> events;
  void on_decision(const DecisionEvent& ev) override { events.push_back(ev); }
  [[nodiscard]] int count(DecisionKind k) const {
    int n = 0;
    for (const auto& ev : events)
      if (ev.kind == k) ++n;
    return n;
  }
};

TEST(EngineConformance, NoPathsReturnsNoDecision) {
  Engine e{test_config(), 2, 1};
  FlowView f = flow(1);
  EXPECT_EQ(e.decide(f, 1500, usec(1)), -1);
  EXPECT_EQ(e.stats().initial_placements, 0u);  // nothing to place onto
}

TEST(EngineConformance, SingleHostAlwaysSelected) {
  Engine e{test_config(), 2, 1};
  e.sync_pair(0, 1, hosts(1));
  for (int i = 0; i < 20; ++i) {
    FlowView f = flow(static_cast<std::uint64_t>(i));
    EXPECT_EQ(e.decide(f, 1500, usec(i)), 0);
  }
  EXPECT_EQ(e.stats().initial_placements, 20u);
}

TEST(EngineConformance, UnhealthyHostExcludedFromSelection) {
  Engine e{test_config(), 2, 1};
  HostSet h = hosts(4);
  h.set_health(103, Health::kUnhealthy);
  e.sync_pair(0, 1, h);
  // Make the unhealthy path the most attractive (only "good" path): it
  // must still never be selected while healthy alternatives exist.
  drive(e, 3, usec(40), false);
  for (int i = 0; i < 100; ++i) {
    FlowView f = flow(static_cast<std::uint64_t>(i));
    const int chosen = e.decide(f, 1500, usec(i));
    ASSERT_GE(chosen, 0);
    EXPECT_NE(chosen, 3) << "declared-unhealthy path selected outside panic mode";
  }
}

TEST(EngineConformance, AllUnhealthyPanicsAndSpreads) {
  Engine e{test_config(), 2, 1};
  HostSet h = hosts(4);
  for (int i = 0; i < 4; ++i) h.set_health(100 + i, Health::kUnhealthy);
  e.sync_pair(0, 1, h);
  ASSERT_TRUE(e.path_set(0, 1).in_panic(e.config().panic_threshold));
  std::set<int> seen;
  for (int i = 0; i < 100; ++i) {
    FlowView f = flow(static_cast<std::uint64_t>(i));
    const int chosen = e.decide(f, 1500, usec(i));
    ASSERT_GE(chosen, 0) << "panic mode must still place traffic";
    seen.insert(chosen);
  }
  // Panic spreads over everyone rather than concentrating.
  EXPECT_GT(seen.size(), 1u);
}

TEST(EngineConformance, PanicThresholdBoundary) {
  Engine e{test_config(), 2, 1};
  // 2 of 4 healthy: exactly at the 0.5 threshold — no panic.
  HostSet h = hosts(4);
  h.set_health(102, Health::kUnhealthy);
  h.set_health(103, Health::kUnhealthy);
  e.sync_pair(0, 1, h);
  EXPECT_FALSE(e.path_set(0, 1).in_panic(e.config().panic_threshold));
  // 1 of 4 healthy: below — panic.
  h.set_health(101, Health::kUnhealthy);
  e.sync_pair(0, 1, h);
  EXPECT_TRUE(e.path_set(0, 1).in_panic(e.config().panic_threshold));
  // Healing one host leaves panic again.
  h.set_health(102, Health::kHealthy);
  e.sync_pair(0, 1, h);
  EXPECT_FALSE(e.path_set(0, 1).in_panic(e.config().panic_threshold));
}

TEST(EngineConformance, DegradedHostSkippedWhileHealthyExist) {
  Engine e{test_config(), 2, 1};
  HostSet h = hosts(4);
  h.set_health(100, Health::kDegraded);
  e.sync_pair(0, 1, h);
  drive(e, 0, usec(30), false);  // degraded path senses best
  for (int i = 0; i < 100; ++i) {
    FlowView f = flow(static_cast<std::uint64_t>(i));
    EXPECT_NE(e.decide(f, 1500, usec(i)), 0)
        << "degraded path preferred over healthy ones in the ranked scan";
  }
}

TEST(EngineConformance, DrainedWeightZeroNeverSelected) {
  Engine e{test_config(), 2, 1};
  HostSet h = hosts(3);
  h.set_weight(101, 0);  // draining
  e.sync_pair(0, 1, h);
  for (int i = 0; i < 100; ++i) {
    FlowView f = flow(static_cast<std::uint64_t>(i));
    const int chosen = e.decide(f, 1500, usec(i));
    ASSERT_GE(chosen, 0);
    EXPECT_NE(chosen, 1) << "weight-0 (drained) path selected";
  }
}

TEST(EngineConformance, WeightChangeMidStreamShiftsDistribution) {
  Engine e{test_config(), 2, 1};
  HostSet h;
  h.add(100, 9);
  h.add(101, 1);
  e.sync_pair(0, 1, h);
  // Space decisions 10ms apart so each path's rate DRE decays back to
  // ~idle in between: every placement is then a pure weighted tie-break
  // rather than least-rate balancing.
  TimeNs t = 0;
  auto tally = [&](std::uint64_t id_base) {
    int first = 0;
    for (int i = 0; i < 200; ++i) {
      t += msec(10);
      FlowView f = flow(id_base + static_cast<std::uint64_t>(i));
      if (e.decide(f, 1500, t) == 0) ++first;
    }
    return first;
  };
  const int before = tally(0);
  EXPECT_GT(before, 140) << "9:1 weights not respected by placement";
  // Flip the weights mid-stream: no resync-time state loss, just a new
  // distribution from here on.
  h.set_weight(100, 1);
  h.set_weight(101, 9);
  e.sync_pair(0, 1, h);
  const int after = tally(1000);
  EXPECT_LT(after, 60) << "weight update did not take effect";
  // Sensing state survived the weight-only update.
  EXPECT_EQ(e.path_set(0, 1).slot(0).host_id, 100);
}

TEST(EngineConformance, HostAddUnderLoadPreservesSensing) {
  Engine e{test_config(), 2, 1};
  HostSet h = hosts(2);
  e.sync_pair(0, 1, h);
  drive(e, 0, usec(40), false);
  const TimeNs rtt_before = e.path_state(0, 1, 0).rtt();
  // Scale out while flows are in flight.
  h.add(300);
  e.sync_pair(0, 1, h);
  ASSERT_EQ(e.path_set(0, 1).size(), 3u);
  EXPECT_EQ(e.path_state(0, 1, 0).rtt(), rtt_before) << "surviving slot lost its estimates";
  EXPECT_FALSE(e.path_state(0, 1, 2).has_sample()) << "new slot must start cold";
  // Established flows keep their path; the new path is reachable for
  // fresh placements.
  FlowView est = flow(1);
  est.has_sent = true;
  est.cur_local = 0;
  EXPECT_EQ(e.decide(est, 1500, msec(1)), 0);
  // While the new path is unsampled it is gray: the sensed-good path 0
  // keeps winning. Once probing samples it as good, placements use it.
  FlowView cold = flow(9);
  EXPECT_EQ(e.decide(cold, 1500, msec(1)), 0);
  e.feed_probe_sample(0, 1, 2, usec(30), false);
  std::set<int> seen;
  for (int i = 0; i < 60; ++i) {
    FlowView f = flow(static_cast<std::uint64_t>(10 + i));
    seen.insert(e.decide(f, 1500, msec(1) + usec(i)));
  }
  EXPECT_TRUE(seen.count(2) == 1) << "sampled-good new member never placed onto";
}

TEST(EngineConformance, HostRemoveUnderLoadRebindsAndResets) {
  Engine e{test_config(), 2, 1};
  HostSet h = hosts(3);  // ids 100, 101, 102
  e.sync_pair(0, 1, h);
  drive(e, 0, usec(40), false);
  drive(e, 1, usec(50), false);
  drive(e, 2, usec(45), false);
  h.remove(101);  // positions shift: slot 1 now backs host 102
  e.sync_pair(0, 1, h);
  ASSERT_EQ(e.path_set(0, 1).size(), 2u);
  EXPECT_TRUE(e.path_state(0, 1, 0).has_sample()) << "unmoved slot must keep state";
  EXPECT_FALSE(e.path_state(0, 1, 1).has_sample())
      << "slot re-bound to a different host must restart sensing";
  // A flow still pointing at the removed position is routed to a live
  // path without being misread as a timeout/failure escape.
  FlowView f = flow(7);
  f.has_sent = true;
  f.cur_local = 2;
  const int chosen = e.decide(f, 1500, msec(2));
  EXPECT_GE(chosen, 0);
  EXPECT_LT(chosen, 2);
  EXPECT_EQ(e.stats().timeout_escapes + e.stats().failure_escapes, 0u);
}

TEST(EngineConformance, TimeoutEscapeClearsPendingFlag) {
  Engine e{test_config(), 2, 1};
  e.sync_pair(0, 1, hosts(4));
  FlowView f = flow(1);
  f.has_sent = true;
  f.cur_local = 0;
  f.timeout_pending = true;
  const int chosen = e.decide(f, 1500, msec(1));
  EXPECT_GE(chosen, 0);
  EXPECT_FALSE(f.timeout_pending) << "engine must consume the timeout flag";
  EXPECT_EQ(e.stats().timeout_escapes, 1u);
}

TEST(EngineConformance, BlackholeLatchSurvivesHealthFlappingThenExpires) {
  Engine e{test_config(), 2, 1};
  LogSink sink;
  e.set_sink(&sink);
  HostSet h = hosts(4);
  e.sync_pair(0, 1, h);

  // Three consecutive timeouts for one (src,dst) pair on path 0 latch it.
  FlowView f = flow(1);
  f.has_sent = true;
  f.cur_local = 0;
  for (int i = 0; i < 3; ++i) e.on_timeout(f, msec(1 + i));
  EXPECT_EQ(e.stats().blackhole_latches, 1u);
  EXPECT_EQ(sink.count(DecisionKind::kBlackholeLatch), 1);
  EXPECT_TRUE(e.blackholed(0, 1, 1, 2, 0, msec(4)));

  // Health flapping (unhealthy -> healthy, same host ids) must not
  // disturb the latch: declared health and sensed failure are separate.
  h.set_health(100, Health::kUnhealthy);
  e.sync_pair(0, 1, h);
  h.set_health(100, Health::kHealthy);
  e.sync_pair(0, 1, h);
  EXPECT_TRUE(e.blackholed(0, 1, 1, 2, 0, msec(4))) << "membership churn cleared the latch";

  // The latched path is avoided while the latch is live...
  EXPECT_NE(e.decide(f, 1500, msec(5)), 0);
  EXPECT_EQ(e.stats().failure_escapes, 1u);

  // ...and without fresh timeouts the latch expires (streak 1: one
  // failure_expiry) — observed on the next decision that touches it.
  const TimeNs late = msec(3) + e.config().failure_expiry + msec(1);
  EXPECT_FALSE(e.blackholed(0, 1, 1, 2, 0, late));
  FlowView f2 = flow(1);
  f2.has_sent = true;
  f2.cur_local = 0;
  EXPECT_EQ(e.decide(f2, 1500, late), 0) << "expired latch must stop repelling the flow";
  EXPECT_EQ(e.stats().latch_expiries, 1u);
  EXPECT_EQ(sink.count(DecisionKind::kLatchExpire), 1);
}

TEST(EngineConformance, RelatchDoublesExpiryPerStreak) {
  Engine e{test_config(), 2, 1};
  e.sync_pair(0, 1, hosts(4));
  const TimeNs expiry = e.config().failure_expiry;
  FlowView f = flow(1);
  f.has_sent = true;
  f.cur_local = 0;

  for (int i = 0; i < 3; ++i) e.on_timeout(f, msec(i));  // streak 1
  // Expire it via a decision past the window.
  (void)e.decide(f, 1500, msec(2) + expiry + msec(1));
  EXPECT_EQ(e.stats().latch_expiries, 1u);

  // Re-latch: the streak doubles the expiry window.
  const TimeNs t2 = msec(2) + expiry + msec(2);
  for (int i = 0; i < 3; ++i) e.on_timeout(f, t2 + msec(i));
  EXPECT_EQ(e.stats().blackhole_latches, 2u);
  const TimeNs latched_at = t2 + msec(2);
  EXPECT_TRUE(e.blackholed(0, 1, 1, 2, 0, latched_at + expiry + msec(50)))
      << "re-latched hole should hold past one expiry (doubled window)";
  EXPECT_FALSE(e.blackholed(0, 1, 1, 2, 0, latched_at + 2 * expiry + msec(1)));
}

TEST(EngineConformance, IndependentEnginesRunConcurrently) {
  // Two engines on two threads share nothing: under TSan (tier 1 runs
  // this suite sanitized) any hidden global in the decision path fails.
  auto work = [](std::uint64_t seed, std::string* out) {
    Engine e{test_config(), 2, seed};
    e.sync_pair(0, 1, hosts(8));
    for (int i = 0; i < 500; ++i) {
      FlowView f = flow(static_cast<std::uint64_t>(i));
      out->push_back(static_cast<char>('a' + e.decide(f, 1500, usec(i))));
      e.on_ack(0, 1, i % 8, 1, 2, true, usec(40 + i % 7), (i % 5) == 0);
    }
  };
  std::string a1, a2, b;
  std::thread t1{work, 42, &a1};
  std::thread t2{work, 43, &b};
  t1.join();
  t2.join();
  work(42, &a2);
  EXPECT_EQ(a1, a2) << "same seed, same decision string, regardless of thread";
  EXPECT_NE(a1, b) << "tie-break stream must depend on the seed";
}

}  // namespace
}  // namespace hermes::engine
