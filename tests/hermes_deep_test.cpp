// Deep behavioural tests for Hermes internals: failure-latch expiry with
// backoff, the prober's best-path memory, the reroute cooldown, and
// end-to-end sensing timelines.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "hermes/lb/hermes.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/workload/flow_gen.hpp"

namespace hermes::lb {
namespace {

using sim::msec;
using sim::usec;

net::TopologyConfig topo4() {
  net::TopologyConfig c;
  c.num_leaves = 2;
  c.num_spines = 4;
  c.hosts_per_leaf = 2;
  return c;
}

TEST(FailureExpiry, LatchClearsAfterExpiry) {
  engine::Config cfg;
  cfg.failure_expiry = engine::msec(100);
  engine::PathState st;
  st.fail(engine::usec(0));
  EXPECT_TRUE(st.failed_active(engine::msec(50), cfg));
  EXPECT_FALSE(st.failed_active(engine::msec(101), cfg));
}

TEST(FailureExpiry, BackoffDoublesPerRelatch) {
  engine::Config cfg;
  cfg.failure_expiry = engine::msec(100);
  engine::PathState st;
  st.fail(engine::usec(0));                                 // streak 1: expiry 100ms
  EXPECT_FALSE(st.failed_active(engine::msec(101), cfg));   // expired
  st.fail(engine::msec(101));                               // streak 2: expiry 200ms
  EXPECT_TRUE(st.failed_active(engine::msec(250), cfg));    // 149ms < 200ms: held
  EXPECT_FALSE(st.failed_active(engine::msec(302), cfg));   // expired again
  st.fail(engine::msec(302));                               // streak 3: expiry 400ms
  EXPECT_TRUE(st.failed_active(engine::msec(700), cfg));
}

TEST(FailureExpiry, ZeroMeansPermanent) {
  engine::Config cfg;
  cfg.failure_expiry = 0;
  engine::PathState st;
  st.fail(engine::usec(0));
  EXPECT_TRUE(st.failed_active(engine::sec(100), cfg));
}

TEST(FailureExpiry, ClearResetsStreak) {
  engine::Config cfg;
  cfg.failure_expiry = engine::msec(100);
  engine::PathState st;
  st.fail(engine::usec(0));
  st.fail(engine::usec(1));
  st.clear_failure();
  st.fail(engine::msec(10));  // streak restarts at 1: expiry 100ms again
  EXPECT_FALSE(st.failed_active(engine::msec(111), cfg));
}

TEST(RerouteCooldown, SecondRerouteWaitsForGap) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  auto cfg = HermesConfig::defaults_for(topo);
  cfg.probing_enabled = false;
  cfg.reroute_min_gap = msec(2);
  HermesLb h{simulator, topo, cfg};
  const auto ecfg = cfg.engine_config(topo.host_rate_bps());

  auto congest = [&](int idx) {
    auto& st = h.path_state(0, 1, idx);
    for (int i = 0; i < 300; ++i) st.add_sample((cfg.t_rtt_high + usec(200)).ns(), true, ecfg);
  };
  auto good = [&](int idx) {
    auto& st = h.path_state(0, 1, idx);
    for (int i = 0; i < 300; ++i) st.add_sample(usec(25).ns(), false, ecfg);
  };
  congest(0);
  congest(1);
  good(2);
  good(3);

  FlowCtx f;
  f.flow_id = 1;
  f.src = 0;
  f.dst = 2;
  f.src_leaf = 0;
  f.dst_leaf = 1;
  f.current_path = topo.paths_between_leaves(0, 1)[0].id;
  f.has_sent = true;
  f.bytes_sent = cfg.sent_threshold_bytes + 1;

  net::Packet pkt;
  pkt.size = 1500;
  const int first = h.select_path(f, pkt);
  EXPECT_NE(topo.path(first).local_index, 0);  // rerouted off path 0
  f.current_path = first;

  // Make the flow's new path look congested too; it may not move again
  // until the cooldown elapses.
  congest(topo.path(first).local_index);
  EXPECT_EQ(h.select_path(f, pkt), first);  // cooldown active
  simulator.run_until(msec(3));
  EXPECT_NE(h.select_path(f, pkt), first);  // cooldown over: moves again
}

TEST(RerouteCooldown, FailureEscapeIgnoresCooldown) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  auto cfg = HermesConfig::defaults_for(topo);
  cfg.probing_enabled = false;
  cfg.reroute_min_gap = sim::sec(1);  // huge cooldown
  HermesLb h{simulator, topo, cfg};

  FlowCtx f;
  f.flow_id = 1;
  f.src = 0;
  f.dst = 2;
  f.src_leaf = 0;
  f.dst_leaf = 1;
  f.current_path = topo.paths_between_leaves(0, 1)[0].id;
  f.has_sent = true;
  f.last_reroute = simulator.now();
  f.has_rerouted = true;

  // Current path latches failed: the flow must leave immediately.
  h.path_state(0, 1, 0).fail(simulator.now().ns());
  net::Packet pkt;
  pkt.size = 1500;
  EXPECT_NE(topo.path(h.select_path(f, pkt)).local_index, 0);
}

TEST(ProberMemory, BestPathTracksLowestRtt) {
  harness::ScenarioConfig cfg;
  cfg.topo = topo4();
  cfg.scheme = harness::Scheme::kHermes;
  harness::Scenario s{cfg};
  // Let probing populate everything on an idle fabric.
  s.run_for(msec(10));
  auto* h = s.hermes();
  // All paths sampled; the recorded best is one of them and carries the
  // minimum RTT estimate.
  auto best_rtt = std::numeric_limits<engine::TimeNs>::max();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(h->path_state(0, 1, i).has_sample());
    best_rtt = std::min(best_rtt, h->path_state(0, 1, i).rtt());
  }
  int sampled = h->sampled_paths(0, 1);
  EXPECT_EQ(sampled, 4);
  EXPECT_LT(best_rtt, usec(60).ns());
}

TEST(ProberMemory, ReplyCountMatchesLossFreeFabric) {
  harness::ScenarioConfig cfg;
  cfg.topo = topo4();
  cfg.scheme = harness::Scheme::kHermes;
  harness::Scenario s{cfg};
  s.run_for(msec(20));
  const auto& ps = s.hermes()->probe_stats();
  // All probes answered (minus the last interval still in flight).
  EXPECT_GE(ps.replies_received + 12, ps.probes_sent);
  EXPECT_EQ(ps.probe_bytes, ps.probes_sent * net::kProbeBytes);
}

TEST(EndToEnd, DegradedLinkCarriesLessThanFairShare) {
  // Sensing must steer traffic off the 2G path: its byte share ends well
  // below the fair 1/4. (Its *sensed* RTT at equilibrium is low — that is
  // the point: Hermes keeps it just busy enough to stay balanced.)
  harness::ScenarioConfig cfg;
  cfg.topo = topo4();
  cfg.topo.fabric_overrides[{0, 1, 0}] = 2e9;  // spine-1 uplink at 2G
  cfg.topo.fabric_overrides[{1, 1, 0}] = 2e9;
  cfg.scheme = harness::Scheme::kHermes;
  harness::Scenario s{cfg};
  workload::TrafficConfig tc{.load = 0.55, .num_flows = 300, .seed = 5};
  s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                 workload::SizeDist::web_search(), tc));
  auto fct = s.run();
  EXPECT_EQ(fct.unfinished_flows(), 0u);
  double total = 0, degraded = 0;
  for (int l = 0; l < 2; ++l) {
    for (int sp = 0; sp < 4; ++sp) {
      const double b = static_cast<double>(s.topology().leaf_uplink(l, sp).stats().tx_bytes);
      total += b;
      if (sp == 1) degraded += b;
    }
  }
  EXPECT_LT(degraded / total, 0.18);  // clearly below the fair 25%
}

TEST(EndToEnd, RerouteCountStaysModest) {
  // "Timely yet cautious": even at high load the average flow must not
  // bounce between paths many times.
  harness::ScenarioConfig cfg;
  cfg.topo = topo4();
  cfg.scheme = harness::Scheme::kHermes;
  harness::Scenario s{cfg};
  workload::TrafficConfig tc{.load = 0.8, .num_flows = 300, .seed = 3};
  s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                 workload::SizeDist::web_search(), tc));
  auto fct = s.run();
  EXPECT_LT(static_cast<double>(fct.total_reroutes()) / fct.total_flows(), 3.0);
}

}  // namespace
}  // namespace hermes::lb
