// Unit tests for Port: drop-tail queueing, ECN step marking, strict
// priority, serialization/propagation timing, stats, and the DRE.

#include <cstdint>
#include <gtest/gtest.h>

#include <vector>

#include "hermes/net/dre.hpp"
#include "hermes/net/port.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {
namespace {

using sim::msec;
using sim::usec;

/// Test peer that records delivered packets and arrival times. Devices
/// receive arena handles and own the slot: the sink moves the packet out
/// and frees it, like a host delivery would.
class SinkDevice : public Device {
 public:
  explicit SinkDevice(PacketArena& arena) : arena_{arena} {}
  void receive(PacketHandle h, int in_port) override {
    packets.push_back(std::move(arena_[h]));
    arena_.free(h);
    in_ports.push_back(in_port);
    times.push_back(now ? *now : sim::SimTime{});
  }
  std::vector<Packet> packets;
  std::vector<int> in_ports;
  std::vector<sim::SimTime> times;
  const sim::SimTime* now = nullptr;

 private:
  PacketArena& arena_;
};

Packet make_packet(std::uint32_t size, bool ect = false, std::int8_t prio = 0) {
  static std::uint64_t next_id = 1;
  Packet p;
  p.id = next_id++;
  p.size = size;
  p.payload = size > kHeaderBytes ? size - kHeaderBytes : 0;
  p.ect = ect;
  p.priority = prio;
  return p;
}

class PortTest : public ::testing::Test {
 protected:
  PortConfig config(double rate_bps = 1e9) {
    PortConfig c;
    c.rate_bps = rate_bps;
    c.prop_delay = usec(2);
    c.queue_capacity_bytes = 10'000;
    c.ecn_threshold_bytes = 4'000;
    return c;
  }

  sim::Simulator simulator{1};
  PacketArena arena;
  SinkDevice sink{arena};
};

TEST_F(PortTest, DeliversPacketToPeerPort) {
  Port port{simulator, arena, "p", config(), &sink, 7};
  port.send(make_packet(1500));
  simulator.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.in_ports[0], 7);
}

TEST_F(PortTest, SerializationPlusPropagationTiming) {
  Port port{simulator, arena, "p", config(1e9), &sink, 0};
  sink.now = nullptr;
  bool delivered = false;
  sim::SimTime arrival{};
  // 1500B at 1Gbps = 12us serialization + 2us propagation = 14us.
  port.send(make_packet(1500));
  simulator.after(usec(13), [&] { EXPECT_TRUE(sink.packets.empty()); });
  simulator.run();
  (void)delivered;
  (void)arrival;
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(simulator.now(), usec(14));
}

TEST_F(PortTest, BackToBackPacketsPipeline) {
  Port port{simulator, arena, "p", config(1e9), &sink, 0};
  for (int i = 0; i < 3; ++i) port.send(make_packet(1500));
  simulator.run();
  // Three serializations (36us) + one propagation (2us) for the last.
  EXPECT_EQ(simulator.now(), usec(38));
  EXPECT_EQ(sink.packets.size(), 3u);
}

TEST_F(PortTest, DropsWhenBufferFull) {
  Port port{simulator, arena, "p", config(), &sink, 0};
  // Capacity 10KB: first 6 x 1500 = 9000 fit, 7th overflows while the
  // link is still serializing (first tx already removed from backlog).
  int drops_seen = 0;
  port.on_drop = [&](const Packet&) { ++drops_seen; };
  for (int i = 0; i < 8; ++i) port.send(make_packet(1500));
  simulator.run();
  EXPECT_GT(port.stats().drops, 0u);
  EXPECT_EQ(port.stats().drops, static_cast<std::uint64_t>(drops_seen));
  EXPECT_EQ(sink.packets.size(), 8u - port.stats().drops);
}

TEST_F(PortTest, EcnMarksAboveThreshold) {
  Port port{simulator, arena, "p", config(), &sink, 0};
  // Threshold 4000B. First packets enqueue below it; once the backlog
  // crosses it, ECT packets get CE.
  for (int i = 0; i < 6; ++i) port.send(make_packet(1500, /*ect=*/true));
  simulator.run();
  int marked = 0;
  for (const auto& p : sink.packets) marked += p.ce ? 1 : 0;
  EXPECT_GT(marked, 0);
  EXPECT_LT(marked, 6);
  EXPECT_EQ(port.stats().ecn_marks, static_cast<std::uint64_t>(marked));
}

TEST_F(PortTest, NoEcnMarkWithoutEct) {
  Port port{simulator, arena, "p", config(), &sink, 0};
  for (int i = 0; i < 6; ++i) port.send(make_packet(1500, /*ect=*/false));
  simulator.run();
  for (const auto& p : sink.packets) EXPECT_FALSE(p.ce);
  EXPECT_EQ(port.stats().ecn_marks, 0u);
}

TEST_F(PortTest, EcnDisabledNeverMarks) {
  auto c = config();
  c.ecn_enabled = false;
  Port port{simulator, arena, "p", c, &sink, 0};
  for (int i = 0; i < 6; ++i) port.send(make_packet(1500, true));
  simulator.run();
  for (const auto& p : sink.packets) EXPECT_FALSE(p.ce);
}

TEST_F(PortTest, HighPriorityOvertakesLowPriority) {
  Port port{simulator, arena, "p", config(1e9), &sink, 0};
  port.send(make_packet(1500, false, 0));  // starts transmitting
  port.send(make_packet(1500, false, 0));  // queued low
  port.send(make_packet(64, false, 1));    // queued high, must overtake
  simulator.run();
  ASSERT_EQ(sink.packets.size(), 3u);
  EXPECT_EQ(sink.packets[1].size, 64u);  // the high-priority one is second
}

TEST_F(PortTest, StatsCountBytesAndPackets) {
  Port port{simulator, arena, "p", config(), &sink, 0};
  port.send(make_packet(1000));
  port.send(make_packet(500));
  simulator.run();
  EXPECT_EQ(port.stats().tx_packets, 2u);
  EXPECT_EQ(port.stats().tx_bytes, 1500u);
}

TEST_F(PortTest, BacklogTracksQueueOnly) {
  Port port{simulator, arena, "p", config(1e9), &sink, 0};
  port.send(make_packet(1500));  // in transmission, not in backlog
  port.send(make_packet(1500));
  port.send(make_packet(1500));
  EXPECT_EQ(port.backlog_bytes(), 3000u);
  simulator.run();
  EXPECT_EQ(port.backlog_bytes(), 0u);
}

TEST_F(PortTest, TxTimeMatchesRate) {
  Port port{simulator, arena, "p", config(10e9), &sink, 0};
  EXPECT_EQ(port.tx_time(1500), sim::SimTime::from_seconds(1500 * 8.0 / 10e9));
}

TEST(DreTest, RateTracksSteadyInput) {
  Dre dre{usec(50), 0.1};
  sim::SimTime t{};
  // 1500B every 1.2us == 10Gbps.
  for (int i = 0; i < 2000; ++i) {
    dre.add(1500, t);
    t += sim::nsec(1200);
  }
  EXPECT_NEAR(dre.rate_bps(t), 10e9, 1.5e9);
}

TEST(DreTest, DecaysToZeroWhenIdle) {
  Dre dre{usec(50), 0.1};
  dre.add(150'000, sim::SimTime::zero());
  EXPECT_GT(dre.rate_bps(usec(1)), 0.0);
  EXPECT_LT(dre.rate_bps(msec(50)), 1e3);
}

TEST(DreTest, QuantizedSaturatesAtSeven) {
  Dre dre{usec(50), 0.1};
  sim::SimTime t{};
  for (int i = 0; i < 5000; ++i) {
    dre.add(1500, t);
    t += sim::nsec(1200);
  }
  EXPECT_EQ(dre.quantized(10e9, t), 7);  // fully utilized
  EXPECT_EQ(dre.quantized(1e12, t), 0);  // negligible on a huge link
}

TEST(DreTest, UtilizationProportionalToRate) {
  Dre slow{usec(50), 0.1}, fast{usec(50), 0.1};
  sim::SimTime t{};
  for (int i = 0; i < 4000; ++i) {
    fast.add(1500, t);
    if (i % 2 == 0) slow.add(1500, t);
    t += sim::nsec(1200);
  }
  EXPECT_NEAR(slow.utilization(10e9, t) / fast.utilization(10e9, t), 0.5, 0.1);
}

}  // namespace
}  // namespace hermes::net
