// Unit tests for the Hermes load balancer adapter (lb::HermesLb over
// engine::Engine): Algorithm 2's rerouting decisions and cautious gates,
// blackhole detection per host pair, and power-of-two-choices probing —
// all driven through the simulator-facing lb::LoadBalancer surface.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include <set>

#include "hermes/lb/hermes.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::lb {
namespace {

using sim::msec;
using sim::usec;

net::TopologyConfig topo4() {
  net::TopologyConfig c;
  c.num_leaves = 2;
  c.num_spines = 4;
  c.hosts_per_leaf = 2;
  return c;
}

HermesConfig cfg_for(const net::Topology& topo) {
  auto c = HermesConfig::defaults_for(topo);
  c.probing_enabled = false;  // unit tests drive samples manually
  return c;
}

FlowCtx make_flow(const net::Topology& topo, std::uint64_t id, int src, int dst) {
  FlowCtx f;
  f.flow_id = id;
  f.src = src;
  f.dst = dst;
  f.src_leaf = topo.leaf_of(src);
  f.dst_leaf = topo.leaf_of(dst);
  return f;
}

net::Packet data_packet() {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.payload = 1460;
  p.size = 1500;
  return p;
}

/// Make a path's state read as (rtt, ecn).
void set_state(HermesLb& h, const engine::Config& ecfg, int a, int b, int idx, sim::SimTime rtt,
               double ecn) {
  auto& st = h.path_state(a, b, idx);
  int marked = 0;
  for (int i = 0; i < 300; ++i) {
    const bool m = marked < ecn * (i + 1);
    if (m) ++marked;
    st.add_sample(rtt.ns(), m, ecfg);
  }
}

class HermesLbTest : public ::testing::Test {
 protected:
  HermesLbTest()
      : simulator{1},
        topo{simulator, topo4()},
        cfg{cfg_for(topo)},
        ecfg{cfg.engine_config(topo.host_rate_bps())},
        h{simulator, topo, cfg} {}

  sim::Simulator simulator;
  net::Topology topo;
  HermesConfig cfg;
  engine::Config ecfg;
  HermesLb h;
};

TEST_F(HermesLbTest, NewFlowPrefersGoodPathWithLeastRate) {
  // Paths 0,1 good; 2 gray; 3 congested. Path 1 good but busy.
  set_state(h, ecfg, 0, 1, 0, usec(30), 0.0);
  set_state(h, ecfg, 0, 1, 1, usec(30), 0.0);
  set_state(h, ecfg, 0, 1, 3, topo.base_rtt() + usec(400), 0.9);
  for (int i = 0; i < 100; ++i)
    h.path_state(0, 1, 1).add_send(15000, simulator.now().ns(), ecfg);

  auto f = make_flow(topo, 1, 0, 2);
  const int chosen = h.select_path(f, data_packet());
  EXPECT_EQ(topo.path(chosen).local_index, 0);  // good and least-loaded
}

TEST_F(HermesLbTest, NewFlowFallsBackToGrayThenRandom) {
  // No good paths: 0 congested, 1,2,3 unknown (gray).
  set_state(h, ecfg, 0, 1, 0, topo.base_rtt() + usec(400), 0.9);
  auto f = make_flow(topo, 1, 0, 2);
  const int chosen = h.select_path(f, data_packet());
  EXPECT_NE(topo.path(chosen).local_index, 0);  // any gray path, not congested
}

TEST_F(HermesLbTest, StaysOnPathWhenNotCongested) {
  set_state(h, ecfg, 0, 1, 0, usec(30), 0.0);
  auto f = make_flow(topo, 1, 0, 2);
  const int first = h.select_path(f, data_packet());
  f.current_path = first;
  f.has_sent = true;
  f.bytes_sent = 10'000'000;  // gates satisfied...
  // ...but the current path is good: no reroute regardless.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(h.select_path(f, data_packet()), first);
}

TEST_F(HermesLbTest, ReroutesOffCongestedPathWhenGatesPass) {
  const auto& paths = topo.paths_between_leaves(0, 1);
  set_state(h, ecfg, 0, 1, 0, cfg.t_rtt_high + usec(100), 0.9);  // congested
  set_state(h, ecfg, 0, 1, 2, usec(30), 0.0);                    // notably better good
  auto f = make_flow(topo, 1, 0, 2);
  f.current_path = paths[0].id;
  f.has_sent = true;
  f.bytes_sent = cfg.sent_threshold_bytes + 1;  // S gate passes
  // r_f ~ 0 (no rate recorded): R gate passes.
  const int chosen = h.select_path(f, data_packet());
  EXPECT_EQ(topo.path(chosen).local_index, 2);
}

TEST_F(HermesLbTest, SentSizeGateBlocksSmallFlows) {
  const auto& paths = topo.paths_between_leaves(0, 1);
  set_state(h, ecfg, 0, 1, 0, cfg.t_rtt_high + usec(100), 0.9);
  set_state(h, ecfg, 0, 1, 2, usec(30), 0.0);
  auto f = make_flow(topo, 1, 0, 2);
  f.current_path = paths[0].id;
  f.has_sent = true;
  f.bytes_sent = cfg.sent_threshold_bytes - 1;  // S gate fails
  EXPECT_EQ(h.select_path(f, data_packet()), paths[0].id);
}

TEST_F(HermesLbTest, HighRateGateBlocksFastFlows) {
  const auto& paths = topo.paths_between_leaves(0, 1);
  set_state(h, ecfg, 0, 1, 0, cfg.t_rtt_high + usec(100), 0.9);
  set_state(h, ecfg, 0, 1, 2, usec(30), 0.0);
  auto f = make_flow(topo, 1, 0, 2);
  f.current_path = paths[0].id;
  f.has_sent = true;
  f.bytes_sent = cfg.sent_threshold_bytes + 1;
  // Drive r_f above R = 30% of 10G.
  for (int i = 0; i < 2000; ++i) f.rate_dre.add(1500, simulator.now());
  EXPECT_GT(f.rate_bps(simulator.now()), cfg.rate_threshold_frac * 10e9);
  EXPECT_EQ(h.select_path(f, data_packet()), paths[0].id);
}

TEST_F(HermesLbTest, NotablyBetterRequiresBothMargins) {
  const auto& paths = topo.paths_between_leaves(0, 1);
  // Current path congested. Candidate has much lower RTT but its ECN
  // fraction is only slightly lower: not notably better per Algorithm 2.
  set_state(h, ecfg, 0, 1, 0, cfg.t_rtt_high + usec(100), 0.45);
  set_state(h, ecfg, 0, 1, 1, usec(30), 0.42);
  auto f = make_flow(topo, 1, 0, 2);
  f.current_path = paths[0].id;
  f.has_sent = true;
  f.bytes_sent = cfg.sent_threshold_bytes + 1;
  EXPECT_EQ(h.select_path(f, data_packet()), paths[0].id);
}

TEST_F(HermesLbTest, TimeoutForcesFreshSelection) {
  const auto& paths = topo.paths_between_leaves(0, 1);
  set_state(h, ecfg, 0, 1, 2, usec(30), 0.0);  // a good escape path
  auto f = make_flow(topo, 1, 0, 2);
  f.current_path = paths[0].id;
  f.has_sent = true;
  f.timeout_pending = true;
  const int chosen = h.select_path(f, data_packet());
  EXPECT_EQ(topo.path(chosen).local_index, 2);
  EXPECT_FALSE(f.timeout_pending);  // consumed
}

TEST_F(HermesLbTest, ReroutingDisabledStaysOnCongestedPath) {
  auto cfg2 = cfg;
  cfg2.rerouting_enabled = false;
  HermesLb h2{simulator, topo, cfg2};
  const auto ecfg2 = cfg2.engine_config(topo.host_rate_bps());
  const auto& paths = topo.paths_between_leaves(0, 1);
  set_state(h2, ecfg2, 0, 1, 0, cfg2.t_rtt_high + usec(100), 0.9);
  set_state(h2, ecfg2, 0, 1, 2, usec(30), 0.0);
  auto f = make_flow(topo, 1, 0, 2);
  f.current_path = paths[0].id;
  f.has_sent = true;
  f.bytes_sent = cfg2.sent_threshold_bytes + 1;
  EXPECT_EQ(h2.select_path(f, data_packet()), paths[0].id);
}

TEST_F(HermesLbTest, BlackholeDetectedAfterThreeTimeoutsWithoutAcks) {
  const auto& paths = topo.paths_between_leaves(0, 1);
  auto f = make_flow(topo, 1, 0, 2);
  f.current_path = paths[1].id;
  f.has_sent = true;
  f.acked_on_path = 0;
  // The per-(pair, path) count accrues across timeout events (possibly
  // from different flows of the pair revisiting the path).
  h.on_timeout(f);
  h.on_timeout(f);
  EXPECT_FALSE(h.blackholed(0, 2, 1));  // two is not enough
  h.on_timeout(f);
  EXPECT_TRUE(h.blackholed(0, 2, 1));
  EXPECT_FALSE(h.blackholed(0, 3, 1));  // other pairs unaffected
  EXPECT_FALSE(h.blackholed(0, 2, 0));  // other paths unaffected

  // The failed path is avoided on the next selection.
  f.timeout_pending = true;
  const int chosen = h.select_path(f, data_packet());
  EXPECT_NE(topo.path(chosen).local_index, 1);
}

TEST_F(HermesLbTest, MidFlowOnsetDetectedDespiteEarlierProgress) {
  // A blackhole that onsets while a flow is mid-transfer: the flow made
  // plenty of progress on the path, then hits consecutive timeouts with
  // no ACK in between. Earlier progress must not veto detection.
  const auto& paths = topo.paths_between_leaves(0, 1);
  auto f = make_flow(topo, 1, 0, 2);
  f.current_path = paths[1].id;
  f.has_sent = true;
  f.acked_on_path = 5;  // progress happened on this path, pre-onset
  for (std::uint32_t i = 0; i < cfg.blackhole_timeouts; ++i) h.on_timeout(f);
  EXPECT_TRUE(h.blackholed(0, 2, 1));
}

TEST_F(HermesLbTest, AckBetweenTimeoutsResetsBlackholeCount) {
  const auto& paths = topo.paths_between_leaves(0, 1);
  auto f = make_flow(topo, 1, 0, 2);
  f.current_path = paths[1].id;
  f.has_sent = true;
  f.acked_on_path = 0;
  h.on_timeout(f);
  h.on_timeout(f);
  // An ACK for this (pair, path) proves it is not a blackhole.
  net::Packet ack;
  ack.type = net::PacketType::kAck;
  ack.path_id = paths[1].id;
  ack.ts_echo = sim::SimTime::zero();
  h.on_ack(f, ack);
  h.on_timeout(f);
  EXPECT_FALSE(h.blackholed(0, 2, 1));  // count restarted after the ACK
}

TEST_F(HermesLbTest, AllPathsBlackholedStillTransmits) {
  auto f = make_flow(topo, 1, 0, 2);
  const auto& paths = topo.paths_between_leaves(0, 1);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    f.current_path = paths[i].id;
    f.has_sent = true;
    f.acked_on_path = 0;
    for (std::uint32_t k = 0; k < cfg.blackhole_timeouts; ++k) h.on_timeout(f);
  }
  f.timeout_pending = true;
  const int chosen = h.select_path(f, data_packet());
  EXPECT_GE(chosen, 0);  // must still pick something
}

TEST_F(HermesLbTest, RetransmitAccountingFeedsPathState) {
  const auto& paths = topo.paths_between_leaves(0, 1);
  auto f = make_flow(topo, 1, 0, 2);
  for (int i = 0; i < 100; ++i)
    h.path_state(0, 1, 0).add_send(1500, simulator.now().ns(), ecfg);
  h.on_retransmit(f, paths[0].id);
  // Roll the epoch and confirm the fraction reflects 1/100.
  auto& st = h.path_state(0, 1, 0);
  st.roll_epoch((simulator.now() + cfg.retx_epoch + usec(1)).ns(), ecfg);
  EXPECT_NEAR(st.retx_fraction(), 0.01, 0.001);
}

TEST_F(HermesLbTest, AckSampleUpdatesPathState) {
  const auto& paths = topo.paths_between_leaves(0, 1);
  auto f = make_flow(topo, 1, 0, 2);
  net::Packet ack;
  ack.type = net::PacketType::kAck;
  ack.path_id = paths[2].id;
  ack.ece = true;
  ack.ts_echo = usec(1);
  simulator.run_until(usec(101));
  h.on_ack(f, ack);
  EXPECT_TRUE(h.path_state(0, 1, 2).has_sample());
  EXPECT_EQ(h.path_state(0, 1, 2).rtt(), usec(100).ns());
  EXPECT_DOUBLE_EQ(h.path_state(0, 1, 2).ecn_fraction(), 1.0);
}

TEST_F(HermesLbTest, IntraRackFlowsBypassHermes) {
  auto f = make_flow(topo, 1, 0, 1);
  EXPECT_EQ(h.select_path(f, data_packet()), -1);
}

TEST(HermesConfigDefaults, DerivedFromTopology) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, net::TopologyConfig{}};
  const auto cfg = HermesConfig::defaults_for(topo);
  // one-hop delay at 10G/65pkts is 78us -> T_RTT_high ~= base + 117us.
  EXPECT_GT(cfg.t_rtt_high, cfg.t_rtt_low);
  EXPECT_NEAR(cfg.delta_rtt.to_usec(), 78.0, 1.0);
  EXPECT_NEAR((cfg.t_rtt_high - topo.base_rtt()).to_usec(), 117.0, 2.0);
  EXPECT_NEAR((cfg.t_rtt_low - topo.base_rtt()).to_usec(), 30.0, 0.1);
}

TEST(HermesConfigLowering, EngineConfigMatchesSimConfig) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, net::TopologyConfig{}};
  const auto cfg = HermesConfig::defaults_for(topo);
  const auto e = cfg.engine_config(topo.host_rate_bps());
  EXPECT_EQ(e.t_rtt_low, cfg.t_rtt_low.ns());
  EXPECT_EQ(e.t_rtt_high, cfg.t_rtt_high.ns());
  EXPECT_EQ(e.delta_rtt, cfg.delta_rtt.ns());
  EXPECT_DOUBLE_EQ(e.reroute_rate_limit_bps, cfg.rate_threshold_frac * topo.host_rate_bps());
  EXPECT_EQ(e.failure_expiry, cfg.failure_expiry.ns());
  EXPECT_EQ(e.reroute_min_gap, cfg.reroute_min_gap.ns());
  EXPECT_EQ(e.blackhole_timeouts, cfg.blackhole_timeouts);
}

// --- probing (wired through a real scenario) ----------------------------

TEST(HermesProbing, ProbesPopulateVisibility) {
  harness::ScenarioConfig cfg;
  cfg.topo = topo4();
  cfg.scheme = harness::Scheme::kHermes;
  harness::Scenario s{cfg};
  s.run_for(msec(5));
  auto* h = s.hermes();
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->probe_stats().probes_sent, 0u);
  EXPECT_GT(h->probe_stats().replies_received, 0u);
  // The paper's Table 6 claim: visibility of at least ~3 paths per pair.
  EXPECT_GE(h->sampled_paths(0, 1), 3);
  EXPECT_GE(h->sampled_paths(1, 0), 3);
}

TEST(HermesProbing, ThreeProbesPerPairPerInterval) {
  harness::ScenarioConfig cfg;
  cfg.topo = topo4();
  cfg.scheme = harness::Scheme::kHermes;
  cfg.hermes.probe_interval = usec(500);
  harness::Scenario s{cfg};
  s.run_for(msec(10));
  auto* h = s.hermes();
  // 2 ordered pairs x ~20 intervals x 2-3 probes (best may coincide with a
  // random choice).
  const auto sent = h->probe_stats().probes_sent;
  EXPECT_GE(sent, 2u * 19u * 2u);
  EXPECT_LE(sent, 2u * 21u * 3u);
}

TEST(HermesProbing, DisabledMeansNoProbes) {
  harness::ScenarioConfig cfg;
  cfg.topo = topo4();
  cfg.scheme = harness::Scheme::kHermes;
  cfg.hermes.probing_enabled = false;
  harness::Scenario s{cfg};
  s.run_for(msec(5));
  EXPECT_EQ(s.hermes()->probe_stats().probes_sent, 0u);
}

TEST(HermesProbing, IdleFabricProbesReadGood) {
  harness::ScenarioConfig cfg;
  cfg.topo = topo4();
  cfg.scheme = harness::Scheme::kHermes;
  harness::Scenario s{cfg};
  s.run_for(msec(20));
  auto* h = s.hermes();
  int good = 0, total = 0;
  for (int i = 0; i < 4; ++i) {
    if (!h->path_state(0, 1, i).has_sample()) continue;
    ++total;
    if (h->path_type(0, 1, i) == engine::PathType::kGood) ++good;
  }
  EXPECT_GT(total, 2);
  EXPECT_EQ(good, total);  // an idle fabric is all-good
}

}  // namespace
}  // namespace hermes::lb
