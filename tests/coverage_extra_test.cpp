// Additional coverage: CONGA's in-band loop over real traffic, spray
// boundary arithmetic, CLOVE draw statistics, host-stack probe plumbing,
// event-queue interleavings, and DRE quantization sweeps.

#include <cstdint>
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "hermes/harness/scenario.hpp"
#include "hermes/lb/clove.hpp"
#include "hermes/lb/conga.hpp"
#include "hermes/lb/spray.hpp"
#include "hermes/net/dre.hpp"
#include "hermes/transport/udp_source.hpp"
#include "hermes/workload/flow_gen.hpp"

namespace hermes {
namespace {

using sim::msec;
using sim::usec;

// --- CONGA over real traffic ------------------------------------------------

TEST(CongaLoop, RealTrafficPopulatesRemoteMetrics) {
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 2;
  cfg.topo.hosts_per_leaf = 2;
  cfg.scheme = harness::Scheme::kConga;
  harness::Scenario s{cfg};
  auto* conga = dynamic_cast<lb::CongaLb*>(&s.balancer());
  ASSERT_NE(conga, nullptr);

  // Saturate one direction; feedback must give leaf 0 a nonzero metric
  // for at least the used path.
  s.add_flow(0, 2, 20'000'000, usec(0));
  s.run_for(msec(5));
  int nonzero = 0;
  for (int i = 0; i < 2; ++i) nonzero += conga->path_metric(0, 1, i) > 0 ? 1 : 0;
  EXPECT_GE(nonzero, 1);
}

TEST(CongaLoop, BalancesTwoHeavyFlowsAcrossSpines) {
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 2;
  cfg.topo.hosts_per_leaf = 2;
  cfg.scheme = harness::Scheme::kConga;
  harness::Scenario s{cfg};
  s.add_flow(0, 2, 30'000'000, usec(0));
  s.add_flow(1, 3, 30'000'000, usec(100));
  auto fct = s.run();
  EXPECT_EQ(fct.unfinished_flows(), 0u);
  // Both uplinks carried substantial traffic: neither starved.
  const auto a = s.topology().leaf_uplink(0, 0).stats().tx_bytes;
  const auto b = s.topology().leaf_uplink(0, 1).stats().tx_bytes;
  EXPECT_GT(std::min(a, b), 10'000'000u);
}

// --- spray arithmetic -------------------------------------------------------

TEST(SprayMath, FlowcellBoundaryIsExact) {
  sim::Simulator simulator{1};
  net::TopologyConfig tc;
  tc.num_leaves = 2;
  tc.num_spines = 2;
  tc.hosts_per_leaf = 1;
  net::Topology topo{simulator, tc};
  lb::SprayLb lb{topo, lb::SprayConfig{.cell_bytes = 2920, .weighted = false}, "cell"};
  lb::FlowCtx f;
  f.flow_id = 1;
  f.src = 0;
  f.dst = 1;
  f.src_leaf = 0;
  f.dst_leaf = 1;
  net::Packet p;
  p.payload = 1460;
  // Cell = exactly 2 packets: the path must change every 2 packets.
  std::vector<int> seq;
  for (int i = 0; i < 12; ++i) seq.push_back(lb.select_path(f, p));
  for (int i = 0; i + 1 < 12; i += 2) {
    EXPECT_EQ(seq[i], seq[i + 1]);
    if (i + 2 < 12) {
      EXPECT_NE(seq[i + 1], seq[i + 2]);
    }
  }
}

TEST(SprayMath, ThreeTierWeights) {
  sim::Simulator simulator{1};
  net::TopologyConfig tc;
  tc.num_leaves = 2;
  tc.num_spines = 3;
  tc.hosts_per_leaf = 1;
  tc.fabric_overrides[{0, 0, 0}] = 2e9;
  tc.fabric_overrides[{1, 0, 0}] = 2e9;
  tc.fabric_overrides[{0, 1, 0}] = 4e9;
  tc.fabric_overrides[{1, 1, 0}] = 4e9;
  net::Topology topo{simulator, tc};
  lb::SprayLb lb{topo, lb::SprayConfig{.cell_bytes = 0, .weighted = true}, "w"};
  lb::FlowCtx f;
  f.flow_id = 3;
  f.src = 0;
  f.dst = 1;
  f.src_leaf = 0;
  f.dst_leaf = 1;
  net::Packet p;
  p.payload = 1460;
  std::map<int, int> counts;
  const int n = 8000;  // weights 1:2:5
  for (int i = 0; i < n; ++i) ++counts[topo.path(lb.select_path(f, p)).local_index];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 8, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 2.0 / 8, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 5.0 / 8, 0.01);
}

// --- CLOVE draw statistics ----------------------------------------------------

TEST(CloveDraw, MatchesWeightsAfterSkew) {
  sim::Simulator simulator{1};
  net::TopologyConfig tc;
  tc.num_leaves = 2;
  tc.num_spines = 2;
  tc.hosts_per_leaf = 1;
  net::Topology topo{simulator, tc};
  lb::CloveLb lb{simulator, topo, {.flowlet_timeout = usec(0), .mark_min_gap = usec(0)}};
  lb::FlowCtx f;
  f.flow_id = 1;
  f.src = 0;
  f.dst = 1;
  f.src_leaf = 0;
  f.dst_leaf = 1;
  net::Packet ack;
  ack.ece = true;
  ack.path_id = topo.paths_between_leaves(0, 1)[0].id;
  for (int i = 0; i < 5; ++i) {
    simulator.run_until(simulator.now() + usec(1));
    lb.on_ack(f, ack);
  }
  const auto w = lb.weights(0, 1);
  const double p0 = w[0] / (w[0] + w[1]);
  int on0 = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    lb::FlowCtx g;
    g.flow_id = 100 + static_cast<std::uint64_t>(i);
    g.src = 0;
    g.dst = 1;
    g.src_leaf = 0;
    g.dst_leaf = 1;
    if (topo.path(lb.select_path(g, net::Packet{})).local_index == 0) ++on0;
  }
  EXPECT_NEAR(on0 / static_cast<double>(n), p0, 0.02);
}

// --- host stack probe plumbing -----------------------------------------------

TEST(HostStackProbes, ReplyEchoesForwardObservations) {
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 2;
  cfg.topo.hosts_per_leaf = 2;
  cfg.scheme = harness::Scheme::kEcmp;  // no built-in prober: drive by hand
  harness::Scenario s{cfg};

  std::vector<net::Packet> replies;
  s.stack(0).on_probe_reply = [&](const net::Packet& p) { replies.push_back(p); };

  net::Packet probe;
  probe.id = 99;
  probe.probe_id = 7;
  probe.type = net::PacketType::kProbe;
  probe.src = 0;
  probe.dst = 2;
  probe.size = net::kProbeBytes;
  probe.ect = true;
  probe.ts_sent = s.simulator().now();
  probe.path_id = s.topology().paths_between_leaves(0, 1)[1].id;
  probe.route = s.topology().forward_route(0, 2, probe.path_id);
  s.stack(0).send_raw(probe);
  s.run_for(msec(1));

  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].probe_id, 7u);
  EXPECT_EQ(replies[0].path_id, probe.path_id);
  EXPECT_EQ(replies[0].ts_echo, probe.ts_sent);
  EXPECT_FALSE(replies[0].ece);  // idle fabric: no CE observed
  EXPECT_EQ(replies[0].priority, 1);
}

TEST(HostStackProbes, UdpSinkHookReceivesPayload) {
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 1;
  cfg.topo.hosts_per_leaf = 1;
  harness::Scenario s{cfg};
  std::uint64_t udp_bytes = 0;
  s.stack(1).on_udp = [&](const net::Packet& p) { udp_bytes += p.payload; };
  transport::UdpSource udp{s.simulator(), s.topology(), s.balancer(), 5, 0, 1,
                           1e9,           1000,          [&](net::Packet p) {
                             s.stack(0).send_raw(std::move(p));
                           }};
  udp.start();
  s.run_for(msec(1));
  udp.stop();
  // ~1Gbps for 1ms = ~125KB of payload.
  EXPECT_NEAR(static_cast<double>(udp_bytes), 120'000.0, 25'000.0);
}

// --- event queue interleavings -------------------------------------------------

TEST(EventInterleaving, PostAndTimerShareFifoOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.post_at(usec(5), [&] { order.push_back(1); });
  auto h = q.schedule_at(usec(5), [&] { order.push_back(2); });
  q.post_at(usec(5), [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(h.pending());
}

TEST(EventInterleaving, CancelledTimerBetweenPostsKeepsOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.post_at(usec(5), [&] { order.push_back(1); });
  auto h = q.schedule_at(usec(5), [&] { order.push_back(99); });
  q.post_at(usec(5), [&] { order.push_back(2); });
  h.cancel();
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- DRE quantization sweep -----------------------------------------------------

class DreQuantSweep : public ::testing::TestWithParam<double> {};

TEST_P(DreQuantSweep, QuantizationTracksUtilization) {
  const double util = GetParam();
  net::Dre dre{usec(50), 0.1};
  sim::SimTime t{};
  const auto gap = sim::SimTime::from_seconds(1500 * 8 / (util * 10e9));
  for (int i = 0; i < 6000; ++i) {
    dre.add(1500, t);
    t += gap;
  }
  const int q = dre.quantized(10e9, t);
  EXPECT_NEAR(q, util * 7, 1.01) << "util=" << util;
}

INSTANTIATE_TEST_SUITE_P(Utils, DreQuantSweep, ::testing::Values(0.15, 0.3, 0.5, 0.7, 0.95));

}  // namespace
}  // namespace hermes
