// Tests for the scenario fuzzer + auto-triage loop (DESIGN.md section
// 10): seeded scenario generation (golden-hash pinned), the harness fuzz
// runner, triage trace dumps on failing runs, the flow-id trace index,
// and decision diffing between two runs of the same scenario.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <gtest/gtest.h>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "hermes/faults/fault_plan.hpp"
#include "hermes/faults/scenario_fuzzer.hpp"
#include "hermes/harness/fuzz_runner.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/records.hpp"
#include "hermes/obs/trace_diff.hpp"
#include "hermes/obs/trace_io.hpp"

namespace hermes {
namespace {

using faults::fuzz::FuzzScenario;
using faults::fuzz::RandomScenarioGenerator;
using obs::DecisionKind;
using obs::RecordKind;

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// --- RandomScenarioGenerator --------------------------------------------

TEST(ScenarioFuzzer, SameSeedIsByteIdentical) {
  const RandomScenarioGenerator gen;
  EXPECT_EQ(gen.generate(42).describe(), gen.generate(42).describe());
  EXPECT_NE(gen.generate(42).describe(), gen.generate(43).describe());
}

// Golden hash over the canonical text of seeds 0..31. Recorded from the
// initial generator; the fuzzer's whole value rests on seed stability
// (a nightly finding must replay weeks later), so any change to the
// sampling order, limits, or describe() format must re-record this and
// say so in the commit message — it invalidates all previously reported
// FUZZ_<seed>.htrc names.
constexpr std::uint64_t kFuzzGoldenHash = 0x852a5a8f3d0e5b8eull;

TEST(ScenarioFuzzer, GoldenHashPinsSamplingOrder) {
  const RandomScenarioGenerator gen;
  std::string all;
  for (std::uint64_t s = 0; s < 32; ++s) all += gen.generate(s).describe();
  EXPECT_EQ(fnv1a64(all), kFuzzGoldenHash)
      << "generated scenarios changed (" << all.size()
      << " bytes of canonical text) — seed replay across versions is "
         "broken; re-record only for an intentional generator change";
}

TEST(ScenarioFuzzer, ScenariosStayWithinLimits) {
  const RandomScenarioGenerator gen;
  const faults::fuzz::FuzzLimits& lim = gen.limits();
  for (std::uint64_t s = 0; s < 20; ++s) {
    const FuzzScenario sc = gen.generate(s);
    EXPECT_GE(sc.topo.num_leaves, lim.min_leaves);
    EXPECT_LE(sc.topo.num_leaves, lim.max_leaves);
    EXPECT_GE(sc.topo.num_spines, lim.min_spines);
    EXPECT_LE(sc.topo.num_spines, lim.max_spines);
    EXPECT_LE(sc.topo.hosts_per_leaf, lim.max_hosts_per_leaf);
    EXPECT_GE(sc.num_flows, lim.min_flows);
    EXPECT_LE(sc.num_flows, lim.max_flows);
    EXPECT_GE(sc.load, lim.min_load);
    EXPECT_LT(sc.load, lim.max_load);
    EXPECT_EQ(sc.max_sim_time, lim.max_sim_time);
    for (const faults::FaultEvent& e : sc.plan.events()) {
      EXPECT_GE(e.at, sim::SimTime::zero());
    }
    // Build-time asymmetry never cuts a link outright (rate 0 removes
    // the path from enumeration — a different failure class).
    for (const auto& [key, bps] : sc.topo.fabric_overrides) EXPECT_GT(bps, 0.0);
  }
}

TEST(ScenarioFuzzer, EveryGeneratedFaultHeals) {
  // Replay each plan's end state under FaultScheduler semantics (cuts
  // and blackholes are idempotent per link/switch — the overlap edge
  // pattern re-cuts an already-dead link on purpose): the fuzzer must
  // not emit permanent faults, or the triage loop's stranded-flow
  // finding would drown in self-inflicted noise.
  const RandomScenarioGenerator gen;
  for (std::uint64_t s = 0; s < 20; ++s) {
    const FuzzScenario sc = gen.generate(s);
    std::set<std::tuple<int, int, int>> cut_links;
    std::set<std::pair<int, int>> holes;           // (tier, switch)
    std::map<std::pair<int, int>, double> drops;   // (tier, switch) -> rate
    for (const faults::FaultEvent& e : sc.plan.sorted()) {
      const std::pair<int, int> sw{static_cast<int>(e.tier), e.switch_id};
      switch (e.action) {
        case faults::FaultAction::kBlackholeOn: holes.insert(sw); break;
        case faults::FaultAction::kBlackholeOff: holes.erase(sw); break;
        case faults::FaultAction::kLinkDown:
          cut_links.insert({e.link.leaf, e.link.spine, e.link.k});
          break;
        case faults::FaultAction::kLinkUp:
          cut_links.erase({e.link.leaf, e.link.spine, e.link.k});
          break;
        case faults::FaultAction::kRandomDropSet: drops[sw] = e.rate; break;
        default: break;
      }
    }
    EXPECT_TRUE(holes.empty()) << "seed " << s << " leaves a blackhole installed";
    EXPECT_TRUE(cut_links.empty()) << "seed " << s << " leaves a link cut";
    for (const auto& [sw, rate] : drops) {
      EXPECT_DOUBLE_EQ(rate, 0.0) << "seed " << s << " leaves drops on";
    }
  }
}

// --- fuzz runner + auto-triage ------------------------------------------

TEST(FuzzRunner, ParsesSchemeNames) {
  EXPECT_EQ(harness::parse_scheme("Hermes"), harness::Scheme::kHermes);
  EXPECT_EQ(harness::parse_scheme("hermes"), harness::Scheme::kHermes);
  EXPECT_EQ(harness::parse_scheme("CLOVE-ECN"), harness::Scheme::kCloveEcn);
  EXPECT_EQ(harness::parse_scheme("clove"), harness::Scheme::kCloveEcn);
  EXPECT_EQ(harness::parse_scheme("presto"), harness::Scheme::kPrestoStar);
  EXPECT_EQ(harness::parse_scheme("no-such-scheme"), std::nullopt);
}

TEST(FuzzRunner, ConfigCarriesScenarioAndArmsTriage) {
  const RandomScenarioGenerator gen;
  const FuzzScenario sc = gen.generate(7);
  const harness::ScenarioConfig cfg =
      harness::to_scenario_config(sc, harness::Scheme::kConga);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_EQ(cfg.scheme, harness::Scheme::kConga);
  EXPECT_EQ(cfg.topo.num_leaves, sc.topo.num_leaves);
  EXPECT_EQ(cfg.fault_plan.size(), sc.plan.size());
  EXPECT_TRUE(cfg.check_invariants);
  EXPECT_TRUE(cfg.obs.enabled);
  EXPECT_TRUE(cfg.obs.dump_on_violation);
  const harness::ScenarioConfig quick =
      harness::to_scenario_config(sc, harness::Scheme::kConga, /*triage=*/false);
  EXPECT_FALSE(quick.obs.enabled);
}

// The triage loop end to end, with a scenario built to fail: ECMP under
// a permanent all-spine blackhole strands its flow, so run() must dump
// the ring to the configured path and report it via triage_path().
TEST(FuzzTriage, FailingRunDumpsReplayableTrace) {
  const std::string path = testing::TempDir() + "fuzz_triage.htrc";
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 2;
  cfg.topo.hosts_per_leaf = 2;
  cfg.scheme = harness::Scheme::kEcmp;
  cfg.seed = 99;
  cfg.max_sim_time = sim::msec(100);
  cfg.check_invariants = true;
  cfg.obs.enabled = true;
  cfg.obs.dump_on_violation = true;
  cfg.obs.dump_path = path;
  cfg.fault_plan.blackhole_on(sim::msec(1), 0, faults::rack_pair_blackhole(2, 0, 1));
  cfg.fault_plan.blackhole_on(sim::msec(1), 1, faults::rack_pair_blackhole(2, 0, 1));
  harness::Scenario s{cfg};
  s.add_flow(0, 2, 5'000'000, sim::SimTime::zero());
  const auto fct = s.run();
  ASSERT_EQ(fct.unfinished_flows(), 1u);
  ASSERT_EQ(s.triage_path(), path);

  obs::LoadedTrace t;
  std::string err;
  ASSERT_TRUE(obs::read_trace(path, t, &err)) << err;
  EXPECT_GT(t.records.size(), 0u);
  std::remove(path.c_str());
}

TEST(FuzzTriage, CleanRunDumpsNothing) {
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 2;
  cfg.topo.hosts_per_leaf = 2;
  cfg.scheme = harness::Scheme::kHermes;
  cfg.check_invariants = true;
  cfg.obs.enabled = true;
  cfg.obs.dump_on_violation = true;
  cfg.obs.dump_path = testing::TempDir() + "fuzz_never.htrc";
  harness::Scenario s{cfg};
  s.add_flow(0, 2, 100'000, sim::SimTime::zero());
  const auto fct = s.run();
  EXPECT_EQ(fct.unfinished_flows(), 0u);
  EXPECT_TRUE(s.triage_path().empty());
}

// One full generated seed through run_fuzz_scenario: either it is clean
// (no dump), or the contract holds — a dumped, parseable trace plus a
// repro command naming the seed. Both sides of the contract are what
// the nightly CI shard relies on.
TEST(FuzzRunner, OutcomeContractHolds) {
  const RandomScenarioGenerator gen;
  const std::string dir = testing::TempDir();
  const harness::FuzzOutcome o = harness::run_fuzz_scenario(
      gen.generate(1), harness::Scheme::kHermes, /*triage=*/true, dir);
  EXPECT_EQ(o.seed, 1u);
  if (o.clean()) {
    EXPECT_TRUE(o.trace_path.empty());
    EXPECT_TRUE(o.repro.empty());
  } else {
    ASSERT_FALSE(o.trace_path.empty());
    obs::LoadedTrace t;
    std::string err;
    EXPECT_TRUE(obs::read_trace(o.trace_path, t, &err)) << err;
    EXPECT_NE(o.repro.find("--seed=1"), std::string::npos);
    std::remove(o.trace_path.c_str());
  }
}

// Seed-replay of the sharded determinism fuzz mode: the exact check the
// nightly `hermesfuzz --sharded` shard runs, pinned here for two seeds
// so a thread-count-dependent regression fails in tier 1, not at night.
TEST(FuzzRunner, ShardedSeedIsThreadCountDeterministic) {
  const harness::ShardedFuzzOutcome o =
      harness::run_sharded_fuzz_seed(5, harness::Scheme::kHermes);
  EXPECT_EQ(o.seed, 5u);
  EXPECT_GE(o.num_shards, 2);
  EXPECT_TRUE(o.deterministic())
      << "T=1 hash " << o.hash_t1 << " != T=2 hash " << o.hash_t2 << "; repro: " << o.repro;

  const harness::ShardedFuzzOutcome e =
      harness::run_sharded_fuzz_seed(17, harness::Scheme::kEcmp);
  EXPECT_TRUE(e.deterministic()) << e.repro;
}

TEST(FuzzRunner, ShardedRejectsGlobalStateSchemes) {
  EXPECT_THROW((void)harness::run_sharded_fuzz_seed(1, harness::Scheme::kConga),
               std::invalid_argument);
}

// --- flow index (trace schema v2) ---------------------------------------

TEST(TraceIndex, PerFlowLookupIsChronologicalAndComplete) {
  obs::FlightRecorder rec{256};
  const auto port = rec.intern("leaf0.up0");
  // Interleave three flows; per-flow record order must match append order.
  for (std::uint64_t i = 0; i < 90; ++i) {
    rec.append(obs::make_record(RecordKind::kPacket, i * 10, port, /*flow_id=*/i % 3 + 1));
  }
  const std::string path = testing::TempDir() + "fuzz_index.htrc";
  ASSERT_TRUE(obs::write_trace(path, rec));
  obs::LoadedTrace t;
  std::string err;
  ASSERT_TRUE(obs::read_trace(path, t, &err)) << err;

  const std::vector<std::uint64_t> ids = t.flow_ids();
  ASSERT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3}));
  std::size_t total = 0;
  for (const std::uint64_t id : ids) {
    const auto span = t.flow_records(id);
    EXPECT_EQ(span.size(), 30u);
    total += span.size();
    std::uint64_t prev = 0;
    for (const std::uint32_t idx : span) {
      ASSERT_LT(idx, t.records.size());
      EXPECT_EQ(t.records[idx].flow_id, id);
      EXPECT_GE(t.records[idx].time_ns, prev);
      prev = t.records[idx].time_ns;
    }
  }
  EXPECT_EQ(total, t.records.size()) << "index must cover every record";
  EXPECT_TRUE(t.flow_records(/*flow_id=*/77).empty());
  std::remove(path.c_str());
}

// --- decision diff -------------------------------------------------------

obs::TraceRecord decision(std::uint64_t t, std::uint64_t flow, std::uint32_t name,
                          DecisionKind kind, std::int16_t from, std::int16_t to,
                          std::int64_t delta_rtt_ns = 0) {
  obs::TraceRecord r = obs::make_record(RecordKind::kDecision, t, name, flow);
  r.u.decision.kind = static_cast<std::uint8_t>(kind);
  r.u.decision.from_path = from;
  r.u.decision.to_path = to;
  r.u.decision.delta_rtt_ns = delta_rtt_ns;
  r.u.decision.from_cond = obs::kPathCondNone;
  r.u.decision.to_cond = obs::kPathCondNone;
  return r;
}

TEST(TraceDiff, IdenticalTracesAreIdentical) {
  obs::FlightRecorder rec{64};
  const auto lb = rec.intern("hermes");
  rec.append(decision(100, 1, lb, DecisionKind::kInitialPlacement, -1, 2));
  rec.append(decision(900, 1, lb, DecisionKind::kCongestionReroute, 2, 0, 40'000));
  const std::string path = testing::TempDir() + "fuzz_diff_same.htrc";
  ASSERT_TRUE(obs::write_trace(path, rec));
  obs::LoadedTrace a;
  obs::LoadedTrace b;
  std::string err;
  ASSERT_TRUE(obs::read_trace(path, a, &err)) << err;
  ASSERT_TRUE(obs::read_trace(path, b, &err)) << err;
  const obs::DiffResult d = obs::diff_decisions(a, b);
  EXPECT_TRUE(d.identical());
  EXPECT_EQ(d.decisions_a, 2u);
  EXPECT_EQ(d.decisions_b, 2u);
  EXPECT_EQ(d.first(), nullptr);
  std::remove(path.c_str());
}

TEST(TraceDiff, PinpointsFirstDivergentDecision) {
  obs::FlightRecorder ra{64};
  obs::FlightRecorder rb{64};
  const auto la = ra.intern("hermes");
  const auto lb = rb.intern("hermes");
  // Flow 1: identical first decision, divergent second (to_path 0 vs 3).
  ra.append(decision(100, 1, la, DecisionKind::kInitialPlacement, -1, 2));
  rb.append(decision(100, 1, lb, DecisionKind::kInitialPlacement, -1, 2));
  ra.append(decision(900, 1, la, DecisionKind::kCongestionReroute, 2, 0, 40'000));
  rb.append(decision(900, 1, lb, DecisionKind::kCongestionReroute, 2, 3, 40'000));
  // Flow 2: an extra trailing decision only in A; packet records are
  // ignored by the diff entirely.
  ra.append(decision(200, 2, la, DecisionKind::kInitialPlacement, -1, 1));
  rb.append(decision(200, 2, lb, DecisionKind::kInitialPlacement, -1, 1));
  ra.append(decision(2'000, 2, la, DecisionKind::kTimeoutEscape, 1, 0));
  rb.append(obs::make_record(RecordKind::kPacket, 2'000, lb, 2));

  const std::string pa = testing::TempDir() + "fuzz_diff_a.htrc";
  const std::string pb = testing::TempDir() + "fuzz_diff_b.htrc";
  ASSERT_TRUE(obs::write_trace(pa, ra));
  ASSERT_TRUE(obs::write_trace(pb, rb));
  obs::LoadedTrace a;
  obs::LoadedTrace b;
  std::string err;
  ASSERT_TRUE(obs::read_trace(pa, a, &err)) << err;
  ASSERT_TRUE(obs::read_trace(pb, b, &err)) << err;

  const obs::DiffResult d = obs::diff_decisions(a, b);
  EXPECT_FALSE(d.identical());
  EXPECT_EQ(d.decisions_a, 4u);
  EXPECT_EQ(d.decisions_b, 3u);
  ASSERT_EQ(d.divergences.size(), 2u);

  // First divergence overall (earliest sim-time): flow 1's reroute.
  const obs::DecisionDiff* first = d.first();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->flow_id, 1u);
  EXPECT_EQ(first->ordinal, 1u);
  EXPECT_EQ(first->time_ns, 900u);
  EXPECT_STREQ(first->field, "to_path");
  EXPECT_GE(first->a_index, 0);
  EXPECT_GE(first->b_index, 0);

  // Flow 2 diverges by A having one more decision than B.
  const auto& missing =
      d.divergences[0].flow_id == 2 ? d.divergences[0] : d.divergences[1];
  EXPECT_EQ(missing.flow_id, 2u);
  EXPECT_STREQ(missing.field, "missing-in-b");
  EXPECT_EQ(missing.b_index, -1);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

// Two real runs of the same scenario under different Hermes configs
// diverge in their Algorithm-2 decision stream, and the diff finds a
// concrete first divergence — the workflow EXPERIMENTS.md's triage
// walkthrough automates via `hermestrace --diff`. Run A reroutes
// eagerly off a congested degraded uplink; run B has rerouting
// disabled, so A's reroute decisions have no counterpart in B.
TEST(TraceDiff, DivergentHermesConfigsProduceAFirstDivergence) {
  const auto run_and_dump = [](const std::string& path, bool rerouting) {
    harness::ScenarioConfig cfg;
    cfg.topo.num_leaves = 2;
    cfg.topo.num_spines = 2;
    cfg.topo.hosts_per_leaf = 4;
    cfg.topo.fabric_overrides[{0, 1, 0}] = 2.5e9;  // degraded uplink via spine 1
    cfg.scheme = harness::Scheme::kHermes;
    cfg.seed = 5;
    cfg.obs.enabled = true;
    cfg.obs.trace_packets = false;
    cfg.hermes.rerouting_enabled = rerouting;
    // Make every cautious-rerouting gate trivially pass so run A moves
    // flows the moment the slow path characterizes as congested.
    cfg.hermes.sent_threshold_bytes = 0;
    cfg.hermes.rate_threshold_frac = 1.0;
    cfg.hermes.reroute_min_gap = sim::SimTime::zero();
    cfg.hermes.delta_rtt = sim::SimTime::nanoseconds(1);
    cfg.hermes.delta_ecn = 1e-6;
    harness::Scenario s{cfg};
    for (int i = 0; i < 8; ++i) {
      s.add_flow(i % 4, 4 + (i + 1) % 4, 1'000'000, sim::usec(i));
    }
    (void)s.run();
    ASSERT_TRUE(s.dump_trace(path));
  };
  const std::string pa = testing::TempDir() + "fuzz_cfg_a.htrc";
  const std::string pb = testing::TempDir() + "fuzz_cfg_b.htrc";
  run_and_dump(pa, true);   // eager rerouting
  run_and_dump(pb, false);  // rerouting off: decision streams must differ
  obs::LoadedTrace a;
  obs::LoadedTrace b;
  std::string err;
  ASSERT_TRUE(obs::read_trace(pa, a, &err)) << err;
  ASSERT_TRUE(obs::read_trace(pb, b, &err)) << err;
  const obs::DiffResult d = obs::diff_decisions(a, b);
  EXPECT_GT(d.decisions_a, 0u);
  EXPECT_GT(d.decisions_b, 0u);
  ASSERT_FALSE(d.identical()) << "a hair-trigger delta_rtt must change decisions";
  ASSERT_NE(d.first(), nullptr);
  EXPECT_NE(std::string(d.first()->field), "");
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

// --- corrupt-input regression (short record tail) ------------------------

TEST(TraceIo, ShortRecordTailIsACleanError) {
  // Handcraft a v1 trace whose header promises 4 records but whose body
  // carries only 1. The long name keeps total file size large enough to
  // pass the coarse header sanity check, so the failure is detected at
  // the record-read stage — the error hermestrace relays verbatim.
  const std::string path = testing::TempDir() + "fuzz_short_tail.htrc";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char magic[4] = {'H', 'T', 'R', 'C'};
  std::fwrite(magic, 1, 4, f);
  const std::uint32_t version = 1;
  const std::uint32_t record_size = 64;
  const std::uint32_t name_count = 1;
  const std::uint64_t record_count = 4;
  const std::uint64_t overwritten = 0;
  std::fwrite(&version, 4, 1, f);
  std::fwrite(&record_size, 4, 1, f);
  std::fwrite(&name_count, 4, 1, f);
  std::fwrite(&record_count, 8, 1, f);
  std::fwrite(&overwritten, 8, 1, f);
  const std::string name(200, 'p');
  const std::uint32_t len = 200;
  std::fwrite(&len, 4, 1, f);
  std::fwrite(name.data(), 1, name.size(), f);
  const char record[64] = {};
  std::fwrite(record, 1, sizeof record, f);  // 1 of the promised 4
  std::fclose(f);

  obs::LoadedTrace t;
  std::string err;
  EXPECT_FALSE(obs::read_trace(path, t, &err));
  EXPECT_EQ(err, "truncated record section (short record tail)");
  EXPECT_TRUE(t.records.empty()) << "no partial output on corrupt input";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hermes
