// Tests for the stats module: percentile math, FCT summaries and size
// bins, unfinished-flow accounting, and the table renderer.

#include <cstdint>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "hermes/stats/fct.hpp"
#include "hermes/stats/table.hpp"

namespace hermes::stats {
namespace {

using sim::msec;
using sim::usec;

transport::FlowRecord rec(std::uint64_t size, double fct_us, bool finished = true) {
  transport::FlowRecord r;
  r.size = size;
  r.start = sim::SimTime::zero();
  r.end = sim::SimTime::nanoseconds(static_cast<std::int64_t>(fct_us * 1000));
  r.finished = finished;
  return r;
}

TEST(Percentile, ExactValues) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99), 42.0);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3, 2, 4}, 100), 5.0);
}

TEST(FctCollector, OverallSummary) {
  FctCollector c;
  c.add(rec(1000, 100));
  c.add(rec(1000, 200));
  c.add(rec(1000, 300));
  const auto s = c.overall();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean_us, 200.0);
  EXPECT_DOUBLE_EQ(s.p50_us, 200.0);
  EXPECT_DOUBLE_EQ(s.max_us, 300.0);
}

TEST(FctCollector, SizeBins) {
  FctCollector c;
  c.add(rec(50'000, 10));        // small (<100KB)
  c.add(rec(5'000'000, 100));    // medium
  c.add(rec(50'000'000, 1000));  // large (>10MB)
  EXPECT_EQ(c.small_flows().count, 1u);
  EXPECT_DOUBLE_EQ(c.small_flows().mean_us, 10.0);
  EXPECT_EQ(c.large_flows().count, 1u);
  EXPECT_DOUBLE_EQ(c.large_flows().mean_us, 1000.0);
  EXPECT_EQ(c.overall().count, 3u);
}

TEST(FctCollector, UnfinishedExcludedFromDefaultSummary) {
  FctCollector c;
  c.add(rec(1000, 100));
  c.add_unfinished(5000, sim::SimTime::zero(), msec(100));
  EXPECT_EQ(c.overall().count, 1u);
  EXPECT_DOUBLE_EQ(c.overall().mean_us, 100.0);
  EXPECT_EQ(c.unfinished_flows(), 1u);
  EXPECT_DOUBLE_EQ(c.unfinished_fraction(), 0.5);
}

TEST(FctCollector, UnfinishedIncludedOnRequest) {
  FctCollector c;
  c.add(rec(1000, 100));
  c.add_unfinished(5000, sim::SimTime::zero(), usec(1000));
  const auto s = c.overall_with_unfinished();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean_us, (100.0 + 1000.0) / 2);
}

TEST(FctCollector, AggregateCounters) {
  FctCollector c;
  auto r = rec(1000, 10);
  r.timeouts = 2;
  r.packets_retransmitted = 5;
  r.reroutes = 3;
  c.add(r);
  c.add(r);
  EXPECT_EQ(c.total_timeouts(), 4u);
  EXPECT_EQ(c.total_retransmissions(), 10u);
  EXPECT_EQ(c.total_reroutes(), 6u);
}

TEST(FctCollector, EmptySummaryIsZeroes) {
  FctCollector c;
  const auto s = c.overall();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean_us, 0.0);
  EXPECT_DOUBLE_EQ(c.unfinished_fraction(), 0.0);
}

TEST(TableFormat, Numbers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::usec(50.0), "50.0us");
  EXPECT_EQ(Table::usec(250'000.0), "250.00ms");
  EXPECT_EQ(Table::pct(0.125), "12.5%");
}

TEST(TableFormat, RendersAllRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  // Render to a memory stream and check content survived.
  char buf[4096] = {};
  std::FILE* mem = fmemopen(buf, sizeof buf, "w");
  ASSERT_NE(mem, nullptr);
  t.print(mem);
  std::fclose(mem);
  const std::string out{buf};
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
}

}  // namespace
}  // namespace hermes::stats
