// Unit tests for Hermes's sensing state: the Algorithm 1 / Table 5
// characterization truth table, signal smoothing, and the failure
// detectors (blackhole handled in engine_conformance_test and
// lb_hermes_test; random drops here). Exercises the environment-neutral
// hermes::engine types directly — no simulator involved.

#include <gtest/gtest.h>

#include "hermes/engine/config.hpp"
#include "hermes/engine/path_state.hpp"

namespace hermes::engine {
namespace {

Config test_config() {
  Config c;
  c.t_ecn = 0.40;
  c.t_rtt_low = usec(60);
  c.t_rtt_high = usec(180);
  c.delta_rtt = usec(80);
  c.delta_ecn = 0.05;
  return c;
}

/// Drive the EWMAs to a steady (rtt, ecn_fraction) point.
void saturate(PathState& st, TimeNs rtt, double ecn_frac, const Config& cfg) {
  int marked = 0;
  for (int i = 0; i < 400; ++i) {
    const bool mark = (marked < ecn_frac * (i + 1));
    if (mark) ++marked;
    st.add_sample(rtt, mark, cfg);
  }
}

TEST(PathCharacterization, NoSampleIsGray) {
  PathState st;
  EXPECT_EQ(st.characterize(test_config()), PathType::kGray);
  EXPECT_FALSE(st.has_sample());
}

// Table 5 rows:
TEST(PathCharacterization, LowEcnLowRttIsGood) {
  auto cfg = test_config();
  PathState st;
  saturate(st, usec(40), 0.0, cfg);
  EXPECT_EQ(st.characterize(cfg), PathType::kGood);
}

TEST(PathCharacterization, HighEcnHighRttIsCongested) {
  auto cfg = test_config();
  PathState st;
  saturate(st, usec(250), 0.9, cfg);
  EXPECT_EQ(st.characterize(cfg), PathType::kCongested);
}

TEST(PathCharacterization, HighEcnLowRttIsGray) {
  // "Not enough ECN samples or all delay built up at one hop."
  auto cfg = test_config();
  PathState st;
  saturate(st, usec(100), 0.9, cfg);
  EXPECT_EQ(st.characterize(cfg), PathType::kGray);
}

TEST(PathCharacterization, LowEcnHighRttIsGray) {
  // "The network stack incurs high RTT" must not condemn the path.
  auto cfg = test_config();
  PathState st;
  saturate(st, usec(250), 0.0, cfg);
  EXPECT_EQ(st.characterize(cfg), PathType::kGray);
}

TEST(PathCharacterization, LowEcnModerateRttIsGray) {
  auto cfg = test_config();
  PathState st;
  saturate(st, usec(120), 0.1, cfg);
  EXPECT_EQ(st.characterize(cfg), PathType::kGray);
}

TEST(PathCharacterization, RttOnlyModeIgnoresEcn) {
  auto cfg = test_config();
  cfg.use_ecn = false;  // plain-TCP sensing (§5.4)
  PathState st;
  saturate(st, usec(40), 1.0, cfg);  // ECN would say congested
  EXPECT_EQ(st.characterize(cfg), PathType::kGood);
  PathState st2;
  saturate(st2, usec(250), 0.0, cfg);
  EXPECT_EQ(st2.characterize(cfg), PathType::kCongested);
}

TEST(PathState, EwmaTracksShift) {
  auto cfg = test_config();
  PathState st;
  saturate(st, usec(40), 0.0, cfg);
  EXPECT_EQ(st.characterize(cfg), PathType::kGood);
  saturate(st, usec(300), 1.0, cfg);
  EXPECT_EQ(st.characterize(cfg), PathType::kCongested);
}

TEST(PathState, FirstSampleInitializesDirectly) {
  auto cfg = test_config();
  PathState st;
  st.add_sample(usec(123), true, cfg);
  EXPECT_EQ(st.rtt(), usec(123));
  EXPECT_DOUBLE_EQ(st.ecn_fraction(), 1.0);
}

TEST(RandomDropDetector, LatchesOnSustainedRetransmissions) {
  auto cfg = test_config();
  PathState st;
  saturate(st, usec(40), 0.0, cfg);  // path looks good (not congested)
  TimeNs t = 0;
  // Two epochs of 2% retransmission rate with enough samples.
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (int i = 0; i < 200; ++i) st.add_send(1500, t, cfg);
    for (int i = 0; i < 4; ++i) st.add_retransmit(t, cfg);
    t += cfg.retx_epoch + usec(1);
    st.roll_epoch(t, cfg);
  }
  EXPECT_TRUE(st.failed());
  EXPECT_EQ(st.characterize(cfg), PathType::kFailed);
}

TEST(RandomDropDetector, CongestionExplainsRetransmissions) {
  auto cfg = test_config();
  PathState st;
  saturate(st, usec(300), 0.9, cfg);  // genuinely congested
  TimeNs t = 0;
  for (int i = 0; i < 200; ++i) st.add_send(1500, t, cfg);
  for (int i = 0; i < 10; ++i) st.add_retransmit(t, cfg);
  t += cfg.retx_epoch + usec(1);
  st.roll_epoch(t, cfg);
  EXPECT_FALSE(st.failed());  // lines 8-9: congested paths are excluded
}

TEST(RandomDropDetector, TooFewSamplesDoNotLatch) {
  auto cfg = test_config();
  PathState st;
  saturate(st, usec(40), 0.0, cfg);
  TimeNs t = 0;
  for (int i = 0; i < 10; ++i) st.add_send(1500, t, cfg);  // < kMinEpochSends
  st.add_retransmit(t, cfg);                               // 10% rate but n=10
  t += cfg.retx_epoch + usec(1);
  st.roll_epoch(t, cfg);
  EXPECT_FALSE(st.failed());
}

TEST(RandomDropDetector, CleanEpochsDoNotLatch) {
  auto cfg = test_config();
  PathState st;
  saturate(st, usec(40), 0.0, cfg);
  TimeNs t = 0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 500; ++i) st.add_send(1500, t, cfg);
    st.add_retransmit(t, cfg);  // 0.2% — below the 1% threshold
    t += cfg.retx_epoch + usec(1);
    st.roll_epoch(t, cfg);
  }
  EXPECT_FALSE(st.failed());
}

TEST(RandomDropDetector, FailureSensingToggleDisablesIt) {
  auto cfg = test_config();
  cfg.failure_sensing = false;
  PathState st;
  saturate(st, usec(40), 0.0, cfg);
  TimeNs t = 0;
  for (int i = 0; i < 200; ++i) st.add_send(1500, t, cfg);
  for (int i = 0; i < 20; ++i) st.add_retransmit(t, cfg);
  t += cfg.retx_epoch + usec(1);
  st.roll_epoch(t, cfg);
  EXPECT_FALSE(st.failed());
}

TEST(PathState, FailureCanBeCleared) {
  PathState st;
  st.fail(usec(1));
  EXPECT_TRUE(st.failed());
  st.clear_failure();
  EXPECT_FALSE(st.failed());
}

// --- failure-latch lifecycle (expiry + re-confirmation doubling) --------

TEST(FailureLatch, FiresAndStaysActiveWithinExpiry) {
  auto cfg = test_config();
  PathState st;
  st.fail(msec(1));
  EXPECT_TRUE(st.failed_active(msec(1), cfg));
  // Still latched right up to the expiry boundary.
  EXPECT_TRUE(st.failed_active(msec(1) + cfg.failure_expiry, cfg));
}

TEST(FailureLatch, ExpiresWithoutFreshEvidence) {
  auto cfg = test_config();
  PathState st;
  st.fail(msec(1));
  const TimeNs past = msec(1) + cfg.failure_expiry + usec(1);
  EXPECT_FALSE(st.failed_active(past, cfg));
  EXPECT_FALSE(st.failed());  // the latch itself cleared, not just the view
}

TEST(FailureLatch, ReconfirmationDoublesExpiry) {
  auto cfg = test_config();
  PathState st;
  st.fail(msec(1));  // streak 1: expiry = E
  EXPECT_FALSE(st.failed_active(msec(1) + cfg.failure_expiry * 2, cfg));
  st.fail(msec(300));  // streak 2: expiry = 2E
  // One expiry later it is still latched (would have expired at streak 1)...
  EXPECT_TRUE(st.failed_active(msec(300) + cfg.failure_expiry + usec(1), cfg));
  // ...but two expiries later it heals.
  EXPECT_FALSE(st.failed_active(msec(300) + cfg.failure_expiry * 2 + usec(1), cfg));
}

TEST(FailureLatch, DoublingCapsAt128x) {
  auto cfg = test_config();
  PathState st;
  // Far more confirmations than the cap; streak saturates at 8.
  for (int i = 0; i < 20; ++i) st.fail(msec(1));
  // 128x expiry still latched...
  EXPECT_TRUE(st.failed_active(msec(1) + cfg.failure_expiry * 128, cfg));
  // ...but not a nanosecond more than that (no unbounded growth).
  EXPECT_FALSE(st.failed_active(msec(1) + cfg.failure_expiry * 128 + usec(1), cfg));
}

TEST(FailureLatch, ClearedFaultReturnsToCongestionType) {
  auto cfg = test_config();
  PathState st;
  saturate(st, usec(40), 0.0, cfg);
  EXPECT_EQ(st.characterize(cfg), PathType::kGood);
  st.fail(msec(1));
  EXPECT_EQ(st.characterize(cfg), PathType::kFailed);
  // Expiry heals the latch; the path reads good again from its signals.
  EXPECT_FALSE(st.failed_active(msec(1) + cfg.failure_expiry + usec(1), cfg));
  EXPECT_EQ(st.characterize(cfg), PathType::kGood);
  // A fresh path with no samples heals back to gray, not good.
  PathState fresh;
  fresh.fail(msec(1));
  EXPECT_FALSE(fresh.failed_active(msec(1) + cfg.failure_expiry + usec(1), cfg));
  EXPECT_EQ(fresh.characterize(cfg), PathType::kGray);
}

TEST(FailureLatch, ZeroExpiryLatchesForever) {
  auto cfg = test_config();
  cfg.failure_expiry = 0;
  PathState st;
  st.fail(msec(1));
  EXPECT_TRUE(st.failed_active(sec(100), cfg));
}

TEST(PathState, RateDreAccumulatesSends) {
  auto cfg = test_config();
  PathState st;
  TimeNs t = 0;
  for (int i = 0; i < 1000; ++i) {
    st.add_send(1500, t, cfg);
    t += nsec(1200);  // 10Gbps pacing
  }
  EXPECT_NEAR(st.rate_bps(t), 10e9, 2e9);
}

}  // namespace
}  // namespace hermes::engine
