// Sharded parallel execution: FatTree structure, the executor's round
// primitives, and the central determinism contract — for a fixed shard
// count, HERMES_THREADS=1 and =N produce byte-identical results (FCT
// records, metrics, merged trace bytes), observability on or off, with
// and without a mid-run fault train.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hermes/faults/fault_plan.hpp"

#include "hermes/harness/sharded_scenario.hpp"
#include "hermes/net/fattree.hpp"
#include "hermes/sim/event_queue.hpp"
#include "hermes/sim/sharded_executor.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/stats/csv.hpp"
#include "hermes/workload/flow_gen.hpp"
#include "hermes/workload/size_dist.hpp"

namespace hermes {
namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Value of `name` in a MetricsRegistry::snapshot_text() dump ("name
/// value" lines), or -1 when absent.
double metric_value(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0) return std::stod(line.substr(name.size() + 1));
  }
  return -1.0;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- EventQueue round primitives ---------------------------------------

TEST(EventQueueRounds, RunUntilBeforeExcludesHorizonAndAdvancesClock) {
  sim::EventQueue q;
  std::vector<int> fired;
  q.post_at(sim::usec(1), [&] { fired.push_back(1); });
  q.post_at(sim::usec(2), [&] { fired.push_back(2); });
  q.post_at(sim::usec(2), [&] { fired.push_back(3); });  // exactly at horizon
  q.post_at(sim::usec(5), [&] { fired.push_back(4); });

  q.run_until_before(sim::usec(2));
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(q.now(), sim::usec(2)) << "clock must land exactly on the horizon";

  // Events at exactly the previous horizon run in the next round.
  q.run_until_before(sim::usec(5));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), sim::usec(5));
}

TEST(EventQueueRounds, NextEventTimeReportsEarliestStoredEvent) {
  sim::EventQueue q;
  EXPECT_EQ(q.next_event_time(), sim::SimTime::max());
  q.post_at(sim::usec(7), [] {});
  q.post_at(sim::usec(3), [] {});
  EXPECT_EQ(q.next_event_time(), sim::usec(3));
  q.run_until_before(sim::usec(4));
  EXPECT_EQ(q.next_event_time(), sim::usec(7));
}

TEST(EventQueueRounds, RunUntilBeforeOnEmptyQueueStillAdvances) {
  sim::EventQueue q;
  q.run_until_before(sim::usec(9));
  EXPECT_EQ(q.now(), sim::usec(9));
}

// --- thread-count policy (satellite: HERMES_THREADS=0/unset fallback) --

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(sim::resolve_threads(3), 3u);
}

TEST(ResolveThreads, EnvZeroEmptyAndGarbageMeanUnset) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const char* old = std::getenv("HERMES_THREADS");
  const std::string saved = old != nullptr ? old : "";

  ::setenv("HERMES_THREADS", "2", 1);
  EXPECT_EQ(sim::resolve_threads(), 2u);
  // 0, empty and non-numeric all fall back to hardware concurrency.
  ::setenv("HERMES_THREADS", "0", 1);
  EXPECT_EQ(sim::resolve_threads(), hw);
  ::setenv("HERMES_THREADS", "", 1);
  EXPECT_EQ(sim::resolve_threads(), hw);
  ::setenv("HERMES_THREADS", "lots", 1);
  EXPECT_EQ(sim::resolve_threads(), hw);
  ::unsetenv("HERMES_THREADS");
  EXPECT_EQ(sim::resolve_threads(), hw);

  if (old != nullptr) {
    ::setenv("HERMES_THREADS", saved.c_str(), 1);
  } else {
    ::unsetenv("HERMES_THREADS");
  }
}

// --- FatTree structure -------------------------------------------------

TEST(FatTree, ShapeAndPathsK4) {
  sim::Simulator s{1};
  net::FatTreeConfig fc;
  fc.k = 4;
  net::FatTree ft{{&s}, fc};

  EXPECT_EQ(ft.num_pods(), 4);
  EXPECT_EQ(ft.num_leaves(), 8);    // 4 pods x 2 edges
  EXPECT_EQ(ft.num_cores(), 4);     // (k/2)^2
  EXPECT_EQ(ft.hosts_per_leaf(), 2);
  EXPECT_EQ(ft.num_hosts(), 16);
  EXPECT_EQ(ft.num_shards(), 1);
  EXPECT_EQ(ft.pod_of_leaf(0), 0);
  EXPECT_EQ(ft.pod_of_leaf(7), 3);

  // Intra-pod pair: one path per agg; inter-pod: one per core.
  EXPECT_EQ(ft.paths_between_leaves(0, 1).size(), 2u);
  EXPECT_EQ(ft.paths_between_leaves(0, 2).size(), 4u);
  EXPECT_TRUE(ft.paths_between_leaves(3, 3).empty());

  // Inter-pod forward route: 5 hops ending at the destination host port.
  const auto& paths = ft.paths_between_leaves(0, 2);
  const net::Route r = ft.forward_route(0, ft.first_host_of_leaf(2) + 1, paths[0].id);
  EXPECT_EQ(r.len, 5);

  // Same-leaf: one hop straight down.
  const net::Route local = ft.forward_route(0, 1, -1);
  EXPECT_EQ(local.len, 1);
}

TEST(FatTree, K16Is1024Hosts) {
  sim::Simulator s{1};
  net::FatTreeConfig fc;
  fc.k = 16;
  net::FatTree ft{{&s}, fc};
  EXPECT_EQ(ft.num_hosts(), 1024);
  EXPECT_EQ(ft.num_leaves(), 128);
  EXPECT_EQ(ft.num_cores(), 64);
  // Inter-pod leaf pairs see all (k/2)^2 = 64 core paths.
  EXPECT_EQ(ft.paths_between_leaves(0, 127).size(), 64u);
}

TEST(FatTree, ShardPlanKeepsPodsAtomic) {
  sim::Simulator s0{1};
  sim::Simulator s1{2};
  net::FatTreeConfig fc;
  fc.k = 4;
  net::FatTree ft{{&s0, &s1}, fc};
  EXPECT_EQ(ft.num_shards(), 2);
  for (int h = 0; h < ft.num_hosts(); ++h) {
    EXPECT_EQ(ft.shard_of_host(h), ft.shard_of_leaf(ft.leaf_of(h)));
    EXPECT_EQ(ft.shard_of_leaf(ft.leaf_of(h)), ft.pod_of_leaf(ft.leaf_of(h)) % 2);
  }
  EXPECT_EQ(ft.leaves_of_shard(0), (std::vector<int>{0, 1, 4, 5}));
  EXPECT_EQ(ft.leaves_of_shard(1), (std::vector<int>{2, 3, 6, 7}));
}

// --- sharded runs ------------------------------------------------------

harness::ShardedScenarioConfig base_config(harness::Scheme scheme, int shards,
                                           unsigned threads) {
  harness::ShardedScenarioConfig cfg;
  cfg.fabric.k = 4;
  cfg.scheme = scheme;
  cfg.seed = 7;
  cfg.max_sim_time = sim::sec(2);
  cfg.num_shards = shards;
  cfg.threads = threads;
  return cfg;
}

std::vector<transport::FlowSpec> test_traffic(const net::Fabric& fabric, int num_flows = 60) {
  workload::TrafficConfig tc;
  tc.load = 0.4;
  tc.num_flows = num_flows;
  tc.seed = 7;
  return workload::generate_poisson_traffic(fabric, workload::SizeDist::web_search(), tc);
}

std::string run_sharded_csv(harness::ShardedScenarioConfig cfg,
                            const std::string& trace_path = "") {
  harness::ShardedScenario s{cfg};
  s.add_flows(test_traffic(s.fabric()));
  const stats::FctCollector fct = s.run();
  if (!trace_path.empty()) {
    EXPECT_TRUE(s.dump_trace(trace_path));
  }
  return stats::to_csv(fct);
}

TEST(Sharded, SingleShardCompletesAllFlows) {
  harness::ShardedScenario s{base_config(harness::Scheme::kEcmp, 1, 1)};
  s.add_flows(test_traffic(s.fabric()));
  const auto fct = s.run();
  EXPECT_EQ(fct.total_flows(), 60u);
  EXPECT_EQ(fct.unfinished_flows(), 0u);
  EXPECT_EQ(s.fabric().boundary_packets(), 0u) << "one shard => no mailbox traffic";
}

TEST(Sharded, FourShardsCompleteAllFlowsAndUseMailboxes) {
  harness::ShardedScenario s{base_config(harness::Scheme::kEcmp, 4, 2)};
  s.add_flows(test_traffic(s.fabric()));
  const auto fct = s.run();
  EXPECT_EQ(fct.total_flows(), 60u);
  EXPECT_EQ(fct.unfinished_flows(), 0u);
  EXPECT_GT(s.fabric().boundary_packets(), 0u) << "inter-pod flows must cross shards";
  EXPECT_GT(s.executor_stats().rounds, 0u);
  EXPECT_EQ(s.threads_used(), 2u);
}

TEST(Sharded, ThreadCountIsInvisible_Ecmp) {
  const std::string t1 = run_sharded_csv(base_config(harness::Scheme::kEcmp, 4, 1));
  const std::string t2 = run_sharded_csv(base_config(harness::Scheme::kEcmp, 4, 2));
  const std::string t4 = run_sharded_csv(base_config(harness::Scheme::kEcmp, 4, 4));
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
}

TEST(Sharded, ThreadCountIsInvisible_Hermes) {
  const std::string t1 = run_sharded_csv(base_config(harness::Scheme::kHermes, 4, 1));
  const std::string t2 = run_sharded_csv(base_config(harness::Scheme::kHermes, 4, 2));
  EXPECT_EQ(t1, t2);
}

TEST(Sharded, ThreadCountIsInvisible_ObsOnWithMergedTrace) {
  auto cfg = base_config(harness::Scheme::kHermes, 4, 1);
  cfg.obs.enabled = true;
  const std::string p1 = "sharded_t1.htrc";
  const std::string p2 = "sharded_t2.htrc";
  const std::string t1 = run_sharded_csv(cfg, p1);
  cfg.threads = 2;
  const std::string t2 = run_sharded_csv(cfg, p2);
  EXPECT_EQ(t1, t2);

  // The merged (time, shard)-sorted trace must be byte-identical too.
  const std::string b1 = file_bytes(p1);
  const std::string b2 = file_bytes(p2);
  ASSERT_FALSE(b1.empty());
  EXPECT_EQ(fnv1a64(b1), fnv1a64(b2)) << "merged trace bytes differ across thread counts";
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Sharded, ObservabilityOnDoesNotPerturbResults) {
  auto cfg = base_config(harness::Scheme::kHermes, 4, 2);
  const std::string off = run_sharded_csv(cfg);
  cfg.obs.enabled = true;
  const std::string on = run_sharded_csv(cfg);
  EXPECT_EQ(off, on);
}

TEST(Sharded, FaultTrainIsThreadCountInvisible) {
  auto cfg = base_config(harness::Scheme::kHermes, 4, 1);
  // Faults across both tiers and several owner shards: a core drop flap,
  // an edge uplink flap, and a transient blackhole on another core.
  cfg.fault_plan.flap_random_drop(sim::msec(5), 1, 0.05, sim::msec(20), 3);
  cfg.fault_plan.flap_link(sim::msec(10), 2, 0, sim::msec(30), 2);
  cfg.fault_plan.transient_blackhole(sim::msec(8), sim::msec(60), 2,
                                     faults::rack_pair_blackhole(2, 0, 2));
  const std::string t1 = run_sharded_csv(cfg);
  cfg.threads = 2;
  const std::string t2 = run_sharded_csv(cfg);
  EXPECT_EQ(t1, t2);

  harness::ShardedScenario s{cfg};
  s.add_flows(test_traffic(s.fabric()));
  (void)s.run();
  EXPECT_GT(metric_value(s.metrics().snapshot_text(), "faults.applied"), 0.0);
}

// Golden pin for the sharded configuration itself (k=4, 4 shards, seed
// 7): the serial golden in determinism_test.cpp pins the single-sim
// path; this one pins the sharded event order, so an accidental change
// to mailbox ordering, horizon math, or per-shard seeding shows up as a
// hash mismatch even when T=1 vs T=N still agree with each other. If an
// intentional behaviour change shifts it, re-record and say so in the
// commit message.
constexpr std::uint64_t kShardedGoldenHash = 0x070d2bf6e0098518ull;

TEST(Sharded, GoldenHashPinned) {
  const std::string ecmp = run_sharded_csv(base_config(harness::Scheme::kEcmp, 4, 2));
  const std::string hermes = run_sharded_csv(base_config(harness::Scheme::kHermes, 4, 2));
  EXPECT_EQ(fnv1a64(ecmp + hermes), kShardedGoldenHash)
      << "fixed-seed sharded FCT output changed (" << (ecmp.size() + hermes.size())
      << " bytes) — mailbox/horizon ordering regression, or an intentional "
         "change that must re-record this hash";
}

TEST(Sharded, ShardingMetricsAreRegistered) {
  harness::ShardedScenario s{base_config(harness::Scheme::kEcmp, 4, 2)};
  s.add_flows(test_traffic(s.fabric(), 20));
  (void)s.run();
  const std::string snap = s.metrics().snapshot_text();
  EXPECT_EQ(metric_value(snap, "sharding.shards"), 4.0);
  EXPECT_GT(metric_value(snap, "sharding.rounds"), 0.0);
  EXPECT_GT(metric_value(snap, "sharding.boundary_packets"), 0.0);
  EXPECT_GT(metric_value(snap, "sharding.shard0.events"), 0.0);
}

}  // namespace
}  // namespace hermes
