// Tests for the zero-alloc packet pipeline building blocks: SlotArena
// handle lifecycle (reuse, generation safety, address stability), the
// SoA PacketRing/WireRing queues against a deque reference model, the
// Route::push bounds guard, and equal-time FIFO delivery under the
// port's batched wire drain.

#include <cstdint>
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "hermes/net/packet.hpp"
#include "hermes/net/packet_arena.hpp"
#include "hermes/net/packet_ring.hpp"
#include "hermes/net/port.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/sim/slot_arena.hpp"

namespace hermes {
namespace {

using sim::ArenaHandle;
using sim::usec;

// --- SlotArena --------------------------------------------------------------

TEST(SlotArenaTest, AllocStoresAndAccesses) {
  sim::SlotArena<int> arena;
  const auto h = arena.alloc(42);
  EXPECT_TRUE(arena.valid(h));
  EXPECT_EQ(arena[h], 42);
  EXPECT_EQ(arena.live(), 1u);
  arena.free(h);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(SlotArenaTest, FreedSlotIsReusedLifo) {
  sim::SlotArena<int> arena;
  const auto a = arena.alloc(1);
  const auto b = arena.alloc(2);
  (void)arena.alloc(3);
  arena.free(b);
  // LIFO free-list: the next alloc must reuse b's slot (with a new gen).
  const auto d = arena.alloc(4);
  EXPECT_EQ(d.slot(), b.slot());
  EXPECT_NE(d.gen(), b.gen());
  EXPECT_EQ(arena[d], 4);
  EXPECT_EQ(arena[a], 1);
}

TEST(SlotArenaTest, StaleHandleStopsValidatingAfterFree) {
  sim::SlotArena<std::string> arena;
  const auto h = arena.alloc(std::string{"live"});
  EXPECT_TRUE(arena.valid(h));
  arena.free(h);
  EXPECT_FALSE(arena.valid(h));
  EXPECT_EQ(arena.get(h), nullptr);
  // Reusing the slot revives the slot, not the old handle.
  const auto h2 = arena.alloc(std::string{"reused"});
  EXPECT_EQ(h2.slot(), h.slot());
  EXPECT_TRUE(arena.valid(h2));
  EXPECT_FALSE(arena.valid(h));
  EXPECT_EQ(*arena.get(h2), "reused");
}

TEST(SlotArenaTest, NullHandleNeverValidates) {
  sim::SlotArena<int> arena;
  ArenaHandle null;
  EXPECT_FALSE(static_cast<bool>(null));
  EXPECT_FALSE(arena.valid(null));
  EXPECT_EQ(arena.get(null), nullptr);
}

TEST(SlotArenaTest, AddressesStableAcrossGrowth) {
  sim::SlotArena<std::uint64_t> arena;
  const auto first = arena.alloc(0xABCDull);
  std::uint64_t* addr = &arena[first];
  // Force several chunk growths; chunked storage must never relocate.
  std::vector<ArenaHandle> handles;
  for (std::uint64_t i = 0; i < 5000; ++i) handles.push_back(arena.alloc(std::uint64_t{i}));
  EXPECT_EQ(&arena[first], addr);
  EXPECT_EQ(arena[first], 0xABCDull);
  EXPECT_GE(arena.capacity(), 5001u);
  for (std::uint64_t i = 0; i < handles.size(); ++i) EXPECT_EQ(arena[handles[i]], i);
}

TEST(SlotArenaTest, SlotSequenceIsDeterministic) {
  // Two arenas fed the identical alloc/free sequence hand out identical
  // slot numbers — the property serial-vs-parallel determinism rests on.
  auto run = [] {
    sim::SlotArena<int> arena;
    std::vector<std::uint32_t> slots;
    std::vector<ArenaHandle> live;
    std::uint64_t lcg = 99;
    for (int i = 0; i < 2000; ++i) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      if (!live.empty() && (lcg >> 33) % 3 == 0) {
        arena.free(live.back());
        live.pop_back();
      } else {
        live.push_back(arena.alloc(static_cast<int>(i)));
        slots.push_back(live.back().slot());
      }
    }
    return slots;
  };
  EXPECT_EQ(run(), run());
}

// --- PacketRing / WireRing --------------------------------------------------

TEST(PacketRingTest, FifoOrderPreservedAcrossGrowth) {
  net::PacketRing ring;
  for (std::uint32_t i = 0; i < 200; ++i) ring.push(ArenaHandle{i, 0}, i * 10);
  EXPECT_EQ(ring.size(), 200u);
  for (std::uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(ring.front_handle().slot(), i);
    EXPECT_EQ(ring.front_bytes(), i * 10);
    ring.pop();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(PacketRingTest, MatchesDequeReferenceUnderChurn) {
  // Randomized push/pop interleaving (deterministic LCG) against a
  // std::deque reference: same front, same size, at every step — the
  // wraparound and re-linearizing growth must be invisible.
  net::PacketRing ring;
  std::deque<std::pair<std::uint32_t, std::uint32_t>> ref;
  std::uint64_t lcg = 7;
  std::uint32_t next = 0;
  for (int step = 0; step < 20'000; ++step) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    if (ref.empty() || (lcg >> 33) % 5 < 3) {
      ring.push(ArenaHandle{next, 0}, next * 3);
      ref.emplace_back(next, next * 3);
      ++next;
    } else {
      EXPECT_EQ(ring.front_handle().slot(), ref.front().first);
      EXPECT_EQ(ring.front_bytes(), ref.front().second);
      ring.pop();
      ref.pop_front();
    }
    EXPECT_EQ(ring.size(), ref.size());
  }
}

TEST(WireRingTest, TotalBytesTracksQueuedEntries) {
  net::WireRing wire;
  EXPECT_EQ(wire.total_bytes(), 0u);
  wire.push(ArenaHandle{0, 0}, 1500, usec(1));
  wire.push(ArenaHandle{1, 0}, 64, usec(2));
  wire.push(ArenaHandle{2, 0}, 1500, usec(3));
  EXPECT_EQ(wire.total_bytes(), 3064u);
  EXPECT_EQ(wire.front_due(), usec(1));
  wire.pop();
  EXPECT_EQ(wire.total_bytes(), 1564u);
  wire.pop();
  wire.pop();
  EXPECT_TRUE(wire.empty());
  EXPECT_EQ(wire.total_bytes(), 0u);
}

// --- Route bounds guard -----------------------------------------------------

TEST(RouteGuardTest, PushWithinCapacityWorks) {
  net::Route r;
  for (std::uint8_t i = 0; i < net::kMaxRouteHops; ++i) r.push(i);
  EXPECT_EQ(r.len, net::kMaxRouteHops);
  for (std::uint8_t i = 0; i < net::kMaxRouteHops; ++i) EXPECT_EQ(r.ports[i], i);
}

TEST(RouteGuardDeathTest, PushPastCapacityAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  net::Route r;
  for (std::uint8_t i = 0; i < net::kMaxRouteHops; ++i) r.push(i);
  // The 7th hop used to scribble past the fixed array; now it is a hard
  // error in every build mode, not just a debug assert.
  EXPECT_DEATH(r.push(99), "Route::push past");
}

// --- batched wire delivery --------------------------------------------------

class OrderSink : public net::Device {
 public:
  explicit OrderSink(net::PacketArena& arena, sim::Simulator& simulator)
      : arena_{arena}, simulator_{simulator} {}
  void receive(net::PacketHandle h, int) override {
    ids.push_back(arena_[h].id);
    times.push_back(simulator_.now());
    arena_.free(h);
  }
  std::vector<std::uint64_t> ids;
  std::vector<sim::SimTime> times;

 private:
  net::PacketArena& arena_;
  sim::Simulator& simulator_;
};

TEST(BatchedDeliveryTest, EqualTimeDeliveriesKeepFifoOrder) {
  // A link so fast that serialization rounds to zero: every packet sent
  // at t0 becomes due at exactly t0 + prop_delay. The coalesced drain
  // must deliver all of them in one firing, in send (FIFO) order.
  sim::Simulator simulator{1};
  net::PacketArena arena;
  OrderSink sink{arena, simulator};
  net::PortConfig c;
  c.rate_bps = 1e15;
  c.prop_delay = usec(2);
  net::Port port{simulator, arena, "fast", c, &sink, 0};
  for (std::uint64_t i = 1; i <= 5; ++i) {
    net::Packet p;
    p.id = i;
    p.size = 1500;
    port.send(std::move(p));
  }
  simulator.run();
  ASSERT_EQ(sink.ids.size(), 5u);
  EXPECT_EQ(sink.ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  for (const auto t : sink.times) EXPECT_EQ(t, usec(2));
  EXPECT_EQ(arena.live(), 0u);  // every slot returned after delivery
}

TEST(BatchedDeliveryTest, DistinctDueTimesDeliverSeparately) {
  // Normal-rate link: dues strictly increase, so each packet arrives at
  // its own serialization-spaced instant — batching must not lump them.
  sim::Simulator simulator{1};
  net::PacketArena arena;
  OrderSink sink{arena, simulator};
  net::PortConfig c;
  c.rate_bps = 1e9;  // 12us per 1500B
  c.prop_delay = usec(2);
  net::Port port{simulator, arena, "slow", c, &sink, 0};
  for (std::uint64_t i = 1; i <= 3; ++i) {
    net::Packet p;
    p.id = i;
    p.size = 1500;
    port.send(std::move(p));
  }
  simulator.run();
  ASSERT_EQ(sink.times.size(), 3u);
  EXPECT_EQ(sink.times[0], usec(14));
  EXPECT_EQ(sink.times[1], usec(26));
  EXPECT_EQ(sink.times[2], usec(38));
  EXPECT_EQ(arena.live(), 0u);
}

TEST(BatchedDeliveryTest, DropFreesArenaSlot) {
  // Queue-overflow drops must return their slots: a leaked slot would
  // pin arena growth and break the live() accounting the tests above
  // rely on.
  sim::Simulator simulator{1};
  net::PacketArena arena;
  OrderSink sink{arena, simulator};
  net::PortConfig c;
  c.rate_bps = 1e9;
  c.prop_delay = usec(2);
  c.queue_capacity_bytes = 3'000;
  net::Port port{simulator, arena, "tiny", c, &sink, 0};
  for (std::uint64_t i = 1; i <= 10; ++i) {
    net::Packet p;
    p.id = i;
    p.size = 1500;
    port.send(std::move(p));
  }
  simulator.run();
  EXPECT_GT(port.stats().drops, 0u);
  EXPECT_EQ(sink.ids.size(), 10u - port.stats().drops);
  EXPECT_EQ(arena.live(), 0u);
}

}  // namespace
}  // namespace hermes
