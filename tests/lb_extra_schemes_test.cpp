// Unit tests for the additional Table 1 baselines: FlowBender (blind
// flow-level rehashing on congestion) and DRILL (switch-local
// power-of-d-choices per packet).

#include <cstdint>
#include <gtest/gtest.h>

#include <set>

#include "hermes/harness/scenario.hpp"
#include "hermes/lb/drill.hpp"
#include "hermes/lb/flowbender.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/workload/flow_gen.hpp"

namespace hermes::lb {
namespace {

using sim::usec;

net::TopologyConfig topo4() {
  net::TopologyConfig c;
  c.num_leaves = 2;
  c.num_spines = 4;
  c.hosts_per_leaf = 2;
  return c;
}

FlowCtx make_flow(const net::Topology& topo, std::uint64_t id, int src, int dst) {
  FlowCtx f;
  f.flow_id = id;
  f.src = src;
  f.dst = dst;
  f.src_leaf = topo.leaf_of(src);
  f.dst_leaf = topo.leaf_of(dst);
  return f;
}

net::Packet ack_packet(bool ece) {
  net::Packet a;
  a.type = net::PacketType::kAck;
  a.ece = ece;
  return a;
}

TEST(FlowBender, StableWithoutCongestion) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  FlowBenderLb lb{simulator, topo};
  auto f = make_flow(topo, 9, 0, 2);
  const int first = lb.select_path(f, net::Packet{});
  for (int i = 0; i < 100; ++i) {
    simulator.run_until(simulator.now() + usec(50));
    lb.on_ack(f, ack_packet(false));
    EXPECT_EQ(lb.select_path(f, net::Packet{}), first);
  }
  EXPECT_EQ(lb.bends(9), 0u);
}

TEST(FlowBender, BendsWhenMarkFractionHigh) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  FlowBenderLb lb{simulator, topo, {.mark_threshold = 0.05, .epoch = usec(200)}};
  auto f = make_flow(topo, 9, 0, 2);
  std::set<int> seen{lb.select_path(f, net::Packet{})};
  for (int i = 0; i < 40; ++i) {
    simulator.run_until(simulator.now() + usec(50));
    lb.on_ack(f, ack_packet(true));  // 100% marked
    seen.insert(lb.select_path(f, net::Packet{}));
  }
  EXPECT_GE(lb.bends(9), 2u);
  // Bending rehashes; across several bends the flow must have moved
  // (a single rehash may collide with the original path by chance).
  EXPECT_GT(seen.size(), 1u);
}

TEST(FlowBender, SubThresholdMarksDoNotBend) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  FlowBenderLb lb{simulator, topo, {.mark_threshold = 0.5, .epoch = usec(200)}};
  auto f = make_flow(topo, 9, 0, 2);
  (void)lb.select_path(f, net::Packet{});
  for (int i = 0; i < 40; ++i) {
    simulator.run_until(simulator.now() + usec(50));
    lb.on_ack(f, ack_packet(i % 4 == 0));  // 25% < 50%
  }
  EXPECT_EQ(lb.bends(9), 0u);
}

TEST(FlowBender, TimeoutBends) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  FlowBenderLb lb{simulator, topo};
  auto f = make_flow(topo, 9, 0, 2);
  const int first = lb.select_path(f, net::Packet{});
  f.timeout_pending = true;  // as the transport would set on RTO
  const int after = lb.select_path(f, net::Packet{});
  EXPECT_FALSE(f.timeout_pending);  // consumed
  EXPECT_NE(after, first);
  EXPECT_EQ(lb.bends(9), 1u);
}

TEST(FlowBender, RehashReachesAllPaths) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  FlowBenderLb lb{simulator, topo};
  auto f = make_flow(topo, 9, 0, 2);
  std::set<int> seen;
  for (int i = 0; i < 40; ++i) {
    seen.insert(lb.select_path(f, net::Packet{}));
    f.timeout_pending = true;
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Drill, PicksEmptierUplink) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  DrillLb lb{simulator, topo, {.samples = 4}};  // samples >= paths: exhaustive
  // Stuff packets into the uplink toward spine 2 so its backlog is big.
  auto& busy = topo.leaf_uplink(0, 2);
  for (int i = 0; i < 50; ++i) {
    net::Packet p;
    p.size = 1500;
    p.route.push(0);
    busy.send(std::move(p));
  }
  auto f = make_flow(topo, 1, 0, 2);
  for (int i = 0; i < 20; ++i) {
    const int chosen = lb.select_path(f, net::Packet{});
    EXPECT_NE(topo.path(chosen).spine, 2);
  }
}

TEST(Drill, RemembersBestQueue) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo4()};
  DrillLb lb{simulator, topo, {.samples = 1}};
  auto f = make_flow(topo, 1, 0, 2);
  // All queues empty: with memory, consecutive picks should not thrash
  // randomly across all 4 paths — the remembered queue ties and wins
  // unless a sampled one is strictly shorter.
  const int first = lb.select_path(f, net::Packet{});
  int same = 0;
  for (int i = 0; i < 50; ++i) same += lb.select_path(f, net::Packet{}) == first ? 1 : 0;
  EXPECT_GT(same, 40);
}

TEST(ExtraSchemes, EndToEndRunsComplete) {
  for (auto scheme : {harness::Scheme::kFlowBender, harness::Scheme::kDrill}) {
    harness::ScenarioConfig cfg;
    cfg.topo = topo4();
    cfg.scheme = scheme;
    harness::Scenario s{cfg};
    workload::TrafficConfig tc{.load = 0.5, .num_flows = 150, .seed = 2};
    s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                   workload::SizeDist::web_search(), tc));
    auto fct = s.run();
    EXPECT_EQ(fct.unfinished_flows(), 0u) << harness::to_string(scheme);
  }
}

}  // namespace
}  // namespace hermes::lb
