// Tests for the ParallelRunner sweep executor: full index coverage,
// index-ordered map results, exception propagation, thread-count
// selection, and concurrent Scenario cells producing the same bytes as
// serial ones. This file is the target of the TSan configuration
// (HERMES_SANITIZE=thread): Scenario instances must share no mutable
// state, and the runner itself must be race-free.

#include <cstddef>
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "hermes/harness/parallel_runner.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/stats/csv.hpp"
#include "hermes/workload/flow_gen.hpp"
#include "hermes/workload/size_dist.hpp"

namespace hermes::harness {
namespace {

TEST(ParallelRunner, CoversEveryIndexExactlyOnce) {
  const ParallelRunner runner{4};
  std::vector<std::atomic<int>> counts(1000);
  runner.for_each_index(counts.size(),
                        [&](std::size_t i) { counts[i].fetch_add(1, std::memory_order_relaxed); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelRunner, MapReturnsIndexOrderedResults) {
  const ParallelRunner runner{3};
  const auto out =
      runner.map<std::size_t>(257, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, PropagatesFirstException) {
  for (const unsigned threads : {1u, 4u}) {
    const ParallelRunner runner{threads};
    EXPECT_THROW(runner.for_each_index(100,
                                       [](std::size_t i) {
                                         if (i == 37) throw std::runtime_error{"cell failed"};
                                       }),
                 std::runtime_error);
  }
}

TEST(ParallelRunner, ZeroItemsIsANoop) {
  const ParallelRunner runner{4};
  bool ran = false;
  runner.for_each_index(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelRunner, ThreadSelection) {
  EXPECT_EQ(ParallelRunner{7}.threads(), 7u);
  ASSERT_EQ(setenv("HERMES_THREADS", "3", 1), 0);
  EXPECT_EQ(ParallelRunner::default_threads(), 3u);
  EXPECT_EQ(ParallelRunner{}.threads(), 3u);
  ASSERT_EQ(unsetenv("HERMES_THREADS"), 0);
  EXPECT_GE(ParallelRunner::default_threads(), 1u);
}

// The real use: independent Scenario cells running concurrently. Run a
// small sweep twice — serial and on four threads — and require the
// per-flow CSVs to be byte-identical (each cell owns its EventQueue,
// Topology and RNG streams; nothing is shared).
TEST(ParallelRunner, ConcurrentScenarioCellsMatchSerial) {
  const auto run_cell = [](std::size_t i) {
    ScenarioConfig cfg;
    cfg.topo.num_leaves = 2;
    cfg.topo.num_spines = 2;
    cfg.topo.hosts_per_leaf = 4;
    cfg.scheme = i % 2 == 0 ? Scheme::kEcmp : Scheme::kHermes;
    cfg.seed = 11 + i;
    cfg.max_sim_time = sim::sec(2);
    Scenario s{cfg};
    workload::TrafficConfig tc;
    tc.load = 0.4 + 0.1 * static_cast<double>(i % 3);
    tc.num_flows = 30;
    tc.seed = 11 + i;
    s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                   workload::SizeDist::web_search(), tc));
    return stats::to_csv(s.run());
  };

  std::vector<std::string> serial;
  serial.reserve(6);
  for (std::size_t i = 0; i < 6; ++i) serial.push_back(run_cell(i));

  const ParallelRunner runner{4};
  const auto parallel = runner.map<std::string>(6, run_cell);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(parallel[i], serial[i]);
}

}  // namespace
}  // namespace hermes::harness
