// Tests for the library extensions: WCMP, CSV export, the packet-event
// TraceLog, and shared-buffer (Dynamic Threshold) switches.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>

#include <map>

#include "hermes/harness/scenario.hpp"
#include "hermes/lb/wcmp.hpp"
#include "hermes/net/buffer_pool.hpp"
#include "hermes/net/trace_log.hpp"
#include "hermes/stats/csv.hpp"
#include "hermes/workload/flow_gen.hpp"

namespace hermes {
namespace {

using sim::msec;
using sim::usec;

// --- WCMP -----------------------------------------------------------------

TEST(Wcmp, StablePerFlow) {
  sim::Simulator simulator{1};
  net::TopologyConfig tc;
  tc.num_leaves = 2;
  tc.num_spines = 4;
  tc.hosts_per_leaf = 2;
  net::Topology topo{simulator, tc};
  lb::WcmpLb lb{topo};
  lb::FlowCtx f;
  f.flow_id = 3;
  f.src = 0;
  f.dst = 2;
  f.src_leaf = 0;
  f.dst_leaf = 1;
  const int first = lb.select_path(f, net::Packet{});
  for (int i = 0; i < 30; ++i) EXPECT_EQ(lb.select_path(f, net::Packet{}), first);
}

TEST(Wcmp, SplitsProportionallyToCapacity) {
  sim::Simulator simulator{1};
  net::TopologyConfig tc;
  tc.num_leaves = 2;
  tc.num_spines = 2;
  tc.hosts_per_leaf = 2;
  tc.fabric_overrides[{0, 0, 0}] = 2e9;  // path 0 is 2G, path 1 is 10G
  tc.fabric_overrides[{1, 0, 0}] = 2e9;
  net::Topology topo{simulator, tc};
  lb::WcmpLb lb{topo};
  std::map<int, int> counts;
  const int n = 30'000;
  for (int i = 0; i < n; ++i) {
    lb::FlowCtx f;
    f.flow_id = static_cast<std::uint64_t>(i);
    f.src = 0;
    f.dst = 2;
    f.src_leaf = 0;
    f.dst_leaf = 1;
    ++counts[topo.path(lb.select_path(f, net::Packet{})).local_index];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 2.0 / 12.0, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 10.0 / 12.0, 0.01);
}

TEST(Wcmp, EqualCapacitiesBehaveLikeEcmp) {
  sim::Simulator simulator{1};
  net::TopologyConfig tc;
  tc.num_leaves = 2;
  tc.num_spines = 4;
  tc.hosts_per_leaf = 2;
  net::Topology topo{simulator, tc};
  lb::WcmpLb lb{topo};
  std::map<int, int> counts;
  const int n = 40'000;
  for (int i = 0; i < n; ++i) {
    lb::FlowCtx f;
    f.flow_id = static_cast<std::uint64_t>(i);
    f.src = 0;
    f.dst = 2;
    f.src_leaf = 0;
    f.dst_leaf = 1;
    ++counts[lb.select_path(f, net::Packet{})];
  }
  for (const auto& [path, c] : counts)
    EXPECT_NEAR(c / static_cast<double>(n), 0.25, 0.01);
}

TEST(Wcmp, EndToEndAsymmetricBeatsEcmp) {
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 4;
  cfg.topo.hosts_per_leaf = 4;
  cfg.topo.fabric_overrides[{0, 0, 0}] = 2e9;
  cfg.topo.fabric_overrides[{1, 0, 0}] = 2e9;
  auto run = [&](harness::Scheme scheme) {
    auto c = cfg;
    c.scheme = scheme;
    harness::Scenario s{c};
    workload::TrafficConfig tcfg{.load = 0.6, .num_flows = 250, .seed = 6};
    s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                   workload::SizeDist::web_search(), tcfg));
    return s.run().overall().mean_us;
  };
  EXPECT_LT(run(harness::Scheme::kWcmp), run(harness::Scheme::kEcmp));
}

// --- CSV ------------------------------------------------------------------

TEST(Csv, PerFlowTable) {
  stats::FctCollector c;
  transport::FlowRecord r;
  r.id = 7;
  r.size = 1000;
  r.start = usec(5);
  r.end = usec(105);
  r.finished = true;
  r.timeouts = 1;
  r.reroutes = 2;
  c.add(r);
  const std::string csv = stats::to_csv(c);
  EXPECT_NE(csv.find("id,size_bytes"), std::string::npos);
  EXPECT_NE(csv.find("7,1000,5.000,100.000,1,1,"), std::string::npos);
  // header + 1 row = 2 lines
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(Csv, SummaryRow) {
  stats::FctSummary s;
  s.count = 3;
  s.mean_us = 10.5;
  s.p99_us = 20.25;
  const auto row = stats::summary_csv_row("all", s);
  EXPECT_NE(row.find("all,3,10.500"), std::string::npos);
  EXPECT_NE(row.find("20.250"), std::string::npos);
}

TEST(Csv, WriteFileRoundTrip) {
  const std::string path = "/tmp/hermes_csv_test.csv";
  ASSERT_TRUE(stats::write_file(path, "a,b\n1,2\n"));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  EXPECT_STREQ(buf, "a,b\n1,2\n");
  std::remove(path.c_str());
}

// --- TraceLog ---------------------------------------------------------------

TEST(TraceLogTest, RecordsLifecycleOfEveryPacket) {
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 2;
  cfg.topo.num_spines = 1;
  cfg.topo.hosts_per_leaf = 1;
  harness::Scenario s{cfg};
  net::TraceLog log;
  log.attach(s.topology().host(0).nic());
  const auto id = s.add_flow(0, 1, 100'000, usec(0));
  s.run();
  // Every data packet was enqueued and transmitted at the NIC.
  EXPECT_EQ(log.count(net::TraceEvent::kEnqueue), log.count(net::TraceEvent::kTransmit));
  EXPECT_GE(log.count(net::TraceEvent::kEnqueue), 100'000u / 1460u);
  EXPECT_EQ(log.count(net::TraceEvent::kDrop), 0u);
  const auto mine = log.entries_for_flow(id);
  EXPECT_EQ(mine.size(), log.entries().size());  // only this flow ran
  // Timestamps are nondecreasing.
  for (std::size_t i = 1; i < mine.size(); ++i) EXPECT_GE(mine[i].time, mine[i - 1].time);
}

TEST(TraceLogTest, DropsAreRecorded) {
  sim::Simulator simulator{1};
  net::PortConfig pc;
  pc.rate_bps = 1e9;
  pc.queue_capacity_bytes = 3'000;
  net::PacketArena arena;
  class NullDev : public net::Device {
   public:
    explicit NullDev(net::PacketArena& a) : arena_{a} {}
    void receive(net::PacketHandle h, int) override { arena_.free(h); }

   private:
    net::PacketArena& arena_;
  } dev{arena};
  net::Port port{simulator, arena, "p", pc, &dev, 0};
  net::TraceLog log;
  log.attach(port);
  for (int i = 0; i < 10; ++i) {
    net::Packet p;
    p.size = 1500;
    port.send(std::move(p));
  }
  simulator.run();
  EXPECT_GT(log.count(net::TraceEvent::kDrop), 0u);
  EXPECT_EQ(log.count(net::TraceEvent::kDrop) + log.count(net::TraceEvent::kEnqueue), 10u);
}

TEST(TraceLogTest, TextRenderingContainsEvents) {
  sim::Simulator simulator{1};
  net::PortConfig pc;
  net::PacketArena arena;
  class NullDev : public net::Device {
   public:
    explicit NullDev(net::PacketArena& a) : arena_{a} {}
    void receive(net::PacketHandle h, int) override { arena_.free(h); }

   private:
    net::PacketArena& arena_;
  } dev{arena};
  net::Port port{simulator, arena, "leaf9:p3", pc, &dev, 0};
  net::TraceLog log;
  log.attach(port);
  net::Packet p;
  p.id = 42;
  p.flow_id = 9;
  p.size = 1500;
  port.send(std::move(p));
  simulator.run();
  const auto text = log.to_text();
  EXPECT_NE(text.find("ENQ"), std::string::npos);
  EXPECT_NE(text.find("leaf9:p3"), std::string::npos);
  EXPECT_NE(text.find("pkt=42"), std::string::npos);
}

// --- Dynamic Threshold shared buffer ---------------------------------------

TEST(DynamicThreshold, AdmitsUpToAlphaTimesFree) {
  net::DynamicThresholdPool pool{100'000, 1.0};
  // Empty pool: limit = 100KB; a 50KB backlog + 10KB packet fits.
  EXPECT_TRUE(pool.try_admit(10'000, 50'000));
  EXPECT_EQ(pool.used(), 10'000u);
  // Now free = 90KB: a port with 85KB backlog cannot take 10KB more.
  EXPECT_FALSE(pool.try_admit(10'000, 85'000));
}

TEST(DynamicThreshold, ReleaseReturnsCapacity) {
  net::DynamicThresholdPool pool{10'000, 1.0};
  EXPECT_TRUE(pool.try_admit(8'000, 0));
  EXPECT_FALSE(pool.try_admit(8'000, 0));  // only 2KB free, alpha*2K < 8K
  pool.release(8'000);
  EXPECT_TRUE(pool.try_admit(8'000, 0));
}

TEST(DynamicThreshold, SmallAlphaLimitsPerPortShare) {
  net::DynamicThresholdPool pool{100'000, 0.25};
  // limit = 0.25 * 100KB = 25KB for an empty pool.
  EXPECT_TRUE(pool.try_admit(20'000, 0));
  EXPECT_FALSE(pool.try_admit(20'000, 20'000));  // would exceed the share
}

TEST(DynamicThreshold, SharedBufferAbsorbsIncastBetterThanStatic) {
  auto run = [](bool shared) {
    harness::ScenarioConfig cfg;
    cfg.topo.num_leaves = 2;
    cfg.topo.num_spines = 2;
    cfg.topo.hosts_per_leaf = 16;
    if (shared) {
      // Same total memory as 20 static ports, pooled.
      cfg.topo.shared_buffer_bytes = 20ull * cfg.topo.queue_bytes_for(10e9);
      cfg.topo.dt_alpha = 1.0;
    }
    harness::Scenario s{cfg};
    // 24-to-1 incast into host 0.
    for (int i = 0; i < 24; ++i) s.add_flow(16 + i % 16, 0, 512 * 1024, sim::usec(0));
    auto fct = s.run();
    return fct;
  };
  auto static_fct = run(false);
  auto shared_fct = run(true);
  EXPECT_EQ(shared_fct.unfinished_flows(), 0u);
  // The pooled buffer absorbs the synchronized burst with fewer (or equal)
  // timeouts and no worse tail.
  EXPECT_LE(shared_fct.total_timeouts(), static_fct.total_timeouts());
}

TEST(DynamicThreshold, TopologyWiresPoolToAllSwitchPorts) {
  sim::Simulator simulator{1};
  net::TopologyConfig tc;
  tc.num_leaves = 2;
  tc.num_spines = 2;
  tc.hosts_per_leaf = 2;
  tc.shared_buffer_bytes = 1 << 20;
  net::Topology topo{simulator, tc};
  EXPECT_NE(topo.leaf(0).shared_buffer(), nullptr);
  EXPECT_NE(topo.spine(1).shared_buffer(), nullptr);
  EXPECT_EQ(topo.leaf(0).shared_buffer()->total(), 1u << 20);
}

}  // namespace
}  // namespace hermes
