// Integration tests: end-to-end scenarios asserting the paper's central
// qualitative claims on small fabrics — asymmetry handling, flowlet
// passivity (Example 1), switch-failure detection, and visibility.

#include <functional>
#include <gtest/gtest.h>
#include <map>

#include "hermes/harness/experiment.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/workload/flow_gen.hpp"

namespace hermes {
namespace {

using harness::Scenario;
using harness::ScenarioConfig;
using harness::Scheme;
using sim::msec;
using sim::usec;

net::TopologyConfig small_fabric() {
  net::TopologyConfig c;
  c.num_leaves = 4;
  c.num_spines = 4;
  c.hosts_per_leaf = 4;
  return c;
}

double mean_fct(Scheme scheme, const net::TopologyConfig& topo, double load, int flows,
                std::function<void(Scenario&)> prepare = nullptr) {
  ScenarioConfig cfg;
  cfg.topo = topo;
  cfg.scheme = scheme;
  Scenario s{cfg};
  if (prepare) prepare(s);
  workload::TrafficConfig tc{.load = load, .num_flows = flows, .seed = 12};
  s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                 workload::SizeDist::web_search(), tc));
  auto fct = s.run();
  return fct.overall_with_unfinished().mean_us;
}

TEST(Integration, HermesBeatsEcmpUnderAsymmetry) {
  auto topo = small_fabric();
  topo.fabric_overrides[{0, 0, 0}] = 2e9;
  topo.fabric_overrides[{1, 2, 0}] = 2e9;
  topo.fabric_overrides[{2, 1, 0}] = 2e9;
  const double ecmp = mean_fct(Scheme::kEcmp, topo, 0.6, 400);
  const double hermes = mean_fct(Scheme::kHermes, topo, 0.6, 400);
  EXPECT_LT(hermes, ecmp * 0.85);  // clearly better, not just noise
}

TEST(Integration, CongestionAwareSchemesBeatEcmpUnderAsymmetry) {
  auto topo = small_fabric();
  topo.fabric_overrides[{0, 0, 0}] = 2e9;
  topo.fabric_overrides[{3, 3, 0}] = 2e9;
  const double ecmp = mean_fct(Scheme::kEcmp, topo, 0.6, 300);
  for (Scheme s : {Scheme::kConga, Scheme::kLetFlow, Scheme::kCloveEcn}) {
    EXPECT_LT(mean_fct(s, topo, 0.6, 300), ecmp) << harness::to_string(s);
  }
}

TEST(Integration, Example1_HermesResolvesLargeFlowCollision) {
  // §2.2.2 Example 1: two large DCTCP flows collide on one path while the
  // other path is idle. DCTCP's smooth cwnd leaves no flowlet gaps, so
  // CONGA cannot move either flow; Hermes senses the congested path and
  // reroutes one flow onto the idle path.
  net::TopologyConfig topo;
  topo.num_leaves = 2;
  topo.num_spines = 2;
  topo.hosts_per_leaf = 2;

  auto run = [&](Scheme scheme) {
    ScenarioConfig cfg;
    cfg.topo = topo;
    cfg.scheme = scheme;
    // Force both flows onto the same initial path by hashing: with ECMP
    // salt/CONGA tie-breaks this is probabilistic, so instead start them
    // together on an idle fabric — both see "all paths equal" and the
    // interesting part is whether anyone ever *leaves* after colliding.
    Scenario s{cfg};
    s.add_flow(0, 2, 30'000'000, usec(0));
    s.add_flow(1, 3, 30'000'000, usec(1));
    auto fct = s.run();
    return fct;
  };

  auto hermes = run(Scheme::kHermes);
  EXPECT_EQ(hermes.unfinished_flows(), 0u);
  // Ideal completion: both large flows on separate paths finish in ~24ms;
  // a persistent collision means ~48ms. Hermes must end up separated
  // (possibly after a reroute), CONGA may or may not depending on hashing;
  // we assert Hermes achieves near-ideal.
  EXPECT_LT(hermes.overall().max_us, 36'000.0);

  auto conga = run(Scheme::kConga);
  EXPECT_LE(hermes.overall().max_us, conga.overall().max_us * 1.1);
}

TEST(Integration, BlackholeEcmpStrandsFlowsHermesEscapes) {
  auto topo = small_fabric();
  auto prepare = [&](Scenario& s) {
    s.topology().spine(0).set_failure(
        {.blackhole =
             [&topo = s.topology()](const net::Packet& p) {
               return p.type == net::PacketType::kData && topo.leaf_of(p.src) == 0 &&
                      topo.leaf_of(p.dst) == 1;
             },
         .random_drop_rate = 0.0});
  };

  ScenarioConfig cfg;
  cfg.topo = topo;
  cfg.scheme = Scheme::kEcmp;
  cfg.max_sim_time = msec(500);
  Scenario ecmp{cfg};
  prepare(ecmp);
  workload::TrafficConfig tc{.load = 0.4, .num_flows = 300, .seed = 4};
  auto flows = workload::generate_poisson_traffic(ecmp.topology(),
                                                  workload::SizeDist::web_search(), tc);
  ecmp.add_flows(flows);
  auto ecmp_fct = ecmp.run();
  EXPECT_GT(ecmp_fct.unfinished_flows(), 0u);  // hashed-to-blackhole flows die

  cfg.scheme = Scheme::kHermes;
  Scenario hermes{cfg};
  prepare(hermes);
  hermes.add_flows(flows);
  auto hermes_fct = hermes.run();
  EXPECT_EQ(hermes_fct.unfinished_flows(), 0u);  // detected after 3 timeouts
}

TEST(Integration, RandomDropDetectedAndAvoided) {
  auto topo = small_fabric();
  ScenarioConfig cfg;
  cfg.topo = topo;
  cfg.scheme = Scheme::kHermes;
  Scenario s{cfg};
  s.topology().spine(2).set_failure({.blackhole = nullptr, .random_drop_rate = 0.04});
  workload::TrafficConfig tc{.load = 0.5, .num_flows = 500, .seed = 9};
  s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                 workload::SizeDist::web_search(), tc));
  auto fct = s.run();
  EXPECT_EQ(fct.unfinished_flows(), 0u);
  int latched = 0;
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b) {
      if (a == b) continue;
      for (int i = 0; i < 4; ++i)
        if (s.hermes()->path_state(a, b, i).failed() &&
            s.topology().paths_between_leaves(a, b)[i].spine == 2)
          ++latched;
    }
  EXPECT_GT(latched, 4);  // a meaningful share of the 12 spine-2 pair-paths
}

TEST(Integration, VisibilitySwitchPairVsHostPair) {
  // Table 2's mechanism: a ToR pair aggregates every flow between two
  // racks, a host pair sees almost none of them.
  ScenarioConfig cfg;
  cfg.topo = small_fabric();
  cfg.scheme = Scheme::kEcmp;
  Scenario s{cfg};
  workload::TrafficConfig tc{.load = 0.7, .num_flows = 600, .seed = 2};
  s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                 workload::SizeDist::web_search(), tc));

  double switch_vis = 0, host_vis = 0;
  int samples = 0;
  const int n_paths = 4;
  for (int i = 1; i <= 40; ++i) {
    s.simulator().at(msec(1) * i, [&] {
      const auto& active = s.active_flows();
      // flows per ordered leaf pair / paths, averaged over pairs.
      std::map<std::pair<int, int>, int> per_leaf_pair;
      std::map<std::pair<int, int>, int> per_host_pair;
      for (const auto& [id, f] : active) {
        ++per_leaf_pair[{s.topology().leaf_of(f.src), s.topology().leaf_of(f.dst)}];
        ++per_host_pair[{f.src, f.dst}];
      }
      double sv = 0;
      for (auto& [k, v] : per_leaf_pair) sv += v;
      switch_vis += sv / (4.0 * 3.0) / n_paths;
      double hv = 0;
      for (auto& [k, v] : per_host_pair) hv += v;
      host_vis += hv / (16.0 * 12.0) / n_paths;
      ++samples;
    });
  }
  auto fct = s.run();
  (void)fct;
  ASSERT_GT(samples, 0);
  switch_vis /= samples;
  host_vis /= samples;
  // Both views count the same flows; the ratio is the number of host
  // pairs per leaf pair = hosts_per_leaf^2 = 16 here (256 in the paper's
  // fabric, matching Table 2's ~5.86 vs ~0.022).
  EXPECT_GT(host_vis, 0.0);
  EXPECT_NEAR(switch_vis / host_vis, 16.0, 0.5);
}

TEST(Integration, HermesTcpModeStillWorks) {
  // §5.4: plain TCP, RTT-only sensing, 1.5x thresholds.
  ScenarioConfig cfg;
  cfg.topo = small_fabric();
  cfg.scheme = Scheme::kHermes;
  cfg.tcp.dctcp = false;
  cfg.hermes.use_ecn = false;
  Scenario s{cfg};
  const auto defaults = lb::HermesConfig::defaults_for(s.topology());
  (void)defaults;
  workload::TrafficConfig tc{.load = 0.5, .num_flows = 300, .seed = 3};
  s.add_flows(workload::generate_poisson_traffic(s.topology(),
                                                 workload::SizeDist::web_search(), tc));
  auto fct = s.run();
  EXPECT_EQ(fct.unfinished_flows(), 0u);
}

TEST(Integration, ProbeOverheadIsSmall) {
  // Table 6: Hermes's probing overhead ~3% of an edge link.
  ScenarioConfig cfg;
  cfg.topo = small_fabric();
  cfg.scheme = Scheme::kHermes;
  Scenario s{cfg};
  s.run_for(msec(50));
  const auto& ps = s.hermes()->probe_stats();
  const double probe_bps = static_cast<double>(ps.probe_bytes) * 8 / 0.050;
  // All probes of a rack agent share one host link; overhead per the
  // paper's definition is probe rate over edge link capacity.
  const double per_rack_bps = probe_bps / 4.0;
  EXPECT_LT(per_rack_bps / 10e9, 0.03);
  EXPECT_GT(ps.replies_received, 0u);
}

}  // namespace
}  // namespace hermes
