// Tests for the harness module: scenario composition, scheme factory,
// run semantics, balancer decoration, traces, and the path-usage
// recorder.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>

#include "hermes/harness/experiment.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/harness/trace.hpp"
#include "hermes/stats/path_usage.hpp"
#include "hermes/workload/flow_gen.hpp"

namespace hermes::harness {
namespace {

using sim::msec;
using sim::usec;

net::TopologyConfig small() {
  net::TopologyConfig c;
  c.num_leaves = 2;
  c.num_spines = 2;
  c.hosts_per_leaf = 2;
  return c;
}

TEST(Scenario, BuildsEverySchemeAndRunsAFlow) {
  for (Scheme scheme :
       {Scheme::kEcmp, Scheme::kDrb, Scheme::kPrestoStar, Scheme::kLetFlow, Scheme::kConga,
        Scheme::kCloveEcn, Scheme::kHermes, Scheme::kFlowBender, Scheme::kDrill, Scheme::kWcmp}) {
    ScenarioConfig cfg;
    cfg.topo = small();
    cfg.scheme = scheme;
    Scenario s{cfg};
    s.add_flow(0, 2, 500'000, usec(0));
    auto fct = s.run();
    EXPECT_EQ(fct.unfinished_flows(), 0u) << to_string(scheme);
    EXPECT_EQ(fct.total_flows(), 1u);
  }
}

TEST(Scenario, HermesAccessorOnlyForHermes) {
  ScenarioConfig cfg;
  cfg.topo = small();
  cfg.scheme = Scheme::kEcmp;
  Scenario e{cfg};
  EXPECT_EQ(e.hermes(), nullptr);
  cfg.scheme = Scheme::kHermes;
  Scenario h{cfg};
  EXPECT_NE(h.hermes(), nullptr);
}

TEST(Scenario, HermesThresholdsDerivedFromTopology) {
  ScenarioConfig cfg;
  cfg.topo = small();
  cfg.scheme = Scheme::kHermes;
  Scenario s{cfg};
  const auto& hc = s.hermes()->config();
  EXPECT_GT(hc.t_rtt_low, sim::SimTime::zero());
  EXPECT_GT(hc.t_rtt_high, hc.t_rtt_low);
  EXPECT_GT(hc.delta_rtt, sim::SimTime::zero());
}

TEST(Scenario, ExplicitHermesThresholdsRespected) {
  ScenarioConfig cfg;
  cfg.topo = small();
  cfg.scheme = Scheme::kHermes;
  cfg.hermes.t_rtt_high = usec(777);
  Scenario s{cfg};
  EXPECT_EQ(s.hermes()->config().t_rtt_high, usec(777));
  EXPECT_GT(s.hermes()->config().t_rtt_low, sim::SimTime::zero());  // still derived
}

TEST(Scenario, SpraySchemesForceReorderBuffer) {
  for (Scheme scheme : {Scheme::kDrb, Scheme::kPrestoStar, Scheme::kDrill}) {
    ScenarioConfig cfg;
    cfg.topo = small();
    cfg.scheme = scheme;
    cfg.tcp.reorder_buffer = false;
    Scenario s{cfg};
    EXPECT_TRUE(s.config().tcp.reorder_buffer) << to_string(scheme);
  }
}

TEST(Scenario, PlainTcpDisablesFabricEcn) {
  ScenarioConfig cfg;
  cfg.topo = small();
  cfg.tcp.dctcp = false;
  Scenario s{cfg};
  EXPECT_FALSE(s.config().topo.ecn_enabled);
}

TEST(Scenario, MaxSimTimeCapsRun) {
  ScenarioConfig cfg;
  cfg.topo = small();
  cfg.max_sim_time = msec(1);
  Scenario s{cfg};
  s.add_flow(0, 2, 100'000'000, usec(0));  // cannot finish in 1ms
  auto fct = s.run();
  EXPECT_EQ(fct.unfinished_flows(), 1u);
  EXPECT_LE(s.simulator().now(), msec(1) + usec(1));
}

TEST(Scenario, ManualFlowIdsAreUnique) {
  ScenarioConfig cfg;
  cfg.topo = small();
  Scenario s{cfg};
  const auto a = s.add_flow(0, 2, 1000, usec(0));
  const auto b = s.add_flow(1, 3, 1000, usec(0));
  EXPECT_NE(a, b);
}

TEST(Scenario, ActiveFlowsTracksLifecycle) {
  ScenarioConfig cfg;
  cfg.topo = small();
  Scenario s{cfg};
  s.add_flow(0, 2, 1'000'000, usec(10));
  EXPECT_TRUE(s.active_flows().empty());  // not started yet
  s.run_for(usec(20));
  EXPECT_EQ(s.active_flows().size(), 1u);
  s.run_for(msec(50));
  EXPECT_TRUE(s.active_flows().empty());  // finished
}

TEST(Scenario, WrapBalancerSubstitutesScheme) {
  ScenarioConfig cfg;
  cfg.topo = small();
  cfg.scheme = Scheme::kEcmp;
  stats::PathUsageRecorder* recorder = nullptr;
  cfg.wrap_balancer = [&](sim::Simulator&, net::Topology&,
                          std::unique_ptr<lb::LoadBalancer> inner) {
    auto r = std::make_unique<stats::PathUsageRecorder>(std::move(inner));
    recorder = r.get();
    return r;
  };
  Scenario s{cfg};
  ASSERT_NE(recorder, nullptr);
  s.add_flow(0, 2, 1'000'000, usec(0));
  auto fct = s.run();
  EXPECT_EQ(fct.unfinished_flows(), 0u);
  std::uint64_t pkts = 0;
  for (const auto& [path, c] : recorder->per_path()) pkts += c.packets;
  EXPECT_GE(pkts, 1'000'000u / 1460u);
}

TEST(RunWorkloadExperiment, SameSeedSameTraffic) {
  ScenarioConfig cfg;
  cfg.topo = small();
  cfg.scheme = Scheme::kEcmp;
  const auto dist = workload::SizeDist::web_search();
  const auto a = run_workload_experiment(cfg, dist, 0.4, 50, 9);
  const auto b = run_workload_experiment(cfg, dist, 0.4, 50, 9);
  EXPECT_DOUBLE_EQ(a.overall().mean_us, b.overall().mean_us);
}

TEST(RunWorkloadExperiment, MeanOverSeedsAverages) {
  ScenarioConfig cfg;
  cfg.topo = small();
  cfg.scheme = Scheme::kEcmp;
  const auto dist = workload::SizeDist::web_search();
  const double one = run_workload_experiment(cfg, dist, 0.4, 40, 1).overall().mean_us;
  const double two = run_workload_experiment(cfg, dist, 0.4, 40, 2).overall().mean_us;
  const double avg = mean_fct_over_seeds(cfg, dist, 0.4, 40, 2, 1);
  EXPECT_NEAR(avg, (one + two) / 2, 1e-6);
}

TEST(QueueTraceTest, SamplesBacklogOverTime) {
  ScenarioConfig cfg;
  cfg.topo = small();
  Scenario s{cfg};
  harness::QueueTrace trace{s.simulator(), s.topology().host(0).nic(), usec(10)};
  trace.start(msec(2));
  s.add_flow(0, 2, 3'000'000, usec(0));
  s.run_for(msec(3));
  EXPECT_GT(trace.samples().size(), 100u);
  EXPECT_GT(trace.max_backlog(), 0u);  // slow start overshoots the NIC
  EXPECT_GE(trace.max_backlog(), trace.mean_backlog());
}

TEST(ValueTraceTest, SamplesProbe) {
  ScenarioConfig cfg;
  cfg.topo = small();
  Scenario s{cfg};
  int calls = 0;
  harness::ValueTrace trace{s.simulator(), usec(100), [&] { return static_cast<double>(++calls); }};
  trace.start(msec(1));
  s.run_for(msec(2));
  EXPECT_EQ(trace.samples().size(), static_cast<std::size_t>(calls));
  EXPECT_NEAR(trace.mean(), (1 + calls) / 2.0, 0.51);
}

TEST(PathUsage, RecordsReroutes) {
  ScenarioConfig cfg;
  cfg.topo = small();
  cfg.scheme = Scheme::kDrb;  // per-packet spraying: reroutes every packet
  stats::PathUsageRecorder* recorder = nullptr;
  cfg.wrap_balancer = [&](sim::Simulator&, net::Topology&,
                          std::unique_ptr<lb::LoadBalancer> inner) {
    auto r = std::make_unique<stats::PathUsageRecorder>(std::move(inner));
    recorder = r.get();
    return r;
  };
  Scenario s{cfg};
  const auto id = s.add_flow(0, 2, 1'000'000, usec(0));
  s.run();
  EXPECT_GT(recorder->reroutes().size(), 100u);
  const auto hist = recorder->flow_histogram(id);
  EXPECT_EQ(hist.size(), 2u);  // both paths used
  // Byte shares sum to ~1 over fabric paths.
  double share = 0;
  for (const auto& [path, c] : recorder->per_path())
    if (path >= 0) share += recorder->byte_share(path);
  EXPECT_NEAR(share, 1.0, 1e-9);
}

}  // namespace
}  // namespace hermes::harness
