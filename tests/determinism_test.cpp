// Golden-seed determinism gate for the simulator core.
//
// The event queue's contract is a strict total order on (time,
// scheduling sequence); as long as that holds, a fixed-seed scenario
// produces byte-identical per-flow FCT output no matter how the queue
// is implemented (binary heap, time wheel, ...) or whether sweep cells
// run serially or on the ParallelRunner. The golden hash below was
// recorded against the original binary-heap EventQueue; the time-wheel
// replacement must — and does — reproduce it exactly. If an intentional
// behaviour change (transport logic, RNG consumption order, CSV format)
// shifts the hash, re-record it and say so in the commit message;
// anything else reaching this assertion is a scheduling-order bug.

#include <cstddef>
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hermes/harness/parallel_runner.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/stats/csv.hpp"
#include "hermes/workload/flow_gen.hpp"
#include "hermes/workload/size_dist.hpp"

namespace hermes {
namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct Cell {
  harness::Scheme scheme;
  double load;
};

const std::vector<Cell>& cells() {
  static const std::vector<Cell> c = {
      {harness::Scheme::kEcmp, 0.5},  {harness::Scheme::kEcmp, 0.8},
      {harness::Scheme::kConga, 0.5}, {harness::Scheme::kConga, 0.8},
      {harness::Scheme::kHermes, 0.5}, {harness::Scheme::kHermes, 0.8},
  };
  return c;
}

std::string run_cell_csv(const Cell& cell, bool obs_enabled = false) {
  harness::ScenarioConfig cfg;
  cfg.topo.num_leaves = 4;
  cfg.topo.num_spines = 4;
  cfg.topo.hosts_per_leaf = 8;
  cfg.scheme = cell.scheme;
  cfg.seed = 7;
  cfg.max_sim_time = sim::sec(10);
  cfg.obs.enabled = obs_enabled;
  harness::Scenario s{cfg};
  workload::TrafficConfig tc;
  tc.load = cell.load;
  tc.num_flows = 80;
  tc.seed = 7;
  s.add_flows(
      workload::generate_poisson_traffic(s.topology(), workload::SizeDist::web_search(), tc));
  return stats::to_csv(s.run());
}

// Recorded with the pre-wheel binary-heap EventQueue (std::function
// callbacks, shared_ptr cancellation). 19856 bytes of per-flow CSV.
constexpr std::uint64_t kGoldenHash = 0xa490e4896445aaecull;

TEST(Determinism, GoldenSeedFctHashMatchesHeapBaseline) {
  std::string all;
  for (const Cell& c : cells()) all += run_cell_csv(c);
  EXPECT_EQ(fnv1a64(all), kGoldenHash)
      << "fixed-seed per-flow FCT output changed (" << all.size()
      << " bytes) — scheduling-order regression, or an intentional "
         "change that must re-record the golden hash";
}

// The flight recorder must be a pure observer: record paths consume no
// RNG and read only const state, so turning observability ON cannot
// perturb a single scheduling decision. Same seed, same golden hash —
// this is what makes post-mortem tracing trustworthy (the traced run IS
// the run you were debugging, not a sibling).
TEST(Determinism, ObservabilityOnReproducesGoldenHash) {
  std::string all;
  for (const Cell& c : cells()) all += run_cell_csv(c, /*obs_enabled=*/true);
  EXPECT_EQ(fnv1a64(all), kGoldenHash)
      << "enabling the flight recorder changed simulation results — an "
         "instrumentation site is consuming RNG or mutating model state";
}

// Unfinished flows are emitted from Scenario::active_, an unordered_map.
// Before sorted_active_ids() the emission inherited libstdc++'s hash
// order, so the record stream (and any CSV diff, golden hash, or
// downstream join on it) silently depended on the standard library.
// This pins the fix: cap the run so most flows never finish, and the
// unfinished tail must come out in ascending flow-id order with
// byte-identical CSV on a re-run.
TEST(Determinism, UnfinishedFlowEmissionIsFlowIdOrdered) {
  const auto run_truncated = [] {
    harness::ScenarioConfig cfg;
    cfg.topo.num_leaves = 4;
    cfg.topo.num_spines = 4;
    cfg.topo.hosts_per_leaf = 8;
    cfg.scheme = harness::Scheme::kHermes;
    cfg.seed = 11;
    cfg.max_sim_time = sim::msec(30);  // tight cap: the big flows stay active
    harness::Scenario s{cfg};
    // Mix finished and unfinished: 10KB mice complete in microseconds,
    // 100MB elephants cannot finish inside 30ms even at line rate.
    for (int h = 0; h < 24; ++h) {
      const std::int32_t src = s.topology().first_host_of_leaf(h % 4) + h % 8;
      const std::int32_t dst = s.topology().first_host_of_leaf((h + 1) % 4) + (h + 3) % 8;
      s.add_flow(src, dst, 10'000, sim::msec(1));
      s.add_flow(src, dst, 100'000'000, sim::msec(2));
    }
    return s.run();
  };

  const auto fct = run_truncated();
  ASSERT_GT(fct.unfinished_flows(), 10u) << "cap too generous to exercise the tail";

  // The unfinished suffix of the record stream is sorted by flow id.
  const auto& recs = fct.records();
  std::uint64_t prev_id = 0;
  bool in_tail = false;
  for (const auto& r : recs) {
    if (r.finished) {
      ASSERT_FALSE(in_tail) << "finished record after the unfinished tail began";
      continue;
    }
    if (in_tail) {
      EXPECT_LT(prev_id, r.id) << "unfinished records not in flow-id order";
    }
    in_tail = true;
    prev_id = r.id;
  }

  // And the whole stream is byte-stable across identical runs.
  EXPECT_EQ(stats::to_csv(fct), stats::to_csv(run_truncated()));
}

TEST(Determinism, ParallelSweepIsByteIdenticalToSerial) {
  std::string serial;
  for (const Cell& c : cells()) serial += run_cell_csv(c);

  const harness::ParallelRunner runner{4};
  const auto parts = runner.map<std::string>(
      cells().size(), [](std::size_t i) { return run_cell_csv(cells()[i]); });
  std::string parallel;
  for (const auto& p : parts) parallel += p;

  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(fnv1a64(parallel), kGoldenHash);
}

}  // namespace
}  // namespace hermes
