// Unit tests for Topology: leaf-spine construction, path enumeration,
// asymmetry (rate overrides, link cuts), route building, and the derived
// quantities (bisection, base RTT, one-hop delay).

#include <cstddef>
#include <gtest/gtest.h>

#include "hermes/net/topology.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {
namespace {

TopologyConfig small_config() {
  TopologyConfig c;
  c.num_leaves = 4;
  c.num_spines = 3;
  c.hosts_per_leaf = 2;
  c.host_rate_bps = 10e9;
  c.fabric_rate_bps = 10e9;
  return c;
}

TEST(TopologyTest, BuildsExpectedCounts) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  EXPECT_EQ(topo.num_hosts(), 8);
  EXPECT_EQ(topo.leaf(0).num_ports(), 2 + 3);  // hosts + spines
  EXPECT_EQ(topo.spine(0).num_ports(), 4);     // leaves
}

TEST(TopologyTest, HostLeafMapping) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  EXPECT_EQ(topo.leaf_of(0), 0);
  EXPECT_EQ(topo.leaf_of(1), 0);
  EXPECT_EQ(topo.leaf_of(2), 1);
  EXPECT_EQ(topo.leaf_of(7), 3);
  EXPECT_EQ(topo.local_index(5), 1);
  EXPECT_EQ(topo.first_host_of_leaf(2), 4);
}

TEST(TopologyTest, PathEnumerationPerPair) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  const auto& paths = topo.paths_between_leaves(0, 1);
  ASSERT_EQ(paths.size(), 3u);  // one per spine
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(paths[i].src_leaf, 0);
    EXPECT_EQ(paths[i].dst_leaf, 1);
    EXPECT_EQ(paths[i].spine, static_cast<int>(i));
    EXPECT_EQ(paths[i].local_index, static_cast<int>(i));
    EXPECT_DOUBLE_EQ(paths[i].capacity_bps, 10e9);
  }
}

TEST(TopologyTest, IntraLeafHasNoFabricPaths) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  EXPECT_TRUE(topo.paths_between_leaves(2, 2).empty());
}

TEST(TopologyTest, PathIdsAreGloballyUniqueAndDense) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  // 4*3 ordered pairs x 3 spines.
  EXPECT_EQ(topo.num_paths(), 4 * 3 * 3);
  for (int i = 0; i < topo.num_paths(); ++i) EXPECT_EQ(topo.path(i).id, i);
}

TEST(TopologyTest, ParallelLinksMultiplyPaths) {
  auto c = small_config();
  c.links_per_pair = 2;
  sim::Simulator simulator{1};
  Topology topo{simulator, c};
  EXPECT_EQ(topo.paths_between_leaves(0, 1).size(), 6u);  // 3 spines x 2
}

TEST(TopologyTest, RateOverrideReducesCapacity) {
  auto c = small_config();
  c.fabric_overrides[{0, 1, 0}] = 2e9;
  sim::Simulator simulator{1};
  Topology topo{simulator, c};
  const auto& paths = topo.paths_between_leaves(0, 2);
  EXPECT_DOUBLE_EQ(paths[1].capacity_bps, 2e9);  // degraded uplink
  EXPECT_DOUBLE_EQ(paths[0].capacity_bps, 10e9);
  // Reverse direction through the same physical link also degraded.
  EXPECT_DOUBLE_EQ(topo.paths_between_leaves(2, 0)[1].capacity_bps, 2e9);
}

TEST(TopologyTest, CutLinkRemovesPaths) {
  auto c = small_config();
  c.fabric_overrides[{0, 1, 0}] = 0;  // cut leaf0-spine1
  sim::Simulator simulator{1};
  Topology topo{simulator, c};
  EXPECT_EQ(topo.paths_between_leaves(0, 1).size(), 2u);
  EXPECT_EQ(topo.paths_between_leaves(1, 0).size(), 2u);
  EXPECT_EQ(topo.paths_between_leaves(1, 2).size(), 3u);  // unaffected pair
  // local_index stays dense after the cut.
  const auto& p01 = topo.paths_between_leaves(0, 1);
  EXPECT_EQ(p01[0].local_index, 0);
  EXPECT_EQ(p01[1].local_index, 1);
}

TEST(TopologyTest, DisconnectedPairThrows) {
  auto c = small_config();
  c.fabric_overrides[{0, 0, 0}] = 0;
  c.fabric_overrides[{0, 1, 0}] = 0;
  c.fabric_overrides[{0, 2, 0}] = 0;
  sim::Simulator simulator{1};
  EXPECT_THROW((Topology{simulator, c}), std::invalid_argument);
}

TEST(TopologyTest, BadShapeThrows) {
  auto c = small_config();
  c.num_leaves = 0;
  sim::Simulator simulator{1};
  EXPECT_THROW((Topology{simulator, c}), std::invalid_argument);
}

TEST(TopologyTest, ForwardRouteInterRack) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  // host 0 (leaf0) -> host 7 (leaf3) via spine 1 (path local index 1).
  const auto& paths = topo.paths_between_leaves(0, 3);
  const Route r = topo.forward_route(0, 7, paths[1].id);
  ASSERT_EQ(r.len, 3);
  EXPECT_EQ(r.ports[0], 2 + 1);  // leaf0 uplink to spine1
  EXPECT_EQ(r.ports[1], 3);      // spine1 downlink to leaf3
  EXPECT_EQ(r.ports[2], 1);      // leaf3 port to local host index 1
}

TEST(TopologyTest, ReverseRouteMirrorsForward) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  const auto& paths = topo.paths_between_leaves(0, 3);
  const Route r = topo.reverse_route(0, 7, paths[1].id);
  ASSERT_EQ(r.len, 3);
  EXPECT_EQ(r.ports[0], 2 + 1);  // leaf3 uplink to spine1
  EXPECT_EQ(r.ports[1], 0);      // spine1 downlink to leaf0
  EXPECT_EQ(r.ports[2], 0);      // leaf0 port to local host index 0
}

TEST(TopologyTest, IntraRackRoutes) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  const Route f = topo.forward_route(0, 1, -1);
  ASSERT_EQ(f.len, 1);
  EXPECT_EQ(f.ports[0], 1);
  const Route b = topo.reverse_route(0, 1, -1);
  ASSERT_EQ(b.len, 1);
  EXPECT_EQ(b.ports[0], 0);
}

TEST(TopologyTest, BisectionSumsUplinks) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  EXPECT_DOUBLE_EQ(topo.bisection_bps(), 4 * 3 * 10e9);

  auto c = small_config();
  c.fabric_overrides[{0, 0, 0}] = 0;
  c.fabric_overrides[{1, 0, 0}] = 2e9;
  Topology asym{simulator, c};
  EXPECT_DOUBLE_EQ(asym.bisection_bps(), (4 * 3 - 2) * 10e9 + 2e9);
}

TEST(TopologyTest, EcnDefaultsScaleWithRate) {
  TopologyConfig c;
  EXPECT_EQ(c.ecn_bytes_for(10e9), 65u * 1500u);
  EXPECT_EQ(c.ecn_bytes_for(1e9), 20u * 1500u);  // clamped at 20 packets
  c.ecn_threshold_bytes = 30'000;
  EXPECT_EQ(c.ecn_bytes_for(1e9), 30'000u);
}

TEST(TopologyTest, OneHopDelayMatchesEcnThreshold) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  // 65 packets * 1500B * 8 / 10G = 78us.
  EXPECT_NEAR(topo.one_hop_delay().to_usec(), 78.0, 0.5);
}

TEST(TopologyTest, BaseRttIsSmallButPositive) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  EXPECT_GT(topo.base_rtt(), sim::usec(10));
  EXPECT_LT(topo.base_rtt(), sim::usec(50));
}

TEST(TopologyTest, FabricPortsAreFlagged) {
  sim::Simulator simulator{1};
  Topology topo{simulator, small_config()};
  EXPECT_TRUE(topo.leaf_uplink(0, 0).is_fabric);
  EXPECT_TRUE(topo.spine_downlink(1, 2).is_fabric);
  EXPECT_FALSE(topo.leaf(0).port(0).is_fabric);  // toward a host
  EXPECT_FALSE(topo.host(0).nic().is_fabric);
}

TEST(TopologyTest, TestbedShape) {
  // The paper's testbed: 2 leaves, 2 spines, 2 parallel links per pair,
  // 6 hosts per leaf, all 1G. 3:2 oversubscription; cutting one link
  // leaves 3 paths = 75% bisection for the pair.
  TopologyConfig c;
  c.num_leaves = 2;
  c.num_spines = 2;
  c.hosts_per_leaf = 6;
  c.links_per_pair = 2;
  c.host_rate_bps = 1e9;
  c.fabric_rate_bps = 1e9;
  sim::Simulator simulator{1};
  Topology topo{simulator, c};
  EXPECT_EQ(topo.paths_between_leaves(0, 1).size(), 4u);

  c.fabric_overrides[{0, 1, 1}] = 0;
  Topology cut{simulator, c};
  EXPECT_EQ(cut.paths_between_leaves(0, 1).size(), 3u);
}

}  // namespace
}  // namespace hermes::net
