// Unit tests for the congestion-aware baselines: CONGA's DRE-based
// metrics, feedback loop, aging, and flowlet behaviour; CLOVE-ECN's
// ECN-driven weight adaptation.

#include <cstdint>
#include <gtest/gtest.h>

#include <set>

#include "hermes/lb/clove.hpp"
#include "hermes/lb/conga.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::lb {
namespace {

using sim::msec;
using sim::usec;

net::TopologyConfig topo2x2() {
  net::TopologyConfig c;
  c.num_leaves = 2;
  c.num_spines = 2;
  c.hosts_per_leaf = 2;
  return c;
}

FlowCtx make_flow(const net::Topology& topo, std::uint64_t id, int src, int dst) {
  FlowCtx f;
  f.flow_id = id;
  f.src = src;
  f.dst = dst;
  f.src_leaf = topo.leaf_of(src);
  f.dst_leaf = topo.leaf_of(dst);
  return f;
}

net::Packet data_packet(int src, int dst, int path_id, std::uint8_t lbtag,
                        std::uint8_t metric) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.src = src;
  p.dst = dst;
  p.payload = 1460;
  p.size = 1500;
  p.path_id = path_id;
  p.conga_lbtag = lbtag;
  p.conga_ce = metric;
  return p;
}

TEST(Conga, FeedbackLoopPropagatesRemoteMetric) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo2x2()};
  CongaLb lb{simulator, topo, {}};

  // A data packet from host0 to host2 on path 0 arrives stamped with
  // congestion 5; the destination leaf stores it and piggybacks it on the
  // ACK; the source leaf learns it.
  auto data = data_packet(0, 2, topo.paths_between_leaves(0, 1)[0].id, 0, 5);
  lb.on_data_arrival(data);
  net::Packet ack;
  ack.type = net::PacketType::kAck;
  lb.decorate_ack(data, ack);
  ASSERT_TRUE(ack.conga_fb_valid);
  EXPECT_EQ(ack.conga_fb_lbtag, 0);
  EXPECT_EQ(ack.conga_fb_metric, 5);

  auto f = make_flow(topo, 1, 0, 2);
  lb.on_ack(f, ack);
  EXPECT_EQ(lb.path_metric(0, 1, 0), 5);
  EXPECT_EQ(lb.path_metric(0, 1, 1), 0);  // other path untouched
}

TEST(Conga, SelectsLeastCongestedPathForNewFlowlet) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo2x2()};
  CongaLb lb{simulator, topo, {}};

  // Mark path 0 congested via feedback; a fresh flow must pick path 1.
  auto data = data_packet(0, 2, topo.paths_between_leaves(0, 1)[0].id, 0, 7);
  lb.on_data_arrival(data);
  net::Packet ack;
  lb.decorate_ack(data, ack);
  auto f0 = make_flow(topo, 1, 0, 2);
  lb.on_ack(f0, ack);

  for (std::uint64_t id = 10; id < 20; ++id) {
    auto f = make_flow(topo, id, 0, 2);
    const int chosen = lb.select_path(f, data_packet(0, 2, -1, 0, 0));
    EXPECT_EQ(topo.path(chosen).local_index, 1);
  }
}

TEST(Conga, MetricAgesToZero) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo2x2()};
  CongaLb lb{simulator, topo, {.flowlet_timeout = usec(150), .metric_aging = msec(10)}};

  auto data = data_packet(0, 2, topo.paths_between_leaves(0, 1)[0].id, 0, 7);
  lb.on_data_arrival(data);
  net::Packet ack;
  lb.decorate_ack(data, ack);
  auto f = make_flow(topo, 1, 0, 2);
  lb.on_ack(f, ack);
  EXPECT_EQ(lb.path_metric(0, 1, 0), 7);
  simulator.run_until(msec(11));
  // After the aging interval the path is assumed empty (Example 4's
  // hidden-terminal behaviour depends on exactly this).
  EXPECT_EQ(lb.path_metric(0, 1, 0), 0);
}

TEST(Conga, FlowletStickinessWithinTimeout) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo2x2()};
  CongaLb lb{simulator, topo, {.flowlet_timeout = usec(150), .metric_aging = msec(10)}};
  auto f = make_flow(topo, 3, 0, 2);
  const int first = lb.select_path(f, data_packet(0, 2, -1, 0, 0));
  f.current_path = first;
  f.has_sent = true;
  f.last_send = simulator.now();
  for (int i = 0; i < 10; ++i) {
    simulator.run_until(simulator.now() + usec(50));
    EXPECT_EQ(lb.select_path(f, data_packet(0, 2, -1, 0, 0)), first);
    f.last_send = simulator.now();
  }
}

TEST(Conga, FeedbackCyclesOverPaths) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo2x2()};
  CongaLb lb{simulator, topo, {}};
  const auto& paths = topo.paths_between_leaves(0, 1);
  lb.on_data_arrival(data_packet(0, 2, paths[0].id, 0, 3));
  lb.on_data_arrival(data_packet(0, 2, paths[1].id, 1, 4));
  net::Packet a1, a2;
  auto d = data_packet(0, 2, paths[0].id, 0, 3);
  lb.decorate_ack(d, a1);
  lb.decorate_ack(d, a2);
  ASSERT_TRUE(a1.conga_fb_valid && a2.conga_fb_valid);
  EXPECT_NE(a1.conga_fb_lbtag, a2.conga_fb_lbtag);  // round robin
}

TEST(Clove, InitialWeightsUniform) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo2x2()};
  CloveLb lb{simulator, topo, {}};
  auto w = lb.weights(0, 1);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], w[1]);
}

TEST(Clove, EcnMarkShiftsWeightAway) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo2x2()};
  CloveLb lb{simulator, topo, {}};
  const auto& paths = topo.paths_between_leaves(0, 1);
  auto f = make_flow(topo, 1, 0, 2);
  f.current_path = paths[0].id;

  net::Packet ack;
  ack.type = net::PacketType::kAck;
  ack.ece = true;
  ack.path_id = paths[0].id;
  lb.on_ack(f, ack);

  auto w = lb.weights(0, 1);
  EXPECT_LT(w[0], w[1]);
  // Total weight is conserved.
  EXPECT_NEAR(w[0] + w[1], 2.0, 1e-9);
}

TEST(Clove, MarkRateLimited) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo2x2()};
  CloveLb lb{simulator, topo, {.mark_min_gap = usec(100)}};
  const auto& paths = topo.paths_between_leaves(0, 1);
  auto f = make_flow(topo, 1, 0, 2);
  net::Packet ack;
  ack.ece = true;
  ack.path_id = paths[0].id;
  lb.on_ack(f, ack);
  const auto w1 = lb.weights(0, 1);
  lb.on_ack(f, ack);  // same instant: must be ignored
  EXPECT_EQ(lb.weights(0, 1), w1);
  simulator.run_until(usec(200));
  lb.on_ack(f, ack);
  EXPECT_LT(lb.weights(0, 1)[0], w1[0]);
}

TEST(Clove, WeightNeverCollapsesToZero) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo2x2()};
  CloveLb lb{simulator, topo, {.mark_min_gap = usec(0)}};
  const auto& paths = topo.paths_between_leaves(0, 1);
  auto f = make_flow(topo, 1, 0, 2);
  net::Packet ack;
  ack.ece = true;
  ack.path_id = paths[0].id;
  for (int i = 0; i < 1000; ++i) {
    simulator.run_until(simulator.now() + usec(1));
    lb.on_ack(f, ack);
  }
  EXPECT_GT(lb.weights(0, 1)[0], 0.0);  // keeps probing the bad path
}

TEST(Clove, SelectionFollowsWeights) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo2x2()};
  CloveLb lb{simulator, topo, {.flowlet_timeout = usec(0), .mark_min_gap = usec(0)}};
  const auto& paths = topo.paths_between_leaves(0, 1);
  auto f = make_flow(topo, 1, 0, 2);
  // Push weight heavily off path 0.
  net::Packet ack;
  ack.ece = true;
  ack.path_id = paths[0].id;
  for (int i = 0; i < 30; ++i) {
    simulator.run_until(simulator.now() + usec(1));
    lb.on_ack(f, ack);
  }
  int on_path0 = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto g = make_flow(topo, 100 + static_cast<std::uint64_t>(i), 0, 2);
    if (topo.path(lb.select_path(g, net::Packet{})).local_index == 0) ++on_path0;
  }
  EXPECT_LT(on_path0, n / 4);  // strongly biased away from the marked path
}

TEST(Clove, FlowletKeepsPath) {
  sim::Simulator simulator{1};
  net::Topology topo{simulator, topo2x2()};
  CloveLb lb{simulator, topo, {.flowlet_timeout = usec(150)}};
  auto f = make_flow(topo, 1, 0, 2);
  const int first = lb.select_path(f, net::Packet{});
  f.current_path = first;
  f.has_sent = true;
  f.last_send = simulator.now();
  simulator.run_until(usec(50));
  EXPECT_EQ(lb.select_path(f, net::Packet{}), first);
}

}  // namespace
}  // namespace hermes::lb
