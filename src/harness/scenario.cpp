#include "hermes/harness/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hermes/lb/ecmp.hpp"
#include "hermes/lb/spray.hpp"
#include "hermes/lb/wcmp.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/trace_io.hpp"

namespace hermes::harness {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kEcmp: return "ECMP";
    case Scheme::kDrb: return "DRB";
    case Scheme::kPrestoStar: return "Presto*";
    case Scheme::kLetFlow: return "LetFlow";
    case Scheme::kConga: return "CONGA";
    case Scheme::kCloveEcn: return "CLOVE-ECN";
    case Scheme::kHermes: return "Hermes";
    case Scheme::kFlowBender: return "FlowBender";
    case Scheme::kDrill: return "DRILL";
    case Scheme::kWcmp: return "WCMP";
  }
  return "?";
}

Scenario::Scenario(ScenarioConfig config) : config_{std::move(config)} {
  // Plain-TCP mode (§5.4): no ECN marking; switches drop at the buffer.
  if (!config_.tcp.dctcp) config_.topo.ecn_enabled = false;
  // Spraying schemes are evaluated with the reordering mask, as the paper
  // does for Presto* ("we implement a reordering buffer to mask packet
  // reordering", §5.1).
  if (config_.scheme == Scheme::kPrestoStar || config_.scheme == Scheme::kDrb ||
      config_.scheme == Scheme::kDrill) {
    config_.tcp.reorder_buffer = true;
  }

  simulator_ = std::make_unique<sim::Simulator>(config_.seed);
  topo_ = std::make_unique<net::Topology>(*simulator_, config_.topo);
  build_balancer();
  if (config_.wrap_balancer) {
    lb_ = config_.wrap_balancer(*simulator_, *topo_, std::move(lb_));
  }

  // In-band congestion stamping costs a DRE read per fabric hop; only
  // CONGA consumes it.
  if (config_.scheme != Scheme::kConga) {
    for (int l = 0; l < config_.topo.num_leaves; ++l) topo_->leaf(l).conga_stamping = false;
    for (int s = 0; s < config_.topo.num_spines; ++s) topo_->spine(s).conga_stamping = false;
  }

  stacks_.reserve(static_cast<std::size_t>(topo_->num_hosts()));
  for (int h = 0; h < topo_->num_hosts(); ++h) {
    stacks_.push_back(std::make_unique<transport::HostStack>(*simulator_, *topo_, h, *lb_,
                                                             config_.tcp));
  }

  if (hermes_) {
    hermes_->enable_probing(
        [this](int src_host, net::Packet p) { stacks_[src_host]->send_raw(std::move(p)); });
    for (int l = 0; l < config_.topo.num_leaves; ++l) {
      const int agent = topo_->first_host_of_leaf(l);
      stacks_[agent]->on_probe_reply = [this](const net::Packet& p) {
        hermes_->on_probe_reply(p);
      };
    }
  }

  // Invariant checking wraps the host/port observer hooks, so it must
  // come after the stacks installed theirs; the fault scheduler is wired
  // last so every transition triggers a checker pass.
  if (config_.check_invariants) {
    checker_ = std::make_unique<faults::InvariantChecker>(*simulator_, *topo_,
                                                          config_.invariant_config);
    checker_->set_flow_snapshot([this] {
      std::vector<faults::FlowProgress> snap;
      snap.reserve(active_.size());
      for (const std::uint64_t id : sorted_active_ids()) {
        const transport::FlowSpec& spec = active_.at(id);
        if (transport::TcpSender* snd = stacks_[spec.src]->sender(id)) {
          snap.push_back({id, snd->snd_una()});
        }
      }
      return snap;
    });
  }
  if (!config_.fault_plan.empty()) {
    fault_sched_ = std::make_unique<faults::FaultScheduler>(*simulator_, *topo_);
    if (checker_) {
      fault_sched_->on_transition = [this](const faults::FaultEvent& e) {
        checker_->on_fault_transition(e);
      };
    }
    fault_sched_->install(config_.fault_plan);
  }

  wire_observability();
}

void Scenario::wire_observability() {
  if (config_.obs.enabled) {
    recorder_ = std::make_unique<obs::FlightRecorder>(config_.obs.ring_capacity);
    if (config_.obs.trace_packets) topo_->set_recorder(recorder_.get());
    if (hermes_) hermes_->set_recorder(recorder_.get());
    if (fault_sched_) fault_sched_->set_recorder(recorder_.get());
  }
  // The registry is always on: pull closures read counters the modules
  // maintain anyway, so there is no per-packet cost until snapshot time.
  metrics_.counter_fn("sim.events_processed",
                      [this] { return simulator_->events().events_processed(); });
  topo_->register_metrics(metrics_);
  if (hermes_) hermes_->register_metrics(metrics_);
  if (fault_sched_) fault_sched_->register_metrics(metrics_);
  if (checker_) checker_->register_metrics(metrics_);
  metrics_.counter_fn("transport.flows_completed",
                      [this] { return transport_totals_.flows_completed; });
  metrics_.counter_fn("transport.flows_unfinished",
                      [this] { return transport_totals_.flows_unfinished; });
  metrics_.counter_fn("transport.timeouts", [this] { return transport_totals_.timeouts; });
  metrics_.counter_fn("transport.fast_retransmits",
                      [this] { return transport_totals_.fast_retransmits; });
  metrics_.counter_fn("transport.packets_sent",
                      [this] { return transport_totals_.packets_sent; });
  metrics_.counter_fn("transport.packets_retransmitted",
                      [this] { return transport_totals_.packets_retransmitted; });
  metrics_.counter_fn("transport.reroutes", [this] { return transport_totals_.reroutes; });
}

void Scenario::absorb(const transport::FlowRecord& r) {
  if (r.finished) {
    ++transport_totals_.flows_completed;
  } else {
    ++transport_totals_.flows_unfinished;
  }
  transport_totals_.timeouts += r.timeouts;
  transport_totals_.fast_retransmits += r.fast_retransmits;
  transport_totals_.packets_sent += r.packets_sent;
  transport_totals_.packets_retransmitted += r.packets_retransmitted;
  transport_totals_.reroutes += r.reroutes;
}

bool Scenario::dump_trace(const std::string& path) const {
  if (!recorder_) return false;
  return obs::write_trace(path, *recorder_);
}

Scenario::~Scenario() = default;

void Scenario::build_balancer() {
  switch (config_.scheme) {
    case Scheme::kEcmp:
      lb_ = std::make_unique<lb::EcmpLb>(*topo_, config_.seed);
      break;
    case Scheme::kDrb:
      lb_ = std::make_unique<lb::SprayLb>(
          *topo_, lb::SprayConfig{.cell_bytes = 0, .weighted = false}, "drb");
      break;
    case Scheme::kPrestoStar:
      lb_ = std::make_unique<lb::SprayLb>(
          *topo_,
          lb::SprayConfig{.cell_bytes = config_.presto_cell_bytes,
                          .weighted = config_.presto_weighted},
          "presto*");
      break;
    case Scheme::kLetFlow:
      lb_ = std::make_unique<lb::LetFlowLb>(*simulator_, *topo_, config_.letflow);
      break;
    case Scheme::kConga:
      lb_ = std::make_unique<lb::CongaLb>(*simulator_, *topo_, config_.conga);
      break;
    case Scheme::kCloveEcn:
      lb_ = std::make_unique<lb::CloveLb>(*simulator_, *topo_, config_.clove);
      break;
    case Scheme::kWcmp:
      lb_ = std::make_unique<lb::WcmpLb>(*topo_, config_.seed);
      break;
    case Scheme::kFlowBender:
      lb_ = std::make_unique<lb::FlowBenderLb>(*simulator_, *topo_, config_.flowbender);
      break;
    case Scheme::kDrill:
      lb_ = std::make_unique<lb::DrillLb>(*simulator_, *topo_, config_.drill);
      break;
    case Scheme::kHermes: {
      lb::HermesConfig hc = config_.hermes;
      if (hc.t_rtt_low == sim::SimTime::zero() || hc.t_rtt_high == sim::SimTime::zero() ||
          hc.delta_rtt == sim::SimTime::zero()) {
        const auto defaults = lb::HermesConfig::defaults_for(*topo_);
        if (hc.t_rtt_low == sim::SimTime::zero()) hc.t_rtt_low = defaults.t_rtt_low;
        if (hc.t_rtt_high == sim::SimTime::zero()) hc.t_rtt_high = defaults.t_rtt_high;
        if (hc.delta_rtt == sim::SimTime::zero()) hc.delta_rtt = defaults.delta_rtt;
      }
      auto h = std::make_unique<lb::HermesLb>(*simulator_, *topo_, hc);
      hermes_ = h.get();
      lb_ = std::move(h);
      break;
    }
  }
}

void Scenario::add_flows(const std::vector<transport::FlowSpec>& flows) {
  // Upper bound: every scheduled flow in flight at once. Sizing the map
  // up front removes rehash churn from the middle of the run.
  active_.reserve(active_.size() + pending_ + flows.size());
  for (const auto& f : flows) {
    ++pending_;
    simulator_->at(f.start, [this, f] {
      active_.emplace(f.id, f);
      stacks_[f.src]->start_flow(f, [this, id = f.id](const transport::FlowRecord& r) {
        collector_.add(r);
        absorb(r);
        active_.erase(id);
        if (--pending_ == 0) simulator_->stop();
      });
    });
  }
}

std::uint64_t Scenario::add_flow(std::int32_t src, std::int32_t dst, std::uint64_t size,
                                 sim::SimTime start) {
  transport::FlowSpec f;
  f.id = next_flow_id();
  f.src = src;
  f.dst = dst;
  f.size = size;
  f.start = start;
  add_flows({f});
  return f.id;
}

std::vector<std::uint64_t> Scenario::sorted_active_ids() const {
  // active_ is an unordered_map; anything that feeds results (collector
  // records, invariant snapshots) must not inherit its hash order, or
  // fixed-seed output would differ across standard libraries.
  std::vector<std::uint64_t> ids;
  ids.reserve(active_.size());
  for (const auto& [id, spec] : active_) {  // hermeslint:allow(determinism.unordered-iter) key harvest only; sorted on the next line before anything consumes the order
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

stats::FctCollector Scenario::run() {
  simulator_->run_until(config_.max_sim_time);
  // Whatever is still active never finished within the time cap; pull the
  // live sender counters so unfinished records still carry timeout and
  // retransmission statistics, in flow-id order (not hash order) so the
  // emitted record stream is byte-stable across library versions.
  for (const std::uint64_t id : sorted_active_ids()) {
    const transport::FlowSpec& spec = active_.at(id);
    if (transport::TcpSender* snd = stacks_[spec.src]->sender(id)) {
      transport::FlowRecord r = snd->record();
      r.finished = false;
      r.end = simulator_->now();
      collector_.add(r);
      absorb(r);
    } else {
      collector_.add_unfinished(spec.size, spec.start, simulator_->now());
      ++transport_totals_.flows_unfinished;
    }
  }
  // Flows scheduled but never started also count as unfinished.
  maybe_dump_triage();
  return std::move(collector_);
}

void Scenario::maybe_dump_triage() {
  if (!config_.obs.dump_on_violation || !recorder_) return;
  const bool violated = checker_ && !checker_->ok();
  const bool stranded = transport_totals_.flows_unfinished > 0;
  if (!violated && !stranded) return;
  triage_path_ = config_.obs.dump_path.empty()
                     ? "FUZZ_" + std::to_string(config_.seed) + ".htrc"
                     : config_.obs.dump_path;
  if (!dump_trace(triage_path_)) {
    triage_path_.clear();
    return;
  }
  // One line per failing run, stderr, grep-able: what fired, where the
  // flight-recorder ring went, and the command that replays the seed.
  const std::string why = violated ? checker_->violations().front().what
                                   : std::to_string(transport_totals_.flows_unfinished) +
                                         " unfinished flows at time cap";
  std::fprintf(stderr,
               "[triage] seed=%llu scheme=%s: %s\n"
               "[triage]   trace: %s  repro: hermesfuzz --seed=%llu --scheme=%s\n",
               static_cast<unsigned long long>(config_.seed), to_string(config_.scheme),
               why.c_str(), triage_path_.c_str(),
               static_cast<unsigned long long>(config_.seed), to_string(config_.scheme));
}

void Scenario::run_for(sim::SimTime duration) {
  simulator_->run_until(simulator_->now() + duration);
}

}  // namespace hermes::harness
