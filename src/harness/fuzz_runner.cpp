#include "hermes/harness/fuzz_runner.hpp"

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hermes/faults/fault_plan.hpp"
#include "hermes/faults/scenario_fuzzer.hpp"
#include "hermes/harness/sharded_scenario.hpp"
#include "hermes/stats/csv.hpp"
#include "hermes/stats/fct.hpp"
#include "hermes/workload/flow_gen.hpp"
#include "hermes/workload/size_dist.hpp"

namespace hermes::harness {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

ScenarioConfig to_scenario_config(const faults::fuzz::FuzzScenario& fs, Scheme scheme,
                                  bool triage) {
  ScenarioConfig cfg;
  cfg.topo = fs.topo;
  cfg.scheme = scheme;
  cfg.seed = fs.seed;
  cfg.max_sim_time = fs.max_sim_time;
  cfg.fault_plan = fs.plan;
  cfg.check_invariants = true;
  cfg.obs.enabled = triage;
  cfg.obs.dump_on_violation = triage;
  return cfg;
}

FuzzOutcome run_fuzz_scenario(const faults::fuzz::FuzzScenario& fs, Scheme scheme, bool triage,
                              const std::string& dump_dir) {
  ScenarioConfig cfg = to_scenario_config(fs, scheme, triage);
  if (!dump_dir.empty()) {
    cfg.obs.dump_path = dump_dir + "/FUZZ_" + std::to_string(fs.seed) + ".htrc";
  }
  Scenario s{std::move(cfg)};

  workload::SizeDist dist = (fs.workload == faults::fuzz::Workload::kDataMining
                                 ? workload::SizeDist::data_mining()
                                 : workload::SizeDist::web_search())
                                .scaled(fs.workload_scale);
  workload::TrafficConfig tc;
  tc.load = fs.load;
  tc.num_flows = fs.num_flows;
  tc.seed = fs.seed;
  s.add_flows(workload::generate_poisson_traffic(s.topology(), dist, tc));

  const stats::FctCollector fct = s.run();

  FuzzOutcome out;
  out.seed = fs.seed;
  out.scheme = scheme;
  out.unfinished_flows = fct.unfinished_flows();
  if (const faults::InvariantChecker* inv = s.invariants()) {
    out.violations = inv->violations().size();
    if (!inv->violations().empty()) out.first_violation = inv->violations().front().what;
  }
  if (!out.clean()) {
    out.trace_path = s.triage_path();
    out.repro = "hermesfuzz --seed=" + std::to_string(fs.seed) +
                " --scheme=" + to_string(scheme);
  }
  return out;
}

namespace {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// splitmix64 step: cheap, stateless seed expansion for scenario
/// derivation (matches the per-shard seed derivation's generator family).
std::uint64_t mix(std::uint64_t& z) {
  z += 0x9E3779B97F4A7C15ULL;
  std::uint64_t x = z;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t run_hash(const ShardedScenarioConfig& cfg) {
  ShardedScenario s{cfg};
  workload::SizeDist dist = (cfg.seed % 3 == 0 ? workload::SizeDist::data_mining()
                                               : workload::SizeDist::web_search())
                                .scaled(0.1);
  workload::TrafficConfig tc;
  tc.load = 0.3 + 0.05 * static_cast<double>(cfg.seed % 5);
  tc.num_flows = 40 + static_cast<int>(cfg.seed % 41);
  tc.seed = cfg.seed;
  s.add_flows(workload::generate_poisson_traffic(s.fabric(), dist, tc));
  const stats::FctCollector fct = s.run();
  // Hash the simulation results, not the execution facts: the
  // sharding.threads gauge reports the very knob this check varies.
  std::string metrics;
  std::istringstream in(s.metrics().snapshot_text());
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("sharding.threads ", 0) == 0) continue;
    metrics += line;
    metrics += '\n';
  }
  return fnv1a64(stats::to_csv(fct) + metrics);
}

}  // namespace

ShardedFuzzOutcome run_sharded_fuzz_seed(std::uint64_t seed, Scheme scheme) {
  std::uint64_t z = seed;
  ShardedScenarioConfig cfg;
  cfg.fabric.k = 4;
  cfg.scheme = scheme;
  cfg.seed = seed;
  cfg.max_sim_time = sim::sec(2);
  cfg.num_shards = 2 + static_cast<int>(mix(z) % 3);  // 2..4 of the 4 pods

  // Fault flap train with indices valid for the k=4 fat-tree: 8 leaves,
  // 4 core switches, 2 agg uplinks per leaf, 2 hosts per leaf.
  const int core_a = static_cast<int>(mix(z) % 4);
  const double rate = 0.02 + 0.02 * static_cast<double>(mix(z) % 4);
  cfg.fault_plan.flap_random_drop(sim::msec(5), core_a, rate,
                                  sim::msec(15 + static_cast<int>(mix(z) % 16)),
                                  2 + static_cast<int>(mix(z) % 2));
  const int leaf = static_cast<int>(mix(z) % 8);
  cfg.fault_plan.flap_link(sim::msec(10), leaf, static_cast<int>(mix(z) % 2),
                           sim::msec(20 + static_cast<int>(mix(z) % 21)), 2);
  if (mix(z) % 2 == 0) {
    const int src_leaf = static_cast<int>(mix(z) % 8);
    const int dst_leaf = static_cast<int>((src_leaf + 1 + mix(z) % 7) % 8);
    cfg.fault_plan.transient_blackhole(
        sim::msec(8), sim::msec(50), static_cast<int>(mix(z) % 4),
        faults::rack_pair_blackhole(2, src_leaf, dst_leaf, mix(z) % 2 == 0));
  }

  ShardedFuzzOutcome out;
  out.seed = seed;
  out.scheme = scheme;
  out.num_shards = cfg.num_shards;

  cfg.threads = 1;
  out.hash_t1 = run_hash(cfg);
  cfg.threads = 2;
  out.hash_t2 = run_hash(cfg);

  // Unfinished count for reporting only — re-derived cheaply from the
  // fact that both runs hashed identically when deterministic.
  if (!out.deterministic()) {
    out.repro = "hermesfuzz --sharded --seed=" + std::to_string(seed) +
                " --scheme=" + to_string(scheme);
  }
  return out;
}

std::optional<Scheme> parse_scheme(std::string_view name) {
  for (const Scheme s :
       {Scheme::kEcmp, Scheme::kDrb, Scheme::kPrestoStar, Scheme::kLetFlow, Scheme::kConga,
        Scheme::kCloveEcn, Scheme::kHermes, Scheme::kFlowBender, Scheme::kDrill,
        Scheme::kWcmp}) {
    if (iequals(name, to_string(s))) return s;
  }
  // Convenience aliases without punctuation, for shells and CI matrices.
  if (iequals(name, "presto")) return Scheme::kPrestoStar;
  if (iequals(name, "clove")) return Scheme::kCloveEcn;
  return std::nullopt;
}

}  // namespace hermes::harness
