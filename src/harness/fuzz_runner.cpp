#include "hermes/harness/fuzz_runner.hpp"

#include <cctype>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hermes/faults/scenario_fuzzer.hpp"
#include "hermes/stats/fct.hpp"
#include "hermes/workload/flow_gen.hpp"
#include "hermes/workload/size_dist.hpp"

namespace hermes::harness {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

ScenarioConfig to_scenario_config(const faults::fuzz::FuzzScenario& fs, Scheme scheme,
                                  bool triage) {
  ScenarioConfig cfg;
  cfg.topo = fs.topo;
  cfg.scheme = scheme;
  cfg.seed = fs.seed;
  cfg.max_sim_time = fs.max_sim_time;
  cfg.fault_plan = fs.plan;
  cfg.check_invariants = true;
  cfg.obs.enabled = triage;
  cfg.obs.dump_on_violation = triage;
  return cfg;
}

FuzzOutcome run_fuzz_scenario(const faults::fuzz::FuzzScenario& fs, Scheme scheme, bool triage,
                              const std::string& dump_dir) {
  ScenarioConfig cfg = to_scenario_config(fs, scheme, triage);
  if (!dump_dir.empty()) {
    cfg.obs.dump_path = dump_dir + "/FUZZ_" + std::to_string(fs.seed) + ".htrc";
  }
  Scenario s{std::move(cfg)};

  workload::SizeDist dist = (fs.workload == faults::fuzz::Workload::kDataMining
                                 ? workload::SizeDist::data_mining()
                                 : workload::SizeDist::web_search())
                                .scaled(fs.workload_scale);
  workload::TrafficConfig tc;
  tc.load = fs.load;
  tc.num_flows = fs.num_flows;
  tc.seed = fs.seed;
  s.add_flows(workload::generate_poisson_traffic(s.topology(), dist, tc));

  const stats::FctCollector fct = s.run();

  FuzzOutcome out;
  out.seed = fs.seed;
  out.scheme = scheme;
  out.unfinished_flows = fct.unfinished_flows();
  if (const faults::InvariantChecker* inv = s.invariants()) {
    out.violations = inv->violations().size();
    if (!inv->violations().empty()) out.first_violation = inv->violations().front().what;
  }
  if (!out.clean()) {
    out.trace_path = s.triage_path();
    out.repro = "hermesfuzz --seed=" + std::to_string(fs.seed) +
                " --scheme=" + to_string(scheme);
  }
  return out;
}

std::optional<Scheme> parse_scheme(std::string_view name) {
  for (const Scheme s :
       {Scheme::kEcmp, Scheme::kDrb, Scheme::kPrestoStar, Scheme::kLetFlow, Scheme::kConga,
        Scheme::kCloveEcn, Scheme::kHermes, Scheme::kFlowBender, Scheme::kDrill,
        Scheme::kWcmp}) {
    if (iequals(name, to_string(s))) return s;
  }
  // Convenience aliases without punctuation, for shells and CI matrices.
  if (iequals(name, "presto")) return Scheme::kPrestoStar;
  if (iequals(name, "clove")) return Scheme::kCloveEcn;
  return std::nullopt;
}

}  // namespace hermes::harness
