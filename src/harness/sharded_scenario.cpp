#include "hermes/harness/sharded_scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "hermes/lb/clove.hpp"
#include "hermes/lb/ecmp.hpp"
#include "hermes/lb/flowbender.hpp"
#include "hermes/lb/letflow.hpp"
#include "hermes/lb/spray.hpp"
#include "hermes/lb/wcmp.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/trace_io.hpp"
#include "hermes/transport/tcp_sender.hpp"

namespace hermes::harness {

namespace {

/// Per-shard seed derivation (splitmix64 of the scenario seed and the
/// shard index): fixed for a given (seed, shard), never dependent on the
/// thread count.
std::uint64_t shard_seed(std::uint64_t seed, int shard) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(shard + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

ShardedScenario::ShardedScenario(ShardedScenarioConfig config) : config_{std::move(config)} {
  if (!config_.tcp.dctcp) config_.fabric.ecn_enabled = false;
  if (config_.scheme == Scheme::kPrestoStar || config_.scheme == Scheme::kDrb) {
    config_.tcp.reorder_buffer = true;
  }
  if (config_.scheme == Scheme::kConga || config_.scheme == Scheme::kDrill) {
    throw std::invalid_argument(
        "ShardedScenario: CONGA/DRILL read global fabric state and are serial-only");
  }

  const int S = std::clamp(config_.num_shards, 1, config_.fabric.k);
  config_.num_shards = S;
  sims_.reserve(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) {
    sims_.push_back(std::make_unique<sim::Simulator>(shard_seed(config_.seed, s)));
  }
  std::vector<sim::Simulator*> raw;
  raw.reserve(sims_.size());
  for (auto& s : sims_) raw.push_back(s.get());
  fabric_ = std::make_unique<net::FatTree>(std::move(raw), config_.fabric);
  shard_states_.resize(static_cast<std::size_t>(S));

  build_balancers();

  // No sharded scheme consumes in-band CONGA stamps; skip the DRE reads.
  for (int e = 0; e < fabric_->num_leaves(); ++e) fabric_->leaf(e).conga_stamping = false;
  for (int p = 0; p < fabric_->num_pods(); ++p) {
    for (int a = 0; a < fabric_->k() / 2; ++a) fabric_->agg(p, a).conga_stamping = false;
  }
  for (int c = 0; c < fabric_->num_cores(); ++c) fabric_->spine(c).conga_stamping = false;

  stacks_.reserve(static_cast<std::size_t>(fabric_->num_hosts()));
  for (int h = 0; h < fabric_->num_hosts(); ++h) {
    const int s = fabric_->shard_of_host(h);
    stacks_.push_back(std::make_unique<transport::HostStack>(*sims_[s], *fabric_, h,
                                                             *lbs_[s], config_.tcp));
  }

  // Hermes probing: each shard's instance probes only from the rack
  // agents that shard owns, and the replies return to those same agents —
  // probe traffic and probe state never cross a shard boundary except as
  // ordinary packets through the mailbox.
  for (int s = 0; s < S; ++s) {
    if (hermes_[s] == nullptr) continue;
    hermes_[s]->set_probe_sources(fabric_->leaves_of_shard(s));
    hermes_[s]->enable_probing(
        [this](int src_host, net::Packet p) { stacks_[src_host]->send_raw(std::move(p)); });
    for (const int l : fabric_->leaves_of_shard(s)) {
      const int agent = fabric_->first_host_of_leaf(l);
      stacks_[agent]->on_probe_reply = [h = hermes_[s]](const net::Packet& p) {
        h->on_probe_reply(p);
      };
    }
  }

  // Faults: split the plan by the single shard whose event stream owns
  // the targeted device, so every mutation happens inside that shard's
  // rounds (edge switch / edge<->agg link -> the pod's shard; core
  // switch -> the core's shard).
  if (!config_.fault_plan.empty()) {
    std::vector<faults::FaultPlan> sub(static_cast<std::size_t>(S));
    for (const faults::FaultEvent& e : config_.fault_plan.events()) {
      sub[static_cast<std::size_t>(fault_owner_shard(e))].add(e);
    }
    fault_scheds_.resize(static_cast<std::size_t>(S));
    for (int s = 0; s < S; ++s) {
      if (sub[s].empty()) continue;
      fault_scheds_[s] = std::make_unique<faults::FaultScheduler>(*sims_[s], *fabric_);
      fault_scheds_[s]->install(sub[s]);
    }
  }

  wire_observability();
}

ShardedScenario::~ShardedScenario() = default;

void ShardedScenario::build_balancers() {
  const int S = num_shards();
  lbs_.resize(static_cast<std::size_t>(S));
  hermes_.assign(static_cast<std::size_t>(S), nullptr);
  lb::HermesConfig hc = config_.hermes;
  if (config_.scheme == Scheme::kHermes &&
      (hc.t_rtt_low == sim::SimTime::zero() || hc.t_rtt_high == sim::SimTime::zero() ||
       hc.delta_rtt == sim::SimTime::zero())) {
    const auto defaults = lb::HermesConfig::defaults_for(*fabric_);
    if (hc.t_rtt_low == sim::SimTime::zero()) hc.t_rtt_low = defaults.t_rtt_low;
    if (hc.t_rtt_high == sim::SimTime::zero()) hc.t_rtt_high = defaults.t_rtt_high;
    if (hc.delta_rtt == sim::SimTime::zero()) hc.delta_rtt = defaults.delta_rtt;
  }
  for (int s = 0; s < S; ++s) {
    const std::uint64_t seed = shard_seed(config_.seed, s);
    switch (config_.scheme) {
      case Scheme::kEcmp:
        lbs_[s] = std::make_unique<lb::EcmpLb>(*fabric_, seed);
        break;
      case Scheme::kWcmp:
        lbs_[s] = std::make_unique<lb::WcmpLb>(*fabric_, seed);
        break;
      case Scheme::kDrb:
        lbs_[s] = std::make_unique<lb::SprayLb>(
            *fabric_, lb::SprayConfig{.cell_bytes = 0, .weighted = false}, "drb");
        break;
      case Scheme::kPrestoStar:
        lbs_[s] = std::make_unique<lb::SprayLb>(
            *fabric_,
            lb::SprayConfig{.cell_bytes = config_.presto_cell_bytes,
                            .weighted = config_.presto_weighted},
            "presto*");
        break;
      case Scheme::kLetFlow:
        lbs_[s] = std::make_unique<lb::LetFlowLb>(*sims_[s], *fabric_, config_.letflow);
        break;
      case Scheme::kCloveEcn:
        lbs_[s] = std::make_unique<lb::CloveLb>(*sims_[s], *fabric_, config_.clove);
        break;
      case Scheme::kFlowBender:
        lbs_[s] = std::make_unique<lb::FlowBenderLb>(*sims_[s], *fabric_, config_.flowbender);
        break;
      case Scheme::kHermes: {
        auto h = std::make_unique<lb::HermesLb>(*sims_[s], *fabric_, hc);
        hermes_[s] = h.get();
        lbs_[s] = std::move(h);
        break;
      }
      case Scheme::kConga:
      case Scheme::kDrill:
        break;  // rejected in the constructor
    }
  }
}

int ShardedScenario::fault_owner_shard(const faults::FaultEvent& e) const {
  switch (e.action) {
    case faults::FaultAction::kBlackholeOn:
    case faults::FaultAction::kBlackholeOff:
    case faults::FaultAction::kRandomDropSet:
      return e.tier == faults::SwitchTier::kLeaf ? fabric_->shard_of_leaf(e.switch_id)
                                                 : fabric_->shard_of_core(e.switch_id);
    case faults::FaultAction::kLinkDown:
    case faults::FaultAction::kLinkUp:
    case faults::FaultAction::kLinkRate:
      // Edge uplinks run edge<->agg, both endpoints inside the pod.
      return fabric_->shard_of_leaf(e.link.leaf);
  }
  return 0;
}

void ShardedScenario::wire_observability() {
  const int S = num_shards();
  if (config_.obs.enabled) {
    recorders_.reserve(static_cast<std::size_t>(S));
    std::vector<obs::FlightRecorder*> raw;
    for (int s = 0; s < S; ++s) {
      recorders_.push_back(
          std::make_unique<obs::FlightRecorder>(config_.obs.ring_capacity, &trace_names_));
      recorders_.back()->set_shard(static_cast<std::uint8_t>(s));
      raw.push_back(recorders_.back().get());
    }
    if (config_.obs.trace_packets) fabric_->set_recorders(raw);
    for (int s = 0; s < S; ++s) {
      if (hermes_[s] != nullptr) hermes_[s]->set_recorder(raw[s]);
      if (s < static_cast<int>(fault_scheds_.size()) && fault_scheds_[s]) {
        fault_scheds_[s]->set_recorder(raw[s]);
      }
    }
  }

  metrics_.counter_fn("sim.events_processed", [this] { return events_processed(); });
  fabric_->register_metrics(metrics_);

  // Aggregated views: the registry keys one reader per name, so the
  // per-shard instances cannot each register — the harness sums them.
  if (config_.scheme == Scheme::kHermes) {
    const auto dsum = [this](std::uint64_t engine::DecisionStats::* f) {
      std::uint64_t total = 0;
      for (const lb::HermesLb* h : hermes_) total += h->decision_stats().*f;
      return total;
    };
    metrics_.counter_fn("lb.initial_placements",
                        [dsum] { return dsum(&engine::DecisionStats::initial_placements); });
    metrics_.counter_fn("lb.timeout_escapes",
                        [dsum] { return dsum(&engine::DecisionStats::timeout_escapes); });
    metrics_.counter_fn("lb.failure_escapes",
                        [dsum] { return dsum(&engine::DecisionStats::failure_escapes); });
    metrics_.counter_fn("lb.congestion_reroutes",
                        [dsum] { return dsum(&engine::DecisionStats::congestion_reroutes); });
    metrics_.counter_fn("lb.blackhole_latches",
                        [dsum] { return dsum(&engine::DecisionStats::blackhole_latches); });
    metrics_.counter_fn("lb.latch_expiries",
                        [dsum] { return dsum(&engine::DecisionStats::latch_expiries); });
    const auto psum = [this](std::uint64_t lb::ProbeStats::* f) {
      std::uint64_t total = 0;
      for (const lb::HermesLb* h : hermes_) total += h->probe_stats().*f;
      return total;
    };
    metrics_.counter_fn("lb.probes_sent", [psum] { return psum(&lb::ProbeStats::probes_sent); });
    metrics_.counter_fn("lb.probe_replies",
                        [psum] { return psum(&lb::ProbeStats::replies_received); });
    metrics_.counter_fn("lb.probe_bytes", [psum] { return psum(&lb::ProbeStats::probe_bytes); });
  }
  if (!fault_scheds_.empty()) {
    metrics_.counter_fn("faults.installed", [this] {
      std::uint64_t total = 0;
      for (const auto& fs : fault_scheds_)
        if (fs) total += fs->applied() + fs->pending();
      return total;
    });
    metrics_.counter_fn("faults.applied", [this] {
      std::uint64_t total = 0;
      for (const auto& fs : fault_scheds_)
        if (fs) total += fs->applied();
      return total;
    });
    metrics_.gauge_fn("faults.active", [this] {
      int total = 0;
      for (const auto& fs : fault_scheds_)
        if (fs) total += fs->active_faults();
      return static_cast<double>(total);
    });
  }

  const auto tsum = [this](std::uint64_t ShardState::* f) {
    std::uint64_t total = 0;
    for (const ShardState& st : shard_states_) total += st.*f;
    return total;
  };
  metrics_.counter_fn("transport.flows_completed",
                      [tsum] { return tsum(&ShardState::flows_completed); });
  metrics_.counter_fn("transport.flows_unfinished",
                      [tsum] { return tsum(&ShardState::flows_unfinished); });
  metrics_.counter_fn("transport.timeouts", [tsum] { return tsum(&ShardState::timeouts); });
  metrics_.counter_fn("transport.fast_retransmits",
                      [tsum] { return tsum(&ShardState::fast_retransmits); });
  metrics_.counter_fn("transport.packets_sent",
                      [tsum] { return tsum(&ShardState::packets_sent); });
  metrics_.counter_fn("transport.packets_retransmitted",
                      [tsum] { return tsum(&ShardState::packets_retransmitted); });
  metrics_.counter_fn("transport.reroutes", [tsum] { return tsum(&ShardState::reroutes); });

  metrics_.gauge_fn("sharding.shards", [this] { return static_cast<double>(num_shards()); });
  metrics_.gauge_fn("sharding.threads", [this] { return static_cast<double>(threads_used_); });
  metrics_.counter_fn("sharding.rounds", [this] { return exec_stats_.rounds; });
  metrics_.counter_fn("sharding.boundary_packets",
                      [this] { return fabric_->boundary_packets(); });
  metrics_.gauge_fn("sharding.horizon_mean_ns", [this] {
    return exec_stats_.rounds == 0
               ? 0.0
               : static_cast<double>(exec_stats_.horizon_ns_total) /
                     static_cast<double>(exec_stats_.rounds);
  });
  for (int s = 0; s < S; ++s) {
    metrics_.counter_fn("sharding.shard" + std::to_string(s) + ".events",
                        [this, s] { return sims_[s]->events().events_processed(); });
  }
}

std::uint64_t ShardedScenario::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : sims_) total += s->events().events_processed();
  return total;
}

void ShardedScenario::absorb(int shard, const transport::FlowRecord& r) {
  ShardState& st = shard_states_[static_cast<std::size_t>(shard)];
  if (r.finished) {
    ++st.flows_completed;
  } else {
    ++st.flows_unfinished;
  }
  st.timeouts += r.timeouts;
  st.fast_retransmits += r.fast_retransmits;
  st.packets_sent += r.packets_sent;
  st.packets_retransmitted += r.packets_retransmitted;
  st.reroutes += r.reroutes;
}

void ShardedScenario::add_flows(const std::vector<transport::FlowSpec>& flows) {
  for (const auto& f : flows) {
    const int shard = fabric_->shard_of_host(f.src);
    ShardState& st = shard_states_[static_cast<std::size_t>(shard)];
    ++st.pending;
    sims_[shard]->at(f.start, [this, f, shard] {
      ShardState& owner = shard_states_[static_cast<std::size_t>(shard)];
      owner.live.emplace(f.id, f);
      stacks_[f.src]->start_flow(f, [this, id = f.id, shard](const transport::FlowRecord& r) {
        ShardState& owner2 = shard_states_[static_cast<std::size_t>(shard)];
        owner2.collector.add(r);
        absorb(shard, r);
        owner2.live.erase(id);
        --owner2.pending;
      });
    });
  }
}

std::uint64_t ShardedScenario::add_flow(std::int32_t src, std::int32_t dst, std::uint64_t size,
                                        sim::SimTime start) {
  transport::FlowSpec f;
  f.id = next_flow_id_++;
  f.src = src;
  f.dst = dst;
  f.size = size;
  f.start = start;
  add_flows({f});
  return f.id;
}

std::vector<std::uint64_t> ShardedScenario::sorted_active_ids(int shard) const {
  const ShardState& st = shard_states_[static_cast<std::size_t>(shard)];
  std::vector<std::uint64_t> ids;
  ids.reserve(st.live.size());
  for (const auto& [id, spec] : st.live) {  // hermeslint:allow(determinism.unordered-iter) key harvest only; sorted on the next line before anything consumes the order
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

stats::FctCollector ShardedScenario::run() {
  std::vector<sim::EventQueue*> queues;
  queues.reserve(sims_.size());
  for (auto& s : sims_) queues.push_back(&s->events());
  sim::ShardedExecutor exec{std::move(queues), fabric_->lookahead(), config_.threads};
  threads_used_ = exec.threads();
  exec.run_until(config_.max_sim_time, [this] {
    fabric_->exchange_boundary();
    std::size_t pending = 0;
    for (const ShardState& st : shard_states_) pending += st.pending;
    return pending > 0;
  });
  exec_stats_ = exec.stats();

  // Harvest unfinished flows at the time cap, then merge every shard's
  // records into ascending flow-id order — flow ids are unique, so the
  // merged stream is one canonical sequence independent of shard/thread
  // interleaving.
  std::vector<transport::FlowRecord> all;
  for (int s = 0; s < num_shards(); ++s) {
    ShardState& st = shard_states_[static_cast<std::size_t>(s)];
    for (const std::uint64_t id : sorted_active_ids(s)) {
      const transport::FlowSpec& spec = st.live.at(id);
      if (transport::TcpSender* snd = stacks_[spec.src]->sender(id)) {
        transport::FlowRecord r = snd->record();
        r.finished = false;
        r.end = config_.max_sim_time;
        st.collector.add(r);
        absorb(s, r);
      } else {
        st.collector.add_unfinished(spec.size, spec.start, config_.max_sim_time);
        ++st.flows_unfinished;
      }
    }
    const auto& recs = st.collector.records();
    all.insert(all.end(), recs.begin(), recs.end());
  }
  std::sort(all.begin(), all.end(),
            [](const transport::FlowRecord& a, const transport::FlowRecord& b) {
              return a.id < b.id;
            });
  stats::FctCollector merged;
  for (const transport::FlowRecord& r : all) merged.add(r);
  return merged;
}

bool ShardedScenario::dump_trace(const std::string& path) const {
  if (recorders_.empty()) return false;
  std::vector<const obs::FlightRecorder*> raw;
  raw.reserve(recorders_.size());
  for (const auto& r : recorders_) raw.push_back(r.get());
  return obs::write_merged_trace(path, raw);
}

}  // namespace hermes::harness
