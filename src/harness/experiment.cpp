#include <cstdint>

#include "hermes/harness/experiment.hpp"

namespace hermes::harness {

stats::FctCollector run_workload_experiment(ScenarioConfig scenario,
                                            const workload::SizeDist& dist, double load,
                                            int num_flows, std::uint64_t seed) {
  scenario.seed = seed;
  Scenario s{std::move(scenario)};
  workload::TrafficConfig tc;
  tc.load = load;
  tc.num_flows = num_flows;
  tc.seed = seed;
  s.add_flows(workload::generate_poisson_traffic(s.topology(), dist, tc));
  return s.run();
}

double mean_fct_over_seeds(const ScenarioConfig& scenario, const workload::SizeDist& dist,
                           double load, int num_flows, int repeats, std::uint64_t base_seed) {
  double sum = 0;
  for (int r = 0; r < repeats; ++r) {
    const auto fct =
        run_workload_experiment(scenario, dist, load, num_flows, base_seed + static_cast<std::uint64_t>(r));
    sum += fct.overall().mean_us;
  }
  return sum / repeats;
}

}  // namespace hermes::harness
