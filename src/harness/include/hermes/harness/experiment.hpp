#pragma once

#include <cstdint>

#include "hermes/harness/scenario.hpp"
#include "hermes/stats/fct.hpp"
#include "hermes/workload/flow_gen.hpp"
#include "hermes/workload/size_dist.hpp"

namespace hermes::harness {

/// Run one (scheme, workload, load) cell: generate Poisson traffic on the
/// configured fabric and return the FCT statistics. The traffic depends
/// only on (topology, dist, load, num_flows, seed), so different schemes
/// compared at the same cell see identical flows.
[[nodiscard]] stats::FctCollector run_workload_experiment(ScenarioConfig scenario,
                                                          const workload::SizeDist& dist,
                                                          double load, int num_flows,
                                                          std::uint64_t seed);

/// Average of `repeats` seeds of the overall mean FCT (paper: average of
/// 5 runs). Returns mean overall FCT in microseconds.
[[nodiscard]] double mean_fct_over_seeds(const ScenarioConfig& scenario,
                                         const workload::SizeDist& dist, double load,
                                         int num_flows, int repeats,
                                         std::uint64_t base_seed = 1);

}  // namespace hermes::harness
