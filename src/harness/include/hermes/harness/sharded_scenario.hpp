#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hermes/lb/hermes.hpp"
#include "hermes/faults/fault_plan.hpp"
#include "hermes/faults/fault_scheduler.hpp"
#include "hermes/harness/scenario.hpp"
#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/fattree.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/obs/string_table.hpp"
#include "hermes/sim/sharded_executor.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/stats/fct.hpp"
#include "hermes/transport/host_stack.hpp"
#include "hermes/transport/tcp_config.hpp"

namespace hermes::harness {

/// Configuration of a sharded fat-tree run. Reuses the serial harness's
/// Scheme and ObsConfig; the schemes that read global fabric congestion
/// state through the concrete Topology (CONGA, DRILL) are not available
/// sharded and are rejected at construction.
struct ShardedScenarioConfig {
  net::FatTreeConfig fabric;
  Scheme scheme = Scheme::kEcmp;
  transport::TcpConfig tcp;

  lb::HermesConfig hermes;
  lb::CloveConfig clove;
  lb::LetFlowConfig letflow;
  lb::FlowBenderConfig flowbender;
  bool presto_weighted = true;
  std::uint32_t presto_cell_bytes = 0;

  std::uint64_t seed = 1;
  sim::SimTime max_sim_time = sim::sec(10);

  /// Topology partitions (clamped to [1, k pods]). This — not the thread
  /// count — is what determines simulation results: a fixed shard count
  /// produces byte-identical output for every thread count.
  int num_shards = 1;
  /// Worker threads for the executor; 0 resolves via
  /// sim::resolve_threads() (HERMES_THREADS, then hardware concurrency)
  /// and is additionally capped at num_shards.
  unsigned threads = 0;

  faults::FaultPlan fault_plan;
  ObsConfig obs;
};

/// The sharded composition root: a FatTree partitioned across per-shard
/// Simulators, per-shard load balancers / host stacks / fault schedulers,
/// run under sim::ShardedExecutor with the fabric's mailbox exchange as
/// the barrier. The division of state follows flow ownership: a flow
/// lives entirely in the shard of its source host (sender, receiver-side
/// bookkeeping callbacks, LB decisions and probe state are all keyed by
/// source), so per-shard mutable state is only ever touched from that
/// shard's event stream and rounds can run on parallel threads.
///
/// Determinism contract: for a fixed config (including num_shards), the
/// merged results — FCT records, metrics, merged trace bytes — are
/// identical for any thread count (pinned by ShardedDeterminism tests).
/// Results for different *shard counts* are each self-consistent but not
/// byte-comparable to one another (cross-switch arrival interleavings
/// legitimately differ).
class ShardedScenario {
 public:
  explicit ShardedScenario(ShardedScenarioConfig config);
  ~ShardedScenario();

  ShardedScenario(const ShardedScenario&) = delete;
  ShardedScenario& operator=(const ShardedScenario&) = delete;

  [[nodiscard]] net::FatTree& fabric() { return *fabric_; }
  [[nodiscard]] sim::Simulator& shard_sim(int shard) { return *sims_[shard]; }
  [[nodiscard]] int num_shards() const { return static_cast<int>(sims_.size()); }
  [[nodiscard]] const ShardedScenarioConfig& config() const { return config_; }
  [[nodiscard]] transport::HostStack& stack(int host_id) { return *stacks_[host_id]; }
  /// The shard-local Hermes instance (null unless scheme is Hermes).
  [[nodiscard]] lb::HermesLb* hermes(int shard) { return hermes_[shard]; }

  /// Schedule flows; each is owned by (scheduled on, completed in) the
  /// shard of its source host.
  void add_flows(const std::vector<transport::FlowSpec>& flows);
  std::uint64_t add_flow(std::int32_t src, std::int32_t dst, std::uint64_t size,
                         sim::SimTime start);

  /// Run to completion (all flows done) or max_sim_time; returns the
  /// merged FCT collector with records in ascending flow-id order.
  stats::FctCollector run();

  /// Executor facts from the last run().
  [[nodiscard]] const sim::ShardedExecutor::Stats& executor_stats() const { return exec_stats_; }
  [[nodiscard]] unsigned threads_used() const { return threads_used_; }
  /// Events processed across every shard.
  [[nodiscard]] std::uint64_t events_processed() const;

  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  /// Per-shard recorder (null when obs is off).
  [[nodiscard]] obs::FlightRecorder* recorder(int shard) {
    return recorders_.empty() ? nullptr : recorders_[shard].get();
  }
  /// Dump all shards' rings as one merged schema-v2 trace (sorted by
  /// (time, shard), shared string table). False when obs is off.
  [[nodiscard]] bool dump_trace(const std::string& path) const;

 private:
  struct ShardState {
    std::size_t pending = 0;
    stats::FctCollector collector;
    std::unordered_map<std::uint64_t, transport::FlowSpec> live;
    std::uint64_t timeouts = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_retransmitted = 0;
    std::uint64_t reroutes = 0;
    std::uint64_t flows_completed = 0;
    std::uint64_t flows_unfinished = 0;
  };

  void build_balancers();
  void wire_observability();
  void absorb(int shard, const transport::FlowRecord& r);
  [[nodiscard]] int fault_owner_shard(const faults::FaultEvent& e) const;
  [[nodiscard]] std::vector<std::uint64_t> sorted_active_ids(int shard) const;

  ShardedScenarioConfig config_;
  // HERMES_SHARD_OWNED one Simulator per shard; index only by shard id
  std::vector<std::unique_ptr<sim::Simulator>> sims_;
  std::unique_ptr<net::FatTree> fabric_;
  // HERMES_SHARD_OWNED one balancer per shard
  std::vector<std::unique_ptr<lb::LoadBalancer>> lbs_;   ///< one per shard
  // HERMES_SHARD_OWNED shard-local Hermes instances (owned by lbs_)
  std::vector<lb::HermesLb*> hermes_;
  std::vector<std::unique_ptr<transport::HostStack>> stacks_;  ///< per host
  // HERMES_SHARD_OWNED per-shard fault scheduler, may be null
  std::vector<std::unique_ptr<faults::FaultScheduler>> fault_scheds_;
  obs::StringTable trace_names_;  ///< shared by every shard recorder
  // HERMES_SHARD_OWNED per-shard flight recorder
  std::vector<std::unique_ptr<obs::FlightRecorder>> recorders_;
  obs::MetricsRegistry metrics_;

  // HERMES_SHARD_OWNED per-shard mutable run state; a wrong index here is
  // a cross-shard data race under the parallel executor
  std::vector<ShardState> shard_states_;
  sim::ShardedExecutor::Stats exec_stats_;
  unsigned threads_used_ = 0;
  std::uint64_t next_flow_id_ = 1'000'000;
};

}  // namespace hermes::harness
