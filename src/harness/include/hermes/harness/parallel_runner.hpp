#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace hermes::harness {

/// Thread-pool runner for embarrassingly parallel experiment sweeps.
///
/// A simulation cell (one Scenario with its own EventQueue, Topology and
/// RNG streams) shares no mutable state with any other cell, so a sweep
/// over (scheme, load, workload) points is a pure map. The runner claims
/// indices from an atomic counter, so long cells (high load, large
/// flows) do not convoy behind a static partition.
///
/// Determinism: each cell's result depends only on its index/config,
/// never on which thread ran it or in what order — callers assemble
/// output from the index-ordered results, so a parallel sweep is
/// byte-identical to a serial one (covered by determinism_test).
///
/// Thread count: explicit argument, else the HERMES_THREADS environment
/// variable, else std::thread::hardware_concurrency(). The policy is
/// sim::resolve_threads — shared with the shard-level ShardedExecutor so
/// sweep-level and shard-level parallelism compose predictably.
class ParallelRunner {
 public:
  /// `threads == 0` means "pick a default" (see class comment).
  explicit ParallelRunner(unsigned threads = 0);

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// HERMES_THREADS env var if set to a positive integer, else hardware
  /// concurrency (at least 1). HERMES_THREADS=0, empty, or non-numeric
  /// all mean "unset" and take the hardware fallback (they are NOT a
  /// request for zero threads) — see sim::resolve_threads.
  [[nodiscard]] static unsigned default_threads();

  /// Invoke fn(i) for every i in [0, n), spread across the pool.
  /// Blocks until done. If any invocation throws, the first exception
  /// (by completion order) is rethrown after all workers stop; some
  /// indices may then not have run.
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn) const;

  /// Map [0, n) through fn, returning results in index order regardless
  /// of execution order. R must be default-constructible and movable.
  template <typename R, typename Fn>
  [[nodiscard]] std::vector<R> map(std::size_t n, Fn&& fn) const {
    std::vector<R> out(n);
    for_each_index(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  unsigned threads_;
};

}  // namespace hermes::harness
