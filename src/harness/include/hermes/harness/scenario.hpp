#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hermes/lb/hermes.hpp"
#include "hermes/faults/fault_plan.hpp"
#include "hermes/faults/fault_scheduler.hpp"
#include "hermes/faults/invariant_checker.hpp"
#include "hermes/lb/clove.hpp"
#include "hermes/lb/conga.hpp"
#include "hermes/lb/drill.hpp"
#include "hermes/lb/flowbender.hpp"
#include "hermes/lb/letflow.hpp"
#include "hermes/lb/load_balancer.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/sim/simulator.hpp"
#include "hermes/stats/fct.hpp"
#include "hermes/transport/host_stack.hpp"
#include "hermes/transport/tcp_config.hpp"

namespace hermes::harness {

/// The load balancing schemes the paper evaluates (§5.1), plus the two
/// extra baselines of Table 1 (FlowBender was implemented but its results
/// omitted by the paper; DRILL was related work).
enum class Scheme {
  kEcmp,
  kDrb,
  kPrestoStar,  ///< per-packet spray + reordering buffer, weighted if asym.
  kLetFlow,
  kConga,
  kCloveEcn,
  kHermes,
  kFlowBender,
  kDrill,
  kWcmp,
};

[[nodiscard]] const char* to_string(Scheme s);

/// Flight-recorder settings. Off by default: with `enabled == false` no
/// recorder exists and every instrumented hot-path site reduces to one
/// predicted-not-taken null check (measured at zero extra allocations by
/// bench_core_micro). The metrics registry is independent of this flag —
/// pull-model counters cost nothing until snapshotted.
struct ObsConfig {
  bool enabled = false;
  /// Ring capacity in records (rounded up to a power of two). The ring
  /// keeps the *last* `ring_capacity` records — black-box semantics.
  std::size_t ring_capacity = 1u << 16;
  /// Record per-packet port lifecycle events (the bulk of trace volume).
  /// Decision/fault/queue records are always on when `enabled`.
  bool trace_packets = true;
  /// Auto-triage: when the run ends with invariant violations or
  /// unfinished flows, dump the ring to `dump_path` (default
  /// "FUZZ_<seed>.htrc") and print a one-line repro hint to stderr.
  /// Requires `enabled`; used by the fuzz harness, harmless elsewhere.
  bool dump_on_violation = false;
  /// Override for the triage dump path; empty selects FUZZ_<seed>.htrc
  /// in the working directory.
  std::string dump_path;
};

/// Everything needed to run one experiment: fabric, scheme, transport.
struct ScenarioConfig {
  net::TopologyConfig topo;
  Scheme scheme = Scheme::kEcmp;
  transport::TcpConfig tcp;

  // Scheme parameters; zero-valued Hermes RTT thresholds are derived from
  // the topology via HermesConfig::defaults_for.
  lb::HermesConfig hermes;
  lb::CongaConfig conga;
  lb::CloveConfig clove;
  lb::LetFlowConfig letflow;
  lb::FlowBenderConfig flowbender;
  lb::DrillConfig drill;
  bool presto_weighted = true;
  /// 0 = spray per packet (the paper's Presto*); 64KB reproduces the
  /// original Presto flowcell granularity (used by Examples 2/3).
  std::uint32_t presto_cell_bytes = 0;

  std::uint64_t seed = 1;
  /// Wall guard: absolute simulated-time cap. Flows still running when it
  /// is reached are reported as unfinished (blackholed ECMP flows never
  /// finish; the cap is what ends them).
  sim::SimTime max_sim_time = sim::sec(10);

  /// Timed fault events (onset AND recovery) executed mid-run through a
  /// FaultScheduler — dynamic failures, unlike the static
  /// Switch::set_failure calls an experiment makes before traffic starts.
  faults::FaultPlan fault_plan;
  /// Wire an InvariantChecker across the fabric: byte conservation,
  /// bounded queues, and the stuck-flow watchdog, verified after every
  /// fault transition and every `invariant_config.period`.
  bool check_invariants = false;
  faults::InvariantCheckerConfig invariant_config;

  /// Observability (flight recorder) settings for this run.
  ObsConfig obs;

  /// Optional decorator wrapped around the built balancer — used by the
  /// microbenchmarks to pin initial placements, and by applications to
  /// substitute entirely custom schemes (see examples/custom_scheme.cpp).
  /// Receives the simulator, the built topology, and the scheme built
  /// from `scheme`; returns the balancer the fabric will actually use.
  std::function<std::unique_ptr<lb::LoadBalancer>(
      sim::Simulator&, net::Topology&, std::unique_ptr<lb::LoadBalancer>)>
      wrap_balancer;
};

/// Builds a fabric + per-host transport stacks + the selected load
/// balancer, runs flow workloads, and collects FCT results. This is the
/// per-experiment composition root used by examples, tests and benches.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return *simulator_; }
  [[nodiscard]] net::Topology& topology() { return *topo_; }
  [[nodiscard]] lb::LoadBalancer& balancer() { return *lb_; }
  [[nodiscard]] transport::HostStack& stack(int host_id) { return *stacks_[host_id]; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  /// Non-null only when the scheme is Hermes.
  [[nodiscard]] lb::HermesLb* hermes() { return hermes_; }
  /// Non-null only when the config carried a fault plan.
  [[nodiscard]] faults::FaultScheduler* fault_scheduler() { return fault_sched_.get(); }
  /// Non-null only when check_invariants was set.
  [[nodiscard]] faults::InvariantChecker* invariants() { return checker_.get(); }

  /// Non-null only when config.obs.enabled: the flight recorder wired
  /// into every port, the balancer, and the fault scheduler.
  [[nodiscard]] obs::FlightRecorder* recorder() { return recorder_.get(); }
  /// Always-on metrics registry: sim/net/transport/lb/faults counters are
  /// registered at construction; snapshot in sorted-name order.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  /// Dump the flight recorder to a schema-v1 trace file readable by
  /// `hermestrace`. Returns false when observability is off or on I/O
  /// failure.
  [[nodiscard]] bool dump_trace(const std::string& path) const;
  /// Non-empty once run() auto-dumped a triage trace (obs.dump_on_violation
  /// and the run ended with violations or unfinished flows).
  [[nodiscard]] const std::string& triage_path() const { return triage_path_; }

  /// Schedule a list of flows (e.g. from workload::generate_poisson_traffic).
  void add_flows(const std::vector<transport::FlowSpec>& flows);
  /// Schedule a single flow; returns its id.
  std::uint64_t add_flow(std::int32_t src, std::int32_t dst, std::uint64_t size,
                         sim::SimTime start);

  /// Run until every scheduled flow finishes or max_sim_time is reached;
  /// returns FCT statistics (unfinished flows included as such).
  stats::FctCollector run();
  /// Run for a fixed simulated duration (microbenchmarks / traces).
  void run_for(sim::SimTime duration);

  /// Flows currently in flight (visibility sampling, Table 2).
  [[nodiscard]] const std::unordered_map<std::uint64_t, transport::FlowSpec>& active_flows()
      const {
    return active_;
  }
  [[nodiscard]] std::uint64_t next_flow_id() { return next_flow_id_++; }

  /// In-flight flow ids in ascending order — the deterministic view of
  /// active_flows() for anything that feeds results or reports.
  [[nodiscard]] std::vector<std::uint64_t> sorted_active_ids() const;

 private:
  void build_balancer();
  void wire_observability();
  void maybe_dump_triage();

  /// Flow-level totals accumulated as FlowRecords arrive (completion
  /// callback and end-of-run harvest), so "transport.*" metrics never
  /// iterate the unordered active-flow map.
  struct TransportTotals {
    std::uint64_t flows_completed = 0;
    std::uint64_t flows_unfinished = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_retransmitted = 0;
    std::uint64_t reroutes = 0;
  };
  void absorb(const transport::FlowRecord& r);

  ScenarioConfig config_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<net::Topology> topo_;
  std::unique_ptr<lb::LoadBalancer> lb_;
  lb::HermesLb* hermes_ = nullptr;  // owned by lb_
  std::vector<std::unique_ptr<transport::HostStack>> stacks_;
  std::unique_ptr<faults::InvariantChecker> checker_;
  std::unique_ptr<faults::FaultScheduler> fault_sched_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  obs::MetricsRegistry metrics_;
  TransportTotals transport_totals_;

  stats::FctCollector collector_;
  std::string triage_path_;
  std::unordered_map<std::uint64_t, transport::FlowSpec> active_;
  std::size_t pending_ = 0;
  std::uint64_t next_flow_id_ = 1'000'000;  // manual flows; workloads use small ids
};

}  // namespace hermes::harness
