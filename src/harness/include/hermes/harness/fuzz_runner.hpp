#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "hermes/faults/scenario_fuzzer.hpp"
#include "hermes/harness/scenario.hpp"

namespace hermes::harness {

/// Result of running one fuzz seed against one scheme. `clean()` is the
/// CI pass criterion; anything else comes with a dumped trace and a
/// copy-pasteable repro command.
struct FuzzOutcome {
  std::uint64_t seed = 0;
  Scheme scheme = Scheme::kHermes;
  std::size_t violations = 0;        ///< hard invariant violations
  std::size_t unfinished_flows = 0;  ///< flows stranded at the time cap
  std::string first_violation;       ///< first violation message, if any
  std::string trace_path;            ///< auto-dumped FUZZ_<seed>.htrc, if any
  std::string repro;                 ///< one-line replay command, if not clean

  [[nodiscard]] bool clean() const { return violations == 0 && unfinished_flows == 0; }
};

/// Expand a generated FuzzScenario into a runnable ScenarioConfig for the
/// given scheme: invariant checking on, and (when `triage` is set) the
/// flight recorder armed to auto-dump FUZZ_<seed>.htrc on failure. Lives
/// here, not in faults — the fuzzer stays scheme- and workload-agnostic,
/// and the harness owns the composition.
[[nodiscard]] ScenarioConfig to_scenario_config(const faults::fuzz::FuzzScenario& fs,
                                                Scheme scheme, bool triage = true);

/// Run one fuzz scenario end to end: build the Scenario, generate the
/// seed's Poisson traffic from its workload mix, run to completion or the
/// time cap, and collect the triage verdict. Non-empty `dump_dir` places
/// any triage dump at <dump_dir>/FUZZ_<seed>.htrc instead of the CWD.
[[nodiscard]] FuzzOutcome run_fuzz_scenario(const faults::fuzz::FuzzScenario& fs, Scheme scheme,
                                            bool triage = true,
                                            const std::string& dump_dir = {});

/// Parse a scheme name as printed by to_string(Scheme) ("Hermes",
/// "CONGA", "CLOVE-ECN", ...), case-insensitively.
[[nodiscard]] std::optional<Scheme> parse_scheme(std::string_view name);

/// Result of one sharded-determinism fuzz seed: the same derived
/// fat-tree scenario (topology shards, workload, fault flap train) run
/// twice, with 1 and 2 worker threads. The pass criterion is
/// `deterministic()` — byte-identical FCT records and metrics — not
/// cleanliness: fault trains legitimately strand flows under schemes
/// with no blackhole escape, and that must strand them *identically*.
struct ShardedFuzzOutcome {
  std::uint64_t seed = 0;
  Scheme scheme = Scheme::kHermes;
  int num_shards = 0;
  std::uint64_t hash_t1 = 0;  ///< FNV-1a of (FCT csv + metrics), 1 thread
  std::uint64_t hash_t2 = 0;  ///< same scenario, 2 threads
  std::size_t unfinished_flows = 0;
  std::string repro;  ///< one-line replay command, set on mismatch

  [[nodiscard]] bool deterministic() const { return hash_t1 == hash_t2; }
};

/// Expand `seed` into a small sharded fat-tree scenario (k=4; 2..4
/// shards, load, workload mix and a fault flap train all derived from the
/// seed) and run it at 1 and 2 executor threads. Throws
/// std::invalid_argument for schemes the sharded harness rejects
/// (CONGA, DRILL).
[[nodiscard]] ShardedFuzzOutcome run_sharded_fuzz_seed(std::uint64_t seed, Scheme scheme);

}  // namespace hermes::harness
