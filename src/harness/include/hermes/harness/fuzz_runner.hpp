#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "hermes/faults/scenario_fuzzer.hpp"
#include "hermes/harness/scenario.hpp"

namespace hermes::harness {

/// Result of running one fuzz seed against one scheme. `clean()` is the
/// CI pass criterion; anything else comes with a dumped trace and a
/// copy-pasteable repro command.
struct FuzzOutcome {
  std::uint64_t seed = 0;
  Scheme scheme = Scheme::kHermes;
  std::size_t violations = 0;        ///< hard invariant violations
  std::size_t unfinished_flows = 0;  ///< flows stranded at the time cap
  std::string first_violation;       ///< first violation message, if any
  std::string trace_path;            ///< auto-dumped FUZZ_<seed>.htrc, if any
  std::string repro;                 ///< one-line replay command, if not clean

  [[nodiscard]] bool clean() const { return violations == 0 && unfinished_flows == 0; }
};

/// Expand a generated FuzzScenario into a runnable ScenarioConfig for the
/// given scheme: invariant checking on, and (when `triage` is set) the
/// flight recorder armed to auto-dump FUZZ_<seed>.htrc on failure. Lives
/// here, not in faults — the fuzzer stays scheme- and workload-agnostic,
/// and the harness owns the composition.
[[nodiscard]] ScenarioConfig to_scenario_config(const faults::fuzz::FuzzScenario& fs,
                                                Scheme scheme, bool triage = true);

/// Run one fuzz scenario end to end: build the Scenario, generate the
/// seed's Poisson traffic from its workload mix, run to completion or the
/// time cap, and collect the triage verdict. Non-empty `dump_dir` places
/// any triage dump at <dump_dir>/FUZZ_<seed>.htrc instead of the CWD.
[[nodiscard]] FuzzOutcome run_fuzz_scenario(const faults::fuzz::FuzzScenario& fs, Scheme scheme,
                                            bool triage = true,
                                            const std::string& dump_dir = {});

/// Parse a scheme name as printed by to_string(Scheme) ("Hermes",
/// "CONGA", "CLOVE-ECN", ...), case-insensitively.
[[nodiscard]] std::optional<Scheme> parse_scheme(std::string_view name);

}  // namespace hermes::harness
