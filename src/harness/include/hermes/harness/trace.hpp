#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "hermes/net/port.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/records.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::harness {

/// Periodic sampler of a port's queue backlog, for the queue-oscillation
/// figures (Fig. 2b, Fig. 4b). Optionally mirrors every sample into a
/// flight recorder as a kQueue record (record_to), so queue history lands
/// in the same timeline as packet and decision records.
class QueueTrace {
 public:
  QueueTrace(sim::Simulator& simulator, const net::Port& port, sim::SimTime interval)
      : simulator_{simulator}, port_{port}, interval_{interval} {}

  void start(sim::SimTime until) {
    until_ = until;
    tick();
  }

  /// Mirror samples into `rec` (null stops mirroring). Interns the port
  /// name once, here.
  void record_to(obs::FlightRecorder* rec) {
    rec_ = rec;
    name_id_ = rec != nullptr ? rec->intern(port_.name()) : 0;
  }

  /// (time_us, backlog_bytes) samples.
  [[nodiscard]] const std::vector<std::pair<double, std::uint32_t>>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::uint32_t max_backlog() const {
    std::uint32_t m = 0;
    for (const auto& [t, b] : samples_) m = std::max(m, b);
    return m;
  }
  [[nodiscard]] double mean_backlog() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (const auto& [t, b] : samples_) sum += b;
    return sum / static_cast<double>(samples_.size());
  }

 private:
  void tick() {
    samples_.emplace_back(simulator_.now().to_usec(), port_.backlog_bytes());
    if (rec_ != nullptr) [[unlikely]] {
      obs::TraceRecord r = obs::make_record(
          obs::RecordKind::kQueue, static_cast<std::uint64_t>(simulator_.now().ns()), name_id_, 0);
      r.u.queue.backlog_bytes = port_.backlog_bytes();
      r.u.queue.backlog_packets = static_cast<std::uint32_t>(port_.backlog_packets());
      rec_->append(r);
    }
    if (simulator_.now() < until_) simulator_.after(interval_, [this] { tick(); });
  }

  sim::Simulator& simulator_;
  const net::Port& port_;
  sim::SimTime interval_;
  sim::SimTime until_{};
  std::vector<std::pair<double, std::uint32_t>> samples_;
  obs::FlightRecorder* rec_ = nullptr;
  std::uint32_t name_id_ = 0;
};

/// Periodic sampler of any numeric probe (flow goodput, path rates, ...).
class ValueTrace {
 public:
  ValueTrace(sim::Simulator& simulator, sim::SimTime interval, std::function<double()> probe)
      : simulator_{simulator}, interval_{interval}, probe_{std::move(probe)} {}

  void start(sim::SimTime until) {
    until_ = until;
    tick();
  }

  [[nodiscard]] const std::vector<std::pair<double, double>>& samples() const {
    return samples_;
  }
  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0;
    double s = 0;
    for (const auto& [t, v] : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

 private:
  void tick() {
    samples_.emplace_back(simulator_.now().to_usec(), probe_());
    if (simulator_.now() < until_) simulator_.after(interval_, [this] { tick(); });
  }

  sim::Simulator& simulator_;
  sim::SimTime interval_;
  std::function<double()> probe_;
  sim::SimTime until_{};
  std::vector<std::pair<double, double>> samples_;
};

}  // namespace hermes::harness
