#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "hermes/net/port.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::harness {

/// Periodic sampler of a port's queue backlog, for the queue-oscillation
/// figures (Fig. 2b, Fig. 4b).
class QueueTrace {
 public:
  QueueTrace(sim::Simulator& simulator, const net::Port& port, sim::SimTime interval)
      : simulator_{simulator}, port_{port}, interval_{interval} {}

  void start(sim::SimTime until) {
    until_ = until;
    tick();
  }

  /// (time_us, backlog_bytes) samples.
  [[nodiscard]] const std::vector<std::pair<double, std::uint32_t>>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::uint32_t max_backlog() const {
    std::uint32_t m = 0;
    for (const auto& [t, b] : samples_) m = std::max(m, b);
    return m;
  }
  [[nodiscard]] double mean_backlog() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (const auto& [t, b] : samples_) sum += b;
    return sum / static_cast<double>(samples_.size());
  }

 private:
  void tick() {
    samples_.emplace_back(simulator_.now().to_usec(), port_.backlog_bytes());
    if (simulator_.now() < until_) simulator_.after(interval_, [this] { tick(); });
  }

  sim::Simulator& simulator_;
  const net::Port& port_;
  sim::SimTime interval_;
  sim::SimTime until_{};
  std::vector<std::pair<double, std::uint32_t>> samples_;
};

/// Periodic sampler of any numeric probe (flow goodput, path rates, ...).
class ValueTrace {
 public:
  ValueTrace(sim::Simulator& simulator, sim::SimTime interval, std::function<double()> probe)
      : simulator_{simulator}, interval_{interval}, probe_{std::move(probe)} {}

  void start(sim::SimTime until) {
    until_ = until;
    tick();
  }

  [[nodiscard]] const std::vector<std::pair<double, double>>& samples() const {
    return samples_;
  }
  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0;
    double s = 0;
    for (const auto& [t, v] : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

 private:
  void tick() {
    samples_.emplace_back(simulator_.now().to_usec(), probe_());
    if (simulator_.now() < until_) simulator_.after(interval_, [this] { tick(); });
  }

  sim::Simulator& simulator_;
  sim::SimTime interval_;
  std::function<double()> probe_;
  sim::SimTime until_{};
  std::vector<std::pair<double, double>> samples_;
};

}  // namespace hermes::harness
