#include "hermes/harness/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "hermes/sim/sharded_executor.hpp"

namespace hermes::harness {

unsigned ParallelRunner::default_threads() { return sim::resolve_threads(0); }

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_{threads == 0 ? default_threads() : threads} {}

void ParallelRunner::for_each_index(std::size_t n,
                                    const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const auto workers = static_cast<unsigned>(std::min<std::size_t>(threads_, n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto work = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock{error_mu};
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(work);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace hermes::harness
