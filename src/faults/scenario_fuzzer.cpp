#include "hermes/faults/scenario_fuzzer.hpp"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "hermes/faults/random_faults.hpp"
#include "hermes/sim/rng.hpp"

namespace hermes::faults::fuzz {

namespace {

/// Fixed float formatting for describe(): enough digits to round-trip
/// every value the generator produces, stable across platforms for the
/// IEEE-754 doubles our uniform draws yield.
std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string fmt_ns(sim::SimTime t) { return std::to_string(t.ns()); }

/// Canonical note for a rack-pair blackhole: the predicate itself is a
/// std::function (unserializable), so the parameters that built it are
/// recorded in the event note and describe() stays byte-exact.
std::string blackhole_note(int src_leaf, int dst_leaf, bool half) {
  return "bh leaf" + std::to_string(src_leaf) + "->leaf" + std::to_string(dst_leaf) +
         " half=" + std::to_string(half ? 1 : 0);
}

}  // namespace

const char* to_string(Workload w) {
  switch (w) {
    case Workload::kWebSearch: return "web-search";
    case Workload::kDataMining: return "data-mining";
  }
  return "?";
}

std::string FuzzScenario::describe() const {
  std::string s = "fuzz-scenario v1 seed=" + std::to_string(seed) + "\n";
  s += "topo leaves=" + std::to_string(topo.num_leaves) +
       " spines=" + std::to_string(topo.num_spines) +
       " hosts_per_leaf=" + std::to_string(topo.hosts_per_leaf) +
       " links_per_pair=" + std::to_string(topo.links_per_pair) +
       " host_bps=" + fmt(topo.host_rate_bps) + " fabric_bps=" + fmt(topo.fabric_rate_bps) +
       "\n";
  for (const auto& [key, bps] : topo.fabric_overrides) {
    const auto& [leaf, spine, k] = key;
    s += "override leaf=" + std::to_string(leaf) + " spine=" + std::to_string(spine) +
         " k=" + std::to_string(k) + " bps=" + fmt(bps) + "\n";
  }
  s += "workload dist=" + std::string(to_string(workload)) + " scale=" + fmt(workload_scale) +
       " load=" + fmt(load) + " flows=" + std::to_string(num_flows) + "\n";
  s += "cap_ns=" + fmt_ns(max_sim_time) + "\n";
  for (const FaultEvent& e : plan.events()) {
    s += "fault at_ns=" + fmt_ns(e.at) + " action=" + faults::to_string(e.action);
    if (e.action == FaultAction::kBlackholeOn || e.action == FaultAction::kBlackholeOff ||
        e.action == FaultAction::kRandomDropSet) {
      s += std::string(" tier=") + (e.tier == SwitchTier::kLeaf ? "leaf" : "spine") +
           " sw=" + std::to_string(e.switch_id);
    } else {
      s += " leaf=" + std::to_string(e.link.leaf) + " spine=" + std::to_string(e.link.spine) +
           " k=" + std::to_string(e.link.k);
    }
    s += " rate=" + fmt(e.rate) + " note=" + e.note + "\n";
  }
  return s;
}

FuzzScenario RandomScenarioGenerator::generate(std::uint64_t seed) const {
  // One master stream, drawn in a fixed documented order: topology,
  // workload, base fault plan (forked stream), edge patterns. Changing
  // this order changes every scenario — the golden-hash test will say so.
  sim::Rng rng{seed};
  FuzzScenario sc;
  sc.seed = seed;
  sc.max_sim_time = limits_.max_sim_time;

  // --- topology ---------------------------------------------------------
  const auto span = [&rng](int lo, int hi) {  // uniform int in [lo, hi]
    return lo + static_cast<int>(rng.next(static_cast<std::uint64_t>(hi - lo + 1)));
  };
  sc.topo.num_leaves = span(limits_.min_leaves, limits_.max_leaves);
  sc.topo.num_spines = span(limits_.min_spines, limits_.max_spines);
  std::vector<int> hpl_choices;
  for (const int h : {2, 4, 8}) {
    if (h <= limits_.max_hosts_per_leaf) hpl_choices.push_back(h);
  }
  sc.topo.hosts_per_leaf = hpl_choices[rng.next(hpl_choices.size())];
  sc.topo.links_per_pair = rng.chance(0.25) ? 2 : 1;
  sc.topo.host_rate_bps = 10e9;
  sc.topo.fabric_rate_bps = rng.chance(0.3) ? 40e9 : 10e9;
  if (rng.chance(limits_.asym_prob)) {
    // Build-time capacity asymmetry (the fig13/fig14 dimension). Never 0:
    // a zero override removes the path from enumeration, which is a
    // different (statically known) failure class than what we fuzz.
    const int degraded = span(1, 2);
    const double factors[] = {0.25, 0.4, 0.5};
    for (int i = 0; i < degraded; ++i) {
      const int leaf = static_cast<int>(rng.next(static_cast<std::uint64_t>(sc.topo.num_leaves)));
      const int spine =
          static_cast<int>(rng.next(static_cast<std::uint64_t>(sc.topo.num_spines)));
      const int k =
          static_cast<int>(rng.next(static_cast<std::uint64_t>(sc.topo.links_per_pair)));
      sc.topo.fabric_overrides[{leaf, spine, k}] =
          sc.topo.fabric_rate_bps * factors[rng.next(3)];
    }
  }

  // --- workload ---------------------------------------------------------
  const bool data_mining = rng.chance(0.5);
  sc.workload = data_mining ? Workload::kDataMining : Workload::kWebSearch;
  // Scaled so mean flow size stays in the hundreds-of-KB range: seeds
  // must run in fractions of a second for thousands-deep nightly sweeps.
  sc.workload_scale = data_mining ? rng.uniform(0.02, 0.08) : rng.uniform(0.05, 0.2);
  sc.load = rng.uniform(limits_.min_load, limits_.max_load);
  sc.num_flows = span(limits_.min_flows, limits_.max_flows);

  // --- fault plan: MTBF/MTTR base --------------------------------------
  RandomFaultConfig fc;
  fc.start = sim::msec(span(5, 15));
  fc.horizon = sim::msec(span(80, 200));
  fc.mtbf = sim::msec(span(15, 75));
  fc.mttr = sim::msec(span(5, 45));
  fc.half_pair_blackholes = rng.chance(0.5);
  sc.plan = RandomFaultGenerator(sc.topo, fc, rng.fork(0xFA5E)).generate();

  // --- fault plan: adversarial edge patterns ----------------------------
  // Overlapping and back-to-back transitions the MTBF process rarely
  // produces but real incident trains do (CAFT's three-tier fault model).
  if (rng.chance(limits_.edge_pattern_prob)) {
    const int spine = static_cast<int>(rng.next(static_cast<std::uint64_t>(sc.topo.num_spines)));
    const sim::SimTime t1 = sim::msec(span(20, 60));
    const sim::SimTime d = sim::msec(span(10, 30));
    switch (rng.next(4)) {
      case 0:  // flap train: repeated onset/heal on one switch
        sc.plan.flap_random_drop(t1, spine, rng.uniform(0.01, 0.04), d, span(2, 4), 0.5,
                                 SwitchTier::kSpine);
        break;
      case 1: {  // back-to-back blackholes: heal and immediate re-onset
        const int a = static_cast<int>(rng.next(static_cast<std::uint64_t>(sc.topo.num_leaves)));
        int b = static_cast<int>(rng.next(static_cast<std::uint64_t>(sc.topo.num_leaves)));
        if (b == a) b = (b + 1) % sc.topo.num_leaves;
        if (b == a) break;  // single-leaf fabric: nothing to blackhole
        const bool half = rng.chance(0.5);
        sc.plan
            .blackhole_on(t1, spine,
                          rack_pair_blackhole(sc.topo.hosts_per_leaf, a, b, half),
                          SwitchTier::kSpine, blackhole_note(a, b, half))
            .blackhole_off(t1 + d, spine, SwitchTier::kSpine, "b2b heal")
            .blackhole_on(t1 + d, spine,
                          rack_pair_blackhole(sc.topo.hosts_per_leaf, b, a, half),
                          SwitchTier::kSpine, blackhole_note(b, a, half))
            .blackhole_off(t1 + d + d, spine, SwitchTier::kSpine, "b2b heal 2");
        break;
      }
      case 2: {  // overlapping cuts of the same link (redundant re-onset)
        const int leaf = static_cast<int>(rng.next(static_cast<std::uint64_t>(sc.topo.num_leaves)));
        const int k =
            static_cast<int>(rng.next(static_cast<std::uint64_t>(sc.topo.links_per_pair)));
        sc.plan.link_down(t1, leaf, spine, k, "overlap onset")
            .link_down(t1 + d, leaf, spine, k, "overlap re-onset")
            .link_up(t1 + d + d, leaf, spine, k, "overlap heal");
        break;
      }
      default: {  // zero-duration faults: onset and heal at the same tick
        sc.plan.random_drop(t1, spine, rng.uniform(0.01, 0.04), SwitchTier::kSpine, "zero-dur on")
            .random_drop(t1, spine, 0.0, SwitchTier::kSpine, "zero-dur off");
        const int leaf = static_cast<int>(rng.next(static_cast<std::uint64_t>(sc.topo.num_leaves)));
        sc.plan.link_down(t1 + d, leaf, spine, 0, "zero-dur cut")
            .link_up(t1 + d, leaf, spine, 0, "zero-dur restore");
        break;
      }
    }
  }
  return sc;
}

}  // namespace hermes::faults::fuzz
