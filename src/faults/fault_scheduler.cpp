#include "hermes/faults/fault_scheduler.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "hermes/net/port.hpp"
#include "hermes/net/switch.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/obs/records.hpp"

namespace hermes::faults {

namespace {
net::Switch& target_switch(net::Fabric& topo, const FaultEvent& e) {
  return e.tier == SwitchTier::kLeaf ? topo.leaf(e.switch_id) : topo.spine(e.switch_id);
}
}  // namespace

FaultScheduler::FaultScheduler(sim::Simulator& simulator, net::Fabric& topo)
    : simulator_{simulator}, topo_{topo} {}

void FaultScheduler::install(const FaultPlan& plan) {
  // Events are stored on the scheduler and the queue carries only an
  // index: the capture stays tiny (fits the inline event callback) and a
  // FaultEvent's std::string/std::function members are never copied
  // through the event queue.
  for (const FaultEvent& e : plan.sorted()) {
    const std::size_t idx = installed_events_.size();
    installed_events_.push_back(e);
    ++installed_;
    simulator_.at(e.at, [this, idx] { apply(installed_events_[idx]); });
  }
}

void FaultScheduler::apply(const FaultEvent& e) {
  switch (e.action) {
    case FaultAction::kBlackholeOn: {
      net::Switch& sw = target_switch(topo_, e);
      if (!sw.failure().blackhole) ++active_;  // replacing a hole is not a new fault
      sw.set_blackhole(e.blackhole);
      break;
    }
    case FaultAction::kBlackholeOff: {
      net::Switch& sw = target_switch(topo_, e);
      if (sw.failure().blackhole) --active_;
      sw.clear_blackhole();
      break;
    }
    case FaultAction::kRandomDropSet: {
      net::Switch& sw = target_switch(topo_, e);
      const double prev = sw.failure().random_drop_rate;
      if (prev <= 0.0 && e.rate > 0.0) ++active_;
      if (prev > 0.0 && e.rate <= 0.0) --active_;
      sw.set_random_drop_rate(e.rate);
      break;
    }
    case FaultAction::kLinkDown: {
      if (topo_.leaf_uplink(e.link.leaf, e.link.spine, e.link.k).link_up()) ++active_;
      topo_.set_link_state(e.link.leaf, e.link.spine, false, e.link.k);
      break;
    }
    case FaultAction::kLinkUp: {
      if (!topo_.leaf_uplink(e.link.leaf, e.link.spine, e.link.k).link_up()) --active_;
      topo_.set_link_state(e.link.leaf, e.link.spine, true, e.link.k);
      break;
    }
    case FaultAction::kLinkRate: {
      const double nominal = topo_.configured_link_rate(e.link.leaf, e.link.spine, e.link.k);
      const double prev =
          topo_.leaf_uplink(e.link.leaf, e.link.spine, e.link.k).config().rate_bps;
      if (prev >= nominal && e.rate < nominal) ++active_;
      if (prev < nominal && e.rate >= nominal) --active_;
      topo_.set_link_rate(e.link.leaf, e.link.spine, e.rate, e.link.k);
      break;
    }
  }
  log_.push_back({simulator_.now(), e.action, describe(e)});
  if (rec_ != nullptr) {
    // Onset vs recovery by action semantics (a kLinkRate below the
    // configured capacity is a degradation onset; at/above it, recovery).
    bool onset = true;
    switch (e.action) {
      case FaultAction::kBlackholeOn:
      case FaultAction::kLinkDown: onset = true; break;
      case FaultAction::kBlackholeOff:
      case FaultAction::kLinkUp: onset = false; break;
      case FaultAction::kRandomDropSet: onset = e.rate > 0.0; break;
      case FaultAction::kLinkRate:
        onset = e.rate < topo_.configured_link_rate(e.link.leaf, e.link.spine, e.link.k);
        break;
    }
    record_fault(e, onset);
  }
  if (on_transition) on_transition(e);
}

void FaultScheduler::record_fault(const FaultEvent& e, bool onset) {
  obs::TraceRecord r = obs::make_record(obs::RecordKind::kFault,
                                        static_cast<std::uint64_t>(simulator_.now().ns()),
                                        name_id_, 0);
  const bool link_event = e.action == FaultAction::kLinkDown || e.action == FaultAction::kLinkUp ||
                          e.action == FaultAction::kLinkRate;
  r.u.fault.switch_id = link_event ? -1 : e.switch_id;
  r.u.fault.leaf = static_cast<std::int16_t>(
      link_event ? e.link.leaf : (e.tier == SwitchTier::kLeaf ? e.switch_id : -1));
  r.u.fault.spine = static_cast<std::int16_t>(
      link_event ? e.link.spine : (e.tier == SwitchTier::kSpine ? e.switch_id : -1));
  r.u.fault.action = static_cast<std::uint8_t>(e.action);
  r.u.fault.onset = onset ? 1 : 0;
  rec_->append(r);
}

void FaultScheduler::register_metrics(obs::MetricsRegistry& reg) {
  reg.counter_fn("faults.installed", [this] { return static_cast<std::uint64_t>(installed_); });
  reg.counter_fn("faults.applied", [this] { return static_cast<std::uint64_t>(log_.size()); });
  reg.gauge_fn("faults.active", [this] { return static_cast<double>(active_); });
}

std::string FaultScheduler::describe(const FaultEvent& e) {
  std::string s = to_string(e.action);
  if (e.action == FaultAction::kBlackholeOn || e.action == FaultAction::kBlackholeOff ||
      e.action == FaultAction::kRandomDropSet) {
    s += e.tier == SwitchTier::kLeaf ? " leaf" : " spine";
    s += std::to_string(e.switch_id);
    if (e.action == FaultAction::kRandomDropSet)
      s += " rate=" + std::to_string(e.rate);
  } else {
    s += " leaf" + std::to_string(e.link.leaf) + "<->spine" + std::to_string(e.link.spine) +
         "/" + std::to_string(e.link.k);
    if (e.action == FaultAction::kLinkRate) s += " bps=" + std::to_string(e.rate);
  }
  if (!e.note.empty()) s += " (" + e.note + ")";
  return s;
}

}  // namespace hermes::faults
