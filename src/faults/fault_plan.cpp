#include <cstdint>
#include <functional>
#include <string>

#include "hermes/faults/fault_plan.hpp"

namespace hermes::faults {

const char* to_string(FaultAction a) {
  switch (a) {
    case FaultAction::kBlackholeOn: return "blackhole-on";
    case FaultAction::kBlackholeOff: return "blackhole-off";
    case FaultAction::kRandomDropSet: return "random-drop";
    case FaultAction::kLinkDown: return "link-down";
    case FaultAction::kLinkUp: return "link-up";
    case FaultAction::kLinkRate: return "link-rate";
  }
  return "?";
}

std::function<bool(const net::Packet&)> rack_pair_blackhole(int hosts_per_leaf, int src_leaf,
                                                            int dst_leaf, bool half_pairs) {
  return [=](const net::Packet& p) {
    if (p.type != net::PacketType::kData) return false;
    if (p.src / hosts_per_leaf != src_leaf || p.dst / hosts_per_leaf != dst_leaf) return false;
    if (!half_pairs) return true;
    // "Half of the source-destination IP pairs": deterministic per header
    // pattern, like a corrupted TCAM entry.
    return lb::mix64(static_cast<std::uint64_t>(p.src) * 4096 +
                     static_cast<std::uint64_t>(p.dst)) %
               2 ==
           0;
  };
}

FaultPlan& FaultPlan::blackhole_on(sim::SimTime at, int switch_id,
                                   std::function<bool(const net::Packet&)> pred,
                                   SwitchTier tier, std::string note) {
  FaultEvent e;
  e.at = at;
  e.action = FaultAction::kBlackholeOn;
  e.tier = tier;
  e.switch_id = switch_id;
  e.blackhole = std::move(pred);
  e.note = std::move(note);
  return add(std::move(e));
}

FaultPlan& FaultPlan::blackhole_off(sim::SimTime at, int switch_id, SwitchTier tier,
                                    std::string note) {
  FaultEvent e;
  e.at = at;
  e.action = FaultAction::kBlackholeOff;
  e.tier = tier;
  e.switch_id = switch_id;
  e.note = std::move(note);
  return add(std::move(e));
}

FaultPlan& FaultPlan::random_drop(sim::SimTime at, int switch_id, double rate, SwitchTier tier,
                                  std::string note) {
  FaultEvent e;
  e.at = at;
  e.action = FaultAction::kRandomDropSet;
  e.tier = tier;
  e.switch_id = switch_id;
  e.rate = rate;
  e.note = std::move(note);
  return add(std::move(e));
}

FaultPlan& FaultPlan::link_down(sim::SimTime at, int leaf, int spine, int k, std::string note) {
  FaultEvent e;
  e.at = at;
  e.action = FaultAction::kLinkDown;
  e.link = {leaf, spine, k};
  e.note = std::move(note);
  return add(std::move(e));
}

FaultPlan& FaultPlan::link_up(sim::SimTime at, int leaf, int spine, int k, std::string note) {
  FaultEvent e;
  e.at = at;
  e.action = FaultAction::kLinkUp;
  e.link = {leaf, spine, k};
  e.note = std::move(note);
  return add(std::move(e));
}

FaultPlan& FaultPlan::link_rate(sim::SimTime at, int leaf, int spine, double bps, int k,
                                std::string note) {
  FaultEvent e;
  e.at = at;
  e.action = FaultAction::kLinkRate;
  e.link = {leaf, spine, k};
  e.rate = bps;
  e.note = std::move(note);
  return add(std::move(e));
}

FaultPlan& FaultPlan::transient_blackhole(sim::SimTime on, sim::SimTime off, int switch_id,
                                          std::function<bool(const net::Packet&)> pred,
                                          SwitchTier tier) {
  blackhole_on(on, switch_id, std::move(pred), tier, "transient onset");
  return blackhole_off(off, switch_id, tier, "transient recovery");
}

FaultPlan& FaultPlan::transient_random_drop(sim::SimTime on, sim::SimTime off, int switch_id,
                                            double rate, SwitchTier tier) {
  random_drop(on, switch_id, rate, tier, "transient onset");
  return random_drop(off, switch_id, 0.0, tier, "transient recovery");
}

FaultPlan& FaultPlan::flap_random_drop(sim::SimTime start, int switch_id, double rate,
                                       sim::SimTime period, int count, double duty,
                                       SwitchTier tier) {
  for (int i = 0; i < count; ++i) {
    const sim::SimTime on = start + sim::SimTime::nanoseconds(period.ns() * i);
    const sim::SimTime off =
        on + sim::SimTime::nanoseconds(static_cast<std::int64_t>(period.ns() * duty));
    transient_random_drop(on, off, switch_id, rate, tier);
  }
  return *this;
}

FaultPlan& FaultPlan::flap_link(sim::SimTime start, int leaf, int spine, sim::SimTime period,
                                int count, double duty, int k) {
  for (int i = 0; i < count; ++i) {
    const sim::SimTime down = start + sim::SimTime::nanoseconds(period.ns() * i);
    const sim::SimTime up =
        down + sim::SimTime::nanoseconds(static_cast<std::int64_t>(period.ns() * duty));
    link_down(down, leaf, spine, k, "flap");
    link_up(up, leaf, spine, k, "flap");
  }
  return *this;
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  return *this;
}

}  // namespace hermes::faults
