#pragma once

#include <cstdint>

#include "hermes/faults/fault_plan.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::faults {

/// MTBF/MTTR fault model: fault onsets arrive as a Poisson process over
/// the whole fabric (exponential inter-onset times with mean `mtbf`);
/// each fault heals after an exponential repair time with mean `mttr`.
/// The fault *kind* is drawn from the weights below, the target switch /
/// link uniformly. Matches how switch-failure studies (Pingmesh, §2.1)
/// summarize production incident traces.
struct RandomFaultConfig {
  sim::SimTime horizon = sim::sec(1);   ///< generate onsets in [start, start+horizon)
  sim::SimTime start = sim::msec(10);   ///< let the workload ramp up first
  sim::SimTime mtbf = sim::msec(200);   ///< mean time between onsets (fabric-wide)
  sim::SimTime mttr = sim::msec(50);    ///< mean time to repair one fault

  // Relative weights of each fault kind (normalized internally).
  double w_random_drop = 0.4;
  double w_blackhole = 0.3;
  double w_link_down = 0.15;
  double w_link_degrade = 0.15;

  double drop_rate_lo = 0.01;   ///< silent random-drop severity range
  double drop_rate_hi = 0.05;
  double degrade_factor = 0.2;  ///< degraded links run at this capacity fraction
  bool half_pair_blackholes = true;  ///< TCAM-style: only half the host pairs
};

/// Deterministically expands a RandomFaultConfig into a concrete
/// FaultPlan. All randomness comes from the supplied hermes::sim::Rng —
/// fork it from the scenario's seeded simulator (or construct from the
/// scenario seed) so identical seeds replay identical fault timelines.
class RandomFaultGenerator {
 public:
  RandomFaultGenerator(const net::TopologyConfig& topo, RandomFaultConfig config, sim::Rng rng)
      : topo_{topo}, config_{config}, rng_{rng} {}

  /// Generate the timed onset/recovery events. Every onset gets a
  /// matching recovery event (possibly past the horizon — a fault near
  /// the end of the window still heals on its own schedule).
  [[nodiscard]] FaultPlan generate();

 private:
  net::TopologyConfig topo_;
  RandomFaultConfig config_;
  sim::Rng rng_;
};

}  // namespace hermes::faults
