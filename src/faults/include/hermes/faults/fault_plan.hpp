#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "hermes/lb/flow_ctx.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::faults {

/// What a timed fault event does to the fabric. Onset and recovery are
/// both plain events, so a plan expresses transient faults (blackhole at
/// t1, clear at t2), permanent ones (onset only), and flap trains.
enum class FaultAction : std::uint8_t {
  kBlackholeOn,    ///< install a blackhole predicate on a switch
  kBlackholeOff,   ///< remove the switch's blackhole predicate
  kRandomDropSet,  ///< set the switch's silent random-drop rate (0 clears)
  kLinkDown,       ///< cut a leaf<->spine link (both directions)
  kLinkUp,         ///< restore a cut link
  kLinkRate,       ///< set a link's capacity (degrade or restore)
};

[[nodiscard]] const char* to_string(FaultAction a);

/// Which switch tier a switch-targeted event hits.
enum class SwitchTier : std::uint8_t { kLeaf, kSpine };

/// A leaf<->spine link, identified the same way TopologyConfig overrides
/// are: (leaf, spine, parallel index).
struct LinkRef {
  int leaf = -1;
  int spine = -1;
  int k = 0;
};

/// One timed fault transition. Built via the FaultPlan helpers below;
/// executed by the FaultScheduler through the simulator's event queue.
struct FaultEvent {
  sim::SimTime at{};
  FaultAction action = FaultAction::kRandomDropSet;

  // Switch-targeted events (blackhole / random drop).
  SwitchTier tier = SwitchTier::kSpine;
  int switch_id = -1;
  std::function<bool(const net::Packet&)> blackhole;  ///< kBlackholeOn only

  // Link-targeted events.
  LinkRef link;
  double rate = 0.0;  ///< drop rate (kRandomDropSet) or bps (kLinkRate)

  std::string note;  ///< free-form label carried into the scheduler log
};

/// Reusable blackhole predicate matching the paper's §5.3.3 setup: data
/// packets between two racks, optionally only half of the host pairs
/// (a TCAM-corruption pattern — deterministic per header, not random).
[[nodiscard]] std::function<bool(const net::Packet&)> rack_pair_blackhole(
    int hosts_per_leaf, int src_leaf, int dst_leaf, bool half_pairs = false);

/// An ordered list of timed FaultEvents. The builder methods return *this
/// so plans read as a timeline:
///
///   faults::FaultPlan plan;
///   plan.random_drop(sim::msec(10), spine, 0.02)
///       .random_drop(sim::msec(200), spine, 0.0)     // recovery
///       .link_down(sim::msec(50), 1, 3)
///       .link_up(sim::msec(120), 1, 3);
class FaultPlan {
 public:
  FaultPlan& add(FaultEvent e) {
    events_.push_back(std::move(e));
    return *this;
  }

  /// Install `pred` as the switch's blackhole at `at`.
  FaultPlan& blackhole_on(sim::SimTime at, int switch_id,
                          std::function<bool(const net::Packet&)> pred,
                          SwitchTier tier = SwitchTier::kSpine, std::string note = {});
  /// Remove the switch's blackhole at `at`.
  FaultPlan& blackhole_off(sim::SimTime at, int switch_id,
                           SwitchTier tier = SwitchTier::kSpine, std::string note = {});
  /// Set the switch's silent random-drop rate at `at` (0 heals it).
  FaultPlan& random_drop(sim::SimTime at, int switch_id, double rate,
                         SwitchTier tier = SwitchTier::kSpine, std::string note = {});
  /// Cut / restore / re-rate a leaf<->spine link (both directions).
  FaultPlan& link_down(sim::SimTime at, int leaf, int spine, int k = 0, std::string note = {});
  FaultPlan& link_up(sim::SimTime at, int leaf, int spine, int k = 0, std::string note = {});
  FaultPlan& link_rate(sim::SimTime at, int leaf, int spine, double bps, int k = 0,
                       std::string note = {});

  /// Blackhole active on [on, off): the transient-failure scenario the
  /// resilience scorecard is built around.
  FaultPlan& transient_blackhole(sim::SimTime on, sim::SimTime off, int switch_id,
                                 std::function<bool(const net::Packet&)> pred,
                                 SwitchTier tier = SwitchTier::kSpine);
  /// Random-drop rate active on [on, off).
  FaultPlan& transient_random_drop(sim::SimTime on, sim::SimTime off, int switch_id,
                                   double rate, SwitchTier tier = SwitchTier::kSpine);
  /// A flap train: `count` on/off cycles starting at `start`, each cycle
  /// `period` long with the fault active for the first `duty` fraction.
  FaultPlan& flap_random_drop(sim::SimTime start, int switch_id, double rate,
                              sim::SimTime period, int count, double duty = 0.5,
                              SwitchTier tier = SwitchTier::kSpine);
  FaultPlan& flap_link(sim::SimTime start, int leaf, int spine, sim::SimTime period,
                       int count, double duty = 0.5, int k = 0);

  /// Append every event of another plan (composing generated + scripted).
  FaultPlan& merge(const FaultPlan& other);

  /// Events sorted by time (stable: insertion order breaks ties).
  [[nodiscard]] std::vector<FaultEvent> sorted() const {
    std::vector<FaultEvent> out = events_;
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
    return out;
  }
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace hermes::faults
