#pragma once

#include <cstdint>
#include <string>

#include "hermes/faults/fault_plan.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::faults::fuzz {

/// Which empirical flow-size distribution the scenario's workload draws
/// from (workload::SizeDist::web_search / data_mining, size-scaled).
enum class Workload : std::uint8_t { kWebSearch = 0, kDataMining = 1 };

[[nodiscard]] const char* to_string(Workload w);

/// Bounds of the scenario space the generator samples. The defaults are
/// sized for CI throughput (a seed runs in well under a second) while
/// still spanning the dimensions the paper's fig16/fig17 hand-written
/// scenarios cover — and the overlapping/back-to-back fault patterns
/// they do not.
struct FuzzLimits {
  int min_leaves = 2;
  int max_leaves = 4;
  int min_spines = 2;
  int max_spines = 4;
  int max_hosts_per_leaf = 8;  ///< drawn from {2, 4, 8} capped here
  int min_flows = 40;
  int max_flows = 120;
  double min_load = 0.2;
  double max_load = 0.7;
  /// Probability of build-time link-capacity asymmetry (fig13/fig14's
  /// dimension) via TopologyConfig::fabric_overrides.
  double asym_prob = 0.4;
  /// Probability of appending a hand-shaped adversarial fault pattern
  /// (flap train, back-to-back blackholes, overlapping link cuts,
  /// zero-duration faults) on top of the MTBF/MTTR base plan.
  double edge_pattern_prob = 0.6;
  /// Wall guard for the generated scenario. Every generated fault heals
  /// within ~500ms, and the transport's capped RTO (320ms) retries
  /// through any blackhole window, so a healthy run finishes far below
  /// this; hitting it means flows were stranded — a triage finding.
  sim::SimTime max_sim_time = sim::sec(10);
};

/// One generated scenario: everything needed to reproduce a run from its
/// seed. Scheme-agnostic — the same scenario can race every LoadBalancer
/// on identical topology, arrivals, and fault timeline.
struct FuzzScenario {
  std::uint64_t seed = 0;
  net::TopologyConfig topo;
  Workload workload = Workload::kWebSearch;
  double workload_scale = 0.1;  ///< SizeDist::scaled factor
  double load = 0.5;            ///< fraction of bisection capacity
  int num_flows = 80;
  sim::SimTime max_sim_time{};
  FaultPlan plan;

  /// Canonical text form: one line per dimension and per fault event, in
  /// a fixed field order with fixed float formatting. Byte-identical for
  /// a given seed across runs — the golden-hash determinism test pins
  /// this, so any change to the generator's sampling order is caught.
  [[nodiscard]] std::string describe() const;
};

/// Deterministically expands a seed into a FuzzScenario: topology
/// (leaf-spine dims, link speeds, asymmetry) × workload (web-search /
/// data-mining mix, load point) × FaultPlan (MTBF/MTTR base plan plus
/// overlapping and back-to-back edge patterns). Same seed ⇒ byte-
/// identical scenario; all randomness flows from hermes::sim::Rng.
class RandomScenarioGenerator {
 public:
  explicit RandomScenarioGenerator(FuzzLimits limits = {}) : limits_{limits} {}

  [[nodiscard]] FuzzScenario generate(std::uint64_t seed) const;

  [[nodiscard]] const FuzzLimits& limits() const { return limits_; }

 private:
  FuzzLimits limits_;
};

}  // namespace hermes::faults::fuzz
