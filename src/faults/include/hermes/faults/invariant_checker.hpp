#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hermes/faults/fault_plan.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::faults {

/// The invariants the checker enforces. Each gets its own violation
/// counter in the metrics registry, so a fuzz triage can tell *which*
/// invariant broke without parsing message text.
enum class Invariant : std::uint8_t {
  kByteConservation = 0,
  kQueueBound = 1,
  kSharedBuffer = 2,
};
inline constexpr int kNumInvariants = 3;

[[nodiscard]] const char* to_string(Invariant inv);

/// A broken invariant. `what` is self-contained for triage logs: it
/// always carries the simulated time, the invariant's name, and the
/// implicated flow id (or `flow=-` when no single flow is implicated).
struct InvariantViolation {
  sim::SimTime at{};
  Invariant invariant = Invariant::kByteConservation;
  /// Implicated flow, when the invariant is flow-attributable;
  /// kNoFlow for fabric-global invariants (conservation, pools).
  std::uint64_t flow_id = kNoFlow;
  std::string what;

  static constexpr std::uint64_t kNoFlow = ~0ull;
};

struct InvariantCheckerConfig {
  /// Periodic sweep interval; zero disables the periodic check (checks
  /// then run only at fault transitions and explicit check_now calls).
  sim::SimTime period = sim::msec(5);
  /// A flow with zero ACK progress for this long counts as stuck. Not a
  /// violation — faults legitimately stall flows — but the count feeds
  /// the resilience scorecard ("who strands flows, for how long").
  sim::SimTime stuck_after = sim::msec(50);
  bool check_queue_bounds = true;
};

/// A flow's ACK progress, snapshotted by the harness for the watchdog.
struct FlowProgress {
  std::uint64_t id = 0;
  std::uint64_t bytes_acked = 0;
};

/// Runtime invariant checking over a live fabric. Installed once after
/// the topology and host stacks are built, it wraps the per-port and
/// per-host observer hooks to maintain global packet/byte accounting and
/// asserts, at every fault transition and periodically:
///
///   1. Byte conservation — every byte a host NIC accepted is delivered
///      to a host, dropped (queue, link-down, or injected switch
///      failure), or still in flight (queued or propagating). Silent
///      fault injectors must not make bytes vanish from the accounting.
///   2. Bounded queues — no drop-tail queue exceeds its configured
///      capacity; shared-buffer switches never exceed their pool.
///   3. Stuck-flow watchdog — counts active flows with no ACK progress
///      for `stuck_after` (scorecard metric, not a violation).
///
/// Hard violations accumulate in `violations()`; a clean run has
/// `ok() == true`. Note the checker chains onto Port::on_drop /
/// Port::on_enqueue / Host::on_receive — code that *overwrites* (rather
/// than chains) those hooks after installation breaks the accounting.
class InvariantChecker {
 public:
  InvariantChecker(sim::Simulator& simulator, net::Topology& topo,
                   InvariantCheckerConfig config = {});

  /// Wire the flow-progress source (the harness snapshots active senders).
  void set_flow_snapshot(std::function<std::vector<FlowProgress>()> fn) {
    snapshot_fn_ = std::move(fn);
  }

  /// Run every invariant check right now (also advances the watchdog).
  void check_now(const char* context);
  /// FaultScheduler::on_transition target: re-checks invariants at the
  /// fault boundary and advances the stuck-flow watchdog.
  void on_fault_transition(const FaultEvent& e);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<InvariantViolation>& violations() const { return violations_; }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  /// Violations of one specific invariant so far.
  [[nodiscard]] std::uint64_t violation_count(Invariant inv) const {
    return violation_counts_[static_cast<int>(inv)];
  }

  /// Register per-invariant violation counters ("invariants.violation.
  /// byte_conservation", ...) plus checks/stuck-flow telemetry. Pull-model:
  /// closures read the counters this checker already maintains.
  void register_metrics(obs::MetricsRegistry& reg);

  // --- accounting (network-level, cumulative) ---------------------------
  [[nodiscard]] std::uint64_t injected_bytes() const { return injected_bytes_; }
  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  /// All drops: queue overflow + link-down + injected switch failures.
  [[nodiscard]] std::uint64_t dropped_bytes() const;
  /// Bytes currently queued at or propagating on any port.
  [[nodiscard]] std::uint64_t in_flight_bytes() const;
  [[nodiscard]] std::uint64_t injected_packets() const { return injected_packets_; }
  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_packets_; }

  // --- watchdog ---------------------------------------------------------
  /// Flows stuck (no ACK progress for >= stuck_after) at the last check.
  [[nodiscard]] std::size_t stuck_flows() const { return stuck_flows_; }
  /// High-water mark of stuck flows over the whole run.
  [[nodiscard]] std::size_t max_stuck_flows() const { return max_stuck_flows_; }

 private:
  void install_hooks();
  void tick();
  void update_watchdog();
  void check_conservation(const char* context);
  void check_queue_bounds(const char* context);
  template <typename Fn>
  void for_each_port(Fn&& fn) const;
  void violation(Invariant inv, const std::string& what,
                 std::uint64_t flow_id = InvariantViolation::kNoFlow);

  sim::Simulator& simulator_;
  net::Topology& topo_;
  InvariantCheckerConfig config_;
  std::function<std::vector<FlowProgress>()> snapshot_fn_;

  // Hooks that were installed before the checker wrapped them. The
  // port/host hooks have fixed inline capacity (sim::InlineCallable), so
  // the wrapper cannot capture its predecessor by value the way a
  // std::function chain could; instead predecessors live here and the
  // wrappers capture `this` plus an index (16 bytes).
  std::vector<net::Port::Hook> prev_nic_enqueue_;   ///< one per host NIC
  std::vector<net::Port::Hook> prev_nic_drop_;      ///< one per host NIC
  std::vector<net::Host::ReceiveFn> prev_host_rx_;  ///< one per host
  std::vector<net::Port::Hook> prev_switch_drop_;   ///< switch ports, flattened

  std::uint64_t injected_packets_ = 0;
  std::uint64_t injected_bytes_ = 0;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t hook_dropped_packets_ = 0;
  std::uint64_t hook_dropped_bytes_ = 0;

  struct Progress {
    std::uint64_t bytes = 0;
    sim::SimTime since{};
    std::uint64_t epoch = 0;  ///< watchdog pass that last saw this flow
  };
  std::unordered_map<std::uint64_t, Progress> progress_;
  std::uint64_t watchdog_epoch_ = 0;
  std::size_t stuck_flows_ = 0;
  std::size_t max_stuck_flows_ = 0;

  std::vector<InvariantViolation> violations_;
  std::uint64_t violation_counts_[kNumInvariants] = {};
  std::uint64_t checks_run_ = 0;
};

}  // namespace hermes::faults
