#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include <deque>

#include "hermes/faults/fault_plan.hpp"
#include "hermes/net/topology.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::faults {

/// One executed fault transition, for post-run reporting.
struct AppliedFault {
  sim::SimTime at{};
  FaultAction action{};
  std::string what;
};

/// Executes a FaultPlan against a live fabric: every event is posted on
/// the simulator's event queue and, when it fires, drives the Switch /
/// Topology runtime mutators. The scheduler is the single writer of
/// injected-fault state, so experiments can ask it what is currently
/// broken (`active_faults()`) and subscribe to transitions
/// (`on_transition`, which the InvariantChecker uses to run its checks
/// right after every fault boundary).
class FaultScheduler {
 public:
  FaultScheduler(sim::Simulator& simulator, net::Topology& topo);

  /// Schedule every event of `plan`. Events timed in the past (relative
  /// to the simulator clock) fire on the next queue pop. May be called
  /// multiple times; plans accumulate.
  void install(const FaultPlan& plan);

  /// Fired after each event has been applied to the fabric.
  std::function<void(const FaultEvent&)> on_transition;

  [[nodiscard]] const std::vector<AppliedFault>& log() const { return log_; }
  [[nodiscard]] std::size_t applied() const { return log_.size(); }
  [[nodiscard]] std::size_t pending() const { return installed_ - log_.size(); }
  /// Number of fault conditions currently active (onsets minus clears);
  /// 0 means the fabric is nominally healthy again.
  [[nodiscard]] int active_faults() const { return active_; }

 private:
  void apply(const FaultEvent& e);
  [[nodiscard]] static std::string describe(const FaultEvent& e);

  sim::Simulator& simulator_;
  net::Topology& topo_;
  std::vector<AppliedFault> log_;
  /// Installed events, owned here; queued callbacks index into this
  /// (append-only, so indices stay stable across install() calls).
  std::deque<FaultEvent> installed_events_;
  std::size_t installed_ = 0;
  int active_ = 0;
};

}  // namespace hermes::faults
