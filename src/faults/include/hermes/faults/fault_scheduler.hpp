#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <deque>

#include "hermes/faults/fault_plan.hpp"
#include "hermes/net/fabric.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::faults {

/// One executed fault transition, for post-run reporting.
struct AppliedFault {
  sim::SimTime at{};
  FaultAction action{};
  std::string what;
};

/// Executes a FaultPlan against a live fabric: every event is posted on
/// the simulator's event queue and, when it fires, drives the Switch /
/// Topology runtime mutators. The scheduler is the single writer of
/// injected-fault state, so experiments can ask it what is currently
/// broken (`active_faults()`) and subscribe to transitions
/// (`on_transition`, which the InvariantChecker uses to run its checks
/// right after every fault boundary).
class FaultScheduler {
 public:
  FaultScheduler(sim::Simulator& simulator, net::Fabric& topo);

  /// Schedule every event of `plan`. Events timed in the past (relative
  /// to the simulator clock) fire on the next queue pop. May be called
  /// multiple times; plans accumulate.
  void install(const FaultPlan& plan);

  /// Fired after each event has been applied to the fabric.
  std::function<void(const FaultEvent&)> on_transition;

  [[nodiscard]] const std::vector<AppliedFault>& log() const { return log_; }
  [[nodiscard]] std::size_t applied() const { return log_.size(); }
  [[nodiscard]] std::size_t pending() const { return installed_ - log_.size(); }
  /// Number of fault conditions currently active (onsets minus clears);
  /// 0 means the fabric is nominally healthy again.
  [[nodiscard]] int active_faults() const { return active_; }

  /// Attach (null detaches) the scenario's flight recorder: every applied
  /// transition lands in the trace as a kFault record, so `hermestrace`
  /// can correlate reroute decisions with fault boundaries.
  void set_recorder(obs::FlightRecorder* rec) {
    rec_ = rec;
    name_id_ = rec != nullptr ? rec->intern("faults") : 0;
  }
  /// Register "faults.*" counters/gauges with the scenario's registry.
  void register_metrics(obs::MetricsRegistry& reg);

 private:
  void apply(const FaultEvent& e);
  [[nodiscard]] static std::string describe(const FaultEvent& e);
  void record_fault(const FaultEvent& e, bool onset);

  sim::Simulator& simulator_;
  net::Fabric& topo_;
  obs::FlightRecorder* rec_ = nullptr;  ///< null when observability is off
  std::uint32_t name_id_ = 0;
  std::vector<AppliedFault> log_;
  /// Installed events, owned here; queued callbacks index into this
  /// (append-only, so indices stay stable across install() calls).
  std::deque<FaultEvent> installed_events_;
  std::size_t installed_ = 0;
  int active_ = 0;
};

}  // namespace hermes::faults
