#include <cstdint>

#include "hermes/faults/random_faults.hpp"

namespace hermes::faults {

FaultPlan RandomFaultGenerator::generate() {
  FaultPlan plan;
  const double wsum = config_.w_random_drop + config_.w_blackhole + config_.w_link_down +
                      config_.w_link_degrade;
  if (wsum <= 0 || config_.mtbf <= sim::SimTime::zero()) return plan;

  const auto exp_time = [this](sim::SimTime mean) {
    return sim::SimTime::from_seconds(rng_.exponential(mean.to_seconds()));
  };
  const auto pick_link = [this] {
    return LinkRef{static_cast<int>(rng_.next(static_cast<std::uint64_t>(topo_.num_leaves))),
                   static_cast<int>(rng_.next(static_cast<std::uint64_t>(topo_.num_spines))),
                   static_cast<int>(rng_.next(static_cast<std::uint64_t>(topo_.links_per_pair)))};
  };

  sim::SimTime t = config_.start;
  const sim::SimTime end = config_.start + config_.horizon;
  while (true) {
    t += exp_time(config_.mtbf);
    if (t >= end) break;
    const sim::SimTime heal = t + exp_time(config_.mttr);

    double pick = rng_.uniform() * wsum;
    if ((pick -= config_.w_random_drop) < 0) {
      const int spine = static_cast<int>(rng_.next(static_cast<std::uint64_t>(topo_.num_spines)));
      const double rate = rng_.uniform(config_.drop_rate_lo, config_.drop_rate_hi);
      plan.random_drop(t, spine, rate, SwitchTier::kSpine, "mtbf onset");
      plan.random_drop(heal, spine, 0.0, SwitchTier::kSpine, "mttr heal");
    } else if ((pick -= config_.w_blackhole) < 0) {
      const int spine = static_cast<int>(rng_.next(static_cast<std::uint64_t>(topo_.num_spines)));
      const int a = static_cast<int>(rng_.next(static_cast<std::uint64_t>(topo_.num_leaves)));
      int b = static_cast<int>(rng_.next(static_cast<std::uint64_t>(topo_.num_leaves)));
      if (b == a) b = (b + 1) % topo_.num_leaves;
      if (b == a) continue;  // single-leaf fabric: nothing to blackhole
      plan.blackhole_on(
          t, spine,
          rack_pair_blackhole(topo_.hosts_per_leaf, a, b, config_.half_pair_blackholes),
          SwitchTier::kSpine, "mtbf onset");
      plan.blackhole_off(heal, spine, SwitchTier::kSpine, "mttr heal");
    } else if ((pick -= config_.w_link_down) < 0) {
      const LinkRef l = pick_link();
      plan.link_down(t, l.leaf, l.spine, l.k, "mtbf onset");
      plan.link_up(heal, l.leaf, l.spine, l.k, "mttr heal");
    } else {
      const LinkRef l = pick_link();
      auto it = topo_.fabric_overrides.find({l.leaf, l.spine, l.k});
      const double nominal =
          it != topo_.fabric_overrides.end() ? it->second : topo_.fabric_rate_bps;
      plan.link_rate(t, l.leaf, l.spine, nominal * config_.degrade_factor, l.k, "mtbf onset");
      plan.link_rate(heal, l.leaf, l.spine, nominal, l.k, "mttr heal");
    }
  }
  return plan;
}

}  // namespace hermes::faults
