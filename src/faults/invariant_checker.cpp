#include "hermes/faults/invariant_checker.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hermes/obs/metrics.hpp"

namespace hermes::faults {

const char* to_string(Invariant inv) {
  switch (inv) {
    case Invariant::kByteConservation: return "byte-conservation";
    case Invariant::kQueueBound: return "queue-bound";
    case Invariant::kSharedBuffer: return "shared-buffer";
  }
  return "?";
}

InvariantChecker::InvariantChecker(sim::Simulator& simulator, net::Topology& topo,
                                   InvariantCheckerConfig config)
    : simulator_{simulator}, topo_{topo}, config_{config} {
  install_hooks();
  if (config_.period > sim::SimTime::zero()) {
    simulator_.after(config_.period, [this] { tick(); });
  }
}

template <typename Fn>
void InvariantChecker::for_each_port(Fn&& fn) const {
  for (int h = 0; h < topo_.num_hosts(); ++h) fn(topo_.host(h).nic());
  for (int l = 0; l < topo_.config().num_leaves; ++l) {
    net::Switch& sw = topo_.leaf(l);
    for (int p = 0; p < sw.num_ports(); ++p) fn(sw.port(p));
  }
  for (int s = 0; s < topo_.config().num_spines; ++s) {
    net::Switch& sw = topo_.spine(s);
    for (int p = 0; p < sw.num_ports(); ++p) fn(sw.port(p));
  }
}

void InvariantChecker::install_hooks() {
  // Ingress: every byte the fabric accepts enters through a host NIC
  // (data, ACKs, probes, probe replies alike). A NIC drop still counts as
  // injected — the byte entered the accounting and left it as a drop.
  // Predecessor hooks move into checker-owned vectors (the inline-storage
  // hook type cannot capture a same-sized predecessor); wrappers then
  // dispatch through `this` + index.
  const int num_hosts = topo_.num_hosts();
  prev_nic_enqueue_.resize(static_cast<std::size_t>(num_hosts));
  prev_nic_drop_.resize(static_cast<std::size_t>(num_hosts));
  prev_host_rx_.resize(static_cast<std::size_t>(num_hosts));
  for (int h = 0; h < num_hosts; ++h) {
    net::Port& nic = topo_.host(h).nic();
    prev_nic_enqueue_[h] = std::move(nic.on_enqueue);
    nic.on_enqueue = [this, h](const net::Packet& p) {
      ++injected_packets_;
      injected_bytes_ += p.size;
      if (prev_nic_enqueue_[h]) prev_nic_enqueue_[h](p);
    };
    prev_nic_drop_[h] = std::move(nic.on_drop);
    nic.on_drop = [this, h](const net::Packet& p) {
      ++injected_packets_;
      injected_bytes_ += p.size;
      ++hook_dropped_packets_;
      hook_dropped_bytes_ += p.size;
      if (prev_nic_drop_[h]) prev_nic_drop_[h](p);
    };
    // Egress: delivery back to a host.
    net::Host& host = topo_.host(h);
    prev_host_rx_[h] = std::move(host.on_receive);
    host.on_receive = [this, h](net::Packet p, int in_port) {
      ++delivered_packets_;
      delivered_bytes_ += p.size;
      if (prev_host_rx_[h]) prev_host_rx_[h](std::move(p), in_port);
    };
  }
  // Drops inside the fabric (queue overflow and link-down; injected
  // switch-failure drops are read from the per-switch counters).
  auto hook_switch = [this](net::Switch& sw) {
    for (int p = 0; p < sw.num_ports(); ++p) {
      net::Port& port = sw.port(p);
      const std::size_t idx = prev_switch_drop_.size();
      prev_switch_drop_.push_back(std::move(port.on_drop));
      port.on_drop = [this, idx](const net::Packet& pkt) {
        ++hook_dropped_packets_;
        hook_dropped_bytes_ += pkt.size;
        if (prev_switch_drop_[idx]) prev_switch_drop_[idx](pkt);
      };
    }
  };
  for (int l = 0; l < topo_.config().num_leaves; ++l) hook_switch(topo_.leaf(l));
  for (int s = 0; s < topo_.config().num_spines; ++s) hook_switch(topo_.spine(s));
}

std::uint64_t InvariantChecker::dropped_bytes() const {
  std::uint64_t b = hook_dropped_bytes_;
  for (int l = 0; l < topo_.config().num_leaves; ++l) b += topo_.leaf(l).failure_drop_bytes();
  for (int s = 0; s < topo_.config().num_spines; ++s) b += topo_.spine(s).failure_drop_bytes();
  return b;
}

std::uint64_t InvariantChecker::in_flight_bytes() const {
  std::uint64_t b = 0;
  for_each_port([&b](const net::Port& p) { b += p.backlog_bytes() + p.wire_bytes(); });
  return b;
}

void InvariantChecker::violation(Invariant inv, const std::string& what,
                                 std::uint64_t flow_id) {
  // Triage-grade message: self-contained even when the surrounding run
  // context (log file, FUZZ trace name) is lost. Fixed field order so
  // fuzz reports diff cleanly across seeds.
  const sim::SimTime now = simulator_.now();
  std::string msg = "t=" + std::to_string(now.ns()) + "ns invariant=" + to_string(inv) +
                    " flow=" +
                    (flow_id == InvariantViolation::kNoFlow ? std::string("-")
                                                            : std::to_string(flow_id)) +
                    " " + what;
  ++violation_counts_[static_cast<int>(inv)];
  violations_.push_back({now, inv, flow_id, std::move(msg)});
}

void InvariantChecker::register_metrics(obs::MetricsRegistry& reg) {
  reg.counter_fn("invariants.checks_run", [this] { return checks_run_; });
  reg.counter_fn("invariants.violations.byte_conservation", [this] {
    return violation_counts_[static_cast<int>(Invariant::kByteConservation)];
  });
  reg.counter_fn("invariants.violations.queue_bound", [this] {
    return violation_counts_[static_cast<int>(Invariant::kQueueBound)];
  });
  reg.counter_fn("invariants.violations.shared_buffer", [this] {
    return violation_counts_[static_cast<int>(Invariant::kSharedBuffer)];
  });
  reg.counter_fn("invariants.stuck_flows_max",
                 [this] { return static_cast<std::uint64_t>(max_stuck_flows_); });
}

void InvariantChecker::check_conservation(const char* context) {
  const std::uint64_t injected = injected_bytes_;
  const std::uint64_t accounted = delivered_bytes_ + dropped_bytes() + in_flight_bytes();
  if (injected != accounted) {
    violation(Invariant::kByteConservation,
              std::string("broken (") + context + "): injected=" + std::to_string(injected) +
                  " accounted=" + std::to_string(accounted) + " delta=" +
                  std::to_string(static_cast<std::int64_t>(injected) -
                                 static_cast<std::int64_t>(accounted)));
  }
}

void InvariantChecker::check_queue_bounds(const char* context) {
  for_each_port([&](const net::Port& p) {
    // Shared-buffer ports are bounded by the pool, checked below.
    if (p.pooled()) return;
    if (p.backlog_bytes() > p.config().queue_capacity_bytes) {
      violation(Invariant::kQueueBound,
                std::string("exceeded (") + context + "): " + p.name() + " holds " +
                    std::to_string(p.backlog_bytes()) + " > cap " +
                    std::to_string(p.config().queue_capacity_bytes));
    }
  });
  auto check_pool = [&](const net::Switch& sw) {
    const net::DynamicThresholdPool* pool = sw.shared_buffer();
    if (pool && pool->used() > pool->total()) {
      violation(Invariant::kSharedBuffer,
                std::string("overflow (") + context + "): " + sw.name() + " uses " +
                    std::to_string(pool->used()) + " > " + std::to_string(pool->total()));
    }
  };
  for (int l = 0; l < topo_.config().num_leaves; ++l) check_pool(topo_.leaf(l));
  for (int s = 0; s < topo_.config().num_spines; ++s) check_pool(topo_.spine(s));
}

void InvariantChecker::update_watchdog() {
  if (!snapshot_fn_) return;
  const sim::SimTime now = simulator_.now();
  const std::vector<FlowProgress> snap = snapshot_fn_();
  std::size_t stuck = 0;
  // In-place epoch-stamped update: live flows refresh their entry, and a
  // single erase pass drops finished flows — no per-tick map rebuild.
  ++watchdog_epoch_;
  progress_.reserve(snap.size());
  for (const FlowProgress& fp : snap) {
    auto [it, inserted] = progress_.try_emplace(fp.id, Progress{fp.bytes_acked, now, 0});
    if (!inserted && it->second.bytes != fp.bytes_acked) {
      it->second.bytes = fp.bytes_acked;
      it->second.since = now;
    } else if (!inserted && now - it->second.since >= config_.stuck_after) {
      ++stuck;
    }
    it->second.epoch = watchdog_epoch_;
  }
  std::erase_if(progress_,
                [this](const auto& kv) { return kv.second.epoch != watchdog_epoch_; });
  stuck_flows_ = stuck;
  if (stuck > max_stuck_flows_) max_stuck_flows_ = stuck;
}

void InvariantChecker::check_now(const char* context) {
  ++checks_run_;
  check_conservation(context);
  if (config_.check_queue_bounds) check_queue_bounds(context);
  update_watchdog();
}

void InvariantChecker::on_fault_transition(const FaultEvent& e) {
  check_now(to_string(e.action));
}

void InvariantChecker::tick() {
  check_now("periodic");
  simulator_.after(config_.period, [this] { tick(); });
}

}  // namespace hermes::faults
