#include "hermes/engine/engine.hpp"

#include <cstddef>
#include <cstdint>
#include <limits>

namespace hermes::engine {

Engine::Engine(Config config, int num_groups, std::uint64_t rng_seed)
    : config_{config}, rng_{rng_seed}, num_groups_{num_groups} {
  sets_.resize(static_cast<std::size_t>(num_groups_) * static_cast<std::size_t>(num_groups_));
}

// HERMES_HOT: latch-expiry check on the decision path — reads/updates one
// HoleTrack in place, allocates nothing, consumes no RNG.
bool Engine::hole_active(HoleTrack& track, PathSet& ps, TimeNs now, const FlowView* flow,
                         int local_idx) {
  if (track.latched && config_.failure_expiry > 0) {
    const TimeNs expiry = config_.failure_expiry << (track.streak > 0 ? track.streak - 1 : 0);
    if (now - track.latched_at > expiry) {
      // Heal: the detector must re-accumulate blackhole_timeouts fresh
      // timeouts to re-latch; the streak is kept so a genuinely broken
      // path re-latches with a doubled expiry (up to 128x).
      const std::uint64_t lifetime_us =
          static_cast<std::uint64_t>((now - track.latched_at) / 1000);
      track.latched = false;
      track.timeouts = 0;
      ++stats_.latch_expiries;
      if (sink_ != nullptr) [[unlikely]] {
        emit(DecisionKind::kLatchExpire, flow, ps, local_idx, -1, 0, 0.0F, now, lifetime_us);
      }
    }
  }
  return track.latched;
}

// HERMES_HOT: per-candidate failure test inside the selection scans.
bool Engine::failed_for_flow(PathSet& ps, const FlowView& flow, int local_idx, TimeNs now) {
  if (ps.state(static_cast<std::size_t>(local_idx)).failed_active(now, config_)) return true;
  const auto it = ps.hole_track.find(hole_key(flow.src, flow.dst, local_idx));
  if (it == ps.hole_track.end()) return false;
  return hole_active(it->second, ps, now, &flow, local_idx);
}

// HERMES_HOT: Algorithm 2 lines 3-12.
int Engine::pick_fresh(PathSet& ps, const FlowView& flow, TimeNs now) {
  const bool panic = ps.in_panic(config_.panic_threshold);
  // Lines 4-6: good paths, least local sending rate r_p first.
  // Lines 8-10: otherwise gray paths the same way. Near-equal rates are
  // tie-broken randomly so concurrent senders do not herd onto one path.
  for (PathType wanted : {PathType::kGood, PathType::kGray}) {
    const int best = least_rate_path(ps, flow, wanted, -1, nullptr, panic, now);
    if (best >= 0) return best;
  }
  // Line 12: a weighted-random path with no failure. Two passes (count
  // eligible weight, then walk the draw down the same sequence) so the
  // hot path allocates no candidate list; failure checks are idempotent
  // at fixed `now`, so re-evaluating them is safe.
  const int n = static_cast<int>(ps.size());
  std::uint64_t total = 0;
  for (int li = 0; li < n; ++li) {
    if (!fallback_eligible(ps.slot(static_cast<std::size_t>(li)), panic)) continue;
    if (failed_for_flow(ps, flow, li, now)) continue;
    total += ps.slot(static_cast<std::size_t>(li)).weight;
  }
  if (total > 0) {
    std::uint64_t draw = rng_.next(total);
    for (int li = 0; li < n; ++li) {
      const PathSet::Slot& s = ps.slot(static_cast<std::size_t>(li));
      if (!fallback_eligible(s, panic)) continue;
      if (failed_for_flow(ps, flow, li, now)) continue;
      if (draw < s.weight) return li;
      draw -= s.weight;
    }
  }
  // Everything looks failed; we must still transmit somewhere.
  return pick_any(ps);
}

// HERMES_HOT: Algorithm 2 lines 14-23.
int Engine::pick_notably_better(PathSet& ps, const FlowView& flow, int cur_local, TimeNs now) {
  const PathState& cur = ps.state(static_cast<std::size_t>(cur_local));
  const bool panic = ps.in_panic(config_.panic_threshold);
  // Lines 15-21: good paths notably better than the current one, then gray.
  for (PathType wanted : {PathType::kGood, PathType::kGray}) {
    const int best = least_rate_path(ps, flow, wanted, cur_local, &cur, panic, now);
    if (best >= 0) return best;
  }
  return -1;  // line 23: do not reroute
}

// HERMES_HOT: the "notably better" margins (ΔRTT, ΔECN) of Algorithm 2.
bool Engine::notably_better(const PathState& cur, const PathState& cand) const {
  if (!cand.has_sample()) return false;
  if (cur.rtt() - cand.rtt() <= config_.delta_rtt) return false;
  if (config_.use_ecn && cur.ecn_fraction() - cand.ecn_fraction() <= config_.delta_ecn)
    return false;
  return true;
}

// HERMES_HOT: argmin r_p with weighted reservoir sampling among
// near-ties. With unit weights the reservoir accepts exactly when the
// legacy unweighted `rng.next(ties) == 0` did, draw for draw.
int Engine::least_rate_path(PathSet& ps, const FlowView& flow, PathType wanted, int exclude_local,
                            const PathState* better_than, bool panic, TimeNs now) {
  const int n = static_cast<int>(ps.size());
  int best = -1;
  double best_rate = std::numeric_limits<double>::max();
  std::uint64_t tie_weight = 0;
  for (int li = 0; li < n; ++li) {
    const PathSet::Slot& s = ps.slot(static_cast<std::size_t>(li));
    // Declared-health gate: the ranked scans use healthy members only
    // (panic mode waives this); zero weight means drained.
    if (li == exclude_local || s.weight == 0 || (!panic && s.health != Health::kHealthy))
      continue;
    if (failed_for_flow(ps, flow, li, now)) continue;
    if (s.state.characterize(config_) != wanted) continue;
    if (better_than != nullptr && !notably_better(*better_than, s.state)) continue;
    const double r = s.state.rate_bps(now);
    // Rates within 1% (or both idle) count as tied; reservoir-sample
    // proportionally to declared weight.
    if (best >= 0 && r <= best_rate * 1.01 + 1.0 && best_rate <= r * 1.01 + 1.0) {
      tie_weight += s.weight;
      if (rng_.next(tie_weight) < s.weight) best = li;
      if (r < best_rate) best_rate = r;
    } else if (r < best_rate) {
      best_rate = r;
      best = li;
      tie_weight = s.weight;
    }
  }
  return best;
}

// HERMES_HOT: weighted draw over every slot regardless of state — the
// "must transmit somewhere" tail when everything looks failed.
int Engine::pick_any(PathSet& ps) {
  const int n = static_cast<int>(ps.size());
  std::uint64_t total = 0;
  for (int li = 0; li < n; ++li) total += ps.slot(static_cast<std::size_t>(li)).weight;
  if (total == 0) return static_cast<int>(rng_.next(static_cast<std::uint64_t>(n)));
  std::uint64_t draw = rng_.next(total);
  for (int li = 0; li < n; ++li) {
    const std::uint64_t w = ps.slot(static_cast<std::size_t>(li)).weight;
    if (draw < w) return li;
    draw -= w;
  }
  return n - 1;  // unreachable: draw < total by construction
}

// HERMES_HOT: Algorithm 2 — the per-packet decision. Allocation-free:
// candidate scans are in-place, the event is stack-built, and the pair's
// PathSet was sized by the embedder before this call.
int Engine::decide(FlowView& flow, std::uint32_t bytes, TimeNs now) {
  PathSet& ps = path_set(flow.src_group, flow.dst_group);
  const int n = static_cast<int>(ps.size());
  if (n == 0) return -1;

  int cur_local = flow.cur_local;
  if (cur_local >= n) cur_local = -1;  // membership shrank under the flow
  int chosen = cur_local;

  const bool fresh = !flow.has_sent || flow.timeout_pending ||
                     (cur_local >= 0 && failed_for_flow(ps, flow, cur_local, now));
  if (fresh) {
    // Algorithm 2 line 3: new flow, flow with a timeout, or failed path.
    const DecisionKind kind = !flow.has_sent  ? DecisionKind::kInitialPlacement
                              : flow.timeout_pending ? DecisionKind::kTimeoutEscape
                                                     : DecisionKind::kFailureEscape;
    flow.timeout_pending = false;
    chosen = pick_fresh(ps, flow, now);
    switch (kind) {
      case DecisionKind::kInitialPlacement: ++stats_.initial_placements; break;
      case DecisionKind::kTimeoutEscape: ++stats_.timeout_escapes; break;
      default: ++stats_.failure_escapes; break;
    }
    if (sink_ != nullptr) [[unlikely]] emit(kind, &flow, ps, cur_local, chosen, 0, 0.0F, now);
  } else if (cur_local >= 0 && config_.rerouting_enabled &&
             ps.state(static_cast<std::size_t>(cur_local)).characterize(config_) ==
                 PathType::kCongested) {
    // Line 14: cautious gates — only flows that sent enough and are not
    // already fast benefit from rerouting; and a flow that just moved is
    // given time to observe its new path before moving again.
    const bool cooled_down =
        !flow.has_rerouted || now - flow.last_reroute >= config_.reroute_min_gap;
    if (cooled_down && flow.bytes_sent > config_.sent_threshold_bytes &&
        flow.rate_bps(now) < config_.reroute_rate_limit_bps) {
      const int better = pick_notably_better(ps, flow, cur_local, now);
      if (better >= 0) {
        chosen = better;
        flow.last_reroute = now;
        flow.has_rerouted = true;
        ++stats_.congestion_reroutes;
        if (sink_ != nullptr) [[unlikely]] {
          // Algorithm 2's reroute benefit at the moment of the decision.
          const PathState& cur = ps.state(static_cast<std::size_t>(cur_local));
          const PathState& cand = ps.state(static_cast<std::size_t>(better));
          emit(DecisionKind::kCongestionReroute, &flow, ps, cur_local, better,
               cur.rtt() - cand.rtt(),
               static_cast<float>(cur.ecn_fraction() - cand.ecn_fraction()), now);
        }
      }
    }
  }

  if (chosen < 0) chosen = pick_any(ps);
  ps.state(static_cast<std::size_t>(chosen)).add_send(bytes, now, config_);
  return chosen;
}

void Engine::on_ack(int src_group, int dst_group, int local_idx, std::int32_t flow_src,
                    std::int32_t flow_dst, bool has_rtt, TimeNs rtt, bool ecn_marked) {
  PathSet& ps = path_set(src_group, dst_group);
  if (local_idx < 0 || local_idx >= static_cast<int>(ps.size())) return;
  if (has_rtt) ps.state(static_cast<std::size_t>(local_idx)).add_sample(rtt, ecn_marked, config_);
  // ACK progress on this (pair, path): not a blackhole; reset the count.
  if (config_.failure_sensing) {
    const auto it = ps.hole_track.find(hole_key(flow_src, flow_dst, local_idx));
    if (it != ps.hole_track.end()) {
      it->second.acked = true;
      it->second.timeouts = 0;
    }
  }
}

void Engine::on_timeout(const FlowView& flow, TimeNs now) {
  if (!config_.failure_sensing || flow.cur_local < 0) return;
  // Blackhole detection (§3.1.2): Hermes monitors flow timeouts per
  // (source-destination pair, path). Once `blackhole_timeouts` timeouts
  // accrue with no packet of that pair ever ACKed on that path, the path
  // deterministically drops this pair's packets.
  PathSet& ps = path_set(flow.src_group, flow.dst_group);
  const int li = flow.cur_local;
  if (li >= static_cast<int>(ps.size())) return;
  // Every timeout is evidence; ACK progress on the (pair, path) resets
  // the count (on_ack), so only *consecutive* timeouts without an ACK in
  // between reach the threshold. Earlier progress on the path must not
  // veto detection — a blackhole can onset mid-flow (TCAM corruption on
  // a previously healthy switch) and the path has to re-prove itself.
  HoleTrack& track = ps.hole_track[hole_key(flow.src, flow.dst, li)];
  track.acked = false;
  if (++track.timeouts >= config_.blackhole_timeouts) {
    if (!track.latched) {
      if (track.streak < 8) ++track.streak;
      ++stats_.blackhole_latches;
      if (sink_ != nullptr) [[unlikely]] {
        emit(DecisionKind::kBlackholeLatch, &flow, ps, li, -1, 0, 0.0F, now);
      }
    }
    track.latched = true;
    // Each confirming timeout refreshes the latch; a cleared blackhole
    // stops producing timeouts and the latch expires (see hole_active).
    track.latched_at = now;
  }
}

void Engine::on_retransmit(int src_group, int dst_group, int local_idx, TimeNs now) {
  PathSet& ps = path_set(src_group, dst_group);
  if (local_idx < 0 || local_idx >= static_cast<int>(ps.size())) return;
  ps.state(static_cast<std::size_t>(local_idx)).add_retransmit(now, config_);
}

void Engine::feed_probe_sample(int src_group, int dst_group, int local_idx, TimeNs rtt,
                               bool ecn_marked) {
  PathSet& ps = path_set(src_group, dst_group);
  if (local_idx < 0 || local_idx >= static_cast<int>(ps.size())) return;
  PathState& st = ps.state(static_cast<std::size_t>(local_idx));
  st.add_sample(rtt, ecn_marked, config_);
  // Track the best observed path for the extra "memory" probe.
  if (ps.best_idx < 0 || ps.best_idx >= static_cast<int>(ps.size()) ||
      !ps.state(static_cast<std::size_t>(ps.best_idx)).has_sample() ||
      st.rtt() < ps.state(static_cast<std::size_t>(ps.best_idx)).rtt()) {
    ps.best_idx = local_idx;
  }
}

bool Engine::blackholed(int src_group, int dst_group, std::int32_t src_host,
                        std::int32_t dst_host, int local_idx, TimeNs now) const {
  const PathSet& ps = path_set(src_group, dst_group);
  const auto it = ps.hole_track.find(hole_key(src_host, dst_host, local_idx));
  if (it == ps.hole_track.end() || !it->second.latched) return false;
  // Same expiry rule as hole_active, evaluated without mutating (const
  // introspection must not disturb detector state).
  if (config_.failure_expiry > 0) {
    const HoleTrack& t = it->second;
    const TimeNs expiry = config_.failure_expiry << (t.streak > 0 ? t.streak - 1 : 0);
    if (now - t.latched_at > expiry) return false;
  }
  return true;
}

int Engine::sampled_paths(int src_group, int dst_group) const {
  const PathSet& ps = path_set(src_group, dst_group);
  int n = 0;
  for (std::size_t i = 0; i < ps.size(); ++i)
    if (ps.state(i).has_sample()) ++n;
  return n;
}

void Engine::sync_pair(int src_group, int dst_group, const HostSet& hosts) {
  PathSet& ps = path_set(src_group, dst_group);
  ps.set_size(hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const Host& h = hosts.host(i);
    PathSet::Slot& s = ps.slot(i);
    if (s.host_id != h.id) {
      // A different host now backs this position: its sensing history is
      // about another endpoint — restart it. Stale blackhole latches for
      // the pair key the *flow* endpoints and heal via expiry.
      s.state = PathState{};
      s.host_id = h.id;
      if (ps.best_idx == static_cast<int>(i)) ps.best_idx = -1;
    }
    ps.set_weight(i, h.weight);
    ps.set_health(i, h.health);
  }
}

// HERMES_HOT: decision-stream append (runs inside decide/on_timeout) —
// stack-built event, reads only const path state, consumes no RNG,
// allocates nothing.
void Engine::emit(DecisionKind kind, const FlowView* flow, PathSet& ps, int from_local,
                  int to_local, std::int64_t delta_rtt_ns, float delta_ecn, TimeNs now,
                  std::uint64_t latch_lifetime_us) {
  DecisionEvent ev;
  ev.time_ns = now;
  ev.kind = kind;
  ev.delta_rtt_ns = delta_rtt_ns;
  ev.delta_ecn = delta_ecn;
  ev.from_path = static_cast<std::int16_t>(from_local);
  ev.to_path = static_cast<std::int16_t>(to_local);
  const auto cond = [&](int li) -> std::uint8_t {
    if (li < 0 || li >= static_cast<int>(ps.size())) return kCondNone;
    return static_cast<std::uint8_t>(ps.state(static_cast<std::size_t>(li)).characterize(config_));
  };
  ev.from_cond = cond(from_local);
  ev.to_cond = cond(to_local);
  ev.latch_lifetime_us = latch_lifetime_us;
  if (flow != nullptr) {
    ev.has_flow = true;
    ev.flow_id = flow->flow_id;
    ev.sent_bytes = flow->bytes_sent;
    ev.rate_bps = flow->rate_bps(now);
    ev.src_group = static_cast<std::int16_t>(flow->src_group);
    ev.dst_group = static_cast<std::int16_t>(flow->dst_group);
  }
  sink_->on_decision(ev);
}

}  // namespace hermes::engine
