#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hermes/engine/config.hpp"
#include "hermes/engine/decision.hpp"
#include "hermes/engine/host_set.hpp"
#include "hermes/engine/path_state.hpp"
#include "hermes/engine/rng.hpp"
#include "hermes/engine/time.hpp"

namespace hermes::engine {

/// Hermes decision engine: comprehensive sensing + timely yet cautious
/// rerouting (Algorithm 2), lifted out of any particular environment.
///
/// The engine knows only locality *groups* (racks in the paper, localities
/// in a serving mesh) and, per ordered group pair, a PathSet of sensing
/// slots. It never reads a clock, never touches a socket, and holds no
/// per-flow state: every entry point takes `now` and a FlowView from the
/// embedder. Three embedders exist in this repo — the simulator adapter
/// (lb::HermesLb), the conformance suite, and the hermesd replay daemon.
///
/// On top of the paper's sensed path conditions the engine layers
/// *declared* membership (HostSet): per-path weights and administrative
/// health with an Envoy-style panic threshold. Under the default
/// configuration — every path healthy at weight 1, the sim's world —
/// these layers are arithmetic no-ops: selection consumes the RNG in
/// exactly the order the pre-extraction simulator implementation did,
/// which is what keeps the golden determinism hash unchanged.
///
/// Blackholes are detected per (source host, destination host) pair
/// (§3.1.2), because a blackhole deterministically drops only packets
/// matching certain header patterns; silent random drops are detected
/// per path via the retransmission-rate epoch detector in PathState.
class Engine {
 public:
  /// `num_groups` fixes the group-pair table; `rng_seed` seeds the
  /// tie-break/fallback stream (sim adapters pass
  /// Simulator::rng_seed(salt) to share the simulator's seed lattice).
  Engine(Config config, int num_groups, std::uint64_t rng_seed);

  // --- the decision path (HERMES_HOT, allocation-free) -------------------
  /// Algorithm 2 for one outgoing packet of `flow`: returns the local
  /// path index to transmit on (accounting the send on it), or -1 when
  /// the pair has no paths. Mutates flow.timeout_pending /
  /// has_rerouted / last_reroute; the embedder copies those back.
  int decide(FlowView& flow, std::uint32_t bytes, TimeNs now);

  // --- signal feeds ------------------------------------------------------
  /// ACK observed for a (group pair, path): optional RTT sample plus the
  /// flow-pair's blackhole-progress reset.
  void on_ack(int src_group, int dst_group, int local_idx, std::int32_t flow_src,
              std::int32_t flow_dst, bool has_rtt, TimeNs rtt, bool ecn_marked);
  /// The flow's retransmission timer fired while on flow.cur_local.
  void on_timeout(const FlowView& flow, TimeNs now);
  /// A segment was retransmitted on this path.
  void on_retransmit(int src_group, int dst_group, int local_idx, TimeNs now);
  /// A probe reply measured this path (updates the probing "memory" best
  /// index as well).
  void feed_probe_sample(int src_group, int dst_group, int local_idx, TimeNs rtt,
                         bool ecn_marked);

  // --- membership --------------------------------------------------------
  [[nodiscard]] PathSet& path_set(int src_group, int dst_group) {
    return sets_[static_cast<std::size_t>(src_group) * static_cast<std::size_t>(num_groups_) +
                 static_cast<std::size_t>(dst_group)];
  }
  [[nodiscard]] const PathSet& path_set(int src_group, int dst_group) const {
    return sets_[static_cast<std::size_t>(src_group) * static_cast<std::size_t>(num_groups_) +
                 static_cast<std::size_t>(dst_group)];
  }
  /// Push declared membership into a pair's PathSet: slot i backs
  /// hosts.host(i). Slots whose backing host id changed are reset
  /// (sensing state restarts); slots that kept their host retain RTT/ECN
  /// estimates, rate and failure latches across weight/health updates.
  void sync_pair(int src_group, int dst_group, const HostSet& hosts);

  // --- introspection ------------------------------------------------------
  [[nodiscard]] int num_groups() const { return num_groups_; }
  [[nodiscard]] PathState& path_state(int src_group, int dst_group, int local_idx) {
    return path_set(src_group, dst_group).state(static_cast<std::size_t>(local_idx));
  }
  [[nodiscard]] PathType path_type(int src_group, int dst_group, int local_idx) {
    return path_state(src_group, dst_group, local_idx).characterize(config_);
  }
  /// Is the (src,dst,path) blackhole latch live right now? Const: stale
  /// latches are reported expired without mutating detector state.
  [[nodiscard]] bool blackholed(int src_group, int dst_group, std::int32_t src_host,
                                std::int32_t dst_host, int local_idx, TimeNs now) const;
  /// Number of distinct paths with at least one sample for a pair (the
  /// "visibility" a sender has, Table 6).
  [[nodiscard]] int sampled_paths(int src_group, int dst_group) const;
  [[nodiscard]] int best_path(int src_group, int dst_group) const {
    return path_set(src_group, dst_group).best_idx;
  }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const DecisionStats& stats() const { return stats_; }
  /// The engine's RNG stream, exposed so the embedder's probing draws
  /// from the same sequence the pre-extraction implementation did.
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Attach (null detaches) the decision-stream consumer.
  void set_sink(DecisionSink* sink) { sink_ = sink; }

  [[nodiscard]] static std::uint64_t hole_key(std::int32_t src, std::int32_t dst, int idx) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 16) |
           static_cast<std::uint32_t>(idx);
  }

 private:
  /// Is the hole latch live (expiring it in place when stale)? `flow`
  /// and `local_idx` locate the expiry for the decision stream.
  [[nodiscard]] bool hole_active(HoleTrack& track, PathSet& ps, TimeNs now, const FlowView* flow,
                                 int local_idx);
  [[nodiscard]] bool failed_for_flow(PathSet& ps, const FlowView& flow, int local_idx,
                                     TimeNs now);
  /// Algorithm 2 lines 3-12: initial placement / failure escape.
  int pick_fresh(PathSet& ps, const FlowView& flow, TimeNs now);
  /// Algorithm 2 lines 14-23: cautious reroute off a congested path.
  int pick_notably_better(PathSet& ps, const FlowView& flow, int cur_local, TimeNs now);
  /// Argmin r_p over selectable paths of type `wanted` (weighted-random
  /// among near-ties); `better_than` non-null restricts to paths notably
  /// better than it (the reroute comparison).
  int least_rate_path(PathSet& ps, const FlowView& flow, PathType wanted, int exclude_local,
                      const PathState* better_than, bool panic, TimeNs now);
  /// Weighted draw over every slot — the "must transmit somewhere" tail.
  int pick_any(PathSet& ps);
  [[nodiscard]] bool notably_better(const PathState& cur, const PathState& cand) const;
  /// Administrative eligibility of a slot for the fallback placement:
  /// weight > 0 and not declared unhealthy (any health in panic mode).
  [[nodiscard]] static bool fallback_eligible(const PathSet::Slot& s, bool panic) {
    return s.weight > 0 && (panic || s.health != Health::kUnhealthy);
  }
  void emit(DecisionKind kind, const FlowView* flow, PathSet& ps, int from_local, int to_local,
            std::int64_t delta_rtt_ns, float delta_ecn, TimeNs now,
            std::uint64_t latch_lifetime_us = 0);

  Config config_;
  Rng rng_;
  int num_groups_;
  std::vector<PathSet> sets_;
  DecisionStats stats_;
  DecisionSink* sink_ = nullptr;
};

}  // namespace hermes::engine
