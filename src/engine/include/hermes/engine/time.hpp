#pragma once

#include <cstdint>

namespace hermes::engine {

/// Engine time: nanoseconds on a caller-supplied monotonic axis. The
/// engine never reads a clock — every entry point takes `now` from the
/// embedding environment (a discrete-event simulator, a serving daemon's
/// steady clock, a replay harness), which is what makes decision
/// sequences replayable bit for bit. A plain integer rather than a
/// wrapper type: the engine sits below every other hermes module and must
/// not force a time vocabulary on its hosts.
using TimeNs = std::int64_t;

[[nodiscard]] constexpr TimeNs nsec(std::int64_t v) { return v; }
[[nodiscard]] constexpr TimeNs usec(std::int64_t v) { return v * 1'000; }
[[nodiscard]] constexpr TimeNs msec(std::int64_t v) { return v * 1'000'000; }
[[nodiscard]] constexpr TimeNs sec(std::int64_t v) { return v * 1'000'000'000; }

[[nodiscard]] constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }

}  // namespace hermes::engine
