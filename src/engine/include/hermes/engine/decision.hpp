#pragma once

#include <cstdint>

#include "hermes/engine/time.hpp"

namespace hermes::engine {

/// Why Hermes (re)placed a flow — Algorithm 2's branches plus the two
/// failure-latch lifecycle events. Numeric values match
/// obs::DecisionKind one to one so the simulator adapter can cast
/// engine events straight into flight-recorder records.
enum class DecisionKind : std::uint8_t {
  kInitialPlacement = 0,   ///< line 3: first packet of a flow
  kTimeoutEscape = 1,      ///< line 3: flow had an RTO, pick fresh
  kFailureEscape = 2,      ///< line 3: current path latched failed
  kCongestionReroute = 3,  ///< lines 14-22: notably-better reroute taken
  kBlackholeLatch = 4,     ///< §3.1.2 detector latched (src,dst,path)
  kLatchExpire = 5,        ///< a failure latch expired without re-confirmation
};

[[nodiscard]] constexpr const char* to_string(DecisionKind k) {
  switch (k) {
    case DecisionKind::kInitialPlacement: return "initial-placement";
    case DecisionKind::kTimeoutEscape: return "timeout-escape";
    case DecisionKind::kFailureEscape: return "failure-escape";
    case DecisionKind::kCongestionReroute: return "congestion-reroute";
    case DecisionKind::kBlackholeLatch: return "blackhole-latch";
    case DecisionKind::kLatchExpire: return "latch-expire";
  }
  return "?";
}

/// "No path condition" marker in DecisionEvent::from_cond/to_cond
/// (matches obs::kPathCondNone; valid conditions are PathType casts).
inline constexpr std::uint8_t kCondNone = 255;

/// Always-on counters over Algorithm 2's decision branches and the
/// blackhole detector's latch lifecycle.
struct DecisionStats {
  std::uint64_t initial_placements = 0;
  std::uint64_t timeout_escapes = 0;
  std::uint64_t failure_escapes = 0;
  std::uint64_t congestion_reroutes = 0;
  std::uint64_t blackhole_latches = 0;
  std::uint64_t latch_expiries = 0;
};

/// The flow-scoped inputs Algorithm 2 reads, plus the flow flags it
/// writes back (timeout acted upon, reroute cooldown). A plain view the
/// embedder fills from its own flow bookkeeping before each engine call
/// and copies the in/out fields back from afterwards — the engine holds
/// no per-flow state of its own.
struct FlowView {
  std::uint64_t flow_id = 0;
  std::int32_t src = -1;  ///< source endpoint id (blackhole detector key)
  std::int32_t dst = -1;
  int src_group = -1;     ///< source locality group (rack in the paper)
  int dst_group = -1;
  std::uint64_t bytes_sent = 0;  ///< S: cumulative bytes handed to the wire
  int cur_local = -1;            ///< current path's local index, -1 = none
  bool has_sent = false;
  bool timeout_pending = false;  ///< in/out: cleared once acted upon
  bool has_rerouted = false;     ///< in/out: reroute-cooldown flags
  TimeNs last_reroute = 0;       ///< in/out

  /// Lazy flow-rate estimate R (bits/s): evaluated only when a decision
  /// actually needs it. A bare function pointer + context, not a
  /// std::function — FlowView crosses the HERMES_HOT decide() boundary.
  const void* rate_ctx = nullptr;
  double (*rate_fn)(const void* ctx, TimeNs now) = nullptr;

  [[nodiscard]] double rate_bps(TimeNs now) const {
    return rate_fn != nullptr ? rate_fn(rate_ctx, now) : 0.0;
  }
};

/// One Algorithm 2 decision (or latch transition) with the inputs that
/// produced it: ΔRTT/ΔECN of the reroute comparison, the flow-status
/// gates S and R, and the path-condition transition. has_flow is false
/// for latch events that fired outside any flow's decision.
struct DecisionEvent {
  TimeNs time_ns = 0;
  std::uint64_t flow_id = 0;
  std::uint64_t sent_bytes = 0;            ///< S at decision time
  double rate_bps = 0;                     ///< R at decision time
  std::int64_t delta_rtt_ns = 0;           ///< current - chosen (reroutes only)
  float delta_ecn = 0;
  std::int16_t src_group = -1;
  std::int16_t dst_group = -1;
  std::int16_t from_path = -1;             ///< local index before (-1 = none)
  std::int16_t to_path = -1;               ///< local index chosen (-1 = none)
  DecisionKind kind = DecisionKind::kInitialPlacement;
  std::uint8_t from_cond = kCondNone;      ///< PathType of from_path
  std::uint8_t to_cond = kCondNone;        ///< PathType of to_path
  bool has_flow = false;
  std::uint64_t latch_lifetime_us = 0;     ///< kLatchExpire: latch age
};

/// Decision-stream consumer. The simulator adapter forwards events into
/// the flight recorder and metrics; hermesd prints them. Implementations
/// must not call back into the Engine.
class DecisionSink {
 public:
  virtual void on_decision(const DecisionEvent& ev) = 0;

 protected:
  ~DecisionSink() = default;
};

}  // namespace hermes::engine
