#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hermes/engine/path_state.hpp"
#include "hermes/engine/time.hpp"

namespace hermes::engine {

/// Administrative health of a path's far end, as reported by the
/// embedder's health checking (the engine itself only *senses* failures;
/// health is declared). Mirrors the Envoy host-health trichotomy.
enum class Health : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,   ///< usable, but only when healthy capacity runs short
  kUnhealthy = 2,  ///< excluded from selection outside panic mode
};

[[nodiscard]] constexpr const char* to_string(Health h) {
  switch (h) {
    case Health::kHealthy: return "healthy";
    case Health::kDegraded: return "degraded";
    case Health::kUnhealthy: return "unhealthy";
  }
  return "?";
}

/// One member of a HostSet: a stable endpoint identity plus the
/// embedder-declared weight and health.
struct Host {
  std::int64_t id = -1;
  std::uint32_t weight = 1;
  Health health = Health::kHealthy;
};

/// Membership of one locality pair as the embedder sees it: an ordered
/// list of hosts, position i backing path i of the pair's PathSet.
/// Mutations (add/remove/set_health/set_weight) happen here and are
/// pushed into the engine with Engine::sync_pair(), which preserves the
/// sensing state of every host that kept its position-identity and
/// resets slots whose backing host changed.
class HostSet {
 public:
  [[nodiscard]] std::size_t size() const { return hosts_.size(); }
  [[nodiscard]] bool empty() const { return hosts_.empty(); }
  [[nodiscard]] const Host& host(std::size_t i) const { return hosts_[i]; }
  [[nodiscard]] const std::vector<Host>& hosts() const { return hosts_; }

  /// Append a host; returns its position (= path local index).
  std::size_t add(std::int64_t id, std::uint32_t weight = 1, Health health = Health::kHealthy) {
    hosts_.push_back(Host{id, weight, health});
    return hosts_.size() - 1;
  }

  /// Remove the host with this id (positions above it shift down, so
  /// their slots re-bind on the next sync_pair). Returns false if absent.
  bool remove(std::int64_t id) {
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      if (hosts_[i].id == id) {
        hosts_.erase(hosts_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  bool set_health(std::int64_t id, Health h) {
    Host* host = find(id);
    if (host == nullptr) return false;
    host->health = h;
    return true;
  }

  bool set_weight(std::int64_t id, std::uint32_t w) {
    Host* host = find(id);
    if (host == nullptr) return false;
    host->weight = w;
    return true;
  }

 private:
  [[nodiscard]] Host* find(std::int64_t id) {
    for (Host& h : hosts_)
      if (h.id == id) return &h;
    return nullptr;
  }
  std::vector<Host> hosts_;
};

/// Timeout/ACK bookkeeping per (src,dst,path) feeding the blackhole
/// detector (Table 3's per-path n_timeout, kept per host pair since a
/// blackhole matches specific header patterns). Aggregated across flows:
/// one flow reroutes away after a single timeout, but the pair's traffic
/// keeps revisiting the path and the count accrues. The latch heals the
/// same way PathState's random-drop latch does: it expires after
/// failure_expiry without fresh evidence, and each re-confirmation
/// doubles the expiry (streak capped at 8 => 128x).
struct HoleTrack {
  std::uint32_t timeouts = 0;
  bool acked = false;
  bool latched = false;
  TimeNs latched_at = 0;
  std::uint32_t streak = 0;
};

/// The engine's view of one ordered locality pair: per-path sensing
/// state plus the declared weight/health of whatever backs each path,
/// the probing "memory" index, and the pair's blackhole latches.
class PathSet {
 public:
  struct Slot {
    PathState state;
    std::uint32_t weight = 1;
    Health health = Health::kHealthy;
    std::int64_t host_id = -1;  ///< backing host identity, -1 = anonymous path
  };

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] bool empty() const { return slots_.empty(); }
  [[nodiscard]] Slot& slot(std::size_t i) { return slots_[i]; }
  [[nodiscard]] const Slot& slot(std::size_t i) const { return slots_[i]; }
  [[nodiscard]] PathState& state(std::size_t i) { return slots_[i].state; }
  [[nodiscard]] const PathState& state(std::size_t i) const { return slots_[i].state; }

  /// Exact resize. Shrinking drops the tail slots (their latches stay in
  /// hole_track but can no longer match a live index).
  void set_size(std::size_t n) {
    if (n == slots_.size()) return;
    slots_.resize(n);
    recount();
  }
  /// Grow-only resize; allocates, so callers invoke it outside
  /// HERMES_HOT regions (the adapter syncs sizes before decide()).
  void ensure(std::size_t n) {
    if (slots_.size() < n) set_size(n);
  }

  void set_health(std::size_t i, Health h) {
    if (slots_[i].health == h) return;
    if (slots_[i].health == Health::kHealthy) --healthy_;
    if (h == Health::kHealthy) ++healthy_;
    slots_[i].health = h;
  }
  void set_weight(std::size_t i, std::uint32_t w) { slots_[i].weight = w; }

  [[nodiscard]] std::size_t healthy_count() const { return healthy_; }

  /// Envoy-style panic: too few healthy members => ignore health and
  /// spread over everyone rather than concentrate on the survivors.
  [[nodiscard]] bool in_panic(double threshold) const {
    return !slots_.empty() &&
           static_cast<double>(healthy_) < threshold * static_cast<double>(slots_.size());
  }

  int best_idx = -1;  ///< previously observed best path (probed extra)
  std::unordered_map<std::uint64_t, HoleTrack> hole_track;

 private:
  void recount() {
    healthy_ = 0;
    for (const Slot& s : slots_)
      if (s.health == Health::kHealthy) ++healthy_;
  }

  std::vector<Slot> slots_;
  std::size_t healthy_ = 0;
};

}  // namespace hermes::engine
