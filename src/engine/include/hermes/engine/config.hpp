#pragma once

#include <cstdint>

#include "hermes/engine/time.hpp"

namespace hermes::engine {

/// Hermes engine parameters (the paper's Table 4, §3.3) in environment-
/// neutral units: durations are TimeNs, the cautious-rerouting rate gate
/// is an absolute bits/second limit. Embedders derive thresholds from
/// their own fabric knowledge — the simulator adapter converts its
/// HermesConfig (SimTime fields, a rate *fraction* of the host link) into
/// this struct; a serving daemon sets them from measured base RTTs. The
/// paper's derivation, for reference:
///   t_rtt_low  = base RTT + 20..40us          (default +30us)
///   t_rtt_high = base RTT + 1.5 x one-hop delay
///   delta_rtt  = one-hop delay
struct Config {
  // Congestion sensing thresholds (Algorithm 1).
  double t_ecn = 0.40;        ///< ECN fraction of a congested path
  TimeNs t_rtt_low = 0;       ///< below: lightly loaded
  TimeNs t_rtt_high = 0;      ///< above (with ECN): congested
  // "Notably better" margins for cautious rerouting (Algorithm 2).
  TimeNs delta_rtt = 0;
  double delta_ecn = 0.05;
  // Flow-status gates for cautious rerouting: only flows that sent more
  // than S bytes and run slower than the absolute rate limit R reroute.
  double reroute_rate_limit_bps = 0;  ///< R; 0 disables congestion reroutes
  std::uint64_t sent_threshold_bytes = 600 * 1024;  ///< S

  // Failure sensing (§3.1.2).
  std::uint32_t blackhole_timeouts = 3;  ///< timeouts w/o any ACK => blackhole
  double retx_threshold = 0.01;          ///< f_retransmission limit
  TimeNs retx_epoch = msec(10);          ///< tau
  /// A failure latch expires after this long and must be re-confirmed by
  /// fresh evidence; each re-confirmation doubles the expiry (capped at
  /// 128x). 0 = latch forever.
  TimeNs failure_expiry = msec(100);

  /// Minimum spacing between congestion-triggered reroutes of one flow.
  TimeNs reroute_min_gap = msec(2);

  // Signal smoothing.
  double rtt_ewma_gain = 0.5;
  double ecn_ewma_gain = 1.0 / 16.0;

  // Feature toggles (ablations of Fig. 18; §5.4 TCP mode).
  bool rerouting_enabled = true;   ///< reroute ongoing flows on congestion
  bool failure_sensing = true;
  bool use_ecn = true;             ///< false: sense with RTT only (plain TCP)

  /// Envoy-style panic threshold over *administrative* path health: when
  /// the healthy fraction of a path set drops below this, health
  /// filtering is abandoned and traffic is spread over every member —
  /// sending to a possibly-unhealthy backend beats sending to none.
  /// Sensed failure latches (blackhole / random-drop detectors) are not
  /// affected; they keep their own always-transmit-somewhere fallback.
  double panic_threshold = 0.5;
};

}  // namespace hermes::engine
