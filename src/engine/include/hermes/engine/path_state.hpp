#pragma once

#include <cstdint>

#include "hermes/engine/config.hpp"
#include "hermes/engine/rate.hpp"
#include "hermes/engine/time.hpp"

namespace hermes::engine {

/// Path characterization (Table 5 / Algorithm 1).
enum class PathType : std::uint8_t {
  kGood,       ///< low RTT and low ECN fraction: underutilized
  kGray,       ///< conflicting or insufficient signals
  kCongested,  ///< high RTT and high ECN fraction
  kFailed,     ///< blackhole or silent random drops detected
};

[[nodiscard]] constexpr const char* to_string(PathType t) {
  switch (t) {
    case PathType::kGood: return "good";
    case PathType::kGray: return "gray";
    case PathType::kCongested: return "congested";
    case PathType::kFailed: return "failed";
  }
  return "?";
}

/// Sensing state Hermes keeps per (source group, destination group, path):
/// RTT and ECN-fraction estimates fed by data ACKs and probe replies, the
/// aggregate local sending rate r_p, and the retransmission-rate failure
/// detector (§3.1). Characterization is a pure function of this state and
/// the thresholds (Algorithm 1), so it is evaluated on demand.
class PathState {
 public:
  /// Feed one RTT + ECN observation (from an ACK or a probe reply).
  void add_sample(TimeNs rtt, bool ecn_marked, const Config& cfg) {
    if (!has_sample_) {
      rtt_ = rtt;
      ecn_frac_ = ecn_marked ? 1.0 : 0.0;
      has_sample_ = true;
    } else {
      rtt_ = static_cast<TimeNs>((1.0 - cfg.rtt_ewma_gain) * static_cast<double>(rtt_) +
                                 cfg.rtt_ewma_gain * static_cast<double>(rtt));
      ecn_frac_ = (1.0 - cfg.ecn_ewma_gain) * ecn_frac_ + cfg.ecn_ewma_gain * (ecn_marked ? 1 : 0);
    }
  }

  /// Account one transmitted data packet (denominator of f_retransmission,
  /// numerator of r_p).
  void add_send(std::uint32_t bytes, TimeNs now, const Config& cfg) {
    roll_epoch(now, cfg);
    ++sends_in_epoch_;
    rate_dre_.add(bytes, now);
  }

  /// Account one retransmission event attributed to this path.
  void add_retransmit(TimeNs now, const Config& cfg) {
    roll_epoch(now, cfg);
    ++retx_in_epoch_;
  }

  /// Mark the path failed (blackhole/random-drop detector fired).
  void fail(TimeNs now) {
    failed_ = true;
    failed_at_ = now;
    if (fail_streak_ < 8) ++fail_streak_;
  }
  void clear_failure() {
    failed_ = false;
    fail_streak_ = 0;
  }

  /// Failure latch with expiry: once the expiry has elapsed the latch
  /// clears and the detector must re-confirm with fresh evidence. Each
  /// re-confirmation doubles the expiry (up to 128x), so a genuinely
  /// failing switch stays latched almost continuously while a one-off
  /// congestion false positive heals after a single period.
  [[nodiscard]] bool failed_active(TimeNs now, const Config& cfg) {
    if (failed_ && cfg.failure_expiry > 0) {
      const TimeNs expiry = cfg.failure_expiry << (fail_streak_ > 0 ? fail_streak_ - 1 : 0);
      if (now - failed_at_ > expiry) failed_ = false;  // streak kept for backoff
    }
    return failed_;
  }

  /// Algorithm 1 lines 1-7: congestion characterization only.
  [[nodiscard]] PathType congestion_type(const Config& cfg) const {
    if (!has_sample_) return PathType::kGray;
    const bool ecn_low = !cfg.use_ecn || ecn_frac_ < cfg.t_ecn;
    const bool ecn_high = !cfg.use_ecn || ecn_frac_ > cfg.t_ecn;
    if (ecn_low && rtt_ < cfg.t_rtt_low) return PathType::kGood;
    if (ecn_high && rtt_ > cfg.t_rtt_high) return PathType::kCongested;
    return PathType::kGray;
  }

  /// Algorithm 1: characterize this path (failure state included).
  [[nodiscard]] PathType characterize(const Config& cfg) const {
    if (failed_) return PathType::kFailed;
    return congestion_type(cfg);
  }

  [[nodiscard]] bool has_sample() const { return has_sample_; }
  [[nodiscard]] TimeNs rtt() const { return rtt_; }
  [[nodiscard]] double ecn_fraction() const { return ecn_frac_; }
  [[nodiscard]] double retx_fraction() const { return retx_frac_; }
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] double rate_bps(TimeNs now) const { return rate_dre_.rate_bps(now); }

  /// Close the current retransmission epoch if tau has elapsed; returns
  /// true when an epoch boundary was crossed. At the boundary the silent
  /// random-drop detector runs (Algorithm 1 lines 8-9): a high
  /// retransmission rate on a path that is *not* congested cannot be
  /// explained by congestion, so the path is latched as failed.
  bool roll_epoch(TimeNs now, const Config& cfg) {
    if (now - epoch_start_ < cfg.retx_epoch) return false;
    retx_frac_ = sends_in_epoch_ > 0
                     ? static_cast<double>(retx_in_epoch_) / static_cast<double>(sends_in_epoch_)
                     : 0.0;
    if (cfg.failure_sensing && sends_in_epoch_ >= kMinEpochSends &&
        retx_frac_ > cfg.retx_threshold &&
        congestion_type(cfg) != PathType::kCongested) {
      // One bad epoch latches, as in the paper (§3.1.2). The min-sends
      // guard keeps tiny samples from condemning a path; an occasional
      // congestion-burst false positive merely removes one of the
      // parallel paths for one group pair.
      ++bad_epochs_;
      fail(now);
    } else {
      bad_epochs_ = 0;
    }
    sends_in_epoch_ = 0;
    retx_in_epoch_ = 0;
    epoch_start_ = now;
    return true;
  }

  /// Minimum per-epoch sample count before the drop detector may fire
  /// (one retransmission among a handful of packets is not evidence).
  static constexpr std::uint32_t kMinEpochSends = 25;

 private:
  TimeNs rtt_ = 0;
  double ecn_frac_ = 0;
  bool has_sample_ = false;

  Dre rate_dre_{usec(100), 0.2};

  std::uint32_t sends_in_epoch_ = 0;
  std::uint32_t retx_in_epoch_ = 0;
  std::uint32_t bad_epochs_ = 0;
  double retx_frac_ = 0;
  TimeNs epoch_start_ = 0;

  bool failed_ = false;
  TimeNs failed_at_ = 0;
  std::uint32_t fail_streak_ = 0;
};

}  // namespace hermes::engine
