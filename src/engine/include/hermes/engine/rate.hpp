#pragma once

#include <cmath>
#include <cstdint>

#include "hermes/engine/time.hpp"

namespace hermes::engine {

/// Discounting Rate Estimator (CONGA §4.3), the engine's sim-independent
/// twin of net::Dre: a register X incremented by observed bytes that
/// decays multiplicatively with time constant Tdre/alpha, decayed lazily
/// on access. The floating-point expression order matches net::Dre
/// operation for operation so r_p estimates — and every tie-break that
/// compares them — survive the engine extraction bit for bit.
class Dre {
 public:
  Dre() = default;
  Dre(TimeNs tdre, double alpha) : tdre_{tdre}, alpha_{alpha} {}

  void add(std::uint64_t bytes, TimeNs now) {
    decay(now);
    x_ += static_cast<double>(bytes);
  }

  /// Estimated rate in bytes/second.
  [[nodiscard]] double rate_bytes_per_sec(TimeNs now) const {
    decay(now);
    return x_ * alpha_ / to_seconds(tdre_);
  }
  /// Estimated rate in bits/second.
  [[nodiscard]] double rate_bps(TimeNs now) const { return 8.0 * rate_bytes_per_sec(now); }

 private:
  void decay(TimeNs now) const {
    if (now <= last_) return;
    const double dt = to_seconds(now - last_);
    // Continuous-time equivalent of "every Tdre, X *= (1 - alpha)".
    x_ *= std::exp(std::log1p(-alpha_) * dt / to_seconds(tdre_));
    last_ = now;
  }

  TimeNs tdre_ = usec(50);
  double alpha_ = 0.1;
  mutable double x_ = 0.0;
  mutable TimeNs last_ = 0;
};

}  // namespace hermes::engine
