#pragma once

#include <cstdint>
#include <random>

namespace hermes::engine {

/// Deterministic random stream for the engine's tie-breaking and fallback
/// placement. Construction and draw order replicate hermes::sim::Rng
/// exactly (same generator, same distribution, same construction-time
/// salt draw), so a simulator that seeds this with
/// sim::Simulator::rng_seed(salt) gets draws bit-identical to a
/// sim::Rng fork of the same salt — the property the golden determinism
/// hash relies on across the engine extraction.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_{seed} {}

  /// Uniform integer in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t next(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>{0, n - 1}(engine_);
  }

  /// Derive an independent child stream; stable for a given (seed, salt).
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    return Rng{split_mix(state_salt_ ^ (salt * 0x9E3779B97F4A7C15ULL))};
  }

 private:
  [[nodiscard]] static std::uint64_t split_mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }
  std::mt19937_64 engine_;
  // Drawn at construction exactly like sim::Rng does, so the generator
  // state after construction — and therefore every subsequent next() —
  // matches a sim::Rng built from the same seed.
  std::uint64_t state_salt_ = engine_();
};

}  // namespace hermes::engine
