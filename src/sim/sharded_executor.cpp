#include "hermes/sim/sharded_executor.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace hermes::sim {

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("HERMES_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
    // 0, negative, empty or non-numeric: treated as unset, fall through.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ShardedExecutor::ShardedExecutor(std::vector<EventQueue*> shards, SimTime lookahead,
                                 unsigned threads)
    : shards_{std::move(shards)}, lookahead_{lookahead} {
  if (shards_.empty()) throw std::invalid_argument("ShardedExecutor needs at least one shard");
  if (shards_.size() > 1 && lookahead_ <= SimTime::zero())
    throw std::invalid_argument("ShardedExecutor lookahead must be positive");
  threads_ = std::min<unsigned>(resolve_threads(threads),
                                static_cast<unsigned>(shards_.size()));
  if (threads_ > 1) {
    pool_.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t) pool_.emplace_back([this] { worker_loop(); });
  }
}

ShardedExecutor::~ShardedExecutor() {
  {
    const std::lock_guard<std::mutex> lock{mu_};
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& th : pool_) th.join();
}

void ShardedExecutor::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock{mu_};
  for (;;) {
    cv_work_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const SimTime h = horizon_;
    for (;;) {
      if (next_shard_ >= shards_.size()) break;
      EventQueue* q = shards_[next_shard_++];
      lock.unlock();
      try {
        q->run_until_before(h);
      } catch (...) {
        lock.lock();
        if (!round_error_) round_error_ = std::current_exception();
        continue;
      }
      lock.lock();
    }
    if (++workers_done_ == pool_.size()) cv_done_.notify_one();
  }
}

void ShardedExecutor::run_round(SimTime h) {
  if (pool_.empty()) {
    // Single-threaded: same shard visit order (0..S-1) the pool's claim
    // cursor produces, minus the synchronization.
    for (EventQueue* q : shards_) q->run_until_before(h);
    return;
  }
  std::unique_lock<std::mutex> lock{mu_};
  horizon_ = h;
  next_shard_ = 0;
  workers_done_ = 0;
  round_error_ = nullptr;
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lock, [&] { return workers_done_ == pool_.size(); });
  if (round_error_) std::rethrow_exception(round_error_);
}

void ShardedExecutor::run_until(SimTime t_end, const std::function<bool()>& barrier) {
  for (;;) {
    if (barrier && !barrier()) break;
    SimTime t_min = SimTime::max();
    for (EventQueue* q : shards_) t_min = std::min(t_min, q->next_event_time());
    if (t_min >= t_end) break;
    const SimTime h = std::min(t_min + lookahead_, t_end);
    ++stats_.rounds;
    stats_.horizon_ns_total += static_cast<std::uint64_t>((h - t_min).ns());
    run_round(h);
  }
}

}  // namespace hermes::sim
