#pragma once

#include <cstdint>
#include <random>

namespace hermes::sim {

/// Deterministic random stream. Every stochastic component of the simulator
/// draws from its own Rng seeded from the scenario master seed, so runs are
/// reproducible and schemes can be compared on identical arrival sequences.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_{seed} {}

  /// Uniform integer in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t next(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>{0, n - 1}(engine_);
  }
  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }
  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }
  /// Exponential with the given mean (inter-arrival sampling).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }
  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_) < p;
  }
  /// Derive an independent child stream; stable for a given (seed, salt).
  [[nodiscard]] Rng fork(std::uint64_t salt) const { return Rng{fork_seed(salt)}; }

  /// The 64-bit seed fork(salt) would construct its child from. Exposed so
  /// sim-independent components (hermes::engine) can be seeded with the
  /// exact stream a fork would produce, keeping refactors byte-identical.
  [[nodiscard]] std::uint64_t fork_seed(std::uint64_t salt) const {
    return split_mix(state_salt_ ^ (salt * 0x9E3779B97F4A7C15ULL));
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  [[nodiscard]] static std::uint64_t split_mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }
  std::mt19937_64 engine_;
  std::uint64_t state_salt_ = engine_();
};

}  // namespace hermes::sim
