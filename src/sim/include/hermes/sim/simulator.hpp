#pragma once

#include <cstdint>

#include "hermes/sim/event_queue.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::sim {

/// The simulation context shared by every component: a clock, an event
/// scheduler, and a master random seed from which components derive
/// independent deterministic streams.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : master_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return queue_.now(); }
  [[nodiscard]] EventQueue& events() { return queue_; }

  /// Fire-and-forget scheduling (packet pipeline hot path).
  void at(SimTime t, EventQueue::Callback cb) { queue_.post_at(t, std::move(cb)); }
  void after(SimTime delay, EventQueue::Callback cb) { queue_.post_in(delay, std::move(cb)); }

  /// Cancellable timers (RTO, pacing).
  EventQueue::Handle timer_at(SimTime t, EventQueue::Callback cb) {
    return queue_.schedule_at(t, std::move(cb));
  }
  EventQueue::Handle timer_after(SimTime delay, EventQueue::Callback cb) {
    return queue_.schedule_in(delay, std::move(cb));
  }

  void run() { queue_.run(); }
  void run_until(SimTime t) { queue_.run_until(t); }
  void stop() { queue_.stop(); }

  /// Independent deterministic random stream for a named component.
  [[nodiscard]] Rng rng_stream(std::uint64_t salt) { return master_.fork(salt); }
  /// The seed rng_stream(salt) constructs its stream from — hand this to
  /// sim-independent components (hermes::engine::Rng) so their draws match
  /// a fork of the same salt bit for bit.
  [[nodiscard]] std::uint64_t rng_seed(std::uint64_t salt) const {
    return master_.fork_seed(salt);
  }

 private:
  EventQueue queue_;
  Rng master_;
};

}  // namespace hermes::sim
