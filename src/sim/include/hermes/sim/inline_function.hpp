#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hermes::sim {

/// A move-only callable wrapper with *fixed* inline storage and no heap
/// fallback: constructing it from a callable larger than `Capacity` (or
/// over-aligned beyond `alignof(std::max_align_t)`) is a compile error,
/// never a silent allocation. This is what makes the event and packet
/// hot paths allocation-free — a `std::function` would heap-allocate for
/// any capture past its small-buffer optimization (typically 16 bytes; a
/// packet-hop lambda capturing a ~100-byte Packet always spills).
///
/// The per-callable dispatch table carries invoke / relocate / destroy.
/// Trivially copyable captures — every packet-hop and timer lambda in
/// the tree — publish null relocate/destroy entries, so moving an
/// InlineCallable (events migrate between time-wheel buckets, and are
/// sorted, by value) is an inline memcpy of the storage with no
/// indirect call: profiled on the packet pipeline, the per-lambda-type
/// relocate thunks were ~17% of total runtime purely in call dispatch.
/// Non-trivial captures still relocate through their move constructor.
///
/// `Sig` is a function signature (`void()`, `void(const Packet&)`, ...).
/// The nullary case keeps its historical name via the InlineFunction
/// alias below.
template <std::size_t Capacity, typename Sig = void()>
class InlineCallable;  // primary template: only the R(Args...) form exists

template <std::size_t Capacity, typename R, typename... Args>
class InlineCallable<Capacity, R(Args...)> {
 public:
  static constexpr std::size_t capacity() { return Capacity; }

  InlineCallable() = default;
  InlineCallable(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallable> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineCallable(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= Capacity,
                  "callable capture exceeds the InlineCallable capacity; shrink the "
                  "capture (or raise the capacity at the declaration site)");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "callable is over-aligned for InlineCallable storage");
    // Relocation (and therefore InlineCallable's move) is declared
    // noexcept: a capture whose move constructor actually throws would
    // terminate. Captures are value aggregates in practice; keeping the
    // move noexcept is what lets vector growth in the scheduler relocate
    // events instead of copying them.
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    ops_ = &kOps<D>;
  }

  InlineCallable(InlineCallable&& o) noexcept : ops_{o.ops_} {
    if (ops_) {
      relocate_from(o);
      o.ops_ = nullptr;
    }
  }

  InlineCallable& operator=(InlineCallable&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_) {
        relocate_from(o);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallable(const InlineCallable&) = delete;
  InlineCallable& operator=(const InlineCallable&) = delete;

  ~InlineCallable() { reset(); }

  void reset() {
    if (ops_) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) { return ops_->invoke(buf_, std::forward<Args>(args)...); }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  ///< move-construct dst, destroy src
    void (*destroy)(void*);
  };

  // Trivially-copyable, trivially-destructible captures take the
  // memcpy/no-op fast paths (null table entries) instead of indirect
  // calls; see relocate_from() and reset().
  template <typename D>
  static constexpr bool kTrivial =
      std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>;

  template <typename D>
  static constexpr Ops kOps{
      [](void* p, Args&&... args) -> R {
        return (*static_cast<D*>(p))(std::forward<Args>(args)...);
      },
      kTrivial<D> ? nullptr
                  : +[](void* dst, void* src) {
                      D* s = static_cast<D*>(src);
                      ::new (dst) D(std::move(*s));
                      s->~D();
                    },
      kTrivial<D> ? nullptr : +[](void* p) { static_cast<D*>(p)->~D(); },
  };

  void relocate_from(InlineCallable& o) {
    if (ops_->relocate == nullptr) {
      std::memcpy(buf_, o.buf_, Capacity);
    } else {
      ops_->relocate(buf_, o.buf_);
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

/// The nullary event-callback form used by the event queue.
template <std::size_t Capacity>
using InlineFunction = InlineCallable<Capacity, void()>;

}  // namespace hermes::sim
