#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hermes::sim {

/// A move-only callable wrapper with *fixed* inline storage and no heap
/// fallback: constructing it from a callable larger than `Capacity` (or
/// over-aligned beyond `alignof(std::max_align_t)`) is a compile error,
/// never a silent allocation. This is what makes the event hot path
/// allocation-free — a `std::function` would heap-allocate for any
/// capture past its small-buffer optimization (typically 16 bytes; a
/// packet-hop lambda capturing a ~100-byte Packet always spills).
///
/// The per-callable dispatch table carries invoke / relocate / destroy,
/// so moving an InlineFunction (events migrate between time-wheel
/// buckets) costs one indirect call and a small memcpy-equivalent.
template <std::size_t Capacity>
class InlineFunction {
 public:
  static constexpr std::size_t capacity() { return Capacity; }

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= Capacity,
                  "callable capture exceeds the InlineFunction capacity; shrink the "
                  "capture (or raise EventQueue::kInlineCallbackBytes)");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "callable is over-aligned for InlineFunction storage");
    // Relocation (and therefore InlineFunction's move) is declared
    // noexcept: a capture whose move constructor actually throws would
    // terminate. Captures are value aggregates in practice; keeping the
    // move noexcept is what lets vector growth in the scheduler relocate
    // events instead of copying them.
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    ops_ = &kOps<D>;
  }

  InlineFunction(InlineFunction&& o) noexcept : ops_{o.ops_} {
    if (ops_) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  ///< move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

}  // namespace hermes::sim
