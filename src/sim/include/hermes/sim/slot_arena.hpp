#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace hermes::sim {

/// Handle into a SlotArena: 22 bits of slot index, 10 bits of slot
/// generation, so it travels through the fabric as one 32-bit word
/// instead of the ~112-byte payload it names. The generation field makes
/// use-after-free detectable: freeing a slot bumps its generation, so a
/// stale handle stops validating (until the 10-bit counter wraps, i.e.
/// after 1024 reuses of the same slot — good enough to catch every
/// realistic lifetime bug in tests and debug builds).
///
/// The handle type is shared by every SlotArena instantiation; it does
/// not pin which arena it came from. Like EventQueue::Handle, a handle
/// must not outlive its arena.
class ArenaHandle {
 public:
  static constexpr std::uint32_t kSlotBits = 22;
  static constexpr std::uint32_t kGenBits = 10;
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;
  static constexpr std::uint32_t kGenMask = (1u << kGenBits) - 1;
  static constexpr std::uint32_t kNullBits = 0xFFFFFFFFu;

  constexpr ArenaHandle() = default;
  constexpr ArenaHandle(std::uint32_t slot, std::uint32_t gen)
      : bits_{(slot << kGenBits) | (gen & kGenMask)} {}

  [[nodiscard]] constexpr std::uint32_t slot() const { return bits_ >> kGenBits; }
  [[nodiscard]] constexpr std::uint32_t gen() const { return bits_ & kGenMask; }
  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }
  [[nodiscard]] constexpr explicit operator bool() const { return bits_ != kNullBits; }
  friend constexpr bool operator==(ArenaHandle a, ArenaHandle b) { return a.bits_ == b.bits_; }

 private:
  std::uint32_t bits_ = kNullBits;
};

/// A pooled object arena with generation-counted slots — the timer-slot
/// pool from the event queue, generalized. alloc() hands out a slot (LIFO
/// free-list, so slot assignment is deterministic for a deterministic
/// call sequence); free() recycles it and invalidates outstanding
/// handles via the generation counter.
///
/// Storage is chunked (kChunkSlots objects per chunk) so growth never
/// relocates live objects: a `T&` obtained from operator[] stays valid
/// across alloc() calls, which the packet pipeline relies on (a switch
/// holds a reference across the egress-port enqueue). Steady state is
/// allocation-free: once the high-water mark is reached, alloc/free is a
/// vector pop/push and a generation bump.
template <typename T>
class SlotArena {
 public:
  using Handle = ArenaHandle;
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSlots - 1;

  SlotArena() = default;
  SlotArena(const SlotArena&) = delete;
  SlotArena& operator=(const SlotArena&) = delete;

  /// Take a slot and move `v` into it. Grows by one chunk when the
  /// free-list is empty; otherwise allocation-free.
  [[nodiscard]] Handle alloc(T&& v) {
    if (free_.empty()) grow();
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    slot_ref(slot) = std::move(v);
    ++live_;
    return Handle{slot, gens_[slot]};
  }

  /// Release a slot. The generation bump invalidates every outstanding
  /// handle to it; the slot goes to the back of the LIFO free-list.
  void free(Handle h) {
    assert(valid(h) && "freeing a stale or foreign arena handle");
    gens_[h.slot()] = (gens_[h.slot()] + 1) & Handle::kGenMask;
    free_.push_back(h.slot());
    --live_;
  }

  /// True when `h` names a live slot of this arena (modulo generation
  /// wrap-around, see ArenaHandle).
  [[nodiscard]] bool valid(Handle h) const {
    return static_cast<bool>(h) && h.slot() < size_ && gens_[h.slot()] == h.gen();
  }

  /// Unchecked access (hot path). Debug builds assert validity.
  [[nodiscard]] T& operator[](Handle h) {
    assert(valid(h) && "dereferencing a stale arena handle");
    return slot_ref(h.slot());
  }
  [[nodiscard]] const T& operator[](Handle h) const {
    assert(valid(h) && "dereferencing a stale arena handle");
    return chunks_[h.slot() >> kChunkShift]->slots[h.slot() & kChunkMask];
  }

  /// Checked access for tests/diagnostics: null on a stale handle.
  [[nodiscard]] T* get(Handle h) { return valid(h) ? &slot_ref(h.slot()) : nullptr; }

  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t capacity() const { return size_; }

 private:
  struct Chunk {
    T slots[kChunkSlots];
  };

  [[nodiscard]] T& slot_ref(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift]->slots[slot & kChunkMask];
  }

  void grow() {
    assert(size_ + kChunkSlots <= Handle::kMaxSlots && "SlotArena exhausted its 22-bit slot space");
    chunks_.push_back(std::make_unique<Chunk>());
    gens_.resize(size_ + kChunkSlots, 0);
    free_.reserve(size_ + kChunkSlots);
    // Push descending so the LIFO hands out ascending slot numbers —
    // purely cosmetic (nicer traces), determinism holds either way.
    for (std::uint32_t s = size_ + kChunkSlots; s > size_;) free_.push_back(--s);
    size_ += kChunkSlots;
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint16_t> gens_;
  std::vector<std::uint32_t> free_;
  std::uint32_t size_ = 0;
  std::size_t live_ = 0;
};

}  // namespace hermes::sim
