#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "hermes/sim/event_queue.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::sim {

/// Thread-count policy shared by shard-level (ShardedExecutor) and
/// sweep-level (harness::ParallelRunner) parallelism so the two layers
/// compose predictably: `requested` if positive, else the HERMES_THREADS
/// environment variable if set to a positive integer, else
/// std::thread::hardware_concurrency() (at least 1). HERMES_THREADS=0,
/// empty, or non-numeric all mean "unset" and take the hardware fallback.
[[nodiscard]] unsigned resolve_threads(unsigned requested = 0);

/// Conservative parallel discrete-event executor over fixed shards.
///
/// Each shard is an independent EventQueue (its own wheel, clock and
/// arena); shards interact only through boundary packets that take at
/// least `lookahead` of simulated time to cross (the minimum inter-shard
/// link latency). That bound makes null-message-free barrier rounds
/// safe:
///
///   1. barrier(): single-threaded exchange of boundary packets
///      produced last round (each lands at time >= the last horizon);
///   2. t_min = min over shards of next_event_time();
///   3. horizon h = min(t_min + lookahead, t_end);
///   4. every shard runs all its events with time < h, in parallel.
///
/// Any packet emitted during round 4 by an event at time t < h arrives
/// in another shard at t + link_delay >= t_min + lookahead >= h — never
/// inside the window being executed — so each shard's event order is
/// independent of every other shard's progress, and therefore of the
/// thread count. HERMES_THREADS=1 and =N produce byte-identical
/// simulations (pinned by the sharded golden-hash test).
///
/// Threading: a persistent worker pool (created once, condvar-paced
/// barrier generations) claims shards from an atomic-free round-robin
/// cursor under the round mutex; with `threads <= 1` rounds run inline
/// on the caller's thread through the exact same code path.
class ShardedExecutor {
 public:
  struct Stats {
    std::uint64_t rounds = 0;
    /// Sum over rounds of (h - t_min): how much conservative slack each
    /// round granted beyond its earliest event. Mean width = total/rounds.
    std::uint64_t horizon_ns_total = 0;
  };

  /// `threads == 0` resolves via resolve_threads(); the effective count
  /// is additionally capped at the shard count. `lookahead` must be
  /// positive when more than one shard exists.
  ShardedExecutor(std::vector<EventQueue*> shards, SimTime lookahead, unsigned threads = 0);
  ~ShardedExecutor();
  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  /// Run barrier rounds until every shard's next event is at or beyond
  /// `t_end`, or `barrier` returns false. `barrier` runs single-threaded
  /// between rounds (including once before the first round); it is where
  /// the caller moves boundary packets between shards and checks
  /// termination (e.g. "all flows complete").
  void run_until(SimTime t_end, const std::function<bool()>& barrier);

  [[nodiscard]] unsigned threads() const { return threads_; }
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void worker_loop();
  void run_round(SimTime h);

  std::vector<EventQueue*> shards_;
  SimTime lookahead_;
  unsigned threads_;
  Stats stats_;

  // Round coordination (idle-cold: touched once per barrier round, never
  // per event). Workers wait for a new generation, claim shard indices
  // from next_shard_, and report completion; the coordinating thread
  // waits until all workers finished the round.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> pool_;
  std::uint64_t generation_ = 0;
  SimTime horizon_{};
  std::size_t next_shard_ = 0;
  std::size_t workers_done_ = 0;
  std::exception_ptr round_error_;
  bool shutdown_ = false;
};

}  // namespace hermes::sim
