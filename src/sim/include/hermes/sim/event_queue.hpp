#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hermes/sim/inline_function.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::sim {

/// Discrete-event scheduler. Events fire in nondecreasing time order;
/// equal-time events fire in the order they were scheduled (stable FIFO),
/// which keeps packet pipelines deterministic.
///
/// Two scheduling paths exist for performance:
///  * post_at/post_in  — fire-and-forget, stored by value, used by the
///    packet hot path (no cancellation state is allocated);
///  * schedule_at/schedule_in — return a cancellable Handle, used by
///    timers (retransmission timeouts, CBR pacing).
///
/// Implementation: a two-level bucketed time wheel (calendar queue)
/// keyed on SimTime, with a sorted overflow list for the far future.
/// Steady state is allocation-free: callbacks live inline in the event
/// record (InlineFunction, no heap), buckets recycle their capacity
/// lap over lap, and cancellable-timer slots come from a pooled
/// free-list with generation counters instead of shared_ptr state.
///
///   level 0:  1024 buckets x 256ns   -> horizon ~262us
///   level 1:  1024 buckets x ~262us  -> horizon ~268ms
///   overflow: sorted vector (time, seq) beyond ~268ms
///
/// The 256ns level-0 bucket is deliberately finer than the smallest
/// common event spacing (64B ACK serialization at 10G is 51ns, data
/// packets 1.2us): a scheduled event almost always lands in a *future*
/// bucket (an O(1) push) instead of the already-drained current one
/// (a sorted insert into the due run, which shifts records). With
/// 4.096us buckets a loaded 10G fabric put ~70% of schedules into the
/// current bucket and per-event cost tripled.
///
/// The total order is always (time, seq): bucket contents are sorted on
/// drain, so the wheel is observably identical to a binary heap with a
/// stable tiebreak — for a fixed seed, simulation output is byte-equal.
class EventQueue {
 public:
  /// Inline storage for event callbacks — a global budget: the Event
  /// record (and with it every byte the wheel stores, moves and sorts)
  /// is sized by it, so captures are kept to a few pointers/ints; bulky
  /// state (e.g. reorder-held packets) lives in the owning object with
  /// the event capturing only `this`. Oversized captures fail to
  /// compile (see InlineFunction). Shrinking 128 -> 64 cut the Event
  /// record from 176 to 112 bytes (two cache lines).
  static constexpr std::size_t kInlineCallbackBytes = 64;
  using Callback = InlineFunction<kInlineCallbackBytes>;

  EventQueue() ;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Handle to a cancellable event: a (slot, generation) pair into the
  /// queue's pooled timer-slot table. Default-constructed handles are
  /// inert; cancelling an already-fired event is a no-op. A Handle must
  /// not outlive its EventQueue (it holds a non-owning pointer).
  class Handle {
   public:
    Handle() = default;
    void cancel() {
      if (q_ != nullptr) {
        q_->cancel_slot(slot_, gen_);
        q_ = nullptr;
      }
    }
    [[nodiscard]] bool pending() const { return q_ != nullptr && q_->slot_pending(slot_, gen_); }

   private:
    friend class EventQueue;
    Handle(EventQueue* q, std::uint32_t slot, std::uint32_t gen)
        : q_{q}, slot_{slot}, gen_{gen} {}
    EventQueue* q_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
  };

  /// Fire-and-forget scheduling (fast path, no cancellation).
  void post_at(SimTime t, Callback cb);
  void post_in(SimTime delay, Callback cb) { post_at(now_ + delay, std::move(cb)); }

  /// Cancellable scheduling (timers).
  Handle schedule_at(SimTime t, Callback cb);
  Handle schedule_in(SimTime delay, Callback cb) { return schedule_at(now_ + delay, std::move(cb)); }

  [[nodiscard]] SimTime now() const { return now_; }
  /// True when no runnable (non-cancelled) events remain. Const: a
  /// cancelled event is discounted the moment its Handle is cancelled,
  /// so observing emptiness never mutates the queue (asserts are safe).
  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  /// Event records physically stored (including cancelled ones awaiting
  /// lazy reclamation) — a diagnostics/test observer.
  [[nodiscard]] std::size_t stored_events() const;

  /// Eagerly drop cancelled event records from every bucket. Never
  /// needed for correctness (cancelled records are skipped and reclaimed
  /// as the wheel reaches them); call it to release their memory early.
  void purge_cancelled();

  /// Run the next pending event. Returns false if none remain.
  bool run_one();
  /// Run all events with time <= t, then advance the clock to t.
  void run_until(SimTime t);
  /// Run all events with time strictly < h, then advance the clock to h.
  /// The sharded executor's round primitive: events at exactly h stay
  /// pending, because boundary packets arriving at the horizon h may
  /// legally sort before them in a later round.
  void run_until_before(SimTime h);
  /// Earliest stored event time, or SimTime::max() when nothing is
  /// stored. May report a cancelled record's time — never *later* than
  /// the true next event, so horizons derived from it stay conservative
  /// (and deterministic: cancellation state is part of simulation state).
  [[nodiscard]] SimTime next_event_time();
  /// Run until the queue drains or stop() is called.
  void run();
  /// Stop a run()/run_until() loop after the current event returns.
  void stop() { stopped_ = true; }

 private:
  // Wheel geometry. Level-0 buckets span 2^kL0Shift ns; each level has
  // 2^kLevelBits buckets; level 1's bucket span equals level 0's range.
  static constexpr int kL0Shift = 8;
  static constexpr int kLevelBits = 10;
  static constexpr int kL1Shift = kL0Shift + kLevelBits;
  static constexpr std::int64_t kNumBuckets = std::int64_t{1} << kLevelBits;
  static constexpr std::int64_t kBucketMask = kNumBuckets - 1;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  /// First-touch bucket capacity. With cancelled timers removed eagerly,
  /// live bucket occupancy is small; reserving on first use keeps a long
  /// run from paying a fresh geometric-growth chain for every 262us-span
  /// level-1 bucket its sim-time range touches.
  static constexpr std::size_t kBucketReserve = 8;

  struct Event {
    SimTime time;
    std::uint64_t seq = 0;          ///< global FIFO tiebreak for equal times
    std::uint32_t slot = kNoSlot;   ///< timer-slot index, kNoSlot for posts
    std::uint32_t gen = 0;          ///< slot generation at scheduling time
    Callback cb;
  };
  /// One pooled record per in-flight cancellable timer. The generation
  /// counter invalidates stale Handles and stale queue entries when the
  /// slot is recycled through the free-list. The location fields track
  /// which wheel structure currently stores the slot's live event, so
  /// cancel() can physically remove the record: per-packet RTO re-arms
  /// would otherwise pile thousands of stale 112-byte records into far
  /// level-1 buckets, to be allocated, cascaded and sorted for nothing.
  struct TimerSlot {
    enum Where : std::uint8_t { kNowhere = 0, kInL0, kInL1, kInDue, kInOverflow };
    std::uint32_t gen = 0;
    std::uint32_t bucket = 0;  ///< bucket index when where is kInL0/kInL1
    std::uint32_t pos = 0;     ///< element index within that bucket (O(1) cancel)
    std::uint8_t where = kNowhere;
  };
  /// The total event order: nondecreasing time, FIFO (sequence) within a
  /// time. seq values are unique, so this is a strict total order and
  /// plain std::sort is deterministic.
  struct Earlier {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };

  void place(Event&& ev);
  void advance();
  void drain_to_due(std::vector<Event>& bucket);
  /// Ensure due_ holds the globally next events; false if storage empty.
  bool peek_due();
  [[nodiscard]] bool consume_slot(const Event& ev);
  void cancel_slot(std::uint32_t slot, std::uint32_t gen);
  [[nodiscard]] bool slot_pending(std::uint32_t slot, std::uint32_t gen) const {
    return slot < slots_.size() && slots_[slot].gen == gen;
  }

  // Events already pulled in front of the wheel, sorted by (time, seq);
  // due_head_ indexes the next one to fire.
  std::vector<Event> due_;
  std::size_t due_head_ = 0;
  std::vector<std::vector<Event>> l0_;
  std::vector<std::vector<Event>> l1_;
  std::size_t l0_count_ = 0;  ///< events stored across level-0 buckets
  std::size_t l1_count_ = 0;  ///< events stored across level-1 buckets
  // Far-future events, sorted ascending by (time, seq); overflow_head_
  // indexes the next candidate to migrate into the wheel.
  std::vector<Event> overflow_;
  std::size_t overflow_head_ = 0;
  /// Absolute level-0 bucket index the wheel has drained through: every
  /// event with (time >> kL0Shift) <= cur_ lives in due_ (or fired).
  std::int64_t cur_ = -1;

  std::vector<TimerSlot> slots_;
  std::vector<std::uint32_t> free_slots_;

  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;  ///< scheduled minus fired minus cancelled
  bool stopped_ = false;
};

}  // namespace hermes::sim
