#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "hermes/sim/time.hpp"

namespace hermes::sim {

/// Discrete-event scheduler. Events fire in nondecreasing time order;
/// equal-time events fire in the order they were scheduled (stable FIFO),
/// which keeps packet pipelines deterministic.
///
/// Two scheduling paths exist for performance:
///  * post_at/post_in  — fire-and-forget, stored by value, used by the
///    packet hot path (no cancellation state is allocated);
///  * schedule_at/schedule_in — return a cancellable Handle, used by
///    timers (retransmission timeouts, CBR pacing).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Handle to a cancellable event. Default-constructed handles are
  /// inert. Cancelling an already-fired event is a no-op.
  class Handle {
   public:
    Handle() = default;
    void cancel() {
      if (auto s = state_.lock()) s->cancelled = true;
      state_.reset();
    }
    [[nodiscard]] bool pending() const {
      auto s = state_.lock();
      return s && !s->cancelled && !s->fired;
    }

   private:
    friend class EventQueue;
    struct State {
      bool cancelled = false;
      bool fired = false;
    };
    explicit Handle(std::weak_ptr<State> s) : state_{std::move(s)} {}
    std::weak_ptr<State> state_;
  };

  /// Fire-and-forget scheduling (fast path, no cancellation).
  void post_at(SimTime t, Callback cb);
  void post_in(SimTime delay, Callback cb) { post_at(now_ + delay, std::move(cb)); }

  /// Cancellable scheduling (timers).
  Handle schedule_at(SimTime t, Callback cb);
  Handle schedule_in(SimTime delay, Callback cb) { return schedule_at(now_ + delay, std::move(cb)); }

  [[nodiscard]] SimTime now() const { return now_; }
  /// True when no runnable (non-cancelled) events remain.
  [[nodiscard]] bool empty();
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Run the next pending event. Returns false if none remain.
  bool run_one();
  /// Run all events with time <= t, then advance the clock to t.
  void run_until(SimTime t);
  /// Run until the queue drains or stop() is called.
  void run();
  /// Stop a run()/run_until() loop after the current event returns.
  void stop() { stopped_ = true; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq = 0;
    Callback cb;
    std::shared_ptr<Handle::State> state;  // null for posted events
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pop cancelled events off the top of the heap.
  void purge_cancelled();

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

}  // namespace hermes::sim
