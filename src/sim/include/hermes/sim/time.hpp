#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace hermes::sim {

/// Simulation time: a strongly typed count of nanoseconds since the start of
/// the simulation. Arithmetic is closed over SimTime (durations and instants
/// share the representation, as is conventional in network simulators).
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t v) { return SimTime{v}; }
  [[nodiscard]] static constexpr SimTime microseconds(std::int64_t v) { return SimTime{v * 1'000}; }
  [[nodiscard]] static constexpr SimTime milliseconds(std::int64_t v) { return SimTime{v * 1'000'000}; }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t v) { return SimTime{v * 1'000'000'000}; }
  /// From a real-valued second count (e.g. a transmission delay size/rate).
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + 0.5)};
  }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_usec() const { return static_cast<double>(ns_) * 1e-3; }
  [[nodiscard]] constexpr double to_msec() const { return static_cast<double>(ns_) * 1e-6; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ns_ + b.ns_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ns_ - b.ns_}; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.ns_ * k}; }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return SimTime{a.ns_ * k}; }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) { return SimTime{a.ns_ / k}; }
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr SimTime& operator+=(SimTime o) { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns_ -= o.ns_; return *this; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  /// Human-readable rendering, e.g. "153.2us" or "10ms".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// Short constructor helpers, used pervasively in configs and tests.
[[nodiscard]] constexpr SimTime nsec(std::int64_t v) { return SimTime::nanoseconds(v); }
[[nodiscard]] constexpr SimTime usec(std::int64_t v) { return SimTime::microseconds(v); }
[[nodiscard]] constexpr SimTime msec(std::int64_t v) { return SimTime::milliseconds(v); }
[[nodiscard]] constexpr SimTime sec(std::int64_t v) { return SimTime::seconds(v); }

}  // namespace hermes::sim
