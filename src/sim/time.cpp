#include "hermes/sim/time.hpp"

#include <cmath>
#include <cstdio>
#include <string>

namespace hermes::sim {

std::string SimTime::to_string() const {
  char buf[48];
  const auto v = static_cast<double>(ns_);
  if (std::abs(ns_) < 1'000) {
    std::snprintf(buf, sizeof buf, "%ldns", static_cast<long>(ns_));
  } else if (std::abs(ns_) < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3gus", v * 1e-3);
  } else if (std::abs(ns_) < 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.4gms", v * 1e-6);
  } else {
    std::snprintf(buf, sizeof buf, "%.4gs", v * 1e-9);
  }
  return buf;
}

}  // namespace hermes::sim
