#include "hermes/sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hermes::sim {

EventQueue::EventQueue()
    : l0_(static_cast<std::size_t>(kNumBuckets)), l1_(static_cast<std::size_t>(kNumBuckets)) {}

// HERMES_HOT: one call per scheduled event; the bucket push must stay O(1)
// and allocation-free in steady state.
void EventQueue::place(Event&& ev) {
  // Record where a live timer event lands so cancel_slot can remove it.
  // Guarded on generation: a stale record being cascaded must not clobber
  // the location of the slot's current (re-armed) incarnation.
  const auto note = [this](const Event& e, std::uint8_t where, std::uint32_t bucket,
                           std::size_t pos) {
    if (e.slot != kNoSlot && slots_[e.slot].gen == e.gen) {
      slots_[e.slot].where = where;
      slots_[e.slot].bucket = bucket;
      slots_[e.slot].pos = static_cast<std::uint32_t>(pos);
    }
  };
  const std::int64_t i0 = ev.time.ns() >> kL0Shift;
  if (i0 <= cur_) {
    // The wheel already drained past this bucket (the event is due now or
    // nearly now): merge into the sorted due run.
    const auto it = std::upper_bound(due_.begin() + static_cast<std::ptrdiff_t>(due_head_),
                                     due_.end(), ev, Earlier{});
    note(ev, TimerSlot::kInDue, 0, 0);
    // hermeslint:reserve-audited(due_ keeps its high-water capacity across laps; the sorted insert shifts records but reallocates only until the run's working-set peak)
    due_.insert(it, std::move(ev));
    return;
  }
  if (i0 - cur_ <= kNumBuckets) {
    auto& bucket = l0_[static_cast<std::size_t>(i0 & kBucketMask)];
    if (bucket.capacity() == 0) bucket.reserve(kBucketReserve);
    note(ev, TimerSlot::kInL0, static_cast<std::uint32_t>(i0 & kBucketMask), bucket.size());
    // hermeslint:reserve-audited(first touch reserves kBucketReserve; beyond that buckets keep their high-water capacity lap over lap)
    bucket.push_back(std::move(ev));
    ++l0_count_;
    return;
  }
  const std::int64_t i1 = ev.time.ns() >> kL1Shift;
  const std::int64_t cur1 = cur_ >> kLevelBits;
  if (i1 - cur1 < kNumBuckets) {
    auto& bucket = l1_[static_cast<std::size_t>(i1 & kBucketMask)];
    if (bucket.capacity() == 0) bucket.reserve(kBucketReserve);
    note(ev, TimerSlot::kInL1, static_cast<std::uint32_t>(i1 & kBucketMask), bucket.size());
    // hermeslint:reserve-audited(same recycling argument as level 0; level-1 buckets keep their high-water capacity)
    bucket.push_back(std::move(ev));
    ++l1_count_;
    return;
  }
  // Beyond the level-1 horizon (~268ms ahead): sorted overflow list.
  // Workload generators emit flow arrivals in time order, so the common
  // insert is an O(1) append at the back.
  const auto it = std::upper_bound(overflow_.begin() + static_cast<std::ptrdiff_t>(overflow_head_),
                                   overflow_.end(), ev, Earlier{});
  note(ev, TimerSlot::kInOverflow, 0, 0);
  // hermeslint:reserve-audited(overflow is the >268ms cold tail — flow-arrival preloading, not the per-packet path; appends are O(1) at the back)
  overflow_.insert(it, std::move(ev));
}

// HERMES_HOT: the fire-and-forget fast path (one call per packet hop).
void EventQueue::post_at(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  ++live_;
  place(Event{t < now_ ? now_ : t, next_seq_++, kNoSlot, 0, std::move(cb)});
}

// HERMES_HOT: timer arm path (RTOs, pacing) — pooled slots, no shared_ptr.
EventQueue::Handle EventQueue::schedule_at(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    // hermeslint:reserve-audited(slot pool grows to the high-water mark of concurrent timers once, then the free-list recycles)
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  const std::uint32_t gen = slots_[slot].gen;
  ++live_;
  place(Event{t < now_ ? now_ : t, next_seq_++, slot, gen, std::move(cb)});
  return Handle{this, slot, gen};
}

// HERMES_HOT: every ACK that re-arms an RTO cancels the previous timer.
void EventQueue::cancel_slot(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slots_.size() || slots_[slot].gen != gen) return;  // already fired/cancelled
  // Physically remove wheel-bucket records (swap-remove: bucket order is
  // irrelevant, every bucket is (time, seq)-sorted when it drains). The
  // due run and overflow list are sorted, so their records are bumped
  // lazily instead and reclaimed when the cursor reaches them.
  const TimerSlot& loc = slots_[slot];
  if (loc.where == TimerSlot::kInL0 || loc.where == TimerSlot::kInL1) {
    auto& bucket = loc.where == TimerSlot::kInL0 ? l0_[loc.bucket] : l1_[loc.bucket];
    assert(loc.pos < bucket.size() && bucket[loc.pos].slot == slot &&
           bucket[loc.pos].gen == gen && "timer-slot location out of sync");
    Event& victim = bucket[loc.pos];
    if (&victim != &bucket.back()) {
      victim = std::move(bucket.back());
      // The swapped-in record changed position; keep its slot's hint live.
      if (victim.slot != kNoSlot && slots_[victim.slot].gen == victim.gen) {
        slots_[victim.slot].pos = loc.pos;
      }
    }
    bucket.pop_back();
    (loc.where == TimerSlot::kInL0 ? l0_count_ : l1_count_) -= 1;
  }
  slots_[slot].where = TimerSlot::kNowhere;
  ++slots_[slot].gen;  // invalidates the stored event record and all handle copies
  // hermeslint:reserve-audited(free-list capacity is bounded by slots_.size(), which the pool already paid for)
  free_slots_.push_back(slot);
  assert(live_ > 0);
  --live_;
}

// HERMES_HOT: runs once per fired timer event.
bool EventQueue::consume_slot(const Event& ev) {
  if (slots_[ev.slot].gen != ev.gen) return false;  // cancelled: stale record
  ++slots_[ev.slot].gen;  // fired: handles turn inert, slot returns to the pool
  // hermeslint:reserve-audited(free-list capacity is bounded by slots_.size(), which the pool already paid for)
  free_slots_.push_back(ev.slot);
  return true;
}

// HERMES_HOT: bucket hand-off into the due run; capacity recycles per lap.
void EventQueue::drain_to_due(std::vector<Event>& bucket) {
  l0_count_ -= bucket.size();
  if (due_head_ == due_.size()) {
    due_.clear();
    due_head_ = 0;
  }
  const auto base = static_cast<std::ptrdiff_t>(due_.size());
  for (auto& ev : bucket) {
    if (ev.slot != kNoSlot && slots_[ev.slot].gen == ev.gen) {
      slots_[ev.slot].where = TimerSlot::kInDue;
    }
    // hermeslint:reserve-audited(due_ retains high-water capacity; the clear and head reset above reuse it without shrinking)
    due_.push_back(std::move(ev));
  }
  bucket.clear();  // keeps capacity: the bucket is reused next lap
  // A bucket spans 256ns of simulated time, so it can hold events at
  // different instants; restore the (time, seq) total order. When the
  // due run already had entries (same-instant inserts made during the
  // cascade), sort the whole run rather than merging. Events are pushed
  // in seq order and near-future schedules are issued in rising time
  // order, so the run is usually already sorted — check before paying
  // for a sort that would move 112-byte records around.
  auto first = due_.begin() + (due_head_ < static_cast<std::size_t>(base)
                                   ? static_cast<std::ptrdiff_t>(due_head_)
                                   : base);
  if (!std::is_sorted(first, due_.end(), Earlier{})) std::sort(first, due_.end(), Earlier{});
}

// HERMES_HOT: wheel cursor walk between non-empty buckets.
void EventQueue::advance() {
  for (;;) {
    // First bucket index of the next level-1 span.
    const std::int64_t span_end = ((cur_ >> kLevelBits) + 1) << kLevelBits;
    if (l0_count_ > 0) {
      for (std::int64_t i = cur_ + 1; i < span_end; ++i) {
        auto& bucket = l0_[static_cast<std::size_t>(i & kBucketMask)];
        if (!bucket.empty()) {
          cur_ = i;
          drain_to_due(bucket);
          return;
        }
      }
    }
    if (l0_count_ == 0 && l1_count_ == 0) {
      if (overflow_head_ == overflow_.size()) {
        cur_ = span_end - 1;
        return;  // nothing stored anywhere; caller observes due_ unchanged
      }
      // Only far-future overflow remains: fast-forward the cursor so the
      // next span entry brings the overflow head inside the level-1
      // window, instead of walking every empty span up to it.
      const std::int64_t oi1 = overflow_[overflow_head_].time.ns() >> kL1Shift;
      const std::int64_t jump_cur1 = oi1 - (kNumBuckets - 1);
      if (jump_cur1 > (cur_ >> kLevelBits) + 1) cur_ = (jump_cur1 << kLevelBits) - 1;
    }
    // Enter the next level-1 bucket: pull newly-in-horizon overflow
    // events, then cascade the bucket's events down into level 0 / due.
    cur_ = ((cur_ >> kLevelBits) + 1) << kLevelBits;
    const std::int64_t cur1 = cur_ >> kLevelBits;
    while (overflow_head_ < overflow_.size() &&
           (overflow_[overflow_head_].time.ns() >> kL1Shift) - cur1 < kNumBuckets) {
      place(std::move(overflow_[overflow_head_++]));
    }
    if (overflow_head_ == overflow_.size() && !overflow_.empty()) {
      overflow_.clear();
      overflow_head_ = 0;
    }
    auto& b1 = l1_[static_cast<std::size_t>(cur1 & kBucketMask)];
    if (!b1.empty()) {
      l1_count_ -= b1.size();
      for (auto& ev : b1) place(std::move(ev));  // all land in level 0 or due_
      b1.clear();
    }
    auto& b0 = l0_[static_cast<std::size_t>(cur_ & kBucketMask)];
    if (!b0.empty()) drain_to_due(b0);
    if (due_head_ < due_.size()) return;
  }
}

// HERMES_HOT: called before every event pop.
bool EventQueue::peek_due() {
  while (due_head_ == due_.size()) {
    due_.clear();
    due_head_ = 0;
    if (l0_count_ == 0 && l1_count_ == 0 && overflow_head_ == overflow_.size()) return false;
    advance();
  }
  return true;
}

std::size_t EventQueue::stored_events() const {
  return (due_.size() - due_head_) + l0_count_ + l1_count_ + (overflow_.size() - overflow_head_);
}

void EventQueue::purge_cancelled() {
  const auto stale = [this](const Event& ev) {
    return ev.slot != kNoSlot && slots_[ev.slot].gen != ev.gen;
  };
  due_.erase(std::remove_if(due_.begin() + static_cast<std::ptrdiff_t>(due_head_), due_.end(),
                            stale),
             due_.end());
  // Compacting a bucket shifts the surviving records, so every live
  // timer's position hint must be refreshed afterwards.
  const auto refresh = [this](std::vector<Event>& bucket) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const Event& ev = bucket[i];
      if (ev.slot != kNoSlot && slots_[ev.slot].gen == ev.gen) {
        slots_[ev.slot].pos = static_cast<std::uint32_t>(i);
      }
    }
  };
  for (auto& bucket : l0_) {
    const auto n = bucket.size();
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(), stale), bucket.end());
    if (bucket.size() != n) refresh(bucket);
    l0_count_ -= n - bucket.size();
  }
  for (auto& bucket : l1_) {
    const auto n = bucket.size();
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(), stale), bucket.end());
    if (bucket.size() != n) refresh(bucket);
    l1_count_ -= n - bucket.size();
  }
  overflow_.erase(
      std::remove_if(overflow_.begin() + static_cast<std::ptrdiff_t>(overflow_head_),
                     overflow_.end(), stale),
      overflow_.end());
}

// HERMES_HOT: the event dispatch loop body.
bool EventQueue::run_one() {
  for (;;) {
    if (!peek_due()) return false;
    Event ev = std::move(due_[due_head_++]);
    if (ev.slot != kNoSlot && !consume_slot(ev)) continue;  // cancelled, reclaim silently
    assert(live_ > 0);
    --live_;
    now_ = ev.time;
    ++processed_;
    ev.cb();
    return true;
  }
}

// HERMES_HOT: bounded-run dispatch loop (the bench inner loop).
void EventQueue::run_until(SimTime t) {
  stopped_ = false;
  while (!stopped_) {
    if (!peek_due()) break;
    // due_ front is the global minimum, so one comparison bounds the run.
    if (due_[due_head_].time > t) break;
    Event ev = std::move(due_[due_head_++]);
    if (ev.slot != kNoSlot && !consume_slot(ev)) continue;
    assert(live_ > 0);
    --live_;
    now_ = ev.time;
    ++processed_;
    ev.cb();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

void EventQueue::run_until_before(SimTime h) {
  stopped_ = false;
  while (!stopped_) {
    if (!peek_due()) break;
    if (due_[due_head_].time >= h) break;
    Event ev = std::move(due_[due_head_++]);
    if (ev.slot != kNoSlot && !consume_slot(ev)) continue;
    assert(live_ > 0);
    --live_;
    now_ = ev.time;
    ++processed_;
    ev.cb();
  }
  if (!stopped_ && now_ < h) now_ = h;
}

SimTime EventQueue::next_event_time() {
  if (!peek_due()) return SimTime::max();
  return due_[due_head_].time;
}

void EventQueue::run() {
  stopped_ = false;
  while (!stopped_ && run_one()) {
  }
}

}  // namespace hermes::sim
