#include "hermes/sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace hermes::sim {

void EventQueue::post_at(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  heap_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(cb), nullptr});
}

EventQueue::Handle EventQueue::schedule_at(SimTime t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  auto state = std::make_shared<Handle::State>();
  Handle h{state};
  heap_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(cb), std::move(state)});
  return h;
}

void EventQueue::purge_cancelled() {
  while (!heap_.empty() && heap_.top().state && heap_.top().state->cancelled) heap_.pop();
}

bool EventQueue::empty() {
  purge_cancelled();
  return heap_.empty();
}

bool EventQueue::run_one() {
  purge_cancelled();
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the event must be moved out before the
  // callback runs because the callback may push new events.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.time;
  if (ev.state) ev.state->fired = true;
  ++processed_;
  ev.cb();
  return true;
}

void EventQueue::run_until(SimTime t) {
  stopped_ = false;
  for (;;) {
    purge_cancelled();
    if (heap_.empty() || heap_.top().time > t || stopped_) break;
    run_one();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

void EventQueue::run() {
  stopped_ = false;
  while (!stopped_ && run_one()) {
  }
}

}  // namespace hermes::sim
