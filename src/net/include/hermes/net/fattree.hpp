#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hermes/net/fabric.hpp"
#include "hermes/net/host.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/net/packet_arena.hpp"
#include "hermes/net/switch.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {

/// Parameters of a k-ary three-tier fat-tree (Al-Fares Clos): k pods,
/// each with k/2 edge and k/2 aggregation switches, k/2 hosts per edge,
/// and (k/2)^2 core switches. k=16 gives the ROADMAP's 1024-host fabric.
struct FatTreeConfig {
  int k = 8;  ///< even, >= 4

  double host_rate_bps = 10e9;
  double fabric_rate_bps = 10e9;
  sim::SimTime link_delay = sim::usec(2);  ///< per-hop propagation, one way

  /// Same defaulting rules as TopologyConfig: 0 selects the rate-scaled
  /// CONGA/DCTCP guideline values.
  std::uint32_t ecn_threshold_bytes = 0;
  std::uint32_t queue_capacity_bytes = 0;
  bool ecn_enabled = true;

  [[nodiscard]] std::uint32_t ecn_bytes_for(double rate_bps) const;
  [[nodiscard]] std::uint32_t queue_bytes_for(double rate_bps) const;
  [[nodiscard]] PortConfig port_config(double rate_bps, sim::SimTime prop_delay) const;
};

/// Three-tier fat-tree fabric, optionally partitioned into shards for
/// the conservative-lookahead parallel executor (sim::ShardedExecutor).
///
/// Sharding plan (fixed and deterministic): pod p -> shard p % S, core
/// c -> shard c % S, where S is the number of Simulators handed to the
/// constructor. A pod is atomic — its hosts, edge and agg switches, and
/// every host-edge / edge-agg link live in one shard — so the only
/// cross-shard links are agg<->core. Each shard owns a private
/// PacketArena; a packet crossing shards is moved by value through a
/// per-shard-pair mailbox and re-pooled in the destination arena.
///
/// Cross-shard link timing: the egress port is built with zero
/// propagation delay and peered to an internal portal device, which
/// stamps deliver_at = now + link_delay into the mailbox — the arrival
/// time is identical to a directly-peered link. Because every event that
/// emits mail runs strictly before the round horizon h = t_min +
/// link_delay, all mail lands at deliver_at >= h: never inside the
/// window any shard is concurrently executing (the conservative-PDES
/// safety argument; DESIGN.md §12).
///
/// With S == 1 every link is peered directly and the fabric behaves as
/// an ordinary serial topology.
///
/// Fabric-interface mapping: "leaf" = edge switch (global id, pod-major),
/// "spine" = core switch for leaf(i)/spine(i), but in the *link* fault
/// surface (leaf_uplink, set_link_state, ...) the `spine` argument is the
/// aggregation-switch local index within the leaf's pod — the k/2 uplinks
/// an edge switch actually has. agg<->core links have no single-shard
/// owner and are not individually faultable (use core switch faults).
class FatTree final : public Fabric {
 public:
  FatTree(std::vector<sim::Simulator*> shard_sims, FatTreeConfig config);
  ~FatTree() override;

  [[nodiscard]] const FatTreeConfig& config() const { return config_; }

  // --- shape -----------------------------------------------------------
  [[nodiscard]] int k() const { return config_.k; }
  [[nodiscard]] int num_pods() const { return config_.k; }
  [[nodiscard]] int num_cores() const { return half_ * half_; }
  [[nodiscard]] int pod_of_leaf(int leaf_id) const { return leaf_id / half_; }

  // --- sharding --------------------------------------------------------
  [[nodiscard]] int num_shards() const { return static_cast<int>(sims_.size()); }
  [[nodiscard]] int shard_of_pod(int pod) const { return pod % num_shards(); }
  [[nodiscard]] int shard_of_leaf(int leaf_id) const { return shard_of_pod(pod_of_leaf(leaf_id)); }
  [[nodiscard]] int shard_of_host(int host_id) const { return shard_of_leaf(leaf_of(host_id)); }
  [[nodiscard]] int shard_of_core(int core) const { return core % num_shards(); }
  [[nodiscard]] std::vector<int> leaves_of_shard(int shard) const;
  [[nodiscard]] sim::Simulator& shard_sim(int shard) { return *sims_[shard]; }
  [[nodiscard]] PacketArena& shard_arena(int shard) { return *arenas_[shard]; }
  /// The conservative lookahead: minimum simulated time any packet needs
  /// to cross a shard boundary (= link_delay; agg->core is one hop).
  [[nodiscard]] sim::SimTime lookahead() const { return config_.link_delay; }

  /// Barrier step for the sharded executor: move every outbox's packets
  /// into the destination shards' pending inboxes (merged in
  /// (deliver_at, src_shard, seq) order) and (re-)arm each inbox's
  /// delivery timer. Single-threaded by contract — call only from the
  /// executor's barrier callback. Returns packets moved this call.
  std::uint64_t exchange_boundary();
  /// Total boundary packets moved across all barriers so far.
  [[nodiscard]] std::uint64_t boundary_packets() const { return boundary_packets_; }

  // --- Fabric interface ------------------------------------------------
  [[nodiscard]] Host& host(int i) override { return *hosts_[i]; }
  /// leaf(i) = edge switch i (pod-major global id).
  [[nodiscard]] Switch& leaf(int i) override { return *edges_[i]; }
  /// spine(i) = core switch i (the fault surface's top tier).
  [[nodiscard]] Switch& spine(int i) override { return *cores_[i]; }
  /// The aggregation switch at (pod, local index a).
  [[nodiscard]] Switch& agg(int pod, int a) { return *aggs_[pod * half_ + a]; }

  [[nodiscard]] const std::vector<FabricPath>& paths_between_leaves(int src_leaf,
                                                                    int dst_leaf) const override;
  [[nodiscard]] const FabricPath& path(int path_id) const override { return all_paths_[path_id]; }
  [[nodiscard]] int num_paths() const override { return static_cast<int>(all_paths_.size()); }
  [[nodiscard]] Route forward_route(int src_host, int dst_host, int path_id) const override;
  [[nodiscard]] Route reverse_route(int src_host, int dst_host, int path_id) const override;

  /// `spine` here is the agg local index in [0, k/2): the edge switch's
  /// uplink ports. `k` (parallel link index) must be 0.
  [[nodiscard]] Port& leaf_uplink(int leaf_id, int spine, int k = 0) override;
  void set_link_state(int leaf_id, int spine, bool up, int k = 0) override;
  void set_link_rate(int leaf_id, int spine, double rate_bps, int k = 0) override;
  [[nodiscard]] double configured_link_rate(int leaf_id, int spine, int k = 0) const override;

  void set_recorder(obs::FlightRecorder* rec) override;
  /// Per-shard recorders: each device's ports record into the ring of
  /// their owning shard (recs.size() must equal num_shards()).
  void set_recorders(const std::vector<obs::FlightRecorder*>& recs);
  void register_metrics(obs::MetricsRegistry& reg) override;

  [[nodiscard]] sim::SimTime one_hop_delay() const override;
  [[nodiscard]] sim::SimTime base_rtt() const override;

 private:
  class Portal;

  /// One cross-shard mailbox direction (src shard -> dst shard), struct
  /// of arrays: delivery metadata separate from payloads so the barrier
  /// merge scans hot 16-byte records and only the delivered packets are
  /// ever touched. Entry order is push order; an entry's index is its
  /// sequence number within the (src, dst) pair.
  struct Outbox {
    std::vector<sim::SimTime> deliver_at;
    std::vector<Switch*> dst_sw;
    std::vector<std::uint8_t> dst_port;
    std::vector<Packet> pkts;

    void push(sim::SimTime at, Switch* sw, std::uint8_t port, Packet&& p) {
      deliver_at.push_back(at);
      dst_sw.push_back(sw);
      dst_port.push_back(port);
      pkts.push_back(std::move(p));
    }
    [[nodiscard]] std::size_t size() const { return deliver_at.size(); }
    void clear() {
      deliver_at.clear();
      dst_sw.clear();
      dst_port.clear();
      pkts.clear();
    }
  };

  /// A boundary packet staged for delivery inside its destination shard.
  struct Mail {
    sim::SimTime deliver_at;
    std::uint32_t src_shard;
    std::uint32_t seq;
    Switch* dst_sw;
    std::uint8_t dst_port;
    Packet pkt;
  };

  /// Per-destination-shard pending mail, kept sorted by the total order
  /// (deliver_at, src_shard, seq) — unique keys, so merges are stable
  /// and delivery order is independent of thread count.
  struct Inbox {
    std::vector<Mail> pending;
    std::size_t head = 0;
    sim::EventQueue::Handle timer;
  };

  [[nodiscard]] int uplink_port(int a) const { return half_ + a; }
  [[nodiscard]] Outbox& outbox(int src_shard, int dst_shard) {
    return outboxes_[static_cast<std::size_t>(src_shard) * sims_.size() + dst_shard];
  }
  void arm_inbox(int shard);
  void deliver_inbox(int shard);

  FatTreeConfig config_;
  int half_ = 0;  ///< k/2
  std::vector<sim::Simulator*> sims_;
  /// One packet pool per shard; declared before the devices (their ports
  /// keep references into the arena, members destroy in reverse).
  // HERMES_SHARD_OWNED one arena per shard; index only by shard id
  std::vector<std::unique_ptr<PacketArena>> arenas_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> edges_;  ///< pod-major: pod*k/2 + e
  std::vector<std::unique_ptr<Switch>> aggs_;   ///< pod-major: pod*k/2 + a
  std::vector<std::unique_ptr<Switch>> cores_;
  std::vector<std::unique_ptr<Portal>> portals_;
  // HERMES_SHARD_OWNED S*S mailbox grid, only cross pairs used; indices
  // derive from (src_shard, dst_shard)
  std::vector<Outbox> outboxes_;
  // HERMES_SHARD_OWNED per destination shard
  std::vector<Inbox> inboxes_;
  std::uint64_t boundary_packets_ = 0;

  std::vector<FabricPath> all_paths_;
  // pair_paths_[src_leaf * L + dst_leaf] -> usable paths
  std::vector<std::vector<FabricPath>> pair_paths_;
  std::vector<FabricPath> empty_;
};

}  // namespace hermes::net
