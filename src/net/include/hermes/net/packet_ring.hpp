#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hermes/net/packet_arena.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::net {

/// Index-based FIFO ring over structure-of-arrays storage: parallel
/// power-of-two arrays of packet handles and wire sizes, addressed by
/// monotonically increasing head/tail counters masked into the arrays.
/// This replaces the `std::deque<Packet>` port queues, whose 512-byte
/// chunks alloc/freed once every ~4 packets as the queue oscillated
/// across a chunk boundary — the dominant allocation source of the old
/// pipeline (~2 allocs/packet measured). A ring grows by doubling, then
/// never allocates again: steady state is a masked store per push.
class PacketRing {
 public:
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] std::size_t size() const { return tail_ - head_; }
  [[nodiscard]] std::size_t capacity() const { return handles_.size(); }

  void push(PacketHandle h, std::uint32_t bytes) {
    if (tail_ - head_ == handles_.size()) [[unlikely]] grow();
    const std::size_t i = tail_ & mask_;
    handles_[i] = h;
    bytes_[i] = bytes;
    ++tail_;
  }

  [[nodiscard]] PacketHandle front_handle() const {
    assert(!empty());
    return handles_[head_ & mask_];
  }
  [[nodiscard]] std::uint32_t front_bytes() const {
    assert(!empty());
    return bytes_[head_ & mask_];
  }
  void pop() {
    assert(!empty());
    ++head_;
  }

 private:
  void grow() {
    const std::size_t old_cap = handles_.size();
    const std::size_t new_cap = old_cap == 0 ? kInitialCapacity : old_cap * 2;
    std::vector<PacketHandle> nh(new_cap);
    std::vector<std::uint32_t> nb(new_cap);
    // Re-linearize FIFO order starting at index 0.
    for (std::size_t i = 0; i < tail_ - head_; ++i) {
      nh[i] = handles_[(head_ + i) & mask_];
      nb[i] = bytes_[(head_ + i) & mask_];
    }
    tail_ -= head_;
    head_ = 0;
    handles_.swap(nh);
    bytes_.swap(nb);
    mask_ = new_cap - 1;
  }

  static constexpr std::size_t kInitialCapacity = 32;

  std::vector<PacketHandle> handles_;
  std::vector<std::uint32_t> bytes_;
  std::size_t mask_ = static_cast<std::size_t>(-1);  ///< cap-1; all-ones when empty
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

/// The wire ring: packets that finished serialization and are
/// propagating toward the peer. Same SoA layout as PacketRing plus a
/// parallel array of delivery deadlines, so one drain event can deliver
/// every packet that is due (batched link delivery) while packets still
/// in flight stay queued. Deadlines are nondecreasing in FIFO order
/// (serialization finishes in order; propagation delay is constant).
class WireRing {
 public:
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] std::size_t size() const { return tail_ - head_; }

  void push(PacketHandle h, std::uint32_t bytes, sim::SimTime due) {
    if (tail_ - head_ == handles_.size()) [[unlikely]] grow();
    const std::size_t i = tail_ & mask_;
    handles_[i] = h;
    bytes_[i] = bytes;
    due_[i] = due;
    ++tail_;
  }

  [[nodiscard]] PacketHandle front_handle() const {
    assert(!empty());
    return handles_[head_ & mask_];
  }
  [[nodiscard]] std::uint32_t front_bytes() const {
    assert(!empty());
    return bytes_[head_ & mask_];
  }
  [[nodiscard]] sim::SimTime front_due() const {
    assert(!empty());
    return due_[head_ & mask_];
  }
  void pop() {
    assert(!empty());
    ++head_;
  }

  /// Sum of queued wire sizes (invariant accounting; off the hot path).
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t b = 0;
    for (std::size_t i = head_; i != tail_; ++i) b += bytes_[i & mask_];
    return b;
  }

 private:
  void grow() {
    const std::size_t old_cap = handles_.size();
    const std::size_t new_cap = old_cap == 0 ? kInitialCapacity : old_cap * 2;
    std::vector<PacketHandle> nh(new_cap);
    std::vector<std::uint32_t> nb(new_cap);
    std::vector<sim::SimTime> nd(new_cap);
    for (std::size_t i = 0; i < tail_ - head_; ++i) {
      nh[i] = handles_[(head_ + i) & mask_];
      nb[i] = bytes_[(head_ + i) & mask_];
      nd[i] = due_[(head_ + i) & mask_];
    }
    tail_ -= head_;
    head_ = 0;
    handles_.swap(nh);
    bytes_.swap(nb);
    due_.swap(nd);
    mask_ = new_cap - 1;
  }

  static constexpr std::size_t kInitialCapacity = 16;

  std::vector<PacketHandle> handles_;
  std::vector<std::uint32_t> bytes_;
  std::vector<sim::SimTime> due_;
  std::size_t mask_ = static_cast<std::size_t>(-1);
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace hermes::net
