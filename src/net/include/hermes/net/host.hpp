#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "hermes/net/device.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/net/packet_arena.hpp"
#include "hermes/net/port.hpp"
#include "hermes/sim/inline_function.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {

/// An end host: one NIC port toward its leaf switch, and a pluggable
/// receive handler (the transport stack registers itself here). The host
/// is the fabric's arena boundary: send() pools an endpoint-built Packet
/// into an arena slot, receive() moves the payload back out and frees
/// the slot before handing it to the transport stack.
class Host : public Device {
 public:
  /// Delivery hook type. Fixed inline storage (no heap): the transport
  /// stack captures `this`, the invariant checker `this` + an index.
  static constexpr std::size_t kReceiveHookCapacity = 48;
  using ReceiveFn = sim::InlineCallable<kReceiveHookCapacity, void(Packet, int)>;

  Host(sim::Simulator& simulator, PacketArena& arena, int id)
      : simulator_{simulator}, arena_{arena}, id_{id} {}

  /// Wire the NIC to the leaf switch (called by the topology builder).
  void attach_uplink(PortConfig config, Device* leaf, int leaf_in_port) {
    uplink_ = std::make_unique<Port>(simulator_, arena_, "host" + std::to_string(id_) + ":nic",
                                     config, leaf, leaf_in_port);
  }

  // HERMES_HOT: arena entry point — every packet the fabric carries is
  // pooled here (one slot for its whole flight; switches pass handles).
  /// Transmit a fully formed packet (route already stamped).
  void send(Packet p) {
    assert(uplink_ && "host has no uplink");
    uplink_->send(arena_.alloc(std::move(p)));
  }

  // HERMES_HOT: arena exit point — the slot is freed before the stack
  // runs, so a steady flow recycles the same few slots.
  void receive(PacketHandle h, int in_port) override {
    Packet p = std::move(arena_[h]);
    arena_.free(h);
    if (on_receive) on_receive(std::move(p), in_port);
  }

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] Port& nic() { return *uplink_; }
  [[nodiscard]] const Port& nic() const { return *uplink_; }

  /// Delivery hook installed by the end-host stack.
  ReceiveFn on_receive;

 private:
  sim::Simulator& simulator_;
  PacketArena& arena_;
  int id_;
  std::unique_ptr<Port> uplink_;
};

}  // namespace hermes::net
