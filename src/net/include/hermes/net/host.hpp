#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <string>

#include "hermes/net/device.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/net/port.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {

/// An end host: one NIC port toward its leaf switch, and a pluggable
/// receive handler (the transport stack registers itself here).
class Host : public Device {
 public:
  Host(sim::Simulator& simulator, int id) : simulator_{simulator}, id_{id} {}

  /// Wire the NIC to the leaf switch (called by the topology builder).
  void attach_uplink(PortConfig config, Device* leaf, int leaf_in_port) {
    uplink_ = std::make_unique<Port>(simulator_, "host" + std::to_string(id_) + ":nic",
                                     config, leaf, leaf_in_port);
  }

  /// Transmit a fully formed packet (route already stamped).
  void send(Packet p) {
    assert(uplink_ && "host has no uplink");
    uplink_->send(std::move(p));
  }

  void receive(Packet p, int in_port) override {
    if (on_receive) on_receive(std::move(p), in_port);
  }

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] Port& nic() { return *uplink_; }
  [[nodiscard]] const Port& nic() const { return *uplink_; }

  /// Delivery hook installed by the end-host stack.
  std::function<void(Packet, int)> on_receive;

 private:
  sim::Simulator& simulator_;
  int id_;
  std::unique_ptr<Port> uplink_;
};

}  // namespace hermes::net
