#pragma once

#include <array>
#include <cstdint>

#include "hermes/sim/time.hpp"

namespace hermes::net {

/// Packet kinds carried by the fabric.
enum class PacketType : std::uint8_t {
  kData,        ///< TCP/DCTCP data segment
  kAck,         ///< TCP/DCTCP acknowledgment
  kUdp,         ///< UDP datagram (CBR traffic in microbenchmarks)
  kProbe,       ///< Hermes active probe (request)
  kProbeReply,  ///< Hermes active probe (reply)
};

namespace detail {
/// Out-of-line hard failure for a route overflow: prints the attempted
/// hop count and aborts. Lives in packet.cpp so the push() fast path
/// inlines to a compare + store.
[[noreturn]] void route_overflow(std::uint8_t len);
}  // namespace detail

/// Maximum hops a source route can name. Two-tier leaf-spine needs 3
/// (src leaf, spine, dst leaf); 6 leaves room for a three-tier Clos
/// (leaf, agg, spine, agg, leaf + host port).
inline constexpr std::uint8_t kMaxRouteHops = 6;

/// Source route: the egress port each *switch* along the path must use.
/// Hosts have a single port, so they need no entry. Two-tier leaf-spine
/// paths need at most 3 entries (src leaf, spine, dst leaf).
struct Route {
  std::array<std::uint8_t, kMaxRouteHops> ports{};
  std::uint8_t len = 0;

  /// Append an egress hop. Overflow is a hard error in every build mode:
  /// a route builder for a deeper topology (e.g. a k=16 fat-tree) must
  /// fail loudly here, not scribble past the 6-slot array.
  void push(std::uint8_t port) {
    if (len >= kMaxRouteHops) [[unlikely]] detail::route_overflow(len);
    ports[len++] = port;
  }
};

/// A network packet, passed by value through the simulated fabric.
/// Fields mirror what a real implementation would encode in headers:
/// ECN bits, the XPath-style explicit path id, timestamps for RTT echo,
/// and CONGA's piggybacked congestion metadata.
struct Packet {
  std::uint64_t id = 0;       ///< globally unique packet id
  std::uint64_t flow_id = 0;  ///< owning flow (0 for probes)
  std::int32_t src = -1;      ///< source host id
  std::int32_t dst = -1;      ///< destination host id
  PacketType type = PacketType::kData;

  std::uint32_t size = 0;     ///< bytes on the wire (payload + headers)
  std::uint32_t payload = 0;  ///< transport payload bytes
  std::uint64_t seq = 0;      ///< first payload byte sequence number
  std::uint64_t ack = 0;      ///< cumulative ACK (kAck only)

  // ECN (RFC 3168 / DCTCP)
  bool ect = false;  ///< ECN-capable transport
  bool ce = false;   ///< congestion experienced (set by switches)
  bool ece = false;  ///< ECN echo (set by receiver on ACKs)

  // Explicit routing
  std::int32_t path_id = -1;  ///< fabric path chosen by the load balancer
  std::uint8_t hop = 0;       ///< next index into route.ports
  Route route;
  std::int8_t priority = 0;  ///< 0 = best effort, 1 = high (ACKs/probes)

  // Timestamps for RTT measurement (the data packet's send time is echoed
  // back in the ACK, like TCP timestamp options).
  sim::SimTime ts_sent{};
  sim::SimTime ts_echo{};

  // CONGA piggybacked metadata (used only when the CONGA scheme runs).
  std::uint8_t conga_lbtag = 0;    ///< uplink (path) id of this packet
  std::uint8_t conga_ce = 0;       ///< max quantized DRE along the path
  bool conga_fb_valid = false;     ///< reverse-direction feedback present
  std::uint8_t conga_fb_lbtag = 0;
  std::uint8_t conga_fb_metric = 0;

  std::uint64_t probe_id = 0;  ///< matches probe requests with replies

  /// True for segments that were retransmitted by the sender (diagnostics).
  bool retransmit = false;
};

/// Default maximum segment payload and header overhead, bytes.
inline constexpr std::uint32_t kMss = 1460;
inline constexpr std::uint32_t kHeaderBytes = 40;
inline constexpr std::uint32_t kAckBytes = 64;
inline constexpr std::uint32_t kProbeBytes = 64;

}  // namespace hermes::net
