#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hermes/net/packet.hpp"
#include "hermes/net/port.hpp"
#include "hermes/obs/string_table.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::net {

/// Packet-level event tracing (the simulator's pcap substitute).
/// Attach a TraceLog to any set of ports; every enqueue, transmit-start
/// and drop on those ports is recorded with timestamp, location, and
/// packet identity. Intended for debugging and for fine-grained test
/// assertions; ports pay only a null-check when no trace is attached.
enum class TraceEvent : std::uint8_t {
  kEnqueue,   ///< packet accepted into the port queue (CE already decided)
  kTransmit,  ///< packet started serialization on the wire
  kDrop,      ///< packet dropped at the port (buffer overflow)
};

[[nodiscard]] constexpr const char* to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::kEnqueue: return "ENQ";
    case TraceEvent::kTransmit: return "TX ";
    case TraceEvent::kDrop: return "DROP";
  }
  return "?";
}

struct TraceEntry {
  sim::SimTime time;
  TraceEvent event;
  std::uint32_t port = 0;  ///< interned name id; resolve via TraceLog::port_name()
  std::uint64_t packet_id = 0;
  std::uint64_t flow_id = 0;
  PacketType type = PacketType::kData;
  std::uint32_t size = 0;
  std::uint64_t seq = 0;
  bool ce = false;
};

class TraceLog {
 public:
  /// Start recording this port's events (hooks stay installed for the
  /// port's lifetime; the TraceLog must outlive it or be detached by
  /// destroying the port first).
  void attach(Port& port);

  [[nodiscard]] const std::vector<TraceEntry>& entries() const { return entries_; }
  [[nodiscard]] std::vector<TraceEntry> entries_for_flow(std::uint64_t flow_id) const;
  [[nodiscard]] std::size_t count(TraceEvent e) const;
  void clear() { entries_.clear(); }

  /// Multi-line human-readable rendering ("12.3us ENQ leaf0:p17 ...").
  [[nodiscard]] std::string to_text() const;

  /// Resolve an entry's interned port id back to its name ("?" if
  /// unknown). Names are interned once per attach(), not per event —
  /// a traced enqueue no longer heap-allocates a per-entry string.
  [[nodiscard]] const std::string& port_name(std::uint32_t id) const { return names_.name(id); }

 private:
  void record(TraceEvent ev, std::uint32_t port_id, const Port& port, const Packet& p);
  std::vector<TraceEntry> entries_;
  obs::StringTable names_;
};

}  // namespace hermes::net
