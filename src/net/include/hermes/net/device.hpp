#pragma once

#include "hermes/net/packet.hpp"

namespace hermes::net {

/// Anything that can receive a packet from a link: switches and hosts.
class Device {
 public:
  virtual ~Device() = default;
  /// Deliver `p` arriving on local port `in_port`.
  virtual void receive(Packet p, int in_port) = 0;
};

}  // namespace hermes::net
