#pragma once

#include "hermes/net/packet_arena.hpp"

namespace hermes::net {

/// Anything that can receive a packet from a link: switches and hosts.
/// Packets travel the fabric as 32-bit arena handles; the receiver
/// resolves (and, at end hosts, frees) the slot through the shared
/// PacketArena it was constructed with.
class Device {
 public:
  virtual ~Device() = default;
  /// Deliver the packet named by `p` arriving on local port `in_port`.
  /// Ownership of the arena slot transfers to the callee: a device that
  /// consumes the packet (host delivery, drop) must free it.
  virtual void receive(PacketHandle p, int in_port) = 0;
};

}  // namespace hermes::net
