#pragma once

#include <vector>

#include "hermes/net/packet.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/sim/time.hpp"

namespace hermes::net {

class Host;
class Switch;
class Port;

/// One end-to-end fabric path between a leaf pair: (spine, parallel link
/// index). The up and down parallel-link indices are paired, which matches
/// how ECMP groups are built on 2-tier Clos fabrics. Three-tier fabrics
/// reuse the struct: `spine` holds the core (or intra-pod agg) selector
/// and `link_idx` distinguishes the path kind (see FatTree).
struct FabricPath {
  int id = -1;
  int src_leaf = -1;
  int dst_leaf = -1;
  int spine = -1;
  int link_idx = 0;
  int local_index = 0;      ///< position within the leaf pair's path list
  double capacity_bps = 0;  ///< min(uplink, downlink) rate
};

/// Abstract fabric: what transports, load balancers, workload generators
/// and the fault scheduler need from a topology, independent of its tier
/// structure. Concrete builders are the 2-tier `Topology` (leaf-spine)
/// and the 3-tier `FatTree` (k-ary Clos, possibly sharded).
///
/// Host-id geometry (leaf_of, local_index, ...) is concrete and
/// non-virtual: every Hermes fabric numbers hosts leaf-major, and these
/// run on per-packet paths where a vtable dispatch would be waste. The
/// builder fills the protected dimension members before handing the
/// fabric to any consumer.
class Fabric {
 public:
  virtual ~Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // --- shape (concrete, hot-path safe) ---------------------------------
  [[nodiscard]] int num_leaves() const { return num_leaves_; }
  [[nodiscard]] int num_spines() const { return num_spines_; }
  [[nodiscard]] int hosts_per_leaf() const { return hosts_per_leaf_; }
  [[nodiscard]] int num_hosts() const { return num_leaves_ * hosts_per_leaf_; }
  [[nodiscard]] double host_rate_bps() const { return host_rate_bps_; }
  /// Aggregate leaf->spine capacity: the sustainable inter-rack load unit.
  [[nodiscard]] double bisection_bps() const { return bisection_bps_; }
  [[nodiscard]] int leaf_of(int host_id) const { return host_id / hosts_per_leaf_; }
  [[nodiscard]] int local_index(int host_id) const { return host_id % hosts_per_leaf_; }
  /// Any representative host in a rack (Hermes probe agents use host 0).
  [[nodiscard]] int first_host_of_leaf(int leaf_id) const { return leaf_id * hosts_per_leaf_; }

  // --- devices ---------------------------------------------------------
  [[nodiscard]] virtual Host& host(int i) = 0;
  [[nodiscard]] virtual Switch& leaf(int i) = 0;
  [[nodiscard]] virtual Switch& spine(int i) = 0;

  // --- explicit paths (the XPath substitute) ---------------------------
  /// All usable (non-cut) paths from src_leaf to dst_leaf. Empty for
  /// src_leaf == dst_leaf (intra-rack traffic needs no fabric choice).
  [[nodiscard]] virtual const std::vector<FabricPath>& paths_between_leaves(
      int src_leaf, int dst_leaf) const = 0;
  [[nodiscard]] const std::vector<FabricPath>& paths_between_hosts(int src_host,
                                                                   int dst_host) const {
    return paths_between_leaves(leaf_of(src_host), leaf_of(dst_host));
  }
  [[nodiscard]] virtual const FabricPath& path(int path_id) const = 0;
  [[nodiscard]] virtual int num_paths() const = 0;

  /// Source route for a data packet from src to dst over fabric path
  /// `path_id` (-1 for intra-rack). Entries are switch egress ports.
  [[nodiscard]] virtual Route forward_route(int src_host, int dst_host, int path_id) const = 0;
  /// Route for the reverse direction (ACKs retrace the same path).
  [[nodiscard]] virtual Route reverse_route(int src_host, int dst_host, int path_id) const = 0;

  /// The leaf-side egress port of fabric link (leaf, spine, k) — what
  /// congestion-aware schemes and the fault scheduler poke at.
  [[nodiscard]] virtual Port& leaf_uplink(int leaf_id, int spine, int k = 0) = 0;

  // --- runtime fault mutators (FaultScheduler) -------------------------
  /// Cut (up=false) or restore (up=true) both directions of a link.
  virtual void set_link_state(int leaf_id, int spine, bool up, int k = 0) = 0;
  /// Degrade or restore both directions of a link to `rate_bps`.
  virtual void set_link_rate(int leaf_id, int spine, double rate_bps, int k = 0) = 0;
  /// The build-time capacity of a link (what restore should return to).
  [[nodiscard]] virtual double configured_link_rate(int leaf_id, int spine, int k = 0) const = 0;

  // --- observability ---------------------------------------------------
  /// Attach (or with null, detach) a flight recorder to every port.
  virtual void set_recorder(obs::FlightRecorder* rec) = 0;
  /// Register fabric-wide pull counters under "net.*".
  virtual void register_metrics(obs::MetricsRegistry& reg) = 0;

  // --- timing guidelines -----------------------------------------------
  /// One-hop queueing delay at the ECN threshold (the paper's per-hop
  /// delay guideline used to derive T_RTT_high and Delta_RTT).
  [[nodiscard]] virtual sim::SimTime one_hop_delay() const = 0;
  /// Base RTT (propagation + serialization, empty queues) between hosts
  /// under different leaves.
  [[nodiscard]] virtual sim::SimTime base_rtt() const = 0;

 protected:
  Fabric() = default;

  int num_leaves_ = 0;
  int num_spines_ = 0;
  int hosts_per_leaf_ = 0;
  double host_rate_bps_ = 0;
  double bisection_bps_ = 0;
};

}  // namespace hermes::net
