#pragma once

#include <cstdint>

namespace hermes::net {

/// Admission control for ports that share one buffer (real ToR ASICs
/// share a few MB across all ports instead of static per-port carving).
class BufferPool {
 public:
  virtual ~BufferPool() = default;
  /// May a packet of `bytes` join a queue currently holding
  /// `port_backlog` bytes? On true, the bytes are charged to the pool.
  virtual bool try_admit(std::uint32_t bytes, std::uint32_t port_backlog) = 0;
  /// Return bytes to the pool when the packet leaves the queue.
  virtual void release(std::uint32_t bytes) = 0;
};

/// The Dynamic Threshold algorithm (Choudhury & Hahne), used by
/// Broadcom-style shared-memory switches: a port may buffer at most
/// alpha times the *remaining free* pool, so idle ports leave room and a
/// single congested port can absorb far more than a static 1/N carving
/// — exactly what incast needs.
class DynamicThresholdPool final : public BufferPool {
 public:
  DynamicThresholdPool(std::uint64_t total_bytes, double alpha)
      : total_{total_bytes}, alpha_{alpha} {}

  bool try_admit(std::uint32_t bytes, std::uint32_t port_backlog) override {
    const std::uint64_t free_bytes = total_ > used_ ? total_ - used_ : 0;
    const double limit = alpha_ * static_cast<double>(free_bytes);
    if (static_cast<double>(port_backlog) + bytes > limit) return false;
    if (used_ + bytes > total_) return false;
    used_ += bytes;
    return true;
  }

  void release(std::uint32_t bytes) override { used_ = used_ >= bytes ? used_ - bytes : 0; }

  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  std::uint64_t total_;
  double alpha_;
  std::uint64_t used_ = 0;
};

}  // namespace hermes::net
