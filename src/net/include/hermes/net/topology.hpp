#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "hermes/net/host.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/net/switch.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {

/// One end-to-end fabric path between a leaf pair: (spine, parallel link
/// index). The up and down parallel-link indices are paired, which matches
/// how ECMP groups are built on 2-tier Clos fabrics.
struct FabricPath {
  int id = -1;
  int src_leaf = -1;
  int dst_leaf = -1;
  int spine = -1;
  int link_idx = 0;
  int local_index = 0;      ///< position within the leaf pair's path list
  double capacity_bps = 0;  ///< min(uplink, downlink) rate
};

/// Parameters of a (possibly asymmetric) leaf-spine fabric.
struct TopologyConfig {
  int num_leaves = 8;
  int num_spines = 8;
  int hosts_per_leaf = 16;
  int links_per_pair = 1;  ///< parallel leaf<->spine links (testbed uses 2)

  double host_rate_bps = 10e9;
  double fabric_rate_bps = 10e9;
  sim::SimTime link_delay = sim::usec(2);  ///< per-hop propagation, one way

  /// ECN marking threshold in bytes; 0 selects a rate-scaled default
  /// (65 packets at 10G, clamped to >= 20 packets, CONGA/DCTCP practice).
  std::uint32_t ecn_threshold_bytes = 0;
  /// Per-port buffer in bytes; 0 selects 6x the ECN threshold (>= 150KB).
  std::uint32_t queue_capacity_bytes = 0;
  bool ecn_enabled = true;

  /// Non-zero: every switch (leaves and spines) shares one buffer of this
  /// many bytes across its ports under the Dynamic Threshold policy,
  /// like real shared-memory ToR ASICs, instead of static carving.
  std::uint64_t shared_buffer_bytes = 0;
  double dt_alpha = 1.0;

  /// Per-link rate overrides keyed by (leaf, spine, parallel index);
  /// applied to both directions. A rate of 0 cuts the link.
  std::map<std::tuple<int, int, int>, double> fabric_overrides;

  [[nodiscard]] std::uint32_t ecn_bytes_for(double rate_bps) const;
  [[nodiscard]] std::uint32_t queue_bytes_for(double rate_bps) const;
  [[nodiscard]] PortConfig port_config(double rate_bps) const;
};

/// Builds and owns the simulated fabric: hosts, leaf and spine switches,
/// all ports, and the enumerated explicit paths (the XPath substitute).
class Topology {
 public:
  Topology(sim::Simulator& simulator, TopologyConfig config);

  [[nodiscard]] const TopologyConfig& config() const { return config_; }
  /// The per-scenario packet pool every device and port of this fabric
  /// draws from (see packet_arena.hpp).
  [[nodiscard]] PacketArena& packet_arena() { return arena_; }
  [[nodiscard]] int num_hosts() const { return config_.num_leaves * config_.hosts_per_leaf; }
  [[nodiscard]] Host& host(int i) { return *hosts_[i]; }
  [[nodiscard]] Switch& leaf(int i) { return *leaves_[i]; }
  [[nodiscard]] Switch& spine(int i) { return *spines_[i]; }

  [[nodiscard]] int leaf_of(int host_id) const { return host_id / config_.hosts_per_leaf; }
  [[nodiscard]] int local_index(int host_id) const { return host_id % config_.hosts_per_leaf; }
  /// Any representative host in a rack (Hermes probe agents use host 0).
  [[nodiscard]] int first_host_of_leaf(int leaf_id) const {
    return leaf_id * config_.hosts_per_leaf;
  }

  /// All usable (non-cut) paths from src_leaf to dst_leaf. Empty for
  /// src_leaf == dst_leaf (intra-rack traffic needs no fabric choice).
  [[nodiscard]] const std::vector<FabricPath>& paths_between_leaves(int src_leaf,
                                                                    int dst_leaf) const;
  [[nodiscard]] const std::vector<FabricPath>& paths_between_hosts(int src_host,
                                                                   int dst_host) const {
    return paths_between_leaves(leaf_of(src_host), leaf_of(dst_host));
  }
  [[nodiscard]] const FabricPath& path(int path_id) const { return all_paths_[path_id]; }
  [[nodiscard]] int num_paths() const { return static_cast<int>(all_paths_.size()); }

  /// Source route for a data packet from src to dst over fabric path
  /// `path_id` (-1 for intra-rack). Entries are switch egress ports.
  [[nodiscard]] Route forward_route(int src_host, int dst_host, int path_id) const;
  /// Route for the reverse direction (ACKs retrace the same path).
  [[nodiscard]] Route reverse_route(int src_host, int dst_host, int path_id) const;

  /// Fabric ports, for congestion-aware schemes that read switch state.
  [[nodiscard]] Port& leaf_uplink(int leaf_id, int spine, int k = 0);
  [[nodiscard]] Port& spine_downlink(int spine, int leaf_id, int k = 0);

  // --- runtime fault mutators (FaultScheduler) --------------------------
  // These change *link behaviour* mid-run without touching the enumerated
  // path set: a load balancer keeps seeing the path and must sense the
  // failure itself, exactly like a silent fault in a real fabric. (The
  // build-time `fabric_overrides` with rate 0, by contrast, remove paths
  // from enumeration — a fault every scheme knows about up front.)
  /// Cut (up=false) or restore (up=true) both directions of a link.
  void set_link_state(int leaf_id, int spine, bool up, int k = 0);
  /// Degrade or restore both directions of a link to `rate_bps`.
  void set_link_rate(int leaf_id, int spine, double rate_bps, int k = 0);
  /// The build-time capacity of a link (what restore should return to).
  [[nodiscard]] double configured_link_rate(int leaf_id, int spine, int k = 0) const {
    return link_rate(leaf_id, spine, k);
  }

  // --- observability ----------------------------------------------------
  /// Attach (or with null, detach) the scenario's flight recorder to every
  /// port in the fabric — host NICs, leaf and spine egress. Setup-time:
  /// interns all port names now so hot-path appends carry ids only.
  void set_recorder(obs::FlightRecorder* rec);
  /// Register fabric-wide pull counters (tx/drops/ECN marks/failure
  /// drops) under "net.*". Closures read the live PortStats, so the hot
  /// path pays nothing beyond the counters it already maintained.
  void register_metrics(obs::MetricsRegistry& reg);

  /// Aggregate leaf->spine capacity: the sustainable inter-rack load unit.
  [[nodiscard]] double bisection_bps() const { return bisection_bps_; }
  /// One-hop queueing delay at the ECN threshold (the paper's per-hop
  /// delay guideline used to derive T_RTT_high and Delta_RTT).
  [[nodiscard]] sim::SimTime one_hop_delay() const;
  /// Base RTT (propagation + serialization, empty queues) between hosts
  /// under different leaves.
  [[nodiscard]] sim::SimTime base_rtt() const;

 private:
  [[nodiscard]] double link_rate(int leaf_id, int spine, int k) const;
  [[nodiscard]] int uplink_port_index(int spine, int k) const {
    return config_.hosts_per_leaf + spine * config_.links_per_pair + k;
  }
  [[nodiscard]] int downlink_port_index(int leaf_id, int k) const {
    return leaf_id * config_.links_per_pair + k;
  }

  sim::Simulator& simulator_;
  TopologyConfig config_;
  /// Declared before the devices below: their ports keep references into
  /// the arena, so it must outlive them (members destroy in reverse).
  PacketArena arena_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> leaves_;
  std::vector<std::unique_ptr<Switch>> spines_;
  std::vector<FabricPath> all_paths_;
  // pair_paths_[src_leaf * L + dst_leaf] -> usable paths
  std::vector<std::vector<FabricPath>> pair_paths_;
  std::vector<FabricPath> empty_;
  double bisection_bps_ = 0;
};

}  // namespace hermes::net
