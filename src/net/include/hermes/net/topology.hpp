#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "hermes/net/fabric.hpp"
#include "hermes/net/host.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/net/switch.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/metrics.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {

/// Parameters of a (possibly asymmetric) leaf-spine fabric.
struct TopologyConfig {
  int num_leaves = 8;
  int num_spines = 8;
  int hosts_per_leaf = 16;
  int links_per_pair = 1;  ///< parallel leaf<->spine links (testbed uses 2)

  double host_rate_bps = 10e9;
  double fabric_rate_bps = 10e9;
  sim::SimTime link_delay = sim::usec(2);  ///< per-hop propagation, one way

  /// ECN marking threshold in bytes; 0 selects a rate-scaled default
  /// (65 packets at 10G, clamped to >= 20 packets, CONGA/DCTCP practice).
  std::uint32_t ecn_threshold_bytes = 0;
  /// Per-port buffer in bytes; 0 selects 6x the ECN threshold (>= 150KB).
  std::uint32_t queue_capacity_bytes = 0;
  bool ecn_enabled = true;

  /// Non-zero: every switch (leaves and spines) shares one buffer of this
  /// many bytes across its ports under the Dynamic Threshold policy,
  /// like real shared-memory ToR ASICs, instead of static carving.
  std::uint64_t shared_buffer_bytes = 0;
  double dt_alpha = 1.0;

  /// Per-link rate overrides keyed by (leaf, spine, parallel index);
  /// applied to both directions. A rate of 0 cuts the link.
  std::map<std::tuple<int, int, int>, double> fabric_overrides;

  [[nodiscard]] std::uint32_t ecn_bytes_for(double rate_bps) const;
  [[nodiscard]] std::uint32_t queue_bytes_for(double rate_bps) const;
  [[nodiscard]] PortConfig port_config(double rate_bps) const;
};

/// Builds and owns the simulated fabric: hosts, leaf and spine switches,
/// all ports, and the enumerated explicit paths (the XPath substitute).
class Topology : public Fabric {
 public:
  Topology(sim::Simulator& simulator, TopologyConfig config);

  [[nodiscard]] const TopologyConfig& config() const { return config_; }
  /// The per-scenario packet pool every device and port of this fabric
  /// draws from (see packet_arena.hpp).
  [[nodiscard]] PacketArena& packet_arena() { return arena_; }
  [[nodiscard]] Host& host(int i) override { return *hosts_[i]; }
  [[nodiscard]] Switch& leaf(int i) override { return *leaves_[i]; }
  [[nodiscard]] Switch& spine(int i) override { return *spines_[i]; }

  [[nodiscard]] const std::vector<FabricPath>& paths_between_leaves(int src_leaf,
                                                                    int dst_leaf) const override;
  [[nodiscard]] const FabricPath& path(int path_id) const override { return all_paths_[path_id]; }
  [[nodiscard]] int num_paths() const override { return static_cast<int>(all_paths_.size()); }

  [[nodiscard]] Route forward_route(int src_host, int dst_host, int path_id) const override;
  [[nodiscard]] Route reverse_route(int src_host, int dst_host, int path_id) const override;

  /// Fabric ports, for congestion-aware schemes that read switch state.
  [[nodiscard]] Port& leaf_uplink(int leaf_id, int spine, int k = 0) override;
  [[nodiscard]] Port& spine_downlink(int spine, int leaf_id, int k = 0);

  // --- runtime fault mutators (FaultScheduler) --------------------------
  // These change *link behaviour* mid-run without touching the enumerated
  // path set: a load balancer keeps seeing the path and must sense the
  // failure itself, exactly like a silent fault in a real fabric. (The
  // build-time `fabric_overrides` with rate 0, by contrast, remove paths
  // from enumeration — a fault every scheme knows about up front.)
  void set_link_state(int leaf_id, int spine, bool up, int k = 0) override;
  void set_link_rate(int leaf_id, int spine, double rate_bps, int k = 0) override;
  [[nodiscard]] double configured_link_rate(int leaf_id, int spine, int k = 0) const override {
    return link_rate(leaf_id, spine, k);
  }

  // --- observability ----------------------------------------------------
  /// Attach (or with null, detach) the scenario's flight recorder to every
  /// port in the fabric — host NICs, leaf and spine egress. Setup-time:
  /// interns all port names now so hot-path appends carry ids only.
  void set_recorder(obs::FlightRecorder* rec) override;
  /// Register fabric-wide pull counters (tx/drops/ECN marks/failure
  /// drops) under "net.*". Closures read the live PortStats, so the hot
  /// path pays nothing beyond the counters it already maintained.
  void register_metrics(obs::MetricsRegistry& reg) override;

  [[nodiscard]] sim::SimTime one_hop_delay() const override;
  [[nodiscard]] sim::SimTime base_rtt() const override;

 private:
  [[nodiscard]] double link_rate(int leaf_id, int spine, int k) const;
  [[nodiscard]] int uplink_port_index(int spine, int k) const {
    return config_.hosts_per_leaf + spine * config_.links_per_pair + k;
  }
  [[nodiscard]] int downlink_port_index(int leaf_id, int k) const {
    return leaf_id * config_.links_per_pair + k;
  }

  sim::Simulator& simulator_;
  TopologyConfig config_;
  /// Declared before the devices below: their ports keep references into
  /// the arena, so it must outlive them (members destroy in reverse).
  PacketArena arena_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> leaves_;
  std::vector<std::unique_ptr<Switch>> spines_;
  std::vector<FabricPath> all_paths_;
  // pair_paths_[src_leaf * L + dst_leaf] -> usable paths
  std::vector<std::vector<FabricPath>> pair_paths_;
  std::vector<FabricPath> empty_;
};

}  // namespace hermes::net
