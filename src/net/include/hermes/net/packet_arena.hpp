#pragma once

#include "hermes/net/packet.hpp"
#include "hermes/sim/slot_arena.hpp"

namespace hermes::net {

/// The per-scenario packet pool. Every packet entering the fabric takes
/// one generation-counted slot at the sending host's NIC and keeps it
/// until it is delivered to a host or dropped — switches and ports pass
/// the 32-bit PacketHandle, never the ~112-byte struct. Owned by the
/// Topology; every Device and Port holds a reference.
using PacketArena = sim::SlotArena<Packet>;
using PacketHandle = sim::ArenaHandle;

}  // namespace hermes::net
