#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "hermes/net/buffer_pool.hpp"
#include "hermes/net/device.hpp"
#include "hermes/net/dre.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/net/packet_arena.hpp"
#include "hermes/net/packet_ring.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/records.hpp"
#include "hermes/sim/inline_function.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {

/// ECN marking disciplines.
enum class EcnMode : std::uint8_t {
  kStep,  ///< DCTCP step marking: CE when backlog >= K
  kRed,   ///< RED-style ramp: probability rises linearly between min and max
};

/// Configuration for an output port and its attached simplex link.
struct PortConfig {
  double rate_bps = 10e9;                ///< link capacity
  sim::SimTime prop_delay = sim::usec(2); ///< one-way propagation delay
  std::uint32_t queue_capacity_bytes = 500 * 1024;  ///< per-port buffer
  std::uint32_t ecn_threshold_bytes = 65 * 1500;    ///< step marking point (K)
  bool ecn_enabled = true;

  /// Marking discipline. kStep is DCTCP's recommendation and the default;
  /// kRed ramps the marking probability from 0 at `ecn_threshold_bytes`
  /// to `red_pmax` at `red_max_bytes` (CE always set beyond that), as the
  /// paper's testbed switches ("ECN/RED marking", §4) support.
  EcnMode ecn_mode = EcnMode::kStep;
  std::uint32_t red_max_bytes = 0;  ///< 0: defaults to 3x the threshold
  double red_pmax = 1.0;
};

/// Counters exported by every port. `drops`/`drop_bytes` total every drop
/// at this port; `link_down_drops` is the subset lost because the link
/// itself was administratively/faultily down (fault injection).
struct PortStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t drops = 0;
  std::uint64_t drop_bytes = 0;
  std::uint64_t link_down_drops = 0;
  std::uint64_t ecn_marks = 0;
};

/// An output port: a two-band strict-priority drop-tail queue feeding a
/// fixed-rate link with propagation delay. ECN CE marking happens at
/// enqueue when the backlog exceeds the threshold (DCTCP step marking).
/// The port also maintains a DRE so CONGA can read per-link utilization.
///
/// Queues are SoA rings of arena handles (PacketRing/WireRing): the port
/// never copies a Packet, it moves 32-bit handles between index rings.
/// Link delivery is batched — every wire entry carries its delivery
/// deadline, and one drain event delivers every packet that is due.
class Port {
 public:
  /// Per-packet observer hook. Fixed inline storage, no heap fallback:
  /// an observer capturing more than kHookCapacity bytes is a compile
  /// error, never a per-install allocation (see sim::InlineCallable).
  static constexpr std::size_t kHookCapacity = 48;
  using Hook = sim::InlineCallable<kHookCapacity, void(const Packet&)>;

  Port(sim::Simulator& simulator, PacketArena& arena, std::string name, PortConfig config,
       Device* peer, int peer_in_port);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  /// Enqueue the packet named by `h` for transmission (drops — and frees
  /// the slot — if the buffer is full or the link is down).
  void send(PacketHandle h);

  /// Convenience for endpoints and tests: place `p` into the arena and
  /// enqueue the resulting handle.
  void send(Packet&& p) { send(arena_.alloc(std::move(p))); }

  [[nodiscard]] std::uint32_t backlog_bytes() const { return backlog_bytes_; }
  [[nodiscard]] std::size_t backlog_packets() const { return hi_.size() + lo_.size(); }
  [[nodiscard]] const PortStats& stats() const { return stats_; }
  [[nodiscard]] const PortConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] PacketArena& arena() { return arena_; }

  /// CONGA congestion metric of this link, quantized to 3 bits.
  [[nodiscard]] std::uint8_t conga_metric() const {
    return dre_.quantized(config_.rate_bps, simulator_.now());
  }
  [[nodiscard]] double utilization() const {
    return dre_.utilization(config_.rate_bps, simulator_.now());
  }

  /// Serialization delay of `bytes` on this link.
  [[nodiscard]] sim::SimTime tx_time(std::uint32_t bytes) const {
    return sim::SimTime::from_seconds(static_cast<double>(bytes) * 8.0 / config_.rate_bps);
  }

  // --- runtime fault state (driven by the fault scheduler) --------------
  /// Change the link capacity mid-run (degrade/restore). Affects future
  /// serializations; packets already on the wire keep their old timing.
  void set_rate_bps(double rate_bps) {
    config_.rate_bps = rate_bps;
    tx_cache_bytes_[0] = tx_cache_bytes_[1] = 0;  // memoized tx times are stale
  }
  /// Cut / restore the link. While down, newly arriving packets are
  /// silently dropped (counted in stats: drops + link_down_drops); what is
  /// already queued or on the wire still drains — a cut fiber loses what
  /// is sent into it, not what already left.
  void set_link_up(bool up) { link_up_ = up; }
  [[nodiscard]] bool link_up() const { return link_up_; }

  /// Bytes transmitted but still propagating (invariant accounting).
  [[nodiscard]] std::uint64_t wire_bytes() const { return wire_.total_bytes(); }
  [[nodiscard]] std::size_t wire_packets() const { return wire_.size(); }
  /// True when admission goes through a shared BufferPool instead of the
  /// static per-port capacity (invariant checker picks the right bound).
  [[nodiscard]] bool pooled() const { return pool_ != nullptr; }

  /// Optional per-packet observers (tests, TraceLog, InvariantChecker).
  /// Null by default; the hot path pays one branch each.
  Hook on_drop;
  Hook on_enqueue;
  Hook on_transmit;

  /// Current simulation time (for observers that only hold the port).
  [[nodiscard]] sim::SimTime now() const { return simulator_.now(); }

  /// Switch to shared-buffer admission: the static per-port capacity is
  /// replaced by the pool's (dynamic-threshold) policy. The pool must
  /// outlive the port.
  void set_buffer_pool(BufferPool* pool) { pool_ = pool; }

  /// Attach the scenario's flight recorder (null detaches — the default).
  /// Interns this port's name once, here; the per-packet appends carry
  /// only the 4-byte id. The recorder must outlive the port.
  void set_recorder(obs::FlightRecorder* rec) {
    rec_ = rec;
    name_id_ = rec != nullptr ? rec->intern(name_) : 0;
  }

  /// True for leaf-uplink and spine-downlink ports. Only fabric ports are
  /// stamped with CONGA's in-band congestion metric.
  bool is_fabric = false;

 private:
  void try_transmit();
  void finish_transmit();
  void drain_wire();
  [[nodiscard]] bool should_mark();
  [[nodiscard]] sim::SimTime tx_time_cached(std::uint32_t bytes);
  void record_packet(obs::PacketEvent ev, const Packet& p);

  sim::Simulator& simulator_;
  PacketArena& arena_;
  std::string name_;
  PortConfig config_;
  Device* peer_;
  int peer_in_port_;

  PacketRing hi_;
  PacketRing lo_;
  WireRing wire_;  ///< transmitted, awaiting propagation delivery
  std::uint32_t backlog_bytes_ = 0;
  bool busy_ = false;
  bool link_up_ = true;
  /// Delivery deadline of the most recently scheduled drain event. When a
  /// new wire entry lands on exactly this deadline the already-scheduled
  /// drain will deliver it too (equal-time batch), so no second event is
  /// needed. Deadlines are nondecreasing, so equality is the only
  /// coalescible case.
  sim::SimTime drain_scheduled_for_ = sim::nsec(-1);

  /// Two-entry memo of tx_time keyed by size: fabric traffic is almost
  /// entirely {MSS data, 64B ACK}, so this removes the per-packet double
  /// divide. Computes through the identical tx_time() arithmetic, so
  /// timing stays bit-for-bit the same. Invalidated by set_rate_bps.
  std::uint32_t tx_cache_bytes_[2] = {0, 0};
  sim::SimTime tx_cache_time_[2] = {};

  Dre dre_;
  PortStats stats_;
  sim::Rng red_rng_;
  BufferPool* pool_ = nullptr;
  obs::FlightRecorder* rec_ = nullptr;  ///< null when observability is off
  std::uint32_t name_id_ = 0;           ///< interned name, valid while rec_ set
};

}  // namespace hermes::net
