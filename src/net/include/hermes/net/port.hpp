#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "hermes/net/buffer_pool.hpp"
#include "hermes/net/device.hpp"
#include "hermes/net/dre.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/obs/flight_recorder.hpp"
#include "hermes/obs/records.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {

/// ECN marking disciplines.
enum class EcnMode : std::uint8_t {
  kStep,  ///< DCTCP step marking: CE when backlog >= K
  kRed,   ///< RED-style ramp: probability rises linearly between min and max
};

/// Configuration for an output port and its attached simplex link.
struct PortConfig {
  double rate_bps = 10e9;                ///< link capacity
  sim::SimTime prop_delay = sim::usec(2); ///< one-way propagation delay
  std::uint32_t queue_capacity_bytes = 500 * 1024;  ///< per-port buffer
  std::uint32_t ecn_threshold_bytes = 65 * 1500;    ///< step marking point (K)
  bool ecn_enabled = true;

  /// Marking discipline. kStep is DCTCP's recommendation and the default;
  /// kRed ramps the marking probability from 0 at `ecn_threshold_bytes`
  /// to `red_pmax` at `red_max_bytes` (CE always set beyond that), as the
  /// paper's testbed switches ("ECN/RED marking", §4) support.
  EcnMode ecn_mode = EcnMode::kStep;
  std::uint32_t red_max_bytes = 0;  ///< 0: defaults to 3x the threshold
  double red_pmax = 1.0;
};

/// Counters exported by every port. `drops`/`drop_bytes` total every drop
/// at this port; `link_down_drops` is the subset lost because the link
/// itself was administratively/faultily down (fault injection).
struct PortStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t drops = 0;
  std::uint64_t drop_bytes = 0;
  std::uint64_t link_down_drops = 0;
  std::uint64_t ecn_marks = 0;
};

/// An output port: a two-band strict-priority drop-tail queue feeding a
/// fixed-rate link with propagation delay. ECN CE marking happens at
/// enqueue when the backlog exceeds the threshold (DCTCP step marking).
/// The port also maintains a DRE so CONGA can read per-link utilization.
class Port {
 public:
  Port(sim::Simulator& simulator, std::string name, PortConfig config,
       Device* peer, int peer_in_port);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  /// Enqueue a packet for transmission (drops if the buffer is full).
  void send(Packet p);

  [[nodiscard]] std::uint32_t backlog_bytes() const { return backlog_bytes_; }
  [[nodiscard]] std::size_t backlog_packets() const { return hi_.size() + lo_.size(); }
  [[nodiscard]] const PortStats& stats() const { return stats_; }
  [[nodiscard]] const PortConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// CONGA congestion metric of this link, quantized to 3 bits.
  [[nodiscard]] std::uint8_t conga_metric() const {
    return dre_.quantized(config_.rate_bps, simulator_.now());
  }
  [[nodiscard]] double utilization() const {
    return dre_.utilization(config_.rate_bps, simulator_.now());
  }

  /// Serialization delay of `bytes` on this link.
  [[nodiscard]] sim::SimTime tx_time(std::uint32_t bytes) const {
    return sim::SimTime::from_seconds(static_cast<double>(bytes) * 8.0 / config_.rate_bps);
  }

  // --- runtime fault state (driven by the fault scheduler) --------------
  /// Change the link capacity mid-run (degrade/restore). Affects future
  /// serializations; packets already on the wire keep their old timing.
  void set_rate_bps(double rate_bps) { config_.rate_bps = rate_bps; }
  /// Cut / restore the link. While down, newly arriving packets are
  /// silently dropped (counted in stats: drops + link_down_drops); what is
  /// already queued or on the wire still drains — a cut fiber loses what
  /// is sent into it, not what already left.
  void set_link_up(bool up) { link_up_ = up; }
  [[nodiscard]] bool link_up() const { return link_up_; }

  /// Bytes transmitted but still propagating (invariant accounting).
  [[nodiscard]] std::uint64_t wire_bytes() const {
    std::uint64_t b = 0;
    for (const auto& p : wire_) b += p.size;
    return b;
  }
  [[nodiscard]] std::size_t wire_packets() const { return wire_.size(); }
  /// True when admission goes through a shared BufferPool instead of the
  /// static per-port capacity (invariant checker picks the right bound).
  [[nodiscard]] bool pooled() const { return pool_ != nullptr; }

  /// Optional per-packet observers (tests and TraceLog). Null by default;
  /// the hot path pays one branch each.
  std::function<void(const Packet&)> on_drop;
  std::function<void(const Packet&)> on_enqueue;
  std::function<void(const Packet&)> on_transmit;

  /// Current simulation time (for observers that only hold the port).
  [[nodiscard]] sim::SimTime now() const { return simulator_.now(); }

  /// Switch to shared-buffer admission: the static per-port capacity is
  /// replaced by the pool's (dynamic-threshold) policy. The pool must
  /// outlive the port.
  void set_buffer_pool(BufferPool* pool) { pool_ = pool; }

  /// Attach the scenario's flight recorder (null detaches — the default).
  /// Interns this port's name once, here; the per-packet appends carry
  /// only the 4-byte id. The recorder must outlive the port.
  void set_recorder(obs::FlightRecorder* rec) {
    rec_ = rec;
    name_id_ = rec != nullptr ? rec->intern(name_) : 0;
  }

  /// True for leaf-uplink and spine-downlink ports. Only fabric ports are
  /// stamped with CONGA's in-band congestion metric.
  bool is_fabric = false;

 private:
  void try_transmit();
  void finish_transmit();
  void deliver_front();
  [[nodiscard]] bool should_mark();
  void record_packet(obs::PacketEvent ev, const Packet& p);

  sim::Simulator& simulator_;
  std::string name_;
  PortConfig config_;
  Device* peer_;
  int peer_in_port_;

  std::deque<Packet> hi_;
  std::deque<Packet> lo_;
  std::deque<Packet> wire_;  ///< transmitted, awaiting propagation delivery
  std::uint32_t backlog_bytes_ = 0;
  bool busy_ = false;
  bool link_up_ = true;

  Dre dre_;
  PortStats stats_;
  sim::Rng red_rng_;
  BufferPool* pool_ = nullptr;
  obs::FlightRecorder* rec_ = nullptr;  ///< null when observability is off
  std::uint32_t name_id_ = 0;           ///< interned name, valid while rec_ set
};

}  // namespace hermes::net
