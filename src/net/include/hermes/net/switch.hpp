#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hermes/net/buffer_pool.hpp"
#include "hermes/net/device.hpp"
#include "hermes/net/packet.hpp"
#include "hermes/net/port.hpp"
#include "hermes/sim/rng.hpp"
#include "hermes/sim/simulator.hpp"

namespace hermes::net {

/// Silent failures a production switch can exhibit (Guo et al., Pingmesh;
/// Hermes §2.1). Both drop packets without any signal to the rest of the
/// network, which is exactly what makes them hard for load balancers.
struct SwitchFailureConfig {
  /// Deterministic blackhole: packets matching the predicate are always
  /// dropped (e.g. certain source-destination pairs or port patterns).
  std::function<bool(const Packet&)> blackhole;
  /// Silent random drop rate in [0, 1] applied to every transiting packet.
  double random_drop_rate = 0.0;
};

/// An output-queued switch that forwards along the packet's source route.
/// It also stamps CONGA's in-band congestion metric: each fabric hop
/// updates conga_ce with the max of the egress link's quantized DRE.
class Switch : public Device {
 public:
  Switch(sim::Simulator& simulator, PacketArena& arena, int id, std::string name);

  /// Add an output port; returns its index.
  int add_port(PortConfig config, Device* peer, int peer_in_port);

  void receive(PacketHandle h, int in_port) override;

  /// Convenience for tests and injectors that hold a by-value packet:
  /// places it into the arena and forwards the handle.
  void receive(Packet&& p, int in_port) { receive(arena_.alloc(std::move(p)), in_port); }

  [[nodiscard]] Port& port(int i) { return *ports_[i]; }
  [[nodiscard]] const Port& port(int i) const { return *ports_[i]; }
  [[nodiscard]] int num_ports() const { return static_cast<int>(ports_.size()); }
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  void set_failure(SwitchFailureConfig failure) {
    failure_ = std::move(failure);
    refresh_failure_flag();
  }
  /// Runtime mutators for one failure dimension at a time (fault events
  /// toggle a blackhole without clobbering a concurrent drop rate).
  void set_blackhole(std::function<bool(const Packet&)> predicate) {
    failure_.blackhole = std::move(predicate);
    refresh_failure_flag();
  }
  void clear_blackhole() {
    failure_.blackhole = nullptr;
    refresh_failure_flag();
  }
  void set_random_drop_rate(double rate) {
    failure_.random_drop_rate = rate;
    refresh_failure_flag();
  }
  [[nodiscard]] const SwitchFailureConfig& failure() const { return failure_; }

  /// Injected-failure drops split by reason (and total, for convenience).
  [[nodiscard]] std::uint64_t blackhole_drops() const { return blackhole_drops_; }
  [[nodiscard]] std::uint64_t random_drops() const { return random_drops_; }
  [[nodiscard]] std::uint64_t failure_drops() const { return blackhole_drops_ + random_drops_; }
  [[nodiscard]] std::uint64_t failure_drop_bytes() const {
    return blackhole_drop_bytes_ + random_drop_bytes_;
  }

  /// Replace per-port static buffers with one shared pool managed by the
  /// Dynamic Threshold algorithm (call after all ports are added).
  void use_shared_buffer(std::uint64_t total_bytes, double alpha);
  [[nodiscard]] const DynamicThresholdPool* shared_buffer() const { return pool_.get(); }

  /// When true (default), transiting packets get CONGA metric stamping.
  bool conga_stamping = true;

 private:
  /// Cached "any failure injector armed" bit so the healthy forwarding
  /// path pays a single predicted branch instead of a std::function
  /// test plus a double compare per packet.
  void refresh_failure_flag() {
    failure_active_ = static_cast<bool>(failure_.blackhole) || failure_.random_drop_rate > 0.0;
  }

  sim::Simulator& simulator_;
  PacketArena& arena_;
  int id_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
  SwitchFailureConfig failure_;
  bool failure_active_ = false;
  sim::Rng drop_rng_;
  std::uint64_t blackhole_drops_ = 0;
  std::uint64_t blackhole_drop_bytes_ = 0;
  std::uint64_t random_drops_ = 0;
  std::uint64_t random_drop_bytes_ = 0;
  std::unique_ptr<DynamicThresholdPool> pool_;
};

}  // namespace hermes::net
