#pragma once

#include <cmath>
#include <cstdint>

#include "hermes/sim/time.hpp"

namespace hermes::net {

/// Discounting Rate Estimator (CONGA §4.3). A register X is incremented by
/// the bytes of each observed packet and decays multiplicatively with time
/// constant Tdre/alpha. The estimated rate is X * alpha / Tdre. We decay
/// lazily on access instead of running a periodic timer per estimator.
class Dre {
 public:
  Dre() = default;
  Dre(sim::SimTime tdre, double alpha) : tdre_{tdre}, alpha_{alpha} {}

  void add(std::uint64_t bytes, sim::SimTime now) {
    decay(now);
    x_ += static_cast<double>(bytes);
  }

  /// Estimated rate in bytes/second.
  [[nodiscard]] double rate_bytes_per_sec(sim::SimTime now) const {
    decay(now);
    return x_ * alpha_ / tdre_.to_seconds();
  }
  /// Estimated rate in bits/second.
  [[nodiscard]] double rate_bps(sim::SimTime now) const { return 8.0 * rate_bytes_per_sec(now); }

  /// Utilization in [0, ~1+] of a link with the given capacity.
  [[nodiscard]] double utilization(double link_bps, sim::SimTime now) const {
    return link_bps > 0 ? rate_bps(now) / link_bps : 0.0;
  }

  /// CONGA's 3-bit quantized congestion metric for a link of `link_bps`.
  [[nodiscard]] std::uint8_t quantized(double link_bps, sim::SimTime now) const {
    double u = utilization(link_bps, now);
    if (u < 0) u = 0;
    if (u > 1) u = 1;
    return static_cast<std::uint8_t>(u * 7.0 + 0.5);
  }

 private:
  void decay(sim::SimTime now) const {
    if (now <= last_) return;
    const double dt = (now - last_).to_seconds();
    // Continuous-time equivalent of "every Tdre, X *= (1 - alpha)".
    x_ *= std::exp(std::log1p(-alpha_) * dt / tdre_.to_seconds());
    last_ = now;
  }

  sim::SimTime tdre_ = sim::usec(50);
  double alpha_ = 0.1;
  mutable double x_ = 0.0;
  mutable sim::SimTime last_{};
};

}  // namespace hermes::net
