#include "hermes/net/switch.hpp"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace hermes::net {

Switch::Switch(sim::Simulator& simulator, PacketArena& arena, int id, std::string name)
    : simulator_{simulator},
      arena_{arena},
      id_{id},
      name_{std::move(name)},
      drop_rng_{simulator.rng_stream(0x5117C4 + static_cast<std::uint64_t>(id))} {}

void Switch::use_shared_buffer(std::uint64_t total_bytes, double alpha) {
  pool_ = std::make_unique<DynamicThresholdPool>(total_bytes, alpha);
  for (auto& p : ports_) p->set_buffer_pool(pool_.get());
}

int Switch::add_port(PortConfig config, Device* peer, int peer_in_port) {
  const int idx = static_cast<int>(ports_.size());
  ports_.push_back(std::make_unique<Port>(simulator_, arena_,
                                          name_ + ":p" + std::to_string(idx), config, peer,
                                          peer_in_port));
  return idx;
}

// HERMES_HOT: the fabric forwarding path — every packet crosses this
// once per hop; no allocation allowed. The packet stays in its arena
// slot; route lookup and CONGA stamping work through the reference.
void Switch::receive(PacketHandle h, int /*in_port*/) {
  Packet& p = arena_[h];
  // Failure injectors model silent switch malfunctions: the packet vanishes
  // with no NACK, no ICMP, no counter visible to the load balancer.
  if (failure_active_) [[unlikely]] {
    if (failure_.blackhole && failure_.blackhole(p)) {
      ++blackhole_drops_;
      blackhole_drop_bytes_ += p.size;
      arena_.free(h);
      return;
    }
    if (failure_.random_drop_rate > 0.0 && drop_rng_.chance(failure_.random_drop_rate)) {
      ++random_drops_;
      random_drop_bytes_ += p.size;
      arena_.free(h);
      return;
    }
  }

  assert(p.hop < p.route.len && "source route exhausted at a switch");
  const int egress = p.route.ports[p.hop++];
  Port& out = *ports_[egress];
  if (conga_stamping && out.is_fabric && p.type != PacketType::kAck) {
    const std::uint8_t m = out.conga_metric();
    if (m > p.conga_ce) p.conga_ce = m;
  }
  out.send(h);
}

}  // namespace hermes::net
